package obs

import "time"

// Span is a lightweight trace span: a start timestamp bound to the
// histogram its duration lands in and, optionally, a gauge counting spans
// currently in flight. Spans are plain values — starting and ending one
// never allocates — and a span started against nil instruments is inert,
// so span timing can wrap hot sections unconditionally.
type Span struct {
	start  time.Time
	h      *Histogram
	active *Gauge
}

// StartSpan opens a span whose duration will be observed on h at End.
// With h == nil the span is inert.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{start: time.Now(), h: h}
}

// StartSpanActive is StartSpan plus an in-flight gauge: active is
// incremented now and decremented at End.
func StartSpanActive(h *Histogram, active *Gauge) Span {
	s := StartSpan(h)
	if s.h == nil {
		return s
	}
	s.active = active
	active.Add(1)
	return s
}

// End closes the span, recording its duration in nanoseconds.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.start).Nanoseconds())
	s.active.Add(-1)
}
