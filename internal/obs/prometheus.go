package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4): one # HELP / # TYPE header per
// metric family, then one sample line per instrument, histograms expanded
// into cumulative _bucket/_sum/_count series. Instruments sharing a base
// name (same metric, different constant labels) are grouped under one
// header. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	prev := ""
	for _, m := range r.snapshotMetrics() {
		d := m.describe()
		if d.name != prev {
			if d.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", d.name, escapeHelp(d.help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", d.name, d.kind)
			prev = d.name
		}
		switch inst := m.(type) {
		case *Counter:
			fmt.Fprintf(bw, "%s%s %d\n", d.name, d.labels, inst.Value())
		case *Gauge:
			fmt.Fprintf(bw, "%s%s %d\n", d.name, d.labels, inst.Value())
		case *Histogram:
			writeHistogram(bw, d, inst)
		}
	}
	return bw.Flush()
}

// writeHistogram expands one histogram into its cumulative bucket series.
func writeHistogram(w io.Writer, d desc, h *Histogram) {
	counts := h.Counts()
	bounds := h.Bounds()
	var cum int64
	for i, bound := range bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", d.name, withLE(d.labels, strconv.FormatInt(bound, 10)), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(w, "%s_bucket%s %d\n", d.name, withLE(d.labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %d\n", d.name, d.labels, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", d.name, d.labels, cum)
}

// withLE merges the le bucket label into an already-rendered label set.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return strings.TrimSuffix(labels, "}") + `,le="` + le + `"}`
}

// escapeHelp escapes newlines and backslashes per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
