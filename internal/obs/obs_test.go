package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("scone_test_adds_total", "concurrent adds")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestDuplicateRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("scone_test_dup_total", "a")
	b := r.NewCounter("scone_test_dup_total", "b")
	if a != b {
		t.Fatal("same name+labels should return the existing instrument")
	}
	// Different labels are a distinct instrument.
	c := r.NewCounter("scone_test_dup_total", "c", "shard", "1")
	if c == a {
		t.Fatal("distinct labels must not collide")
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("scone_test_clash_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering as a different kind should panic")
		}
	}()
	r.NewGauge("scone_test_clash_total", "")
}

func TestLabelRendering(t *testing.T) {
	got := renderLabels([]string{"zeta", "z", "alpha", "a"})
	want := `{alpha="a",zeta="z"}`
	if got != want {
		t.Fatalf("renderLabels = %s, want %s", got, want)
	}
	if renderLabels(nil) != "" {
		t.Fatal("no labels should render empty")
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	n := int64(0)
	g := r.NewGaugeFunc("scone_test_depth_count", "", func() int64 { return n })
	n = 42
	if g.Value() != 42 {
		t.Fatalf("func gauge = %d, want 42", g.Value())
	}
	g.Set(7) // must be ignored on func gauges
	if g.Value() != 42 {
		t.Fatal("Set must not override a func gauge")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("scone_test_runs_total", "runs executed").Add(3)
	r.NewGauge("scone_test_depth_count", "queue depth", "shard", "0").Set(5)
	h := r.NewHistogram("scone_test_wait_ns", "wait time", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE scone_test_runs_total counter",
		"scone_test_runs_total 3",
		`scone_test_depth_count{shard="0"} 5`,
		"# TYPE scone_test_wait_ns histogram",
		`scone_test_wait_ns_bucket{le="10"} 1`,
		`scone_test_wait_ns_bucket{le="100"} 2`,
		`scone_test_wait_ns_bucket{le="+Inf"} 3`,
		"scone_test_wait_ns_sum 5055",
		"scone_test_wait_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNilRegistryNoOp(t *testing.T) {
	var r *Registry
	c := r.NewCounter("scone_test_x_total", "")
	g := r.NewGauge("scone_test_y_count", "")
	h := r.NewHistogram("scone_test_z_ns", "", []int64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	sp := StartSpan(h)
	sp.End()
	sp = StartSpanActive(h, g)
	sp.End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("no-op instruments must stay zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestNoOpZeroAlloc(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Add(1)
		h.Observe(17)
		s := StartSpan(h)
		s.End()
		s = StartSpanActive(h, g)
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled hot path allocated %v per run, want 0", allocs)
	}
}

func TestLiveInstrumentsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("scone_test_hot_total", "")
	h := r.NewHistogram("scone_test_hot_ns", "", LatencyBuckets())
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(128_000)
	})
	if allocs != 0 {
		t.Fatalf("enabled hot path allocated %v per run, want 0", allocs)
	}
}
