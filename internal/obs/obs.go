// Package obs is the repository's dependency-free observability layer:
// atomic counters, gauges, bucketed histograms and lightweight span timing
// behind one Registry, with Prometheus text exposition (prometheus.go).
//
// The design goal is that the simulation hot path pays nothing when
// observability is off. Every instrument is used through a pointer, and
// every method is a no-op on a nil receiver, so a package that has not been
// handed a live Registry holds nil instruments and each "record" call is a
// single predictable nil check — no allocation, no atomic traffic, no
// locks. A nil *Registry behaves the same way: its constructors return nil
// instruments, so `var reg *obs.Registry` is the no-op default.
//
// Metric names follow the `scone_<pkg>_<metric>_<unit>` convention (unit is
// one of total, count, ns, bytes, ratio); the obsnames sconevet pass
// enforces it at every registration site. Dimensions (for example the queue
// shard) are constant label pairs fixed at registration time.
//
// The determinism contract of the engine is untouched: instruments only
// count and time, they never feed values back into a simulation, so enabling
// or disabling observability cannot change a campaign result.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// kind discriminates the exposition type of a metric.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// desc is the identity of one registered instrument: base name, help text
// and the rendered constant-label set.
type desc struct {
	name   string
	help   string
	labels string // `{k="v",...}` or ""
	kind   kind
}

// fullName is the registry key: base name plus rendered labels.
func (d desc) fullName() string { return d.name + d.labels }

// metric is the exposition-side view of an instrument.
type metric interface {
	describe() desc
}

// Registry holds a set of registered instruments. The zero value is not
// usable; call NewRegistry. A nil *Registry is the documented no-op: all
// constructors return nil instruments.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]metric
}

// NewRegistry returns an empty live registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// renderLabels turns alternating key/value pairs into the canonical
// `{k="v",...}` form, sorted by key so the same label set always renders
// identically. It panics on an odd pair count — registration happens at
// startup, so this is a programmer error, not a runtime condition.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label pair count %d", len(pairs)))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// register records m under its full name. Registering the same full name
// twice returns the existing instrument when the kind matches (so enabling
// observability is idempotent) and panics on a kind clash.
func (r *Registry) register(m metric) metric {
	d := m.describe()
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[d.fullName()]; ok {
		if prev.describe().kind != d.kind {
			panic(fmt.Sprintf("obs: %s re-registered as a different kind", d.fullName()))
		}
		return prev
	}
	r.byName[d.fullName()] = m
	r.metrics = append(r.metrics, m)
	return m
}

// snapshotMetrics returns the registered instruments sorted by (name,
// labels) for stable exposition.
func (r *Registry) snapshotMetrics() []metric {
	r.mu.Lock()
	out := make([]metric, len(r.metrics))
	copy(out, r.metrics)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].describe(), out[j].describe()
		if di.name != dj.name {
			return di.name < dj.name
		}
		return di.labels < dj.labels
	})
	return out
}

// Counter is a monotonically increasing value. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Int64
	d desc
}

// NewCounter registers a counter. labels are alternating constant key/value
// pairs. Returns nil (the no-op instrument) on a nil registry.
func (r *Registry) NewCounter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{d: desc{name: name, help: help, labels: renderLabels(labels), kind: kindCounter}}
	return r.register(c).(*Counter)
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on the no-op instrument).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) describe() desc { return c.d }

// Gauge is a point-in-time value: either a stored atomic (Set/Add) or, when
// registered with NewGaugeFunc, a callback sampled at exposition time. All
// methods are no-ops on a nil receiver.
type Gauge struct {
	v  atomic.Int64
	fn func() int64
	d  desc
}

// NewGauge registers a stored gauge.
func (r *Registry) NewGauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{d: desc{name: name, help: help, labels: renderLabels(labels), kind: kindGauge}}
	return r.register(g).(*Gauge)
}

// NewGaugeFunc registers a gauge whose value is sampled from fn at
// exposition time — the right shape for values another structure already
// tracks (queue depth, map sizes).
func (r *Registry) NewGaugeFunc(name, help string, fn func() int64, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{fn: fn, d: desc{name: name, help: help, labels: renderLabels(labels), kind: kindGauge}}
	return r.register(g).(*Gauge)
}

// Set stores v. No-op on func gauges and nil receivers.
func (g *Gauge) Set(v int64) {
	if g == nil || g.fn != nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the stored value by n (negative to decrement).
func (g *Gauge) Add(n int64) {
	if g == nil || g.fn != nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value, sampling func gauges.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return g.v.Load()
}

func (g *Gauge) describe() desc { return g.d }
