package obs

import (
	"reflect"
	"testing"
)

// TestHistogramBucketBoundaries pins the inclusive-upper-bound contract: a
// value equal to a bound lands in that bound's bucket, one above it spills
// into the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("scone_test_bounds_ns", "", []int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 101, 1000, 1001, 1 << 40} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2, 2} // {1,10} {11,100} {101,1000} {1001,2^40}
	if got := h.Counts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("bucket counts = %v, want %v", got, want)
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d, want 8", h.Count())
	}
	wantSum := int64(1+10+11+100+101+1000+1001) + 1<<40
	if h.Sum() != wantSum {
		t.Fatalf("Sum = %d, want %d", h.Sum(), wantSum)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	r := NewRegistry()
	for name, bounds := range map[string][]int64{
		"empty":    {},
		"unsorted": {100, 10},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds should panic", name)
				}
			}()
			r.NewHistogram("scone_test_bad_ns", "", bounds)
		}()
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(10, 10, 4)
	want := []int64{10, 100, 1000, 10000}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExpBuckets = %v, want %v", got, want)
	}
	b := LatencyBuckets()
	if len(b) != 16 || b[0] != 64_000 {
		t.Fatalf("LatencyBuckets shape changed: len=%d first=%d", len(b), b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("LatencyBuckets not ascending at %d: %v", i, b)
		}
	}
}

func TestSpanObserves(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("scone_test_span_ns", "", LatencyBuckets())
	g := r.NewGauge("scone_test_span_active_count", "")
	s := StartSpanActive(h, g)
	if g.Value() != 1 {
		t.Fatalf("active gauge = %d during span, want 1", g.Value())
	}
	s.End()
	if g.Value() != 0 {
		t.Fatalf("active gauge = %d after span, want 0", g.Value())
	}
	if h.Count() != 1 {
		t.Fatalf("span did not observe: count=%d", h.Count())
	}
	if h.Sum() < 0 {
		t.Fatal("negative duration observed")
	}
}
