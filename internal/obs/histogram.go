package obs

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution of int64 observations (the
// repository's histograms measure durations in nanoseconds and sizes in
// plain counts). Buckets are defined by their inclusive upper bounds; an
// implicit +Inf bucket catches everything above the last bound. Observe is
// lock-free and allocation-free, so histograms can sit on per-batch paths.
type Histogram struct {
	d      desc
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Int64
}

// NewHistogram registers a histogram over the given bucket upper bounds
// (must be sorted ascending and non-empty). Returns nil on a nil registry.
func (r *Registry) NewHistogram(name, help string, bounds []int64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	if !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
		panic(fmt.Sprintf("obs: histogram %s bounds not ascending: %v", name, bounds))
	}
	h := &Histogram{
		d:      desc{name: name, help: help, labels: renderLabels(labels), kind: kindHistogram},
		bounds: append([]int64(nil), bounds...),
	}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return r.register(h).(*Histogram)
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return append([]int64(nil), h.bounds...)
}

// Counts returns the per-bucket (non-cumulative) observation counts; the
// final entry is the +Inf bucket.
func (h *Histogram) Counts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

func (h *Histogram) describe() desc { return h.d }

// ExpBuckets builds n exponentially spaced bucket bounds starting at base
// and multiplying by factor — the standard shape for latency histograms.
func ExpBuckets(base int64, factor float64, n int) []int64 {
	if base <= 0 || factor <= 1 || n <= 0 {
		panic(fmt.Sprintf("obs: bad ExpBuckets(%d, %g, %d)", base, factor, n))
	}
	out := make([]int64, n)
	f := float64(base)
	for i := range out {
		out[i] = int64(f)
		f *= factor
	}
	return out
}

// LatencyBuckets is the repository's default duration histogram shape:
// 16 exponential buckets from 64µs up to hours, in nanoseconds. It covers
// everything from one checkpoint write to a full 80k-run campaign.
func LatencyBuckets() []int64 { return ExpBuckets(64_000, 4, 16) }
