// Package spn describes substitution-permutation-network block ciphers in a
// form that both the software reference implementations and the netlist
// builders can consume: an S-box table, a bit permutation, and a key
// schedule expressed as a small state machine.
//
// The countermeasure constructions of internal/core are generic over this
// description — the paper's claim that the scheme "is easily adaptable for
// any symmetric key primitive" is realised by making every builder take a
// *Spec.
package spn

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/netlist"
)

// KeyState is the key-schedule register contents; word 0 carries key bits
// 0..63 (LSB first), word 1 carries bits 64..127.
type KeyState [2]uint64

// Bit returns bit i of the key state.
func (k KeyState) Bit(i int) uint64 {
	return (k[i>>6] >> uint(i&63)) & 1
}

// SetBit returns the state with bit i set to v.
func (k KeyState) SetBit(i int, v uint64) KeyState {
	k[i>>6] &^= 1 << uint(i&63)
	k[i>>6] |= (v & 1) << uint(i&63)
	return k
}

// SboxNetFunc instantiates an S-box netlist over the input bus and returns
// the output bus. The countermeasure builders pass different
// implementations here (plain, inverted, or merged); the key schedule
// always receives the plain one, since the paper leaves the key schedule in
// the normal encoding.
type SboxNetFunc func(m *netlist.Module, instName string, in netlist.Bus) netlist.Bus

// Spec is a complete SPN cipher description.
//
// The per-round datapath is, in order:
//
//	if !KeyAddAfterPerm: state ^= roundXORMask
//	state = SboxLayer(state)
//	state = Permute(state)
//	if KeyAddAfterPerm:  state ^= roundXORMask
//
// followed, after the last round, by a final XOR with the next round's mask
// when FinalWhitening is set (PRESENT's K32 whitening).
type Spec struct {
	Name      string
	BlockBits int // block size, at most 64
	KeyBits   int // key size, at most 128
	Rounds    int
	SboxBits  int      // S-box width n (the S-box is n x n)
	Sbox      []uint64 // length 1<<SboxBits
	Perm      []int    // post-S-box bit permutation: output bit Perm[i] = input bit i
	// LinearRows, when non-nil, replaces Perm with a general invertible
	// GF(2) linear layer: bit i of LinearRows[j] says input bit i XORs
	// into output bit j. Bit permutations are the special case of
	// weight-1 rows; several lightweight designs mix with denser rows.
	LinearRows []uint64

	// KeyAddAfterPerm places the round-key XOR after the permutation
	// (GIFT style) instead of before the S-box layer (PRESENT style).
	KeyAddAfterPerm bool
	// FinalWhitening XORs one extra round mask after the last round.
	FinalWhitening bool

	// KeyStateBits is the width of the key-schedule register.
	KeyStateBits int
	// InitKeyState maps the externally supplied key to the initial
	// register value (usually the identity).
	InitKeyState func(key KeyState) KeyState
	// RoundXORMask extracts the BlockBits-wide XOR mask applied in round
	// r (1-based) from the current key state. Round constants that the
	// cipher XORs into the state belong in this mask too.
	RoundXORMask func(ks KeyState, r int) uint64
	// NextKeyState advances the key schedule after round r (1-based).
	NextKeyState func(ks KeyState, r int) KeyState

	// KeySchedNet is the netlist form of (RoundXORMask, NextKeyState):
	// given the key-state bus and the CounterWidth-bit round counter, it
	// returns the round XOR mask bus and the next key-state bus. sbox
	// instantiates the cipher's plain S-box.
	KeySchedNet func(m *netlist.Module, ks netlist.Bus, counter netlist.Bus, sbox SboxNetFunc) (mask, next netlist.Bus)

	// CounterBits is the width of the round-counter register the core
	// hands to KeySchedNet. Zero means the default of 6 bits. Declaring
	// the exact width the key schedule consumes keeps the synthesised
	// core free of unobservable counter logic.
	CounterBits int
}

// CounterWidth returns the round-counter width in bits (CounterBits, or
// the default of 6 when unset).
func (s *Spec) CounterWidth() int {
	if s.CounterBits > 0 {
		return s.CounterBits
	}
	return 6
}

// NumSboxes returns the number of parallel S-boxes per layer.
func (s *Spec) NumSboxes() int { return s.BlockBits / s.SboxBits }

// Validate checks internal consistency of the description.
func (s *Spec) Validate() error {
	switch {
	case s.BlockBits <= 0 || s.BlockBits > 64:
		return fmt.Errorf("spn: %s: block size %d out of range", s.Name, s.BlockBits)
	case s.KeyBits <= 0 || s.KeyBits > 128:
		return fmt.Errorf("spn: %s: key size %d out of range", s.Name, s.KeyBits)
	case s.Rounds <= 0:
		return fmt.Errorf("spn: %s: round count %d out of range", s.Name, s.Rounds)
	case s.CounterBits < 0 || s.CounterBits > 16:
		return fmt.Errorf("spn: %s: counter width %d out of range", s.Name, s.CounterBits)
	case s.Rounds >= 1<<uint(s.CounterWidth()):
		return fmt.Errorf("spn: %s: %d rounds do not fit a %d-bit counter", s.Name, s.Rounds, s.CounterWidth())
	case s.BlockBits%s.SboxBits != 0:
		return fmt.Errorf("spn: %s: block %d not divisible by S-box width %d", s.Name, s.BlockBits, s.SboxBits)
	case len(s.Sbox) != 1<<uint(s.SboxBits):
		return fmt.Errorf("spn: %s: S-box table length %d, want %d", s.Name, len(s.Sbox), 1<<uint(s.SboxBits))
	case s.LinearRows == nil && len(s.Perm) != s.BlockBits:
		return fmt.Errorf("spn: %s: permutation length %d, want %d", s.Name, len(s.Perm), s.BlockBits)
	case s.LinearRows == nil && !bits.IsPermutation(s.Perm):
		return fmt.Errorf("spn: %s: Perm is not a permutation", s.Name)
	case s.LinearRows != nil && len(s.LinearRows) != s.BlockBits:
		return fmt.Errorf("spn: %s: linear layer has %d rows, want %d", s.Name, len(s.LinearRows), s.BlockBits)
	case s.KeyStateBits <= 0 || s.KeyStateBits > 128:
		return fmt.Errorf("spn: %s: key state width %d out of range", s.Name, s.KeyStateBits)
	case s.InitKeyState == nil || s.RoundXORMask == nil || s.NextKeyState == nil:
		return fmt.Errorf("spn: %s: missing key-schedule functions", s.Name)
	}
	for i, v := range s.Sbox {
		if v >= 1<<uint(s.SboxBits) {
			return fmt.Errorf("spn: %s: S-box entry %d = %d out of range", s.Name, i, v)
		}
	}
	if s.LinearRows != nil {
		if _, ok := bits.MatInvert(s.LinearRows); !ok {
			return fmt.Errorf("spn: %s: linear layer is singular", s.Name)
		}
	}
	return nil
}

// LinearLayerRows returns the linear layer as a GF(2) matrix, materialised
// from Perm when LinearRows is not set.
func (s *Spec) LinearLayerRows() []uint64 {
	if s.LinearRows != nil {
		return s.LinearRows
	}
	return bits.PermutationRows(s.Perm)
}

// ApplyLinear applies the linear layer to a state word.
func (s *Spec) ApplyLinear(state uint64) uint64 {
	if s.LinearRows == nil {
		return bits.Permute64(state, s.Perm)
	}
	return bits.MatMulVec(s.LinearRows, state)
}

// SboxLayer applies the S-box to every SboxBits-wide group of state.
func (s *Spec) SboxLayer(state uint64) uint64 {
	var out uint64
	w := uint(s.SboxBits)
	mask := uint64(1)<<w - 1
	for i := 0; i < s.NumSboxes(); i++ {
		out |= s.Sbox[(state>>(uint(i)*w))&mask] << (uint(i) * w)
	}
	return out
}

// SboxInput extracts the input value of S-box idx from a full state word.
func (s *Spec) SboxInput(state uint64, idx int) uint64 {
	w := uint(s.SboxBits)
	return (state >> (uint(idx) * w)) & (uint64(1)<<w - 1)
}

// Encrypt runs the software reference encryption.
func (s *Spec) Encrypt(pt uint64, key KeyState) uint64 {
	state := pt & bits.Mask(s.BlockBits)
	ks := s.InitKeyState(key)
	for r := 1; r <= s.Rounds; r++ {
		mask := s.RoundXORMask(ks, r)
		if !s.KeyAddAfterPerm {
			state ^= mask
		}
		state = s.SboxLayer(state)
		state = s.ApplyLinear(state)
		if s.KeyAddAfterPerm {
			state ^= mask
		}
		ks = s.NextKeyState(ks, r)
	}
	if s.FinalWhitening {
		state ^= s.RoundXORMask(ks, s.Rounds+1)
	}
	return state
}

// RoundStates returns the state at the *input* of every round (index r-1
// holds the state entering round r) plus the final ciphertext as the last
// element. Attack implementations use it to obtain ground-truth
// intermediate values (e.g. the S-box inputs of the last round).
func (s *Spec) RoundStates(pt uint64, key KeyState) []uint64 {
	states := make([]uint64, 0, s.Rounds+1)
	state := pt & bits.Mask(s.BlockBits)
	ks := s.InitKeyState(key)
	for r := 1; r <= s.Rounds; r++ {
		states = append(states, state)
		mask := s.RoundXORMask(ks, r)
		if !s.KeyAddAfterPerm {
			state ^= mask
		}
		state = s.SboxLayer(state)
		state = s.ApplyLinear(state)
		if s.KeyAddAfterPerm {
			state ^= mask
		}
		ks = s.NextKeyState(ks, r)
	}
	if s.FinalWhitening {
		state ^= s.RoundXORMask(ks, s.Rounds+1)
	}
	states = append(states, state)
	return states
}

// SboxLayerInput returns the full state entering the S-box layer of round r
// (1-based): the state after the pre-S-box key addition of that round. Use
// SboxInput to extract a single S-box's nibble from it.
func (s *Spec) SboxLayerInput(pt uint64, key KeyState, r int) uint64 {
	state := pt & bits.Mask(s.BlockBits)
	ks := s.InitKeyState(key)
	for round := 1; round <= s.Rounds && round <= r; round++ {
		mask := s.RoundXORMask(ks, round)
		pre := state
		if !s.KeyAddAfterPerm {
			pre ^= mask
		}
		if round == r {
			return pre
		}
		state = s.SboxLayer(pre)
		state = s.ApplyLinear(state)
		if s.KeyAddAfterPerm {
			state ^= mask
		}
		ks = s.NextKeyState(ks, round)
	}
	panic(fmt.Sprintf("spn: round %d out of range 1..%d", r, s.Rounds))
}

// InverseSbox returns the inverse lookup table; it panics if the S-box is
// not a permutation.
func (s *Spec) InverseSbox() []uint64 {
	inv := make([]uint64, len(s.Sbox))
	seen := make([]bool, len(s.Sbox))
	for x, y := range s.Sbox {
		if seen[y] {
			panic(fmt.Sprintf("spn: %s: S-box is not a permutation", s.Name))
		}
		seen[y] = true
		inv[y] = uint64(x)
	}
	return inv
}
