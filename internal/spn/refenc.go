package spn

import "repro/internal/bits"

// RefEncrypter is the software reference encryption specialised to a fixed
// key: the key schedule is expanded once up front and the S-box layer is
// fused with the linear layer into per-position lookup tables, so each
// round costs NumSboxes table lookups instead of a full schedule update
// plus a bit-by-bit permutation. Campaign classification calls the
// reference once per simulated run, which makes the generic Encrypt the
// dominant cost of a campaign; this precomputed form removes everything
// that does not depend on the plaintext. Results are bit-identical to
// Spec.Encrypt with the same key.
type RefEncrypter struct {
	spec  *Spec
	masks []uint64 // round XOR masks K1..Kr (+ whitening mask when present)
	// fused[i<<SboxBits|v] is the linear-layer image of S-box position i
	// producing output v — valid because the linear layer distributes over
	// the XOR of per-position contributions.
	fused []uint64
}

// NewRefEncrypter expands the key schedule and fuses the substitution and
// linear layers for the given key.
func (s *Spec) NewRefEncrypter(key KeyState) *RefEncrypter {
	e := &RefEncrypter{spec: s}
	n := s.Rounds
	if s.FinalWhitening {
		n++
	}
	e.masks = make([]uint64, n)
	ks := s.InitKeyState(key)
	for r := 1; r <= s.Rounds; r++ {
		e.masks[r-1] = s.RoundXORMask(ks, r)
		ks = s.NextKeyState(ks, r)
	}
	if s.FinalWhitening {
		e.masks[s.Rounds] = s.RoundXORMask(ks, s.Rounds+1)
	}
	w := uint(s.SboxBits)
	e.fused = make([]uint64, s.NumSboxes()<<w)
	for i := 0; i < s.NumSboxes(); i++ {
		for v := uint64(0); v < 1<<w; v++ {
			e.fused[i<<w|int(v)] = s.ApplyLinear(s.Sbox[v] << (uint(i) * w))
		}
	}
	return e
}

// Encrypt runs the reference encryption; bit-identical to
// spec.Encrypt(pt, key) for the key the encrypter was built with.
func (e *RefEncrypter) Encrypt(pt uint64) uint64 {
	s := e.spec
	state := pt & bits.Mask(s.BlockBits)
	w := uint(s.SboxBits)
	m := uint64(1)<<w - 1
	n := s.NumSboxes()
	for r := 0; r < s.Rounds; r++ {
		mask := e.masks[r]
		if !s.KeyAddAfterPerm {
			state ^= mask
		}
		var next uint64
		for i := 0; i < n; i++ {
			next ^= e.fused[i<<w|int((state>>(uint(i)*w))&m)]
		}
		state = next
		if s.KeyAddAfterPerm {
			state ^= mask
		}
	}
	if s.FinalWhitening {
		state ^= e.masks[s.Rounds]
	}
	return state
}
