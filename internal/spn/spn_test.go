package spn

import (
	"testing"
	"testing/quick"
)

// toySpec is a tiny 8-bit SPN for structural tests.
func toySpec() *Spec {
	return &Spec{
		Name:           "toy8",
		BlockBits:      8,
		KeyBits:        16,
		Rounds:         4,
		SboxBits:       4,
		Sbox:           []uint64{0xC, 5, 6, 0xB, 9, 0, 0xA, 0xD, 3, 0xE, 0xF, 8, 4, 7, 1, 2},
		Perm:           []int{0, 2, 4, 6, 1, 3, 5, 7},
		FinalWhitening: true,
		KeyStateBits:   16,
		InitKeyState:   func(k KeyState) KeyState { return k },
		RoundXORMask:   func(ks KeyState, r int) uint64 { return ks[0] & 0xFF },
		NextKeyState: func(ks KeyState, r int) KeyState {
			ks[0] = ((ks[0] << 3) | (ks[0] >> 13)) & 0xFFFF
			ks[0] ^= uint64(r)
			return ks
		},
	}
}

func TestValidateAcceptsToy(t *testing.T) {
	if err := toySpec().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	mutations := []func(*Spec){
		func(s *Spec) { s.BlockBits = 0 },
		func(s *Spec) { s.BlockBits = 65 },
		func(s *Spec) { s.KeyBits = 129 },
		func(s *Spec) { s.Rounds = 0 },
		func(s *Spec) { s.SboxBits = 3 },        // 8 % 3 != 0
		func(s *Spec) { s.Sbox = s.Sbox[:8] },   // wrong table size
		func(s *Spec) { s.Sbox[0] = 16 },        // entry out of range
		func(s *Spec) { s.Perm = s.Perm[:4] },   // wrong perm length
		func(s *Spec) { s.Perm[0] = s.Perm[1] }, // not a permutation
		func(s *Spec) { s.InitKeyState = nil },  // missing schedule
		func(s *Spec) { s.KeyStateBits = 0 },
	}
	for i, mutate := range mutations {
		s := toySpec()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
}

func TestSboxLayerAndInput(t *testing.T) {
	s := toySpec()
	state := uint64(0x05) // nibble0=5, nibble1=0
	out := s.SboxLayer(state)
	if out != (s.Sbox[0]<<4 | s.Sbox[5]) {
		t.Fatalf("SboxLayer = %02X", out)
	}
	if s.SboxInput(0xAB, 0) != 0xB || s.SboxInput(0xAB, 1) != 0xA {
		t.Fatal("SboxInput wrong")
	}
	if s.NumSboxes() != 2 {
		t.Fatal("NumSboxes wrong")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	s := toySpec()
	f := func(pt uint8, key uint16) bool {
		k := KeyState{uint64(key), 0}
		ct := s.Encrypt(uint64(pt), k)
		return s.Decrypt(ct, k) == uint64(pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundStatesConsistency(t *testing.T) {
	s := toySpec()
	key := KeyState{0x1234, 0}
	states := s.RoundStates(0x5A, key)
	if len(states) != s.Rounds+1 {
		t.Fatalf("RoundStates length %d", len(states))
	}
	if states[0] != 0x5A {
		t.Fatal("first state must be the plaintext")
	}
	if states[s.Rounds] != s.Encrypt(0x5A, key) {
		t.Fatal("last state must be the ciphertext")
	}
}

func TestSboxLayerInputMatchesRoundStates(t *testing.T) {
	s := toySpec()
	key := KeyState{0xBEEF, 0}
	pt := uint64(0x3C)
	// For a pre-S-box key-add cipher, the S-box layer input of round r
	// is the round-r input state XOR the round mask.
	states := s.RoundStates(pt, key)
	ks := s.InitKeyState(key)
	for r := 1; r <= s.Rounds; r++ {
		want := states[r-1] ^ s.RoundXORMask(ks, r)
		if got := s.SboxLayerInput(pt, key, r); got != want {
			t.Fatalf("round %d: SboxLayerInput %02X, want %02X", r, got, want)
		}
		ks = s.NextKeyState(ks, r)
	}
}

func TestInverseSbox(t *testing.T) {
	s := toySpec()
	inv := s.InverseSbox()
	for x := uint64(0); x < 16; x++ {
		if inv[s.Sbox[x]] != x {
			t.Fatal("inverse S-box wrong")
		}
	}
}

func TestInverseSboxPanicsOnNonPermutation(t *testing.T) {
	s := toySpec()
	s.Sbox[0] = s.Sbox[1]
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.InverseSbox()
}

func TestKeyStateBitOps(t *testing.T) {
	var k KeyState
	k = k.SetBit(0, 1).SetBit(63, 1).SetBit(64, 1).SetBit(127, 1)
	if k.Bit(0) != 1 || k.Bit(63) != 1 || k.Bit(64) != 1 || k.Bit(127) != 1 || k.Bit(1) != 0 {
		t.Fatalf("bit ops wrong: %x", k)
	}
	k = k.SetBit(63, 0)
	if k.Bit(63) != 0 {
		t.Fatal("clear failed")
	}
}

func TestKeyAddAfterPermVariant(t *testing.T) {
	s := toySpec()
	s.KeyAddAfterPerm = true
	s.FinalWhitening = false
	f := func(pt uint8, key uint16) bool {
		k := KeyState{uint64(key), 0}
		ct := s.Encrypt(uint64(pt), k)
		return s.Decrypt(ct, k) == uint64(pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
