package spn_test

import (
	"testing"

	"repro/internal/cipher/gift"
	"repro/internal/cipher/present"
	"repro/internal/cipher/scone64"
	"repro/internal/rng"
	"repro/internal/spn"
)

// TestRefEncrypterMatchesEncrypt proves the precomputed reference is
// bit-identical to the generic Encrypt across every published cipher spec —
// PRESENT-style post-S-box key addition with whitening, GIFT-style
// post-permutation addition without, and the scone64 toy — over random
// plaintext/key pairs. Campaign classification leans on this equivalence.
func TestRefEncrypterMatchesEncrypt(t *testing.T) {
	specs := map[string]*spn.Spec{
		"present80": present.Spec(),
		"gift64":    gift.Spec(),
		"scone64":   scone64.Spec(),
	}
	for name, s := range specs {
		t.Run(name, func(t *testing.T) {
			gen := rng.NewXoshiro(0x2EF ^ uint64(len(name)))
			for trial := 0; trial < 32; trial++ {
				key := spn.KeyState{gen.Uint64(), gen.Uint64()}
				e := s.NewRefEncrypter(key)
				for i := 0; i < 64; i++ {
					pt := gen.Uint64()
					want := s.Encrypt(pt, key)
					if got := e.Encrypt(pt); got != want {
						t.Fatalf("pt=%#x key=%v: RefEncrypter %#x, Encrypt %#x",
							pt, key, got, want)
					}
				}
			}
		})
	}
}
