package spn

import "repro/internal/bits"

// Decrypt inverts Encrypt generically: it expands the round XOR masks
// forward and then undoes every round with the inverse S-box and inverse
// permutation.
func (s *Spec) Decrypt(ct uint64, key KeyState) uint64 {
	masks := make([]uint64, s.Rounds+1)
	ks := s.InitKeyState(key)
	for r := 1; r <= s.Rounds; r++ {
		masks[r-1] = s.RoundXORMask(ks, r)
		ks = s.NextKeyState(ks, r)
	}
	if s.FinalWhitening {
		masks[s.Rounds] = s.RoundXORMask(ks, s.Rounds+1)
	}

	invS := s.InverseSbox()
	invRows, ok := bits.MatInvert(s.LinearLayerRows())
	if !ok {
		panic("spn: linear layer is singular")
	}
	w := uint(s.SboxBits)
	sboxMask := uint64(1)<<w - 1

	state := ct & bits.Mask(s.BlockBits)
	if s.FinalWhitening {
		state ^= masks[s.Rounds]
	}
	for r := s.Rounds; r >= 1; r-- {
		if s.KeyAddAfterPerm {
			state ^= masks[r-1]
		}
		state = bits.MatMulVec(invRows, state)
		var next uint64
		for i := 0; i < s.NumSboxes(); i++ {
			next |= invS[(state>>(uint(i)*w))&sboxMask] << (uint(i) * w)
		}
		state = next
		if !s.KeyAddAfterPerm {
			state ^= masks[r-1]
		}
	}
	return state
}
