package verify

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/synth"
)

var presentSbox = []uint64{0xC, 5, 6, 0xB, 9, 0, 0xA, 0xD, 3, 0xE, 0xF, 8, 4, 7, 1, 2}

func sboxPair() (*netlist.Module, *netlist.Module) {
	tt := synth.FromSbox(presentSbox, 4)
	a := tt.SynthesizeANF("a", "x", "y")
	b := tt.SynthesizeBDD("a", "x", "y") // same name so port shapes match
	return a, b
}

func TestExhaustiveEquivalentEngines(t *testing.T) {
	a, b := sboxPair()
	cex, err := Exhaustive(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cex != nil {
		t.Fatalf("ANF and BDD synthesis disagree: %s", cex)
	}
}

func TestBDDEquivalentEngines(t *testing.T) {
	a, b := sboxPair()
	cex, err := BDD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cex != nil {
		t.Fatalf("BDD check found a difference: %s", cex)
	}
}

func TestOptimizerVerifiedByAllStrategies(t *testing.T) {
	tt := synth.FromSbox(presentSbox, 4).Merged()
	m := tt.SynthesizeANF("m", "x", "y")
	o := synth.Optimize(m, synth.DefaultOptOptions())
	o.Name = m.Name
	if cex, err := Exhaustive(m, o); err != nil || cex != nil {
		t.Fatalf("exhaustive: %v %v", err, cex)
	}
	if cex, err := Random(m, o, 500, 1); err != nil || cex != nil {
		t.Fatalf("random: %v %v", err, cex)
	}
	if cex, err := BDD(m, o); err != nil || cex != nil {
		t.Fatalf("bdd: %v %v", err, cex)
	}
}

// broken returns an S-box netlist with one cell kind corrupted.
func broken() (*netlist.Module, *netlist.Module) {
	a, _ := sboxPair()
	b := a.Clone()
	for i := range b.Cells {
		if b.Cells[i].Kind == netlist.KindXor2 {
			b.Cells[i].Kind = netlist.KindXnor2
			break
		}
	}
	return a, b
}

func TestExhaustiveFindsInjectedBug(t *testing.T) {
	a, b := broken()
	cex, err := Exhaustive(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cex == nil {
		t.Fatal("injected bug not found")
	}
	if cex.GotA == cex.GotB {
		t.Fatal("counterexample does not distinguish")
	}
}

func TestBDDFindsInjectedBug(t *testing.T) {
	a, b := broken()
	cex, err := BDD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cex == nil {
		t.Fatal("injected bug not found by BDD check")
	}
}

func TestRandomFindsInjectedBug(t *testing.T) {
	a, b := broken()
	cex, err := Random(a, b, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cex == nil {
		t.Fatal("injected bug not found by random simulation")
	}
}

func TestPortShapeMismatchRejected(t *testing.T) {
	a, _ := sboxPair()
	c := netlist.New("a")
	in := c.AddInput("z", 4)
	c.AddOutput("y", in)
	if _, err := Exhaustive(a, c); err == nil {
		t.Fatal("port name mismatch should error")
	}
}

func TestExhaustiveWidthGuard(t *testing.T) {
	m := netlist.New("wide")
	in := m.AddInput("x", 30)
	m.AddOutput("y", netlist.Bus{m.OrReduce(in)})
	if _, err := Exhaustive(m, m.Clone()); err == nil {
		t.Fatal("expected width guard error")
	}
}

func TestBDDRejectsSequential(t *testing.T) {
	m := netlist.New("seq")
	in := m.AddInput("x", 1)
	m.AddOutput("y", netlist.Bus{m.DFF(in[0])})
	if _, err := BDD(m, m.Clone()); err == nil {
		t.Fatal("expected sequential rejection")
	}
}
