// Package verify provides combinational equivalence checking between
// netlists — the miniature formal-verification step a synthesis flow runs
// after optimisation. Three strategies are provided:
//
//   - exhaustive simulation (complete for small input counts),
//   - random simulation (a falsifier for wide inputs), and
//   - BDD-based checking (canonical-form equality, complete for modules
//     whose BDDs stay small).
//
// The synthesis and countermeasure test suites use it to prove that the
// optimiser and the encoding transformations preserve behaviour.
package verify

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/netlist"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Counterexample reports one input assignment on which two modules
// disagree.
type Counterexample struct {
	Inputs map[string]uint64
	Port   string
	GotA   uint64
	GotB   uint64
}

// String formats the counterexample.
func (c *Counterexample) String() string {
	return fmt.Sprintf("output %q: %X vs %X under %v", c.Port, c.GotA, c.GotB, c.Inputs)
}

// samePortShape checks that two modules expose identical port signatures.
func samePortShape(a, b *netlist.Module) error {
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		return fmt.Errorf("verify: port count mismatch")
	}
	for i := range a.Inputs {
		pa, pb := &a.Inputs[i], &b.Inputs[i]
		if pa.Name != pb.Name || pa.Width() != pb.Width() {
			return fmt.Errorf("verify: input %d differs: %s[%d] vs %s[%d]",
				i, pa.Name, pa.Width(), pb.Name, pb.Width())
		}
	}
	for i := range a.Outputs {
		pa, pb := &a.Outputs[i], &b.Outputs[i]
		if pa.Name != pb.Name || pa.Width() != pb.Width() {
			return fmt.Errorf("verify: output %d differs: %s[%d] vs %s[%d]",
				i, pa.Name, pa.Width(), pb.Name, pb.Width())
		}
	}
	return nil
}

func totalInputBits(m *netlist.Module) int {
	n := 0
	for i := range m.Inputs {
		n += m.Inputs[i].Width()
	}
	return n
}

// assign spreads the bits of x across the input ports in declaration
// order.
func assign(m *netlist.Module, x uint64) map[string]uint64 {
	out := make(map[string]uint64, len(m.Inputs))
	for i := range m.Inputs {
		w := m.Inputs[i].Width()
		out[m.Inputs[i].Name] = x & (1<<uint(w) - 1)
		x >>= uint(w)
	}
	return out
}

func compare(ca, cb *sim.Compiled, in map[string]uint64) *Counterexample {
	oa := sim.EvalComb(ca, in)
	ob := sim.EvalComb(cb, in)
	for i := range ca.Mod.Outputs {
		name := ca.Mod.Outputs[i].Name
		if oa[name] != ob[name] {
			return &Counterexample{Inputs: in, Port: name, GotA: oa[name], GotB: ob[name]}
		}
	}
	return nil
}

// Exhaustive checks all 2^k assignments; it refuses modules with more than
// 24 total input bits. A nil counterexample means the modules are
// equivalent.
func Exhaustive(a, b *netlist.Module) (*Counterexample, error) {
	if err := samePortShape(a, b); err != nil {
		return nil, err
	}
	k := totalInputBits(a)
	if k > 24 {
		return nil, fmt.Errorf("verify: %d input bits too wide for exhaustive checking", k)
	}
	ca, err := sim.CompileCached(a)
	if err != nil {
		return nil, err
	}
	cb, err := sim.CompileCached(b)
	if err != nil {
		return nil, err
	}
	for x := uint64(0); x < 1<<uint(k); x++ {
		if cex := compare(ca, cb, assign(a, x)); cex != nil {
			return cex, nil
		}
	}
	return nil, nil
}

// Random performs n random simulation trials; it can only falsify, never
// prove, equivalence.
func Random(a, b *netlist.Module, n int, seed uint64) (*Counterexample, error) {
	if err := samePortShape(a, b); err != nil {
		return nil, err
	}
	ca, err := sim.CompileCached(a)
	if err != nil {
		return nil, err
	}
	cb, err := sim.CompileCached(b)
	if err != nil {
		return nil, err
	}
	gen := rng.NewXoshiro(seed)
	for i := 0; i < n; i++ {
		in := make(map[string]uint64, len(a.Inputs))
		for pi := range a.Inputs {
			w := a.Inputs[pi].Width()
			var v uint64
			if w >= 64 {
				v = gen.Uint64()
			} else {
				v = gen.Bits(w)
			}
			in[a.Inputs[pi].Name] = v
		}
		if cex := compare(ca, cb, in); cex != nil {
			return cex, nil
		}
	}
	return nil, nil
}

// BDD builds the shared BDD of both modules' output functions and compares
// them node for node — a complete combinational equivalence check for
// modules whose BDDs stay tractable (the guard rejects modules with more
// than 32 input bits; DFFs are unsupported).
func BDD(a, b *netlist.Module) (*Counterexample, error) {
	if err := samePortShape(a, b); err != nil {
		return nil, err
	}
	k := totalInputBits(a)
	if k > 32 {
		return nil, fmt.Errorf("verify: %d input bits too wide for BDD checking", k)
	}
	if a.NumDFFs() > 0 || b.NumDFFs() > 0 {
		return nil, fmt.Errorf("verify: BDD checking is combinational only")
	}
	mgr := bdd.New(k)
	fa, err := outputsToBDD(mgr, a)
	if err != nil {
		return nil, err
	}
	fb, err := outputsToBDD(mgr, b)
	if err != nil {
		return nil, err
	}
	for i := range fa {
		for bit := range fa[i] {
			if fa[i][bit] != fb[i][bit] {
				// Extract a distinguishing assignment from the
				// XOR of the two functions.
				diff := mgr.Xor(fa[i][bit], fb[i][bit])
				x := satAssignment(mgr, diff)
				in := assign(a, x)
				ca, _ := sim.CompileCached(a)
				cb, _ := sim.CompileCached(b)
				if cex := compare(ca, cb, in); cex != nil {
					return cex, nil
				}
				return &Counterexample{Inputs: in, Port: a.Outputs[i].Name}, nil
			}
		}
	}
	return nil, nil
}

// outputsToBDD lowers every output bit of a combinational module to a BDD
// node. BDD variable j corresponds to the j-th input bit in declaration
// order.
func outputsToBDD(mgr *bdd.Manager, m *netlist.Module) ([][]bdd.Node, error) {
	order, err := m.Levelize()
	if err != nil {
		return nil, err
	}
	val := make([]bdd.Node, m.NumNets()+1)
	for i := range val {
		val[i] = bdd.False
	}
	varIdx := 0
	for pi := range m.Inputs {
		for _, n := range m.Inputs[pi].Bits {
			val[n] = mgr.Var(varIdx)
			varIdx++
		}
	}
	for _, ci := range order {
		c := &m.Cells[ci]
		in := c.Inputs()
		var f bdd.Node
		switch c.Kind {
		case netlist.KindConst0:
			f = bdd.False
		case netlist.KindConst1:
			f = bdd.True
		case netlist.KindBuf:
			f = val[in[0]]
		case netlist.KindInv:
			f = mgr.Not(val[in[0]])
		case netlist.KindAnd2:
			f = mgr.And(val[in[0]], val[in[1]])
		case netlist.KindOr2:
			f = mgr.Or(val[in[0]], val[in[1]])
		case netlist.KindNand2:
			f = mgr.Not(mgr.And(val[in[0]], val[in[1]]))
		case netlist.KindNor2:
			f = mgr.Not(mgr.Or(val[in[0]], val[in[1]]))
		case netlist.KindXor2:
			f = mgr.Xor(val[in[0]], val[in[1]])
		case netlist.KindXnor2:
			f = mgr.Xnor(val[in[0]], val[in[1]])
		case netlist.KindMux2:
			f = mgr.ITE(val[in[2]], val[in[1]], val[in[0]])
		default:
			return nil, fmt.Errorf("verify: unsupported cell kind %s", c.Kind)
		}
		val[c.Out] = f
	}
	out := make([][]bdd.Node, len(m.Outputs))
	for i := range m.Outputs {
		out[i] = make([]bdd.Node, m.Outputs[i].Width())
		for bit, n := range m.Outputs[i].Bits {
			out[i][bit] = val[n]
		}
	}
	return out, nil
}

// satAssignment extracts one satisfying assignment of f (f must not be
// False).
func satAssignment(mgr *bdd.Manager, f bdd.Node) uint64 {
	var x uint64
	for !mgr.IsTerminal(f) {
		lvl := mgr.Level(f)
		lo, hi := mgr.Cofactors(f)
		if lo != bdd.False {
			f = lo
		} else {
			x |= 1 << uint(lvl)
			f = hi
		}
	}
	return x
}
