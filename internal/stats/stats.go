// Package stats implements the statistical toolkit of the SIFA literature:
// value histograms, the squared Euclidean imbalance (SEI) distinguisher,
// Pearson's chi-squared uniformity test, and Shannon entropy. The fault
// campaigns use these both to render the paper's Figures 4 and 5 and to
// decide — as an attacker would — whether a distribution leaks.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram counts occurrences of values in a fixed domain [0, Bins).
type Histogram struct {
	Counts []uint64
	Total  uint64
}

// NewHistogram creates a histogram with the given number of bins.
func NewHistogram(bins int) *Histogram {
	return &Histogram{Counts: make([]uint64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(v uint64) {
	h.Counts[v]++
	h.Total++
}

// AddN records n observations of v.
func (h *Histogram) AddN(v uint64, n uint64) {
	h.Counts[v] += n
	h.Total += n
}

// Bins returns the domain size.
func (h *Histogram) Bins() int { return len(h.Counts) }

// Probabilities returns the empirical distribution (nil if empty).
func (h *Histogram) Probabilities() []float64 {
	if h.Total == 0 {
		return nil
	}
	p := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		p[i] = float64(c) / float64(h.Total)
	}
	return p
}

// SEI returns the squared Euclidean imbalance against the uniform
// distribution: sum_i (p_i - 1/N)^2. This is the standard SIFA
// distinguisher statistic; it is zero for a perfectly uniform sample and
// grows with bias.
func (h *Histogram) SEI() float64 {
	if h.Total == 0 {
		return 0
	}
	u := 1 / float64(len(h.Counts))
	var sei float64
	for _, c := range h.Counts {
		d := float64(c)/float64(h.Total) - u
		sei += d * d
	}
	return sei
}

// ChiSquared returns Pearson's chi-squared statistic against the uniform
// distribution, with len(Counts)-1 degrees of freedom.
func (h *Histogram) ChiSquared() float64 {
	if h.Total == 0 {
		return 0
	}
	exp := float64(h.Total) / float64(len(h.Counts))
	var chi2 float64
	for _, c := range h.Counts {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	return chi2
}

// Entropy returns the Shannon entropy of the empirical distribution in
// bits; log2(N) for uniform.
func (h *Histogram) Entropy() float64 {
	if h.Total == 0 {
		return 0
	}
	var e float64
	for _, c := range h.Counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(h.Total)
		e -= p * math.Log2(p)
	}
	return e
}

// EmptyBins returns the number of values never observed — the signature of
// the "stuck-at filters half the values" SIFA bias in Figure 4(a).
func (h *Histogram) EmptyBins() int {
	n := 0
	for _, c := range h.Counts {
		if c == 0 {
			n++
		}
	}
	return n
}

// UniformSEIThreshold returns an acceptance threshold for SEI under the
// hypothesis that the sample of size total is uniform over bins values.
// For a uniform sample, total * SEI * bins is asymptotically chi-squared
// with bins-1 degrees of freedom, so we accept while
//
//	SEI <= chi2_{0.9999}(bins-1) / (total * bins)
//
// using a normal approximation of the chi-squared quantile. Campaign code
// uses this to classify "flat" (Figure 4(b)) versus "biased" (Figure 4(a)).
func UniformSEIThreshold(bins int, total uint64) float64 {
	if total == 0 {
		return math.Inf(1)
	}
	k := float64(bins - 1)
	// Wilson-Hilferty approximation of the chi-squared quantile at
	// 0.9999 (z ~ 3.719).
	z := 3.719
	q := k * math.Pow(1-2/(9*k)+z*math.Sqrt(2/(9*k)), 3)
	return q / (float64(total) * float64(bins))
}

// Bars renders the histogram as an ASCII bar chart, the textual analogue
// of the paper's figure panels.
func (h *Histogram) Bars(label string, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (n=%d, SEI=%.3e, H=%.3f bits)\n", label, h.Total, h.SEI(), h.Entropy())
	var maxC uint64 = 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for v, c := range h.Counts {
		bar := int(uint64(width) * c / maxC)
		fmt.Fprintf(&sb, "  %2X | %-*s %d\n", v, width, strings.Repeat("#", bar), c)
	}
	return sb.String()
}

// Distance returns the total variation distance between two histograms'
// empirical distributions.
func Distance(a, b *Histogram) float64 {
	if a.Bins() != b.Bins() {
		panic("stats: histogram domain mismatch")
	}
	pa, pb := a.Probabilities(), b.Probabilities()
	var d float64
	for i := range pa {
		d += math.Abs(pa[i] - pb[i])
	}
	return d / 2
}
