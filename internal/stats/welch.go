package stats

import "math"

// TTest is a streaming Welch's t-test over two classes of equal-length
// traces — the TVLA workhorse of side-channel leakage assessment. Samples
// are accumulated with Welford's algorithm, so traces can be streamed in
// any order.
type TTest struct {
	samples int
	n       [2]float64
	mean    [2][]float64
	m2      [2][]float64
}

// NewTTest creates a t-test over traces of the given sample count.
func NewTTest(samples int) *TTest {
	t := &TTest{samples: samples}
	for c := 0; c < 2; c++ {
		t.mean[c] = make([]float64, samples)
		t.m2[c] = make([]float64, samples)
	}
	return t
}

// Add accumulates one trace into class 0 or 1.
func (t *TTest) Add(class int, trace []float64) {
	if len(trace) != t.samples {
		panic("stats: trace length mismatch")
	}
	t.n[class]++
	n := t.n[class]
	for i, x := range trace {
		delta := x - t.mean[class][i]
		t.mean[class][i] += delta / n
		t.m2[class][i] += delta * (x - t.mean[class][i])
	}
}

// Count returns the number of traces in each class.
func (t *TTest) Count() (n0, n1 int) { return int(t.n[0]), int(t.n[1]) }

// TValues returns Welch's t statistic per sample point. Points with zero
// pooled variance report 0 when the means agree and +/-Inf otherwise.
func (t *TTest) TValues() []float64 {
	out := make([]float64, t.samples)
	if t.n[0] < 2 || t.n[1] < 2 {
		return out
	}
	for i := range out {
		v0 := t.m2[0][i] / (t.n[0] - 1)
		v1 := t.m2[1][i] / (t.n[1] - 1)
		denom := math.Sqrt(v0/t.n[0] + v1/t.n[1])
		diff := t.mean[0][i] - t.mean[1][i]
		switch {
		case denom > 0:
			out[i] = diff / denom
		case diff != 0:
			out[i] = math.Inf(sign(diff))
		}
	}
	return out
}

// MaxAbsT returns the largest |t| over all sample points. The TVLA
// convention flags |t| > 4.5 as significant leakage.
func (t *TTest) MaxAbsT() float64 {
	max := 0.0
	for _, v := range t.TValues() {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// LeakageThreshold is the conventional TVLA significance bound.
const LeakageThreshold = 4.5

// TTestState is the serialisable form of a TTest's Welford accumulator.
// Go's float64 JSON encoding round-trips bit-exactly for finite values, so
// a checkpoint/restore cycle through this type reproduces the accumulator
// exactly — the leakage job's drain/resume bit-identity rests on it.
type TTestState struct {
	Samples int          `json:"samples"`
	N       [2]float64   `json:"n"`
	Mean    [2][]float64 `json:"mean"`
	M2      [2][]float64 `json:"m2"`
}

// State snapshots the accumulator (deep copy).
func (t *TTest) State() TTestState {
	s := TTestState{Samples: t.samples, N: t.n}
	for c := 0; c < 2; c++ {
		s.Mean[c] = append([]float64(nil), t.mean[c]...)
		s.M2[c] = append([]float64(nil), t.m2[c]...)
	}
	return s
}

// RestoreTTest rebuilds a TTest from a snapshot (deep copy; the snapshot
// stays usable). A zero-value or partially populated snapshot restores to
// an empty accumulator of the given sample count.
func RestoreTTest(s TTestState) *TTest {
	t := NewTTest(s.Samples)
	t.n = s.N
	for c := 0; c < 2; c++ {
		if len(s.Mean[c]) == s.Samples {
			copy(t.mean[c], s.Mean[c])
		}
		if len(s.M2[c]) == s.Samples {
			copy(t.m2[c], s.M2[c])
		}
	}
	return t
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
