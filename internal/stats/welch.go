package stats

import "math"

// TTest is a streaming Welch's t-test over two classes of equal-length
// traces — the TVLA workhorse of side-channel leakage assessment. Samples
// are accumulated with Welford's algorithm, so traces can be streamed in
// any order.
type TTest struct {
	samples int
	n       [2]float64
	mean    [2][]float64
	m2      [2][]float64
}

// NewTTest creates a t-test over traces of the given sample count.
func NewTTest(samples int) *TTest {
	t := &TTest{samples: samples}
	for c := 0; c < 2; c++ {
		t.mean[c] = make([]float64, samples)
		t.m2[c] = make([]float64, samples)
	}
	return t
}

// Add accumulates one trace into class 0 or 1.
func (t *TTest) Add(class int, trace []float64) {
	if len(trace) != t.samples {
		panic("stats: trace length mismatch")
	}
	t.n[class]++
	n := t.n[class]
	for i, x := range trace {
		delta := x - t.mean[class][i]
		t.mean[class][i] += delta / n
		t.m2[class][i] += delta * (x - t.mean[class][i])
	}
}

// Count returns the number of traces in each class.
func (t *TTest) Count() (n0, n1 int) { return int(t.n[0]), int(t.n[1]) }

// TValues returns Welch's t statistic per sample point. Points with zero
// pooled variance report 0 when the means agree and +/-Inf otherwise.
func (t *TTest) TValues() []float64 {
	out := make([]float64, t.samples)
	if t.n[0] < 2 || t.n[1] < 2 {
		return out
	}
	for i := range out {
		v0 := t.m2[0][i] / (t.n[0] - 1)
		v1 := t.m2[1][i] / (t.n[1] - 1)
		denom := math.Sqrt(v0/t.n[0] + v1/t.n[1])
		diff := t.mean[0][i] - t.mean[1][i]
		switch {
		case denom > 0:
			out[i] = diff / denom
		case diff != 0:
			out[i] = math.Inf(sign(diff))
		}
	}
	return out
}

// MaxAbsT returns the largest |t| over all sample points. The TVLA
// convention flags |t| > 4.5 as significant leakage.
func (t *TTest) MaxAbsT() float64 {
	max := 0.0
	for _, v := range t.TValues() {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// LeakageThreshold is the conventional TVLA significance bound.
const LeakageThreshold = 4.5

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
