package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(4)
	h.Add(0)
	h.Add(0)
	h.AddN(3, 2)
	if h.Total != 4 || h.Counts[0] != 2 || h.Counts[3] != 2 {
		t.Fatalf("counts wrong: %+v", h)
	}
	p := h.Probabilities()
	if p[0] != 0.5 || p[1] != 0 || p[3] != 0.5 {
		t.Fatalf("probabilities wrong: %v", p)
	}
	if h.EmptyBins() != 2 {
		t.Fatalf("EmptyBins = %d", h.EmptyBins())
	}
}

func TestSEIUniformAndExtreme(t *testing.T) {
	uniform := NewHistogram(16)
	for v := uint64(0); v < 16; v++ {
		uniform.AddN(v, 100)
	}
	if uniform.SEI() != 0 {
		t.Fatalf("uniform SEI = %v", uniform.SEI())
	}
	point := NewHistogram(16)
	point.AddN(5, 1000)
	// SEI of a point mass on 16 bins: (1-1/16)^2 + 15*(1/16)^2 = 15/16.
	if math.Abs(point.SEI()-15.0/16) > 1e-12 {
		t.Fatalf("point-mass SEI = %v", point.SEI())
	}
	// The half-support case of Figure 4(a): 8 bins uniform, 8 empty.
	half := NewHistogram(16)
	for v := uint64(0); v < 8; v++ {
		half.AddN(v, 100)
	}
	if math.Abs(half.SEI()-1.0/16) > 1e-12 {
		t.Fatalf("half-support SEI = %v, want 1/16", half.SEI())
	}
}

func TestChiSquared(t *testing.T) {
	h := NewHistogram(2)
	h.AddN(0, 60)
	h.AddN(1, 40)
	// Expected 50/50: chi2 = (10^2/50)*2 = 4.
	if math.Abs(h.ChiSquared()-4) > 1e-12 {
		t.Fatalf("chi2 = %v", h.ChiSquared())
	}
}

func TestEntropy(t *testing.T) {
	h := NewHistogram(16)
	for v := uint64(0); v < 16; v++ {
		h.AddN(v, 10)
	}
	if math.Abs(h.Entropy()-4) > 1e-12 {
		t.Fatalf("uniform entropy = %v, want 4", h.Entropy())
	}
	point := NewHistogram(16)
	point.AddN(3, 100)
	if point.Entropy() != 0 {
		t.Fatalf("point entropy = %v", point.Entropy())
	}
}

func TestSEIThresholdSeparatesUniformFromBiased(t *testing.T) {
	// Empirical check of the classifier the figure experiments use: a
	// genuinely uniform sample stays below the threshold, the Figure
	// 4(a) half-support bias exceeds it, at the paper's sample sizes.
	gen := rng.NewXoshiro(9)
	for _, n := range []uint64{2000, 40000, 80000} {
		uni := NewHistogram(16)
		biased := NewHistogram(16)
		for i := uint64(0); i < n; i++ {
			uni.Add(gen.Bits(4))
			biased.Add(gen.Bits(3)) // support {0..7}
		}
		thr := UniformSEIThreshold(16, n)
		if uni.SEI() > thr {
			t.Errorf("n=%d: uniform sample flagged biased (SEI %v > %v)", n, uni.SEI(), thr)
		}
		if biased.SEI() <= thr {
			t.Errorf("n=%d: biased sample not flagged (SEI %v <= %v)", n, biased.SEI(), thr)
		}
	}
}

func TestSEIIsPermutationInvariantProperty(t *testing.T) {
	// Relabeling bins must not change SEI — the reason the SIFA attack
	// needs a matched filter rather than raw SEI for crisp faults.
	f := func(counts [8]uint8, shift uint8) bool {
		a := NewHistogram(8)
		b := NewHistogram(8)
		for v, c := range counts {
			a.AddN(uint64(v), uint64(c))
			b.AddN(uint64((v+int(shift))%8), uint64(c))
		}
		return math.Abs(a.SEI()-b.SEI()) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistance(t *testing.T) {
	a := NewHistogram(2)
	b := NewHistogram(2)
	a.AddN(0, 10)
	b.AddN(1, 10)
	if Distance(a, b) != 1 {
		t.Fatalf("disjoint TV distance = %v, want 1", Distance(a, b))
	}
	if Distance(a, a) != 0 {
		t.Fatalf("self distance non-zero")
	}
}

func TestBarsRendering(t *testing.T) {
	h := NewHistogram(4)
	h.AddN(2, 5)
	out := h.Bars("demo", 10)
	if len(out) == 0 || out[0] != 'd' {
		t.Fatal("Bars output malformed")
	}
}
