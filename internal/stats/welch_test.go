package stats

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestTTestIdenticalClasses(t *testing.T) {
	tt := NewTTest(4)
	gen := rng.NewXoshiro(1)
	for i := 0; i < 200; i++ {
		trace := []float64{float64(gen.Intn(10)), 1, 2, 3}
		tt.Add(i%2, trace)
	}
	// Samples 1..3 are constant and identical across classes: t = 0.
	vals := tt.TValues()
	for i := 1; i < 4; i++ {
		if vals[i] != 0 {
			t.Fatalf("constant identical sample %d: t = %v", i, vals[i])
		}
	}
	// Sample 0 is random but identically distributed: small |t|.
	if math.Abs(vals[0]) > 4.5 {
		t.Fatalf("iid sample flagged: t = %v", vals[0])
	}
}

func TestTTestDetectsMeanShift(t *testing.T) {
	tt := NewTTest(2)
	gen := rng.NewXoshiro(2)
	for i := 0; i < 500; i++ {
		noise := float64(gen.Intn(5))
		tt.Add(0, []float64{noise, noise})
		tt.Add(1, []float64{noise + 3, noise}) // shifted first sample
	}
	vals := tt.TValues()
	if math.Abs(vals[0]) < LeakageThreshold {
		t.Fatalf("mean shift missed: t = %v", vals[0])
	}
	if math.Abs(vals[1]) > LeakageThreshold {
		t.Fatalf("clean sample flagged: t = %v", vals[1])
	}
	if tt.MaxAbsT() != math.Max(math.Abs(vals[0]), math.Abs(vals[1])) {
		t.Fatal("MaxAbsT inconsistent")
	}
}

func TestTTestDeterministicDifferenceIsInf(t *testing.T) {
	tt := NewTTest(1)
	for i := 0; i < 5; i++ {
		tt.Add(0, []float64{1})
		tt.Add(1, []float64{2})
	}
	if !math.IsInf(tt.TValues()[0], 0) {
		t.Fatalf("deterministic difference should be infinite t, got %v", tt.TValues()[0])
	}
}

func TestTTestCounts(t *testing.T) {
	tt := NewTTest(1)
	tt.Add(0, []float64{1})
	tt.Add(0, []float64{1})
	tt.Add(1, []float64{1})
	n0, n1 := tt.Count()
	if n0 != 2 || n1 != 1 {
		t.Fatalf("counts %d %d", n0, n1)
	}
	// Too few traces: all zeros, no panic.
	if tt.MaxAbsT() != 0 {
		t.Fatal("underpopulated t-test should report 0")
	}
}

// An empty or single-trace class must degrade to all-zero t values — never
// NaN from the 0/0 of an undefined variance, never a panic.
func TestTTestEmptyAndSingleSampleClasses(t *testing.T) {
	cases := []struct {
		name   string
		counts [2]int
	}{
		{"both empty", [2]int{0, 0}},
		{"one empty", [2]int{3, 0}},
		{"one single", [2]int{3, 1}},
		{"both single", [2]int{1, 1}},
	}
	for _, tc := range cases {
		tt := NewTTest(2)
		for c := 0; c < 2; c++ {
			for i := 0; i < tc.counts[c]; i++ {
				tt.Add(c, []float64{float64(i), 7})
			}
		}
		for i, v := range tt.TValues() {
			if v != 0 || math.IsNaN(v) {
				t.Errorf("%s: t[%d] = %v, want 0", tc.name, i, v)
			}
		}
		if tt.MaxAbsT() != 0 {
			t.Errorf("%s: MaxAbsT = %v, want 0", tc.name, tt.MaxAbsT())
		}
	}
}

// Zero pooled variance: equal means report exactly 0 (not NaN), unequal
// means report a signed infinity matching the direction of the shift.
func TestTTestZeroVarianceSign(t *testing.T) {
	tt := NewTTest(3)
	for i := 0; i < 4; i++ {
		tt.Add(0, []float64{5, 1, 9})
		tt.Add(1, []float64{5, 2, 3})
	}
	vals := tt.TValues()
	if vals[0] != 0 {
		t.Errorf("equal constant sample: t = %v, want 0", vals[0])
	}
	if !math.IsInf(vals[1], -1) {
		t.Errorf("class 0 below class 1: t = %v, want -Inf", vals[1])
	}
	if !math.IsInf(vals[2], +1) {
		t.Errorf("class 0 above class 1: t = %v, want +Inf", vals[2])
	}
	for i, v := range vals {
		if math.IsNaN(v) {
			t.Errorf("t[%d] is NaN", i)
		}
	}
}

// Add must reject traces whose length disagrees with the accumulator.
func TestTTestRejectsLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched trace length accepted")
		}
	}()
	NewTTest(2).Add(0, []float64{1})
}

// The checkpoint contract of the leakage job: snapshot → JSON → restore →
// keep accumulating must be bit-identical to never having snapshotted, and
// the snapshot must be a deep copy frozen against later Adds.
func TestTTestStateJSONRoundTripBitIdentity(t *testing.T) {
	gen := rng.NewXoshiro(0x5C0)
	trace := func() []float64 {
		return []float64{float64(gen.Intn(97)) / 7, float64(gen.Intn(13))}
	}

	ref := NewTTest(2)
	split := NewTTest(2)
	var tail [][2]interface{}
	for i := 0; i < 50; i++ {
		tr := trace()
		ref.Add(i%2, tr)
		split.Add(i%2, tr)
	}
	snap := split.State()
	frozen, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		tr := trace()
		ref.Add(i%2, tr)
		split.Add(i%2, tr) // mutates split; must not touch snap
		tail = append(tail, [2]interface{}{i % 2, tr})
	}

	var decoded TTestState
	if err := json.Unmarshal(frozen, &decoded); err != nil {
		t.Fatal(err)
	}
	restored := RestoreTTest(decoded)
	if n0, n1 := restored.Count(); n0 != 25 || n1 != 25 {
		t.Fatalf("restored counts (%d, %d), want (25, 25)", n0, n1)
	}
	for _, step := range tail {
		restored.Add(step[0].(int), step[1].([]float64))
	}

	want, got := ref.TValues(), restored.TValues()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("t[%d] = %v after restore, %v uninterrupted", i, got[i], want[i])
		}
	}
	if ref.MaxAbsT() != restored.MaxAbsT() {
		t.Fatal("MaxAbsT differs after JSON round trip")
	}
}

// A zero-value snapshot restores a fresh accumulator of its sample count.
func TestRestoreTTestZeroValue(t *testing.T) {
	tt := RestoreTTest(TTestState{Samples: 3})
	tt.Add(0, []float64{1, 2, 3})
	tt.Add(0, []float64{1, 2, 3})
	tt.Add(1, []float64{1, 2, 3})
	tt.Add(1, []float64{1, 2, 3})
	for i, v := range tt.TValues() {
		if v != 0 {
			t.Fatalf("t[%d] = %v on identical classes", i, v)
		}
	}
}
