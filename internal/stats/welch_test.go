package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestTTestIdenticalClasses(t *testing.T) {
	tt := NewTTest(4)
	gen := rng.NewXoshiro(1)
	for i := 0; i < 200; i++ {
		trace := []float64{float64(gen.Intn(10)), 1, 2, 3}
		tt.Add(i%2, trace)
	}
	// Samples 1..3 are constant and identical across classes: t = 0.
	vals := tt.TValues()
	for i := 1; i < 4; i++ {
		if vals[i] != 0 {
			t.Fatalf("constant identical sample %d: t = %v", i, vals[i])
		}
	}
	// Sample 0 is random but identically distributed: small |t|.
	if math.Abs(vals[0]) > 4.5 {
		t.Fatalf("iid sample flagged: t = %v", vals[0])
	}
}

func TestTTestDetectsMeanShift(t *testing.T) {
	tt := NewTTest(2)
	gen := rng.NewXoshiro(2)
	for i := 0; i < 500; i++ {
		noise := float64(gen.Intn(5))
		tt.Add(0, []float64{noise, noise})
		tt.Add(1, []float64{noise + 3, noise}) // shifted first sample
	}
	vals := tt.TValues()
	if math.Abs(vals[0]) < LeakageThreshold {
		t.Fatalf("mean shift missed: t = %v", vals[0])
	}
	if math.Abs(vals[1]) > LeakageThreshold {
		t.Fatalf("clean sample flagged: t = %v", vals[1])
	}
	if tt.MaxAbsT() != math.Max(math.Abs(vals[0]), math.Abs(vals[1])) {
		t.Fatal("MaxAbsT inconsistent")
	}
}

func TestTTestDeterministicDifferenceIsInf(t *testing.T) {
	tt := NewTTest(1)
	for i := 0; i < 5; i++ {
		tt.Add(0, []float64{1})
		tt.Add(1, []float64{2})
	}
	if !math.IsInf(tt.TValues()[0], 0) {
		t.Fatalf("deterministic difference should be infinite t, got %v", tt.TValues()[0])
	}
}

func TestTTestCounts(t *testing.T) {
	tt := NewTTest(1)
	tt.Add(0, []float64{1})
	tt.Add(0, []float64{1})
	tt.Add(1, []float64{1})
	n0, n1 := tt.Count()
	if n0 != 2 || n1 != 1 {
		t.Fatalf("counts %d %d", n0, n1)
	}
	// Too few traces: all zeros, no panic.
	if tt.MaxAbsT() != 0 {
		t.Fatal("underpopulated t-test should report 0")
	}
}
