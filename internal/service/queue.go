package service

import (
	"errors"
	"hash/fnv"
	"sync/atomic"
)

// ErrQueueFull is returned by Submit when the target shard's backlog is at
// capacity; HTTP maps it to 429 so load-shedding is visible to clients.
var ErrQueueFull = errors.New("service: job queue full")

// ErrDraining is returned by Submit once a graceful shutdown has begun.
var ErrDraining = errors.New("service: draining, not accepting jobs")

// queue is a sharded bounded FIFO of jobs. A job hashes to a shard by ID
// and each shard is served by exactly one worker goroutine, so jobs on the
// same shard run strictly in submission order (useful for reproducible
// multi-job sessions) and no lock is shared on the hot path — the shards
// are plain buffered channels.
type queue struct {
	shards []chan *job
	depth  int32 // queued-but-not-started jobs, all shards
}

func newQueue(shards, depthPerShard int) *queue {
	q := &queue{shards: make([]chan *job, shards)}
	for i := range q.shards {
		q.shards[i] = make(chan *job, depthPerShard)
	}
	return q
}

// shardOf maps a job ID onto its serving shard.
func (q *queue) shardOf(id string) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(q.shards)))
}

// push enqueues without blocking; a full shard sheds load.
func (q *queue) push(j *job) error {
	select {
	case q.shards[q.shardOf(j.id)] <- j:
		atomic.AddInt32(&q.depth, 1)
		return nil
	default:
		return ErrQueueFull
	}
}

// took is called by a worker when it dequeues a job.
func (q *queue) took() { atomic.AddInt32(&q.depth, -1) }

// Len reports the queued backlog across shards.
func (q *queue) Len() int { return int(atomic.LoadInt32(&q.depth)) }

// closeAll releases the workers; pending jobs stay readable until drained.
func (q *queue) closeAll() {
	for _, sh := range q.shards {
		close(sh)
	}
}
