package service_test

// End-to-end acceptance tests for the sconed service stack: a real HTTP
// server (httptest) driven through the Go client, checked bit-for-bit
// against direct library-level fault.Campaign execution.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/service/client"
	"repro/internal/sim"
	"repro/internal/spn"
)

const (
	e2eSeed = 0x5C09E2021
	e2eRuns = 320
)

var e2eKey = spn.KeyState{0x0123456789ABCDEF, 0x8421}

func e2eRequest(runs int, entropy string) service.JobRequest {
	return service.JobRequest{
		Kind: service.KindCampaign,
		Design: service.DesignSpec{
			Cipher: "present80", Scheme: "three-in-one", Entropy: entropy,
		},
		Campaign: &service.CampaignSpec{
			Runs: runs,
			Seed: e2eSeed,
			Key:  [2]service.U64{service.U64(e2eKey[0]), service.U64(e2eKey[1])},
			Faults: []service.FaultSpec{
				{Sbox: 13, Bit: 2, Model: "stuck-at-0"},
			},
		},
	}
}

// directResult runs the identical campaign through the library API.
func directResult(t *testing.T, runs int, entropy string) service.CampaignResult {
	t.Helper()
	opts := core.Options{Scheme: core.SchemeThreeInOne}
	switch entropy {
	case "prime", "":
		opts.Entropy = core.EntropyPrime
	case "per-round":
		opts.Entropy = core.EntropyPerRound
	case "per-sbox":
		opts.Entropy = core.EntropyPerSbox
	default:
		t.Fatalf("unknown entropy %q", entropy)
	}
	d, err := core.Build(present.Spec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	camp := &fault.Campaign{
		Design: d,
		Key:    e2eKey,
		Faults: []fault.Fault{
			fault.At(d.SboxInputNet(core.BranchActual, 13, 2), fault.StuckAt0, d.LastRoundCycle()),
		},
		Runs: runs,
		Seed: e2eSeed,
	}
	res, err := camp.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	return service.NewCampaignResult(res)
}

func startDaemon(t *testing.T, cfg service.Config) (*service.Service, *client.Client) {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return svc, client.New(srv.URL)
}

// TestE2ECampaignAllEntropyVariants submits the PRESENT-80 three-in-one
// campaign over HTTP for every entropy variant, follows the NDJSON stream,
// and requires the returned Result to match a direct Campaign.Execute with
// the same seed bit-for-bit.
func TestE2ECampaignAllEntropyVariants(t *testing.T) {
	_, c := startDaemon(t, service.Config{Workers: 1, CheckpointEveryRuns: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	for _, entropy := range []string{"prime", "per-round", "per-sbox"} {
		t.Run(entropy, func(t *testing.T) {
			// Park the single worker on a blocker job so the target is
			// still queued when the stream attaches; the blocker is
			// cancelled from inside the stream callback, guaranteeing the
			// subscriber sees every progress event of the target.
			blocker, err := c.Submit(ctx, e2eRequest(1<<20, entropy))
			if err != nil {
				t.Fatal(err)
			}
			st, err := c.Submit(ctx, e2eRequest(e2eRuns, entropy))
			if err != nil {
				t.Fatal(err)
			}
			if st.State != service.StateQueued && st.State != service.StateRunning {
				t.Fatalf("fresh job in state %s", st.State)
			}

			var progress int
			released := false
			lastDone := -1
			final, err := c.Stream(ctx, st.ID, func(ev service.Event) error {
				if !released {
					released = true
					if _, err := c.Cancel(ctx, blocker.ID); err != nil {
						return err
					}
				}
				if ev.Type == "progress" {
					progress++
					if ev.Progress.Done <= lastDone {
						t.Errorf("progress not monotone: %d after %d", ev.Progress.Done, lastDone)
					}
					lastDone = ev.Progress.Done
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if final.State != service.StateDone {
				t.Fatalf("job finished %s (%s)", final.State, final.Error)
			}
			if progress == 0 {
				t.Error("stream delivered no progress events")
			}
			if final.Result == nil || final.Result.Campaign == nil {
				t.Fatal("no campaign result on terminal status")
			}
			got, want := *final.Result.Campaign, directResult(t, e2eRuns, entropy)
			if got != want {
				t.Errorf("entropy %s: service %+v != direct %+v", entropy, got, want)
			}
		})
	}
}

// TestE2EDrainAndResume kills a campaign job mid-flight via graceful drain,
// restarts the service on the same state directory, and requires the final
// Result to be bit-identical to an uninterrupted run.
func TestE2EDrainAndResume(t *testing.T) {
	stateDir := t.TempDir()
	const runs = 960

	cfg := service.Config{Workers: 1, CheckpointEveryRuns: 64, StateDir: stateDir}
	svc1, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc1.Submit(e2eRequest(runs, "prime"))
	if err != nil {
		t.Fatal(err)
	}

	// Wait for at least one checkpoint so the restart genuinely resumes
	// mid-campaign rather than starting over.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		cur, err := svc1.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished before drain: %s", cur.State)
		}
		if cur.Progress != nil && cur.Progress.Done >= 64 && cur.Progress.Done < runs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint observed before deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	if err := svc1.Drain(drainCtx); err != nil {
		cancel()
		t.Fatal(err)
	}
	cancel()

	// The interrupted job must be persisted as queued with partial progress.
	mid, err := svc1.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.State != service.StateQueued {
		t.Fatalf("after drain the job is %s, want %s", mid.State, service.StateQueued)
	}
	if mid.Progress == nil || mid.Progress.Done == 0 || mid.Progress.Done >= runs {
		t.Fatalf("after drain progress = %+v, want partial", mid.Progress)
	}
	if mid.Progress.Done%sim.Lanes != 0 {
		t.Errorf("checkpointed progress %d is not batch-aligned", mid.Progress.Done)
	}

	// Restart on the same state directory; the job resumes automatically.
	svc2, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()

	var final service.JobStatus
	for time.Now().Before(deadline) {
		final, err = svc2.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State.Terminal() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.State != service.StateDone {
		t.Fatalf("resumed job finished %s (%s)", final.State, final.Error)
	}
	if final.Resumed < 1 {
		t.Errorf("resumed job has Resumed = %d, want >= 1", final.Resumed)
	}
	if got := svc2.Metrics.Snapshot()["jobs_resumed_total"]; got < 1 {
		t.Errorf("jobs_resumed_total = %d, want >= 1", got)
	}

	got, want := *final.Result.Campaign, directResult(t, runs, "prime")
	if got != want {
		t.Errorf("resumed result %+v != uninterrupted %+v", got, want)
	}
}

// TestE2EHTTPValidationAndErrors exercises the HTTP surface's failure paths
// through the client.
func TestE2EHTTPValidationAndErrors(t *testing.T) {
	_, c := startDaemon(t, service.Config{Workers: 1})
	ctx := context.Background()

	_, err := c.Submit(ctx, service.JobRequest{Kind: "explode"})
	var apiErr *client.Error
	if !asClientError(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Fatalf("bad kind: %v", err)
	}

	_, err = c.Get(ctx, "j424242")
	if !asClientError(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("unknown job: %v", err)
	}

	jobs, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("fresh daemon lists %d jobs", len(jobs))
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m["jobs_submitted_total"]; !ok {
		t.Fatalf("metrics missing jobs_submitted_total: %v", m)
	}
}

func asClientError(err error, out **client.Error) bool {
	e, ok := err.(*client.Error)
	if ok {
		*out = e
	}
	return ok
}
