package service

// HTTP surface of the distributed campaign fabric (coordinator role). The
// listing endpoints answer on every service — an empty registry on a
// single-node daemon — so dashboards need no mode probe; the mutating
// worker-protocol endpoints reject with invalid_request unless Config.Dist
// enabled the fabric.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// maxDistRequestBytes bounds worker-protocol payloads; lease reports are a
// few hundred bytes.
const maxDistRequestBytes = 1 << 20

var errDistDisabled = errors.New("distributed fabric disabled (coordinator started without -dist)")

func (s *Service) registerDistV1(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		writeStatus(w, http.StatusOK, map[string]any{"workers": s.Workers()})
	})
	mux.HandleFunc("GET /v1/leases", func(w http.ResponseWriter, r *http.Request) {
		writeStatus(w, http.StatusOK, map[string]any{"leases": s.Leases()})
	})
	mux.HandleFunc("POST /v1/workers/join", s.handleWorkerJoin)
	mux.HandleFunc("POST /v1/workers/{id}/heartbeat", s.handleWorkerHeartbeat)
	mux.HandleFunc("POST /v1/workers/{id}/leave", s.handleWorkerLeave)
	mux.HandleFunc("POST /v1/leases/acquire", s.handleLeaseAcquire)
	mux.HandleFunc("POST /v1/leases/{id}/progress", s.leaseReportHandler((*coordinator).progress))
	mux.HandleFunc("POST /v1/leases/{id}/complete", s.leaseReportHandler((*coordinator).complete))
	mux.HandleFunc("POST /v1/leases/{id}/fail", s.leaseReportHandler((*coordinator).fail))
}

// Workers lists the coordinator's worker registry (empty on a single-node
// service).
func (s *Service) Workers() []WorkerInfo { return s.dist.workersInfo() }

// Leases lists the coordinator's live lease table (empty on a single-node
// service).
func (s *Service) Leases() []LeaseInfo { return s.dist.leasesInfo() }

// decodeDist reads a worker-protocol body into v.
func decodeDist(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxDistRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil && err != io.EOF {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

func (s *Service) handleWorkerJoin(w http.ResponseWriter, r *http.Request) {
	if s.dist == nil {
		writeV1Error(w, http.StatusBadRequest, CodeInvalidRequest, errDistDisabled)
		return
	}
	var req JoinRequest
	if err := decodeDist(r, &req); err != nil {
		writeV1Error(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	writeStatus(w, http.StatusOK, s.dist.join(req))
}

func (s *Service) handleWorkerHeartbeat(w http.ResponseWriter, r *http.Request) {
	if s.dist == nil {
		writeV1Error(w, http.StatusBadRequest, CodeInvalidRequest, errDistDisabled)
		return
	}
	var req HeartbeatRequest
	if err := decodeDist(r, &req); err != nil {
		writeV1Error(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	resp, err := s.dist.heartbeat(r.PathValue("id"), req)
	if err != nil {
		status, code := errorStatus(err)
		writeV1Error(w, status, code, err)
		return
	}
	writeStatus(w, http.StatusOK, resp)
}

func (s *Service) handleWorkerLeave(w http.ResponseWriter, r *http.Request) {
	if s.dist == nil {
		writeV1Error(w, http.StatusBadRequest, CodeInvalidRequest, errDistDisabled)
		return
	}
	if err := s.dist.leave(r.PathValue("id")); err != nil {
		status, code := errorStatus(err)
		writeV1Error(w, status, code, err)
		return
	}
	writeStatus(w, http.StatusOK, map[string]string{"status": "left"})
}

// handleLeaseAcquire grants a lease, or answers 204 when none is grantable
// (nothing pending, backoff gates closed, or the worker is at capacity) —
// the worker then sleeps for the advertised poll interval.
func (s *Service) handleLeaseAcquire(w http.ResponseWriter, r *http.Request) {
	if s.dist == nil {
		writeV1Error(w, http.StatusBadRequest, CodeInvalidRequest, errDistDisabled)
		return
	}
	var req AcquireRequest
	if err := decodeDist(r, &req); err != nil {
		writeV1Error(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	grant, err := s.dist.acquire(req.WorkerID)
	if err != nil {
		status, code := errorStatus(err)
		writeV1Error(w, status, code, err)
		return
	}
	if grant == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeStatus(w, http.StatusOK, grant)
}

// leaseReportHandler adapts one coordinator report method (progress,
// complete, fail) to the wire; ownership violations surface as 409
// conflict so a superseded worker knows to discard its work.
func (s *Service) leaseReportHandler(report func(*coordinator, string, LeaseReport) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.dist == nil {
			writeV1Error(w, http.StatusBadRequest, CodeInvalidRequest, errDistDisabled)
			return
		}
		var rep LeaseReport
		if err := decodeDist(r, &rep); err != nil {
			writeV1Error(w, http.StatusBadRequest, CodeInvalidRequest, err)
			return
		}
		if err := report(s.dist, r.PathValue("id"), rep); err != nil {
			status, code := errorStatus(err)
			writeV1Error(w, status, code, err)
			return
		}
		writeStatus(w, http.StatusOK, map[string]string{"status": "ok"})
	}
}
