// Package service turns the scone engine into a long-lived fault-campaign
// server: a bounded job queue, a sharded worker pool over fault.Campaign
// and the attack drivers, per-job seed-deterministic checkpoint/resume and
// expvar-style metrics. cmd/sconed exposes it over HTTP/JSON; the wire
// types in this file are its request/response schema and are shared with
// cmd/sconesim -json so CLI and daemon outputs are diff-able.
//
// Determinism contract: a campaign job is defined entirely by its request
// (design spec, key, faults, run count, seed). Batch b of a campaign
// derives all randomness from (seed, b), so the service may checkpoint at
// any batch boundary, be killed, and resume on a fresh process — the final
// Result is bit-identical to an uninterrupted fault.Campaign.Execute with
// the same parameters.
package service

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/leakage"
	"repro/internal/lint"
	"repro/internal/power"
	"repro/internal/prove"
)

// Kind enumerates the job types the service executes. Together they make
// the whole engine reachable over the wire: simulation campaigns, the
// attack drivers, area pricing and the static countermeasure linter.
type Kind string

// Supported job kinds.
const (
	KindCampaign   Kind = "campaign"
	KindDFA        Kind = "dfa"
	KindSIFA       Kind = "sifa"
	KindFTA        Kind = "fta"
	KindArea       Kind = "area"
	KindLint       Kind = "lint"
	KindProve      Kind = "prove"
	KindMultiFault Kind = "multifault"
	KindLeakage    Kind = "leakage"
)

// Kinds lists the supported job kinds in a stable order.
func Kinds() []Kind {
	return []Kind{KindCampaign, KindDFA, KindSIFA, KindFTA, KindArea, KindLint, KindProve, KindMultiFault, KindLeakage}
}

// U64 is a uint64 that travels as a hex string ("0x1f"). JSON numbers lose
// precision above 2^53, and seeds, keys and subkey guesses are genuinely
// 64-bit; the string form keeps them exact and diff-able.
type U64 uint64

// MarshalJSON renders the value as a 0x-prefixed hex string.
func (u U64) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", "0x"+strconv.FormatUint(uint64(u), 16))), nil
}

// UnmarshalJSON accepts a hex or decimal string, or a plain JSON number.
func (u *U64) UnmarshalJSON(b []byte) error {
	s := strings.TrimSpace(string(b))
	if len(s) >= 2 && s[0] == '"' {
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
	}
	v, err := ParseU64(s)
	if err != nil {
		return err
	}
	*u = v
	return nil
}

// ParseU64 parses the wire forms of U64: "0x.." hex or decimal.
func ParseU64(s string) (U64, error) {
	base := 10
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		s, base = s[2:], 16
	}
	v, err := strconv.ParseUint(s, base, 64)
	if err != nil {
		return 0, fmt.Errorf("service: bad uint64 %q", s)
	}
	return U64(v), nil
}

// DesignSpec names the design a job operates on: either a core synthesised
// on the fly (cipher/scheme/entropy/engine, the sconelint vocabulary) or,
// for area and lint jobs, an inline netlist in the scone text format.
type DesignSpec struct {
	Cipher  string `json:"cipher,omitempty"`  // present80, gift64, scone64
	Scheme  string `json:"scheme,omitempty"`  // unprotected, naive, acisp, three-in-one
	Entropy string `json:"entropy,omitempty"` // prime, per-round, per-sbox
	Engine  string `json:"engine,omitempty"`  // anf, bdd
	// SeparateSbox selects the ACISP-style split S-box layout ablation.
	SeparateSbox bool `json:"separate_sbox,omitempty"`
	// Optimize runs the synthesis optimiser (area jobs only: optimised
	// designs lose the probe points fault campaigns address).
	Optimize bool `json:"optimize,omitempty"`
	// Netlist is an inline text netlist (area/lint jobs), read laxly so
	// the linter can be pointed at structurally broken modules.
	Netlist string `json:"netlist,omitempty"`
}

// FaultSpec locates one injected fault by S-box coordinates, the addressing
// the paper's campaigns use.
type FaultSpec struct {
	// Branch is "actual" (default) or "redundant".
	Branch string `json:"branch,omitempty"`
	// Sbox/Bit select the faulted S-box input wire.
	Sbox int `json:"sbox"`
	Bit  int `json:"bit"`
	// Model is "stuck-at-0" (default), "stuck-at-1" or "bit-flip".
	Model string `json:"model,omitempty"`
	// Cycle is the active cycle; nil means the last round.
	Cycle *int `json:"cycle,omitempty"`
}

// PersistentSpec is the wire form of fault.PersistentFault: one S-box table
// entry XOR-corrupted once, before the campaign's first encryption.
type PersistentSpec struct {
	Entry int `json:"entry"`
	Mask  U64 `json:"mask"`
}

// CampaignSpec parameterises a campaign job.
type CampaignSpec struct {
	Runs   int         `json:"runs"`
	Seed   U64         `json:"seed"`
	Key    [2]U64      `json:"key"`
	Faults []FaultSpec `json:"faults"`
	// Persistent, when set, corrupts the S-box table for the whole
	// campaign (the PFA model). A persistent campaign carries no transient
	// faults.
	Persistent *PersistentSpec `json:"persistent,omitempty"`
	// Workers bounds the goroutines of this campaign's simulation; 0
	// uses the service default.
	Workers int `json:"workers,omitempty"`
	// LaneWords selects the simulation engine's word width W (1, 2 or
	// 4): one simulator pass evaluates W×64 lanes. 0 uses the service
	// default. Pure execution policy — results, content addresses and
	// cached batches are identical at every width.
	LaneWords int `json:"lane_words,omitempty"`
	// BatchRuns is the per-dispatch shard size in runs, rounded up to
	// whole lane groups; 0 uses one lane group. Execution policy only,
	// like LaneWords.
	BatchRuns int `json:"batch_runs,omitempty"`
}

// engineConfig folds the spec's execution-policy fields and the service
// default into the engine's configuration type.
func (c *CampaignSpec) engineConfig(def EngineDefaults) fault.EngineConfig {
	cfg := fault.EngineConfig{
		LaneWords:   c.LaneWords,
		Parallelism: c.Workers,
		BatchRuns:   c.BatchRuns,
	}
	if cfg.LaneWords == 0 {
		cfg.LaneWords = def.LaneWords
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = def.Workers
	}
	return cfg
}

// MultiFaultSpec parameterises a multifault job: a planned sweep over many
// adversary placements of one design, each placement executed as its own
// seed-deterministic campaign. Mode "kfault" sweeps every K-tuple of fault
// sites (optionally cone- and S-box-restricted, adaptively pruned); mode
// "persistent" sweeps S-box table corruptions.
type MultiFaultSpec struct {
	// Mode is "kfault" (default) or "persistent".
	Mode string `json:"mode,omitempty"`
	// K is the tuple arity for kfault mode; 0 means 2.
	K int `json:"k,omitempty"`
	// Model is the transient fault model for kfault mode ("stuck-at-0"
	// default, "stuck-at-1", "bit-flip").
	Model string `json:"model,omitempty"`
	// Cycle is the active cycle for kfault tuples; nil means the last
	// round.
	Cycle *int `json:"cycle,omitempty"`
	// RunsPerTuple is the campaign size of each placement.
	RunsPerTuple int    `json:"runs_per_tuple"`
	Seed         U64    `json:"seed"`
	Key          [2]U64 `json:"key"`
	// Sboxes restricts candidate sites (kfault) or corrupted table rows
	// (persistent) — the lever that keeps C(n, K) campaigns tractable.
	Sboxes []int `json:"sboxes,omitempty"`
	// Cone, when set, keeps only kfault sites inside the forward cone of
	// the named location.
	Cone *FaultSpec `json:"cone,omitempty"`
	// Prune skips kfault tuples containing a site whose singleton campaign
	// is already known ineffective (prover verdicts or cached tallies).
	Prune bool `json:"prune,omitempty"`
	// MaxTuples truncates the plan; 0 means no cap.
	MaxTuples int `json:"max_tuples,omitempty"`
	// Workers bounds each placement campaign's goroutines.
	Workers int `json:"workers,omitempty"`
}

// LeakageSpec parameterises a leakage job: a fixed-vs-random TVLA
// evaluation (Welch's t-test per clock cycle over power traces) of the
// job's design, optionally under injected faults with SIFA-style
// ineffective-run filtering. Batch b of an evaluation derives all
// randomness from (seed, b) — the campaign determinism contract — so the
// job checkpoints at trace-batch boundaries and resumes bit-identically.
type LeakageSpec struct {
	// Pairs is the number of fixed/random trace pairs to collect.
	Pairs int    `json:"pairs"`
	Seed  U64    `json:"seed"`
	Key   [2]U64 `json:"key"`
	// Model selects the power model: "hd"/"hamming-distance" (default)
	// or "hw"/"hamming-weight".
	Model string `json:"model,omitempty"`
	// FixedPT is the fixed class's plaintext (0 is a legitimate value;
	// clients wanting the conventional TVLA constant pass it explicitly).
	FixedPT U64 `json:"fixed_pt,omitempty"`
	// Faults, when present, are injected into every run; only SIFA-usable
	// (ineffective) runs enter the t-test.
	Faults []FaultSpec `json:"faults,omitempty"`
}

// AttackSpec parameterises the dfa, sifa and fta job kinds. Zero fields
// take the attack drivers' published defaults.
type AttackSpec struct {
	Key [2]U64 `json:"key"`
	// DeviceSeed drives the victim's TRNG model; Seed the attacker.
	DeviceSeed U64 `json:"device_seed,omitempty"`
	Seed       U64 `json:"seed,omitempty"`

	// DFA.
	PairsPerNibble  int    `json:"pairs_per_nibble,omitempty"`
	Model           string `json:"model,omitempty"`
	BothBranches    bool   `json:"both_branches,omitempty"`
	UnknownPolarity bool   `json:"unknown_polarity,omitempty"`

	// SIFA (and FTA's probed S-box).
	Sbox       *int `json:"sbox,omitempty"`
	Bit        *int `json:"bit,omitempty"`
	Injections int  `json:"injections,omitempty"`

	// FTA.
	Repeats    int `json:"repeats,omitempty"`
	ProfilePTs int `json:"profile_pts,omitempty"`
	AttackPTs  int `json:"attack_pts,omitempty"`
}

// LintSpec parameterises a lint job.
type LintSpec struct {
	Rules      []string `json:"rules,omitempty"`
	MaxPerRule int      `json:"max_per_rule,omitempty"`
}

// ProveSpec parameterises a prove job. Zero values take the prover's
// defaults: all three fault models per location, prove.DefaultBudget nodes.
type ProveSpec struct {
	// Models restricts the fault models proved per location
	// ("stuck-at-0", "stuck-at-1", "bit-flip"); empty means all three.
	Models []string `json:"models,omitempty"`
	// Budget caps the BDD manager's live node count; 0 means the
	// prover default. Exceeding it yields unknown verdicts, not failure.
	Budget int `json:"budget,omitempty"`
}

// JobRequest is the submission payload.
type JobRequest struct {
	Kind       Kind            `json:"kind"`
	Design     DesignSpec      `json:"design"`
	Campaign   *CampaignSpec   `json:"campaign,omitempty"`
	Attack     *AttackSpec     `json:"attack,omitempty"`
	Lint       *LintSpec       `json:"lint,omitempty"`
	Prove      *ProveSpec      `json:"prove,omitempty"`
	MultiFault *MultiFaultSpec `json:"multifault,omitempty"`
	Leakage    *LeakageSpec    `json:"leakage,omitempty"`
}

// Validate rejects malformed requests before they reach the queue, so a
// submission error is always a synchronous 400 rather than a failed job.
func (r *JobRequest) Validate() error {
	switch r.Kind {
	case KindCampaign:
		c := r.Campaign
		if c == nil {
			return fmt.Errorf("campaign job needs a campaign spec")
		}
		if c.Runs <= 0 {
			return fmt.Errorf("campaign needs a positive run count (got %d)", c.Runs)
		}
		if c.Workers < 0 {
			return fmt.Errorf("campaign needs a non-negative worker count (got %d)", c.Workers)
		}
		if err := (fault.EngineConfig{LaneWords: c.LaneWords, BatchRuns: c.BatchRuns}).Validate(); err != nil {
			return err
		}
		if c.Persistent != nil {
			if len(c.Faults) > 0 {
				return fmt.Errorf("a persistent campaign cannot also inject transient faults")
			}
			if c.Persistent.Entry < 0 || c.Persistent.Mask == 0 {
				return fmt.Errorf("persistent fault needs a non-negative entry and non-zero mask")
			}
			break
		}
		if len(c.Faults) == 0 {
			return fmt.Errorf("campaign needs at least one fault")
		}
		for i, f := range c.Faults {
			if _, err := parseBranch(f.Branch); err != nil {
				return fmt.Errorf("fault %d: %w", i, err)
			}
			if _, err := parseModel(f.Model); err != nil {
				return fmt.Errorf("fault %d: %w", i, err)
			}
			if f.Sbox < 0 || f.Bit < 0 {
				return fmt.Errorf("fault %d: negative S-box coordinates", i)
			}
		}
	case KindDFA, KindSIFA, KindFTA:
		if r.Attack == nil {
			return fmt.Errorf("%s job needs an attack spec", r.Kind)
		}
		if _, err := parseModel(r.Attack.Model); err != nil {
			return err
		}
	case KindMultiFault:
		m := r.MultiFault
		if m == nil {
			return fmt.Errorf("multifault job needs a multifault spec")
		}
		switch m.Mode {
		case "", "kfault":
			if m.K < 0 {
				return fmt.Errorf("multifault needs a non-negative tuple arity (got %d)", m.K)
			}
			if _, err := parseModel(m.Model); err != nil {
				return err
			}
			if m.Cone != nil {
				if _, err := parseBranch(m.Cone.Branch); err != nil {
					return fmt.Errorf("cone: %w", err)
				}
				if m.Cone.Sbox < 0 || m.Cone.Bit < 0 {
					return fmt.Errorf("cone: negative S-box coordinates")
				}
			}
		case "persistent":
			if m.Cone != nil || m.Prune {
				return fmt.Errorf("cone restriction and pruning apply to kfault mode only")
			}
		default:
			return fmt.Errorf("unknown multifault mode %q", m.Mode)
		}
		if m.RunsPerTuple <= 0 {
			return fmt.Errorf("multifault needs a positive runs_per_tuple (got %d)", m.RunsPerTuple)
		}
		if m.MaxTuples < 0 {
			return fmt.Errorf("multifault needs a non-negative max_tuples (got %d)", m.MaxTuples)
		}
		for i, s := range m.Sboxes {
			if s < 0 {
				return fmt.Errorf("sbox filter %d: negative index", i)
			}
		}
	case KindLeakage:
		l := r.Leakage
		if l == nil {
			return fmt.Errorf("leakage job needs a leakage spec")
		}
		if l.Pairs <= 0 {
			return fmt.Errorf("leakage needs a positive pair count (got %d)", l.Pairs)
		}
		if _, ok := power.ParseModel(l.Model); !ok {
			return fmt.Errorf("unknown power model %q", l.Model)
		}
		for i, f := range l.Faults {
			if _, err := parseBranch(f.Branch); err != nil {
				return fmt.Errorf("fault %d: %w", i, err)
			}
			if _, err := parseModel(f.Model); err != nil {
				return fmt.Errorf("fault %d: %w", i, err)
			}
			if f.Sbox < 0 || f.Bit < 0 {
				return fmt.Errorf("fault %d: negative S-box coordinates", i)
			}
		}
	case KindArea, KindLint:
		// Design-only kinds.
	case KindProve:
		if p := r.Prove; p != nil {
			for i, m := range p.Models {
				if _, err := parseModel(m); err != nil {
					return fmt.Errorf("prove model %d: %w", i, err)
				}
			}
			if p.Budget < 0 {
				return fmt.Errorf("prove needs a non-negative node budget (got %d)", p.Budget)
			}
		}
	default:
		return fmt.Errorf("unknown job kind %q", r.Kind)
	}
	if r.Design.Netlist != "" && r.Kind != KindArea && r.Kind != KindLint && r.Kind != KindProve {
		return fmt.Errorf("%s jobs need a synthesised design, not an inline netlist", r.Kind)
	}
	if r.Design.Netlist == "" {
		if _, _, err := ParseDesign(r.Design); err != nil {
			return err
		}
	}
	return nil
}

// State is a job's lifecycle position.
type State string

// Job states. A drained (SIGTERM'd) campaign goes back to queued with its
// checkpoint intact, so a restarted service resumes it transparently.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// CampaignResult is the wire form of fault.Result — the one schema shared
// by the daemon, the client and sconesim -json.
type CampaignResult struct {
	Total       int `json:"total"`
	Ineffective int `json:"ineffective"`
	Detected    int `json:"detected"`
	Effective   int `json:"effective"`
	// Corrected is non-zero only for correcting (majority-vote) designs:
	// runs where a fault was sensed and the correct ciphertext still
	// released.
	Corrected int `json:"corrected,omitempty"`
}

// NewCampaignResult converts an engine result to the wire form.
func NewCampaignResult(r fault.Result) CampaignResult {
	return CampaignResult{
		Total:       r.Total,
		Ineffective: r.Ineffective(),
		Detected:    r.Detected(),
		Effective:   r.Effective(),
		Corrected:   r.Corrected(),
	}
}

// Add accumulates another partial result (checkpoint arithmetic).
func (c *CampaignResult) Add(r fault.Result) {
	c.Total += r.Total
	c.Ineffective += r.Ineffective()
	c.Detected += r.Detected()
	c.Effective += r.Effective()
	c.Corrected += r.Corrected()
}

// Accumulate folds another wire-form partial into c — the coordinator's
// batch-order merge of worker lease tallies. Because every count is an
// integer sum over disjoint batch ranges, merge order cannot change the
// totals; ordering only matters for the checkpoint cursor.
func (c *CampaignResult) Accumulate(r CampaignResult) {
	c.Total += r.Total
	c.Ineffective += r.Ineffective
	c.Detected += r.Detected
	c.Effective += r.Effective
	c.Corrected += r.Corrected
}

// DFAResult is the wire form of a DFA outcome.
type DFAResult struct {
	Succeeded    bool   `json:"succeeded"`
	Detail       string `json:"detail"`
	RecoveredKey [2]U64 `json:"recovered_key"`
}

// SIFAResult is the wire form of a SIFA outcome.
type SIFAResult struct {
	Succeeded  bool   `json:"succeeded"`
	Detail     string `json:"detail"`
	BestGuess  U64    `json:"best_guess"`
	TrueSubkey U64    `json:"true_subkey"`
	Usable     int    `json:"usable"`
}

// FTAResult is the wire form of an FTA outcome.
type FTAResult struct {
	Succeeded  bool      `json:"succeeded"`
	Detail     string    `json:"detail"`
	Accuracy   float64   `json:"accuracy"`
	Bits       int       `json:"bits"`
	Separation []float64 `json:"separation,omitempty"`
}

// AreaResult is the wire form of a gate-equivalent area report.
type AreaResult struct {
	Module        string             `json:"module"`
	Library       string             `json:"library"`
	Combinational float64            `json:"combinational_ge"`
	Sequential    float64            `json:"sequential_ge"`
	Total         float64            `json:"total_ge"`
	CellCount     int                `json:"cell_count"`
	ByKind        map[string]float64 `json:"by_kind,omitempty"`
}

// ProveCheck is the wire form of one independence check's outcome at one
// (fault location, model) pair.
type ProveCheck struct {
	Check   string `json:"check"`
	Verdict string `json:"verdict"`
	Witness string `json:"witness,omitempty"`
}

// ProveLocation is the wire form of prove.LocationResult: one fault
// location under one fault model, with the three checks' verdicts. It is
// also the checkpoint unit of a prove job — Nodes rides along so a resumed
// job reconstructs the peak node count without re-proving.
type ProveLocation struct {
	Name    string       `json:"name"`
	Tag     string       `json:"tag,omitempty"`
	Model   string       `json:"model"`
	Verdict string       `json:"verdict"`
	Nodes   int          `json:"nodes"`
	Checks  []ProveCheck `json:"checks"`
}

// NewProveLocation converts an engine location result to the wire form.
func NewProveLocation(lr prove.LocationResult) ProveLocation {
	pl := ProveLocation{
		Name:    lr.Location.Name,
		Tag:     lr.Location.Tag,
		Model:   lr.Model.String(),
		Verdict: lr.Verdict().String(),
		Nodes:   lr.Nodes,
		Checks:  make([]ProveCheck, 0, len(lr.Checks)),
	}
	for i := range lr.Checks {
		cr := &lr.Checks[i]
		pc := ProveCheck{Check: cr.Check.String(), Verdict: cr.Verdict.String()}
		if cr.Witness != nil {
			pc.Witness = cr.Witness.String()
		}
		pl.Checks = append(pl.Checks, pc)
	}
	return pl
}

// ProveResult is the wire form of a full prover run.
type ProveResult struct {
	Module    string `json:"module"`
	Budget    int    `json:"budget"`
	Proved    int    `json:"proved"`
	Dependent int    `json:"dependent"`
	Unknown   int    `json:"unknown"`
	// PeakNodes is the largest per-pair live BDD node count of the run.
	PeakNodes int             `json:"peak_nodes"`
	Locations []ProveLocation `json:"locations"`
}

// Clean reports whether every (location, model) pair proved independent.
func (p *ProveResult) Clean() bool { return p.Dependent == 0 && p.Unknown == 0 }

// Accumulate folds one wire-form pair into the aggregate — the same
// checkpoint arithmetic for fresh proofs and for pairs replayed from a
// resumed job's checkpoint.
func (p *ProveResult) Accumulate(l ProveLocation) {
	p.Locations = append(p.Locations, l)
	switch l.Verdict {
	case prove.VerdictIndependent.String():
		p.Proved++
	case prove.VerdictDependent.String():
		p.Dependent++
	default:
		p.Unknown++
	}
	if l.Nodes > p.PeakNodes {
		p.PeakNodes = l.Nodes
	}
}

// TupleResult is the outcome of one multifault placement: one tuple's (or
// corruption's) campaign tally, or the record that pruning skipped it. It is
// the checkpoint unit of a multifault job, exactly as ProveLocation is for
// prove jobs.
type TupleResult struct {
	// Index is the placement's position in the plan's deterministic
	// enumeration — stable across resumes whether or not pruning improves.
	Index int `json:"index"`
	// Sites names the tuple's member locations (kfault mode).
	Sites []string `json:"sites,omitempty"`
	// Entry/Mask identify the corruption (persistent mode).
	Entry int `json:"entry,omitempty"`
	Mask  U64 `json:"mask,omitempty"`
	// Pruned marks a placement skipped because a member site is known
	// inert; Counts is then zero.
	Pruned bool `json:"pruned,omitempty"`
	// Counts is the placement campaign's tally.
	Counts CampaignResult `json:"counts"`
}

// MultiFaultResult is the wire form of a full multifault sweep.
type MultiFaultResult struct {
	Mode string `json:"mode"`
	K    int    `json:"k,omitempty"`
	// Sites lists the plan's candidate locations (kfault mode), the
	// namespace TupleResult.Sites draws from.
	Sites []string `json:"sites,omitempty"`
	// Planned is the plan length; Truncated whether max_tuples cut it.
	Planned   int  `json:"planned"`
	Truncated bool `json:"truncated,omitempty"`
	// Executed and Pruned partition the placements.
	Executed int `json:"executed"`
	Pruned   int `json:"pruned"`
	// Escapes counts placements with at least one effective run — the
	// adversary placements that defeat the design.
	Escapes int `json:"escapes"`
	// Corrects counts placements where every sensed fault was recovered
	// (corrected > 0 and effective == 0).
	Corrects int `json:"corrects"`
	// Totals sums every placement campaign.
	Totals CampaignResult `json:"totals"`
	// Tuples holds the per-placement outcomes in plan order.
	Tuples []TupleResult `json:"tuples"`
}

// Accumulate folds one placement outcome into the aggregate — shared by
// fresh executions and checkpoint replays, like ProveResult.Accumulate.
func (m *MultiFaultResult) Accumulate(t TupleResult) {
	m.Tuples = append(m.Tuples, t)
	if t.Pruned {
		m.Pruned++
		return
	}
	m.Executed++
	m.Totals.Accumulate(t.Counts)
	if t.Counts.Effective > 0 {
		m.Escapes++
	} else if t.Counts.Corrected > 0 {
		m.Corrects++
	}
}

// LeakageResult is the wire form of a TVLA evaluation's outcome.
type LeakageResult struct {
	Model string `json:"model"`
	Pairs int    `json:"pairs"`
	// Fixed/Random count the traces kept per class after SIFA filtering;
	// Discarded the filtered runs.
	Fixed     int `json:"fixed_traces"`
	Random    int `json:"random_traces"`
	Discarded int `json:"discarded,omitempty"`
	// Samples is the trace length in clock cycles.
	Samples int `json:"samples"`
	// MaxAbsT is the largest |t| over all cycles; Leaks the TVLA verdict
	// (|t| > 4.5 anywhere).
	MaxAbsT float64 `json:"max_abs_t"`
	Leaks   bool    `json:"leaks"`
	// TValues is Welch's t per cycle.
	TValues []float64 `json:"t_values,omitempty"`
}

// NewLeakageResult converts an evaluator result to the wire form.
func NewLeakageResult(r leakage.Result) *LeakageResult {
	return &LeakageResult{
		Model:     r.Model,
		Pairs:     r.Pairs,
		Fixed:     r.Fixed,
		Random:    r.Random,
		Discarded: r.Discarded,
		Samples:   r.Samples,
		MaxAbsT:   r.MaxAbsT,
		Leaks:     r.Leaks,
		TValues:   r.TValues,
	}
}

// JobResult is the kind-discriminated result payload; exactly one field is
// set on a done job.
type JobResult struct {
	Campaign   *CampaignResult   `json:"campaign,omitempty"`
	DFA        *DFAResult        `json:"dfa,omitempty"`
	SIFA       *SIFAResult       `json:"sifa,omitempty"`
	FTA        *FTAResult        `json:"fta,omitempty"`
	Area       *AreaResult       `json:"area,omitempty"`
	Lint       *lint.Report      `json:"lint,omitempty"`
	Prove      *ProveResult      `json:"prove,omitempty"`
	MultiFault *MultiFaultResult `json:"multifault,omitempty"`
	Leakage    *LeakageResult    `json:"leakage,omitempty"`
}

// Progress is a point-in-time view of a running campaign job, published at
// every checkpoint boundary.
type Progress struct {
	Done   int            `json:"done"`
	Total  int            `json:"total"`
	Counts CampaignResult `json:"counts"`
}

// JobStatus is the wire view of a job.
type JobStatus struct {
	ID       string     `json:"id"`
	Kind     Kind       `json:"kind"`
	State    State      `json:"state"`
	Error    string     `json:"error,omitempty"`
	Progress *Progress  `json:"progress,omitempty"`
	Result   *JobResult `json:"result,omitempty"`
	// Resumed counts checkpoint resumes across service restarts and
	// drains.
	Resumed   int        `json:"resumed,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// Event is one NDJSON line of a job's progress stream: a status snapshot
// ("status"), a checkpoint-granular progress update ("progress"), or the
// final snapshot carrying the result ("result").
type Event struct {
	Type     string     `json:"type"`
	Job      *JobStatus `json:"job,omitempty"`
	Progress *Progress  `json:"progress,omitempty"`
}
