package service

// Distributed campaign fabric: the coordinator side. A campaign job on a
// coordinator (Config.Dist.Enabled) is not executed in-process; it is split
// into batch-range *leases* that worker processes (sconed -worker) pull
// over HTTP, execute via fault.Campaign.ExecuteBatches, and report back.
// Because batch b of a campaign derives all randomness from (seed, b), a
// lease is location-transparent: any worker, any number of retries, any
// interleaving — the counts for a batch range are always the same, so the
// coordinator only has to merge completed ranges in batch order to produce
// a result bit-identical to a single-node run.
//
// Failure handling is lease-shaped: a lease is granted with a TTL and must
// be renewed by worker heartbeats; an expired lease (worker died), a
// failed lease (worker errored) and a released lease (worker drained) all
// return to the pending set — the first two with jittered backoff and an
// attempt count that eventually fails the job, the last immediately and
// for free. The coordinator's own drain cancels distributed jobs back to
// the queued state with their merged-prefix checkpoint intact, exactly
// like local campaigns.

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/store"
)

// DistConfig enables and tunes the distributed campaign fabric on a
// coordinator. The zero value disables it: campaign jobs then execute
// in-process as before.
type DistConfig struct {
	// Enabled switches campaign execution from in-process to
	// lease-distributed. Attack, area and lint jobs always run on the
	// coordinator — they are short relative to campaigns.
	Enabled bool
	// LeaseBatches is the number of sim.Lanes-wide batches per lease.
	// Default 8.
	LeaseBatches int
	// LeaseTTL is how long a granted lease lives without a heartbeat
	// before it is reassigned. Default 15s.
	LeaseTTL time.Duration
	// MaxAttempts bounds grant attempts per batch range before the whole
	// job fails. Default 8.
	MaxAttempts int
	// HeartbeatEvery is the renewal interval advertised to workers.
	// Default LeaseTTL/3.
	HeartbeatEvery time.Duration
	// PollEvery is the idle lease-poll interval advertised to workers.
	// Default 500ms.
	PollEvery time.Duration
}

func (c DistConfig) withDefaults() DistConfig {
	if c.LeaseBatches <= 0 {
		c.LeaseBatches = 8
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = c.LeaseTTL / 3
	}
	if c.PollEvery <= 0 {
		c.PollEvery = 500 * time.Millisecond
	}
	return c
}

// Sentinel errors of the distributed protocol.
var (
	// ErrUnknownWorker is returned for worker IDs the coordinator has
	// never seen (or has forgotten across a restart); workers re-join.
	ErrUnknownWorker = errors.New("service: unknown worker")
	// ErrUnknownLease is returned for lease IDs that no longer exist
	// (job finished, canceled, or the coordinator restarted).
	ErrUnknownLease = errors.New("service: unknown lease")
	// ErrLeaseConflict is returned when a worker reports on a lease it no
	// longer owns — it expired and was reassigned. The worker discards
	// its partial work; determinism makes the redo bit-identical.
	ErrLeaseConflict = errors.New("service: lease owned by another worker")
)

// WorkerState is a registered worker's lifecycle position.
type WorkerState string

// Worker states. A lost worker that heartbeats again is revived; a worker
// that left deregistered cleanly and does not come back under that ID.
const (
	WorkerActive WorkerState = "active"
	WorkerLost   WorkerState = "lost"
	WorkerLeft   WorkerState = "left"
)

// LeaseState is a lease's lifecycle position.
type LeaseState string

// Lease states. Done leases are merged and dropped, so listings only ever
// show pending and active ones.
const (
	LeasePending LeaseState = "pending"
	LeaseActive  LeaseState = "active"
	LeaseDone    LeaseState = "done"
)

// WorkerInfo is the wire view of a registered worker (GET /v1/workers).
type WorkerInfo struct {
	ID        string      `json:"id"`
	Name      string      `json:"name,omitempty"`
	State     WorkerState `json:"state"`
	Capacity  int         `json:"capacity"`
	Active    int         `json:"active_leases"`
	Completed int         `json:"completed_leases"`
	Joined    time.Time   `json:"joined"`
	LastSeen  time.Time   `json:"last_seen"`
}

// LeaseInfo is the wire view of a live lease (GET /v1/leases).
type LeaseInfo struct {
	ID          string     `json:"id"`
	JobID       string     `json:"job_id"`
	State       LeaseState `json:"state"`
	Worker      string     `json:"worker,omitempty"`
	FirstBatch  int        `json:"first_batch"`
	LastBatch   int        `json:"last_batch"`
	DoneBatches int        `json:"done_batches"`
	Attempt     int        `json:"attempt"`
	Expires     *time.Time `json:"expires,omitempty"`
	NotBefore   *time.Time `json:"not_before,omitempty"`
}

// JoinRequest registers a worker (POST /v1/workers/join).
type JoinRequest struct {
	Name string `json:"name,omitempty"`
	// Capacity is how many leases the worker wants concurrently.
	// Default 1.
	Capacity int `json:"capacity,omitempty"`
}

// JoinResponse hands the worker its identity and the coordinator's pacing.
type JoinResponse struct {
	WorkerID    string `json:"worker_id"`
	LeaseTTLMS  int64  `json:"lease_ttl_ms"`
	HeartbeatMS int64  `json:"heartbeat_ms"`
	PollMS      int64  `json:"poll_ms"`
}

// HeartbeatRequest renews a worker's leases; Leases carries per-lease
// completed-batch counts (the streamed partial-tally view).
type HeartbeatRequest struct {
	Leases map[string]int `json:"leases,omitempty"`
}

// HeartbeatResponse tells the worker which of its reported leases it no
// longer owns (abort those executions) and whether the coordinator drains.
type HeartbeatResponse struct {
	Drop     []string `json:"drop,omitempty"`
	Draining bool     `json:"draining,omitempty"`
}

// AcquireRequest asks for a lease (POST /v1/leases/acquire).
type AcquireRequest struct {
	WorkerID string `json:"worker_id"`
}

// LeaseGrant is a granted lease: the full campaign request plus the batch
// range this worker executes. The worker builds the identical campaign
// and runs ExecuteBatches(FirstBatch, LastBatch).
type LeaseGrant struct {
	LeaseID    string       `json:"lease_id"`
	JobID      string       `json:"job_id"`
	Design     DesignSpec   `json:"design"`
	Campaign   CampaignSpec `json:"campaign"`
	FirstBatch int          `json:"first_batch"`
	LastBatch  int          `json:"last_batch"`
	TTLMS      int64        `json:"ttl_ms"`
}

// LeaseReport carries a worker's partial or final tally for one lease
// (POST /v1/leases/{id}/progress, /complete, /fail).
type LeaseReport struct {
	WorkerID    string         `json:"worker_id"`
	DoneBatches int            `json:"done_batches"`
	Counts      CampaignResult `json:"counts"`
	// Batches carries the per-batch tallies of the lease's range, in batch
	// order, on completion reports. The coordinator persists them in its
	// result store under their content addresses; older workers that omit
	// them merely forgo caching.
	Batches []CampaignResult `json:"batches,omitempty"`
	Error   string           `json:"error,omitempty"`
}

// lease is one batch range of one distributed job.
type lease struct {
	id      string
	jobID   string
	first   int
	last    int
	state   LeaseState
	worker  string
	attempt int // grant attempts so far

	expires   time.Time // active: reassignment deadline
	notBefore time.Time // pending: backoff gate after a failure
	done      int       // worker-reported completed batches
}

// workerEntry is one registered worker.
type workerEntry struct {
	id        string
	name      string
	state     WorkerState
	capacity  int
	active    int // leases currently held
	completed int
	joined    time.Time
	lastSeen  time.Time
}

// completedRange is a merged-but-not-yet-contiguous lease result. Ranges
// the result store pre-completed at register time carry their replay split;
// worker-executed ranges have zero replay.
type completedRange struct {
	last            int
	counts          CampaignResult
	replayedRuns    int
	replayedBatches int
}

// distJob is the coordinator-side state of one distributed campaign job.
type distJob struct {
	id      string
	req     JobRequest
	batches int
	runs    int // campaign total, for per-batch run counts

	// digest addresses the campaign in the result store; useStore gates
	// every store interaction (false without a store or on address failure).
	digest   store.Digest
	useStore bool

	cursor          int // merged contiguous batch prefix
	acc             CampaignResult
	replayedRuns    int // runs of the merged prefix served from the store
	replayedBatches int
	completed       map[int]completedRange // firstBatch -> out-of-order results
	failed          string

	// notify wakes the job goroutine (runCampaignDistributed); it is
	// capacity-1 and sends never block, so the coordinator can signal
	// while holding its mutex.
	notify chan struct{}
}

// foldLocked advances the merge cursor over every contiguous completed
// range, accumulating counts and the replay split in batch order — the
// ordered-prefix merge that keeps distributed results bit-identical to a
// single-node run. Callers hold c.mu.
func (dj *distJob) foldLocked() (advanced bool) {
	for {
		r, ok := dj.completed[dj.cursor]
		if !ok {
			return advanced
		}
		delete(dj.completed, dj.cursor)
		dj.acc.Accumulate(r.counts)
		dj.replayedRuns += r.replayedRuns
		dj.replayedBatches += r.replayedBatches
		dj.cursor = r.last
		advanced = true
	}
}

// batchRunsOf returns the run count of batch b in a campaign of runs total
// runs (fault.Campaign.BatchRuns without the campaign value).
func batchRunsOf(runs, b int) int {
	n := sim.Lanes
	if rem := runs - b*sim.Lanes; rem < n {
		n = rem
	}
	return n
}

// coordinator owns the worker registry and the lease table. It has its own
// mutex — never held together with Service.mu — and talks to job
// goroutines only through non-blocking notify channels.
type coordinator struct {
	cfg     DistConfig
	metrics *Metrics     // set by Service.New after newMetrics
	results *store.Store // set by Service.New; nil-safe when absent

	mu         sync.Mutex
	workers    map[string]*workerEntry
	jobs       map[string]*distJob
	leases     map[string]*lease
	order      []*lease // grant scan order: creation order, stable
	nextWorker int
	nextLease  int
	jitter     *rng.Xoshiro
	draining   bool
}

func newCoordinator(cfg DistConfig) *coordinator {
	return &coordinator{
		cfg:     cfg.withDefaults(),
		metrics: &Metrics{}, // nil-safe no-op instruments until the Service wires its own
		workers: make(map[string]*workerEntry),
		jobs:    make(map[string]*distJob),
		leases:  make(map[string]*lease),
		jitter:  rng.NewXoshiro(uint64(time.Now().UnixNano())),
	}
}

// register creates the lease table for a distributed job, starting from
// the checkpointed batch cursor. The result store is consulted exactly once
// per batch: cached batches become pre-completed ranges merged through the
// same ordered-prefix fold as lease results, and only the uncached gaps are
// cut into leases — a fully cached resubmission grants zero leases. It arms
// the notify channel once so the job goroutine immediately observes
// already-done edge cases (e.g. a fully cached or resumed-at-the-end job).
func (c *coordinator) register(jobID string, req JobRequest, start, batches int, acc CampaignResult, runs int, digest store.Digest, useStore bool) *distJob {
	c.mu.Lock()
	defer c.mu.Unlock()
	dj := &distJob{
		id:        jobID,
		req:       req,
		batches:   batches,
		runs:      runs,
		digest:    digest,
		useStore:  useStore && c.results != nil,
		cursor:    start,
		acc:       acc,
		completed: make(map[int]completedRange),
		notify:    make(chan struct{}, 1),
	}
	c.jobs[jobID] = dj
	var cached []*store.Counts
	if dj.useStore {
		cached = make([]*store.Counts, batches-start)
		for b := start; b < batches; b++ {
			k := store.BatchKey{Campaign: digest, Batch: b, Runs: batchRunsOf(runs, b)}
			if cnt, ok := c.results.GetBatch(k); ok {
				cc := cnt
				cached[b-start] = &cc
			}
		}
	}
	for b := start; b < batches; {
		if cached != nil && cached[b-start] != nil {
			first := b
			var r completedRange
			for b < batches && cached[b-start] != nil {
				cnt := *cached[b-start]
				r.counts.Total += cnt.Total
				r.counts.Ineffective += cnt.Ineffective
				r.counts.Detected += cnt.Detected
				r.counts.Effective += cnt.Effective
				r.counts.Corrected += cnt.Corrected
				r.replayedRuns += cnt.Total
				r.replayedBatches++
				b++
			}
			r.last = b
			dj.completed[first] = r
			fault.CountReplay(r.replayedBatches, fault.Result{Total: r.replayedRuns})
			continue
		}
		end := b
		for end < batches && (cached == nil || cached[end-start] == nil) {
			end++
		}
		for first := b; first < end; first += c.cfg.LeaseBatches {
			last := first + c.cfg.LeaseBatches
			if last > end {
				last = end
			}
			l := &lease{
				id:    fmt.Sprintf("l%06d", c.nextLease),
				jobID: jobID,
				first: first,
				last:  last,
				state: LeasePending,
			}
			c.nextLease++
			c.leases[l.id] = l
			c.order = append(c.order, l)
		}
		b = end
	}
	dj.foldLocked()
	dj.wake()
	return dj
}

// unregister drops a job and all of its leases (completion, cancel,
// drain). Workers still executing them learn via conflict responses.
func (c *coordinator) unregister(jobID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.jobs, jobID)
	c.dropJobLeasesLocked(jobID)
}

func (c *coordinator) dropJobLeasesLocked(jobID string) {
	kept := c.order[:0]
	for _, l := range c.order {
		if l.jobID != jobID {
			kept = append(kept, l)
			continue
		}
		if l.state == LeaseActive {
			if w := c.workers[l.worker]; w != nil {
				w.active--
			}
		}
		delete(c.leases, l.id)
	}
	c.order = kept
}

// distProgress is a point-in-time view of a distributed job's merged state,
// including how the merged prefix split between store replay and worker
// simulation.
type distProgress struct {
	cursor          int
	acc             CampaignResult
	replayedRuns    int
	replayedBatches int
	done            bool
	failed          string
}

// snapshot reads a job's merged state for the job goroutine.
func (c *coordinator) snapshot(jobID string) distProgress {
	c.mu.Lock()
	defer c.mu.Unlock()
	dj, ok := c.jobs[jobID]
	if !ok {
		return distProgress{}
	}
	return distProgress{
		cursor:          dj.cursor,
		acc:             dj.acc,
		replayedRuns:    dj.replayedRuns,
		replayedBatches: dj.replayedBatches,
		done:            dj.cursor == dj.batches,
		failed:          dj.failed,
	}
}

// wake signals the job goroutine without ever blocking.
func (dj *distJob) wake() {
	select {
	case dj.notify <- struct{}{}:
	default:
	}
}

// join registers a worker and hands back its identity plus pacing.
func (c *coordinator) join(req JoinRequest) JoinResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now().UTC()
	w := &workerEntry{
		id:       fmt.Sprintf("w%06d", c.nextWorker),
		name:     req.Name,
		state:    WorkerActive,
		capacity: req.Capacity,
		joined:   now,
		lastSeen: now,
	}
	if w.capacity <= 0 {
		w.capacity = 1
	}
	c.nextWorker++
	c.workers[w.id] = w
	c.metrics.WorkersJoined.Inc()
	return JoinResponse{
		WorkerID:    w.id,
		LeaseTTLMS:  c.cfg.LeaseTTL.Milliseconds(),
		HeartbeatMS: c.cfg.HeartbeatEvery.Milliseconds(),
		PollMS:      c.cfg.PollEvery.Milliseconds(),
	}
}

// touchLocked revives a worker on any authenticated traffic. Left workers
// stay left: their ID is retired.
func (c *coordinator) touchLocked(id string) (*workerEntry, error) {
	w, ok := c.workers[id]
	if !ok || w.state == WorkerLeft {
		return nil, ErrUnknownWorker
	}
	w.lastSeen = time.Now().UTC()
	w.state = WorkerActive
	return w, nil
}

// heartbeat renews every active lease the worker holds and reports back
// the reported leases it no longer owns.
func (c *coordinator) heartbeat(id string, req HeartbeatRequest) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, err := c.touchLocked(id)
	if err != nil {
		return HeartbeatResponse{}, err
	}
	c.metrics.Heartbeats.Inc()
	deadline := time.Now().Add(c.cfg.LeaseTTL)
	resp := HeartbeatResponse{Draining: c.draining}
	for leaseID, done := range req.Leases {
		l := c.leases[leaseID]
		if l == nil || l.state != LeaseActive || l.worker != w.id {
			resp.Drop = append(resp.Drop, leaseID)
			continue
		}
		l.expires = deadline
		if done > l.done {
			l.done = done
		}
	}
	return resp, nil
}

// leave deregisters a worker cleanly; its active leases go straight back
// to pending with no backoff and no attempt charge — a drained worker is
// not the batch range's fault.
func (c *coordinator) leave(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return ErrUnknownWorker
	}
	w.state = WorkerLeft
	now := time.Now()
	for _, l := range c.order {
		if l.state == LeaseActive && l.worker == id {
			c.releaseLocked(l, now, false)
		}
	}
	w.active = 0
	return nil
}

// acquire grants the lowest pending batch range whose backoff gate has
// passed. Granting in range order keeps the merge cursor advancing
// steadily, so checkpoints stay fresh.
func (c *coordinator) acquire(workerID string) (*LeaseGrant, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return nil, ErrDraining
	}
	w, err := c.touchLocked(workerID)
	if err != nil {
		return nil, err
	}
	if w.active >= w.capacity {
		return nil, nil
	}
	now := time.Now()
	for _, l := range c.order {
		if l.state != LeasePending || now.Before(l.notBefore) {
			continue
		}
		dj := c.jobs[l.jobID]
		if dj == nil || dj.failed != "" {
			continue
		}
		l.state = LeaseActive
		l.worker = w.id
		l.attempt++
		l.expires = now.Add(c.cfg.LeaseTTL)
		l.done = 0
		w.active++
		c.metrics.LeasesGranted.Inc()
		if l.attempt > 1 {
			c.metrics.LeasesReassigned.Inc()
		}
		return &LeaseGrant{
			LeaseID:    l.id,
			JobID:      l.jobID,
			Design:     dj.req.Design,
			Campaign:   *dj.req.Campaign,
			FirstBatch: l.first,
			LastBatch:  l.last,
			TTLMS:      c.cfg.LeaseTTL.Milliseconds(),
		}, nil
	}
	return nil, nil
}

// ownedLocked resolves a lease report to the lease iff the worker still
// owns it.
func (c *coordinator) ownedLocked(leaseID, workerID string) (*lease, error) {
	l, ok := c.leases[leaseID]
	if !ok {
		return nil, ErrUnknownLease
	}
	if l.state != LeaseActive || l.worker != workerID {
		return nil, ErrLeaseConflict
	}
	return l, nil
}

// progress records a partial tally and renews the lease — a worker that is
// visibly computing does not need a separate heartbeat to stay alive.
func (c *coordinator) progress(leaseID string, rep LeaseReport) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.touchLocked(rep.WorkerID); err != nil {
		return err
	}
	l, err := c.ownedLocked(leaseID, rep.WorkerID)
	if err != nil {
		return err
	}
	if rep.DoneBatches > l.done {
		l.done = rep.DoneBatches
	}
	l.expires = time.Now().Add(c.cfg.LeaseTTL)
	return nil
}

// complete finalises a lease: its counts enter the job's merge table and
// the contiguous prefix is folded forward in batch order.
func (c *coordinator) complete(leaseID string, rep LeaseReport) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, err := c.touchLocked(rep.WorkerID)
	if err != nil {
		return err
	}
	l, err := c.ownedLocked(leaseID, rep.WorkerID)
	if err != nil {
		return err
	}
	dj := c.jobs[l.jobID]
	if dj == nil {
		return ErrUnknownLease
	}
	l.state = LeaseDone
	w.active--
	w.completed++
	c.metrics.LeasesCompleted.Inc()
	delete(c.leases, l.id)
	for i, o := range c.order {
		if o == l {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	// Persist the worker's per-batch tallies under their content addresses
	// before merging. The length check rejects malformed reports; PutBatch
	// itself rejects tallies that contradict an existing record, so a buggy
	// or malicious worker cannot silently poison the cache.
	if dj.useStore && len(rep.Batches) == l.last-l.first {
		for i, cb := range rep.Batches {
			bi := l.first + i
			k := store.BatchKey{Campaign: dj.digest, Batch: bi, Runs: batchRunsOf(dj.runs, bi)}
			_ = c.results.PutBatch(k, storeCounts(cb))
		}
	}
	dj.completed[l.first] = completedRange{last: l.last, counts: rep.Counts}
	if dj.foldLocked() {
		dj.wake()
	}
	return nil
}

// fail returns a lease to the pending set with jittered backoff; past
// MaxAttempts the whole job fails (every worker is hitting the same
// deterministic error).
func (c *coordinator) fail(leaseID string, rep LeaseReport) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.touchLocked(rep.WorkerID); err != nil {
		return err
	}
	l, err := c.ownedLocked(leaseID, rep.WorkerID)
	if err != nil {
		return err
	}
	if w := c.workers[l.worker]; w != nil {
		w.active--
	}
	c.requeueLocked(l, time.Now(), rep.Error)
	return nil
}

// releaseLocked puts an active lease back in the pending set. charged
// requeues count toward MaxAttempts and get a backoff gate; a clean
// release (worker leave) keeps the attempt and is grantable immediately.
func (c *coordinator) releaseLocked(l *lease, now time.Time, charged bool) {
	l.state = LeasePending
	l.worker = ""
	l.done = 0
	l.expires = time.Time{}
	if charged {
		l.notBefore = now.Add(c.backoffLocked(l.attempt))
	} else {
		l.attempt-- // the re-grant is not a new attempt
		l.notBefore = time.Time{}
	}
}

// requeueLocked is releaseLocked plus the attempt-budget check. The lease
// goes back to pending either way so worker accounting stays consistent;
// once the job is marked failed, acquire never grants its leases again.
func (c *coordinator) requeueLocked(l *lease, now time.Time, cause string) {
	attempt := l.attempt
	c.releaseLocked(l, now, true)
	if attempt >= c.cfg.MaxAttempts {
		if dj := c.jobs[l.jobID]; dj != nil && dj.failed == "" {
			dj.failed = fmt.Sprintf("lease %s [%d,%d) failed after %d attempts: %s",
				l.id, l.first, l.last, attempt, cause)
			dj.wake()
		}
	}
}

// backoffLocked computes the jittered re-grant delay for the given attempt
// count: (TTL/4) << (attempt-1), capped at 4×TTL, then jittered into
// [d/2, d) so a fleet of failures does not re-dispatch in lockstep.
// Callers hold c.mu (the jitter source is not goroutine-safe).
func (c *coordinator) backoffLocked(attempt int) time.Duration {
	base := c.cfg.LeaseTTL / 4
	if base < 10*time.Millisecond {
		base = 10 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < 4*c.cfg.LeaseTTL; i++ {
		d *= 2
	}
	if limit := 4 * c.cfg.LeaseTTL; d > limit {
		d = limit
	}
	half := int64(d / 2)
	return time.Duration(half + int64(c.jitter.Uint64()%uint64(half+1)))
}

// sweep expires overdue leases and marks silent workers lost. Called by
// the janitor goroutine; the interval is a fraction of the lease TTL.
func (c *coordinator) sweep(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	lostDeadline := now.Add(-2 * c.cfg.LeaseTTL)
	for _, w := range c.workers {
		if w.state == WorkerActive && w.lastSeen.Before(lostDeadline) {
			w.state = WorkerLost
		}
	}
	for _, l := range c.order {
		if l.state != LeaseActive || now.Before(l.expires) {
			continue
		}
		if w := c.workers[l.worker]; w != nil {
			w.active--
		}
		c.metrics.LeasesExpired.Inc()
		c.requeueLocked(l, now, "lease expired (worker lost)")
	}
}

// janitor drives sweep until the service's base context dies.
func (c *coordinator) janitor(done <-chan struct{}) {
	interval := c.cfg.LeaseTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case now := <-t.C:
			c.sweep(now)
		}
	}
}

// setDraining flips the intake off; heartbeats start telling workers.
func (c *coordinator) setDraining() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
}

// workerCount reports live (non-left) workers; nil-safe for gauges.
func (c *coordinator) workerCount() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, w := range c.workers {
		if w.state == WorkerActive {
			n++
		}
	}
	return n
}

// activeLeaseCount reports granted-and-unexpired leases; nil-safe.
func (c *coordinator) activeLeaseCount() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for _, l := range c.order {
		if l.state == LeaseActive {
			n++
		}
	}
	return n
}

// workersInfo lists the registry for GET /v1/workers.
func (c *coordinator) workersInfo() []WorkerInfo {
	if c == nil {
		return []WorkerInfo{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerInfo{
			ID:        w.id,
			Name:      w.name,
			State:     w.state,
			Capacity:  w.capacity,
			Active:    w.active,
			Completed: w.completed,
			Joined:    w.joined,
			LastSeen:  w.lastSeen,
		})
	}
	sortByID(out, func(w WorkerInfo) string { return w.ID })
	return out
}

// leasesInfo lists live leases for GET /v1/leases.
func (c *coordinator) leasesInfo() []LeaseInfo {
	if c == nil {
		return []LeaseInfo{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]LeaseInfo, 0, len(c.order))
	for _, l := range c.order {
		li := LeaseInfo{
			ID:          l.id,
			JobID:       l.jobID,
			State:       l.state,
			Worker:      l.worker,
			FirstBatch:  l.first,
			LastBatch:   l.last,
			DoneBatches: l.done,
			Attempt:     l.attempt,
		}
		if !l.expires.IsZero() {
			e := l.expires
			li.Expires = &e
		}
		if !l.notBefore.IsZero() {
			nb := l.notBefore
			li.NotBefore = &nb
		}
		out = append(out, li)
	}
	sortByID(out, func(l LeaseInfo) string { return l.ID })
	return out
}

// sortByID orders wire listings by their zero-padded sequence IDs.
func sortByID[T any](s []T, id func(T) string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && id(s[j]) < id(s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
