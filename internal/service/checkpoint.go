package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
)

// Checkpoint is the durable mid-flight state of a campaign job. Because
// campaign batch b draws all randomness from (seed, b), the pair
// (NextBatch, Counts) is sufficient to resume: re-running batches
// [NextBatch, NumBatches) and adding the counts reproduces an
// uninterrupted run bit for bit. Prove jobs checkpoint through the Prove
// field, multifault jobs through the MultiFault field and leakage jobs
// through the Leakage field instead; at most one of the four shapes is
// ever populated.
type Checkpoint struct {
	NextBatch  int                   `json:"next_batch"`
	Counts     CampaignResult        `json:"counts"`
	Prove      *ProveCheckpoint      `json:"prove,omitempty"`
	MultiFault *MultiFaultCheckpoint `json:"multifault,omitempty"`
	Leakage    *LeakageCheckpoint    `json:"leakage,omitempty"`
}

// ProveCheckpoint is the durable mid-flight state of a prove job. Proofs
// are deterministic per (location, model) pair and the service walks the
// pairs in a fixed order (locations outer, models inner), so the completed
// prefix — the pairs in Done — plus the next pair index is sufficient to
// resume without re-proving anything.
type ProveCheckpoint struct {
	NextPair int             `json:"next_pair"`
	Done     []ProveLocation `json:"done"`
}

// MultiFaultCheckpoint is the durable mid-flight state of a multifault job.
// The plan's placement enumeration is deterministic and pruning is an
// execution-time skip (never a renumbering), so the completed placements in
// Done plus the next plan index resume the sweep exactly: every placement
// campaign is itself seed-deterministic, and a placement interrupted
// mid-campaign simply re-executes from its cached batches.
type MultiFaultCheckpoint struct {
	NextTuple int           `json:"next_tuple"`
	Done      []TupleResult `json:"done"`
}

// LeakageCheckpoint is the durable mid-flight state of a leakage job.
// Trace batch b draws all randomness from (seed, b), so the next batch
// index plus the streaming t-test accumulator (whose float64 fields
// round-trip JSON bit-exactly) resume the evaluation bit-identically —
// the resumed job simulates exactly the remaining batches.
type LeakageCheckpoint struct {
	NextBatch int              `json:"next_batch"`
	Discarded int              `json:"discarded"`
	TTest     stats.TTestState `json:"ttest"`
}

// jobRecord is the on-disk form of a job: the full request (jobs are
// defined by their requests — the determinism contract), lifecycle state
// and, for campaigns, the latest checkpoint.
type jobRecord struct {
	ID         string      `json:"id"`
	Req        JobRequest  `json:"request"`
	State      State       `json:"state"`
	Error      string      `json:"error,omitempty"`
	Result     *JobResult  `json:"result,omitempty"`
	Resumed    int         `json:"resumed,omitempty"`
	Checkpoint *Checkpoint `json:"checkpoint,omitempty"`
	Submitted  time.Time   `json:"submitted"`
}

// jobStore persists job records under dir/jobs/<id>.json. A nil jobStore (no
// state dir configured) turns every operation into a no-op: the service
// then runs purely in memory.
type jobStore struct {
	dir string
}

func openJobStore(dir string) (*jobStore, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("service: state dir: %w", err)
	}
	return &jobStore{dir: dir}, nil
}

func (st *jobStore) path(id string) string {
	return filepath.Join(st.dir, "jobs", id+".json")
}

// save writes atomically (temp file + rename) so a kill mid-write can never
// corrupt a record: the previous checkpoint stays intact.
func (st *jobStore) save(rec *jobRecord) error {
	if st == nil {
		return nil
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	tmp := st.path(rec.ID) + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, st.path(rec.ID))
}

// loadAll returns every persisted record sorted by ID (IDs are zero-padded
// sequence numbers, so this is submission order).
func (st *jobStore) loadAll() ([]*jobRecord, error) {
	if st == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(filepath.Join(st.dir, "jobs"))
	if err != nil {
		return nil, err
	}
	var recs []*jobRecord
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(st.dir, "jobs", name))
		if err != nil {
			return nil, err
		}
		var rec jobRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("service: corrupt job record %s: %w", name, err)
		}
		recs = append(recs, &rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs, nil
}
