package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// WriteJSON is the one encoder every scone surface shares — the daemon's
// responses, sconectl's rendering and sconesim -json all go through it, so
// their outputs are diff-able byte for byte.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// writeError emits the uniform error envelope.
func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = WriteJSON(w, map[string]string{"error": err.Error()})
}

func writeStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = WriteJSON(w, v)
}

// maxRequestBytes bounds submissions; inline netlists are the largest
// legitimate payload and the PRESENT-80 cores are well under this.
const maxRequestBytes = 8 << 20

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit (JobRequest -> JobStatus, 202)
//	GET    /v1/jobs             list
//	GET    /v1/jobs/{id}        status
//	DELETE /v1/jobs/{id}        cancel
//	POST   /v1/jobs/{id}/cancel cancel (proxy-friendly alias)
//	GET    /v1/jobs/{id}/stream NDJSON progress stream
//	GET    /healthz             liveness
//	GET    /metrics             Prometheus text (JSON snapshot with Accept: application/json)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeStatus(w, http.StatusOK, map[string]any{"jobs": s.List()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Get(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeStatus(w, http.StatusOK, st)
	})
	cancel := func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeStatus(w, http.StatusOK, st)
	}
	mux.HandleFunc("DELETE /v1/jobs/{id}", cancel)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", cancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeStatus(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// handleMetrics serves the full registry in Prometheus text exposition
// format. The pre-obs JSON snapshot (short legacy keys) remains available
// under Accept: application/json for sconectl and existing scrapers.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeStatus(w, http.StatusOK, s.Metrics.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.Metrics.WritePrometheus(w)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	st, err := s.Submit(req)
	switch {
	case err == nil:
		writeStatus(w, http.StatusAccepted, st)
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// handleStream serves the NDJSON progress feed: one status snapshot, then
// progress events as checkpoints land, then a final snapshot carrying the
// result. Each line is a complete Event and the connection closes after
// the terminal line, so `curl -N` and the client package can follow a job
// in real time.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, off, err := s.Watch(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer off()
	s.Metrics.StreamClients.Add(1)
	defer s.Metrics.StreamClients.Add(-1)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w) // NDJSON: one compact JSON object per line

	emit := func(ev Event) bool {
		if err := enc.Encode(ev); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	st, err := s.Get(id)
	if err != nil {
		return
	}
	if !emit(Event{Type: "status", Job: &st}) {
		return
	}
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				// Terminal: the subscription closed; emit the final
				// snapshot (it may have raced past a dropped event).
				if st, err := s.Get(id); err == nil {
					emit(Event{Type: "result", Job: &st})
				}
				return
			}
			if ev.Type == "result" {
				emit(ev)
				return
			}
			if !emit(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
