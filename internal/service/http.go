package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// WriteJSON is the one encoder every scone surface shares — the daemon's
// responses, sconectl's rendering and sconesim -json all go through it, so
// their outputs are diff-able byte for byte.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// Error codes of the /v1 typed error envelope. Every non-2xx v1 response
// is {"error":{"code","message"}} with one of these codes; the Go client
// maps them onto its sentinel errors, so callers branch on condition, not
// on status-code trivia.
const (
	CodeInvalidRequest = "invalid_request"
	CodeNotFound       = "not_found"
	CodeQueueFull      = "queue_full"
	CodeDraining       = "draining"
	CodeConflict       = "conflict"
	CodeInternal       = "internal"
)

// ErrorBody is the payload of the /v1 typed error envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorEnvelope is the full v1 error response shape.
type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// errWriter renders one error response; the v1 and legacy surfaces share
// handlers and differ only in this function, so behaviour cannot drift
// between them.
type errWriter func(w http.ResponseWriter, status int, code string, err error)

// writeV1Error emits the typed envelope.
func writeV1Error(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = WriteJSON(w, errorEnvelope{Error: ErrorBody{Code: code, Message: err.Error()}})
}

// errorStatus maps a service error onto its wire status and code. Unknown
// errors are client mistakes (validation failures) rather than server
// faults: the service's own failure modes all have sentinels.
func errorStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrUnknownJob), errors.Is(err, ErrUnknownWorker), errors.Is(err, ErrUnknownLease):
		return http.StatusNotFound, CodeNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, CodeQueueFull
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, CodeDraining
	case errors.Is(err, ErrLeaseConflict):
		return http.StatusConflict, CodeConflict
	default:
		return http.StatusBadRequest, CodeInvalidRequest
	}
}

func writeStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = WriteJSON(w, v)
}

// maxRequestBytes bounds submissions; inline netlists are the largest
// legitimate payload and the PRESENT-80 cores are well under this.
const maxRequestBytes = 8 << 20

// Handler returns the service's HTTP API. The versioned surface is:
//
//	POST   /v1/jobs                   submit (JobRequest -> JobStatus, 202)
//	GET    /v1/jobs                   list
//	GET    /v1/jobs/{id}              status
//	DELETE /v1/jobs/{id}              cancel
//	POST   /v1/jobs/{id}/cancel      cancel (proxy-friendly alias)
//	GET    /v1/jobs/{id}/stream      NDJSON progress stream
//	GET    /v1/results               stored campaign results by content address (zero simulation)
//	GET    /v1/runs                  stored campaign run records (provenance)
//	GET    /v1/runs/{id}             one stored run record
//	GET    /v1/healthz               liveness
//	GET    /v1/metrics               Prometheus text (JSON snapshot with Accept: application/json)
//	GET    /v1/workers               distributed-fabric worker registry
//	GET    /v1/leases                distributed-fabric lease table
//	POST   /v1/workers/join          worker registration
//	POST   /v1/workers/{id}/heartbeat lease renewal
//	POST   /v1/workers/{id}/leave    clean worker departure
//	POST   /v1/leases/acquire        pull a lease (204 when none)
//	POST   /v1/leases/{id}/progress  partial tally + renewal
//	POST   /v1/leases/{id}/complete  final tally
//	POST   /v1/leases/{id}/fail      error report, lease requeued
//
// Errors on /v1 use the typed envelope {"error":{"code","message"}}. The
// pre-versioning paths /healthz and /metrics remain as deprecated aliases
// (flat {"error":"..."} envelope, Deprecation header); see http_legacy.go.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	s.registerV1(mux)
	s.registerLegacy(mux)
	return mux
}

func (s *Service) registerV1(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/jobs", s.submitHandler(writeV1Error))
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeStatus(w, http.StatusOK, map[string]any{"jobs": s.List()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", s.getHandler(writeV1Error))
	cancel := s.cancelHandler(writeV1Error)
	mux.HandleFunc("DELETE /v1/jobs/{id}", cancel)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", cancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.streamHandler(writeV1Error))
	mux.HandleFunc("GET /v1/results", s.resultsHandler(writeV1Error))
	mux.HandleFunc("GET /v1/runs", func(w http.ResponseWriter, r *http.Request) {
		writeStatus(w, http.StatusOK, map[string]any{"runs": s.StoredRuns()})
	})
	mux.HandleFunc("GET /v1/runs/{id}", func(w http.ResponseWriter, r *http.Request) {
		rec, err := s.StoredRun(r.PathValue("id"))
		if err != nil {
			writeV1Error(w, http.StatusNotFound, CodeNotFound, err)
			return
		}
		writeStatus(w, http.StatusOK, rec)
	})
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.registerDistV1(mux)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeStatus(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves the full registry in Prometheus text exposition
// format. The pre-obs JSON snapshot (short legacy keys) remains available
// under Accept: application/json for sconectl and existing scrapers.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeStatus(w, http.StatusOK, s.Metrics.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.Metrics.WritePrometheus(w)
}

func (s *Service) submitHandler(we errWriter) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			we(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("decode request: %w", err))
			return
		}
		st, err := s.Submit(req)
		if err != nil {
			status, code := errorStatus(err)
			we(w, status, code, err)
			return
		}
		writeStatus(w, http.StatusAccepted, st)
	}
}

// resultsHandler serves stored campaign results by content address. The
// query vocabulary mirrors `sconectl submit` flags; the response is a
// ResultsView and never triggers simulation.
func (s *Service) resultsHandler(we errWriter) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, err := ParseResultsQuery(r.URL.Query())
		if err != nil {
			we(w, http.StatusBadRequest, CodeInvalidRequest, err)
			return
		}
		view, err := s.Results(req)
		if err != nil {
			status, code := errorStatus(err)
			we(w, status, code, err)
			return
		}
		writeStatus(w, http.StatusOK, view)
	}
}

func (s *Service) getHandler(we errWriter) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Get(r.PathValue("id"))
		if err != nil {
			we(w, http.StatusNotFound, CodeNotFound, err)
			return
		}
		writeStatus(w, http.StatusOK, st)
	}
}

func (s *Service) cancelHandler(we errWriter) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		st, err := s.Cancel(r.PathValue("id"))
		if err != nil {
			we(w, http.StatusNotFound, CodeNotFound, err)
			return
		}
		writeStatus(w, http.StatusOK, st)
	}
}

// streamHandler serves the NDJSON progress feed: one status snapshot, then
// progress events as checkpoints land, then a final snapshot carrying the
// result. Each line is a complete Event and the connection closes after
// the terminal line, so `curl -N` and the client package can follow a job
// in real time.
func (s *Service) streamHandler(we errWriter) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		ch, off, err := s.Watch(id)
		if err != nil {
			we(w, http.StatusNotFound, CodeNotFound, err)
			return
		}
		defer off()
		s.Metrics.StreamClients.Add(1)
		defer s.Metrics.StreamClients.Add(-1)

		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w) // NDJSON: one compact JSON object per line

		emit := func(ev Event) bool {
			if err := enc.Encode(ev); err != nil {
				return false
			}
			if flusher != nil {
				flusher.Flush()
			}
			return true
		}

		st, err := s.Get(id)
		if err != nil {
			return
		}
		if !emit(Event{Type: "status", Job: &st}) {
			return
		}
		for {
			select {
			case ev, ok := <-ch:
				if !ok {
					// Terminal: the subscription closed; emit the final
					// snapshot (it may have raced past a dropped event).
					if st, err := s.Get(id); err == nil {
						emit(Event{Type: "result", Job: &st})
					}
					return
				}
				if ev.Type == "result" {
					emit(ev)
					return
				}
				if !emit(ev) {
					return
				}
			case <-r.Context().Done():
				return
			}
		}
	}
}
