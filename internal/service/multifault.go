package service

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/store"
)

// placement is one planned multifault adversary: its stable plan index, the
// labels reports use, and the campaign spec that executes it. A pruned
// placement carries no spec — it is recorded, never simulated.
type placement struct {
	index  int
	sites  []string
	entry  int
	mask   uint64
	pruned bool
	spec   *CampaignSpec
}

// placementExec executes one placement campaign to completion and returns
// its tally. runMultiFault binds it to the local store-spliced path or to
// the distributed lease fabric, so planning and sweeping are written once.
type placementExec func(ctx context.Context, id string, cs *CampaignSpec) (CampaignResult, error)

// runMultiFault executes a multifault job: the plan is generated (and
// optionally pruned against singleton evidence), then walked one placement
// at a time in plan order. Each placement is itself a seed-deterministic
// campaign — the same (seed, batch) derivation as a standalone campaign job
// with the same spec, so placement tallies replay from the result store and
// are bit-identical whether executed locally, through the lease fabric, or
// spliced from cache. Every placement boundary is a checkpoint, mirroring
// runProve's pair-granular resume.
func (s *Service) runMultiFault(ctx context.Context, j *job) (*JobResult, error) {
	d, err := BuildDesign(j.req.Design)
	if err != nil {
		return nil, err
	}
	m := j.req.MultiFault

	exec := placementExec(func(ctx context.Context, id string, cs *CampaignSpec) (CampaignResult, error) {
		if s.dist != nil {
			return s.runPlacementDistributed(ctx, id, j.req.Design, d, cs)
		}
		return s.runPlacement(ctx, d, cs)
	})

	res, placements, err := s.multiFaultPlan(ctx, j.id, d, m, exec)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	start := 0
	if j.checkpoint != nil && j.checkpoint.MultiFault != nil {
		cp := j.checkpoint.MultiFault
		start = cp.NextTuple
		for _, tr := range cp.Done {
			res.Accumulate(tr)
		}
		j.resumed++
		s.Metrics.JobsResumed.Inc()
	}
	j.progress = &Progress{Done: start, Total: res.Planned, Counts: res.Totals}
	s.mu.Unlock()

	for idx := start; idx < len(placements); idx++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pl := placements[idx]
		tr := TupleResult{Index: pl.index, Sites: pl.sites, Entry: pl.entry, Mask: U64(pl.mask), Pruned: pl.pruned}
		if !pl.pruned {
			counts, err := exec(ctx, fmt.Sprintf("%s/t%d", j.id, pl.index), pl.spec)
			if err != nil {
				return nil, err
			}
			tr.Counts = counts
		}
		res.Accumulate(tr)
		// The checkpoint owns its own copy of the completed placements: the
		// result keeps growing while the persisted record must stay a frozen
		// snapshot of this boundary.
		done := append([]TupleResult(nil), res.Tuples...)
		s.mu.Lock()
		j.checkpoint = &Checkpoint{MultiFault: &MultiFaultCheckpoint{NextTuple: idx + 1, Done: done}}
		j.progress = &Progress{Done: idx + 1, Total: res.Planned, Counts: res.Totals}
		s.Metrics.Checkpoints.Inc()
		s.persistLocked(j)
		p := *j.progress
		s.publishLocked(j, Event{Type: "progress", Progress: &p})
		s.mu.Unlock()
		_ = s.results.Sync()
	}
	return &JobResult{MultiFault: res}, nil
}

// multiFaultPlan expands a validated multifault spec against the built
// design into the result skeleton and the placement list. Everything here is
// deterministic in the request: the site order is the design's declared
// fault-point order, tuple enumeration is lexicographic, and the inert
// oracle is computed from seed-deterministic singleton campaigns — so two
// services (or one service across a drain/resume) always agree on which
// index names which placement and which placements prune.
func (s *Service) multiFaultPlan(ctx context.Context, jobID string, d *core.Design, m *MultiFaultSpec, exec placementExec) (*MultiFaultResult, []placement, error) {
	res := &MultiFaultResult{Mode: m.Mode}
	if res.Mode == "" {
		res.Mode = "kfault"
	}

	if res.Mode == "persistent" {
		cs, truncated, err := plan.PersistentPlan(d.Spec.SboxBits, m.Sboxes, m.MaxTuples)
		if err != nil {
			return nil, nil, err
		}
		res.Planned = len(cs)
		res.Truncated = truncated
		placements := make([]placement, len(cs))
		for i, c := range cs {
			placements[i] = placement{
				index: i,
				entry: c.Entry,
				mask:  c.Mask,
				spec: &CampaignSpec{
					Runs:       m.RunsPerTuple,
					Seed:       m.Seed,
					Key:        m.Key,
					Persistent: &PersistentSpec{Entry: c.Entry, Mask: U64(c.Mask)},
					Workers:    m.Workers,
				},
			}
		}
		return res, placements, nil
	}

	k := m.K
	if k == 0 {
		k = 2
	}
	req := plan.Request{K: k, Sboxes: m.Sboxes, MaxTuples: m.MaxTuples}
	if m.Cone != nil {
		faults, err := resolveFaults(d, []FaultSpec{*m.Cone})
		if err != nil {
			return nil, nil, fmt.Errorf("cone: %w", err)
		}
		req.Cone = faults[0].Net
	}
	p, err := plan.New(d, req)
	if err != nil {
		return nil, nil, err
	}
	res.K = k
	res.Planned = len(p.Tuples)
	res.Truncated = p.Truncated
	for _, site := range p.Sites {
		res.Sites = append(res.Sites, site.Tag)
	}

	var inert map[int]bool
	if m.Prune {
		inert, err = s.inertSites(ctx, jobID, p.Sites, m, exec)
		if err != nil {
			return nil, nil, err
		}
	}

	placements := make([]placement, len(p.Tuples))
	for i, tup := range p.Tuples {
		pl := placement{index: i}
		for _, si := range tup {
			pl.sites = append(pl.sites, p.Sites[si].Tag)
		}
		if m.Prune && plan.PruneIndex(tup, func(si int) bool { return inert[si] }) >= 0 {
			pl.pruned = true
			placements[i] = pl
			continue
		}
		cs := &CampaignSpec{Runs: m.RunsPerTuple, Seed: m.Seed, Key: m.Key, Workers: m.Workers}
		for _, si := range tup {
			cs.Faults = append(cs.Faults, siteFault(p.Sites[si], m))
		}
		pl.spec = cs
		placements[i] = pl
	}
	return res, placements, nil
}

// siteFault maps a planned site back onto the wire fault vocabulary, so a
// placement campaign is expressible as an ordinary campaign spec — the form
// the lease fabric ships to workers and the form whose store address every
// execution path shares.
func siteFault(site plan.Site, m *MultiFaultSpec) FaultSpec {
	return FaultSpec{
		Branch: core.Branch(site.Branch).String(),
		Sbox:   site.Sbox,
		Bit:    site.Bit,
		Model:  m.Model,
		Cycle:  m.Cycle,
	}
}

// inertSites runs (or replays from the result store) each candidate site's
// singleton campaign and marks the sites where every run was ineffective —
// the empirical half of plan.PruneIndex's oracle. The singleton campaigns
// use the sweep's own runs/seed/key, so their store addresses coincide with
// any equivalent standalone campaign and a resumed or repeated sweep replays
// them instead of re-simulating.
func (s *Service) inertSites(ctx context.Context, jobID string, sites []plan.Site, m *MultiFaultSpec, exec placementExec) (map[int]bool, error) {
	inert := make(map[int]bool)
	for i, site := range sites {
		cs := &CampaignSpec{
			Runs:    m.RunsPerTuple,
			Seed:    m.Seed,
			Key:     m.Key,
			Faults:  []FaultSpec{siteFault(site, m)},
			Workers: m.Workers,
		}
		counts, err := exec(ctx, fmt.Sprintf("%s/s%d", jobID, i), cs)
		if err != nil {
			return nil, err
		}
		if counts.Detected == 0 && counts.Effective == 0 && counts.Corrected == 0 {
			inert[i] = true
		}
	}
	return inert, nil
}

// runPlacement executes one placement campaign in-process with store
// splicing — executeRange over the whole batch range, the same merge the
// campaign job kind uses.
func (s *Service) runPlacement(ctx context.Context, d *core.Design, cs *CampaignSpec) (CampaignResult, error) {
	camp, err := buildCampaign(d, cs, s.cfg.engineDefaults())
	if err != nil {
		return CampaignResult{}, err
	}
	addr, addrErr := campaignAddress(camp)
	useStore := addrErr == nil && s.results != nil
	var digest store.Digest
	if useStore {
		digest = addr.Digest()
	}
	delta, err := s.executeRange(ctx, camp, digest, useStore, 0, camp.NumBatches())
	s.Metrics.RunsSimulated.Add(int64(delta.simulatedRuns))
	s.Metrics.RunsReplayed.Add(int64(delta.replayedRuns))
	if err != nil {
		return CampaignResult{}, err
	}
	return delta.counts, nil
}

// runPlacementDistributed executes one placement campaign through the lease
// fabric: the placement registers as a synthetic campaign job ("<job>/t<i>"
// or "<job>/s<i>") whose leases workers pull exactly like a first-class
// campaign's, and the placement completes when the merge cursor covers every
// batch. Placement boundaries, not lease boundaries, are the multifault
// job's checkpoint grain: an interrupted placement re-registers on resume
// and its finished batches splice back in from the store.
func (s *Service) runPlacementDistributed(ctx context.Context, id string, ds DesignSpec, d *core.Design, cs *CampaignSpec) (CampaignResult, error) {
	camp, err := buildCampaign(d, cs, s.cfg.engineDefaults())
	if err != nil {
		return CampaignResult{}, err
	}
	addr, addrErr := campaignAddress(camp)
	useStore := addrErr == nil && s.results != nil
	var digest store.Digest
	if useStore {
		digest = addr.Digest()
	}
	req := JobRequest{Kind: KindCampaign, Design: ds, Campaign: cs}
	dj := s.dist.register(id, req, 0, camp.NumBatches(), CampaignResult{}, camp.Runs, digest, useStore)
	defer s.dist.unregister(id)
	for {
		select {
		case <-ctx.Done():
			return CampaignResult{}, ctx.Err()
		case <-dj.notify:
			p := s.dist.snapshot(id)
			if p.failed != "" {
				return CampaignResult{}, errors.New(p.failed)
			}
			if p.done {
				s.Metrics.RunsSimulated.Add(int64(p.acc.Total - p.replayedRuns))
				s.Metrics.RunsReplayed.Add(int64(p.replayedRuns))
				return p.acc, nil
			}
		}
	}
}
