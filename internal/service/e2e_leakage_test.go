package service_test

// End-to-end acceptance of the leakage job kind: a daemon drained
// mid-evaluation must come back as queued with a trace-batch checkpoint,
// and a restart on the same state directory must finish the job by
// simulating exactly the remaining batches — with t-statistics
// bit-identical to an uninterrupted evaluation. The re-simulation count
// is measured directly: the restarted process carries a fresh registry
// with the evaluator's instruments attached, so its
// scone_leakage_batches_total is exactly the number of batches that
// process simulated itself.

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/leakage"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/service"
	"repro/internal/spn"
)

// leakageBatchesCounted reads scone_leakage_batches_total out of a
// registry's Prometheus exposition.
func leakageBatchesCounted(t *testing.T, reg *obs.Registry) int {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "scone_leakage_batches_total") {
			continue
		}
		f := strings.Fields(line)
		n, err := strconv.Atoi(f[len(f)-1])
		if err != nil {
			t.Fatalf("bad metric line %q", line)
		}
		return n
	}
	return 0
}

func TestE2ELeakageDrainAndResume(t *testing.T) {
	stateDir := t.TempDir()
	cfg := service.Config{Workers: 1, StateDir: stateDir}
	const pairs = 32 * leakage.PairsPerBatch
	spec := service.LeakageSpec{
		Pairs:   pairs,
		Seed:    0x5C09E2021,
		Key:     [2]service.U64{0x0123456789ABCDEF, 0x8421},
		Model:   "hd",
		FixedPT: 0x0123456789ABCDEF,
	}
	req := service.JobRequest{
		Kind:    service.KindLeakage,
		Design:  service.DesignSpec{Cipher: "present80", Scheme: "masked", Entropy: "prime"},
		Leakage: &spec,
	}

	svc1, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the first trace-batch checkpoints, then drain mid-run.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		cur, err := svc1.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished before drain: %s (%s)", cur.State, cur.Error)
		}
		if cur.Progress != nil && cur.Progress.Done >= 2*leakage.PairsPerBatch {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no leakage checkpoint observed before deadline")
		}
		time.Sleep(time.Millisecond)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	if err := svc1.Drain(drainCtx); err != nil {
		cancel()
		t.Fatal(err)
	}
	cancel()

	mid, err := svc1.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.State != service.StateQueued {
		t.Fatalf("after drain the job is %s, want %s", mid.State, service.StateQueued)
	}
	if mid.Progress == nil || mid.Progress.Done == 0 || mid.Progress.Done >= pairs {
		t.Fatalf("after drain progress = %+v, want partial of %d", mid.Progress, pairs)
	}
	batchesAtDrain := mid.Progress.Done / leakage.PairsPerBatch

	// Restart with the evaluator's instruments on a fresh registry: the
	// batch counter then measures exactly the batches the new process
	// simulates itself, so "resume completes exactly the remaining
	// batches" is an equality.
	reg := obs.NewRegistry()
	leakage.EnableObservability(reg)
	defer leakage.EnableObservability(nil)
	cfg2 := cfg
	cfg2.Obs = reg
	svc2, err := service.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()

	var final service.JobStatus
	for time.Now().Before(deadline) {
		final, err = svc2.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State.Terminal() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.State != service.StateDone {
		t.Fatalf("resumed job finished %s (%s)", final.State, final.Error)
	}
	if final.Resumed < 1 {
		t.Errorf("resumed job has Resumed = %d, want >= 1", final.Resumed)
	}

	totalBatches := (pairs + leakage.PairsPerBatch - 1) / leakage.PairsPerBatch
	if got, want := leakageBatchesCounted(t, reg), totalBatches-batchesAtDrain; got != want {
		t.Errorf("restarted process simulated %d batches, want exactly the %d remaining (%d total - %d checkpointed)",
			got, want, totalBatches, batchesAtDrain)
	}

	res := final.Result.Leakage
	if res == nil {
		t.Fatal("no leakage result on terminal status")
	}
	if res.Fixed != pairs || res.Random != pairs || res.Discarded != 0 {
		t.Fatalf("trace counts %+v, want %d per class", res, pairs)
	}
	if res.Leaks {
		t.Errorf("masked core failed first-order TVLA (max |t| = %.2f)", res.MaxAbsT)
	}

	// Bit-identity: the drained-and-resumed job's statistics must equal an
	// uninterrupted in-process evaluation of the same request.
	d, err := service.BuildDesign(req.Design)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := leakage.New(leakage.Config{
		Design:  d,
		Key:     spn.KeyState{uint64(spec.Key[0]), uint64(spec.Key[1])},
		Model:   power.HammingDistance,
		Pairs:   spec.Pairs,
		Seed:    uint64(spec.Seed),
		FixedPT: uint64(spec.FixedPT),
	})
	if err != nil {
		t.Fatal(err)
	}
	for !ev.Done() {
		ev.Step()
	}
	want := ev.Result()
	if res.MaxAbsT != want.MaxAbsT {
		t.Errorf("resumed max |t| = %v, uninterrupted = %v", res.MaxAbsT, want.MaxAbsT)
	}
	if len(res.TValues) != len(want.TValues) {
		t.Fatalf("resumed trace has %d cycles, uninterrupted %d", len(res.TValues), len(want.TValues))
	}
	for i := range want.TValues {
		if res.TValues[i] != want.TValues[i] {
			t.Errorf("t[%d] = %v after resume, %v uninterrupted", i, res.TValues[i], want.TValues[i])
			break
		}
	}
}
