package service

import (
	"strings"
	"testing"
)

// proveFixtureNL mirrors the linter's seeded sifa_cond_bias fixture: both
// outcome marginals are uniform, but detection conditioned on the fault
// being ineffective reduces to AND(din, key) — the prover must return
// dependent verdicts with concrete witnesses at the tagged fault point v.
const proveFixtureNL = `module sifa_cond_bias
nets 6
netname 4 a1
netname 5 v
netname 6 flag
input din 1
input key 2
input lambda 3
output ct 5
output fault 6
cell AND2 4 1 2
cell XOR2 5 3 1 tag=fp.v
cell XOR2 6 3 4
endmodule
`

func TestProveValidation(t *testing.T) {
	bad := []struct {
		name string
		req  JobRequest
	}{
		{"bad model", JobRequest{Kind: KindProve, Prove: &ProveSpec{Models: []string{"gamma-ray"}}}},
		{"negative budget", JobRequest{Kind: KindProve, Prove: &ProveSpec{Budget: -1}}},
	}
	for _, tc := range bad {
		if err := tc.req.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	ok := []struct {
		name string
		req  JobRequest
	}{
		{"inline netlist", JobRequest{Kind: KindProve, Design: DesignSpec{Netlist: proveFixtureNL}}},
		{"no spec", JobRequest{Kind: KindProve}},
		{"full spec", JobRequest{Kind: KindProve, Prove: &ProveSpec{Models: []string{"stuck-at-0", "bit-flip"}, Budget: 1 << 16}}},
	}
	for _, tc := range ok {
		if err := tc.req.Validate(); err != nil {
			t.Errorf("%s: rejected: %v", tc.name, err)
		}
	}
}

// A prove job over the uploaded conditional-bias netlist must flag the
// seeded dependence with a witness, at every requested model, and report
// pair-granular progress.
func TestProveJobOnUploadedNetlist(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	st, err := s.Submit(JobRequest{
		Kind:   KindProve,
		Design: DesignSpec{Netlist: proveFixtureNL},
		Prove:  &ProveSpec{Models: []string{"stuck-at-0", "stuck-at-1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateDone || final.Result == nil || final.Result.Prove == nil {
		t.Fatalf("prove job: %s (%s)", final.State, final.Error)
	}
	res := final.Result.Prove
	if res.Module != "sifa_cond_bias" {
		t.Errorf("module %q, want sifa_cond_bias", res.Module)
	}
	if len(res.Locations) != 2 || res.Dependent != 2 || res.Clean() {
		t.Fatalf("want 2 dependent pairs, got %d pairs, %d dependent", len(res.Locations), res.Dependent)
	}
	for _, l := range res.Locations {
		if l.Name != "v" || l.Tag != "fp.v" {
			t.Errorf("location %q tag %q, want v / fp.v", l.Name, l.Tag)
		}
		if l.Verdict != "dependent" {
			t.Errorf("%s aggregate verdict %q, want dependent", l.Model, l.Verdict)
		}
		sifa := false
		for _, c := range l.Checks {
			if c.Check != "sifa-independence" {
				continue
			}
			sifa = true
			if c.Verdict != "dependent" || !strings.Contains(c.Witness, "key bit") {
				t.Errorf("%s sifa check: verdict %q witness %q", l.Model, c.Verdict, c.Witness)
			}
		}
		if !sifa {
			t.Errorf("%s: no sifa-independence check reported", l.Model)
		}
	}
	if final.Progress == nil || final.Progress.Done != 2 || final.Progress.Total != 2 {
		t.Errorf("final progress %+v, want 2/2", final.Progress)
	}
}

// A netlist with no fault-point tags has nothing to prove; the job must
// fail synchronously with a descriptive error rather than report an empty
// (vacuously clean) result.
func TestProveJobWithoutFaultPointsFails(t *testing.T) {
	noTags := strings.ReplaceAll(proveFixtureNL, " tag=fp.v", "")
	s := newTestService(t, Config{Workers: 1})
	st, err := s.Submit(JobRequest{Kind: KindProve, Design: DesignSpec{Netlist: noTags}})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateFailed || !strings.Contains(final.Error, "fault points") {
		t.Fatalf("tagless prove job: %s (%s)", final.State, final.Error)
	}
}
