package service_test

// End-to-end acceptance of the engine-configuration API: lane width, worker
// parallelism and dispatch granularity are pure execution policy, so a
// campaign executed under one configuration must be a full store hit for the
// same campaign submitted under any other — the content address knows
// nothing about how the batches were computed. This is the wire-level proof
// behind fault.EngineConfig's "cached batches replay across configurations"
// contract.

import (
	"context"
	"testing"
	"time"

	"repro/internal/service"
)

// engineRequest is e2eRequest with explicit execution policy.
func engineRequest(runs int, entropy string, laneWords, workers, batchRuns int) service.JobRequest {
	req := e2eRequest(runs, entropy)
	req.Campaign.LaneWords = laneWords
	req.Campaign.Workers = workers
	req.Campaign.BatchRuns = batchRuns
	return req
}

// TestE2EStoreReplayAcrossEngineConfigs caches a campaign at the classic
// width-1 single-worker configuration, then resubmits it at width 4 with
// eight workers: the second submission must simulate zero runs, replay every
// batch from the store, and produce the bit-identical result — and the same
// must hold in the reverse direction (cached wide, replayed narrow).
func TestE2EStoreReplayAcrossEngineConfigs(t *testing.T) {
	cases := []struct {
		name       string
		cold, warm service.JobRequest
	}{
		{
			name: "narrow-then-wide",
			cold: engineRequest(e2eRuns, "per-round", 1, 1, 0),
			warm: engineRequest(e2eRuns, "per-round", 4, 8, 512),
		},
		{
			name: "wide-then-narrow",
			cold: engineRequest(e2eRuns, "per-sbox", 4, 8, 512),
			warm: engineRequest(e2eRuns, "per-sbox", 1, 1, 0),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := service.Config{Workers: 1, CheckpointEveryRuns: 64, StateDir: t.TempDir()}
			ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
			defer cancel()
			svc, srv, c := storeDaemon(t, cfg)
			defer func() { srv.Close(); svc.Close() }()

			entropy := tc.cold.Design.Entropy
			first := submitAndWait(t, ctx, c, tc.cold)
			if want := directResult(t, e2eRuns, entropy); first != want {
				t.Fatalf("cold run diverged from direct execution:\n got  %+v\n want %+v", first, want)
			}

			before, err := c.Metrics(ctx)
			if err != nil {
				t.Fatal(err)
			}
			second := submitAndWait(t, ctx, c, tc.warm)
			if second != first {
				t.Fatalf("replayed result diverged across engine configs:\n got  %+v\n want %+v", second, first)
			}
			after, err := c.Metrics(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if sim := after["runs_simulated_total"] - before["runs_simulated_total"]; sim != 0 {
				t.Errorf("reconfigured resubmission simulated %d runs, want 0", sim)
			}
			if rep := after["runs_replayed_total"] - before["runs_replayed_total"]; rep != e2eRuns {
				t.Errorf("runs_replayed_total advanced by %d, want %d", rep, e2eRuns)
			}

			// Both submissions share one campaign digest: execution policy
			// never enters the content address.
			runs, err := c.StoredRuns(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(runs) != 2 {
				t.Fatalf("stored %d run records, want 2", len(runs))
			}
			if runs[0].Campaign == "" || runs[0].Campaign != runs[1].Campaign {
				t.Errorf("engine configs changed the campaign digest: %q vs %q",
					runs[0].Campaign, runs[1].Campaign)
			}
			if runs[1].SimulatedBatches != 0 || runs[1].ReplayedBatches == 0 {
				t.Errorf("warm run record %+v, want all batches replayed", runs[1])
			}
		})
	}
}

// TestE2ECampaignSpecRejectsBadEngineConfig pins the synchronous-400
// contract for the new wire fields.
func TestE2ECampaignSpecRejectsBadEngineConfig(t *testing.T) {
	req := engineRequest(e2eRuns, "prime", 3, 0, 0)
	if err := req.Validate(); err == nil {
		t.Error("lane_words=3 validated")
	}
	req = engineRequest(e2eRuns, "prime", 0, -1, 0)
	if err := req.Validate(); err == nil {
		t.Error("workers=-1 validated")
	}
	req = engineRequest(e2eRuns, "prime", 0, 0, -5)
	if err := req.Validate(); err == nil {
		t.Error("batch_runs=-5 validated")
	}
	req = engineRequest(e2eRuns, "prime", 2, 4, 128)
	if err := req.Validate(); err != nil {
		t.Errorf("valid engine config rejected: %v", err)
	}
}
