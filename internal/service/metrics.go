package service

import (
	"sort"
	"sync/atomic"
)

// Metrics is the service's expvar-style instrument set: monotonic counters
// plus point-in-time gauges, all lock-free atomics so the campaign hot path
// never contends. Unlike package expvar the registry is per-Service, so
// tests can run many instances in one process without name collisions.
type Metrics struct {
	JobsSubmitted int64
	JobsCompleted int64
	JobsFailed    int64
	JobsCanceled  int64
	JobsResumed   int64
	Checkpoints   int64
	RunsSimulated int64
	StreamClients int64

	jobsRunning int64
	queueDepth  func() int
}

func (m *Metrics) add(p *int64, n int64) { atomic.AddInt64(p, n) }

// Snapshot returns the current values keyed by their exported names.
func (m *Metrics) Snapshot() map[string]int64 {
	s := map[string]int64{
		"jobs_submitted_total": atomic.LoadInt64(&m.JobsSubmitted),
		"jobs_completed_total": atomic.LoadInt64(&m.JobsCompleted),
		"jobs_failed_total":    atomic.LoadInt64(&m.JobsFailed),
		"jobs_canceled_total":  atomic.LoadInt64(&m.JobsCanceled),
		"jobs_resumed_total":   atomic.LoadInt64(&m.JobsResumed),
		"checkpoints_total":    atomic.LoadInt64(&m.Checkpoints),
		"runs_simulated_total": atomic.LoadInt64(&m.RunsSimulated),
		"stream_clients":       atomic.LoadInt64(&m.StreamClients),
		"jobs_running":         atomic.LoadInt64(&m.jobsRunning),
	}
	if m.queueDepth != nil {
		s["queue_depth"] = int64(m.queueDepth())
	}
	return s
}

// Names returns the snapshot keys sorted, for stable rendering.
func (m *Metrics) Names() []string {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
