package service

import (
	"io"
	"sort"
	"strconv"

	"repro/internal/obs"
)

// Metrics is the service's instrument set, registered on an obs.Registry
// (the one from Config.Obs, or a private per-Service registry so tests can
// run many instances in one process without name collisions). The legacy
// short snapshot keys (jobs_submitted_total, queue_depth, ...) are preserved
// by Snapshot for the JSON /metrics view and existing clients; the registry
// additionally exposes everything — including the latency histograms — in
// Prometheus text form.
type Metrics struct {
	reg *obs.Registry

	JobsSubmitted *obs.Counter
	JobsCompleted *obs.Counter
	JobsFailed    *obs.Counter
	JobsCanceled  *obs.Counter
	JobsResumed   *obs.Counter
	Checkpoints   *obs.Counter
	RunsSimulated *obs.Counter
	// RunsReplayed counts campaign runs whose batch results came from the
	// result store; RunsSimulated counts only freshly simulated runs, so
	// the two partition a job's progress by where the work happened.
	RunsReplayed  *obs.Counter
	StreamClients *obs.Gauge
	JobsRunning   *obs.Gauge
	QueueDepth    *obs.Gauge

	// JobWaitNS measures submission-to-start queueing latency, JobRunNS the
	// start-to-terminal execution time, CheckpointNS one durable state write.
	JobWaitNS    *obs.Histogram
	JobRunNS     *obs.Histogram
	CheckpointNS *obs.Histogram

	// Distributed-fabric instruments (coordinator role; all zero on a
	// single-node service). LeasesReassigned counts grants of a batch range
	// that had been granted before — the worker-death / lease-expiry /
	// worker-error recovery path.
	WorkersJoined    *obs.Counter
	Heartbeats       *obs.Counter
	LeasesGranted    *obs.Counter
	LeasesCompleted  *obs.Counter
	LeasesExpired    *obs.Counter
	LeasesReassigned *obs.Counter
	Workers          *obs.Gauge
	LeasesActive     *obs.Gauge
}

// newMetrics registers the service instruments on reg, including one depth
// gauge per queue shard. c is the coordinator when the distributed fabric
// is enabled (nil otherwise; the worker/lease gauges then read zero).
func newMetrics(reg *obs.Registry, q *queue, c *coordinator) *Metrics {
	m := &Metrics{
		reg:           reg,
		JobsSubmitted: reg.NewCounter("scone_service_jobs_submitted_total", "Jobs accepted by Submit"),
		JobsCompleted: reg.NewCounter("scone_service_jobs_completed_total", "Jobs finished in StateDone"),
		JobsFailed:    reg.NewCounter("scone_service_jobs_failed_total", "Jobs finished in StateFailed"),
		JobsCanceled:  reg.NewCounter("scone_service_jobs_canceled_total", "Jobs finished in StateCanceled"),
		JobsResumed:   reg.NewCounter("scone_service_jobs_resumed_total", "Campaign executions resumed from a checkpoint"),
		Checkpoints:   reg.NewCounter("scone_service_checkpoints_total", "Campaign checkpoints persisted"),
		RunsSimulated: reg.NewCounter("scone_service_runs_simulated_total", "Campaign runs simulated across all jobs"),
		RunsReplayed:  reg.NewCounter("scone_service_runs_replayed_total", "Campaign runs served from the result store across all jobs"),
		StreamClients: reg.NewGauge("scone_service_stream_clients_count", "Connected NDJSON stream consumers"),
		JobsRunning:   reg.NewGauge("scone_service_jobs_running_count", "Jobs currently executing"),
		QueueDepth: reg.NewGaugeFunc("scone_service_queue_depth_count", "Queued-but-not-started jobs across all shards",
			func() int64 { return int64(q.Len()) }),
		JobWaitNS:    reg.NewHistogram("scone_service_job_wait_ns", "Queueing latency from Submit to job start", obs.LatencyBuckets()),
		JobRunNS:     reg.NewHistogram("scone_service_job_run_ns", "Execution time from job start to terminal state", obs.LatencyBuckets()),
		CheckpointNS: reg.NewHistogram("scone_service_checkpoint_ns", "Durable job-record write time", obs.ExpBuckets(16_000, 4, 12)),

		WorkersJoined:    reg.NewCounter("scone_service_workers_joined_total", "Workers registered via /v1/workers/join"),
		Heartbeats:       reg.NewCounter("scone_service_heartbeats_total", "Worker heartbeats received"),
		LeasesGranted:    reg.NewCounter("scone_service_leases_granted_total", "Batch-range leases granted to workers"),
		LeasesCompleted:  reg.NewCounter("scone_service_leases_completed_total", "Leases completed and merged"),
		LeasesExpired:    reg.NewCounter("scone_service_leases_expired_total", "Leases expired by the TTL janitor"),
		LeasesReassigned: reg.NewCounter("scone_service_leases_reassigned_total", "Re-grants of previously granted batch ranges"),
		Workers: reg.NewGaugeFunc("scone_service_workers_count", "Registered workers in the active state",
			c.workerCount),
		LeasesActive: reg.NewGaugeFunc("scone_service_leases_active_count", "Leases currently granted and unexpired",
			c.activeLeaseCount),
	}
	for i, sh := range q.shards {
		sh := sh
		reg.NewGaugeFunc("scone_service_queue_shard_depth_count", "Queued jobs in one shard",
			func() int64 { return int64(len(sh)) }, "shard", strconv.Itoa(i))
	}
	return m
}

// Registry exposes the backing registry so the daemon can register the sim
// and fault engine metrics alongside the service's own and render one
// exposition.
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// WritePrometheus renders every registered instrument in Prometheus text
// exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) error { return m.reg.WritePrometheus(w) }

// Snapshot returns the current values under the service's legacy short keys
// (the JSON /metrics contract from before the obs migration).
func (m *Metrics) Snapshot() map[string]int64 {
	return map[string]int64{
		"jobs_submitted_total": m.JobsSubmitted.Value(),
		"jobs_completed_total": m.JobsCompleted.Value(),
		"jobs_failed_total":    m.JobsFailed.Value(),
		"jobs_canceled_total":  m.JobsCanceled.Value(),
		"jobs_resumed_total":   m.JobsResumed.Value(),
		"checkpoints_total":    m.Checkpoints.Value(),
		"runs_simulated_total": m.RunsSimulated.Value(),
		"runs_replayed_total":  m.RunsReplayed.Value(),
		"stream_clients":       m.StreamClients.Value(),
		"jobs_running":         m.JobsRunning.Value(),
		"queue_depth":          m.QueueDepth.Value(),

		"workers":                 m.Workers.Value(),
		"workers_joined_total":    m.WorkersJoined.Value(),
		"heartbeats_total":        m.Heartbeats.Value(),
		"leases_active":           m.LeasesActive.Value(),
		"leases_granted_total":    m.LeasesGranted.Value(),
		"leases_completed_total":  m.LeasesCompleted.Value(),
		"leases_expired_total":    m.LeasesExpired.Value(),
		"leases_reassigned_total": m.LeasesReassigned.Value(),
	}
}

// Names returns the snapshot keys sorted, for stable rendering.
func (m *Metrics) Names() []string {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
