package service_test

// End-to-end acceptance of the prove job kind: a daemon drained mid-proof
// must come back as queued with a per-(location, model) checkpoint, and a
// restart on the same state directory must finish the job by proving only
// the remaining pairs — never re-proving a completed one. The re-prove
// count is measured directly: the restarted process carries a fresh
// registry with the prover's instruments attached, so its
// scone_prove_locations_total is exactly the number of pairs that process
// proved itself.

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/prove"
	"repro/internal/service"
)

// proveLocationsCounted reads scone_prove_locations_total out of a
// registry's Prometheus exposition.
func proveLocationsCounted(t *testing.T, reg *obs.Registry) int {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, "scone_prove_locations_total") {
			continue
		}
		f := strings.Fields(line)
		n, err := strconv.Atoi(f[len(f)-1])
		if err != nil {
			t.Fatalf("bad metric line %q", line)
		}
		return n
	}
	return 0
}

func TestE2EProveDrainAndResume(t *testing.T) {
	stateDir := t.TempDir()
	cfg := service.Config{Workers: 1, StateDir: stateDir}
	req := service.JobRequest{
		Kind:   service.KindProve,
		Design: service.DesignSpec{Cipher: "present80", Scheme: "three-in-one", Entropy: "prime"},
	}

	svc1, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the first per-pair checkpoints, then drain mid-proof.
	deadline := time.Now().Add(2 * time.Minute)
	var total int
	for {
		cur, err := svc1.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished before drain: %s (%s)", cur.State, cur.Error)
		}
		if cur.Progress != nil && cur.Progress.Done >= 2 {
			total = cur.Progress.Total
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no prove checkpoint observed before deadline")
		}
		time.Sleep(time.Millisecond)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	if err := svc1.Drain(drainCtx); err != nil {
		cancel()
		t.Fatal(err)
	}
	cancel()

	mid, err := svc1.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.State != service.StateQueued {
		t.Fatalf("after drain the job is %s, want %s", mid.State, service.StateQueued)
	}
	if mid.Progress == nil || mid.Progress.Done == 0 || mid.Progress.Done >= total {
		t.Fatalf("after drain progress = %+v, want partial of %d", mid.Progress, total)
	}
	doneAtDrain := mid.Progress.Done

	// Restart with the prover's instruments on a fresh registry: the
	// location counter then measures exactly the pairs the new process
	// proves itself, so "resume skips completed pairs" is an equality.
	reg := obs.NewRegistry()
	prove.EnableObservability(reg)
	defer prove.EnableObservability(nil)
	cfg2 := cfg
	cfg2.Obs = reg
	svc2, err := service.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()

	var final service.JobStatus
	for time.Now().Before(deadline) {
		final, err = svc2.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State.Terminal() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.State != service.StateDone {
		t.Fatalf("resumed job finished %s (%s)", final.State, final.Error)
	}
	if final.Resumed < 1 {
		t.Errorf("resumed job has Resumed = %d, want >= 1", final.Resumed)
	}
	if got := svc2.Metrics.Snapshot()["jobs_resumed_total"]; got < 1 {
		t.Errorf("jobs_resumed_total = %d, want >= 1", got)
	}

	res := final.Result.Prove
	if res == nil {
		t.Fatal("no prove result on terminal status")
	}
	if len(res.Locations) != total {
		t.Errorf("result carries %d pairs, want %d", len(res.Locations), total)
	}
	if res.Proved != total || !res.Clean() {
		t.Errorf("protected PRESENT-80 must prove clean: proved %d / dependent %d / unknown %d of %d",
			res.Proved, res.Dependent, res.Unknown, total)
	}
	if proved := proveLocationsCounted(t, reg); proved != total-doneAtDrain {
		t.Errorf("restarted process proved %d pairs, want exactly the %d remaining (%d total - %d checkpointed)",
			proved, total-doneAtDrain, total, doneAtDrain)
	}
}
