package service_test

// End-to-end acceptance of the multifault job kind, the two properties the
// subsystem promises. First, placement-granular resume: a daemon drained
// mid-sweep comes back queued with a per-placement checkpoint and a restart
// on the same state directory finishes the sweep, producing a result
// bit-identical to an uninterrupted run. Second, fabric independence: the
// same request executed single-node, through the distributed lease fabric,
// and replayed from the content-addressed store yields byte-identical
// results — every placement campaign derives all randomness from
// (seed, batch), so where and when it executes cannot matter.

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
)

func multiFaultRequest(mode string) service.JobRequest {
	req := service.JobRequest{
		Kind:   service.KindMultiFault,
		Design: service.DesignSpec{Cipher: "present80", Scheme: "three-in-one", Entropy: "prime"},
		MultiFault: &service.MultiFaultSpec{
			Mode:         mode,
			RunsPerTuple: 256,
			Seed:         e2eSeed,
			Key:          [2]service.U64{service.U64(e2eKey[0]), service.U64(e2eKey[1])},
		},
	}
	switch mode {
	case "kfault":
		req.MultiFault.K = 2
		req.MultiFault.Sboxes = []int{13} // 8 sites -> C(8,2) = 28 pairs
		req.MultiFault.MaxTuples = 6
	case "persistent":
		req.MultiFault.Sboxes = []int{12} // one table row
		req.MultiFault.MaxTuples = 4
	}
	return req
}

// finishMultiFault polls a submitted job to completion and returns its
// multifault result.
func finishMultiFault(t *testing.T, svc *service.Service, id string) *service.MultiFaultResult {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := svc.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			if st.State != service.StateDone {
				t.Fatalf("job ended %s (%s)", st.State, st.Error)
			}
			if st.Result == nil || st.Result.MultiFault == nil {
				t.Fatal("done multifault job has no multifault result")
			}
			return st.Result.MultiFault
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("multifault job did not finish before deadline")
	return nil
}

func runMultiFault(t *testing.T, cfg service.Config, req service.JobRequest) *service.MultiFaultResult {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	st, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	return finishMultiFault(t, svc, st.ID)
}

// TestE2EMultiFaultBitIdenticalAcrossFabric runs the same multifault sweep
// three ways — in-process, through a coordinator with an HTTP worker, and
// twice against one result store so the second pass replays — and requires
// all four results to be deeply equal, per placement, in both modes.
func TestE2EMultiFaultBitIdenticalAcrossFabric(t *testing.T) {
	for _, mode := range []string{"kfault", "persistent"} {
		t.Run(mode, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
			defer cancel()
			req := multiFaultRequest(mode)

			single := runMultiFault(t, service.Config{Workers: 1}, req)
			if single.Planned == 0 || single.Executed != single.Planned {
				t.Fatalf("degenerate sweep: %+v", single)
			}

			// Distributed: the placements lease out to one worker process.
			svc, c := startDaemon(t, distDaemonConfig())
			st, err := c.Submit(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			wctx, wstop := context.WithCancel(ctx)
			defer wstop()
			workerDone := make(chan error, 1)
			w := client.NewWorker(client.WorkerConfig{Coordinator: c.BaseURL, Name: "mf-worker", ChunkBatches: 1})
			go func() { workerDone <- w.Run(wctx) }()
			dist := finishMultiFault(t, svc, st.ID)
			wstop()
			select {
			case <-workerDone:
			case <-time.After(10 * time.Second):
				t.Fatal("worker did not stop")
			}
			if !reflect.DeepEqual(single, dist) {
				t.Fatalf("distributed sweep diverged:\n got  %+v\n want %+v", dist, single)
			}

			// Store-replayed: one state dir, same request twice. The second
			// submission must splice every placement batch from the store and
			// still produce the identical result.
			stateDir := t.TempDir()
			svc2, err := service.New(service.Config{Workers: 1, StateDir: stateDir})
			if err != nil {
				t.Fatal(err)
			}
			defer svc2.Close()
			first, err := svc2.Submit(req)
			if err != nil {
				t.Fatal(err)
			}
			cold := finishMultiFault(t, svc2, first.ID)
			second, err := svc2.Submit(req)
			if err != nil {
				t.Fatal(err)
			}
			warm := finishMultiFault(t, svc2, second.ID)
			if !reflect.DeepEqual(single, cold) || !reflect.DeepEqual(single, warm) {
				t.Fatalf("store-backed sweeps diverged:\n cold %+v\n warm %+v\n want %+v", cold, warm, single)
			}
			snap := svc2.Metrics.Snapshot()
			if snap["runs_replayed_total"] == 0 {
				t.Fatalf("second sweep never replayed from the store: %v", snap)
			}
		})
	}
}

// TestE2EMultiFaultDrainAndResume drains a daemon mid-sweep and restarts it
// on the same state directory: the job must come back queued with partial
// placement progress, finish after the restart with Resumed recorded, and
// the stitched result must equal an uninterrupted run placement for
// placement.
func TestE2EMultiFaultDrainAndResume(t *testing.T) {
	req := multiFaultRequest("kfault")
	req.MultiFault.MaxTuples = 0 // all 28 pairs, so the drain lands mid-sweep
	req.MultiFault.Prune = true  // exercise the singleton prepass end to end
	req.MultiFault.RunsPerTuple = 2048

	stateDir := t.TempDir()
	cfg := service.Config{Workers: 1, StateDir: stateDir}
	svc1, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the first per-placement checkpoints, then drain mid-sweep.
	deadline := time.Now().Add(2 * time.Minute)
	var total int
	for {
		cur, err := svc1.Get(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished before drain: %s (%s)", cur.State, cur.Error)
		}
		if cur.Progress != nil && cur.Progress.Done >= 2 {
			total = cur.Progress.Total
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no multifault checkpoint observed before deadline")
		}
		time.Sleep(time.Millisecond)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	if err := svc1.Drain(drainCtx); err != nil {
		cancel()
		t.Fatal(err)
	}
	cancel()

	mid, err := svc1.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.State != service.StateQueued {
		t.Fatalf("after drain the job is %s, want %s", mid.State, service.StateQueued)
	}
	if mid.Progress == nil || mid.Progress.Done == 0 || mid.Progress.Done >= total {
		t.Fatalf("after drain progress = %+v, want partial of %d", mid.Progress, total)
	}

	svc2, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	res := finishMultiFault(t, svc2, st.ID)

	final, err := svc2.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Resumed < 1 {
		t.Errorf("resumed job has Resumed = %d, want >= 1", final.Resumed)
	}
	if got := svc2.Metrics.Snapshot()["jobs_resumed_total"]; got < 1 {
		t.Errorf("jobs_resumed_total = %d, want >= 1", got)
	}
	if len(res.Tuples) != res.Planned || res.Executed+res.Pruned != res.Planned {
		t.Fatalf("stitched sweep incomplete: %+v", res)
	}
	for i, tr := range res.Tuples {
		if tr.Index != i {
			t.Fatalf("placement %d carries index %d — checkpoint stitched out of order", i, tr.Index)
		}
	}

	// The stitched result equals an uninterrupted run on a fresh service.
	want := runMultiFault(t, service.Config{Workers: 1}, req)
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("resumed sweep diverged from uninterrupted run:\n got  %+v\n want %+v", res, want)
	}
}
