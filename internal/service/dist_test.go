package service

// Unit tests for the coordinator's lease table: grant order, out-of-order
// merge, heartbeat renewal, expiry/reassignment, the attempt budget, clean
// worker leave and drain. These drive the state machine directly (no HTTP,
// no simulation) so every transition is tested in isolation; the e2e suite
// covers the same machinery end to end with real workers.

import (
	"errors"
	"testing"
	"time"

	"repro/internal/store"
)

func distReq() JobRequest {
	return JobRequest{
		Kind:   KindCampaign,
		Design: DesignSpec{Cipher: "present80", Scheme: "three-in-one"},
		Campaign: &CampaignSpec{
			Runs: 320, Seed: 1,
			Faults: []FaultSpec{{Sbox: 13, Bit: 2, Model: "stuck-at-0"}},
		},
	}
}

// acquirePoll retries acquire until a grant arrives or a second passes,
// riding out jittered backoff gates.
func acquirePoll(t *testing.T, c *coordinator, workerID string) *LeaseGrant {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for {
		g, err := c.acquire(workerID)
		if err != nil {
			t.Fatal(err)
		}
		if g != nil {
			return g
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease granted within a second")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCoordinatorGrantOrderAndMerge(t *testing.T) {
	c := newCoordinator(DistConfig{LeaseBatches: 2, LeaseTTL: time.Hour})
	dj := c.register("j1", distReq(), 0, 5, CampaignResult{}, 320, store.Digest{}, false)
	select {
	case <-dj.notify:
	default:
		t.Fatal("register did not arm the notify channel")
	}
	if got := len(c.leasesInfo()); got != 3 {
		t.Fatalf("5 batches at 2 per lease made %d leases, want 3", got)
	}

	w1 := c.join(JoinRequest{Name: "a"})
	w2 := c.join(JoinRequest{Name: "b"})
	if w1.LeaseTTLMS != time.Hour.Milliseconds() || w1.HeartbeatMS <= 0 || w1.PollMS <= 0 {
		t.Fatalf("join pacing %+v", w1)
	}

	g1 := acquirePoll(t, c, w1.WorkerID)
	g2 := acquirePoll(t, c, w2.WorkerID)
	if g1.FirstBatch != 0 || g1.LastBatch != 2 || g2.FirstBatch != 2 || g2.LastBatch != 4 {
		t.Fatalf("grants out of range order: %+v %+v", g1, g2)
	}
	if g1.JobID != "j1" || g1.Campaign.Runs != 320 {
		t.Fatalf("grant payload %+v", g1)
	}
	// Default capacity is one lease at a time.
	if g, err := c.acquire(w1.WorkerID); err != nil || g != nil {
		t.Fatalf("over-capacity acquire: %v %v", g, err)
	}

	// Out-of-order completion parks until the prefix is contiguous.
	if err := c.complete(g2.LeaseID, LeaseReport{
		WorkerID: w2.WorkerID, Counts: CampaignResult{Total: 128, Detected: 128},
	}); err != nil {
		t.Fatal(err)
	}
	p := c.snapshot("j1")
	if p.cursor != 0 || p.acc.Total != 0 || p.done {
		t.Fatalf("cursor advanced past a gap: cursor %d acc %+v", p.cursor, p.acc)
	}
	if err := c.complete(g1.LeaseID, LeaseReport{
		WorkerID: w1.WorkerID, Counts: CampaignResult{Total: 128, Detected: 100},
	}); err != nil {
		t.Fatal(err)
	}
	p = c.snapshot("j1")
	if p.cursor != 4 || p.acc.Total != 256 || p.acc.Detected != 228 || p.done {
		t.Fatalf("after folding both ranges: cursor %d acc %+v", p.cursor, p.acc)
	}

	g3 := acquirePoll(t, c, w1.WorkerID)
	if g3.FirstBatch != 4 || g3.LastBatch != 5 {
		t.Fatalf("tail grant %+v", g3)
	}
	if err := c.complete(g3.LeaseID, LeaseReport{
		WorkerID: w1.WorkerID, Counts: CampaignResult{Total: 64, Detected: 64},
	}); err != nil {
		t.Fatal(err)
	}
	p = c.snapshot("j1")
	if p.cursor != 5 || !p.done || p.failed != "" || p.acc.Total != 320 || p.acc.Detected != 292 {
		t.Fatalf("final snapshot: cursor %d done %v acc %+v", p.cursor, p.done, p.acc)
	}
	if got := len(c.leasesInfo()); got != 0 {
		t.Fatalf("%d leases survive a finished job", got)
	}

	ws := c.workersInfo()
	if len(ws) != 2 || ws[0].ID >= ws[1].ID {
		t.Fatalf("worker listing %+v", ws)
	}
	if ws[0].Completed+ws[1].Completed != 3 || ws[0].Active+ws[1].Active != 0 {
		t.Fatalf("worker accounting %+v", ws)
	}
}

func TestCoordinatorHeartbeatRenewsAndDrops(t *testing.T) {
	c := newCoordinator(DistConfig{LeaseBatches: 8, LeaseTTL: time.Hour})
	c.register("j1", distReq(), 0, 5, CampaignResult{}, 320, store.Digest{}, false)
	w := c.join(JoinRequest{})
	g := acquirePoll(t, c, w.WorkerID)

	resp, err := c.heartbeat(w.WorkerID, HeartbeatRequest{
		Leases: map[string]int{g.LeaseID: 3, "l999999": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Drop) != 1 || resp.Drop[0] != "l999999" {
		t.Fatalf("drop list %v, want the unknown lease only", resp.Drop)
	}
	ls := c.leasesInfo()
	if len(ls) != 1 || ls[0].DoneBatches != 3 || ls[0].State != LeaseActive {
		t.Fatalf("lease after heartbeat %+v", ls)
	}
	// A renewed lease survives a sweep well past the original deadline.
	c.sweep(time.Now().Add(30 * time.Minute))
	if ls := c.leasesInfo(); ls[0].State != LeaseActive {
		t.Fatalf("renewed lease swept: %+v", ls[0])
	}

	if _, err := c.heartbeat("w999999", HeartbeatRequest{}); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("unknown worker heartbeat: %v", err)
	}
}

func TestCoordinatorExpiryReassignsAndConflicts(t *testing.T) {
	ttl := 40 * time.Millisecond
	c := newCoordinator(DistConfig{LeaseBatches: 8, LeaseTTL: ttl})
	c.register("j1", distReq(), 0, 5, CampaignResult{}, 320, store.Digest{}, false)
	w1 := c.join(JoinRequest{Name: "victim"})
	w2 := c.join(JoinRequest{Name: "survivor"})
	g1 := acquirePoll(t, c, w1.WorkerID)

	// No heartbeat for longer than the TTL: the sweep requeues the lease
	// with a backoff gate and keeps the attempt on the books.
	time.Sleep(ttl + 10*time.Millisecond)
	c.sweep(time.Now())
	ls := c.leasesInfo()
	if len(ls) != 1 || ls[0].State != LeasePending || ls[0].Attempt != 1 || ls[0].NotBefore == nil {
		t.Fatalf("lease after expiry %+v", ls)
	}

	g2 := acquirePoll(t, c, w2.WorkerID)
	if g2.LeaseID != g1.LeaseID || g2.FirstBatch != g1.FirstBatch {
		t.Fatalf("reassignment granted %+v, want the expired range %+v", g2, g1)
	}
	if ls := c.leasesInfo(); ls[0].Attempt != 2 || ls[0].Worker != w2.WorkerID {
		t.Fatalf("reassigned lease %+v", ls[0])
	}

	// The original owner's late report is a conflict; the new owner's
	// progress renews.
	err := c.complete(g1.LeaseID, LeaseReport{WorkerID: w1.WorkerID, Counts: CampaignResult{Total: 320}})
	if !errors.Is(err, ErrLeaseConflict) {
		t.Fatalf("stale complete: %v", err)
	}
	if err := c.progress(g2.LeaseID, LeaseReport{WorkerID: w2.WorkerID, DoneBatches: 2}); err != nil {
		t.Fatal(err)
	}
	if ls := c.leasesInfo(); ls[0].DoneBatches != 2 {
		t.Fatalf("progress not recorded: %+v", ls[0])
	}
	p := c.snapshot("j1")
	if p.cursor != 0 || p.acc.Total != 0 {
		t.Fatalf("stale counts leaked into the merge: cursor %d acc %+v", p.cursor, p.acc)
	}
}

func TestCoordinatorFailureBudgetFailsJob(t *testing.T) {
	c := newCoordinator(DistConfig{LeaseBatches: 8, LeaseTTL: 40 * time.Millisecond, MaxAttempts: 2})
	c.register("j1", distReq(), 0, 5, CampaignResult{}, 320, store.Digest{}, false)
	w := c.join(JoinRequest{})

	for attempt := 1; attempt <= 2; attempt++ {
		g := acquirePoll(t, c, w.WorkerID)
		if err := c.fail(g.LeaseID, LeaseReport{WorkerID: w.WorkerID, Error: "boom"}); err != nil {
			t.Fatalf("fail attempt %d: %v", attempt, err)
		}
	}
	p := c.snapshot("j1")
	if p.done || p.failed == "" {
		t.Fatalf("job not failed after exhausting attempts: done %v failed %q", p.done, p.failed)
	}
	// A failed job's leases are never granted again.
	time.Sleep(60 * time.Millisecond)
	if g, err := c.acquire(w.WorkerID); err != nil || g != nil {
		t.Fatalf("grant from a failed job: %v %v", g, err)
	}
	if ws := c.workersInfo(); ws[0].Active != 0 {
		t.Fatalf("worker accounting after failures %+v", ws[0])
	}
	c.unregister("j1")
	if got := len(c.leasesInfo()); got != 0 {
		t.Fatalf("%d leases survive unregister", got)
	}
}

func TestCoordinatorLeaveReleasesUncharged(t *testing.T) {
	c := newCoordinator(DistConfig{LeaseBatches: 8, LeaseTTL: time.Hour})
	c.register("j1", distReq(), 0, 5, CampaignResult{}, 320, store.Digest{}, false)
	w1 := c.join(JoinRequest{})
	w2 := c.join(JoinRequest{})
	g1 := acquirePoll(t, c, w1.WorkerID)

	if err := c.leave(w1.WorkerID); err != nil {
		t.Fatal(err)
	}
	// No backoff gate and no attempt charge: the range was not at fault.
	g2, err := c.acquire(w2.WorkerID)
	if err != nil || g2 == nil || g2.LeaseID != g1.LeaseID {
		t.Fatalf("post-leave acquire: %+v %v", g2, err)
	}
	if ls := c.leasesInfo(); ls[0].Attempt != 1 {
		t.Fatalf("leave charged an attempt: %+v", ls[0])
	}

	// A left worker's ID is retired.
	if _, err := c.heartbeat(w1.WorkerID, HeartbeatRequest{}); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("heartbeat after leave: %v", err)
	}
	if _, err := c.acquire(w1.WorkerID); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("acquire after leave: %v", err)
	}
	if err := c.leave("w999999"); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("leave of unknown worker: %v", err)
	}
}

func TestCoordinatorRegisterFromCheckpoint(t *testing.T) {
	c := newCoordinator(DistConfig{LeaseBatches: 2, LeaseTTL: time.Hour})
	acc := CampaignResult{Total: 192, Detected: 180, Ineffective: 12}
	c.register("j1", distReq(), 3, 5, acc, 320, store.Digest{}, false)

	p := c.snapshot("j1")
	if p.cursor != 3 || p.acc != acc || p.done {
		t.Fatalf("resume snapshot: cursor %d acc %+v", p.cursor, p.acc)
	}
	ls := c.leasesInfo()
	if len(ls) != 1 || ls[0].FirstBatch != 3 || ls[0].LastBatch != 5 {
		t.Fatalf("resume lease table %+v", ls)
	}

	w := c.join(JoinRequest{})
	g := acquirePoll(t, c, w.WorkerID)
	if err := c.complete(g.LeaseID, LeaseReport{
		WorkerID: w.WorkerID, Counts: CampaignResult{Total: 128, Detected: 120, Ineffective: 8},
	}); err != nil {
		t.Fatal(err)
	}
	p = c.snapshot("j1")
	if p.cursor != 5 || !p.done || p.acc.Total != 320 || p.acc.Detected != 300 || p.acc.Ineffective != 20 {
		t.Fatalf("resumed job final: cursor %d acc %+v", p.cursor, p.acc)
	}
}

func TestCoordinatorDrainingAndNilSafety(t *testing.T) {
	c := newCoordinator(DistConfig{LeaseBatches: 8, LeaseTTL: time.Hour})
	c.register("j1", distReq(), 0, 5, CampaignResult{}, 320, store.Digest{}, false)
	w := c.join(JoinRequest{})

	c.setDraining()
	if _, err := c.acquire(w.WorkerID); !errors.Is(err, ErrDraining) {
		t.Fatalf("acquire while draining: %v", err)
	}
	resp, err := c.heartbeat(w.WorkerID, HeartbeatRequest{})
	if err != nil || !resp.Draining {
		t.Fatalf("heartbeat while draining: %+v %v", resp, err)
	}

	// The gauge and listing helpers are nil-safe so non-coordinators can
	// share the same wiring.
	var nilc *coordinator
	nilc.setDraining()
	if nilc.workerCount() != 0 || nilc.activeLeaseCount() != 0 {
		t.Fatal("nil coordinator reports non-zero gauges")
	}
	if ws, ls := nilc.workersInfo(), nilc.leasesInfo(); len(ws) != 0 || len(ls) != 0 {
		t.Fatal("nil coordinator reports listings")
	}
}
