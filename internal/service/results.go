package service

// The result-store integration: campaign content addressing, the zero-
// simulation read surface (GET /v1/results, /v1/runs) and the conversion
// helpers between the engine's tallies and the store's record types.
//
// A campaign's content address covers everything a batch outcome depends on
// except the batch index: the canonical netlist text of the built design,
// the engine version, the cipher key, the seed and the resolved fault
// points. Address equality therefore means batch-for-batch result equality
// (the determinism contract), which is what makes stored batches safe to
// splice into live executions.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"time"

	"repro/internal/fault"
	"repro/internal/store"
)

// isCanceled reports whether an execution error is an interruption (drain,
// user cancel, deadline) rather than a genuine failure.
func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// RunRecord is the durable provenance of one campaign submission, re-
// exported from the store so client code needs only the service wire types.
type RunRecord = store.RunRecord

// campaignAddress computes the content address of a built campaign. It
// hashes the design's canonical text serialisation — the same bytes a
// netlist round-trip preserves — and copies the resolved fault points field
// for field, so two submissions address equal keys exactly when the engine
// would simulate identical batches.
func campaignAddress(camp *fault.Campaign) (store.CampaignKey, error) {
	var buf bytes.Buffer
	if err := camp.Design.Mod.WriteText(&buf); err != nil {
		return store.CampaignKey{}, fmt.Errorf("service: digest netlist: %w", err)
	}
	k := store.CampaignKey{
		Netlist: store.HashBytes(buf.Bytes()),
		Engine:  camp.EngineID(),
		Key:     [2]uint64{camp.Key[0], camp.Key[1]},
		Seed:    camp.Seed,
		Faults:  make([]store.FaultPoint, len(camp.Faults)),
	}
	for i, f := range camp.Faults {
		k.Faults[i] = store.FaultPoint{
			Net:       uint32(f.Net),
			Model:     uint8(f.Model),
			FromCycle: int32(f.FromCycle),
			ToCycle:   int32(f.ToCycle),
			Lanes:     f.Lanes,
		}
	}
	if p := camp.Persistent; p != nil {
		k.Persistent = &store.PersistentPoint{Entry: uint32(p.Entry), Mask: p.Mask}
	}
	return k, nil
}

// storeCounts converts a wire tally to the store's batch record form.
func storeCounts(c CampaignResult) store.Counts {
	return store.Counts{
		Total:       c.Total,
		Ineffective: c.Ineffective,
		Detected:    c.Detected,
		Effective:   c.Effective,
		Corrected:   c.Corrected,
	}
}

// faultCounts converts an engine batch result to the store's record form.
func faultCounts(r fault.Result) store.Counts {
	return store.Counts{
		Total:       r.Total,
		Ineffective: r.Ineffective(),
		Detected:    r.Detected(),
		Effective:   r.Effective(),
		Corrected:   r.Corrected(),
	}
}

// accumulateCounts folds one stored batch into a wire tally.
func accumulateCounts(acc *CampaignResult, c store.Counts) {
	acc.Total += c.Total
	acc.Ineffective += c.Ineffective
	acc.Detected += c.Detected
	acc.Effective += c.Effective
	acc.Corrected += c.Corrected
}

// ResultsView is the zero-simulation answer to "what does the store already
// know about this campaign?". Partial always carries the sum over every
// cached batch; Result is set only when the cache covers the whole
// campaign, in which case it is bit-identical to what executing the job
// would return.
type ResultsView struct {
	CampaignDigest string `json:"campaign_digest"`
	NetlistDigest  string `json:"netlist_digest"`
	EngineVersion  string `json:"engine_version"`
	Runs           int    `json:"runs"`
	Batches        int    `json:"batches"`
	CachedBatches  int    `json:"cached_batches"`
	// Complete reports whether every batch of the campaign is cached.
	Complete bool            `json:"complete"`
	Result   *CampaignResult `json:"result,omitempty"`
	Partial  CampaignResult  `json:"partial"`
}

// Results answers a campaign query purely from the store: the design is
// synthesised (to compute the content address) but not a single run is
// simulated. A service without a result store answers honestly with zero
// cached batches.
func (s *Service) Results(req JobRequest) (ResultsView, error) {
	if req.Kind != KindCampaign {
		return ResultsView{}, fmt.Errorf("results query needs a campaign request, got kind %q", req.Kind)
	}
	if err := req.Validate(); err != nil {
		return ResultsView{}, fmt.Errorf("invalid request: %w", err)
	}
	camp, err := BuildCampaign(req.Design, req.Campaign, s.cfg.engineDefaults())
	if err != nil {
		return ResultsView{}, err
	}
	addr, err := campaignAddress(camp)
	if err != nil {
		return ResultsView{}, err
	}
	digest := addr.Digest()
	view := ResultsView{
		CampaignDigest: digest.String(),
		NetlistDigest:  addr.Netlist.String(),
		EngineVersion:  addr.Engine,
		Runs:           camp.Runs,
		Batches:        camp.NumBatches(),
	}
	for b := 0; b < view.Batches; b++ {
		k := store.BatchKey{Campaign: digest, Batch: b, Runs: camp.BatchRuns(b)}
		if c, ok := s.results.PeekBatch(k); ok {
			view.CachedBatches++
			accumulateCounts(&view.Partial, c)
		}
	}
	if view.CachedBatches == view.Batches {
		view.Complete = true
		r := view.Partial
		view.Result = &r
	}
	return view, nil
}

// StoredRuns lists every campaign run record, first-seen order.
func (s *Service) StoredRuns() []RunRecord {
	recs := s.results.Runs()
	if recs == nil {
		recs = []RunRecord{}
	}
	return recs
}

// StoredRun returns one run record by ID.
func (s *Service) StoredRun(id string) (RunRecord, error) {
	rec, ok := s.results.Run(id)
	if !ok {
		return RunRecord{}, ErrUnknownJob
	}
	return rec, nil
}

// ResultsQueryValues encodes a campaign request as the GET /v1/results
// query string. It is the inverse of ParseResultsQuery, restricted to the
// single-fault form the query vocabulary (the sconectl submit flags) can
// express.
func ResultsQueryValues(req JobRequest) (url.Values, error) {
	if req.Kind != KindCampaign || req.Campaign == nil {
		return nil, fmt.Errorf("results query needs a campaign request")
	}
	if len(req.Campaign.Faults) != 1 {
		return nil, fmt.Errorf("results query expresses exactly one fault, got %d", len(req.Campaign.Faults))
	}
	c, f := req.Campaign, req.Campaign.Faults[0]
	v := url.Values{}
	set := func(key, val string) {
		if val != "" {
			v.Set(key, val)
		}
	}
	set("cipher", req.Design.Cipher)
	set("scheme", req.Design.Scheme)
	set("entropy", req.Design.Entropy)
	set("engine", req.Design.Engine)
	if req.Design.SeparateSbox {
		v.Set("separate_sbox", "true")
	}
	v.Set("runs", strconv.Itoa(c.Runs))
	v.Set("seed", "0x"+strconv.FormatUint(uint64(c.Seed), 16))
	v.Set("key", "0x"+strconv.FormatUint(uint64(c.Key[0]), 16)+",0x"+strconv.FormatUint(uint64(c.Key[1]), 16))
	v.Set("sbox", strconv.Itoa(f.Sbox))
	v.Set("bit", strconv.Itoa(f.Bit))
	set("model", f.Model)
	set("branch", f.Branch)
	if f.Cycle != nil {
		v.Set("cycle", strconv.Itoa(*f.Cycle))
	}
	return v, nil
}

// ParseResultsQuery decodes the GET /v1/results query string into a
// campaign request, mirroring the sconectl submit flag vocabulary: cipher,
// scheme, entropy, engine, separate_sbox, runs, seed, key, sbox, bit,
// model, branch, cycle. Absent parameters take the submit defaults.
func ParseResultsQuery(v url.Values) (JobRequest, error) {
	req := JobRequest{
		Kind: KindCampaign,
		Design: DesignSpec{
			Cipher:  v.Get("cipher"),
			Scheme:  v.Get("scheme"),
			Entropy: v.Get("entropy"),
			Engine:  v.Get("engine"),
		},
	}
	var err error
	if req.Design.SeparateSbox, err = queryBool(v, "separate_sbox"); err != nil {
		return req, err
	}
	c := &CampaignSpec{Runs: 80000}
	if c.Runs, err = queryInt(v, "runs", c.Runs); err != nil {
		return req, err
	}
	if c.Seed, err = queryU64(v, "seed", 0x5C09E2021); err != nil {
		return req, err
	}
	c.Key = [2]U64{0x0123456789ABCDEF, 0x8421}
	if raw := v.Get("key"); raw != "" {
		if c.Key, err = splitKey(raw); err != nil {
			return req, err
		}
	}
	f := FaultSpec{Sbox: 13, Bit: 2, Model: v.Get("model"), Branch: v.Get("branch")}
	if f.Sbox, err = queryInt(v, "sbox", f.Sbox); err != nil {
		return req, err
	}
	if f.Bit, err = queryInt(v, "bit", f.Bit); err != nil {
		return req, err
	}
	if raw := v.Get("cycle"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil {
			return req, fmt.Errorf("bad cycle %q", raw)
		}
		f.Cycle = &n
	}
	c.Faults = []FaultSpec{f}
	req.Campaign = c
	return req, nil
}

func queryInt(v url.Values, key string, def int) (int, error) {
	raw := v.Get(key)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", key, raw)
	}
	return n, nil
}

func queryU64(v url.Values, key string, def U64) (U64, error) {
	raw := v.Get(key)
	if raw == "" {
		return def, nil
	}
	u, err := ParseU64(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", key, raw)
	}
	return u, nil
}

func queryBool(v url.Values, key string) (bool, error) {
	switch raw := v.Get(key); raw {
	case "", "false", "0":
		return false, nil
	case "true", "1":
		return true, nil
	default:
		return false, fmt.Errorf("bad %s %q", key, raw)
	}
}

// splitKey parses the "lo,hi" key form shared with sconectl.
func splitKey(s string) ([2]U64, error) {
	var k [2]U64
	lo, hi, found := cutComma(s)
	v, err := ParseU64(lo)
	if err != nil {
		return k, fmt.Errorf("bad key: %w", err)
	}
	k[0] = v
	if found {
		if v, err = ParseU64(hi); err != nil {
			return k, fmt.Errorf("bad key: %w", err)
		}
		k[1] = v
	}
	return k, nil
}

func cutComma(s string) (before, after string, found bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == ',' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// runProvenance tracks one campaign execution's run record as it evolves:
// written once when execution starts, superseded with the replay/simulation
// split and final state when it ends.
type runProvenance struct {
	s   *Service
	rec store.RunRecord
}

// beginRunRecord writes the "running" provenance record for one campaign
// execution. Nil-safe throughout: without a result store it degrades to
// pure bookkeeping that is never persisted.
func (s *Service) beginRunRecord(j *job, camp *fault.Campaign, addr store.CampaignKey, digest store.Digest, haveAddr bool) *runProvenance {
	p := &runProvenance{s: s, rec: store.RunRecord{
		ID:        j.id,
		JobID:     j.id,
		Kind:      string(j.req.Kind),
		Runs:      camp.Runs,
		Batches:   camp.NumBatches(),
		State:     string(StateRunning),
		Submitted: j.submitted,
		Started:   time.Now().UTC(),
	}}
	if b, err := json.Marshal(j.req); err == nil {
		p.rec.Request = b
	}
	if haveAddr {
		p.rec.Netlist = addr.Netlist.String()
		p.rec.Campaign = digest.String()
		p.rec.Engine = addr.Engine
	}
	_ = s.results.PutRun(p.rec)
	return p
}

// add accumulates the execution's replay/simulation split.
func (p *runProvenance) add(replayedBatches, simulatedBatches int) {
	p.rec.ReplayedBatches += replayedBatches
	p.rec.SimulatedBatches += simulatedBatches
}

// finish supersedes the record with the terminal (or interrupted) state.
// An interrupted execution — drain or user cancel — stays distinguishable
// from a failed one: its batches remain valid and a resume continues them.
func (p *runProvenance) finish(err error, res *CampaignResult) {
	now := time.Now().UTC()
	p.rec.Finished = &now
	switch {
	case err == nil:
		p.rec.State = string(StateDone)
		if res != nil {
			c := storeCounts(*res)
			p.rec.Result = &c
		}
	case isCanceled(err):
		p.rec.State = "interrupted"
		p.rec.Error = err.Error()
	default:
		p.rec.State = string(StateFailed)
		p.rec.Error = err.Error()
	}
	_ = p.s.results.PutRun(p.rec)
}
