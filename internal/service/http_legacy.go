package service

// Legacy unversioned aliases. Pre-versioning deployments probed /healthz,
// scraped /metrics and scripted against the job endpoints without the
// typed error envelope; this shim keeps all of that answering, but every
// response advertises the successor so fleets can migrate: each handler
// emits `Deprecation: true` plus an RFC 8288 successor-version Link, and
// errors keep the pre-v1 flat {"error":"message"} envelope. New paths must
// not be added here — the sconevet v1routes pass rejects unversioned
// routes anywhere else in the package, which pins this file as the only
// shim.

import "net/http"

// writeLegacyError emits the pre-v1 flat error envelope.
func writeLegacyError(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = WriteJSON(w, map[string]string{"error": err.Error()})
}

// deprecated wraps a handler with the deprecation headers pointing at the
// versioned successor path.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", "<"+successor+`>; rel="successor-version"`)
		h(w, r)
	}
}

func (s *Service) registerLegacy(mux *http.ServeMux) {
	mux.HandleFunc("GET /healthz", deprecated("/v1/healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", deprecated("/v1/metrics", s.handleMetrics))
	mux.HandleFunc("POST /jobs", deprecated("/v1/jobs", s.submitHandler(writeLegacyError)))
	mux.HandleFunc("GET /jobs", deprecated("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeStatus(w, http.StatusOK, map[string]any{"jobs": s.List()})
	}))
	mux.HandleFunc("GET /jobs/{id}", deprecated("/v1/jobs/{id}", s.getHandler(writeLegacyError)))
	cancel := s.cancelHandler(writeLegacyError)
	mux.HandleFunc("DELETE /jobs/{id}", deprecated("/v1/jobs/{id}", cancel))
	mux.HandleFunc("POST /jobs/{id}/cancel", deprecated("/v1/jobs/{id}/cancel", cancel))
	mux.HandleFunc("GET /jobs/{id}/stream", deprecated("/v1/jobs/{id}/stream", s.streamHandler(writeLegacyError)))
}
