package client

// Worker is the pull side of the distributed campaign fabric: it joins a
// coordinator, heartbeats, and executes batch-range leases through
// fault.Campaign.ExecuteBatches. Because every batch derives its
// randomness from (seed, batch), a worker is stateless and expendable — a
// killed worker's lease simply expires and another worker recomputes the
// identical counts, so the coordinator's merged result never depends on
// which process ran what.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/sim"
)

// WorkerConfig parameterises a campaign worker.
type WorkerConfig struct {
	// Coordinator is the coordinator daemon's base URL.
	Coordinator string
	// Name labels the worker in /v1/workers listings.
	Name string
	// Capacity advertises how many leases the worker wants concurrently.
	// Default 1 (the execution loop itself is serial; capacity >1 only
	// keeps ranges reserved ahead).
	Capacity int
	// ChunkBatches is the progress-report granularity inside one lease.
	// Default 4.
	ChunkBatches int
	// SimWorkers bounds the goroutines of one lease execution; 0 lets the
	// engine default (GOMAXPROCS).
	SimWorkers int
	// SimLaneWords is the engine word width of lease executions (1, 2 or
	// 4); 0 means 1. Pure execution policy: reported counts are
	// bit-identical at every width.
	SimLaneWords int
	// OnLease, when set, runs synchronously after every successful
	// acquire, before execution starts — the hook deterministic tests use
	// to kill a worker at a known point.
	OnLease func(service.LeaseGrant)
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Capacity <= 0 {
		c.Capacity = 1
	}
	if c.ChunkBatches <= 0 {
		c.ChunkBatches = 4
	}
	return c
}

// Worker runs the lease-pull loop against one coordinator.
type Worker struct {
	cfg    WorkerConfig
	client *Client

	abrupt atomic.Bool        // Kill() vs graceful context cancellation
	kill   context.CancelFunc // set once Run starts
	killMu sync.Mutex

	mu     sync.Mutex
	id     string
	leases map[string]int                // leaseID -> done batches (heartbeat payload)
	abort  map[string]context.CancelFunc // leaseID -> execution cancel
}

// NewWorker returns an unstarted worker; Run drives it.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{
		cfg:    cfg.withDefaults(),
		client: New(cfg.Coordinator),
		leases: make(map[string]int),
		abort:  make(map[string]context.CancelFunc),
	}
}

// ID returns the coordinator-assigned worker ID ("" before the first
// successful join).
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// Kill stops the worker abruptly: no lease fail reports, no leave — the
// process just goes silent, exactly like a crashed machine. Its leases
// stay active on the coordinator until the TTL janitor expires and
// reassigns them. Tests use this to exercise the recovery path.
func (w *Worker) Kill() {
	w.abrupt.Store(true)
	w.killMu.Lock()
	if w.kill != nil {
		w.kill()
	}
	w.killMu.Unlock()
}

// Run joins the coordinator and pulls leases until ctx is canceled (a
// graceful stop: the current lease is failed back for immediate
// reassignment and the worker leaves) or Kill is called (abrupt death).
// It returns nil on either form of shutdown.
func (w *Worker) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	w.killMu.Lock()
	w.kill = cancel
	w.killMu.Unlock()

	join, err := w.join(ctx)
	if err != nil {
		return err
	}

	hbStop := make(chan struct{})
	var hbDone sync.WaitGroup
	hbDone.Add(1)
	go func() {
		defer hbDone.Done()
		w.heartbeatLoop(ctx, hbStop, time.Duration(join.HeartbeatMS)*time.Millisecond)
	}()

	poll := time.Duration(join.PollMS) * time.Millisecond
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for {
		if ctx.Err() != nil {
			break
		}
		grant, err := w.client.AcquireLease(ctx, w.ID())
		switch {
		case err == nil && grant != nil:
			w.execute(ctx, *grant)
			continue
		case errors.Is(err, ErrNotFound):
			// The coordinator forgot us (restart); re-join under a new ID.
			if join, err = w.join(ctx); err != nil {
				close(hbStop)
				hbDone.Wait()
				return err
			}
			continue
		}
		// No lease available, coordinator draining, or transient error:
		// idle until the next poll tick.
		select {
		case <-ctx.Done():
		case <-time.After(poll):
		}
	}

	close(hbStop)
	hbDone.Wait()
	if !w.abrupt.Load() {
		// Graceful: hand leases back for immediate reassignment.
		leaveCtx, leaveCancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer leaveCancel()
		_ = w.client.LeaveWorker(leaveCtx, w.ID())
	}
	return nil
}

// join registers with the coordinator, retrying until ctx dies.
func (w *Worker) join(ctx context.Context) (service.JoinResponse, error) {
	req := service.JoinRequest{Name: w.cfg.Name, Capacity: w.cfg.Capacity}
	for {
		resp, err := w.client.JoinWorker(ctx, req)
		if err == nil {
			w.mu.Lock()
			w.id = resp.WorkerID
			w.mu.Unlock()
			return resp, nil
		}
		if ctx.Err() != nil {
			return service.JoinResponse{}, ctx.Err()
		}
		select {
		case <-ctx.Done():
			return service.JoinResponse{}, ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// heartbeatLoop renews the worker's leases; leases the coordinator reports
// as dropped (expired and reassigned) have their executions aborted.
func (w *Worker) heartbeatLoop(ctx context.Context, stop <-chan struct{}, every time.Duration) {
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-stop:
			return
		case <-t.C:
		}
		w.mu.Lock()
		id := w.id
		held := make(map[string]int, len(w.leases))
		for k, v := range w.leases {
			held[k] = v
		}
		w.mu.Unlock()
		resp, err := w.client.WorkerHeartbeat(ctx, id, service.HeartbeatRequest{Leases: held})
		if err != nil {
			continue // transient; acquire handles re-join on 404
		}
		for _, leaseID := range resp.Drop {
			w.mu.Lock()
			if cancel := w.abort[leaseID]; cancel != nil {
				cancel()
			}
			w.mu.Unlock()
		}
	}
}

// track registers a running lease for heartbeats and abort routing.
func (w *Worker) track(leaseID string, cancel context.CancelFunc) {
	w.mu.Lock()
	w.leases[leaseID] = 0
	w.abort[leaseID] = cancel
	w.mu.Unlock()
}

func (w *Worker) untrack(leaseID string) {
	w.mu.Lock()
	delete(w.leases, leaseID)
	delete(w.abort, leaseID)
	w.mu.Unlock()
}

func (w *Worker) setDone(leaseID string, done int) {
	w.mu.Lock()
	if _, ok := w.leases[leaseID]; ok {
		w.leases[leaseID] = done
	}
	w.mu.Unlock()
}

// execute runs one lease in ChunkBatches-sized sub-ranges, posting a
// partial tally after each. Error handling mirrors the coordinator's
// state machine: a killed worker reports nothing (the TTL expires the
// lease), a gracefully stopped worker fails the lease back immediately,
// and a conflict response means the lease was reassigned — the work is
// discarded, which is safe because the replacement computes identical
// counts.
func (w *Worker) execute(ctx context.Context, grant service.LeaseGrant) {
	if w.cfg.OnLease != nil {
		w.cfg.OnLease(grant)
	}
	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	w.track(grant.LeaseID, cancel)
	defer w.untrack(grant.LeaseID)
	if leaseCtx.Err() != nil {
		return // killed in the OnLease hook: silent death
	}

	rep := service.LeaseReport{WorkerID: w.ID()}
	camp, err := service.BuildCampaign(grant.Design, &grant.Campaign,
		service.EngineDefaults{Workers: w.cfg.SimWorkers, LaneWords: w.cfg.SimLaneWords})
	if err != nil {
		rep.Error = err.Error()
		_ = w.client.FailLease(ctx, grant.LeaseID, rep)
		return
	}

	var acc service.CampaignResult
	var batchTallies []service.CampaignResult // per-batch, in batch order
	for b := grant.FirstBatch; b < grant.LastBatch; {
		end := b + w.cfg.ChunkBatches
		if end > grant.LastBatch {
			end = grant.LastBatch
		}
		res, execErr := camp.ExecuteBatchesFunc(leaseCtx, b, end, nil, func(_ int, r fault.Result) {
			batchTallies = append(batchTallies, service.NewCampaignResult(r))
		})
		acc.Add(res)
		// Completed batches are always full sim.Lanes wide except the
		// campaign's final batch, which only completes error-free.
		completed := b + res.Total/sim.Lanes
		if execErr == nil {
			completed = end
		}
		rep.DoneBatches = completed - grant.FirstBatch
		rep.Counts = acc
		w.setDone(grant.LeaseID, rep.DoneBatches)

		if execErr != nil {
			if errors.Is(execErr, context.Canceled) || errors.Is(execErr, context.DeadlineExceeded) {
				if w.abrupt.Load() {
					return // crashed: say nothing, let the TTL reassign
				}
				// Graceful stop or coordinator-ordered drop: hand the
				// range back for immediate retry elsewhere.
				failCtx, failCancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer failCancel()
				rep.Error = "worker shutting down"
				_ = w.client.FailLease(failCtx, grant.LeaseID, rep)
				return
			}
			rep.Error = execErr.Error()
			_ = w.client.FailLease(ctx, grant.LeaseID, rep)
			return
		}
		if end < grant.LastBatch {
			if err := w.client.LeaseProgress(leaseCtx, grant.LeaseID, rep); err != nil &&
				(errors.Is(err, ErrConflict) || errors.Is(err, ErrNotFound)) {
				return // reassigned or job gone: discard
			}
		}
		b = end
	}
	// The per-batch tallies ride only on the completion report: they are
	// what lets the coordinator store each batch by content address, and a
	// lease is only cacheable once its whole range completed.
	if len(batchTallies) == grant.LastBatch-grant.FirstBatch {
		rep.Batches = batchTallies
	}
	if err := w.client.CompleteLease(leaseCtx, grant.LeaseID, rep); err != nil &&
		!errors.Is(err, ErrConflict) && !errors.Is(err, ErrNotFound) && !w.abrupt.Load() && ctx.Err() == nil {
		// Transient completion failure: fail the lease back so the range
		// is retried rather than left to time out.
		rep.Error = "complete failed: " + err.Error()
		_ = w.client.FailLease(ctx, grant.LeaseID, rep)
	}
}
