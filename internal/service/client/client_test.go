package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// startDaemon runs a real Service behind httptest and returns a client for
// it, so every assertion below is a full wire round trip.
func startDaemon(t *testing.T, cfg service.Config) *Client {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		_ = svc.Close()
	})
	return New(srv.URL)
}

func campaignRequest(runs int) service.JobRequest {
	return service.JobRequest{
		Kind:   service.KindCampaign,
		Design: service.DesignSpec{Cipher: "present80", Scheme: "three-in-one", Entropy: "prime"},
		Campaign: &service.CampaignSpec{
			Runs:   runs,
			Seed:   0x5C09E,
			Key:    [2]service.U64{0x0123456789ABCDEF, 0x8421},
			Faults: []service.FaultSpec{{Sbox: 0, Bit: 0, Model: "stuck-at-0"}},
		},
	}
}

func TestSentinelErrors(t *testing.T) {
	c := startDaemon(t, service.Config{Workers: 1})
	ctx := context.Background()

	_, err := c.Get(ctx, "j424242")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown job: got %v, want ErrNotFound", err)
	}
	if errors.Is(err, ErrQueueFull) {
		t.Fatal("404 must not match ErrQueueFull")
	}
	// The typed error is still there for callers who need the raw code.
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("want *Error with 404, got %v", err)
	}
}

func TestQueueFullRoundTrip(t *testing.T) {
	// One worker, one slot: the first job occupies the worker, the second
	// fills the shard, a third submission must shed as ErrQueueFull.
	c := startDaemon(t, service.Config{Workers: 1, QueueDepth: 1})
	ctx := context.Background()

	first, err := c.Submit(ctx, campaignRequest(400_000))
	if err != nil {
		t.Fatal(err)
	}
	var sawFull bool
	for i := 0; i < 16 && !sawFull; i++ {
		_, err := c.Submit(ctx, campaignRequest(400_000))
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
		} else if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if !sawFull {
		t.Fatal("never observed ErrQueueFull with a 1-deep queue")
	}
	if _, err := c.Cancel(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
}

func TestJobStatesAndDone(t *testing.T) {
	c := startDaemon(t, service.Config{Workers: 1})
	ctx := context.Background()

	st, err := c.Submit(ctx, campaignRequest(640))
	if err != nil {
		t.Fatal(err)
	}
	// The client's re-exported states are the server's wire values.
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job in state %q", st.State)
	}
	if terminal, _ := Done(st); terminal {
		t.Fatalf("state %q reported terminal", st.State)
	}

	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	terminal, outcome := Done(final)
	if !terminal || outcome != nil {
		t.Fatalf("completed job: terminal=%v outcome=%v", terminal, outcome)
	}
	if final.Result == nil || final.Result.Campaign == nil || final.Result.Campaign.Total != 640 {
		t.Fatalf("bad result: %+v", final.Result)
	}

	// A canceled job maps to ErrCanceled.
	st2, err := c.Submit(ctx, campaignRequest(10_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, st2.ID); err != nil {
		t.Fatal(err)
	}
	final2, err := c.Wait(ctx, st2.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, outcome := Done(final2); !errors.Is(outcome, ErrCanceled) {
		t.Fatalf("canceled job outcome = %v, want ErrCanceled", outcome)
	}
}

func TestMetricsBothViews(t *testing.T) {
	c := startDaemon(t, service.Config{Workers: 1})
	ctx := context.Background()

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"jobs_submitted_total", "queue_depth", "jobs_running"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON snapshot missing legacy key %q: %v", key, m)
		}
	}

	text, err := c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE scone_service_jobs_submitted_total counter",
		`scone_service_queue_shard_depth_count{shard="0"}`,
		"scone_service_job_wait_ns_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
