package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// startDaemon runs a real Service behind httptest and returns a client for
// it, so every assertion below is a full wire round trip.
func startDaemon(t *testing.T, cfg service.Config) *Client {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		_ = svc.Close()
	})
	return New(srv.URL)
}

func campaignRequest(runs int) service.JobRequest {
	return service.JobRequest{
		Kind:   service.KindCampaign,
		Design: service.DesignSpec{Cipher: "present80", Scheme: "three-in-one", Entropy: "prime"},
		Campaign: &service.CampaignSpec{
			Runs:   runs,
			Seed:   0x5C09E,
			Key:    [2]service.U64{0x0123456789ABCDEF, 0x8421},
			Faults: []service.FaultSpec{{Sbox: 0, Bit: 0, Model: "stuck-at-0"}},
		},
	}
}

func TestSentinelErrors(t *testing.T) {
	c := startDaemon(t, service.Config{Workers: 1})
	ctx := context.Background()

	_, err := c.Get(ctx, "j424242")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown job: got %v, want ErrNotFound", err)
	}
	if errors.Is(err, ErrQueueFull) {
		t.Fatal("404 must not match ErrQueueFull")
	}
	// The typed error is still there for callers who need the raw code.
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 404 {
		t.Fatalf("want *Error with 404, got %v", err)
	}
}

func TestQueueFullRoundTrip(t *testing.T) {
	// One worker, one slot: the first job occupies the worker, the second
	// fills the shard, a third submission must shed as ErrQueueFull.
	c := startDaemon(t, service.Config{Workers: 1, QueueDepth: 1})
	ctx := context.Background()

	first, err := c.Submit(ctx, campaignRequest(400_000))
	if err != nil {
		t.Fatal(err)
	}
	var sawFull bool
	for i := 0; i < 16 && !sawFull; i++ {
		_, err := c.Submit(ctx, campaignRequest(400_000))
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
		} else if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if !sawFull {
		t.Fatal("never observed ErrQueueFull with a 1-deep queue")
	}
	if _, err := c.Cancel(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
}

func TestJobStatesAndDone(t *testing.T) {
	c := startDaemon(t, service.Config{Workers: 1})
	ctx := context.Background()

	st, err := c.Submit(ctx, campaignRequest(640))
	if err != nil {
		t.Fatal(err)
	}
	// The client's re-exported states are the server's wire values.
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("fresh job in state %q", st.State)
	}
	if terminal, _ := Done(st); terminal {
		t.Fatalf("state %q reported terminal", st.State)
	}

	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	terminal, outcome := Done(final)
	if !terminal || outcome != nil {
		t.Fatalf("completed job: terminal=%v outcome=%v", terminal, outcome)
	}
	if final.Result == nil || final.Result.Campaign == nil || final.Result.Campaign.Total != 640 {
		t.Fatalf("bad result: %+v", final.Result)
	}

	// A canceled job maps to ErrCanceled.
	st2, err := c.Submit(ctx, campaignRequest(10_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, st2.ID); err != nil {
		t.Fatal(err)
	}
	final2, err := c.Wait(ctx, st2.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, outcome := Done(final2); !errors.Is(outcome, ErrCanceled) {
		t.Fatalf("canceled job outcome = %v, want ErrCanceled", outcome)
	}
}

func TestMetricsBothViews(t *testing.T) {
	c := startDaemon(t, service.Config{Workers: 1})
	ctx := context.Background()

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"jobs_submitted_total", "queue_depth", "jobs_running"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON snapshot missing legacy key %q: %v", key, m)
		}
	}

	text, err := c.MetricsText(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE scone_service_jobs_submitted_total counter",
		`scone_service_queue_shard_depth_count{shard="0"}`,
		"scone_service_job_wait_ns_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// shedServer fakes a /v1 daemon that sheds the first n submissions with the
// typed queue_full envelope, so retry behavior is tested without having to
// race a real queue.
func shedServer(t *testing.T, shed int32) (*Client, *int32) {
	t.Helper()
	var attempts int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/jobs" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if atomic.AddInt32(&attempts, 1) <= shed {
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"queue_full","message":"job queue full"}}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"id":"j000000","kind":"campaign","state":"queued"}`))
	}))
	t.Cleanup(srv.Close)
	return New(srv.URL), &attempts
}

func TestSubmitRetriesQueueFull(t *testing.T) {
	c, attempts := shedServer(t, 2)
	c.Retry = RetryPolicy{MaxAttempts: 5, BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond}

	st, err := c.Submit(context.Background(), campaignRequest(640))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j000000" {
		t.Fatalf("retried submit returned %+v", st)
	}
	if got := atomic.LoadInt32(attempts); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (2 shed + 1 accepted)", got)
	}
}

func TestSubmitRetryBudgetExhausted(t *testing.T) {
	c, attempts := shedServer(t, 1<<30)
	c.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}

	_, err := c.Submit(context.Background(), campaignRequest(640))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("persistently full daemon: %v, want ErrQueueFull", err)
	}
	if got := atomic.LoadInt32(attempts); got != 3 {
		t.Fatalf("server saw %d attempts, want exactly MaxAttempts=3", got)
	}
}

func TestSubmitRetryHonorsContext(t *testing.T) {
	c, _ := shedServer(t, 1<<30)
	// Backoff far longer than the deadline: the retry sleep must abort.
	c.Retry = RetryPolicy{MaxAttempts: 100, BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Submit(ctx, campaignRequest(640))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("submit under deadline: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry sleep ignored the context for %v", elapsed)
	}
}

func TestSubmitDoesNotRetryOtherErrors(t *testing.T) {
	var attempts int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&attempts, 1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":{"code":"invalid_request","message":"bad"}}`))
	}))
	t.Cleanup(srv.Close)
	c := New(srv.URL)

	_, err := c.Submit(context.Background(), campaignRequest(640))
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Code != service.CodeInvalidRequest {
		t.Fatalf("validation failure: %v", err)
	}
	if errors.Is(err, ErrQueueFull) {
		t.Fatal("invalid_request matched ErrQueueFull")
	}
	if got := atomic.LoadInt32(&attempts); got != 1 {
		t.Fatalf("non-shed error retried: %d attempts", got)
	}
}

// TestDistEndpointsRoundTrip drives every worker/lease endpoint once
// against a real coordinator, including the 204 no-lease and post-leave
// not_found shapes.
func TestDistEndpointsRoundTrip(t *testing.T) {
	c := startDaemon(t, service.Config{Workers: 1, Dist: service.DistConfig{Enabled: true}})
	ctx := context.Background()

	jr, err := c.JoinWorker(ctx, service.JoinRequest{Name: "probe"})
	if err != nil || jr.WorkerID == "" || jr.LeaseTTLMS <= 0 {
		t.Fatalf("join: %+v %v", jr, err)
	}

	// No jobs queued: acquire is a clean 204 -> (nil, nil).
	g, err := c.AcquireLease(ctx, jr.WorkerID)
	if err != nil || g != nil {
		t.Fatalf("idle acquire: %+v %v", g, err)
	}

	hb, err := c.WorkerHeartbeat(ctx, jr.WorkerID, service.HeartbeatRequest{
		Leases: map[string]int{"l424242": 1},
	})
	if err != nil || len(hb.Drop) != 1 {
		t.Fatalf("heartbeat: %+v %v", hb, err)
	}

	ws, err := c.Workers(ctx)
	if err != nil || len(ws) != 1 || ws[0].ID != jr.WorkerID {
		t.Fatalf("workers: %+v %v", ws, err)
	}
	ls, err := c.Leases(ctx)
	if err != nil || len(ls) != 0 {
		t.Fatalf("leases: %+v %v", ls, err)
	}

	if err := c.CompleteLease(ctx, "l424242", service.LeaseReport{WorkerID: jr.WorkerID}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("complete of unknown lease: %v", err)
	}

	if err := c.LeaveWorker(ctx, jr.WorkerID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WorkerHeartbeat(ctx, jr.WorkerID, service.HeartbeatRequest{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("heartbeat after leave: %v", err)
	}

	// A daemon without Dist.Enabled rejects mutating fleet calls but still
	// answers the listings (empty), so sconectl works against any daemon.
	plain := startDaemon(t, service.Config{Workers: 1})
	var apiErr *Error
	if _, err := plain.JoinWorker(ctx, service.JoinRequest{}); !errors.As(err, &apiErr) || apiErr.Code != service.CodeInvalidRequest {
		t.Fatalf("join on non-coordinator: %v", err)
	}
	if ws, err := plain.Workers(ctx); err != nil || len(ws) != 0 {
		t.Fatalf("workers on non-coordinator: %+v %v", ws, err)
	}
}
