// Package client is the Go client for the sconed HTTP API. cmd/sconectl is
// a thin shell around it and the e2e suite drives the daemon through it,
// so the client is exercised against every response shape the server can
// produce.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/service"
)

// Sentinel errors for the daemon's well-known failure modes. Responses are
// still returned as *Error (carrying status code and message); these match
// through errors.Is, so callers branch on condition instead of status code:
//
//	if errors.Is(err, client.ErrQueueFull) { backoff() }
var (
	// ErrNotFound: the job ID is unknown to the daemon.
	ErrNotFound = errors.New("job not found")
	// ErrQueueFull: the daemon shed the submission; retry with backoff.
	ErrQueueFull = errors.New("job queue full")
	// ErrDraining: the daemon is shutting down and not accepting jobs.
	ErrDraining = errors.New("daemon draining")
	// ErrCanceled: the job reached StateCanceled; reported by Done.
	ErrCanceled = errors.New("job canceled")
)

// JobState is a job's lifecycle position — the same type the server uses,
// re-exported so callers of this package need not import internal/service
// to compare states.
type JobState = service.State

// Job states, shared with the server's wire schema.
const (
	StateQueued   JobState = service.StateQueued
	StateRunning  JobState = service.StateRunning
	StateDone     JobState = service.StateDone
	StateFailed   JobState = service.StateFailed
	StateCanceled JobState = service.StateCanceled
)

// Done reports whether st is terminal and, when it is, maps the outcome to
// an error: nil for StateDone, ErrCanceled for StateCanceled, and an error
// carrying the job's failure message for StateFailed.
func Done(st service.JobStatus) (bool, error) {
	switch st.State {
	case StateDone:
		return true, nil
	case StateCanceled:
		return true, ErrCanceled
	case StateFailed:
		return true, fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	}
	return false, nil
}

// Client talks to one sconed instance.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError is the uniform error envelope the daemon emits.
type apiError struct {
	Error string `json:"error"`
}

// Error is a non-2xx daemon response.
type Error struct {
	StatusCode int
	Message    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("sconed: %d: %s", e.StatusCode, e.Message)
}

// Is maps the response's status code onto the package sentinels, so
// errors.Is(err, ErrNotFound) works without inspecting StatusCode.
func (e *Error) Is(target error) bool {
	switch target {
	case ErrNotFound:
		return e.StatusCode == http.StatusNotFound
	case ErrQueueFull:
		return e.StatusCode == http.StatusTooManyRequests
	case ErrDraining:
		return e.StatusCode == http.StatusServiceUnavailable
	}
	return false
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// The daemon content-negotiates /metrics; asking for JSON everywhere
	// keeps this client on the structured views.
	req.Header.Set("Accept", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var ae apiError
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		return &Error{StatusCode: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit enqueues a job.
func (c *Client) Submit(ctx context.Context, req service.JobRequest) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Get fetches a job's status.
func (c *Client) Get(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// List fetches every job in submission order.
func (c *Client) List(ctx context.Context) ([]service.JobStatus, error) {
	var out struct {
		Jobs []service.JobStatus `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out.Jobs, err
}

// Cancel stops a job.
func (c *Client) Cancel(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, &st)
	return st, err
}

// Metrics fetches the daemon's legacy JSON counter snapshot.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	var out map[string]int64
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &out)
	return out, err
}

// MetricsText fetches the daemon's full Prometheus text exposition — every
// registered instrument, including the sim and fault engine families the
// JSON snapshot does not carry.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &Error{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(b))}
	}
	return string(b), nil
}

// Stream follows a job's NDJSON event feed, invoking fn for every event
// until the stream's terminal line (whose final status is returned) or
// until fn returns an error. fn may be nil.
func (c *Client) Stream(ctx context.Context, id string, fn func(service.Event) error) (service.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return service.JobStatus{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return service.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var ae apiError
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		return service.JobStatus{}, &Error{StatusCode: resp.StatusCode, Message: msg}
	}

	var last service.JobStatus
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return last, fmt.Errorf("bad stream line: %w", err)
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return last, err
			}
		}
		if ev.Job != nil {
			last = *ev.Job
		}
		if ev.Type == "result" {
			return last, nil
		}
	}
	if err := sc.Err(); err != nil {
		return last, err
	}
	// Stream ended without a terminal line (e.g. the daemon drained);
	// report the last status the caller saw.
	return last, fmt.Errorf("stream ended before job %s finished (state %s)", id, last.State)
}

// Wait polls until the job is terminal.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (service.JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}
