// Package client is the Go client for the sconed HTTP API. cmd/sconectl is
// a thin shell around it and the e2e suite drives the daemon through it,
// so the client is exercised against every response shape the server can
// produce. All traffic goes over the versioned /v1 surface with the typed
// error envelope; the unversioned legacy aliases exist only for pre-v1
// deployments and are never used here.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/rng"
	"repro/internal/service"
)

// Sentinel errors for the daemon's well-known failure modes. Responses are
// still returned as *Error (carrying status code, envelope code and
// message); these match through errors.Is, so callers branch on condition
// instead of status code:
//
//	if errors.Is(err, client.ErrQueueFull) { backoff() }
var (
	// ErrNotFound: the job, worker or lease ID is unknown to the daemon.
	ErrNotFound = errors.New("not found")
	// ErrQueueFull: the daemon shed the submission; Submit retries these
	// automatically with capped jittered backoff (see RetryPolicy).
	ErrQueueFull = errors.New("job queue full")
	// ErrDraining: the daemon is shutting down and not accepting work.
	ErrDraining = errors.New("daemon draining")
	// ErrCanceled: the job reached StateCanceled; reported by Done.
	ErrCanceled = errors.New("job canceled")
	// ErrConflict: a lease report was rejected because the lease was
	// reassigned to another worker; the reporter discards its work.
	ErrConflict = errors.New("lease conflict")
)

// JobState is a job's lifecycle position — the same type the server uses,
// re-exported so callers of this package need not import internal/service
// to compare states.
type JobState = service.State

// Job states, shared with the server's wire schema.
const (
	StateQueued   JobState = service.StateQueued
	StateRunning  JobState = service.StateRunning
	StateDone     JobState = service.StateDone
	StateFailed   JobState = service.StateFailed
	StateCanceled JobState = service.StateCanceled
)

// Done reports whether st is terminal and, when it is, maps the outcome to
// an error: nil for StateDone, ErrCanceled for StateCanceled, and an error
// carrying the job's failure message for StateFailed.
func Done(st service.JobStatus) (bool, error) {
	switch st.State {
	case StateDone:
		return true, nil
	case StateCanceled:
		return true, ErrCanceled
	case StateFailed:
		return true, fmt.Errorf("job %s failed: %s", st.ID, st.Error)
	}
	return false, nil
}

// RetryPolicy bounds Submit's automatic retry of load-shed (ErrQueueFull)
// submissions: capped exponential backoff with jitter, honoring the
// caller's context. The zero value takes the defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries. Default 4; 1 disables
	// retrying.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff. Default 25ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep. Default 1s.
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// Client talks to one sconed instance.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Retry tunes Submit's load-shed retry; the zero value uses the
	// package defaults.
	Retry RetryPolicy
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError decodes both error envelopes: the /v1 typed form
// {"error":{"code","message"}} and the legacy flat {"error":"message"}.
type apiError struct {
	Error json.RawMessage `json:"error"`
}

func (a apiError) body() (code, msg string) {
	if len(a.Error) == 0 {
		return "", ""
	}
	var eb service.ErrorBody
	if json.Unmarshal(a.Error, &eb) == nil && (eb.Code != "" || eb.Message != "") {
		return eb.Code, eb.Message
	}
	var s string
	if json.Unmarshal(a.Error, &s) == nil {
		return "", s
	}
	return "", ""
}

// Error is a non-2xx daemon response.
type Error struct {
	StatusCode int
	// Code is the typed envelope code ("not_found", "queue_full", ...);
	// empty on legacy flat-envelope responses.
	Code    string
	Message string
}

func (e *Error) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("sconed: %d %s: %s", e.StatusCode, e.Code, e.Message)
	}
	return fmt.Sprintf("sconed: %d: %s", e.StatusCode, e.Message)
}

// Is maps the response onto the package sentinels — by envelope code when
// present, falling back to the status code — so errors.Is(err, ErrNotFound)
// works without inspecting either.
func (e *Error) Is(target error) bool {
	switch target {
	case ErrNotFound:
		return e.Code == service.CodeNotFound || (e.Code == "" && e.StatusCode == http.StatusNotFound)
	case ErrQueueFull:
		return e.Code == service.CodeQueueFull || (e.Code == "" && e.StatusCode == http.StatusTooManyRequests)
	case ErrDraining:
		return e.Code == service.CodeDraining || (e.Code == "" && e.StatusCode == http.StatusServiceUnavailable)
	case ErrConflict:
		return e.Code == service.CodeConflict || (e.Code == "" && e.StatusCode == http.StatusConflict)
	}
	return false
}

func responseError(resp *http.Response) *Error {
	var ae apiError
	code, msg := "", resp.Status
	if json.NewDecoder(resp.Body).Decode(&ae) == nil {
		if c, m := ae.body(); m != "" {
			code, msg = c, m
		}
	}
	return &Error{StatusCode: resp.StatusCode, Code: code, Message: msg}
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	_, err := c.doStatus(ctx, method, path, body, out)
	return err
}

// doStatus performs one JSON round trip and additionally reports the
// status code, for endpoints where 2xx codes are semantic (204 = no lease
// available).
func (c *Client) doStatus(ctx context.Context, method, path string, body, out any) (int, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// The daemon content-negotiates /v1/metrics; asking for JSON everywhere
	// keeps this client on the structured views.
	req.Header.Set("Accept", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return resp.StatusCode, responseError(resp)
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		return resp.StatusCode, nil
	}
	return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
}

// Submit enqueues a job. Load-shed submissions (ErrQueueFull) are retried
// with capped jittered exponential backoff until the context is done or
// Retry.MaxAttempts is exhausted; the last shed error is then returned, so
// errors.Is(err, ErrQueueFull) still reports a persistently full daemon.
func (c *Client) Submit(ctx context.Context, req service.JobRequest) (service.JobStatus, error) {
	p := c.Retry.withDefaults()
	jitter := rng.NewXoshiro(uint64(time.Now().UnixNano()))
	delay := p.BaseDelay
	var st service.JobStatus
	var err error
	for attempt := 1; ; attempt++ {
		st, err = c.submitOnce(ctx, req)
		if err == nil || !errors.Is(err, ErrQueueFull) || attempt >= p.MaxAttempts {
			return st, err
		}
		// Sleep in [delay/2, delay) so a burst of shed clients spreads out
		// instead of re-submitting in lockstep.
		half := int64(delay / 2)
		d := time.Duration(half + int64(jitter.Uint64()%uint64(half+1)))
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return st, ctx.Err()
		case <-t.C:
		}
		if delay *= 2; delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}

func (c *Client) submitOnce(ctx context.Context, req service.JobRequest) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Get fetches a job's status.
func (c *Client) Get(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// List fetches every job in submission order.
func (c *Client) List(ctx context.Context) ([]service.JobStatus, error) {
	var out struct {
		Jobs []service.JobStatus `json:"jobs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out.Jobs, err
}

// Cancel stops a job.
func (c *Client) Cancel(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, &st)
	return st, err
}

// Results fetches the stored result for the campaign req describes by
// content address — zero simulation server-side. Only single-fault campaign
// requests have a query encoding; see service.ResultsQueryValues.
func (c *Client) Results(ctx context.Context, req service.JobRequest) (service.ResultsView, error) {
	var view service.ResultsView
	vals, err := service.ResultsQueryValues(req)
	if err != nil {
		return view, err
	}
	err = c.do(ctx, http.MethodGet, "/v1/results?"+vals.Encode(), nil, &view)
	return view, err
}

// StoredRuns lists the daemon's durable campaign run records.
func (c *Client) StoredRuns(ctx context.Context) ([]service.RunRecord, error) {
	var out struct {
		Runs []service.RunRecord `json:"runs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/runs", nil, &out)
	return out.Runs, err
}

// StoredRun fetches one durable run record by job ID.
func (c *Client) StoredRun(ctx context.Context, id string) (service.RunRecord, error) {
	var rec service.RunRecord
	err := c.do(ctx, http.MethodGet, "/v1/runs/"+id, nil, &rec)
	return rec, err
}

// Metrics fetches the daemon's legacy JSON counter snapshot.
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	var out map[string]int64
	err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &out)
	return out, err
}

// MetricsText fetches the daemon's full Prometheus text exposition — every
// registered instrument, including the sim and fault engine families the
// JSON snapshot does not carry.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &Error{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(b))}
	}
	return string(b), nil
}

// Workers lists the coordinator's worker registry.
func (c *Client) Workers(ctx context.Context) ([]service.WorkerInfo, error) {
	var out struct {
		Workers []service.WorkerInfo `json:"workers"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/workers", nil, &out)
	return out.Workers, err
}

// Leases lists the coordinator's live lease table.
func (c *Client) Leases(ctx context.Context) ([]service.LeaseInfo, error) {
	var out struct {
		Leases []service.LeaseInfo `json:"leases"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/leases", nil, &out)
	return out.Leases, err
}

// JoinWorker registers a worker with the coordinator.
func (c *Client) JoinWorker(ctx context.Context, req service.JoinRequest) (service.JoinResponse, error) {
	var out service.JoinResponse
	err := c.do(ctx, http.MethodPost, "/v1/workers/join", req, &out)
	return out, err
}

// WorkerHeartbeat renews a worker's leases.
func (c *Client) WorkerHeartbeat(ctx context.Context, workerID string, req service.HeartbeatRequest) (service.HeartbeatResponse, error) {
	var out service.HeartbeatResponse
	err := c.do(ctx, http.MethodPost, "/v1/workers/"+workerID+"/heartbeat", req, &out)
	return out, err
}

// LeaveWorker deregisters a worker cleanly; its leases requeue immediately.
func (c *Client) LeaveWorker(ctx context.Context, workerID string) error {
	return c.do(ctx, http.MethodPost, "/v1/workers/"+workerID+"/leave", nil, nil)
}

// AcquireLease pulls the next available lease; nil when none is grantable
// right now (poll again after the advertised interval).
func (c *Client) AcquireLease(ctx context.Context, workerID string) (*service.LeaseGrant, error) {
	var g service.LeaseGrant
	status, err := c.doStatus(ctx, http.MethodPost, "/v1/leases/acquire", service.AcquireRequest{WorkerID: workerID}, &g)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	return &g, nil
}

// LeaseProgress posts a partial tally, renewing the lease.
func (c *Client) LeaseProgress(ctx context.Context, leaseID string, rep service.LeaseReport) error {
	return c.do(ctx, http.MethodPost, "/v1/leases/"+leaseID+"/progress", rep, nil)
}

// CompleteLease posts a lease's final tally.
func (c *Client) CompleteLease(ctx context.Context, leaseID string, rep service.LeaseReport) error {
	return c.do(ctx, http.MethodPost, "/v1/leases/"+leaseID+"/complete", rep, nil)
}

// FailLease reports a lease execution error; the coordinator requeues the
// range with backoff.
func (c *Client) FailLease(ctx context.Context, leaseID string, rep service.LeaseReport) error {
	return c.do(ctx, http.MethodPost, "/v1/leases/"+leaseID+"/fail", rep, nil)
}

// Stream follows a job's NDJSON event feed, invoking fn for every event
// until the stream's terminal line (whose final status is returned) or
// until fn returns an error. fn may be nil.
func (c *Client) Stream(ctx context.Context, id string, fn func(service.Event) error) (service.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return service.JobStatus{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return service.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.JobStatus{}, responseError(resp)
	}

	var last service.JobStatus
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev service.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return last, fmt.Errorf("bad stream line: %w", err)
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return last, err
			}
		}
		if ev.Job != nil {
			last = *ev.Job
		}
		if ev.Type == "result" {
			return last, nil
		}
	}
	if err := sc.Err(); err != nil {
		return last, err
	}
	// Stream ended without a terminal line (e.g. the daemon drained);
	// report the last status the caller saw.
	return last, fmt.Errorf("stream ended before job %s finished (state %s)", id, last.State)
}

// Wait polls until the job is terminal.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (service.JobStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}
