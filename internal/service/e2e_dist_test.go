package service_test

// End-to-end acceptance of the distributed campaign fabric: a coordinator
// and two in-process workers driven over real HTTP, one worker killed
// mid-campaign, and the merged result checked bit-for-bit against a direct
// single-node fault.Campaign execution. This is the paper's determinism
// argument made executable: batch b derives all randomness from (seed, b),
// so reassigning a dead worker's lease must not change a single count.

import (
	"context"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
)

// distDaemonConfig tunes the coordinator for fast failure detection: short
// leases, tight heartbeats, one batch per lease so a 5-batch campaign
// spreads across many grants.
func distDaemonConfig() service.Config {
	return service.Config{
		Workers:             1,
		CheckpointEveryRuns: 64,
		Dist: service.DistConfig{
			Enabled:        true,
			LeaseBatches:   1,
			LeaseTTL:       300 * time.Millisecond,
			MaxAttempts:    8,
			HeartbeatEvery: 60 * time.Millisecond,
			PollEvery:      20 * time.Millisecond,
		},
	}
}

// TestE2EDistributedKillWorkerBitIdentical runs every entropy variant on a
// coordinator with two workers, kills the first worker the moment it is
// granted a lease, and requires the merged distributed result to equal the
// single-node library run bit for bit even though one lease expired and was
// reassigned.
func TestE2EDistributedKillWorkerBitIdentical(t *testing.T) {
	for _, entropy := range []string{"prime", "per-round", "per-sbox"} {
		t.Run(entropy, func(t *testing.T) {
			_, c := startDaemon(t, distDaemonConfig())
			ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
			defer cancel()

			st, err := c.Submit(ctx, e2eRequest(e2eRuns, entropy))
			if err != nil {
				t.Fatal(err)
			}

			// Worker A dies abruptly on its first grant: Kill simulates a
			// crash, so the lease is never reported back and must expire.
			leasedA := make(chan service.LeaseGrant, 1)
			var wa *client.Worker
			wa = client.NewWorker(client.WorkerConfig{
				Coordinator:  c.BaseURL,
				Name:         "victim",
				ChunkBatches: 1,
				OnLease: func(g service.LeaseGrant) {
					wa.Kill()
					select {
					case leasedA <- g:
					default:
					}
				},
			})
			runDone := make(chan error, 2)
			go func() { runDone <- wa.Run(ctx) }()
			select {
			case <-leasedA:
			case <-ctx.Done():
				t.Fatal("worker A was never granted a lease")
			}

			// Worker B joins only after A is dead while holding a lease, so
			// at least one reassignment is guaranteed.
			wb := client.NewWorker(client.WorkerConfig{
				Coordinator:  c.BaseURL,
				Name:         "survivor",
				ChunkBatches: 1,
			})
			go func() { runDone <- wb.Run(ctx) }()

			final, err := c.Wait(ctx, st.ID, 20*time.Millisecond)
			if err != nil {
				t.Fatal(err)
			}
			if terminal, outcome := client.Done(final); !terminal || outcome != nil {
				t.Fatalf("job ended %q: %v (%s)", final.State, outcome, final.Error)
			}
			if final.Result == nil || final.Result.Campaign == nil {
				t.Fatal("done job has no campaign result")
			}
			want := directResult(t, e2eRuns, entropy)
			if *final.Result.Campaign != want {
				t.Fatalf("distributed result diverged after worker kill:\n got  %+v\n want %+v",
					*final.Result.Campaign, want)
			}

			// The failure really happened: a lease expired and was
			// re-granted, both workers registered, no leases survive.
			m, err := c.Metrics(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if m["leases_reassigned_total"] < 1 || m["leases_expired_total"] < 1 {
				t.Fatalf("no reassignment recorded: %v", m)
			}
			if m["workers_joined_total"] != 2 || m["leases_granted_total"] < 6 {
				t.Fatalf("unexpected fleet counters: %v", m)
			}
			workers, err := c.Workers(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(workers) != 2 {
				t.Fatalf("worker registry %+v", workers)
			}
			leases, err := c.Leases(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(leases) != 0 {
				t.Fatalf("leases survive a finished job: %+v", leases)
			}

			cancel()
			for i := 0; i < 2; i++ {
				select {
				case <-runDone:
				case <-time.After(10 * time.Second):
					t.Fatal("worker did not stop")
				}
			}
		})
	}
}

// TestE2EDistributedGracefulWorkerExit drains one worker mid-campaign via
// context cancellation: its lease is failed back for immediate reassignment
// (no TTL wait), the worker leaves the registry, and the result still
// matches the single-node run.
func TestE2EDistributedGracefulWorkerExit(t *testing.T) {
	_, c := startDaemon(t, distDaemonConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	st, err := c.Submit(ctx, e2eRequest(e2eRuns, "prime"))
	if err != nil {
		t.Fatal(err)
	}

	actx, astop := context.WithCancel(ctx)
	defer astop()
	leasedA := make(chan struct{}, 1)
	wa := client.NewWorker(client.WorkerConfig{
		Coordinator:  c.BaseURL,
		Name:         "drained",
		ChunkBatches: 1,
		OnLease: func(service.LeaseGrant) {
			astop()
			select {
			case leasedA <- struct{}{}:
			default:
			}
		},
	})
	runDone := make(chan error, 2)
	go func() { runDone <- wa.Run(actx) }()
	select {
	case <-leasedA:
	case <-ctx.Done():
		t.Fatal("worker A was never granted a lease")
	}

	wb := client.NewWorker(client.WorkerConfig{
		Coordinator:  c.BaseURL,
		Name:         "steady",
		ChunkBatches: 2,
	})
	go func() { runDone <- wb.Run(ctx) }()

	final, err := c.Wait(ctx, st.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if terminal, outcome := client.Done(final); !terminal || outcome != nil {
		t.Fatalf("job ended %q: %v (%s)", final.State, outcome, final.Error)
	}
	want := directResult(t, e2eRuns, "prime")
	if *final.Result.Campaign != want {
		t.Fatalf("result diverged after graceful exit:\n got  %+v\n want %+v",
			*final.Result.Campaign, want)
	}

	// A drained worker leaves cleanly: it must end up "left", not lost.
	workers, err := c.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var sawLeft bool
	for _, w := range workers {
		if w.Name == "drained" && w.State == service.WorkerLeft {
			sawLeft = true
		}
	}
	if !sawLeft {
		t.Fatalf("drained worker never left: %+v", workers)
	}

	cancel()
	for i := 0; i < 2; i++ {
		select {
		case <-runDone:
		case <-time.After(10 * time.Second):
			t.Fatal("worker did not stop")
		}
	}
}
