package service_test

// Acceptance tests for the versioned API surface itself: /v1 responses
// carry the typed error envelope {"error":{"code","message"}}, while the
// unversioned legacy aliases keep answering with the pre-v1 flat envelope
// plus a Deprecation header pointing at their /v1 successor. The e2e job
// flow is exercised against both surfaces.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
)

// lintRequest is the cheapest job kind: design-only, done in milliseconds.
func lintRequest() string {
	return `{"kind":"lint","design":{"cipher":"present80","scheme":"three-in-one"}}`
}

func TestE2ETypedErrorEnvelope(t *testing.T) {
	_, c := startDaemon(t, service.Config{Workers: 1})
	ctx := context.Background()

	// Validation failures are invalid_request.
	_, err := c.Submit(ctx, service.JobRequest{Kind: "explode"})
	var apiErr *client.Error
	if !asClientError(err, &apiErr) || apiErr.Code != service.CodeInvalidRequest || apiErr.StatusCode != 400 {
		t.Fatalf("bad kind: %v", err)
	}

	// Unknown jobs are not_found and match the sentinel through the code,
	// not just the status.
	_, err = c.Get(ctx, "j424242")
	if !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unknown job: %v", err)
	}
	if !asClientError(err, &apiErr) || apiErr.Code != service.CodeNotFound {
		t.Fatalf("unknown job envelope: %v", err)
	}

	// The raw wire shape is the typed envelope, decodable as documented.
	resp, err := http.Get(c.BaseURL + "/v1/jobs/j424242")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var envelope struct {
		Error service.ErrorBody `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != service.CodeNotFound || envelope.Error.Message == "" {
		t.Fatalf("raw /v1 envelope %+v", envelope)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Fatal("/v1 response carries a Deprecation header")
	}
}

func TestE2ELegacyAliasesDeprecatedButWorking(t *testing.T) {
	_, c := startDaemon(t, service.Config{Workers: 1})

	// Every legacy alias announces its deprecation and /v1 successor.
	for path, successor := range map[string]string{
		"/healthz":      "/v1/healthz",
		"/metrics":      "/v1/metrics",
		"/jobs":         "/v1/jobs",
		"/jobs/j424242": "/v1/jobs/{id}",
	} {
		resp, err := http.Get(c.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.Header.Get("Deprecation") != "true" {
			t.Errorf("GET %s: no Deprecation header", path)
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, successor) ||
			!strings.Contains(link, `rel="successor-version"`) {
			t.Errorf("GET %s: Link %q does not point at %s", path, link, successor)
		}
	}

	// Legacy errors keep the pre-v1 flat {"error":"message"} shape.
	resp, err := http.Get(c.BaseURL + "/jobs/j424242")
	if err != nil {
		t.Fatal(err)
	}
	var flat struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&flat); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || flat.Error == "" {
		t.Fatalf("legacy 404: status %d body %+v", resp.StatusCode, flat)
	}

	// The full job flow still works unversioned: submit, poll to done.
	resp, err = http.Post(c.BaseURL+"/jobs", "application/json", strings.NewReader(lintRequest()))
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("legacy submit: %d %+v", resp.StatusCode, st)
	}
	deadline := time.Now().Add(time.Minute)
	for st.State != service.StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("legacy job stuck in %q", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(fmt.Sprintf("%s/jobs/%s", c.BaseURL, st.ID))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}
	if st.Result == nil || st.Result.Lint == nil {
		t.Fatalf("legacy-flow job has no lint result: %+v", st)
	}
}
