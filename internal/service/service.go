package service

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/attack"
	"repro/internal/fault"
	"repro/internal/leakage"
	"repro/internal/lint"
	"repro/internal/obs"
	"repro/internal/prove"
	"repro/internal/sim"
	"repro/internal/spn"
	"repro/internal/stdcell"
	"repro/internal/store"
)

// Config sizes the service.
type Config struct {
	// Workers is the number of queue shards / worker goroutines (jobs
	// running concurrently). Default 2.
	Workers int
	// QueueDepth is the queued-job capacity per shard. Default 32.
	QueueDepth int
	// StateDir persists job records and campaign checkpoints; "" runs
	// in memory only (no resume across restarts).
	StateDir string
	// CheckpointEveryRuns is the campaign checkpoint/progress interval
	// in simulated runs; rounded up to whole sim.Lanes batches.
	// Default 4096.
	CheckpointEveryRuns int
	// SimWorkers bounds the goroutines inside one campaign execution
	// (fault.EngineConfig.Parallelism). Default GOMAXPROCS.
	SimWorkers int
	// SimLaneWords is the default engine word width of campaign
	// executions (fault.EngineConfig.LaneWords): 1, 2 or 4, where one
	// simulator pass evaluates SimLaneWords×64 lanes. Default 1. Pure
	// execution policy — results and stored batch digests are identical
	// at every width.
	SimLaneWords int
	// Obs is the metrics registry the service registers its instruments
	// on. nil creates a private registry, which keeps multiple Service
	// instances in one process from sharing counters; the daemon passes a
	// shared registry so service, sim and fault metrics render as one
	// exposition.
	Obs *obs.Registry
	// Dist configures the distributed campaign fabric. When enabled this
	// service is a coordinator: campaign jobs are split into batch-range
	// leases pulled by sconed worker processes instead of executing
	// in-process.
	Dist DistConfig
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.CheckpointEveryRuns <= 0 {
		c.CheckpointEveryRuns = 4096
	}
	if c.SimWorkers <= 0 {
		c.SimWorkers = runtime.GOMAXPROCS(0)
	}
	if c.SimLaneWords <= 0 {
		c.SimLaneWords = 1
	}
	return c
}

// engineDefaults is the execution-policy fallback campaign specs without
// explicit workers/lane_words resolve against.
func (c Config) engineDefaults() EngineDefaults {
	return EngineDefaults{Workers: c.SimWorkers, LaneWords: c.SimLaneWords}
}

// ErrUnknownJob is returned for IDs the service has never seen.
var ErrUnknownJob = errors.New("service: unknown job")

// job is the in-memory state of one job. All mutable fields are guarded by
// Service.mu; the campaign hot loop runs without it and communicates
// through per-chunk callbacks.
type job struct {
	id  string
	req JobRequest

	state      State
	err        string
	result     *JobResult
	progress   *Progress
	resumed    int
	checkpoint *Checkpoint
	userCancel bool
	cancel     context.CancelFunc // set while running

	submitted time.Time
	started   *time.Time
	finished  *time.Time

	subs    map[int]chan Event
	nextSub int
}

// Service is the campaign server: a bounded sharded queue feeding a fixed
// worker pool, with durable state when a StateDir is configured.
type Service struct {
	cfg     Config
	Metrics *Metrics
	dist    *coordinator // nil unless Config.Dist.Enabled

	baseCtx context.Context
	stop    context.CancelFunc

	// results is the content-addressed campaign result store (StateDir/
	// results.log); nil without a StateDir. Every store method is nil-safe,
	// so the storeless service runs the same code path with every lookup a
	// miss.
	results *store.Store

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string
	nextID   int
	queue    *queue
	store    *jobStore
	draining bool

	wg sync.WaitGroup
}

// New opens the state dir, resumes any incomplete jobs it records, and
// starts the worker pool.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	st, err := openJobStore(cfg.StateDir)
	if err != nil {
		return nil, err
	}
	recs, err := st.loadAll()
	if err != nil {
		return nil, err
	}

	pending := 0
	for _, rec := range recs {
		if !rec.State.Terminal() {
			pending++
		}
	}
	depth := cfg.QueueDepth
	if per := (pending + cfg.Workers - 1) / cfg.Workers; per > depth {
		depth = per // a restart must always be able to re-enqueue its own backlog
	}

	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:     cfg,
		baseCtx: ctx,
		stop:    cancel,
		jobs:    make(map[string]*job),
		queue:   newQueue(cfg.Workers, depth),
		store:   st,
	}
	if cfg.StateDir != "" {
		rs, err := store.Open(filepath.Join(cfg.StateDir, "results.log"))
		if err != nil {
			cancel()
			return nil, err
		}
		rs.EnableObservability(reg)
		s.results = rs
	}
	if cfg.Dist.Enabled {
		s.dist = newCoordinator(cfg.Dist)
		s.dist.results = s.results
	}
	s.Metrics = newMetrics(reg, s.queue, s.dist)
	if s.dist != nil {
		s.dist.metrics = s.Metrics
		go s.dist.janitor(ctx.Done())
	}

	for _, rec := range recs {
		j := &job{
			id:         rec.ID,
			req:        rec.Req,
			state:      rec.State,
			err:        rec.Error,
			result:     rec.Result,
			resumed:    rec.Resumed,
			checkpoint: rec.Checkpoint,
			submitted:  rec.Submitted,
			subs:       make(map[int]chan Event),
		}
		if n, ok := parseJobID(rec.ID); ok && n >= s.nextID {
			s.nextID = n + 1
		}
		if !j.state.Terminal() {
			// Queued and interrupted-running jobs alike go back on
			// the queue; campaigns pick up from their checkpoint.
			j.state = StateQueued
			if err := s.queue.push(j); err != nil {
				cancel()
				return nil, fmt.Errorf("service: re-enqueue %s: %w", j.id, err)
			}
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	}

	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker(w)
	}
	return s, nil
}

func parseJobID(id string) (int, bool) {
	if len(id) < 2 || id[0] != 'j' {
		return 0, false
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil {
		return 0, false
	}
	return n, true
}

// Submit validates and enqueues a job, returning its initial status.
func (s *Service) Submit(req JobRequest) (JobStatus, error) {
	if err := req.Validate(); err != nil {
		return JobStatus{}, fmt.Errorf("invalid request: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobStatus{}, ErrDraining
	}
	j := &job{
		id:        fmt.Sprintf("j%06d", s.nextID),
		req:       req,
		state:     StateQueued,
		submitted: time.Now().UTC(),
		subs:      make(map[int]chan Event),
	}
	if err := s.queue.push(j); err != nil {
		return JobStatus{}, err
	}
	s.nextID++
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.Metrics.JobsSubmitted.Inc()
	s.persistLocked(j)
	return s.statusLocked(j), nil
}

// Get returns a job's status.
func (s *Service) Get(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	return s.statusLocked(j), nil
}

// List returns every job in submission order.
func (s *Service) List() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// Cancel stops a job: queued jobs are marked canceled immediately, running
// jobs are interrupted at their next batch boundary. Cancelling a terminal
// job is a no-op.
func (s *Service) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrUnknownJob
	}
	switch j.state {
	case StateQueued:
		j.userCancel = true
		s.finishLocked(j, StateCanceled, nil, "")
	case StateRunning:
		j.userCancel = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	return s.statusLocked(j), nil
}

// Watch subscribes to a job's event stream. The returned channel delivers
// progress and terminal events and is closed when the job reaches a
// terminal state (read the final status with Get); call off to detach
// early. Slow consumers may miss intermediate progress events — the stream
// is a live feed, not a journal.
func (s *Service) Watch(id string) (<-chan Event, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, nil, ErrUnknownJob
	}
	ch := make(chan Event, 16)
	if j.state.Terminal() {
		close(ch)
		return ch, func() {}, nil
	}
	key := j.nextSub
	j.nextSub++
	j.subs[key] = ch
	off := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, live := j.subs[key]; live {
			delete(j.subs, key) // publisher holds mu, so no send can race this
		}
	}
	return ch, off, nil
}

// Drain gracefully shuts the service down: intake stops, running campaigns
// checkpoint and return to the queued state (durably, when a StateDir is
// configured), and the workers exit. ctx bounds the wait. A subsequent New
// on the same StateDir resumes the interrupted jobs.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.queue.closeAll()
	s.mu.Unlock()
	s.dist.setDraining() // workers learn via heartbeat/acquire responses
	s.stop()             // interrupt running jobs at their next batch boundary

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Workers are quiesced; the result store can close durably. Late
		// distributed lease reports now get store-closed errors, which the
		// put-error counter records and the determinism contract absorbs —
		// the batches are simply re-simulated next time.
		return s.results.Close()
	case <-ctx.Done():
		return fmt.Errorf("service: drain: %w", ctx.Err())
	}
}

// Close is Drain without a deadline.
func (s *Service) Close() error { return s.Drain(context.Background()) }

// statusLocked snapshots a job. Callers hold s.mu.
func (s *Service) statusLocked(j *job) JobStatus {
	st := JobStatus{
		ID:        j.id,
		Kind:      j.req.Kind,
		State:     j.state,
		Error:     j.err,
		Result:    j.result,
		Resumed:   j.resumed,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
	}
	if j.progress != nil {
		p := *j.progress
		st.Progress = &p
	}
	return st
}

// persistLocked writes the job's durable record; persistence failures are
// recorded on the job rather than crashing the worker.
func (s *Service) persistLocked(j *job) {
	rec := &jobRecord{
		ID:         j.id,
		Req:        j.req,
		State:      j.state,
		Error:      j.err,
		Result:     j.result,
		Resumed:    j.resumed,
		Checkpoint: j.checkpoint,
		Submitted:  j.submitted,
	}
	sp := obs.StartSpan(s.Metrics.CheckpointNS)
	err := s.store.save(rec)
	sp.End()
	if err != nil && j.err == "" {
		j.err = fmt.Sprintf("checkpoint write failed: %v", err)
	}
}

// publishLocked fans an event out to the job's subscribers (non-blocking;
// laggards drop intermediate events).
func (s *Service) publishLocked(j *job, ev Event) {
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// finishLocked moves a job to a terminal state, persists it and closes the
// event stream.
func (s *Service) finishLocked(j *job, state State, result *JobResult, errMsg string) {
	now := time.Now().UTC()
	j.state = state
	j.result = result
	j.err = errMsg
	j.finished = &now
	j.cancel = nil
	if j.started != nil {
		s.Metrics.JobRunNS.Observe(now.Sub(*j.started).Nanoseconds())
	}
	switch state {
	case StateDone:
		s.Metrics.JobsCompleted.Inc()
	case StateFailed:
		s.Metrics.JobsFailed.Inc()
	case StateCanceled:
		s.Metrics.JobsCanceled.Inc()
	}
	s.persistLocked(j)
	st := s.statusLocked(j)
	s.publishLocked(j, Event{Type: "result", Job: &st})
	for k, ch := range j.subs {
		close(ch)
		delete(j.subs, k)
	}
}

// worker serves one queue shard until drain.
func (s *Service) worker(w int) {
	defer s.wg.Done()
	for j := range s.queue.shards[w] {
		s.queue.took()
		s.runJob(j)
	}
}

// runJob executes one dequeued job.
func (s *Service) runJob(j *job) {
	s.mu.Lock()
	if j.state != StateQueued || s.draining {
		// Canceled while queued, or the service is shutting down; a
		// drained job stays queued on disk for the next process.
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	now := time.Now().UTC()
	j.state = StateRunning
	j.started = &now
	j.cancel = cancel
	s.Metrics.JobWaitNS.Observe(now.Sub(j.submitted).Nanoseconds())
	s.Metrics.JobsRunning.Add(1)
	s.persistLocked(j)
	st := s.statusLocked(j)
	s.publishLocked(j, Event{Type: "status", Job: &st})
	s.mu.Unlock()
	defer s.Metrics.JobsRunning.Add(-1)

	var result *JobResult
	var err error
	switch j.req.Kind {
	case KindCampaign:
		if s.dist != nil {
			result, err = s.runCampaignDistributed(ctx, j)
		} else {
			result, err = s.runCampaign(ctx, j)
		}
	case KindDFA, KindSIFA, KindFTA:
		result, err = s.runAttack(ctx, j)
	case KindArea:
		result, err = runArea(j.req)
	case KindLint:
		result, err = runLint(j.req)
	case KindProve:
		result, err = s.runProve(ctx, j)
	case KindMultiFault:
		result, err = s.runMultiFault(ctx, j)
	case KindLeakage:
		result, err = s.runLeakage(ctx, j)
	default:
		err = fmt.Errorf("unknown job kind %q", j.req.Kind)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		s.finishLocked(j, StateDone, result, "")
	case errors.Is(err, context.Canceled) && j.userCancel:
		s.finishLocked(j, StateCanceled, nil, "")
	case errors.Is(err, context.Canceled):
		// Drain: back to queued with the checkpoint intact; the next
		// process resumes from here.
		j.state = StateQueued
		j.cancel = nil
		s.persistLocked(j)
		st := s.statusLocked(j)
		s.publishLocked(j, Event{Type: "status", Job: &st})
	default:
		s.finishLocked(j, StateFailed, nil, err.Error())
	}
}

// runCampaign executes a campaign job in checkpoint-sized chunks. Each
// chunk is a contiguous batch range of the seed-deterministic campaign;
// after every chunk the accumulated counts and the next batch index are
// persisted and a progress event is published. Within a chunk the result
// store is consulted per batch: cached batches are spliced in without
// simulation, uncached ones are executed and their tallies stored, and the
// merge stays bit-identical to an uninterrupted run because both sources
// carry the identical (seed, batch)-deterministic counts.
func (s *Service) runCampaign(ctx context.Context, j *job) (*JobResult, error) {
	d, err := BuildDesign(j.req.Design)
	if err != nil {
		return nil, err
	}
	camp, err := buildCampaign(d, j.req.Campaign, s.cfg.engineDefaults())
	if err != nil {
		return nil, err
	}

	// An address failure disables replay for this job, never fails it: the
	// store is an accelerator, not a dependency.
	addr, addrErr := campaignAddress(camp)
	useStore := addrErr == nil && s.results != nil
	var digest store.Digest
	if useStore {
		digest = addr.Digest()
	}

	batches := camp.NumBatches()
	chunk := (s.cfg.CheckpointEveryRuns + sim.Lanes - 1) / sim.Lanes
	if chunk < 1 {
		chunk = 1
	}

	s.mu.Lock()
	var acc CampaignResult
	start := 0
	if j.checkpoint != nil {
		start = j.checkpoint.NextBatch
		acc = j.checkpoint.Counts
		j.resumed++
		s.Metrics.JobsResumed.Inc()
	}
	j.progress = &Progress{Done: acc.Total, Total: camp.Runs, Counts: acc}
	s.mu.Unlock()

	prov := s.beginRunRecord(j, camp, addr, digest, useStore)
	for b := start; b < batches; {
		end := b + chunk
		if end > batches {
			end = batches
		}
		delta, execErr := s.executeRange(ctx, camp, digest, useStore, b, end)
		acc.Accumulate(delta.counts)
		prov.add(delta.replayedBatches, delta.completed-delta.replayedBatches)
		s.mu.Lock()
		j.checkpoint = &Checkpoint{NextBatch: b + delta.completed, Counts: acc}
		j.progress = &Progress{Done: acc.Total, Total: camp.Runs, Counts: acc}
		s.Metrics.RunsSimulated.Add(int64(delta.simulatedRuns))
		s.Metrics.RunsReplayed.Add(int64(delta.replayedRuns))
		s.Metrics.Checkpoints.Inc()
		s.persistLocked(j)
		p := *j.progress
		s.publishLocked(j, Event{Type: "progress", Progress: &p})
		s.mu.Unlock()
		// Checkpoint cadence doubles as store durability cadence.
		_ = s.results.Sync()
		if execErr != nil {
			prov.finish(execErr, nil)
			return nil, execErr
		}
		b = end
	}
	cr := acc
	prov.finish(nil, &cr)
	return &JobResult{Campaign: &cr}, nil
}

// rangeDelta is one executeRange outcome: the merged counts of the range's
// completed contiguous prefix and how that work split between replay and
// simulation.
type rangeDelta struct {
	counts          CampaignResult
	completed       int // batches of the contiguous prefix
	replayedBatches int
	replayedRuns    int
	simulatedRuns   int
}

// executeRange runs the batch range [first, last) with store splicing. The
// cache is consulted exactly once per batch up front (so the hit/miss
// instruments measure the replay decision precisely), then the range is
// walked as alternating cached and uncached segments: cached batches merge
// their stored counts and count as replays, uncached segments execute with
// a per-batch hook that stores each fresh tally under its content address.
// Like ExecuteBatches, the returned delta covers a contiguous prefix of the
// range on cancellation.
func (s *Service) executeRange(ctx context.Context, camp *fault.Campaign, digest store.Digest, useStore bool, first, last int) (rangeDelta, error) {
	var d rangeDelta
	var cached []*store.Counts
	if useStore {
		cached = make([]*store.Counts, last-first)
		for b := first; b < last; b++ {
			k := store.BatchKey{Campaign: digest, Batch: b, Runs: camp.BatchRuns(b)}
			if c, ok := s.results.GetBatch(k); ok {
				cc := c
				cached[b-first] = &cc
			}
		}
	}
	for b := first; b < last; {
		if cached != nil && cached[b-first] != nil {
			c := *cached[b-first]
			accumulateCounts(&d.counts, c)
			fault.CountReplay(1, fault.Result{Total: c.Total})
			d.replayedBatches++
			d.replayedRuns += c.Total
			d.completed++
			b++
			continue
		}
		end := b
		for end < last && (cached == nil || cached[end-first] == nil) {
			end++
		}
		res, execErr := camp.ExecuteBatchesFunc(ctx, b, end, nil, func(bi int, r fault.Result) {
			if useStore {
				k := store.BatchKey{Campaign: digest, Batch: bi, Runs: r.Total}
				_ = s.results.PutBatch(k, faultCounts(r)) // conflicts/failures count in the store's own instruments
			}
		})
		d.counts.Add(res)
		d.simulatedRuns += res.Total
		// Completed batches are always full sim.Lanes wide except the
		// campaign's final batch, which only completes error-free.
		done := res.Total / sim.Lanes
		if execErr == nil {
			done = end - b
		}
		d.completed += done
		if execErr != nil {
			return d, execErr
		}
		b = end
	}
	return d, nil
}

// runCampaignDistributed executes a campaign job through the lease fabric:
// the batch range is registered with the coordinator, workers pull and
// execute leases, and this goroutine just follows the merge cursor —
// checkpointing and publishing progress exactly like the local path, and
// returning the merged result once the contiguous prefix covers every
// batch. On drain or cancel the merged prefix is checkpointed so only the
// remainder is re-leased later; determinism makes the outcome independent
// of where the cut lands.
func (s *Service) runCampaignDistributed(ctx context.Context, j *job) (*JobResult, error) {
	d, err := BuildDesign(j.req.Design)
	if err != nil {
		return nil, err
	}
	camp, err := buildCampaign(d, j.req.Campaign, s.cfg.engineDefaults())
	if err != nil {
		return nil, err
	}
	batches := camp.NumBatches()

	addr, addrErr := campaignAddress(camp)
	useStore := addrErr == nil && s.results != nil
	var digest store.Digest
	if useStore {
		digest = addr.Digest()
	}

	s.mu.Lock()
	var acc CampaignResult
	start := 0
	if j.checkpoint != nil {
		start = j.checkpoint.NextBatch
		acc = j.checkpoint.Counts
		j.resumed++
		s.Metrics.JobsResumed.Inc()
	}
	j.progress = &Progress{Done: acc.Total, Total: camp.Runs, Counts: acc}
	s.mu.Unlock()

	prov := s.beginRunRecord(j, camp, addr, digest, useStore)
	dj := s.dist.register(j.id, j.req, start, batches, acc, camp.Runs, digest, useStore)
	defer s.dist.unregister(j.id)

	last := distProgress{cursor: start, acc: acc}
	finish := func(err error, res *CampaignResult) {
		_ = s.results.Sync()
		prov.finish(err, res)
	}
	for {
		select {
		case <-ctx.Done():
			// Drain or user cancel: persist the merged contiguous prefix;
			// the caller's requeue/cancel handling proceeds from there.
			p := s.dist.snapshot(j.id)
			s.mu.Lock()
			j.checkpoint = &Checkpoint{NextBatch: p.cursor, Counts: p.acc}
			s.persistLocked(j)
			s.mu.Unlock()
			prov.add(p.replayedBatches, (p.cursor-start)-p.replayedBatches)
			finish(ctx.Err(), nil)
			return nil, ctx.Err()
		case <-dj.notify:
			p := s.dist.snapshot(j.id)
			if p.failed != "" {
				prov.add(p.replayedBatches, (p.cursor-start)-p.replayedBatches)
				finish(errors.New(p.failed), nil)
				return nil, errors.New(p.failed)
			}
			if p.cursor != last.cursor {
				// The merged prefix advanced; split the new runs between
				// replayed (batches the store pre-completed at register
				// time) and simulated (worker-executed leases).
				runs := p.acc.Total - last.acc.Total
				replayed := p.replayedRuns - last.replayedRuns
				last = p
				s.mu.Lock()
				j.checkpoint = &Checkpoint{NextBatch: p.cursor, Counts: p.acc}
				j.progress = &Progress{Done: p.acc.Total, Total: camp.Runs, Counts: p.acc}
				s.Metrics.RunsSimulated.Add(int64(runs - replayed))
				s.Metrics.RunsReplayed.Add(int64(replayed))
				s.Metrics.Checkpoints.Inc()
				s.persistLocked(j)
				pr := *j.progress
				s.publishLocked(j, Event{Type: "progress", Progress: &pr})
				s.mu.Unlock()
				_ = s.results.Sync()
			}
			if p.done {
				cr := p.acc
				prov.add(p.replayedBatches, (p.cursor-start)-p.replayedBatches)
				finish(nil, &cr)
				return &JobResult{Campaign: &cr}, nil
			}
		}
	}
}

// runAttack executes the one-shot attack kinds. The drivers are not
// incrementally interruptible (they are short relative to campaigns), so
// cancellation is honoured at the boundaries.
func (s *Service) runAttack(ctx context.Context, j *job) (*JobResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a := j.req.Attack
	key := spn.KeyState{uint64(a.Key[0]), uint64(a.Key[1])}
	d, err := BuildDesign(j.req.Design)
	if err != nil {
		return nil, err
	}
	deviceSeed := uint64(a.DeviceSeed)
	if deviceSeed == 0 {
		deviceSeed = 0x5C017ED
	}

	switch j.req.Kind {
	case KindDFA:
		t, err := attack.NewTarget(d, key, deviceSeed)
		if err != nil {
			return nil, err
		}
		cfg := attack.DefaultDFAConfig()
		if a.PairsPerNibble > 0 {
			cfg.PairsPerNibble = a.PairsPerNibble
		}
		if a.Model != "" {
			cfg.Model, _ = parseModel(a.Model)
		}
		cfg.BothBranches = a.BothBranches
		cfg.UnknownPolarity = a.UnknownPolarity
		if a.Seed != 0 {
			cfg.Seed = uint64(a.Seed)
		}
		res := attack.RunDFA(t, cfg)
		return &JobResult{DFA: &DFAResult{
			Succeeded:    res.Succeeded,
			Detail:       res.Detail,
			RecoveredKey: [2]U64{U64(res.RecoveredKey[0]), U64(res.RecoveredKey[1])},
		}}, ctx.Err()
	case KindSIFA:
		t, err := attack.NewTarget(d, key, deviceSeed)
		if err != nil {
			return nil, err
		}
		cfg := attack.DefaultSIFAConfig()
		if a.Sbox != nil {
			cfg.SboxIndex = *a.Sbox
		}
		if a.Bit != nil {
			cfg.FaultBit = *a.Bit
		}
		if a.Injections > 0 {
			cfg.Injections = a.Injections
		}
		if a.Seed != 0 {
			cfg.Seed = uint64(a.Seed)
		}
		if cfg.SboxIndex >= d.Spec.NumSboxes() || cfg.FaultBit >= d.Spec.SboxBits {
			return nil, fmt.Errorf("S-box %d bit %d out of range for %s", cfg.SboxIndex, cfg.FaultBit, d.Spec.Name)
		}
		res := attack.RunSIFA(t, cfg)
		return &JobResult{SIFA: &SIFAResult{
			Succeeded:  res.Succeeded,
			Detail:     res.Detail,
			BestGuess:  U64(res.BestGuess),
			TrueSubkey: U64(res.TrueSubkey),
			Usable:     res.Usable,
		}}, ctx.Err()
	case KindFTA:
		cfg := attack.DefaultFTAConfig()
		if a.Sbox != nil {
			cfg.SboxIndex = *a.Sbox
		}
		if a.Repeats > 0 {
			cfg.Repeats = a.Repeats
		}
		if a.ProfilePTs > 0 {
			cfg.ProfilePTs = a.ProfilePTs
		}
		if a.AttackPTs > 0 {
			cfg.AttackPTs = a.AttackPTs
		}
		if a.Seed != 0 {
			cfg.Seed = uint64(a.Seed)
		}
		if cfg.SboxIndex >= d.Spec.NumSboxes() {
			return nil, fmt.Errorf("S-box %d out of range for %s", cfg.SboxIndex, d.Spec.Name)
		}
		res, err := attack.RunFTAOnDesign(d, key, cfg, deviceSeed)
		if err != nil {
			return nil, err
		}
		return &JobResult{FTA: &FTAResult{
			Succeeded:  res.Succeeded,
			Detail:     res.Detail,
			Accuracy:   res.Accuracy,
			Bits:       res.Bits,
			Separation: res.Separation,
		}}, ctx.Err()
	}
	return nil, fmt.Errorf("unknown attack kind %q", j.req.Kind)
}

// runArea prices a design (or uploaded netlist) in gate equivalents.
func runArea(req JobRequest) (*JobResult, error) {
	m, err := ResolveModule(req.Design)
	if err != nil {
		return nil, err
	}
	rep := stdcell.Nangate45().Area(m)
	byKind := make(map[string]float64, len(rep.ByKind))
	for k, ge := range rep.ByKind {
		byKind[k.String()] = ge
	}
	return &JobResult{Area: &AreaResult{
		Module:        rep.Module,
		Library:       rep.Library,
		Combinational: rep.Combinational,
		Sequential:    rep.Sequential,
		Total:         rep.Total(),
		CellCount:     rep.CellCount,
		ByKind:        byKind,
	}}, nil
}

// runProve executes a prove job one (fault location, model) pair at a
// time. Proofs are deterministic and independent per pair, and the pairs
// are walked in a fixed order (locations outer, models inner), so every
// pair boundary is a checkpoint: the completed pairs and the next index
// are persisted after each proof, and a drained or killed job resumes by
// replaying the checkpointed pairs into the aggregate and proving only
// the remainder — never re-proving a completed pair.
func (s *Service) runProve(ctx context.Context, j *job) (*JobResult, error) {
	m, err := ResolveModule(j.req.Design)
	if err != nil {
		return nil, err
	}
	budget := 0
	models := prove.Models()
	if p := j.req.Prove; p != nil {
		budget = p.Budget
		if len(p.Models) > 0 {
			models = make([]fault.Model, 0, len(p.Models))
			for _, name := range p.Models {
				fm, err := parseModel(name)
				if err != nil {
					return nil, err
				}
				models = append(models, fm)
			}
		}
	}
	a, err := prove.NewAnalyzer(m, budget)
	if err != nil {
		return nil, err
	}
	locs := a.Locations()
	if len(locs) == 0 {
		return nil, fmt.Errorf("module %s declares no fault points (no %q cell tags)", m.Name, prove.TagPrefix)
	}
	total := len(locs) * len(models)

	res := &ProveResult{Module: m.Name, Budget: a.Budget()}
	s.mu.Lock()
	start := 0
	if j.checkpoint != nil && j.checkpoint.Prove != nil {
		cp := j.checkpoint.Prove
		start = cp.NextPair
		for _, l := range cp.Done {
			res.Accumulate(l)
		}
		j.resumed++
		s.Metrics.JobsResumed.Inc()
	}
	j.progress = &Progress{Done: start, Total: total}
	s.mu.Unlock()

	for pair := start; pair < total; pair++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lr, err := a.Prove(locs[pair/len(models)], models[pair%len(models)])
		if err != nil {
			return nil, err
		}
		res.Accumulate(NewProveLocation(lr))
		// The checkpoint owns its own copy of the completed pairs: the
		// result keeps growing while the persisted record must stay a
		// frozen snapshot of this boundary.
		done := append([]ProveLocation(nil), res.Locations...)
		s.mu.Lock()
		j.checkpoint = &Checkpoint{Prove: &ProveCheckpoint{NextPair: pair + 1, Done: done}}
		j.progress = &Progress{Done: pair + 1, Total: total}
		s.Metrics.Checkpoints.Inc()
		s.persistLocked(j)
		p := *j.progress
		s.publishLocked(j, Event{Type: "progress", Progress: &p})
		s.mu.Unlock()
	}
	return &JobResult{Prove: res}, nil
}

// runLeakage executes a leakage job one trace batch at a time. Batches
// are (seed, batch)-deterministic and the streaming t-test accumulator
// serialises bit-exactly, so every batch boundary is a checkpoint: a
// drained or killed job resumes by restoring the accumulator and
// simulating exactly the remaining batches — the final t-statistics are
// bit-identical to an uninterrupted run.
func (s *Service) runLeakage(ctx context.Context, j *job) (*JobResult, error) {
	ev, err := buildLeakage(j.req)
	if err != nil {
		return nil, err
	}
	total := j.req.Leakage.Pairs

	s.mu.Lock()
	if j.checkpoint != nil && j.checkpoint.Leakage != nil {
		cp := j.checkpoint.Leakage
		if err := ev.Restore(leakage.State{
			NextBatch: cp.NextBatch, Discarded: cp.Discarded, TTest: cp.TTest,
		}); err != nil {
			s.mu.Unlock()
			return nil, err
		}
		j.resumed++
		s.Metrics.JobsResumed.Inc()
	}
	j.progress = &Progress{Done: ev.PairsDone(), Total: total}
	s.mu.Unlock()

	for !ev.Done() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ev.Step()
		// State() deep-copies the accumulator, so the persisted record
		// stays a frozen snapshot of this batch boundary.
		st := ev.State()
		s.mu.Lock()
		j.checkpoint = &Checkpoint{Leakage: &LeakageCheckpoint{
			NextBatch: st.NextBatch, Discarded: st.Discarded, TTest: st.TTest,
		}}
		j.progress = &Progress{Done: ev.PairsDone(), Total: total}
		s.Metrics.Checkpoints.Inc()
		s.persistLocked(j)
		p := *j.progress
		s.publishLocked(j, Event{Type: "progress", Progress: &p})
		s.mu.Unlock()
	}
	return &JobResult{Leakage: NewLeakageResult(ev.Result())}, nil
}

// runLint audits a design (or uploaded netlist) with the static
// countermeasure linter.
func runLint(req JobRequest) (*JobResult, error) {
	m, err := ResolveModule(req.Design)
	if err != nil {
		return nil, err
	}
	opts := lint.Options{}
	if req.Lint != nil {
		opts.Rules = req.Lint.Rules
		opts.MaxPerRule = req.Lint.MaxPerRule
	}
	rep, err := lint.Run(m, opts)
	if err != nil {
		return nil, err
	}
	return &JobResult{Lint: rep}, nil
}

// QueueLen reports the queued backlog (for /metrics and tests).
func (s *Service) QueueLen() int { return s.queue.Len() }
