package service

import (
	"fmt"
	"strings"

	"repro/internal/cipher/gift"
	"repro/internal/cipher/present"
	"repro/internal/cipher/scone64"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/leakage"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/spn"
	"repro/internal/synth"
)

// ParseDesign resolves a synthesised-core spec into build inputs. It is the
// single place the wire vocabulary (the sconelint flag names) maps onto
// core.Options, so every job kind validates and builds identically.
func ParseDesign(ds DesignSpec) (*spn.Spec, core.Options, error) {
	var spec *spn.Spec
	switch ds.Cipher {
	case "", "present80":
		spec = present.Spec()
	case "gift64":
		spec = gift.Spec()
	case "scone64":
		spec = scone64.Spec()
	default:
		return nil, core.Options{}, fmt.Errorf("unknown cipher %q", ds.Cipher)
	}

	var opts core.Options
	scheme, err := core.ParseScheme(ds.Scheme)
	if err != nil {
		return nil, core.Options{}, err
	}
	opts.Scheme = scheme
	switch ds.Entropy {
	case "", "prime":
		opts.Entropy = core.EntropyPrime
	case "per-round":
		opts.Entropy = core.EntropyPerRound
	case "per-sbox":
		opts.Entropy = core.EntropyPerSbox
	default:
		return nil, core.Options{}, fmt.Errorf("unknown entropy variant %q", ds.Entropy)
	}
	switch ds.Engine {
	case "", "anf":
		opts.Engine = synth.EngineANF
	case "bdd":
		opts.Engine = synth.EngineBDD
	default:
		return nil, core.Options{}, fmt.Errorf("unknown engine %q", ds.Engine)
	}
	opts.SeparateSbox = ds.SeparateSbox
	opts.Optimize = ds.Optimize
	return spec, opts, nil
}

// BuildDesign synthesises the core a job addresses. Compilation of the
// resulting netlist goes through sim.CompileCached downstream, so repeated
// jobs against the same spec share one compiled program.
func BuildDesign(ds DesignSpec) (*core.Design, error) {
	if ds.Netlist != "" {
		return nil, fmt.Errorf("this job kind needs a synthesised design, not an inline netlist")
	}
	spec, opts, err := ParseDesign(ds)
	if err != nil {
		return nil, err
	}
	d, err := core.Build(spec, opts)
	if err != nil {
		return nil, fmt.Errorf("build: %w", err)
	}
	return d, nil
}

// ResolveModule returns the netlist a design-only job (area, lint) operates
// on: the inline text netlist when one was uploaded, else a freshly
// synthesised core.
func ResolveModule(ds DesignSpec) (*netlist.Module, error) {
	if ds.Netlist != "" {
		m, err := netlist.ReadTextLax(strings.NewReader(ds.Netlist))
		if err != nil {
			return nil, fmt.Errorf("netlist: %w", err)
		}
		return m, nil
	}
	d, err := BuildDesign(ds)
	if err != nil {
		return nil, err
	}
	return d.Mod, nil
}

func parseBranch(s string) (core.Branch, error) {
	switch s {
	case "", "actual":
		return core.BranchActual, nil
	case "redundant":
		return core.BranchRedundant, nil
	case "redundant2":
		return core.BranchRedundant2, nil
	default:
		return 0, fmt.Errorf("unknown branch %q", s)
	}
}

func parseModel(s string) (fault.Model, error) {
	switch s {
	case "", "stuck-at-0":
		return fault.StuckAt0, nil
	case "stuck-at-1":
		return fault.StuckAt1, nil
	case "bit-flip":
		return fault.BitFlip, nil
	default:
		return 0, fmt.Errorf("unknown fault model %q", s)
	}
}

// resolveFaults maps wire fault specs onto concrete nets of the built
// design. Branch addressing on an unduplicated design, or out-of-range
// S-box coordinates, fail the job here with a descriptive error.
func resolveFaults(d *core.Design, specs []FaultSpec) ([]fault.Fault, error) {
	faults := make([]fault.Fault, 0, len(specs))
	for i, fs := range specs {
		branch, err := parseBranch(fs.Branch)
		if err != nil {
			return nil, fmt.Errorf("fault %d: %w", i, err)
		}
		model, err := parseModel(fs.Model)
		if err != nil {
			return nil, fmt.Errorf("fault %d: %w", i, err)
		}
		if int(branch) >= d.NumBranches() {
			return nil, fmt.Errorf("fault %d: design %s has no branch %q", i, d.Mod.Name, branch)
		}
		if fs.Sbox >= d.Spec.NumSboxes() || fs.Bit >= d.Spec.SboxBits {
			return nil, fmt.Errorf("fault %d: S-box %d bit %d out of range for %s", i, fs.Sbox, fs.Bit, d.Spec.Name)
		}
		cycle := d.LastRoundCycle()
		if fs.Cycle != nil {
			cycle = *fs.Cycle
			if cycle < 0 || cycle > d.LastRoundCycle() {
				return nil, fmt.Errorf("fault %d: cycle %d outside 0..%d", i, cycle, d.LastRoundCycle())
			}
		}
		net := d.SboxInputNet(branch, fs.Sbox, fs.Bit)
		faults = append(faults, fault.At(net, model, cycle))
	}
	return faults, nil
}

// buildLeakage synthesises the design and assembles the evaluator for a
// validated leakage request.
func buildLeakage(req JobRequest) (*leakage.Evaluator, error) {
	ls := req.Leakage
	if ls == nil {
		return nil, fmt.Errorf("leakage job needs a leakage spec")
	}
	d, err := BuildDesign(req.Design)
	if err != nil {
		return nil, err
	}
	model, ok := power.ParseModel(ls.Model)
	if !ok {
		return nil, fmt.Errorf("unknown power model %q", ls.Model)
	}
	faults, err := resolveFaults(d, ls.Faults)
	if err != nil {
		return nil, err
	}
	return leakage.New(leakage.Config{
		Design:  d,
		Key:     spn.KeyState{uint64(ls.Key[0]), uint64(ls.Key[1])},
		Model:   model,
		Pairs:   ls.Pairs,
		Seed:    uint64(ls.Seed),
		FixedPT: uint64(ls.FixedPT),
		Faults:  faults,
	})
}

// EngineDefaults carries a host's execution-policy defaults — the values a
// campaign spec falls back to when its own Workers/LaneWords fields are
// zero. The service fills it from Config, the distributed worker from its
// WorkerConfig; either way it never influences results or content
// addresses, only how fast the machine computes them.
type EngineDefaults struct {
	// Workers is the fallback simulation parallelism (0 = GOMAXPROCS).
	Workers int
	// LaneWords is the fallback engine word width (0 = 1).
	LaneWords int
}

// BuildCampaign synthesises the design and assembles the engine campaign
// for a validated campaign request. Coordinator and workers both build
// through here, so a lease grant's (Design, Campaign) pair reconstructs the
// exact campaign the submitting client described — the determinism
// contract's precondition.
func BuildCampaign(ds DesignSpec, cs *CampaignSpec, def EngineDefaults) (*fault.Campaign, error) {
	if cs == nil {
		return nil, fmt.Errorf("campaign job needs a campaign spec")
	}
	d, err := BuildDesign(ds)
	if err != nil {
		return nil, err
	}
	return buildCampaign(d, cs, def)
}

// buildCampaign assembles the engine campaign for a validated request.
func buildCampaign(d *core.Design, cs *CampaignSpec, def EngineDefaults) (*fault.Campaign, error) {
	faults, err := resolveFaults(d, cs.Faults)
	if err != nil {
		return nil, err
	}
	camp := &fault.Campaign{
		Design: d,
		Key:    spn.KeyState{uint64(cs.Key[0]), uint64(cs.Key[1])},
		Faults: faults,
		Runs:   cs.Runs,
		Seed:   uint64(cs.Seed),
		Engine: cs.engineConfig(def),
	}
	if cs.Persistent != nil {
		p := fault.PersistentFault{Entry: cs.Persistent.Entry, Mask: uint64(cs.Persistent.Mask)}
		if err := p.Validate(d); err != nil {
			return nil, err
		}
		camp.Persistent = &p
	}
	return camp, nil
}
