package service_test

// End-to-end acceptance of the content-addressed result store: resubmitting
// an identical campaign after a daemon restart must perform zero simulation
// batches (proved through scone_store_hits_total and the runs_simulated
// counter staying flat), an extended campaign must splice cached and fresh
// batches into a result bit-identical to an uninterrupted run, and the
// distributed coordinator must grant no leases for fully cached work. All
// of it rests on the determinism contract: batch b derives every random bit
// from (seed, b), so a stored batch IS the batch a re-run would simulate.

import (
	"bufio"
	"context"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/service/client"
)

// storeDaemon starts a daemon whose lifecycle the test controls (no
// t.Cleanup auto-close): restart tests need to drain and re-open the same
// state directory mid-test.
func storeDaemon(t *testing.T, cfg service.Config) (*service.Service, *httptest.Server, *client.Client) {
	t.Helper()
	svc, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	return svc, srv, client.New(srv.URL)
}

// drainDaemon gracefully stops a daemon, which also closes its result store.
func drainDaemon(t *testing.T, svc *service.Service, srv *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	srv.Close()
}

// promCounter extracts one instrument's value from Prometheus text
// exposition.
func promCounter(t *testing.T, text, name string) int64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("unparseable %s value %q", name, fields[1])
			}
			return int64(v)
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// submitAndWait submits req and blocks until the job is done, returning its
// campaign result.
func submitAndWait(t *testing.T, ctx context.Context, c *client.Client, req service.JobRequest) service.CampaignResult {
	t.Helper()
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if terminal, outcome := client.Done(final); !terminal || outcome != nil {
		t.Fatalf("job ended %q: %v (%s)", final.State, outcome, final.Error)
	}
	if final.Result == nil || final.Result.Campaign == nil {
		t.Fatal("done job has no campaign result")
	}
	return *final.Result.Campaign
}

// TestE2EStoreResubmitAfterRestartZeroSimulation is the store's acceptance
// scenario: run a campaign, restart the daemon on the same state directory,
// resubmit the identical campaign, and require (a) zero batches simulated
// the second time — every batch a store hit, the simulation counter flat —
// and (b) a bit-identical result, for every entropy variant.
func TestE2EStoreResubmitAfterRestartZeroSimulation(t *testing.T) {
	const batches = (e2eRuns + 63) / 64 // sim.Lanes-sized batches
	for _, entropy := range []string{"prime", "per-round", "per-sbox"} {
		t.Run(entropy, func(t *testing.T) {
			stateDir := t.TempDir()
			cfg := service.Config{Workers: 1, CheckpointEveryRuns: 64, StateDir: stateDir}
			ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
			defer cancel()

			svc1, srv1, c1 := storeDaemon(t, cfg)
			first := submitAndWait(t, ctx, c1, e2eRequest(e2eRuns, entropy))
			want := directResult(t, e2eRuns, entropy)
			if first != want {
				t.Fatalf("cold run diverged from direct execution:\n got  %+v\n want %+v", first, want)
			}
			drainDaemon(t, svc1, srv1)

			svc2, srv2, c2 := storeDaemon(t, cfg)
			defer func() { srv2.Close(); svc2.Close() }()

			// Zero-simulation read path: the restarted daemon answers the
			// query entirely from the store before any resubmission.
			view, err := c2.Results(ctx, e2eRequest(e2eRuns, entropy))
			if err != nil {
				t.Fatal(err)
			}
			if !view.Complete || view.CachedBatches != batches || view.Result == nil {
				t.Fatalf("restarted store does not cover the campaign: %+v", view)
			}
			if *view.Result != first {
				t.Fatalf("stored result %+v != original %+v", *view.Result, first)
			}

			before, err := c2.Metrics(ctx)
			if err != nil {
				t.Fatal(err)
			}
			second := submitAndWait(t, ctx, c2, e2eRequest(e2eRuns, entropy))
			if second != first {
				t.Fatalf("replayed result diverged:\n got  %+v\n want %+v", second, first)
			}

			after, err := c2.Metrics(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if sim := after["runs_simulated_total"] - before["runs_simulated_total"]; sim != 0 {
				t.Errorf("resubmission simulated %d runs, want 0", sim)
			}
			if rep := after["runs_replayed_total"] - before["runs_replayed_total"]; rep != e2eRuns {
				t.Errorf("runs_replayed_total advanced by %d, want %d", rep, e2eRuns)
			}
			text, err := c2.MetricsText(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if hits := promCounter(t, text, "scone_store_hits_total"); hits != batches {
				t.Errorf("scone_store_hits_total = %d, want %d", hits, batches)
			}
			if misses := promCounter(t, text, "scone_store_misses_total"); misses != 0 {
				t.Errorf("scone_store_misses_total = %d, want 0", misses)
			}

			// Both executions left durable provenance: the cold run all
			// simulation, the replayed run all cache.
			runs, err := c2.StoredRuns(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(runs) != 2 {
				t.Fatalf("stored %d run records, want 2: %+v", len(runs), runs)
			}
			cold, warm := runs[0], runs[1]
			if cold.SimulatedBatches != batches || cold.ReplayedBatches != 0 || cold.State != "done" {
				t.Errorf("cold run record %+v", cold)
			}
			if warm.SimulatedBatches != 0 || warm.ReplayedBatches != batches || warm.State != "done" {
				t.Errorf("replayed run record %+v", warm)
			}
			if cold.Campaign == "" || cold.Campaign != warm.Campaign {
				t.Errorf("run records disagree on the campaign digest: %q vs %q", cold.Campaign, warm.Campaign)
			}
			rec, err := c2.StoredRun(ctx, warm.ID)
			if err != nil {
				t.Fatal(err)
			}
			if rec.ID != warm.ID || rec.Result == nil || rec.Result.Total != e2eRuns {
				t.Errorf("single-record fetch %+v", rec)
			}
		})
	}
}

// TestE2EStoreIncrementalExtend doubles a cached campaign's run count: the
// first half of the extended run must replay from the store, the second
// half simulate fresh, and the interleaved merge must equal a direct
// uninterrupted execution bit for bit.
func TestE2EStoreIncrementalExtend(t *testing.T) {
	const extended = 2 * e2eRuns
	cfg := service.Config{Workers: 1, CheckpointEveryRuns: 64, StateDir: t.TempDir()}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	svc, srv, c := storeDaemon(t, cfg)
	defer func() { srv.Close(); svc.Close() }()

	submitAndWait(t, ctx, c, e2eRequest(e2eRuns, "prime"))
	before, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := submitAndWait(t, ctx, c, e2eRequest(extended, "prime"))
	if want := directResult(t, extended, "prime"); got != want {
		t.Fatalf("extended campaign diverged:\n got  %+v\n want %+v", got, want)
	}
	after, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep := after["runs_replayed_total"] - before["runs_replayed_total"]; rep != e2eRuns {
		t.Errorf("extension replayed %d runs, want %d", rep, e2eRuns)
	}
	if sim := after["runs_simulated_total"] - before["runs_simulated_total"]; sim != extended-e2eRuns {
		t.Errorf("extension simulated %d runs, want %d", sim, extended-e2eRuns)
	}
}

// TestE2EStoreDistributedResubmitGrantsNoLeases requires the coordinator to
// lease only uncached ranges: after a campaign completes once through a
// worker, resubmitting it must finish with zero additional lease grants —
// the register step pre-completes every cached range.
func TestE2EStoreDistributedResubmitGrantsNoLeases(t *testing.T) {
	cfg := distDaemonConfig()
	cfg.StateDir = t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	svc, srv, c := storeDaemon(t, cfg)
	defer func() { srv.Close(); svc.Close() }()

	w := client.NewWorker(client.WorkerConfig{Coordinator: c.BaseURL, Name: "filler", ChunkBatches: 1})
	wctx, wstop := context.WithCancel(ctx)
	runDone := make(chan error, 1)
	go func() { runDone <- w.Run(wctx) }()

	first := submitAndWait(t, ctx, c, e2eRequest(e2eRuns, "prime"))
	before, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	second := submitAndWait(t, ctx, c, e2eRequest(e2eRuns, "prime"))
	if second != first {
		t.Fatalf("cached distributed result diverged:\n got  %+v\n want %+v", second, first)
	}
	after, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if granted := after["leases_granted_total"] - before["leases_granted_total"]; granted != 0 {
		t.Errorf("resubmission granted %d leases, want 0", granted)
	}
	if sim := after["runs_simulated_total"] - before["runs_simulated_total"]; sim != 0 {
		t.Errorf("resubmission simulated %d runs, want 0", sim)
	}
	if rep := after["runs_replayed_total"] - before["runs_replayed_total"]; rep != e2eRuns {
		t.Errorf("resubmission replayed %d runs, want %d", rep, e2eRuns)
	}

	wstop()
	select {
	case <-runDone:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not stop")
	}
}
