package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/synth"
)

var testKey = [2]U64{0x0123456789ABCDEF, 0x8421}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func campaignRequest(runs int, entropy string) JobRequest {
	return JobRequest{
		Kind: KindCampaign,
		Design: DesignSpec{
			Cipher: "present80", Scheme: "three-in-one", Entropy: entropy,
		},
		Campaign: &CampaignSpec{
			Runs: runs,
			Seed: 0x5C09E2021,
			Key:  testKey,
			Faults: []FaultSpec{
				{Sbox: 13, Bit: 2, Model: "stuck-at-0"},
			},
		},
	}
}

func waitTerminal(t *testing.T, s *Service, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

func TestU64JSONRoundTrip(t *testing.T) {
	for _, v := range []U64{0, 1, 0x5C09E2021, ^U64(0)} {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(b, []byte(`"0x`)) {
			t.Fatalf("U64 %d marshalled as %s, want hex string", v, b)
		}
		var back U64
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != v {
			t.Fatalf("round trip %d -> %s -> %d", v, b, back)
		}
	}
	var fromNumber U64
	if err := json.Unmarshal([]byte("42"), &fromNumber); err != nil || fromNumber != 42 {
		t.Fatalf("number form: %v %d", err, fromNumber)
	}
	var fromDecimal U64
	if err := json.Unmarshal([]byte(`"42"`), &fromDecimal); err != nil || fromDecimal != 42 {
		t.Fatalf("decimal string form: %v %d", err, fromDecimal)
	}
}

func TestValidateRejectsBadRequests(t *testing.T) {
	cases := []struct {
		name string
		req  JobRequest
	}{
		{"unknown kind", JobRequest{Kind: "explode"}},
		{"campaign without spec", JobRequest{Kind: KindCampaign}},
		{"campaign zero runs", JobRequest{Kind: KindCampaign, Campaign: &CampaignSpec{Faults: []FaultSpec{{}}}}},
		{"campaign no faults", JobRequest{Kind: KindCampaign, Campaign: &CampaignSpec{Runs: 10}}},
		{"campaign bad model", JobRequest{Kind: KindCampaign, Campaign: &CampaignSpec{Runs: 10, Faults: []FaultSpec{{Model: "gamma-ray"}}}}},
		{"campaign bad branch", JobRequest{Kind: KindCampaign, Campaign: &CampaignSpec{Runs: 10, Faults: []FaultSpec{{Branch: "imaginary"}}}}},
		{"campaign with netlist", JobRequest{Kind: KindCampaign, Design: DesignSpec{Netlist: "module m\nend\n"}, Campaign: &CampaignSpec{Runs: 10, Faults: []FaultSpec{{}}}}},
		{"attack without spec", JobRequest{Kind: KindDFA}},
		{"bad cipher", JobRequest{Kind: KindLint, Design: DesignSpec{Cipher: "des"}}},
		{"bad scheme", JobRequest{Kind: KindLint, Design: DesignSpec{Scheme: "hope"}}},
		{"bad entropy", JobRequest{Kind: KindLint, Design: DesignSpec{Entropy: "vibes"}}},
		{"bad engine", JobRequest{Kind: KindLint, Design: DesignSpec{Engine: "hdl"}}},
	}
	for _, tc := range cases {
		if err := tc.req.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	ok := campaignRequest(100, "prime")
	if err := ok.Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
}

// The service's campaign result must be bit-identical to a direct
// library-level Campaign.Execute with the same parameters.
func TestCampaignJobMatchesDirectExecute(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, CheckpointEveryRuns: 128})
	st, err := s.Submit(campaignRequest(300, "prime"))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateDone {
		t.Fatalf("job finished %s (%s)", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Campaign == nil {
		t.Fatal("done campaign job has no campaign result")
	}

	direct := directCampaignResult(t, 300, "prime")
	if *final.Result.Campaign != direct {
		t.Errorf("service result %+v != direct %+v", *final.Result.Campaign, direct)
	}
}

// directCampaignResult runs the same campaign through the library path.
func directCampaignResult(t *testing.T, runs int, entropy string) CampaignResult {
	t.Helper()
	req := campaignRequest(runs, entropy)
	d, err := BuildDesign(req.Design)
	if err != nil {
		t.Fatal(err)
	}
	camp, err := buildCampaign(d, req.Campaign, EngineDefaults{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	return NewCampaignResult(res)
}

func TestCancelQueuedJob(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, CheckpointEveryRuns: 64})
	// A long first job keeps the single worker busy while we cancel the
	// second, still-queued one.
	first, err := s.Submit(campaignRequest(4096, "prime"))
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Submit(campaignRequest(4096, "prime"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Cancel(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("queued job after cancel: %s", st.State)
	}
	if _, err := s.Cancel(first.ID); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, first.ID)
	if final.State != StateCanceled {
		t.Fatalf("running job after cancel finished %s", final.State)
	}
	if _, err := s.Cancel("j999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cancel of unknown job: %v", err)
	}
}

func TestQueueShedsLoadWhenFull(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, QueueDepth: 1, CheckpointEveryRuns: 64})
	// Occupy the worker, then fill the single-slot shard backlog.
	busy, err := s.Submit(campaignRequest(1<<20, "prime"))
	if err != nil {
		t.Fatal(err)
	}
	sawFull := false
	ids := []string{busy.ID}
	for i := 0; i < 8; i++ {
		st, err := s.Submit(campaignRequest(64, "prime"))
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	if !sawFull {
		t.Error("queue never reported full")
	}
	for _, id := range ids {
		s.Cancel(id)
	}
}

func TestAreaAndLintJobs(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})

	area, err := s.Submit(JobRequest{Kind: KindArea, Design: DesignSpec{Cipher: "present80", Scheme: "naive"}})
	if err != nil {
		t.Fatal(err)
	}
	lintClean, err := s.Submit(JobRequest{Kind: KindLint, Design: DesignSpec{Cipher: "present80", Scheme: "three-in-one"}})
	if err != nil {
		t.Fatal(err)
	}

	st := waitTerminal(t, s, area.ID)
	if st.State != StateDone || st.Result == nil || st.Result.Area == nil {
		t.Fatalf("area job: %s (%s)", st.State, st.Error)
	}
	if st.Result.Area.Total <= 0 || st.Result.Area.CellCount <= 0 {
		t.Errorf("area result empty: %+v", st.Result.Area)
	}

	st = waitTerminal(t, s, lintClean.ID)
	if st.State != StateDone || st.Result == nil || st.Result.Lint == nil {
		t.Fatalf("lint job: %s (%s)", st.State, st.Error)
	}
	if !st.Result.Lint.Clean() {
		t.Errorf("three-in-one core should lint clean, found %d findings", st.Result.Lint.Findings)
	}
}

// An uploaded text netlist reaches the linter through ReadTextLax.
func TestLintJobOnUploadedNetlist(t *testing.T) {
	d, err := core.Build(present.Spec(), core.Options{Scheme: core.SchemeThreeInOne, Engine: synth.EngineANF})
	if err != nil {
		t.Fatal(err)
	}
	var nl bytes.Buffer
	if err := d.Mod.WriteText(&nl); err != nil {
		t.Fatal(err)
	}

	s := newTestService(t, Config{Workers: 1})
	st, err := s.Submit(JobRequest{
		Kind:   KindLint,
		Design: DesignSpec{Netlist: nl.String()},
		Lint:   &LintSpec{Rules: []string{"structural"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateDone || final.Result == nil || final.Result.Lint == nil {
		t.Fatalf("netlist lint job: %s (%s)", final.State, final.Error)
	}

	if _, err := netlist.ReadTextLax(strings.NewReader(nl.String())); err != nil {
		t.Fatalf("round-trip sanity: %v", err)
	}
}

func TestAttackJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("attack jobs build several designs")
	}
	s := newTestService(t, Config{Workers: 2})
	sbox, bit := 13, 2

	dfa, err := s.Submit(JobRequest{
		Kind:   KindDFA,
		Design: DesignSpec{Cipher: "present80", Scheme: "unprotected"},
		Attack: &AttackSpec{Key: testKey, PairsPerNibble: 16, Model: "bit-flip"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sifa, err := s.Submit(JobRequest{
		Kind:   KindSIFA,
		Design: DesignSpec{Cipher: "present80", Scheme: "naive"},
		Attack: &AttackSpec{Key: testKey, Sbox: &sbox, Bit: &bit, Injections: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	fta, err := s.Submit(JobRequest{
		Kind:   KindFTA,
		Design: DesignSpec{Cipher: "present80", Scheme: "naive"},
		Attack: &AttackSpec{Key: testKey, Sbox: &sbox, Repeats: 32, ProfilePTs: 4, AttackPTs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}

	st := waitTerminal(t, s, dfa.ID)
	if st.State != StateDone || st.Result == nil || st.Result.DFA == nil {
		t.Fatalf("dfa job: %s (%s)", st.State, st.Error)
	}
	if !st.Result.DFA.Succeeded {
		t.Errorf("DFA against the unprotected core should succeed: %s", st.Result.DFA.Detail)
	}
	if got := [2]U64{st.Result.DFA.RecoveredKey[0], st.Result.DFA.RecoveredKey[1]}; got != testKey {
		t.Errorf("recovered key %v != %v", got, testKey)
	}

	st = waitTerminal(t, s, sifa.ID)
	if st.State != StateDone || st.Result == nil || st.Result.SIFA == nil {
		t.Fatalf("sifa job: %s (%s)", st.State, st.Error)
	}
	st = waitTerminal(t, s, fta.ID)
	if st.State != StateDone || st.Result == nil || st.Result.FTA == nil {
		t.Fatalf("fta job: %s (%s)", st.State, st.Error)
	}
}

func TestMetricsCountJobs(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, CheckpointEveryRuns: 64})
	st, err := s.Submit(campaignRequest(128, "prime"))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, st.ID)
	snap := s.Metrics.Snapshot()
	if snap["jobs_submitted_total"] != 1 || snap["jobs_completed_total"] != 1 {
		t.Errorf("job counters: %v", snap)
	}
	if snap["runs_simulated_total"] != 128 {
		t.Errorf("runs_simulated_total = %d, want 128", snap["runs_simulated_total"])
	}
	if snap["checkpoints_total"] < 2 {
		t.Errorf("checkpoints_total = %d, want >= 2", snap["checkpoints_total"])
	}
}

func TestWatchDeliversProgressAndResult(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, CheckpointEveryRuns: 64})
	// Keep the single worker busy until the watch is subscribed so no
	// progress event can fire before we listen.
	blocker, err := s.Submit(campaignRequest(1<<20, "prime"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Submit(campaignRequest(320, "prime"))
	if err != nil {
		t.Fatal(err)
	}
	ch, off, err := s.Watch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer off()
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	progress, result := 0, 0
	lastDone := -1
	deadline := time.After(2 * time.Minute)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				if result == 0 {
					// The result event can be dropped under load;
					// terminal close is the authoritative signal.
					final := waitTerminal(t, s, st.ID)
					if final.State != StateDone {
						t.Fatalf("job %s", final.State)
					}
				}
				if progress == 0 {
					t.Error("no progress events delivered")
				}
				return
			}
			switch ev.Type {
			case "progress":
				progress++
				if ev.Progress.Done <= lastDone {
					t.Errorf("progress not monotone: %d after %d", ev.Progress.Done, lastDone)
				}
				lastDone = ev.Progress.Done
			case "result":
				result++
				if ev.Job == nil || ev.Job.Result == nil {
					t.Error("result event without payload")
				}
			}
		case <-deadline:
			t.Fatal("watch timed out")
		}
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(campaignRequest(64, "prime")); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: %v", err)
	}
	// Drain is idempotent.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
