package fault

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/sim"
)

func TestFaultApplySemantics(t *testing.T) {
	v := uint64(0b1010)
	if (Fault{Model: StuckAt0}).apply(v) != 0 {
		t.Error("stuck-at-0 with all lanes should clear")
	}
	if (Fault{Model: StuckAt1}).apply(v) != ^uint64(0) {
		t.Error("stuck-at-1 with all lanes should set")
	}
	if (Fault{Model: BitFlip}).apply(v) != ^v {
		t.Error("flip should complement")
	}
	lane0 := Fault{Model: StuckAt1, Lanes: 1}
	if lane0.apply(0) != 1 {
		t.Error("lane mask not honoured")
	}
}

func TestFaultWindows(t *testing.T) {
	f := At(1, BitFlip, 5)
	if f.active(4) || !f.active(5) || f.active(6) {
		t.Error("single-cycle window wrong")
	}
	a := Always(1, BitFlip)
	if !a.active(0) || !a.active(1<<20) {
		t.Error("permanent fault not always active")
	}
	w := Fault{Net: 1, Model: BitFlip, FromCycle: 2, ToCycle: 4}
	for c, want := range map[int]bool{1: false, 2: true, 3: true, 4: true, 5: false} {
		if w.active(c) != want {
			t.Errorf("window active(%d) = %v", c, w.active(c))
		}
	}
}

func TestInjectorOnCombinationalNet(t *testing.T) {
	m := netlist.New("t")
	in := m.AddInput("x", 1)
	mid := m.Buf(in[0])
	m.AddOutput("y", netlist.Bus{m.Buf(mid)})
	s := sim.New(m)
	s.SetInjector(NewInjector(Always(mid, StuckAt1)))
	s.SetInputBroadcast("x", 0)
	s.Eval()
	if s.Output("y")[0] != 1 {
		t.Fatal("stuck-at-1 not applied to combinational net")
	}
}

func TestInjectorOnPrimaryInput(t *testing.T) {
	m := netlist.New("t")
	in := m.AddInput("x", 1)
	m.AddOutput("y", netlist.Bus{m.Buf(in[0])})
	s := sim.New(m)
	s.SetInjector(NewInjector(Always(in[0], BitFlip)))
	s.SetInputBroadcast("x", 0)
	s.Eval()
	if s.Output("y")[0] != 1 {
		t.Fatal("fault on primary input not applied at load time")
	}
}

func TestInjectorOnRegisterOutput(t *testing.T) {
	m := netlist.New("t")
	in := m.AddInput("x", 1)
	q := m.DFF(in[0])
	m.AddOutput("y", netlist.Bus{q})
	s := sim.New(m)
	s.SetInjector(NewInjector(At(q, StuckAt1, 0)))
	s.SetInputBroadcast("x", 0)
	s.Step() // cycle 0: Q latches 0 but the fault forces 1
	if s.Output("y")[0] != 1 {
		t.Fatal("fault on DFF output not applied at clocking")
	}
	s.Step() // cycle 1: fault expired, Q latches clean 0
	if s.Output("y")[0] != 0 {
		t.Fatal("expired register fault persisted")
	}
}

func TestMultipleFaultsCompose(t *testing.T) {
	m := netlist.New("t")
	in := m.AddInput("x", 2)
	a := m.Buf(in[0])
	b := m.Buf(in[1])
	m.AddOutput("y", netlist.Bus{m.And(a, b)})
	s := sim.New(m)
	s.SetInjector(NewInjector(Always(a, StuckAt1), Always(b, StuckAt1)))
	s.SetInputBroadcast("x", 0)
	s.Eval()
	if s.Output("y")[0] != 1 {
		t.Fatal("both faults should force the AND output high")
	}
}

func TestIsolatePin(t *testing.T) {
	m := netlist.New("t")
	in := m.AddInput("x", 2)
	shared := m.Buf(in[0])
	and1 := m.And(shared, in[1])
	and2 := m.And(shared, in[1])
	m.AddOutput("y", netlist.Bus{and1, and2})

	// Isolate pin 0 of the first AND; faulting the probe must not
	// disturb the second AND's view of `shared`.
	ci := m.Driver(and1)
	probe, err := IsolatePin(m, ci, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(m)
	s.SetInjector(NewInjector(Always(probe, BitFlip)))
	s.SetInputBroadcast("x", 0b10) // x0=0, x1=1
	s.Eval()
	out := s.Output("y")[0]
	if out&1 != 1 { // and1 sees flipped 0 -> 1, so output 1
		t.Fatal("pin fault not applied to the isolated pin")
	}
	if out>>1&1 != 0 { // and2 still sees the clean 0
		t.Fatal("pin fault leaked to another gate")
	}
}

func TestIsolatePinErrors(t *testing.T) {
	m := netlist.New("t")
	in := m.AddInput("x", 2)
	a := m.And(in[0], in[1])
	m.AddOutput("y", netlist.Bus{a})
	if _, err := IsolatePin(m, 99, 0); err == nil {
		t.Error("bad cell index should fail")
	}
	if _, err := IsolatePin(m, m.Driver(a), 2); err == nil {
		t.Error("bad pin index should fail")
	}
}

func TestFindAndGateWithInput(t *testing.T) {
	m := netlist.New("t")
	in := m.AddInput("x", 2)
	a := m.And(in[0], in[1])
	m.DriverCell(a).Tag = "b0.sbox03.mono"
	m.AddOutput("y", netlist.Bus{a})
	ci, other, ok := FindAndGateWithInput(m, in[0], "b0.sbox03")
	if !ok || ci != m.Driver(a) || other != 1 {
		t.Fatalf("lookup failed: %v %v %v", ci, other, ok)
	}
	if _, _, ok := FindAndGateWithInput(m, in[0], "b1.sbox"); ok {
		t.Error("prefix filter not applied")
	}
}

func TestOutcomeStrings(t *testing.T) {
	if OutcomeIneffective.String() != "ineffective" ||
		OutcomeDetected.String() != "detected" ||
		OutcomeEffective.String() != "effective" {
		t.Error("outcome names wrong")
	}
	if StuckAt0.String() != "stuck-at-0" || BitFlip.String() != "bit-flip" {
		t.Error("model names wrong")
	}
}
