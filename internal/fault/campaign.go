package fault

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spn"
)

// Outcome classifies one faulted encryption, following the terminology of
// the SIFA literature and the paper's Section IV-A.
type Outcome int

// Possible run outcomes.
const (
	// OutcomeIneffective: the fault did not change the released output
	// (it hit a value it could not alter). SIFA feeds on these runs.
	OutcomeIneffective Outcome = iota
	// OutcomeDetected: the countermeasure's comparator fired and the
	// recovery output (garbage) was released.
	OutcomeDetected
	// OutcomeEffective: a *wrong* ciphertext was released without
	// detection — the dangerous case that enables DFA.
	OutcomeEffective
	// OutcomeCorrected: the countermeasure sensed a disagreement and
	// still released the *correct* ciphertext — only correcting
	// (majority-vote) designs produce this outcome; on detect-only
	// designs a sensed fault always classifies as OutcomeDetected.
	OutcomeCorrected
	outcomeCount
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeIneffective:
		return "ineffective"
	case OutcomeDetected:
		return "detected"
	case OutcomeEffective:
		return "effective"
	case OutcomeCorrected:
		return "corrected"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Run records one simulated encryption of a campaign.
type Run struct {
	PT uint64
	// CT is the released output (garbage when detected).
	CT uint64
	// RefCT is the fault-free ciphertext from the software reference.
	RefCT uint64
	// Lambda0 is the λ word supplied at the load cycle (0 when the
	// scheme is not randomised).
	Lambda0 uint64
	Outcome Outcome
}

// Campaign describes a fault-simulation campaign over one design: the same
// fault set across many runs with fresh plaintexts and λ, exactly the
// protocol of the paper's Section IV-A. Faults may name any number of
// injection points — multi-point tuples run exactly like single faults —
// and Persistent, when set, additionally corrupts the cipher's S-box table
// for the whole campaign.
type Campaign struct {
	Design *core.Design
	Key    spn.KeyState
	Faults []Fault
	Runs   int
	Seed   uint64
	// Engine configures the execution engine: lane width, parallelism and
	// dispatch granularity. The zero value is the legacy configuration
	// (single-word passes, GOMAXPROCS workers, one lane group per
	// dispatch). Execution configuration is pure policy — results, golden
	// digests and stored content addresses are identical across all valid
	// configurations.
	Engine EngineConfig
	// Persistent, when non-nil, corrupts one S-box table entry before
	// the campaign starts: every branch of every run computes with the
	// corrupted table, so the corruption survives across encryptions (the
	// PFA fault model). Classification still compares against the clean
	// reference cipher.
	Persistent *PersistentFault

	// persistentDesign memoises the corrupted rebuild across chunked
	// ExecuteBatches calls of one job.
	persistentDesign *core.Design
}

// Result aggregates campaign outcomes.
type Result struct {
	Total  int
	Counts [outcomeCount]int
}

// Ineffective, Detected and Effective return the per-outcome counts.
func (r Result) Ineffective() int { return r.Counts[OutcomeIneffective] }

// Detected returns the number of detected runs.
func (r Result) Detected() int { return r.Counts[OutcomeDetected] }

// Effective returns the number of undetected wrong outputs.
func (r Result) Effective() int { return r.Counts[OutcomeEffective] }

// Corrected returns the number of sensed-and-recovered runs.
func (r Result) Corrected() int { return r.Counts[OutcomeCorrected] }

// String summarises the result.
func (r Result) String() string {
	s := fmt.Sprintf("%d runs: %d ineffective, %d detected, %d effective (escaped)",
		r.Total, r.Ineffective(), r.Detected(), r.Effective())
	if c := r.Corrected(); c > 0 {
		s += fmt.Sprintf(", %d corrected", c)
	}
	return s
}

// EngineVersion identifies the campaign engine's deterministic result
// semantics: the (Seed, batch) randomness derivation, the lane width, the
// outcome classification. It is part of every stored batch's content
// address, so bumping it when any of those change invalidates all cached
// results at once instead of silently replaying stale ones.
//
// Version 2 adds the persistent-fault model and the corrected outcome
// class. Campaigns that cannot exercise either — no persistent fault and a
// non-correcting design — classify bit-identically to version 1, so their
// content addresses keep the legacy engine string (see EngineID) and every
// pre-existing cached batch stays valid.
const EngineVersion = "scone-campaign/2-lanes64"

// EngineVersionLegacy is version 1's identifier, still emitted for
// campaigns whose results are bit-identical under both versions.
const EngineVersionLegacy = "scone-campaign/1-lanes64"

// EngineID returns the engine string that addresses this campaign's stored
// batches: the legacy identifier when the campaign's semantics predate
// version 2 (keeping old digests valid), the current one otherwise.
func (c *Campaign) EngineID() string {
	if c.Persistent == nil && !c.Design.Opts.Scheme.Correcting() {
		return EngineVersionLegacy
	}
	return EngineVersion
}

// NumBatches returns the number of sim.Lanes-wide batches the campaign is
// split into. Batch b derives all of its randomness from (Seed, b), so any
// contiguous batch range can be executed — or re-executed — independently
// with ExecuteBatches and the combined counts and observer stream are
// identical to a single uninterrupted Execute.
func (c *Campaign) NumBatches() int {
	return (c.Runs + sim.Lanes - 1) / sim.Lanes
}

// BatchRuns returns the run count of batch b: sim.Lanes for every batch
// except the campaign's final one, which carries the remainder.
func (c *Campaign) BatchRuns(b int) int {
	n := sim.Lanes
	if rem := c.Runs - b*sim.Lanes; rem < n {
		n = rem
	}
	return n
}

// Execute runs the campaign. observe, when non-nil, is called once per run
// from the calling goroutine, in a deterministic order given the seed:
// batch by batch, lane by lane, regardless of how the batches were
// scheduled across workers. Without an observer the workers aggregate
// outcome counts directly and no Run is retained, so memory stays flat no
// matter how large the campaign is.
func (c *Campaign) Execute(observe func(Run)) (Result, error) {
	return c.ExecuteContext(context.Background(), observe)
}

// ExecuteContext is Execute with cancellation: between batches the workers
// watch ctx and exit early once it is done. On cancellation the counts (and
// observer stream) of a contiguous prefix of batches are returned together
// with ctx.Err(); a later ExecuteBatches from the next batch boundary
// continues the campaign with bit-identical final results.
func (c *Campaign) ExecuteContext(ctx context.Context, observe func(Run)) (Result, error) {
	return c.ExecuteBatches(ctx, 0, c.NumBatches(), observe)
}

// batchOut carries one finished batch from a worker to the reorder buffer.
type batchOut struct {
	batch int
	runs  []Run // retained only when an observer is attached
	res   Result
}

// ExecuteBatches runs the half-open batch range [first, last) of the
// campaign. It is the checkpoint/resume primitive: a service that persists
// (completed-batch count, accumulated counts) after each call can be killed
// and later resume from the recorded boundary, and the summed Result is
// bit-identical to an uninterrupted Execute with the same seed.
//
// The returned Result covers a contiguous prefix of the range: batches are
// handed to workers in order and a dispatched batch always runs to
// completion, so cancellation can only trim whole batches off the tail.
// When the range is cut short the partial Result is returned with ctx.Err();
// Result.Total / sim.Lanes then gives the number of completed batches
// (every completed batch is full, because only the campaign's final batch
// can be partial and it is always the last to complete).
func (c *Campaign) ExecuteBatches(ctx context.Context, first, last int, observe func(Run)) (Result, error) {
	return c.ExecuteBatchesFunc(ctx, first, last, observe, nil)
}

// ExecuteBatchesFunc is ExecuteBatches with a per-batch hook: onBatch, when
// non-nil, is called from the calling goroutine once per completed batch, in
// batch order, with that batch's own Result. It is the result store's feed —
// a caller can persist each batch tally under its content address while the
// aggregate Result and observer stream stay exactly those of ExecuteBatches.
// Like observe, onBatch sees a contiguous prefix of the range on
// cancellation.
func (c *Campaign) ExecuteBatchesFunc(ctx context.Context, first, last int, observe func(Run), onBatch func(batch int, res Result)) (Result, error) {
	if c.Runs <= 0 {
		return Result{}, fmt.Errorf("fault: campaign needs a positive run count")
	}
	if batches := c.NumBatches(); first < 0 || last > batches || first > last {
		return Result{}, fmt.Errorf("fault: batch range [%d,%d) outside the campaign's %d batches", first, last, batches)
	}
	cfg, err := c.Engine.resolve()
	if err != nil {
		return Result{}, err
	}
	simD, err := c.simDesign()
	if err != nil {
		return Result{}, err
	}
	compiled, err := sim.CompileCached(simD.Mod)
	if err != nil {
		return Result{}, err
	}
	if first == last {
		return Result{}, nil
	}
	numShards := (last - first + cfg.shardBatches - 1) / cfg.shardBatches
	workers := cfg.workers
	if workers > numShards {
		workers = numShards
	}

	inj := NewInjector(c.Faults...)
	met.Load().setLaneWords(cfg.laneWords)

	shardCh := make(chan [2]int)
	outCh := make(chan batchOut, workers*cfg.laneWords)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			gr := c.newGroupRunner(cfg.laneWords, simD, compiled, inj)
			outs := make([]batchOut, cfg.laneWords)
			for sh := range shardCh {
				// Walk the shard one lane group at a time: up to
				// laneWords consecutive batches per simulator pass.
				for b := sh[0]; b < sh[1]; b += cfg.laneWords {
					g := cfg.laneWords
					if b+g > sh[1] {
						g = sh[1] - b
					}
					var start time.Time
					mm := met.Load()
					if mm != nil {
						start = time.Now()
					}
					for j := 0; j < g; j++ {
						outs[j] = batchOut{batch: b + j}
					}
					gr.runGroup(b, g, outs[:g], observe != nil)
					if mm != nil {
						ns := time.Since(start).Nanoseconds() / int64(g)
						for j := 0; j < g; j++ {
							mm.countBatch(ns, len(c.Faults), outs[j].res)
						}
					}
					for j := 0; j < g; j++ {
						outCh <- outs[j]
					}
				}
			}
		}()
	}
	// The feeder hands each worker a contiguous shard of whole lane
	// groups and stops dispatching once ctx is done; shards already
	// handed to a worker run to completion, so the completed set is a
	// contiguous prefix of the range.
	go func() {
		defer close(shardCh)
		for lo := first; lo < last; lo += cfg.shardBatches {
			hi := lo + cfg.shardBatches
			if hi > last {
				hi = last
			}
			// Checking Err first makes an already-cancelled context
			// deterministic: select alone picks randomly when both the
			// send and Done are ready.
			if ctx.Err() != nil {
				return
			}
			select {
			case shardCh <- [2]int{lo, hi}:
				met.Load().countShard()
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outCh)
	}()

	// Batches finish out of order; the reorder buffer delivers runs to
	// the observer batch by batch, lane by lane, regardless of worker
	// scheduling, and bounds retained memory by the workers' spread
	// instead of the whole campaign.
	var res Result
	mm := met.Load()
	pending := make(map[int]batchOut)
	next := first
	for out := range outCh {
		pending[out.batch] = out
		for {
			o, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			res.Total += o.res.Total
			for i, n := range o.res.Counts {
				res.Counts[i] += n
			}
			for _, r := range o.runs {
				observe(r)
			}
			if onBatch != nil {
				onBatch(next, o.res)
			}
			next++
		}
		mm.setReorderDepth(len(pending))
	}
	if next < last {
		return res, ctx.Err()
	}
	return res, nil
}
