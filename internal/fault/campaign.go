package fault

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/spn"
)

// Outcome classifies one faulted encryption, following the terminology of
// the SIFA literature and the paper's Section IV-A.
type Outcome int

// Possible run outcomes.
const (
	// OutcomeIneffective: the fault did not change the released output
	// (it hit a value it could not alter). SIFA feeds on these runs.
	OutcomeIneffective Outcome = iota
	// OutcomeDetected: the countermeasure's comparator fired and the
	// recovery output (garbage) was released.
	OutcomeDetected
	// OutcomeEffective: a *wrong* ciphertext was released without
	// detection — the dangerous case that enables DFA.
	OutcomeEffective
	outcomeCount
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeIneffective:
		return "ineffective"
	case OutcomeDetected:
		return "detected"
	case OutcomeEffective:
		return "effective"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Run records one simulated encryption of a campaign.
type Run struct {
	PT uint64
	// CT is the released output (garbage when detected).
	CT uint64
	// RefCT is the fault-free ciphertext from the software reference.
	RefCT uint64
	// Lambda0 is the λ word supplied at the load cycle (0 when the
	// scheme is not randomised).
	Lambda0 uint64
	Outcome Outcome
}

// Campaign describes a fault-simulation campaign over one design: the same
// fault location and model across many runs with fresh plaintexts and λ,
// exactly the protocol of the paper's Section IV-A.
type Campaign struct {
	Design *core.Design
	Key    spn.KeyState
	Faults []Fault
	Runs   int
	Seed   uint64
	// Workers sets the goroutine count (default: GOMAXPROCS).
	Workers int
}

// Result aggregates campaign outcomes.
type Result struct {
	Total  int
	Counts [outcomeCount]int
}

// Ineffective, Detected and Effective return the per-outcome counts.
func (r Result) Ineffective() int { return r.Counts[OutcomeIneffective] }

// Detected returns the number of detected runs.
func (r Result) Detected() int { return r.Counts[OutcomeDetected] }

// Effective returns the number of undetected wrong outputs.
func (r Result) Effective() int { return r.Counts[OutcomeEffective] }

// String summarises the result.
func (r Result) String() string {
	return fmt.Sprintf("%d runs: %d ineffective, %d detected, %d effective (escaped)",
		r.Total, r.Ineffective(), r.Detected(), r.Effective())
}

// Execute runs the campaign. observe, when non-nil, is called once per run
// from the calling goroutine (after the parallel phase), in a deterministic
// order given the seed: batch by batch, lane by lane, regardless of how the
// batches were scheduled across workers. Without an observer the workers
// aggregate outcome counts directly and no Run is retained, so memory stays
// flat no matter how large the campaign is.
func (c *Campaign) Execute(observe func(Run)) (Result, error) {
	if c.Runs <= 0 {
		return Result{}, fmt.Errorf("fault: campaign needs a positive run count")
	}
	compiled, err := sim.CompileCached(c.Design.Mod)
	if err != nil {
		return Result{}, err
	}
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batches := (c.Runs + sim.Lanes - 1) / sim.Lanes
	if workers > batches {
		workers = batches
	}

	inj := NewInjector(c.Faults...)
	runsPerBatch := make([]int, batches)
	for b := range runsPerBatch {
		n := sim.Lanes
		if rem := c.Runs - b*sim.Lanes; rem < n {
			n = rem
		}
		runsPerBatch[b] = n
	}

	// all is only populated when an observer needs the deterministic
	// replay; count-only campaigns aggregate inside the workers instead.
	var all [][]Run
	if observe != nil {
		all = make([][]Run, batches)
	}
	partial := make([]Result, workers)
	var wg sync.WaitGroup
	batchCh := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runner := core.NewRunnerFrom(c.Design, compiled)
			runner.S.SetInjector(inj)
			res := &partial[w]
			emit := func(r Run) {
				res.Total++
				res.Counts[r.Outcome]++
			}
			for b := range batchCh {
				if observe != nil {
					runs := make([]Run, 0, runsPerBatch[b])
					c.runBatch(runner, b, runsPerBatch[b], func(r Run) { runs = append(runs, r) })
					all[b] = runs
				} else {
					c.runBatch(runner, b, runsPerBatch[b], emit)
				}
			}
		}(w)
	}
	for b := 0; b < batches; b++ {
		batchCh <- b
	}
	close(batchCh)
	wg.Wait()

	var res Result
	if observe == nil {
		for _, p := range partial {
			res.Total += p.Total
			for o, n := range p.Counts {
				res.Counts[o] += n
			}
		}
		return res, nil
	}
	for _, batch := range all {
		for _, run := range batch {
			res.Total++
			res.Counts[run.Outcome]++
			observe(run)
		}
	}
	return res, nil
}

// runBatch executes one 64-lane batch, handing each finished Run to emit in
// lane order. Each batch derives its randomness from (seed, batch index),
// so results are independent of scheduling.
func (c *Campaign) runBatch(runner *core.Runner, batch, n int, emit func(Run)) {
	d := c.Design
	gen := rng.NewXoshiro(c.Seed ^ (uint64(batch)+1)*0x9E3779B97F4A7C15)
	pts := make([]uint64, n)
	garbage := make([]uint64, n)
	for i := range pts {
		pts[i] = gen.Uint64()
		garbage[i] = gen.Uint64()
	}

	var lf core.LambdaFunc
	var lambda0 []uint64
	if d.LambdaWidth > 0 {
		if d.Opts.Entropy == core.EntropyPrime {
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = gen.Bits(d.LambdaWidth)
			}
			lambda0 = vals
			lf = core.LambdaConst(vals)
		} else {
			// Fresh λ per cycle, deterministic in the cycle index:
			// pre-draw cycle 0 so it can be recorded.
			perCycle := make(map[int][]uint64)
			lf = func(cyc int) []uint64 {
				if v, ok := perCycle[cyc]; ok {
					return v
				}
				vals := make([]uint64, n)
				for i := range vals {
					vals[i] = gen.Bits(d.LambdaWidth)
				}
				perCycle[cyc] = vals
				return vals
			}
			lambda0 = lf(0)
		}
	}

	res := runner.EncryptBatch(pts, c.Key, garbage, lf)
	for i := 0; i < n; i++ {
		ref := d.Spec.Encrypt(pts[i], c.Key)
		r := Run{PT: pts[i], CT: res.CT[i], RefCT: ref}
		if lambda0 != nil {
			r.Lambda0 = lambda0[i]
		}
		switch {
		case res.Fault[i]:
			r.Outcome = OutcomeDetected
		case res.CT[i] == ref:
			r.Outcome = OutcomeIneffective
		default:
			r.Outcome = OutcomeEffective
		}
		emit(r)
	}
}
