// Package fault is the gate-level fault-injection engine — the VerFI-like
// flow the paper validates its countermeasure with. It defines fault
// models (stuck-at-0, stuck-at-1, bit flip), attaches them to netlist nets
// over clock-cycle windows, implements the simulator's Injector interface,
// and runs classification campaigns that bin every simulated encryption
// into ineffective / detected / effective outcomes.
package fault

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// Model enumerates the supported fault models.
type Model int

// Fault models.
const (
	// StuckAt0 forces the net to logic 0 while active.
	StuckAt0 Model = iota
	// StuckAt1 forces the net to logic 1 while active.
	StuckAt1
	// BitFlip complements the net's value while active (transient
	// flip).
	BitFlip
)

// String names the model as the experiment reports print it.
func (m Model) String() string {
	switch m {
	case StuckAt0:
		return "stuck-at-0"
	case StuckAt1:
		return "stuck-at-1"
	case BitFlip:
		return "bit-flip"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// AllCycles marks a fault active in every cycle.
const AllCycles = -1

// Fault is one injected fault: a model applied to a net during a cycle
// window (inclusive) on a set of simulation lanes.
type Fault struct {
	Net   netlist.Net
	Model Model
	// FromCycle..ToCycle is the active window; AllCycles in FromCycle
	// makes the fault permanent.
	FromCycle, ToCycle int
	// Lanes masks which of the 64 parallel runs see the fault; zero
	// means all lanes.
	Lanes uint64
}

// At returns a fault active during exactly one cycle.
func At(net netlist.Net, model Model, cycle int) Fault {
	return Fault{Net: net, Model: model, FromCycle: cycle, ToCycle: cycle}
}

// Always returns a permanently active fault.
func Always(net netlist.Net, model Model) Fault {
	return Fault{Net: net, Model: model, FromCycle: AllCycles, ToCycle: AllCycles}
}

func (f Fault) active(cycle int) bool {
	if f.FromCycle == AllCycles {
		return true
	}
	return cycle >= f.FromCycle && cycle <= f.ToCycle
}

func (f Fault) apply(v uint64) uint64 {
	mask := f.Lanes
	if mask == 0 {
		mask = ^uint64(0)
	}
	switch f.Model {
	case StuckAt0:
		return v &^ mask
	case StuckAt1:
		return v | mask
	case BitFlip:
		return v ^ mask
	default:
		return v
	}
}

// String describes the fault.
func (f Fault) String() string {
	window := "always"
	if f.FromCycle != AllCycles {
		window = fmt.Sprintf("cycles %d..%d", f.FromCycle, f.ToCycle)
	}
	return fmt.Sprintf("%s on net %d, %s", f.Model, f.Net, window)
}

// Injector applies a set of faults; it implements sim.Injector.
type Injector struct {
	faults []Fault
	byNet  map[netlist.Net][]int
}

// NewInjector builds an injector over the given faults.
func NewInjector(faults ...Fault) *Injector {
	inj := &Injector{byNet: make(map[netlist.Net][]int)}
	for _, f := range faults {
		inj.faults = append(inj.faults, f)
		inj.byNet[f.Net] = append(inj.byNet[f.Net], len(inj.faults)-1)
	}
	return inj
}

// Nets implements sim.Injector.
func (inj *Injector) Nets() []netlist.Net {
	nets := make([]netlist.Net, 0, len(inj.byNet))
	for n := range inj.byNet {
		nets = append(nets, n)
	}
	return nets
}

// Apply implements sim.Injector.
func (inj *Injector) Apply(cycle int, n netlist.Net, v uint64) uint64 {
	for _, fi := range inj.byNet[n] {
		if inj.faults[fi].active(cycle) {
			v = inj.faults[fi].apply(v)
		}
	}
	return v
}

// Faults returns the injector's fault list.
func (inj *Injector) Faults() []Fault { return inj.faults }

var _ sim.Injector = (*Injector)(nil)
