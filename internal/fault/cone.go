package fault

import (
	"repro/internal/netlist"
)

// Static fault-propagation analysis: structural reachability from a fault
// site to observation points, crossing registers. A site that cannot reach
// any output can never produce an effective or detected run — the cheap
// necessary condition a fault-simulation campaign's results must respect
// (the campaign tests cross-check the two).

// ReachabilityIndex precomputes the fan-out graph of a module so many
// reachability queries are cheap.
type ReachabilityIndex struct {
	m *netlist.Module
	// readers[n] lists the cells reading net n.
	readers [][]int32
}

// NewReachabilityIndex builds the fan-out index.
func NewReachabilityIndex(m *netlist.Module) *ReachabilityIndex {
	idx := &ReachabilityIndex{
		m:       m,
		readers: make([][]int32, m.NumNets()+1),
	}
	for ci := range m.Cells {
		for _, in := range m.Cells[ci].Inputs() {
			idx.readers[in] = append(idx.readers[in], int32(ci))
		}
	}
	return idx
}

// Reaches reports whether a value change on src can structurally propagate
// to any of the target nets (crossing DFFs: a change on a D input can
// appear on the Q output one cycle later). It is a NECESSARY condition for
// a fault at src to ever be effective or detected at the targets;
// structural reach does not guarantee logical propagation (the fault can
// still be masked).
func (idx *ReachabilityIndex) Reaches(src netlist.Net, targets []netlist.Net) bool {
	want := make(map[netlist.Net]bool, len(targets))
	for _, t := range targets {
		want[t] = true
	}
	if want[src] {
		return true
	}
	seen := make([]bool, idx.m.NumNets()+1)
	seen[src] = true
	stack := []netlist.Net{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ci := range idx.readers[n] {
			out := idx.m.Cells[ci].Out
			if seen[out] {
				continue
			}
			seen[out] = true
			if want[out] {
				return true
			}
			stack = append(stack, out)
		}
	}
	return false
}

// Cone returns every net reachable forward from src (inclusive), the
// observability cone a fault at src can influence.
func (idx *ReachabilityIndex) Cone(src netlist.Net) []netlist.Net {
	seen := make([]bool, idx.m.NumNets()+1)
	seen[src] = true
	out := []netlist.Net{src}
	stack := []netlist.Net{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ci := range idx.readers[n] {
			o := idx.m.Cells[ci].Out
			if !seen[o] {
				seen[o] = true
				out = append(out, o)
				stack = append(stack, o)
			}
		}
	}
	return out
}

// OutputNets collects all primary-output nets of a module, the standard
// observation points.
func OutputNets(m *netlist.Module) []netlist.Net {
	var nets []netlist.Net
	for i := range m.Outputs {
		nets = append(nets, m.Outputs[i].Bits...)
	}
	return nets
}
