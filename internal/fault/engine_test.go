package fault

import (
	"runtime"
	"testing"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/synth"
)

func TestEngineConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  EngineConfig
		ok   bool
	}{
		{"zero", EngineConfig{}, true},
		{"default", DefaultEngineConfig(), true},
		{"width-1", EngineConfig{LaneWords: 1}, true},
		{"width-2", EngineConfig{LaneWords: 2}, true},
		{"width-4", EngineConfig{LaneWords: 4}, true},
		{"width-3", EngineConfig{LaneWords: 3}, false},
		{"width-8", EngineConfig{LaneWords: 8}, false},
		{"width-negative", EngineConfig{LaneWords: -1}, false},
		{"parallelism-negative", EngineConfig{Parallelism: -2}, false},
		{"batch-runs-negative", EngineConfig{BatchRuns: -64}, false},
		{"full", EngineConfig{LaneWords: 4, Parallelism: 8, BatchRuns: 1024}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestEngineConfigLanes(t *testing.T) {
	if got := (EngineConfig{}).Lanes(); got != 64 {
		t.Errorf("zero config Lanes() = %d, want 64", got)
	}
	if got := (EngineConfig{LaneWords: 4}).Lanes(); got != 256 {
		t.Errorf("width-4 Lanes() = %d, want 256", got)
	}
}

func TestEngineConfigResolveDefaults(t *testing.T) {
	r, err := EngineConfig{}.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r.laneWords != 1 {
		t.Errorf("laneWords = %d, want 1", r.laneWords)
	}
	if want := runtime.GOMAXPROCS(0); r.workers != want {
		t.Errorf("workers = %d, want GOMAXPROCS %d", r.workers, want)
	}
	if r.shardBatches != 1 {
		t.Errorf("shardBatches = %d, want 1", r.shardBatches)
	}

	// Explicit parallelism is honoured.
	r, err = EngineConfig{Parallelism: 5}.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r.workers != 5 {
		t.Errorf("workers = %d, want 5", r.workers)
	}

	// BatchRuns rounds up to whole lane groups.
	r, err = EngineConfig{LaneWords: 4, BatchRuns: 300}.resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r.shardBatches != 8 {
		t.Errorf("shardBatches = %d, want 8 (300 runs -> 2 groups of 4 batches)", r.shardBatches)
	}

	if _, err := (EngineConfig{LaneWords: 3}).resolve(); err == nil {
		t.Error("resolve accepted lane width 3")
	}
}

// TestEngineConfigMatrixBitIdentity is the tentpole's determinism
// acceptance: every (lane width, parallelism) execution configuration must
// produce the identical Result and the identical observer-visible run
// stream as the classic width-1 single-worker engine, for all three entropy
// variants. The run count is deliberately not a multiple of 64 so the final
// batch is partial inside a wide lane group.
func TestEngineConfigMatrixBitIdentity(t *testing.T) {
	entropies := []struct {
		name    string
		entropy core.Entropy
	}{
		{"prime", core.EntropyPrime},
		{"per-round", core.EntropyPerRound},
		{"per-sbox", core.EntropyPerSbox},
	}
	widths := []int{1, 2, 4}
	parallelisms := []int{1, 2, runtime.NumCPU()}

	for _, e := range entropies {
		t.Run(e.name, func(t *testing.T) {
			d, err := core.Build(present.Spec(), core.Options{
				Scheme:  core.SchemeThreeInOne,
				Entropy: e.entropy,
				Engine:  synth.EngineANF,
			})
			if err != nil {
				t.Fatal(err)
			}
			net := d.SboxInputNet(core.BranchActual, 13, 2)
			campaign := func(cfg EngineConfig) *Campaign {
				return &Campaign{
					Design: d,
					Key:    goldenKey,
					Faults: []Fault{At(net, StuckAt0, d.LastRoundCycle())},
					Runs:   700,
					Seed:   0x5C09E2021,
					Engine: cfg,
				}
			}

			ref, refDigest := hashRuns(t, campaign(EngineConfig{LaneWords: 1, Parallelism: 1}))
			if ref.Total != 700 {
				t.Fatalf("reference total = %d, want 700", ref.Total)
			}
			for _, w := range widths {
				for _, p := range parallelisms {
					cfg := EngineConfig{LaneWords: w, Parallelism: p}
					res, digest := hashRuns(t, campaign(cfg))
					if res != ref {
						t.Errorf("W=%d p=%d: result %v differs from reference %v", w, p, res, ref)
					}
					if digest != refDigest {
						t.Errorf("W=%d p=%d: run-stream digest %#x differs from %#x", w, p, digest, refDigest)
					}
				}
			}
		})
	}
}

// TestEngineConfigGoldenDigestsUnchanged re-runs the pinned golden campaigns
// at the widest, most parallel configuration: the historic digests produced
// by the original interpreted evaluator must survive verbatim.
func TestEngineConfigGoldenDigestsUnchanged(t *testing.T) {
	cases := []struct {
		name       string
		scheme     core.Scheme
		wantCounts [outcomeCount]int
		wantDigest uint64
	}{
		{"naive-dup", core.SchemeNaiveDup, [outcomeCount]int{498, 502, 0}, 0x3b65c928c52a21d2},
		{"three-in-one", core.SchemeThreeInOne, [outcomeCount]int{492, 508, 0}, 0xa188d67a405a7a39},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := goldenDesign(t, tc.scheme)
			net := d.SboxInputNet(core.BranchActual, 13, 2)
			camp := Campaign{
				Design: d,
				Key:    goldenKey,
				Faults: []Fault{At(net, StuckAt0, d.LastRoundCycle())},
				Runs:   1000,
				Seed:   0x5C09E2021,
				Engine: EngineConfig{LaneWords: 4, Parallelism: 8, BatchRuns: 512},
			}
			res, digest := hashRuns(t, &camp)
			if res.Counts != tc.wantCounts {
				t.Errorf("counts = %v, want %v", res.Counts, tc.wantCounts)
			}
			if digest != tc.wantDigest {
				t.Errorf("run-stream digest = %#x, want %#x", digest, tc.wantDigest)
			}
		})
	}
}

// TestEngineConfigBatchRunsInvariance proves dispatch granularity is pure
// policy: any shard size yields the identical run stream.
func TestEngineConfigBatchRunsInvariance(t *testing.T) {
	d := goldenDesign(t, core.SchemeThreeInOne)
	net := d.SboxInputNet(core.BranchActual, 5, 1)
	var ref Result
	var refDigest uint64
	for i, br := range []int{0, 64, 128, 500, 4096} {
		camp := Campaign{
			Design: d,
			Key:    goldenKey,
			Faults: []Fault{At(net, BitFlip, d.LastRoundCycle())},
			Runs:   700,
			Seed:   99,
			Engine: EngineConfig{LaneWords: 2, Parallelism: 3, BatchRuns: br},
		}
		res, digest := hashRuns(t, &camp)
		if i == 0 {
			ref, refDigest = res, digest
			continue
		}
		if res != ref || digest != refDigest {
			t.Errorf("BatchRuns=%d: (result, digest) = (%v, %#x), want (%v, %#x)",
				br, res, digest, ref, refDigest)
		}
	}
}

// TestEngineConfigInvalidRejected proves the executor validates before
// instantiating any engine.
func TestEngineConfigInvalidRejected(t *testing.T) {
	d := goldenDesign(t, core.SchemeNaiveDup)
	net := d.SboxInputNet(core.BranchActual, 0, 0)
	camp := Campaign{
		Design: d,
		Key:    goldenKey,
		Faults: []Fault{At(net, StuckAt0, d.LastRoundCycle())},
		Runs:   64,
		Seed:   1,
		Engine: EngineConfig{LaneWords: 3},
	}
	if _, err := camp.Execute(nil); err == nil {
		t.Fatal("Execute accepted lane width 3")
	}
}
