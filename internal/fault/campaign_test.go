package fault

import (
	"testing"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/spn"
	"repro/internal/synth"
)

var campKey = spn.KeyState{0xA5A5A5A5A5A5A5A5, 0x0F0F}

func buildDesign(t *testing.T, scheme core.Scheme) *core.Design {
	t.Helper()
	d, err := core.Build(present.Spec(), core.Options{
		Scheme: scheme, Entropy: core.EntropyPrime, Engine: synth.EngineANF,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCampaignWithoutFaultIsAllIneffective(t *testing.T) {
	d := buildDesign(t, core.SchemeThreeInOne)
	camp := Campaign{Design: d, Key: campKey, Runs: 200, Seed: 1}
	res, err := camp.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ineffective() != 200 || res.Detected() != 0 || res.Effective() != 0 {
		t.Fatalf("fault-free campaign misclassified: %s", res)
	}
}

func TestCampaignClassifiesNaiveDupFault(t *testing.T) {
	d := buildDesign(t, core.SchemeNaiveDup)
	net := d.SboxInputNet(core.BranchActual, 13, 2)
	camp := Campaign{
		Design: d, Key: campKey, Runs: 512, Seed: 2,
		Faults: []Fault{At(net, StuckAt0, d.LastRoundCycle())},
	}
	res, err := camp.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Effective() != 0 {
		t.Fatalf("single-branch fault must never escape duplication: %s", res)
	}
	// Roughly half the runs should be ineffective (the bit was already
	// 0) and half detected.
	if res.Ineffective() < 150 || res.Detected() < 150 {
		t.Fatalf("unexpected outcome split: %s", res)
	}
}

func TestCampaignDeterminism(t *testing.T) {
	d := buildDesign(t, core.SchemeNaiveDup)
	net := d.SboxInputNet(core.BranchActual, 5, 1)
	run := func(workers int) ([]Run, Result) {
		camp := Campaign{
			Design: d, Key: campKey, Runs: 300, Seed: 77, Engine: EngineConfig{Parallelism: workers},
			Faults: []Fault{At(net, StuckAt0, d.LastRoundCycle())},
		}
		var runs []Run
		res, err := camp.Execute(func(r Run) { runs = append(runs, r) })
		if err != nil {
			t.Fatal(err)
		}
		return runs, res
	}
	r1, res1 := run(1)
	r2, res2 := run(4)
	if res1 != res2 {
		t.Fatalf("results differ across worker counts: %v vs %v", res1, res2)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("run %d differs across worker counts", i)
		}
	}
}

func TestCampaignObserverSeesEveryRun(t *testing.T) {
	d := buildDesign(t, core.SchemeUnprotected)
	camp := Campaign{Design: d, Key: campKey, Runs: 130, Seed: 3}
	count := 0
	res, err := camp.Execute(func(r Run) {
		count++
		if r.CT != r.RefCT || r.Outcome != OutcomeIneffective {
			t.Fatalf("clean run misclassified: %+v", r)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 130 || res.Total != 130 {
		t.Fatalf("observer saw %d runs, result total %d", count, res.Total)
	}
}

// The masked duplicated core runs under the campaign engine like any
// other scheme: clean runs decode to the reference ciphertext through
// fresh per-run masks, single-branch faults never escape, and outcomes
// are invariant under the worker count (mask draws are per-batch, not
// per-goroutine).
func TestCampaignMaskedDup(t *testing.T) {
	d := buildDesign(t, core.SchemeMaskedDup)

	clean := Campaign{Design: d, Key: campKey, Runs: 200, Seed: 9}
	res, err := clean.Execute(func(r Run) {
		if r.CT != r.RefCT {
			t.Fatalf("masked clean run decodes wrong: %+v", r)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ineffective() != 200 {
		t.Fatalf("fault-free masked campaign misclassified: %s", res)
	}

	net := d.SboxInputNet(core.BranchActual, 13, 2)
	run := func(workers int) Result {
		camp := Campaign{
			Design: d, Key: campKey, Runs: 512, Seed: 10,
			Engine: EngineConfig{Parallelism: workers},
			Faults: []Fault{At(net, StuckAt1, d.LastRoundCycle())},
		}
		res, err := camp.Execute(nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res1 := run(1)
	if res1.Effective() != 0 {
		t.Fatalf("single-branch fault escaped the masked core: %s", res1)
	}
	if res1.Detected() == 0 {
		t.Fatalf("stuck-at on the masked core never detected: %s", res1)
	}
	if res4 := run(4); res4 != res1 {
		t.Fatalf("masked campaign differs across worker counts: %v vs %v", res1, res4)
	}
}

func TestCampaignRejectsZeroRuns(t *testing.T) {
	d := buildDesign(t, core.SchemeUnprotected)
	camp := Campaign{Design: d, Key: campKey}
	if _, err := camp.Execute(nil); err == nil {
		t.Fatal("expected error for zero runs")
	}
}

func TestUnprotectedFaultEscapes(t *testing.T) {
	d := buildDesign(t, core.SchemeUnprotected)
	net := d.SboxInputNet(core.BranchActual, 13, 2)
	camp := Campaign{
		Design: d, Key: campKey, Runs: 256, Seed: 4,
		Faults: []Fault{At(net, StuckAt0, d.LastRoundCycle())},
	}
	res, err := camp.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected() != 0 {
		t.Fatal("unprotected core cannot detect")
	}
	if res.Effective() == 0 {
		t.Fatal("effective faults must escape an unprotected core")
	}
}
