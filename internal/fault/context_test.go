package fault

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func contextCampaign(t *testing.T, workers int) *Campaign {
	t.Helper()
	d := goldenDesign(t, core.SchemeThreeInOne)
	net := d.SboxInputNet(core.BranchActual, 13, 2)
	return &Campaign{
		Design: d,
		Key:    goldenKey,
		Faults: []Fault{At(net, StuckAt0, d.LastRoundCycle())},
		Runs:   700,
		Seed:   0x5C09E2021,
		Engine: EngineConfig{Parallelism: workers},
	}
}

// Splitting a campaign into arbitrary batch ranges and summing the partial
// results must reproduce an uninterrupted Execute bit for bit — the
// contract the service's checkpoint/resume rests on.
func TestExecuteBatchesSplitMatchesFullRun(t *testing.T) {
	camp := contextCampaign(t, 2)
	full, err := camp.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	batches := camp.NumBatches()
	if batches != (700+sim.Lanes-1)/sim.Lanes {
		t.Fatalf("NumBatches = %d", batches)
	}
	for _, cut := range []int{0, 1, batches / 2, batches - 1, batches} {
		var sum Result
		for _, rng := range [][2]int{{0, cut}, {cut, batches}} {
			res, err := camp.ExecuteBatches(context.Background(), rng[0], rng[1], nil)
			if err != nil {
				t.Fatalf("range %v: %v", rng, err)
			}
			sum.Total += res.Total
			for i, n := range res.Counts {
				sum.Counts[i] += n
			}
		}
		if sum != full {
			t.Errorf("cut at %d: summed %v != full %v", cut, sum, full)
		}
	}
}

// The observer stream of a split run must equal the uninterrupted stream.
func TestExecuteBatchesObserverStream(t *testing.T) {
	camp := contextCampaign(t, 3)
	var full []Run
	if _, err := camp.Execute(func(r Run) { full = append(full, r) }); err != nil {
		t.Fatal(err)
	}
	cut := camp.NumBatches() / 2
	var split []Run
	for _, rng := range [][2]int{{0, cut}, {cut, camp.NumBatches()}} {
		if _, err := camp.ExecuteBatches(context.Background(), rng[0], rng[1], func(r Run) { split = append(split, r) }); err != nil {
			t.Fatal(err)
		}
	}
	if len(split) != len(full) {
		t.Fatalf("split stream has %d runs, full has %d", len(split), len(full))
	}
	for i := range full {
		if split[i] != full[i] {
			t.Fatalf("run %d differs: %+v vs %+v", i, split[i], full[i])
		}
	}
}

// Cancelling mid-campaign returns a whole-batch contiguous prefix plus
// ctx.Err(), and resuming from the recorded boundary completes the campaign
// with counts identical to an uninterrupted run.
func TestExecuteContextCancelAndResume(t *testing.T) {
	camp := contextCampaign(t, 1)
	full, err := camp.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	partial, err := camp.ExecuteContext(ctx, func(r Run) {
		seen++
		if seen == sim.Lanes { // after the first full batch
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if partial.Total >= full.Total || partial.Total == 0 {
		t.Fatalf("partial total %d not a strict non-empty prefix of %d", partial.Total, full.Total)
	}
	if partial.Total%sim.Lanes != 0 {
		t.Fatalf("partial total %d is not a whole number of batches", partial.Total)
	}

	resumeFrom := partial.Total / sim.Lanes
	rest, err := camp.ExecuteBatches(context.Background(), resumeFrom, camp.NumBatches(), nil)
	if err != nil {
		t.Fatal(err)
	}
	sum := partial
	sum.Total += rest.Total
	for i, n := range rest.Counts {
		sum.Counts[i] += n
	}
	if sum != full {
		t.Errorf("resumed sum %v != uninterrupted %v", sum, full)
	}
}

// A context cancelled before the first batch yields an empty partial result.
func TestExecuteContextPreCancelled(t *testing.T) {
	camp := contextCampaign(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := camp.ExecuteContext(ctx, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Total != 0 {
		t.Fatalf("pre-cancelled run produced %d runs", res.Total)
	}
}

func TestExecuteBatchesRejectsBadRange(t *testing.T) {
	camp := contextCampaign(t, 1)
	for _, rng := range [][2]int{{-1, 2}, {0, camp.NumBatches() + 1}, {3, 2}} {
		if _, err := camp.ExecuteBatches(context.Background(), rng[0], rng[1], nil); err == nil {
			t.Errorf("range %v accepted", rng)
		}
	}
}
