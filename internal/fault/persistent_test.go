package fault

import (
	"testing"

	"repro/internal/core"
)

func TestCorrectingSchemeFaultFree(t *testing.T) {
	d := buildDesign(t, core.SchemeCorrect)
	camp := Campaign{Design: d, Key: campKey, Runs: 200, Seed: 21}
	res, err := camp.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ineffective() != 200 {
		t.Fatalf("fault-free correcting campaign misclassified: %s", res)
	}
}

func TestCorrectingSchemeRecoversSingleFault(t *testing.T) {
	d := buildDesign(t, core.SchemeCorrect)
	net := d.SboxInputNet(core.BranchActual, 13, 2)
	camp := Campaign{
		Design: d, Key: campKey, Runs: 512, Seed: 22,
		Faults: []Fault{At(net, StuckAt0, d.LastRoundCycle())},
	}
	res, err := camp.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	// A single faulted branch is outvoted 2:1, so the released ciphertext is
	// always correct: runs are either ineffective (the stuck-at hit a 0) or
	// corrected, never detected-with-garbage and never effective.
	if res.Effective() != 0 || res.Detected() != 0 {
		t.Fatalf("single-branch fault escaped the majority vote: %s", res)
	}
	if res.Corrected() == 0 || res.Ineffective() == 0 {
		t.Fatalf("unexpected outcome split: %s", res)
	}
}

// TestIdenticalFaultPairAcrossSchemes drives the multi-fault adversary the
// evaluation is built around — the *same* stuck-at on the corresponding net
// of two branches — across the scheme ladder. Naive duplication is blind to
// it (both copies err identically), while λ-diversity turns the identical
// physical fault into different logical errors: three-in-one detects it and
// the majority-vote baseline corrects it.
func TestIdenticalFaultPairAcrossSchemes(t *testing.T) {
	run := func(scheme core.Scheme) Result {
		t.Helper()
		d := buildDesign(t, scheme)
		faults := []Fault{
			At(d.SboxInputNet(core.BranchActual, 13, 2), StuckAt0, d.LastRoundCycle()),
			At(d.SboxInputNet(core.BranchRedundant, 13, 2), StuckAt0, d.LastRoundCycle()),
		}
		camp := Campaign{Design: d, Key: campKey, Runs: 512, Seed: 23, Faults: faults}
		res, err := camp.Execute(nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	naive := run(core.SchemeNaiveDup)
	if naive.Effective() == 0 || naive.Detected() != 0 {
		t.Fatalf("identical fault pair must bypass naive duplication undetected: %s", naive)
	}
	three := run(core.SchemeThreeInOne)
	if three.Effective() != 0 || three.Detected() == 0 {
		t.Fatalf("three-in-one must detect the identical fault pair: %s", three)
	}
	correct := run(core.SchemeCorrect)
	if correct.Effective() != 0 || correct.Detected() != 0 {
		t.Fatalf("correct-majority must not release garbage for the pair: %s", correct)
	}
	if correct.Corrected() == 0 {
		t.Fatalf("correct-majority recovered nothing: %s", correct)
	}
}

func TestPersistentFaultBypassesDetectionAndCorrection(t *testing.T) {
	for _, scheme := range []core.Scheme{core.SchemeNaiveDup, core.SchemeThreeInOne, core.SchemeCorrect} {
		d := buildDesign(t, scheme)
		camp := Campaign{
			Design: d, Key: campKey, Runs: 256, Seed: 24,
			Persistent: &PersistentFault{Entry: 0xC, Mask: 0x5},
		}
		res, err := camp.Execute(nil)
		if err != nil {
			t.Fatal(err)
		}
		// Every branch computes over the same corrupted table, so they all
		// agree on the wrong ciphertext: nothing fires, nothing corrects.
		if res.Detected() != 0 || res.Corrected() != 0 {
			t.Fatalf("%v: persistent fault must not trip the comparator: %s", scheme, res)
		}
		if res.Effective() == 0 {
			t.Fatalf("%v: persistent fault produced no wrong ciphertexts: %s", scheme, res)
		}
	}
}

func TestPersistentFaultDeterministicAcrossWorkers(t *testing.T) {
	d := buildDesign(t, core.SchemeThreeInOne)
	run := func(workers int) Result {
		camp := Campaign{
			Design: d, Key: campKey, Runs: 300, Seed: 25, Engine: EngineConfig{Parallelism: workers},
			Persistent: &PersistentFault{Entry: 3, Mask: 0x8},
		}
		res, err := camp.Execute(nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if r1, r4 := run(1), run(4); r1 != r4 {
		t.Fatalf("persistent campaign not deterministic across workers: %v vs %v", r1, r4)
	}
}

func TestPersistentFaultValidation(t *testing.T) {
	d := buildDesign(t, core.SchemeNaiveDup)
	cases := []struct {
		name string
		camp Campaign
	}{
		{"entry out of range", Campaign{Design: d, Key: campKey, Runs: 64,
			Persistent: &PersistentFault{Entry: 16, Mask: 1}}},
		{"zero mask", Campaign{Design: d, Key: campKey, Runs: 64,
			Persistent: &PersistentFault{Entry: 0, Mask: 0}}},
		{"mask too wide", Campaign{Design: d, Key: campKey, Runs: 64,
			Persistent: &PersistentFault{Entry: 0, Mask: 0x10}}},
		{"mixed with transient", Campaign{Design: d, Key: campKey, Runs: 64,
			Persistent: &PersistentFault{Entry: 0, Mask: 1},
			Faults:     []Fault{At(d.SboxInputNet(core.BranchActual, 0, 0), StuckAt0, d.LastRoundCycle())}}},
	}
	for _, tc := range cases {
		if _, err := tc.camp.Execute(nil); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}
