package fault

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestExecuteBatchesFuncPerBatchResults checks the result store's feed: the
// hook fires once per batch, in order, and the per-batch tallies sum to the
// aggregate Result bit for bit.
func TestExecuteBatchesFuncPerBatchResults(t *testing.T) {
	d := buildDesign(t, core.SchemeNaiveDup)
	net := d.SboxInputNet(core.BranchActual, 13, 2)
	camp := Campaign{
		Design: d, Key: campKey, Runs: 300, Seed: 9, Engine: EngineConfig{Parallelism: 4},
		Faults: []Fault{At(net, StuckAt0, d.LastRoundCycle())},
	}
	type got struct {
		batch int
		res   Result
	}
	var perBatch []got
	res, err := camp.ExecuteBatchesFunc(context.Background(), 0, camp.NumBatches(), nil,
		func(b int, r Result) { perBatch = append(perBatch, got{b, r}) })
	if err != nil {
		t.Fatal(err)
	}
	if len(perBatch) != camp.NumBatches() {
		t.Fatalf("hook fired %d times, want %d", len(perBatch), camp.NumBatches())
	}
	var sum Result
	for i, g := range perBatch {
		if g.batch != i {
			t.Fatalf("hook out of order: call %d saw batch %d", i, g.batch)
		}
		if g.res.Total != camp.BatchRuns(i) {
			t.Fatalf("batch %d carried %d runs, want %d", i, g.res.Total, camp.BatchRuns(i))
		}
		sum.Total += g.res.Total
		for j, n := range g.res.Counts {
			sum.Counts[j] += n
		}
	}
	if sum != res {
		t.Fatalf("per-batch sum %v != aggregate %v", sum, res)
	}

	// Replaying the per-batch results must reproduce the aggregate of a
	// fresh single-worker execution: the determinism contract batch-wise.
	ref, err := camp.ExecuteBatches(context.Background(), 0, camp.NumBatches(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum != ref {
		t.Fatalf("per-batch sum %v != independent re-execution %v", sum, ref)
	}
}

func TestBatchRuns(t *testing.T) {
	camp := Campaign{Runs: 2*sim.Lanes + 5}
	if n := camp.NumBatches(); n != 3 {
		t.Fatalf("NumBatches = %d, want 3", n)
	}
	for b, want := range []int{sim.Lanes, sim.Lanes, 5} {
		if got := camp.BatchRuns(b); got != want {
			t.Fatalf("BatchRuns(%d) = %d, want %d", b, got, want)
		}
	}
}

func TestEngineVersionEncodesLaneWidth(t *testing.T) {
	// The engine version participates in every stored batch's content
	// address. The lane width determines how runs map onto batches, so the
	// version string pins it; changing sim.Lanes must force a new version.
	if sim.Lanes != 64 {
		t.Fatalf("sim.Lanes changed to %d: bump fault.EngineVersion (%q) and update this test", sim.Lanes, EngineVersion)
	}
	if EngineVersion != "scone-campaign/2-lanes64" {
		t.Fatalf("EngineVersion %q drifted without updating this pin", EngineVersion)
	}
	if EngineVersionLegacy != "scone-campaign/1-lanes64" {
		t.Fatalf("EngineVersionLegacy %q drifted: pre-v2 store digests would be orphaned", EngineVersionLegacy)
	}
}

func TestEngineIDKeepsLegacyDigestsValid(t *testing.T) {
	// Campaigns expressible under engine v1 — transient faults on
	// non-correcting schemes — must keep addressing stored results under the
	// legacy version string, or every pre-existing cache entry goes stale.
	d := buildDesign(t, core.SchemeThreeInOne)
	legacy := Campaign{Design: d, Runs: 1}
	if got := legacy.EngineID(); got != EngineVersionLegacy {
		t.Fatalf("transient campaign EngineID = %q, want legacy %q", got, EngineVersionLegacy)
	}
	persistent := Campaign{Design: d, Runs: 1, Persistent: &PersistentFault{Entry: 0, Mask: 1}}
	if got := persistent.EngineID(); got != EngineVersion {
		t.Fatalf("persistent campaign EngineID = %q, want %q", got, EngineVersion)
	}
	dc := buildDesign(t, core.SchemeCorrect)
	correcting := Campaign{Design: dc, Runs: 1}
	if got := correcting.EngineID(); got != EngineVersion {
		t.Fatalf("correcting campaign EngineID = %q, want %q", got, EngineVersion)
	}
}
