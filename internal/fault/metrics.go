package fault

import (
	"sync/atomic"

	"repro/internal/obs"
)

// metrics is the fault engine's instrument set, swapped in atomically by
// EnableObservability so campaign workers pay one pointer load per batch
// while observability is disabled.
type metrics struct {
	runs        *obs.Counter
	batches     *obs.Counter
	injections  *obs.Counter
	detected    *obs.Counter
	ineffective *obs.Counter
	effective   *obs.Counter
	corrected   *obs.Counter
	batchNS     *obs.Histogram
	reorder     *obs.Gauge
	shards      *obs.Counter
	laneWords   *obs.Gauge

	// Replay counters are fed by CountReplay, never by the engine itself:
	// scone_fault_runs_total / scone_fault_batches_total count only work
	// the simulator actually performed, so throughput dashboards dividing
	// runs by wall time are not inflated by cache hits.
	runsReplayed    *obs.Counter
	batchesReplayed *obs.Counter
}

var met atomic.Pointer[metrics]

// EnableObservability registers the fault engine's metrics on reg and starts
// recording into them. Passing nil reverts to the free no-op default.
// Instruments are updated outside the deterministic (seed, batch) randomness
// derivation, so campaign results are bit-identical with observability on or
// off.
func EnableObservability(reg *obs.Registry) {
	if reg == nil {
		met.Store(nil)
		return
	}
	met.Store(&metrics{
		runs:        reg.NewCounter("scone_fault_runs_total", "Faulted encryptions simulated"),
		batches:     reg.NewCounter("scone_fault_batches_total", "64-lane campaign batches completed"),
		injections:  reg.NewCounter("scone_fault_injections_total", "Fault injection points armed per batch (faults x batches)"),
		detected:    reg.NewCounter("scone_fault_detected_total", "Runs where the comparator fired and garbage was released"),
		ineffective: reg.NewCounter("scone_fault_ineffective_total", "Runs where the fault did not change the released output"),
		effective:   reg.NewCounter("scone_fault_effective_total", "Runs releasing an undetected wrong ciphertext"),
		corrected:   reg.NewCounter("scone_fault_corrected_total", "Runs where the majority vote sensed and recovered a fault"),
		batchNS:     reg.NewHistogram("scone_fault_batch_ns", "Wall time of one 64-run batch (a wide pass's time split across its batches)", obs.ExpBuckets(4_000, 4, 14)),
		reorder:     reg.NewGauge("scone_fault_reorder_depth_count", "Batches parked in the reorder buffer awaiting in-order delivery"),
		shards:      reg.NewCounter("scone_fault_shards_total", "Contiguous batch shards dispatched to campaign workers"),
		laneWords:   reg.NewGauge("scone_fault_lane_words_count", "Engine word width W of the most recently started campaign execution"),

		runsReplayed:    reg.NewCounter("scone_fault_runs_replayed_total", "Campaign runs served from the result store without simulation"),
		batchesReplayed: reg.NewCounter("scone_fault_batches_replayed_total", "Campaign batches served from the result store without simulation"),
	})
}

// CountReplay records batches whose results were served from a result store
// instead of the simulator. The split keeps scone_fault_runs_total an honest
// simulation-throughput counter: replayed work lands here, simulated work in
// countBatch, and the two never mix.
func CountReplay(batches int, res Result) {
	m := met.Load()
	if m == nil {
		return
	}
	m.batchesReplayed.Add(int64(batches))
	m.runsReplayed.Add(int64(res.Total))
}

// countBatch records one completed batch: its wall time, run outcomes and
// the number of armed injection points.
func (m *metrics) countBatch(ns int64, faults int, res Result) {
	if m == nil {
		return
	}
	m.batches.Inc()
	m.batchNS.Observe(ns)
	m.injections.Add(int64(faults))
	m.runs.Add(int64(res.Total))
	m.ineffective.Add(int64(res.Counts[OutcomeIneffective]))
	m.detected.Add(int64(res.Counts[OutcomeDetected]))
	m.effective.Add(int64(res.Counts[OutcomeEffective]))
	m.corrected.Add(int64(res.Counts[OutcomeCorrected]))
}

// setReorderDepth mirrors the reorder buffer's occupancy.
func (m *metrics) setReorderDepth(n int) {
	if m == nil {
		return
	}
	m.reorder.Set(int64(n))
}

// countShard records one shard handed to a worker.
func (m *metrics) countShard() {
	if m == nil {
		return
	}
	m.shards.Inc()
}

// setLaneWords mirrors the engine word width of the execution being
// started.
func (m *metrics) setLaneWords(w int) {
	if m == nil {
		return
	}
	m.laneWords.Set(int64(w))
}
