package fault

import (
	"hash/fnv"
	"testing"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/spn"
	"repro/internal/synth"
)

// The golden values below were produced by the original interpreted
// per-cell switch evaluator (pre instruction-stream rewrite). They pin the
// exact Result counts and the exact observer-visible Run stream for fixed
// seeds, so any change to the simulator, the batching, or the worker
// scheduling that alters a single released bit fails loudly.

var goldenKey = spn.KeyState{0x0123456789ABCDEF, 0x8421}

// hashRuns folds every observable field of the run stream, in observation
// order, into one FNV-64a digest.
func hashRuns(t *testing.T, c *Campaign) (Result, uint64) {
	t.Helper()
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	res, err := c.Execute(func(r Run) {
		word(r.PT)
		word(r.CT)
		word(r.RefCT)
		word(r.Lambda0)
		word(uint64(r.Outcome))
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, h.Sum64()
}

func goldenDesign(t *testing.T, scheme core.Scheme) *core.Design {
	t.Helper()
	opts := core.Options{Scheme: scheme, Engine: synth.EngineANF}
	if scheme.Randomized() {
		opts.Entropy = core.EntropyPrime
	}
	d, err := core.Build(present.Spec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGoldenCampaignResults(t *testing.T) {
	cases := []struct {
		name       string
		scheme     core.Scheme
		wantCounts [outcomeCount]int
		wantDigest uint64
	}{
		{"naive-dup", core.SchemeNaiveDup, [outcomeCount]int{498, 502, 0}, 0x3b65c928c52a21d2},
		{"three-in-one", core.SchemeThreeInOne, [outcomeCount]int{492, 508, 0}, 0xa188d67a405a7a39},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := goldenDesign(t, tc.scheme)
			net := d.SboxInputNet(core.BranchActual, 13, 2)
			camp := Campaign{
				Design: d,
				Key:    goldenKey,
				Faults: []Fault{At(net, StuckAt0, d.LastRoundCycle())},
				Runs:   1000,
				Seed:   0x5C09E2021,
				Engine: EngineConfig{Parallelism: 3},
			}
			res, digest := hashRuns(t, &camp)
			if res.Total != 1000 {
				t.Fatalf("total = %d, want 1000", res.Total)
			}
			if res.Counts != tc.wantCounts {
				t.Errorf("counts = %v, want %v", res.Counts, tc.wantCounts)
			}
			if digest != tc.wantDigest {
				t.Errorf("run-stream digest = %#x, want %#x", digest, tc.wantDigest)
			}
		})
	}
}

// TestCampaignWorkerCountInvariance proves the determinism guarantee the
// docs advertise: a fixed seed yields an identical Result and an identical
// observer-visible run stream for any worker count.
func TestCampaignWorkerCountInvariance(t *testing.T) {
	d := goldenDesign(t, core.SchemeThreeInOne)
	net := d.SboxInputNet(core.BranchActual, 5, 1)
	var ref Result
	var refDigest uint64
	for i, workers := range []int{1, 2, 5, 16} {
		camp := Campaign{
			Design: d,
			Key:    goldenKey,
			Faults: []Fault{At(net, BitFlip, d.LastRoundCycle())},
			Runs:   700,
			Seed:   99,
			Engine: EngineConfig{Parallelism: workers},
		}
		res, digest := hashRuns(t, &camp)
		if i == 0 {
			ref, refDigest = res, digest
			continue
		}
		if res != ref {
			t.Errorf("workers=%d: result %v differs from workers=1 result %v", workers, res, ref)
		}
		if digest != refDigest {
			t.Errorf("workers=%d: run-stream digest %#x differs from %#x", workers, digest, refDigest)
		}
	}
}
