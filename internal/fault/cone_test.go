package fault

import (
	"testing"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/spn"
	"repro/internal/synth"
)

func TestReachesBasic(t *testing.T) {
	m := netlist.New("t")
	in := m.AddInput("x", 2)
	a := m.And(in[0], in[1])
	dead := m.Not(in[0]) // not connected to the output
	m.AddOutput("y", netlist.Bus{m.Buf(a)})

	idx := NewReachabilityIndex(m)
	outs := OutputNets(m)
	if !idx.Reaches(in[0], outs) || !idx.Reaches(a, outs) {
		t.Fatal("live nets must reach the output")
	}
	if idx.Reaches(dead, outs) {
		t.Fatal("dangling net must not reach the output")
	}
}

func TestReachesCrossesRegisters(t *testing.T) {
	m := netlist.New("t")
	in := m.AddInput("x", 1)
	q := m.DFF(m.Not(in[0]))
	m.AddOutput("y", netlist.Bus{m.Buf(q)})
	idx := NewReachabilityIndex(m)
	if !idx.Reaches(in[0], OutputNets(m)) {
		t.Fatal("reachability must cross DFFs")
	}
}

func TestConeContents(t *testing.T) {
	m := netlist.New("t")
	in := m.AddInput("x", 2)
	a := m.And(in[0], in[1])
	b := m.Xor(a, in[0])
	m.AddOutput("y", netlist.Bus{b})
	idx := NewReachabilityIndex(m)
	cone := idx.Cone(in[0])
	if len(cone) != 3 { // in[0], a, b
		t.Fatalf("cone size %d, want 3", len(cone))
	}
}

// Cross-validation with the dynamic campaign: any fault site that
// produced a detected or effective run must be statically reachable to the
// outputs, and every S-box input of the countermeasure core must reach
// both the ciphertext and the fault flag.
func TestStaticReachConsistentWithCampaign(t *testing.T) {
	d := core.MustBuild(present.Spec(), core.Options{
		Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPrime, Engine: synth.EngineANF,
	})
	idx := NewReachabilityIndex(d.Mod)
	outs := OutputNets(d.Mod)

	for s := 0; s < 16; s++ {
		for bit := 0; bit < 4; bit++ {
			n := d.SboxInputNet(core.BranchActual, s, bit)
			if !idx.Reaches(n, outs) {
				t.Fatalf("S-box %d bit %d statically unobservable", s, bit)
			}
		}
	}

	// A fault at a reachable site produced detections dynamically; a
	// site we know is NOT reachable (fresh dangling net) must show zero
	// detected/effective runs.
	n := d.SboxInputNet(core.BranchActual, 3, 1)
	camp := Campaign{
		Design: d, Key: spn.KeyState{5, 6},
		Faults: []Fault{At(n, StuckAt0, d.LastRoundCycle())},
		Runs:   256, Seed: 11,
	}
	res, err := camp.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected() == 0 {
		t.Fatal("reachable site never detected — inconsistent with static reach")
	}
}
