package fault

import (
	"fmt"

	"repro/internal/core"
)

// PersistentFault is the PFA fault model (persistent fault analysis): one
// entry of the cipher's S-box lookup table is corrupted once, before any
// encryption, and the corruption survives across every run of the campaign.
// Because the table is shared by all branches of a duplicated design, every
// branch computes the same wrong value and detect-only comparators never
// fire — exactly the bypass the PFA literature describes.
type PersistentFault struct {
	// Entry is the corrupted table index, 0 <= Entry < 2^SboxBits.
	Entry int
	// Mask is XORed into the entry's value; it must be non-zero and fit
	// in SboxBits bits.
	Mask uint64
}

// String describes the corruption.
func (p PersistentFault) String() string {
	return fmt.Sprintf("persistent sbox[%d] ^= %#x", p.Entry, p.Mask)
}

// Validate checks the corruption against a design's S-box geometry.
func (p PersistentFault) Validate(d *core.Design) error {
	size := 1 << d.Spec.SboxBits
	if p.Entry < 0 || p.Entry >= size {
		return fmt.Errorf("fault: persistent entry %d outside the %d-entry S-box", p.Entry, size)
	}
	if p.Mask == 0 || p.Mask >= uint64(size) {
		return fmt.Errorf("fault: persistent mask %#x must be a non-zero %d-bit value", p.Mask, d.Spec.SboxBits)
	}
	return nil
}

// simDesign returns the design the campaign simulates: the caller's design
// as-is for transient campaigns, or a rebuild over the corrupted S-box
// table for persistent ones. The corruption flows through the normal S-box
// synthesis into the compiled simulator — no injector involvement, so the
// injector purity contract is untouched — while Campaign.Design keeps the
// clean spec the classification references. The rebuild is memoised so
// chunked ExecuteBatches calls compile it once.
func (c *Campaign) simDesign() (*core.Design, error) {
	if c.Persistent == nil {
		return c.Design, nil
	}
	if c.persistentDesign != nil {
		return c.persistentDesign, nil
	}
	if len(c.Faults) > 0 {
		// Transient faults address nets of the clean build; the corrupted
		// rebuild may number its nets differently, so mixing the models
		// in one campaign would inject at silently wrong locations.
		return nil, fmt.Errorf("fault: a persistent campaign cannot also inject transient faults")
	}
	p := *c.Persistent
	if err := p.Validate(c.Design); err != nil {
		return nil, err
	}
	spec := *c.Design.Spec
	spec.Sbox = append([]uint64(nil), spec.Sbox...)
	spec.Sbox[p.Entry] ^= p.Mask
	d, err := core.Build(&spec, c.Design.Opts)
	if err != nil {
		return nil, fmt.Errorf("fault: rebuild with persistent corruption: %w", err)
	}
	c.persistentDesign = d
	return d, nil
}
