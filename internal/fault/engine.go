package fault

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/spn"
)

// EngineConfig is the first-class execution configuration of the campaign
// engine: lane width, worker parallelism and dispatch granularity. It is
// pure execution policy — every configuration computes bit-identical
// results from the same (Design, Key, Faults, Runs, Seed), and none of its
// fields enter a campaign's content address, so cached batches replay
// across configurations.
//
// The zero value selects the legacy defaults (single-word 64-lane passes,
// GOMAXPROCS workers, one lane group per dispatch). Validate rejects
// impossible configurations; the executor validates before instantiating
// any engine, and the sconevet enginecfg pass keeps direct engine
// construction out of the rest of the tree.
type EngineConfig struct {
	// LaneWords selects the simulator word width W: one pass evaluates
	// W×64 lanes, executing W consecutive 64-run batches together. Wider
	// words amortise instruction dispatch over SIMD-shaped inner loops.
	// 0 means 1; valid widths are 1, 2 and 4.
	LaneWords int
	// Parallelism bounds the worker goroutines sharding the batch range
	// (0 = GOMAXPROCS). Workers own contiguous shards, so scheduling
	// never reorders results.
	Parallelism int
	// BatchRuns is the number of runs dispatched to a worker at a time,
	// rounded up to whole lane groups (LaneWords×64 runs); 0 means one
	// lane group. Larger shards reduce dispatch overhead on huge
	// campaigns; cancellation trims whole shards off the tail.
	BatchRuns int
}

// DefaultEngineConfig returns the explicit form of the zero-value
// configuration: width 1, GOMAXPROCS parallelism, one lane group per
// dispatch.
func DefaultEngineConfig() EngineConfig {
	return EngineConfig{LaneWords: 1}
}

// Validate rejects configurations the engine cannot run: an unsupported
// lane width or negative parallelism/batch size.
func (c EngineConfig) Validate() error {
	if c.LaneWords != 0 && !sim.ValidLaneWords(c.LaneWords) {
		return fmt.Errorf("fault: engine lane words must be 1, 2 or 4 (got %d)", c.LaneWords)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("fault: engine parallelism must be non-negative (got %d)", c.Parallelism)
	}
	if c.BatchRuns < 0 {
		return fmt.Errorf("fault: engine batch runs must be non-negative (got %d)", c.BatchRuns)
	}
	return nil
}

// Lanes returns the number of parallel simulation lanes one engine pass
// evaluates under this configuration (sim.Lanes × effective LaneWords).
func (c EngineConfig) Lanes() int {
	w := c.LaneWords
	if w == 0 {
		w = 1
	}
	return w * sim.Lanes
}

// resolvedEngine is a validated EngineConfig with every default applied.
type resolvedEngine struct {
	laneWords    int // simulator word width W (1, 2 or 4)
	workers      int // worker goroutine count
	shardBatches int // 64-run batches per dispatched shard (multiple of laneWords)
}

// resolve validates the configuration and applies defaults.
func (c EngineConfig) resolve() (resolvedEngine, error) {
	if err := c.Validate(); err != nil {
		return resolvedEngine{}, err
	}
	r := resolvedEngine{laneWords: c.LaneWords, workers: c.Parallelism}
	if r.laneWords == 0 {
		r.laneWords = 1
	}
	if r.workers <= 0 {
		r.workers = runtime.GOMAXPROCS(0)
	}
	groupRuns := r.laneWords * sim.Lanes
	br := c.BatchRuns
	if br <= 0 {
		br = groupRuns
	}
	r.shardBatches = (br + groupRuns - 1) / groupRuns * r.laneWords
	return r, nil
}

// groupRunner executes lane groups: up to LaneWords consecutive 64-run
// batches evaluated in one simulator pass. The campaign executor holds one
// per worker, behind this interface so the worker loop stays width-agnostic
// while each width gets its own compiled instantiation.
type groupRunner interface {
	// runGroup executes batches first..first+g-1, filling outs[j] (whose
	// batch index is pre-set to first+j) with batch j's tallies — and,
	// when retain is set, its Run records in lane order.
	runGroup(first, g int, outs []batchOut, retain bool)
}

// newGroupRunner dispatches the validated lane width to its engine
// instantiation.
func (c *Campaign) newGroupRunner(laneWords int, simD *core.Design, compiled *sim.Compiled, inj *Injector) groupRunner {
	switch laneWords {
	case 2:
		return newWideRunner[sim.Word2](c, simD, compiled, inj)
	case 4:
		return newWideRunner[sim.Word4](c, simD, compiled, inj)
	default:
		return newWideRunner[sim.Word1](c, simD, compiled, inj)
	}
}

// wideRunner executes lane groups on a width-W engine. All per-batch
// working state — plaintext/garbage draws, per-cycle λ words, the
// generators themselves — lives in scratch buffers allocated once per
// worker, which is what eliminates the per-round/per-sbox variants'
// residual per-run allocations.
type wideRunner[W sim.Word] struct {
	c *Campaign
	r *core.EngineRunner[W]
	// ref is the campaign key's precomputed reference encrypter;
	// classification calls it once per run, so the expanded schedule and
	// fused substitution/linear tables are what keep the reference off the
	// critical path.
	ref *spn.RefEncrypter

	// gens[j] is lane group j's generator, reseeded per batch from
	// (Seed, batch index) — the same derivation, and therefore the same
	// draw stream, as a single-batch pass.
	gens []*rng.Xoshiro

	pts, garbage []uint64
	// λ scratch: lambda0 backs the prime variant's constant word;
	// lamCycles[cyc] backs the fresh-per-cycle variants, filled lazily
	// per group (lamFilled marks which cycles have been drawn).
	lambda0   []uint64
	lamCycles [][]uint64
	lamFilled []bool
	// masks backs the masked schemes' per-lane mask port draws. The draws
	// are appended AFTER the unmasked stream (pt/garbage interleaved, then
	// λ), so unmasked schemes' draw streams — and therefore every stored
	// campaign digest — are unchanged by the masked variant's existence.
	masks *core.MaskSet
}

func newWideRunner[W sim.Word](c *Campaign, simD *core.Design, compiled *sim.Compiled, inj *Injector) *wideRunner[W] {
	r := core.NewWideRunnerFrom[W](simD, compiled)
	r.S.SetInjector(inj)
	lanes := r.S.LaneCount()
	wr := &wideRunner[W]{c: c, r: r, ref: c.Design.Spec.NewRefEncrypter(c.Key)}
	wr.gens = make([]*rng.Xoshiro, r.S.LaneWords())
	for j := range wr.gens {
		wr.gens[j] = rng.NewXoshiro(0)
	}
	wr.pts = make([]uint64, lanes)
	wr.garbage = make([]uint64, lanes)
	if c.Design.LambdaWidth > 0 {
		wr.lambda0 = make([]uint64, lanes)
		cycles := c.Design.Spec.Rounds + 1
		back := make([]uint64, cycles*lanes)
		wr.lamCycles = make([][]uint64, cycles)
		for i := range wr.lamCycles {
			wr.lamCycles[i] = back[i*lanes : (i+1)*lanes]
		}
		wr.lamFilled = make([]bool, cycles)
	}
	if c.Design.Opts.Scheme.Masked() {
		wr.masks = &core.MaskSet{
			StateEven: make([]uint64, lanes),
			StateOdd:  make([]uint64, lanes),
			Lambda:    make([]uint64, lanes),
		}
		if c.Design.MaskPoolWidth > 0 {
			wr.masks.RandEven = make([]uint64, lanes)
			wr.masks.RandOdd = make([]uint64, lanes)
		}
	}
	return wr
}

// runGroup executes batches first..first+g-1 (g ≤ W) in one simulator
// pass. Batch j occupies lanes j*64..j*64+63 and draws every random value
// from its own (Seed, batch)-derived generator in the single-batch order —
// plaintext/garbage interleaved, then λ per cycle on first touch — so each
// lane computes bit-identically to the classic one-batch-per-pass engine
// regardless of width, grouping or scheduling. Only the campaign's final
// batch can be partial, and it is always last in its group, so active
// lanes stay contiguous.
func (wr *wideRunner[W]) runGroup(first, g int, outs []batchOut, retain bool) {
	c := wr.c
	d := c.Design
	total := 0
	for j := 0; j < g; j++ {
		gen := wr.gens[j]
		gen.Reseed(c.Seed ^ (uint64(first+j)+1)*0x9E3779B97F4A7C15)
		base := j * sim.Lanes
		n := c.BatchRuns(first + j)
		for i := 0; i < n; i++ {
			wr.pts[base+i] = gen.Uint64()
			wr.garbage[base+i] = gen.Uint64()
		}
		total = base + n
	}

	drawLambda := func(vals []uint64) {
		for j := 0; j < g; j++ {
			base := j * sim.Lanes
			n := c.BatchRuns(first + j)
			gen := wr.gens[j]
			for i := 0; i < n; i++ {
				vals[base+i] = gen.Bits(d.LambdaWidth)
			}
		}
	}

	var lf core.LambdaFunc
	var lambda0 []uint64
	if d.LambdaWidth > 0 {
		if d.Opts.Entropy == core.EntropyPrime {
			vals := wr.lambda0[:total]
			drawLambda(vals)
			lambda0 = vals
			lf = core.LambdaConst(vals)
		} else {
			// Fresh λ per cycle, deterministic in the cycle index,
			// memoised in per-cycle scratch (cycle 0 pre-drawn so it can
			// be recorded). Each lane group draws from its own generator,
			// replaying the single-batch per-cycle stream.
			for i := range wr.lamFilled {
				wr.lamFilled[i] = false
			}
			lf = func(cyc int) []uint64 {
				vals := wr.lamCycles[cyc][:total]
				if !wr.lamFilled[cyc] {
					drawLambda(vals)
					wr.lamFilled[cyc] = true
				}
				return vals
			}
			lambda0 = lf(0)
		}
	}

	if wr.masks != nil {
		// Masked schemes extend each batch's draw stream with the mask
		// port values, per lane in fixed order: state-even, state-odd,
		// refresh-pool-even, refresh-pool-odd, λ-mask. Masked implies
		// EntropyPrime, so the eager λ draw above has already consumed its
		// part of the stream.
		ms := wr.masks
		for j := 0; j < g; j++ {
			base := j * sim.Lanes
			n := c.BatchRuns(first + j)
			gen := wr.gens[j]
			for i := 0; i < n; i++ {
				ms.StateEven[base+i] = gen.Bits(d.Spec.BlockBits)
				ms.StateOdd[base+i] = gen.Bits(d.Spec.BlockBits)
				if d.MaskPoolWidth > 0 {
					ms.RandEven[base+i] = gen.Bits(d.MaskPoolWidth)
					ms.RandOdd[base+i] = gen.Bits(d.MaskPoolWidth)
				}
				ms.Lambda[base+i] = gen.Bits(1)
			}
		}
		wr.r.Masks = ms
	}

	res := wr.r.EncryptBatchReuse(wr.pts[:total], c.Key, wr.garbage[:total], lf)
	correcting := d.Opts.Scheme.Correcting()
	for j := 0; j < g; j++ {
		base := j * sim.Lanes
		n := c.BatchRuns(first + j)
		out := &outs[j]
		if retain {
			out.runs = make([]Run, 0, n)
		}
		for i := 0; i < n; i++ {
			lane := base + i
			// The reference is always the clean cipher — under a
			// persistent fault the simulated design computes with the
			// corrupted table while classification compares against what
			// the device should have produced.
			ref := wr.ref.Encrypt(wr.pts[lane])
			r := Run{PT: wr.pts[lane], CT: res.CT[lane], RefCT: ref}
			if lambda0 != nil {
				r.Lambda0 = lambda0[lane]
			}
			switch {
			case res.Fault[lane] && correcting && res.CT[lane] == ref:
				r.Outcome = OutcomeCorrected
			case res.Fault[lane]:
				r.Outcome = OutcomeDetected
			case res.CT[lane] == ref:
				r.Outcome = OutcomeIneffective
			default:
				r.Outcome = OutcomeEffective
			}
			out.res.Total++
			out.res.Counts[r.Outcome]++
			if retain {
				out.runs = append(out.runs, r)
			}
		}
	}
}
