package fault

import (
	"fmt"
	"strings"

	"repro/internal/netlist"
)

// IsolatePin gives one input pin of one cell a private net and returns it,
// so a fault can target a single gate input line the way the fault
// template attack's laser does (flipping "one input line to an AND gate"),
// without disturbing the other readers of the original net.
//
// A BUF cell is inserted between the original driver and the pin; the BUF
// is marked Keep so optimisation cannot remove it. The module must be
// re-compiled after the rewrite.
func IsolatePin(m *netlist.Module, cellIdx, pin int) (netlist.Net, error) {
	if cellIdx < 0 || cellIdx >= len(m.Cells) {
		return netlist.InvalidNet, fmt.Errorf("fault: cell index %d out of range", cellIdx)
	}
	c := &m.Cells[cellIdx]
	if pin < 0 || pin >= c.Kind.Arity() {
		return netlist.InvalidNet, fmt.Errorf("fault: pin %d out of range for %s", pin, c.Kind)
	}
	orig := c.In[pin]
	probe := m.NewNet(fmt.Sprintf("pin_probe_c%d_p%d", cellIdx, pin))
	buf := m.AddCell(netlist.KindBuf, probe, orig)
	buf.Keep = true
	buf.Tag = fmt.Sprintf("pinprobe.c%d.p%d", cellIdx, pin)
	// Re-point only the targeted pin. c may have been invalidated by
	// AddCell's append; re-take the pointer.
	m.Cells[cellIdx].In[pin] = probe
	return probe, nil
}

// FindAndGateWithInput scans the module for a 2-input AND cell that has
// net x on one pin; it returns the cell index and the pin index of the
// *other* pin (the probe pin whose flip reveals the value of x). The
// search is restricted to cells whose Tag has the given prefix (e.g. the
// instance name of one S-box), or unrestricted when prefix is empty.
func FindAndGateWithInput(m *netlist.Module, x netlist.Net, tagPrefix string) (cellIdx, otherPin int, ok bool) {
	for ci := range m.Cells {
		c := &m.Cells[ci]
		if c.Kind != netlist.KindAnd2 {
			continue
		}
		if tagPrefix != "" && !strings.HasPrefix(c.Tag, tagPrefix) {
			continue
		}
		if c.In[0] == x {
			return ci, 1, true
		}
		if c.In[1] == x {
			return ci, 0, true
		}
	}
	return 0, 0, false
}
