package power

import (
	"testing"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/spn"
	"repro/internal/synth"
)

var key = spn.KeyState{0x1111222233334444, 0x5555}

func runner(t *testing.T, scheme core.Scheme) (*core.Design, *core.Runner) {
	t.Helper()
	d := core.MustBuild(present.Spec(), core.Options{
		Scheme: scheme, Entropy: core.EntropyPrime, Engine: synth.EngineANF,
	})
	r, err := core.NewRunner(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, r
}

func TestTraceShape(t *testing.T) {
	d, r := runner(t, core.SchemeUnprotected)
	p := Attach(r, HammingDistance)
	p.BeginBatch()
	r.EncryptBatch([]uint64{1, 2, 3}, key, nil, nil)
	traces := p.Traces()
	if len(traces[0]) != d.CyclesPerRun() {
		t.Fatalf("trace length %d, want %d", len(traces[0]), d.CyclesPerRun())
	}
	// Different plaintexts must give different activity somewhere.
	same := true
	for i := range traces[0] {
		if traces[0][i] != traces[1][i] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct plaintexts produced identical traces")
	}
}

func TestTracesAreDeterministic(t *testing.T) {
	_, r := runner(t, core.SchemeUnprotected)
	p := Attach(r, HammingDistance)
	collect := func() []float64 {
		p.BeginBatch()
		r.EncryptBatch([]uint64{0xABCD}, key, nil, nil)
		return append([]float64(nil), p.Traces()[0]...)
	}
	a := collect()
	b := collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same stimulus must give identical traces")
		}
	}
}

func TestGlobalLambdaBalance(t *testing.T) {
	// The structural property found by the leakage experiment: with the
	// λ / ¬λ branch pairing, the GLOBAL activity trace is identical for
	// λ=0 and λ=1 under both leakage models (the branches swap roles).
	for _, model := range []Model{HammingDistance, HammingWeight} {
		_, r := runner(t, core.SchemeThreeInOne)
		p := Attach(r, model)
		trace := func(lam uint64) []float64 {
			p.BeginBatch()
			r.EncryptBatch([]uint64{0x123456789ABCDEF0}, key, nil,
				core.LambdaConst([]uint64{lam}))
			return append([]float64(nil), p.Traces()[0]...)
		}
		t0, t1 := trace(0), trace(1)
		for i := range t0 {
			if t0[i] != t1[i] {
				t.Fatalf("%v: global trace differs at cycle %d (%v vs %v)", model, i, t0[i], t1[i])
			}
		}
	}
}

func TestLocalizedProbeSeesLambda(t *testing.T) {
	d, r := runner(t, core.SchemeThreeInOne)
	p := Attach(r, HammingWeight)
	p.Restrict(d.BranchNets(core.BranchActual))
	trace := func(lam uint64) []float64 {
		p.BeginBatch()
		r.EncryptBatch([]uint64{0x123456789ABCDEF0}, key, nil,
			core.LambdaConst([]uint64{lam}))
		return append([]float64(nil), p.Traces()[0]...)
	}
	t0, t1 := trace(0), trace(1)
	differs := false
	for i := range t0 {
		if t0[i] != t1[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("a branch-local probe must distinguish the encodings")
	}
}

func TestRestrictNilRestoresGlobalView(t *testing.T) {
	d, r := runner(t, core.SchemeThreeInOne)
	p := Attach(r, HammingWeight)
	global := func() []float64 {
		p.BeginBatch()
		r.EncryptBatch([]uint64{42}, key, nil, core.LambdaConst([]uint64{0}))
		return append([]float64(nil), p.Traces()[0]...)
	}
	a := global()
	p.Restrict(d.BranchNets(core.BranchActual))
	p.Restrict(nil)
	b := global()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Restrict(nil) did not restore the global view")
		}
	}
}

// ParseModel resolves every wire token, defaults the empty string to the
// Hamming-distance model, and rejects junk.
func TestParseModel(t *testing.T) {
	cases := []struct {
		token string
		model Model
		ok    bool
	}{
		{"", HammingDistance, true},
		{"hd", HammingDistance, true},
		{"hamming-distance", HammingDistance, true},
		{"hw", HammingWeight, true},
		{"hamming-weight", HammingWeight, true},
		{"HD", 0, false},
		{"sasebo", 0, false},
	}
	for _, tc := range cases {
		m, ok := ParseModel(tc.token)
		if ok != tc.ok || (ok && m != tc.model) {
			t.Errorf("ParseModel(%q) = (%v, %v), want (%v, %v)",
				tc.token, m, ok, tc.model, tc.ok)
		}
		if ok && (m.String() == "") {
			t.Errorf("model %v has empty name", m)
		}
	}
}

// Engine width is an execution detail: a probe on a Word2 or Word4 runner
// must record bit-identical per-lane traces to the classic 64-lane probe,
// under both leakage models.
func TestEngineProbeWidthParity(t *testing.T) {
	d := core.MustBuild(present.Spec(), core.Options{
		Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPrime, Engine: synth.EngineANF,
	})
	c, err := sim.CompileCached(d.Mod)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]uint64, 64)
	lam := make([]uint64, 64)
	gen := rng.NewXoshiro(0x57A7E)
	for i := range pts {
		pts[i] = gen.Uint64()
		lam[i] = gen.Bits(1)
	}

	for _, model := range []Model{HammingDistance, HammingWeight} {
		trace := func(run func() [][]float64) [][]float64 { return run() }

		classic := trace(func() [][]float64 {
			r := core.NewRunnerFrom(d, c)
			p := Attach(r, model)
			p.BeginBatch()
			r.EncryptBatch(pts, key, nil, core.LambdaConst(lam))
			return p.Traces()
		})
		wide2 := trace(func() [][]float64 {
			r := core.NewWideRunnerFrom[sim.Word2](d, c)
			p := AttachEngine[sim.Word2](r, model)
			p.BeginBatch()
			r.EncryptBatch(pts, key, nil, core.LambdaConst(lam))
			return p.Traces()
		})
		wide4 := trace(func() [][]float64 {
			r := core.NewWideRunnerFrom[sim.Word4](d, c)
			p := AttachEngine[sim.Word4](r, model)
			p.BeginBatch()
			r.EncryptBatch(pts, key, nil, core.LambdaConst(lam))
			return p.Traces()
		})

		for lane := range pts {
			for cyc := range classic[lane] {
				if classic[lane][cyc] != wide2[lane][cyc] {
					t.Fatalf("%v: Word2 lane %d cycle %d = %v, classic %v",
						model, lane, cyc, wide2[lane][cyc], classic[lane][cyc])
				}
				if classic[lane][cyc] != wide4[lane][cyc] {
					t.Fatalf("%v: Word4 lane %d cycle %d = %v, classic %v",
						model, lane, cyc, wide4[lane][cyc], classic[lane][cyc])
				}
			}
		}
		// The wide runners' surplus lanes ran the all-zero stimulus; their
		// traces exist and have the right shape.
		if len(wide4) != 256 || len(wide4[255]) != d.CyclesPerRun() {
			t.Fatalf("%v: Word4 probe shape %dx%d", model, len(wide4), len(wide4[255]))
		}
	}
}
