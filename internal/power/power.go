// Package power is a behavioural side-channel model: it samples the
// switching activity (Hamming distance of all nets between consecutive
// cycles) or the state weight (Hamming weight of all nets) of a simulated
// design, producing one power trace per simulation lane per encryption —
// the standard CMOS leakage models used in side-channel evaluation.
//
// The paper's Section IV-B-2 claims the countermeasure "does not open up
// any additional side channel vulnerability"; the leakage experiments
// built on this package (internal/experiments) assess that claim with
// Welch's t-test, and also quantify an assumption the claim rests on: the
// encoding bit λ itself is visible to a power adversary (complemented
// wires flip the weight of the whole state), so the side-channel
// protection of λ must come from a dedicated SCA countermeasure layered on
// top, exactly as the paper (and its ACISP 2020 predecessor) presume.
package power

import (
	mathbits "math/bits"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Model selects the leakage model.
type Model int

// Leakage models.
const (
	// HammingDistance leaks the number of nets that toggled between
	// consecutive cycles (dynamic power, the usual CMOS model).
	HammingDistance Model = iota
	// HammingWeight leaks the number of nets at logic 1 each cycle
	// (static/bus model).
	HammingWeight
)

// String names the model.
func (m Model) String() string {
	if m == HammingDistance {
		return "hamming-distance"
	}
	return "hamming-weight"
}

// Probe attaches to a Runner and records one sample per cycle per lane.
type Probe struct {
	r     *core.Runner
	model Model
	nets  int
	prev  []uint64
	// include restricts sampling to a subset of nets (nil = all) — a
	// localized EM probe rather than a global power measurement.
	include []bool
	// traces[lane] accumulates samples for the CURRENT batch.
	traces [][]float64
}

// Attach installs the probe on the runner's cycle hook. Only one probe can
// be attached to a runner at a time.
func Attach(r *core.Runner, model Model) *Probe {
	p := &Probe{
		r:     r,
		model: model,
		nets:  r.D.Mod.NumNets(),
		prev:  make([]uint64, r.D.Mod.NumNets()+1),
	}
	r.CycleHook = p.sample
	return p
}

// Detach removes the probe from the runner.
func (p *Probe) Detach() { p.r.CycleHook = nil }

// Restrict limits the probe to the given nets, modelling a localized EM
// probe over one part of the die (e.g. one of the two computations).
// Passing nil restores the global view.
func (p *Probe) Restrict(nets []netlist.Net) {
	if nets == nil {
		p.include = nil
		return
	}
	p.include = make([]bool, p.nets+1)
	for _, n := range nets {
		if n > 0 && int(n) <= p.nets {
			p.include[n] = true
		}
	}
}

// BeginBatch resets the per-batch trace buffers; call before each
// EncryptBatch whose traces should be captured.
func (p *Probe) BeginBatch() {
	p.traces = make([][]float64, sim.Lanes)
	for i := range p.prev {
		p.prev[i] = 0
	}
}

// Traces returns the recorded traces of the last batch: traces[lane][t] is
// the leakage sample of that lane at cycle t.
func (p *Probe) Traces() [][]float64 { return p.traces }

// sample is the cycle hook: it reduces the simulator's net values into one
// leakage sample per lane.
func (p *Probe) sample(cycle int) {
	var perLane [sim.Lanes]float64
	s := p.r.S
	for n := 1; n <= p.nets; n++ {
		if p.include != nil && !p.include[n] {
			continue
		}
		w := s.NetWord(netlist.Net(n))
		var contrib uint64
		if p.model == HammingDistance {
			contrib = w ^ p.prev[n]
			p.prev[n] = w
		} else {
			contrib = w
		}
		for contrib != 0 {
			lane := mathbits.TrailingZeros64(contrib)
			perLane[lane]++
			contrib &= contrib - 1
		}
	}
	for lane := 0; lane < sim.Lanes; lane++ {
		p.traces[lane] = append(p.traces[lane], perLane[lane])
	}
}
