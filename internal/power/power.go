// Package power is a behavioural side-channel model: it samples the
// switching activity (Hamming distance of all nets between consecutive
// cycles) or the state weight (Hamming weight of all nets) of a simulated
// design, producing one power trace per simulation lane per encryption —
// the standard CMOS leakage models used in side-channel evaluation.
//
// The paper's Section IV-B-2 claims the countermeasure "does not open up
// any additional side channel vulnerability"; the leakage experiments
// built on this package (internal/experiments) assess that claim with
// Welch's t-test, and also quantify an assumption the claim rests on: the
// encoding bit λ itself is visible to a power adversary (complemented
// wires flip the weight of the whole state), so the side-channel
// protection of λ must come from a dedicated SCA countermeasure layered on
// top — either externally, as the paper presumes, or with the masked
// scheme variant (core.SchemeMaskedDup) the leakage service jobs measure.
package power

import (
	mathbits "math/bits"

	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Model selects the leakage model.
type Model int

// Leakage models.
const (
	// HammingDistance leaks the number of nets that toggled between
	// consecutive cycles (dynamic power, the usual CMOS model).
	HammingDistance Model = iota
	// HammingWeight leaks the number of nets at logic 1 each cycle
	// (static/bus model).
	HammingWeight
)

// String names the model.
func (m Model) String() string {
	if m == HammingDistance {
		return "hamming-distance"
	}
	return "hamming-weight"
}

// ParseModel resolves a wire token ("hd", "hamming-distance", "hw",
// "hamming-weight", or "" for the HD default) to its Model.
func ParseModel(token string) (Model, bool) {
	switch token {
	case "", "hd", "hamming-distance":
		return HammingDistance, true
	case "hw", "hamming-weight":
		return HammingWeight, true
	}
	return 0, false
}

// EngineProbe attaches to a width-W EngineRunner and records one sample per
// cycle per lane. Width is an execution detail: per-lane traces are
// bit-identical across widths, because each lane's sample only reduces that
// lane's own net values.
type EngineProbe[W sim.Word] struct {
	r     *core.EngineRunner[W]
	model Model
	nets  int
	lanes int
	// prev[g*(nets+1)+n] is net n's previous-cycle word of lane group g.
	prev []uint64
	// include restricts sampling to a subset of nets (nil = all) — a
	// localized EM probe rather than a global power measurement.
	include []bool
	// traces[lane] accumulates samples for the CURRENT batch.
	traces [][]float64
}

// Probe is the classic 64-lane probe; all pre-width-configuration call
// sites use this instantiation.
type Probe = EngineProbe[sim.Word1]

// Attach installs a probe on a classic 64-lane runner's cycle hook. Only
// one probe can be attached to a runner at a time.
func Attach(r *core.Runner, model Model) *Probe {
	return AttachEngine[sim.Word1](r, model)
}

// AttachEngine installs a probe on a width-W runner's cycle hook.
func AttachEngine[W sim.Word](r *core.EngineRunner[W], model Model) *EngineProbe[W] {
	lanes := r.S.LaneCount()
	nets := r.D.Mod.NumNets()
	p := &EngineProbe[W]{
		r:     r,
		model: model,
		nets:  nets,
		lanes: lanes,
		prev:  make([]uint64, (lanes/64)*(nets+1)),
	}
	r.CycleHook = p.sample
	return p
}

// Detach removes the probe from the runner.
func (p *EngineProbe[W]) Detach() { p.r.CycleHook = nil }

// Restrict limits the probe to the given nets, modelling a localized EM
// probe over one part of the die (e.g. one of the two computations).
// Passing nil restores the global view.
func (p *EngineProbe[W]) Restrict(nets []netlist.Net) {
	if nets == nil {
		p.include = nil
		return
	}
	p.include = make([]bool, p.nets+1)
	for _, n := range nets {
		if n > 0 && int(n) <= p.nets {
			p.include[n] = true
		}
	}
}

// BeginBatch resets the per-batch trace buffers; call before each
// EncryptBatch whose traces should be captured.
func (p *EngineProbe[W]) BeginBatch() {
	p.traces = make([][]float64, p.lanes)
	for i := range p.prev {
		p.prev[i] = 0
	}
}

// Traces returns the recorded traces of the last batch: traces[lane][t] is
// the leakage sample of that lane at cycle t.
func (p *EngineProbe[W]) Traces() [][]float64 { return p.traces }

// sample is the cycle hook: it reduces the simulator's net values into one
// leakage sample per lane.
func (p *EngineProbe[W]) sample(cycle int) {
	s := p.r.S
	groups := p.lanes / 64
	perLane := make([]float64, p.lanes)
	for g := 0; g < groups; g++ {
		prev := p.prev[g*(p.nets+1) : (g+1)*(p.nets+1)]
		base := g * 64
		for n := 1; n <= p.nets; n++ {
			if p.include != nil && !p.include[n] {
				continue
			}
			w := s.NetWordGroup(netlist.Net(n), g)
			var contrib uint64
			if p.model == HammingDistance {
				contrib = w ^ prev[n]
				prev[n] = w
			} else {
				contrib = w
			}
			for contrib != 0 {
				lane := mathbits.TrailingZeros64(contrib)
				perLane[base+lane]++
				contrib &= contrib - 1
			}
		}
	}
	for lane := 0; lane < p.lanes; lane++ {
		p.traces[lane] = append(p.traces[lane], perLane[lane])
	}
}
