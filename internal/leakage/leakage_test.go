package leakage

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/spn"
	"repro/internal/stats"
	"repro/internal/synth"
)

var testKey = spn.KeyState{0xFEDCBA9876543210, 0xFFFF}

func buildScheme(t *testing.T, s core.Scheme) *core.Design {
	t.Helper()
	opts := core.Options{Scheme: s, Engine: synth.EngineANF}
	if s.Randomized() {
		opts.Entropy = core.EntropyPrime
	}
	return core.MustBuild(present.Spec(), opts)
}

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for !e.Done() {
		e.Step()
	}
	return e.Result()
}

func sameResult(t *testing.T, a, b Result) {
	t.Helper()
	if a.Fixed != b.Fixed || a.Random != b.Random || a.Discarded != b.Discarded {
		t.Fatalf("kept counts differ: %+v vs %+v", a, b)
	}
	if a.MaxAbsT != b.MaxAbsT {
		t.Fatalf("max |t| differs: %v vs %v", a.MaxAbsT, b.MaxAbsT)
	}
	for i := range a.TValues {
		if a.TValues[i] != b.TValues[i] {
			t.Fatalf("t[%d] differs: %v vs %v", i, a.TValues[i], b.TValues[i])
		}
	}
}

func TestLeakageDeterminism(t *testing.T) {
	d := buildScheme(t, core.SchemeThreeInOne)
	cfg := Config{Design: d, Key: testKey, Model: power.HammingDistance,
		Pairs: 80, Seed: 0xD5, FixedPT: 0x0123456789ABCDEF}
	sameResult(t, run(t, cfg), run(t, cfg))
}

// A drained evaluation resumed from a JSON-round-tripped snapshot must
// reproduce the uninterrupted result bit for bit — the service job's
// drain/resume contract rests on this.
func TestLeakageResumeBitIdentical(t *testing.T) {
	d := buildScheme(t, core.SchemeMaskedDup)
	cfg := Config{Design: d, Key: testKey, Model: power.HammingWeight,
		Pairs: 100, Seed: 0x5EED, FixedPT: 0x0123456789ABCDEF}

	want := run(t, cfg)

	e1, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	e1.Step()
	e1.Step()
	raw, err := json.Marshal(e1.State())
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	var st State
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("unmarshal state: %v", err)
	}

	e2, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := e2.Restore(st); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if e2.NextBatch() != 2 {
		t.Fatalf("restored NextBatch = %d, want 2", e2.NextBatch())
	}
	remaining := 0
	for !e2.Done() {
		e2.Step()
		remaining++
	}
	if want := e2.NumBatches() - 2; remaining != want {
		t.Fatalf("resumed run executed %d batches, want exactly the remaining %d", remaining, want)
	}
	sameResult(t, want, e2.Result())
}

func TestLeakageRestoreRejectsMismatchedState(t *testing.T) {
	d := buildScheme(t, core.SchemeThreeInOne)
	e, err := New(Config{Design: d, Key: testKey, Pairs: 32, Seed: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := e.Restore(State{NextBatch: 99}); err == nil {
		t.Fatal("Restore accepted an out-of-range batch cursor")
	}
	if err := e.Restore(State{TTest: stats.TTestState{Samples: 3}}); err == nil {
		t.Fatal("Restore accepted a trace-length-mismatched accumulator")
	}
}

// Under an injected fault the evaluator must keep only SIFA-usable runs:
// comparator quiet AND released ciphertext equal to the fault-free
// reference.
func TestLeakageFaultFilterDiscardsDetectedRuns(t *testing.T) {
	d := buildScheme(t, core.SchemeThreeInOne)
	f := fault.At(d.SboxInputNet(core.BranchActual, 2, 1), fault.StuckAt0, d.LastRoundCycle())
	cfg := Config{Design: d, Key: testKey, Model: power.HammingDistance,
		Pairs: 64, Seed: 0xFA, FixedPT: 0x0123456789ABCDEF, Faults: []fault.Fault{f}}
	res := run(t, cfg)
	if res.Discarded == 0 {
		t.Fatal("stuck-at fault on a λ-diverse design never discarded a run")
	}
	if got := res.Fixed + res.Random + res.Discarded; got != 2*res.Pairs {
		t.Fatalf("kept %d + %d and discarded %d traces, want %d total",
			res.Fixed, res.Random, res.Discarded, 2*res.Pairs)
	}
	if res.Fixed == 0 || res.Random == 0 {
		t.Fatal("filtering emptied a class — stuck-at-0 should be data-dependent")
	}
}

func TestLeakageNewRejectsBadConfig(t *testing.T) {
	d := buildScheme(t, core.SchemeUnprotected)
	if _, err := New(Config{Design: nil, Pairs: 1}); err == nil {
		t.Fatal("New accepted a nil design")
	}
	if _, err := New(Config{Design: d, Pairs: 0}); err == nil {
		t.Fatal("New accepted a zero pair count")
	}
}

// The headline separation, in miniature: the unmasked duplicated core
// fails fixed-vs-random TVLA while the masked variant stays under the
// threshold at the same trace count. (EXPERIMENTS.md reproduces this at
// full scale.)
func TestLeakageMaskedVsUnmaskedSeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("trace collection is slow")
	}
	cfg := Config{Key: testKey, Model: power.HammingDistance,
		Pairs: 256, Seed: 0x77A, FixedPT: 0x0123456789ABCDEF}
	cfg.Design = buildScheme(t, core.SchemeThreeInOne)
	if res := run(t, cfg); !res.Leaks {
		t.Fatalf("unmasked three-in-one passed TVLA at %d pairs (max |t| = %.1f)", cfg.Pairs, res.MaxAbsT)
	}
	cfg.Design = buildScheme(t, core.SchemeMaskedDup)
	if res := run(t, cfg); res.Leaks {
		t.Fatalf("masked core failed first-order TVLA (max |t| = %.1f)", res.MaxAbsT)
	}
}

// With observability enabled, an evaluation counts its batches, traces and
// discards on the registry; PairsDone tracks checkpoint progress in pairs.
func TestLeakageObservabilityCounters(t *testing.T) {
	reg := obs.NewRegistry()
	EnableObservability(reg)
	defer EnableObservability(nil)

	d := buildScheme(t, core.SchemeThreeInOne)
	ev, err := New(Config{
		Design: d, Key: testKey, Model: power.HammingDistance,
		Pairs: 2*PairsPerBatch + 3, Seed: 5, FixedPT: 0xABCD,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ev.PairsDone() != 0 {
		t.Fatalf("fresh evaluator PairsDone = %d", ev.PairsDone())
	}
	ev.Step()
	if ev.PairsDone() != PairsPerBatch {
		t.Fatalf("after one batch PairsDone = %d, want %d", ev.PairsDone(), PairsPerBatch)
	}
	for !ev.Done() {
		ev.Step()
	}
	if ev.PairsDone() != 2*PairsPerBatch+3 {
		t.Fatalf("completed PairsDone = %d, want %d", ev.PairsDone(), 2*PairsPerBatch+3)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exposition := buf.String()
	metric := func(name string) int {
		for _, line := range strings.Split(exposition, "\n") {
			if !strings.HasPrefix(line, name) || strings.HasPrefix(line, name+"_") {
				continue
			}
			f := strings.Fields(line)
			n, err := strconv.Atoi(f[len(f)-1])
			if err != nil {
				t.Fatalf("bad metric line %q", line)
			}
			return n
		}
		t.Fatalf("metric %s missing from exposition", name)
		return 0
	}
	if got := metric("scone_leakage_batches_total"); got != ev.NumBatches() {
		t.Errorf("batches counter %d, want %d", got, ev.NumBatches())
	}
	if got := metric("scone_leakage_traces_total"); got != 2*(2*PairsPerBatch+3) {
		t.Errorf("traces counter %d, want %d", got, 2*(2*PairsPerBatch+3))
	}
	if got := metric("scone_leakage_discarded_total"); got != 0 {
		t.Errorf("discarded counter %d on a fault-free run", got)
	}
}
