package leakage

import (
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// metrics is the evaluator's instrument set, swapped in atomically by
// EnableObservability following the fault engine's pattern: one pointer
// load per batch while observability is disabled.
type metrics struct {
	batches   *obs.Counter
	traces    *obs.Counter
	discarded *obs.Counter
	batchNS   *obs.Histogram
}

var met atomic.Pointer[metrics]

// EnableObservability registers the leakage evaluator's metrics on reg
// and starts recording into them. Passing nil reverts to the free no-op
// default.
func EnableObservability(reg *obs.Registry) {
	if reg == nil {
		met.Store(nil)
		return
	}
	met.Store(&metrics{
		batches: reg.NewCounter("scone_leakage_batches_total",
			"Leakage evaluation batches simulated"),
		traces: reg.NewCounter("scone_leakage_traces_total",
			"Power traces accumulated into t-tests"),
		discarded: reg.NewCounter("scone_leakage_discarded_total",
			"Traces discarded by SIFA-style ineffective-run filtering"),
		batchNS: reg.NewHistogram("scone_leakage_batch_ns",
			"Wall time of one leakage batch (simulate + probe + accumulate)",
			obs.ExpBuckets(100_000, 4, 12)),
	})
}

// batchSpan times one batch without allocating when disabled.
type batchSpan struct {
	m     *metrics
	start time.Time
}

func startBatch() batchSpan {
	m := met.Load()
	if m == nil {
		return batchSpan{}
	}
	return batchSpan{m: m, start: time.Now()}
}

func (s batchSpan) end(kept, discarded int) {
	if s.m == nil {
		return
	}
	s.m.batches.Inc()
	s.m.traces.Add(int64(kept))
	s.m.discarded.Add(int64(discarded))
	s.m.batchNS.Observe(time.Since(s.start).Nanoseconds())
}
