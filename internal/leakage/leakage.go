// Package leakage is the combined masking+fault leakage evaluator: a
// fixed-vs-random TVLA assessment (Welch's t-test per clock cycle over
// power traces) of one synthesised core, optionally run under injected
// faults with SIFA-style ineffective-run filtering. It is the engine
// behind the service's "leakage" job kind and measures the claim the
// masked scheme variant (core.SchemeMaskedDup) exists for: the unmasked
// duplicated cores leak the plaintext class massively (they are fault
// countermeasures, not SCA countermeasures), while the masked variant
// passes first-order TVLA with unchanged fault-detection behaviour.
//
// Determinism contract (the same one fault campaigns follow): batch b
// draws every random value — plaintexts, garbage, λ, and for masked
// designs the mask port values — from a generator reseeded with
// (Seed, b), in a fixed per-lane order. The evaluator may therefore stop
// at any batch boundary, snapshot its accumulator (State), and resume on
// a fresh process bit-identically to an uninterrupted run.
package leakage

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/spn"
	"repro/internal/stats"
)

// PairsPerBatch is the number of fixed/random trace pairs one 64-lane
// simulator batch produces: even lanes carry the fixed plaintext (class
// 0), odd lanes a random one (class 1).
const PairsPerBatch = sim.Lanes / 2

// batchGamma derives batch b's seed as Seed ^ (b+1)*batchGamma — the
// same splitmix golden-gamma derivation the campaign engine uses.
const batchGamma = 0x9E3779B97F4A7C15

// Config parameterises one evaluation.
type Config struct {
	// Design is the built core under assessment.
	Design *core.Design
	// Key is the encryption key.
	Key spn.KeyState
	// Model selects the power model (Hamming distance or weight).
	Model power.Model
	// Pairs is the number of fixed/random trace pairs to collect
	// (before fault filtering).
	Pairs int
	// Seed drives all randomness, batch-deterministically.
	Seed uint64
	// FixedPT is the fixed class's plaintext.
	FixedPT uint64
	// Faults, when non-empty, are injected into every run; lanes whose
	// fault was NOT ineffective (comparator fired, or the released
	// ciphertext differs from the fault-free reference) are discarded
	// before the t-test — the SIFA adversary's trace selection, which is
	// exactly the combined power+fault setting the paper's Section
	// IV-B-2 claim concerns.
	Faults []fault.Fault
}

// State is the serialisable mid-flight state of an evaluation. Batches
// are (Seed, batch)-deterministic, so the next batch index plus the
// t-test accumulator resume the evaluation bit-identically.
type State struct {
	NextBatch int              `json:"next_batch"`
	Discarded int              `json:"discarded"`
	TTest     stats.TTestState `json:"ttest"`
}

// Result is a finished (or in-flight) evaluation's outcome.
type Result struct {
	// Model names the power model.
	Model string
	// Pairs is the configured pair count; Fixed/Random the traces kept
	// per class after fault filtering; Discarded the filtered lanes.
	Pairs, Fixed, Random, Discarded int
	// Samples is the trace length in cycles.
	Samples int
	// TValues is Welch's t per cycle; MaxAbsT its largest magnitude;
	// Leaks the TVLA verdict (|t| > 4.5 anywhere).
	TValues []float64
	MaxAbsT float64
	Leaks   bool
}

// Evaluator runs one configured evaluation batch by batch.
type Evaluator struct {
	cfg   Config
	r     *core.Runner
	probe *power.Probe
	// ref classifies faulted runs against the fault-free cipher.
	ref *spn.RefEncrypter
	gen *rng.Xoshiro
	tt  *stats.TTest

	nextBatch int
	batches   int
	discarded int

	// Per-batch draw scratch.
	pts, garbage []uint64
	lamCycles    [][]uint64
	masks        *core.MaskSet
}

// New builds an evaluator. The design is compiled through the
// process-wide cache; faults are installed on the evaluator's private
// runner, so concurrent evaluations do not interfere.
func New(cfg Config) (*Evaluator, error) {
	if cfg.Design == nil {
		return nil, fmt.Errorf("leakage: nil design")
	}
	if cfg.Pairs <= 0 {
		return nil, fmt.Errorf("leakage: need a positive pair count (got %d)", cfg.Pairs)
	}
	r, err := core.NewRunner(cfg.Design)
	if err != nil {
		return nil, err
	}
	d := cfg.Design
	e := &Evaluator{
		cfg:     cfg,
		r:       r,
		gen:     rng.NewXoshiro(0),
		tt:      stats.NewTTest(d.CyclesPerRun()),
		batches: (cfg.Pairs + PairsPerBatch - 1) / PairsPerBatch,
		pts:     make([]uint64, sim.Lanes),
		garbage: make([]uint64, sim.Lanes),
	}
	if len(cfg.Faults) > 0 {
		r.S.SetInjector(fault.NewInjector(cfg.Faults...))
		e.ref = d.Spec.NewRefEncrypter(cfg.Key)
	}
	if d.LambdaWidth > 0 {
		e.lamCycles = make([][]uint64, d.CyclesPerRun())
		for i := range e.lamCycles {
			e.lamCycles[i] = make([]uint64, sim.Lanes)
		}
	}
	if d.Opts.Scheme.Masked() {
		e.masks = &core.MaskSet{
			StateEven: make([]uint64, sim.Lanes),
			StateOdd:  make([]uint64, sim.Lanes),
			Lambda:    make([]uint64, sim.Lanes),
		}
		if d.MaskPoolWidth > 0 {
			e.masks.RandEven = make([]uint64, sim.Lanes)
			e.masks.RandOdd = make([]uint64, sim.Lanes)
		}
		r.Masks = e.masks
	}
	// The probe attaches last so construction errors leave no hook.
	e.probe = power.Attach(r, cfg.Model)
	return e, nil
}

// NumBatches is the evaluation's total batch count.
func (e *Evaluator) NumBatches() int { return e.batches }

// NextBatch is the index of the next batch Step will run.
func (e *Evaluator) NextBatch() int { return e.nextBatch }

// Done reports whether every batch has been accumulated.
func (e *Evaluator) Done() bool { return e.nextBatch >= e.batches }

// PairsDone is the number of pairs simulated so far (pair-granular
// progress; filtering does not reduce it).
func (e *Evaluator) PairsDone() int {
	return min(e.nextBatch*PairsPerBatch, e.cfg.Pairs)
}

// State snapshots the evaluation at the current batch boundary.
func (e *Evaluator) State() State {
	return State{NextBatch: e.nextBatch, Discarded: e.discarded, TTest: e.tt.State()}
}

// Restore rewinds or fast-forwards the evaluator to a snapshot taken by
// State on an identically configured evaluation.
func (e *Evaluator) Restore(s State) error {
	if s.NextBatch < 0 || s.NextBatch > e.batches {
		return fmt.Errorf("leakage: checkpoint batch %d outside 0..%d", s.NextBatch, e.batches)
	}
	if s.TTest.Samples != 0 && s.TTest.Samples != e.cfg.Design.CyclesPerRun() {
		return fmt.Errorf("leakage: checkpoint trace length %d != design's %d cycles",
			s.TTest.Samples, e.cfg.Design.CyclesPerRun())
	}
	e.nextBatch = s.NextBatch
	e.discarded = s.Discarded
	if s.TTest.Samples == 0 {
		e.tt = stats.NewTTest(e.cfg.Design.CyclesPerRun())
	} else {
		e.tt = stats.RestoreTTest(s.TTest)
	}
	return nil
}

// Step simulates the next batch and folds its traces into the t-test.
// It is a no-op once Done.
func (e *Evaluator) Step() {
	if e.Done() {
		return
	}
	sp := startBatch()
	b := e.nextBatch
	d := e.cfg.Design
	pairs := e.cfg.Pairs - b*PairsPerBatch
	if pairs > PairsPerBatch {
		pairs = PairsPerBatch
	}
	n := 2 * pairs

	// Batch draw stream, in the campaign engine's order: plaintext and
	// garbage interleaved per lane, then λ (cycle-major for fresh-per-
	// cycle entropy), then for masked designs the mask port values per
	// lane (state-even, state-odd, refresh-pool-even, refresh-pool-odd,
	// λ-mask). The fixed class overrides even lanes AFTER drawing, so
	// the stream layout is class-independent.
	e.gen.Reseed(e.cfg.Seed ^ (uint64(b)+1)*batchGamma)
	for i := 0; i < n; i++ {
		e.pts[i] = e.gen.Uint64()
		e.garbage[i] = e.gen.Uint64()
	}
	var lf core.LambdaFunc
	if d.LambdaWidth > 0 {
		if d.Opts.Entropy == core.EntropyPrime {
			vals := e.lamCycles[0][:n]
			for i := range vals {
				vals[i] = e.gen.Bits(d.LambdaWidth)
			}
			lf = core.LambdaConst(vals)
		} else {
			for _, cyc := range e.lamCycles {
				vals := cyc[:n]
				for i := range vals {
					vals[i] = e.gen.Bits(d.LambdaWidth)
				}
			}
			lf = func(c int) []uint64 { return e.lamCycles[c][:n] }
		}
	}
	if e.masks != nil {
		ms := e.masks
		for i := 0; i < n; i++ {
			ms.StateEven[i] = e.gen.Bits(d.Spec.BlockBits)
			ms.StateOdd[i] = e.gen.Bits(d.Spec.BlockBits)
			if d.MaskPoolWidth > 0 {
				ms.RandEven[i] = e.gen.Bits(d.MaskPoolWidth)
				ms.RandOdd[i] = e.gen.Bits(d.MaskPoolWidth)
			}
			ms.Lambda[i] = e.gen.Bits(1)
		}
	}
	for i := 0; i < n; i += 2 {
		e.pts[i] = e.cfg.FixedPT
	}

	e.probe.BeginBatch()
	res := e.r.EncryptBatchReuse(e.pts[:n], e.cfg.Key, e.garbage[:n], lf)
	traces := e.probe.Traces()
	kept := 0
	for i := 0; i < n; i++ {
		if e.ref != nil && (res.Fault[i] || res.CT[i] != e.ref.Encrypt(e.pts[i])) {
			e.discarded++
			continue
		}
		e.tt.Add(i&1, traces[i])
		kept++
	}
	e.nextBatch++
	sp.end(kept, n-kept)
}

// Result summarises the accumulated t-test.
func (e *Evaluator) Result() Result {
	fixed, random := e.tt.Count()
	maxT := e.tt.MaxAbsT()
	return Result{
		Model:     e.cfg.Model.String(),
		Pairs:     e.cfg.Pairs,
		Fixed:     fixed,
		Random:    random,
		Discarded: e.discarded,
		Samples:   e.cfg.Design.CyclesPerRun(),
		TValues:   e.tt.TValues(),
		MaxAbsT:   maxT,
		Leaks:     maxT > stats.LeakageThreshold,
	}
}
