package aes

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSboxSpotValues(t *testing.T) {
	// Spot values from FIPS-197 Figure 7.
	cases := map[byte]byte{0x00: 0x63, 0x01: 0x7C, 0x53: 0xED, 0xFF: 0x16, 0x10: 0xCA}
	for in, want := range cases {
		if Sbox[in] != want {
			t.Errorf("Sbox[%#02x] = %#02x, want %#02x", in, Sbox[in], want)
		}
	}
}

func TestSboxIsPermutation(t *testing.T) {
	var seen [256]bool
	for _, v := range Sbox {
		if seen[v] {
			t.Fatalf("duplicate S-box output %#02x", v)
		}
		seen[v] = true
	}
	for x := 0; x < 256; x++ {
		if SboxInv[Sbox[x]] != byte(x) {
			t.Fatalf("SboxInv does not invert Sbox at %#02x", x)
		}
	}
}

func TestFIPS197KnownAnswer(t *testing.T) {
	key := [16]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A, 0x0B, 0x0C, 0x0D, 0x0E, 0x0F}
	pt := [16]byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF}
	want := [16]byte{0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4, 0xC5, 0x5A}
	got := Encrypt(pt, key)
	if !bytes.Equal(got[:], want[:]) {
		t.Fatalf("Encrypt = %x, want %x", got, want)
	}
}

func TestDecryptInvertsEncrypt(t *testing.T) {
	f := func(pt, key [16]byte) bool {
		return Decrypt(Encrypt(pt, key), key) == pt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpandKeyFirstAndLastRoundKey(t *testing.T) {
	// FIPS-197 Appendix A.1 expansion of the same key.
	key := [16]byte{0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C}
	rks := ExpandKey(key)
	if !bytes.Equal(rks[0][:], key[:]) {
		t.Errorf("round key 0 should be the key itself")
	}
	wantLast := [16]byte{0xD0, 0x14, 0xF9, 0xA8, 0xC9, 0xEE, 0x25, 0x89, 0xE1, 0x3F, 0x0C, 0xC8, 0xB6, 0x63, 0x0C, 0xA6}
	if !bytes.Equal(rks[10][:], wantLast[:]) {
		t.Errorf("round key 10 = %x, want %x", rks[10], wantLast)
	}
}
