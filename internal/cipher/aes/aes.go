// Package aes implements AES-128 (FIPS-197) as a software reference and
// exposes the AES S-box as a truth table for the Table III area
// experiments. The S-box is generated from its algebraic definition
// (multiplicative inverse in GF(2^8) followed by the affine map) rather
// than transcribed, and the full cipher is validated against the FIPS-197
// known-answer vector in the package tests.
package aes

import "repro/internal/synth"

// Cipher parameters.
const (
	BlockBytes = 16
	KeyBytes   = 16
	Rounds     = 10
	SboxBits   = 8
)

// Sbox is the AES S-box, SboxInv its inverse.
var (
	Sbox    [256]byte
	SboxInv [256]byte
)

func init() {
	for x := 0; x < 256; x++ {
		inv := gfInv(byte(x))
		b := inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^ rotl8(inv, 3) ^ rotl8(inv, 4) ^ 0x63
		Sbox[x] = b
		SboxInv[b] = byte(x)
	}
}

func rotl8(b byte, k uint) byte { return b<<k | b>>(8-k) }

// gfMul multiplies in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
func gfMul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 == 1 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1B
		}
		b >>= 1
	}
	return p
}

// gfInv returns the multiplicative inverse (0 maps to 0), via a^254.
func gfInv(a byte) byte {
	if a == 0 {
		return 0
	}
	// a^254 by square-and-multiply.
	result := byte(1)
	exp := 254
	base := a
	for exp > 0 {
		if exp&1 == 1 {
			result = gfMul(result, base)
		}
		base = gfMul(base, base)
		exp >>= 1
	}
	return result
}

func xtime(b byte) byte { return gfMul(b, 2) }

// ExpandKey derives the 11 round keys from a 16-byte key.
func ExpandKey(key [KeyBytes]byte) [Rounds + 1][16]byte {
	var w [44][4]byte
	for i := 0; i < 4; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	rcon := byte(1)
	for i := 4; i < 44; i++ {
		tmp := w[i-1]
		if i%4 == 0 {
			tmp = [4]byte{
				Sbox[tmp[1]] ^ rcon,
				Sbox[tmp[2]],
				Sbox[tmp[3]],
				Sbox[tmp[0]],
			}
			rcon = xtime(rcon)
		}
		for j := 0; j < 4; j++ {
			w[i][j] = w[i-4][j] ^ tmp[j]
		}
	}
	var rks [Rounds + 1][16]byte
	for r := 0; r <= Rounds; r++ {
		for c := 0; c < 4; c++ {
			copy(rks[r][4*c:4*c+4], w[4*r+c][:])
		}
	}
	return rks
}

// Encrypt encrypts one 16-byte block. The state layout follows FIPS-197:
// byte i of the input is state column i/4, row i%4.
func Encrypt(pt [BlockBytes]byte, key [KeyBytes]byte) [BlockBytes]byte {
	rks := ExpandKey(key)
	state := pt
	addRoundKey(&state, rks[0])
	for r := 1; r < Rounds; r++ {
		subBytes(&state)
		shiftRows(&state)
		mixColumns(&state)
		addRoundKey(&state, rks[r])
	}
	subBytes(&state)
	shiftRows(&state)
	addRoundKey(&state, rks[Rounds])
	return state
}

// Decrypt inverts Encrypt.
func Decrypt(ct [BlockBytes]byte, key [KeyBytes]byte) [BlockBytes]byte {
	rks := ExpandKey(key)
	state := ct
	addRoundKey(&state, rks[Rounds])
	invShiftRows(&state)
	invSubBytes(&state)
	for r := Rounds - 1; r >= 1; r-- {
		addRoundKey(&state, rks[r])
		invMixColumns(&state)
		invShiftRows(&state)
		invSubBytes(&state)
	}
	addRoundKey(&state, rks[0])
	return state
}

func addRoundKey(s *[16]byte, rk [16]byte) {
	for i := range s {
		s[i] ^= rk[i]
	}
}

func subBytes(s *[16]byte) {
	for i := range s {
		s[i] = Sbox[s[i]]
	}
}

func invSubBytes(s *[16]byte) {
	for i := range s {
		s[i] = SboxInv[s[i]]
	}
}

// shiftRows rotates row r left by r; byte i sits at column i/4, row i%4.
func shiftRows(s *[16]byte) {
	var out [16]byte
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			out[4*c+r] = s[4*((c+r)%4)+r]
		}
	}
	*s = out
}

func invShiftRows(s *[16]byte) {
	var out [16]byte
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			out[4*((c+r)%4)+r] = s[4*c+r]
		}
	}
	*s = out
}

func mixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c] = gfMul(a0, 2) ^ gfMul(a1, 3) ^ a2 ^ a3
		s[4*c+1] = a0 ^ gfMul(a1, 2) ^ gfMul(a2, 3) ^ a3
		s[4*c+2] = a0 ^ a1 ^ gfMul(a2, 2) ^ gfMul(a3, 3)
		s[4*c+3] = gfMul(a0, 3) ^ a1 ^ a2 ^ gfMul(a3, 2)
	}
}

func invMixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c] = gfMul(a0, 14) ^ gfMul(a1, 11) ^ gfMul(a2, 13) ^ gfMul(a3, 9)
		s[4*c+1] = gfMul(a0, 9) ^ gfMul(a1, 14) ^ gfMul(a2, 11) ^ gfMul(a3, 13)
		s[4*c+2] = gfMul(a0, 13) ^ gfMul(a1, 9) ^ gfMul(a2, 14) ^ gfMul(a3, 11)
		s[4*c+3] = gfMul(a0, 11) ^ gfMul(a1, 13) ^ gfMul(a2, 9) ^ gfMul(a3, 14)
	}
}

// SboxTruthTable returns the 8x8 AES S-box truth table for synthesis.
func SboxTruthTable() *synth.TruthTable {
	tbl := make([]uint64, 256)
	for i, v := range Sbox {
		tbl[i] = uint64(v)
	}
	return synth.FromSbox(tbl, SboxBits)
}
