// Package gift implements GIFT-64 (Banik et al., CHES 2017) as a second
// lightweight SPN, demonstrating the paper's claim that the three-in-one
// countermeasure "is easily adaptable for any symmetric key primitive":
// the identical core builders consume this spec unchanged.
//
// GIFT-64 differs from PRESENT in every structural knob the generic
// builder exposes: the round key is added AFTER the permutation, the XOR
// mask carries round constants from a 6-bit LFSR, there is no final
// whitening, and the key register is 128 bits wide.
//
// Validation: no known-answer vector is embedded (none was available to
// this offline reproduction); instead the implementation is validated by
// encrypt/decrypt round-trips, by gate-level netlist vs. software
// equivalence, and by structural checks of the S-box and permutation
// against the published definitions.
package gift

import (
	"repro/internal/netlist"
	"repro/internal/spn"
	"repro/internal/synth"
)

// Cipher parameters.
const (
	BlockBits = 64
	KeyBits   = 128
	Rounds    = 28
	SboxBits  = 4
	NumSboxes = 16
)

// Sbox is the GIFT S-box GS.
var Sbox = []uint64{
	0x1, 0xA, 0x4, 0xC, 0x6, 0xF, 0x3, 0x9,
	0x2, 0xD, 0xB, 0x7, 0x5, 0x0, 0x8, 0xE,
}

// Perm is the GIFT-64 bit permutation P64 (output bit Perm[i] = input bit
// i), generated from the closed form in the GIFT paper:
//
//	P64(i) = 4*floor(i/16) + 16*((3*floor((i mod 16)/4) + (i mod 4)) mod 4) + (i mod 4)
var Perm = buildPerm()

func buildPerm() []int {
	p := make([]int, BlockBits)
	for i := 0; i < BlockBits; i++ {
		p[i] = 4*(i/16) + 16*((3*((i%16)/4)+(i%4))%4) + i%4
	}
	return p
}

// roundConstants returns the 6-bit LFSR constants for rounds 1..n:
// (c5..c0) <- (c4..c0, c5 XNOR c4), starting from the all-zero state.
func roundConstants(n int) []uint64 {
	rc := make([]uint64, n+1)
	c := uint64(0)
	for r := 1; r <= n; r++ {
		c = ((c << 1) & 0x3F) | (((c >> 5) ^ (c >> 4)) & 1) ^ 1
		rc[r] = c
	}
	return rc
}

var rcTable = roundConstants(Rounds)

// keyWord extracts 16-bit key word i (k0 = bits 0..15 of state word 0).
func keyWord(ks spn.KeyState, i int) uint64 {
	return (ks[i/4] >> (uint(i%4) * 16)) & 0xFFFF
}

func setKeyWord(ks spn.KeyState, i int, v uint64) spn.KeyState {
	ks[i/4] &^= 0xFFFF << (uint(i%4) * 16)
	ks[i/4] |= (v & 0xFFFF) << (uint(i%4) * 16)
	return ks
}

func rotr16(v uint64, k uint) uint64 {
	v &= 0xFFFF
	return ((v >> k) | (v << (16 - k))) & 0xFFFF
}

// roundXORMask spreads the 32-bit round key U||V into the state (u_i at
// bit 4i+1, v_i at bit 4i), adds the round constant at bits 23, 19, 15,
// 11, 7, 3 and the fixed 1 at bit 63.
func roundXORMask(ks spn.KeyState, r int) uint64 {
	u := keyWord(ks, 1)
	v := keyWord(ks, 0)
	var mask uint64
	for i := 0; i < 16; i++ {
		mask |= ((v >> uint(i)) & 1) << uint(4*i)
		mask |= ((u >> uint(i)) & 1) << uint(4*i+1)
	}
	c := uint64(0)
	if r >= 1 && r < len(rcTable) {
		c = rcTable[r]
	}
	for i := 0; i < 6; i++ {
		mask |= ((c >> uint(i)) & 1) << uint(4*i+3)
	}
	mask |= 1 << 63
	return mask
}

// nextKeyState rotates the key register: (k7..k0) -> (k1>>>2, k0>>>12,
// k7, k6, k5, k4, k3, k2).
func nextKeyState(ks spn.KeyState, _ int) spn.KeyState {
	var next spn.KeyState
	next = setKeyWord(next, 7, rotr16(keyWord(ks, 1), 2))
	next = setKeyWord(next, 6, rotr16(keyWord(ks, 0), 12))
	for i := 0; i < 6; i++ {
		next = setKeyWord(next, 5-i, keyWord(ks, 7-i))
	}
	return next
}

// Spec returns the spn description of GIFT-64.
func Spec() *spn.Spec {
	s := &spn.Spec{
		Name:            "gift64",
		BlockBits:       BlockBits,
		KeyBits:         KeyBits,
		Rounds:          Rounds,
		SboxBits:        SboxBits,
		Sbox:            append([]uint64(nil), Sbox...),
		Perm:            append([]int(nil), Perm...),
		KeyAddAfterPerm: true,
		FinalWhitening:  false,
		KeyStateBits:    KeyBits,
		InitKeyState:    func(key spn.KeyState) spn.KeyState { return key },
		RoundXORMask:    roundXORMask,
		NextKeyState:    nextKeyState,
		KeySchedNet:     keySchedNet,
		CounterBits:     6, // the round-constant LUT consumes all 6 bits
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// Encrypt is the software reference encryption.
func Encrypt(pt uint64, key spn.KeyState) uint64 {
	return Spec().Encrypt(pt, key)
}

// Decrypt inverts Encrypt.
func Decrypt(ct uint64, key spn.KeyState) uint64 {
	return Spec().Decrypt(ct, key)
}

// rcModule lazily synthesises the 6-bit round-counter -> round-constant
// lookup used by the netlist key schedule.
var rcModule = func() *netlist.Module {
	tt := synth.FromFunc(6, 6, func(c uint64) uint64 {
		if c >= 1 && int(c) <= Rounds {
			return rcTable[c]
		}
		return 0
	})
	return synth.Optimize(tt.SynthesizeBDD("gift_rc_lut", "x", "y"), synth.DefaultOptOptions())
}()

// keySchedNet is the netlist form of the key schedule. GIFT's schedule is
// pure wiring plus the constant LUT: no S-box is involved (the sbox
// argument is unused).
func keySchedNet(m *netlist.Module, ks netlist.Bus, counter netlist.Bus, _ spn.SboxNetFunc) (mask, next netlist.Bus) {
	word := func(i int) netlist.Bus { return ks.Slice(16*i, 16*i+16) }

	u := word(1)
	v := word(0)
	rc := m.MustInstantiate(rcModule, "rclut", map[string]netlist.Bus{"x": counter})["y"]

	c0 := m.Const0()
	c1 := m.Const1()
	mask = make(netlist.Bus, BlockBits)
	for i := range mask {
		mask[i] = c0
	}
	for i := 0; i < 16; i++ {
		mask[4*i] = v[i]
		mask[4*i+1] = u[i]
	}
	for i := 0; i < 6; i++ {
		mask[4*i+3] = rc[i]
	}
	mask[63] = c1

	// Word-level rotation network (wiring only).
	rot := func(b netlist.Bus, k int) netlist.Bus {
		out := make(netlist.Bus, 16)
		for j := 0; j < 16; j++ {
			out[j] = b[(j+k)%16] // right-rotate by k: out bit j = in bit j+k
		}
		return out
	}
	next = make(netlist.Bus, 0, KeyBits)
	// next k0..k5 = old k2..k7; next k6 = k0>>>12; next k7 = k1>>>2.
	for i := 2; i <= 7; i++ {
		next = next.Concat(word(i))
	}
	next = next.Concat(rot(v, 12), rot(u, 2))
	return mask, next
}
