package gift

import (
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/spn"
)

func TestSboxIsPermutation(t *testing.T) {
	var seen [16]bool
	for _, v := range Sbox {
		if seen[v] {
			t.Fatalf("duplicate S-box output %X", v)
		}
		seen[v] = true
	}
}

func TestPermIsPermutation(t *testing.T) {
	if !bits.IsPermutation(Perm) {
		t.Fatal("P64 is not a permutation")
	}
	// Spot values from the published P64 table: P64(0)=0, P64(1)=17,
	// P64(2)=34, P64(4)=48, P64(51)=63, P64(63)=15.
	spots := map[int]int{0: 0, 1: 17, 2: 34, 4: 48, 51: 63, 63: 15}
	for i, want := range spots {
		if Perm[i] != want {
			t.Fatalf("P64(%d) = %d, want %d", i, Perm[i], want)
		}
	}
}

func TestRoundConstantSequence(t *testing.T) {
	// Published LFSR sequence (GIFT paper, Table 2).
	want := []uint64{0x01, 0x03, 0x07, 0x0F, 0x1F, 0x3E, 0x3D, 0x3B, 0x37, 0x2F, 0x1E, 0x3C}
	for i, w := range want {
		if rcTable[i+1] != w {
			t.Fatalf("round constant %d = %02X, want %02X", i+1, rcTable[i+1], w)
		}
	}
}

func TestDecryptInvertsEncrypt(t *testing.T) {
	f := func(pt uint64, key spn.KeyState) bool {
		return Decrypt(Encrypt(pt, key), key) == pt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncryptChangesWithKeyAndPlaintext(t *testing.T) {
	key := spn.KeyState{1, 2}
	if Encrypt(0, key) == Encrypt(1, key) {
		t.Fatal("distinct plaintexts collided")
	}
	if Encrypt(0, key) == Encrypt(0, spn.KeyState{1, 3}) {
		t.Fatal("distinct keys collided")
	}
}
