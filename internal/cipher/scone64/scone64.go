// Package scone64 defines a SYNTHETIC 64-bit SPN whose diffusion layer is
// a dense circulant GF(2) matrix (x -> x ^ (x<<<1) ^ (x<<<2)) instead of a
// bit permutation. It is not a published cipher and makes no security
// claims; it exists to exercise the general-linear-layer path of the
// countermeasure builders — the paper's scheme must re-normalise the λ
// encoding through any linear layer, and rows of even parity are exactly
// the case where a correction XOR is required (a permutation never needs
// one). Everything else (PRESENT's S-box, a rotate-and-counter key
// schedule) is deliberately boring.
package scone64

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/netlist"
	"repro/internal/spn"
)

// Cipher parameters.
const (
	BlockBits = 64
	KeyBits   = 64
	Rounds    = 24
	SboxBits  = 4
)

// Sbox reuses the PRESENT S-box (any 4-bit permutation works; using a
// published one keeps the non-linear layer meaningful).
var Sbox = []uint64{
	0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
	0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
}

// LinearRows is the circulant mixing layer x ^ (x<<<1) ^ (x<<<2); the
// polynomial 1+z+z^2 is coprime to z^64+1 over GF(2), so the matrix is
// invertible (Validate re-checks).
var LinearRows = bits.RotationXORRows(BlockBits, 0, 1, 2)

func roundKey(ks spn.KeyState, r int) uint64 { return ks[0] }

func nextKey(ks spn.KeyState, r int) spn.KeyState {
	ks[0] = bits.RotateLeft64(ks[0], 13) ^ uint64(r)
	return ks
}

// Spec returns the spn description.
func Spec() *spn.Spec {
	s := &spn.Spec{
		Name:           "scone64",
		BlockBits:      BlockBits,
		KeyBits:        KeyBits,
		Rounds:         Rounds,
		SboxBits:       SboxBits,
		Sbox:           append([]uint64(nil), Sbox...),
		LinearRows:     append([]uint64(nil), LinearRows...),
		FinalWhitening: true,
		KeyStateBits:   KeyBits,
		InitKeyState:   func(k spn.KeyState) spn.KeyState { return k },
		RoundXORMask:   roundKey,
		NextKeyState:   nextKey,
		KeySchedNet:    keySchedNet,
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// Encrypt is the software reference encryption.
func Encrypt(pt uint64, key spn.KeyState) uint64 { return Spec().Encrypt(pt, key) }

// Decrypt inverts Encrypt.
func Decrypt(ct uint64, key spn.KeyState) uint64 { return Spec().Decrypt(ct, key) }

// keySchedNet: the round key is the whole register; the update is a
// rotation (wiring) XOR the round counter into the low six bits.
func keySchedNet(m *netlist.Module, ks netlist.Bus, counter netlist.Bus, _ spn.SboxNetFunc) (mask, next netlist.Bus) {
	if len(ks) != KeyBits {
		panic(fmt.Sprintf("scone64: key bus width %d", len(ks)))
	}
	mask = ks.Clone()
	rot := make(netlist.Bus, KeyBits)
	for j := 0; j < KeyBits; j++ {
		// Left-rotation by 13: output bit j = input bit (j-13) mod 64.
		rot[j] = ks[((j-13)%KeyBits+KeyBits)%KeyBits]
	}
	next = rot
	for i := 0; i < 6; i++ {
		next[i] = m.Xor(next[i], counter[i])
	}
	return mask, next
}
