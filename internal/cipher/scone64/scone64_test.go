package scone64

import (
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/spn"
)

func TestLinearLayerInvertible(t *testing.T) {
	if _, ok := bits.MatInvert(LinearRows); !ok {
		t.Fatal("circulant layer must be invertible")
	}
}

func TestLinearLayerHasEvenParityRows(t *testing.T) {
	// The whole point of this cipher: rows of odd weight 3 everywhere
	// would behave like a permutation under a global λ; check the layer
	// is genuinely dense (weight 3) and that it is NOT a permutation.
	perm := true
	for _, r := range LinearRows {
		if w := bits.OnesCount64(r); w != 3 {
			t.Fatalf("row weight %d, want 3", w)
		}
		if bits.OnesCount64(r) != 1 {
			perm = false
		}
	}
	if perm {
		t.Fatal("layer degenerated to a permutation")
	}
}

func TestDecryptInvertsEncrypt(t *testing.T) {
	f := func(pt, key uint64) bool {
		k := spn.KeyState{key, 0}
		return Decrypt(Encrypt(pt, k), k) == pt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAvalanche(t *testing.T) {
	// Sanity: one flipped plaintext bit changes roughly half the
	// ciphertext after 24 rounds of S-box + dense mixing.
	k := spn.KeyState{0x123456789ABCDEF0, 0}
	base := Encrypt(0, k)
	total := 0
	for b := 0; b < 64; b++ {
		total += bits.HammingDistance(base, Encrypt(1<<uint(b), k))
	}
	avg := float64(total) / 64
	if avg < 24 || avg > 40 {
		t.Fatalf("average avalanche %.1f bits, expected ~32", avg)
	}
}
