package present

import (
	"testing"
	"testing/quick"
)

// Published PRESENT-80 test vectors (Bogdanov et al., CHES 2007, Table 2).
var kats = []struct {
	keyHi uint16
	keyLo uint64
	pt    uint64
	ct    uint64
}{
	{0x0000, 0x0000000000000000, 0x0000000000000000, 0x5579C1387B228445},
	{0xFFFF, 0xFFFFFFFFFFFFFFFF, 0x0000000000000000, 0xE72C46C0F5945049},
	{0x0000, 0x0000000000000000, 0xFFFFFFFFFFFFFFFF, 0xA112FFC72F68417B},
	{0xFFFF, 0xFFFFFFFFFFFFFFFF, 0xFFFFFFFFFFFFFFFF, 0x3333DCD3213210D2},
}

func TestKnownAnswerVectors(t *testing.T) {
	for i, v := range kats {
		got := Encrypt(v.pt, NewKey80(v.keyHi, v.keyLo))
		if got != v.ct {
			t.Errorf("vector %d: Encrypt(%016X) = %016X, want %016X", i, v.pt, got, v.ct)
		}
	}
}

func TestDecryptInvertsEncrypt(t *testing.T) {
	f := func(pt, keyLo uint64, keyHi uint16) bool {
		key := NewKey80(keyHi, keyLo)
		return Decrypt(Encrypt(pt, key), key) == pt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
