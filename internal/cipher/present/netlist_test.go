package present

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/spn"
	"repro/internal/synth"
)

// TestKeySchedNetMatchesSoftware compares the combinational key-schedule
// slice against the software functions for one round at a time.
func TestKeySchedNetMatchesSoftware(t *testing.T) {
	m := netlist.New("ks")
	ksBus := m.AddInput("ks", KeyBits80)
	cnt := m.AddInput("cnt", 6)
	sboxMod := SboxTruthTable().SynthesizeANF("sbox", "x", "y")
	sboxFn := func(mm *netlist.Module, inst string, in netlist.Bus) netlist.Bus {
		return mm.MustInstantiate(sboxMod, inst, map[string]netlist.Bus{"x": in})["y"]
	}
	mask, next := keySchedNet(m, ksBus, cnt, sboxFn)
	m.AddOutput("mask", mask)
	m.AddOutput("next_lo", next.Slice(0, 64))
	m.AddOutput("next_hi", next.Slice(64, 80))

	c, err := sim.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	s := c.NewSimulator()

	cases := []struct {
		ks    Key80
		round int
	}{
		{Key80{0, 0}, 1},
		{Key80{^uint64(0), 0xFFFF}, 31},
		{Key80{0x0123456789ABCDEF, 0x8421}, 7},
		{Key80{0xDEADBEEFCAFEF00D, 0x1337}, 16},
	}
	for _, tc := range cases {
		s.SetInputBroadcast("ks", 0) // clear lanes
		// Key state is wider than 64 bits: drive per-net words.
		words := make([]uint64, KeyBits80)
		for i := 0; i < KeyBits80; i++ {
			if tc.ks.Bit(i) == 1 {
				words[i] = ^uint64(0)
			}
		}
		s.SetInputLaneWords("ks", words)
		s.SetInputBroadcast("cnt", uint64(tc.round))
		s.Eval()

		wantMask := roundKey80(tc.ks)
		if got := s.OutputLane("mask", 0); got != wantMask {
			t.Fatalf("round key for %x: %016X, want %016X", tc.ks, got, wantMask)
		}
		wantNext := nextKeyState80(tc.ks, tc.round)
		gotNext := Key80{s.OutputLane("next_lo", 0), s.OutputLane("next_hi", 0)}
		if gotNext != wantNext {
			t.Fatalf("next key state for %x round %d: %x, want %x", tc.ks, tc.round, gotNext, wantNext)
		}
	}
}

func TestRoundKeysAgainstEncrypt(t *testing.T) {
	// Applying the expanded round keys manually must equal Encrypt.
	key := NewKey80(0xBEEF, 0x0123456789ABCDEF)
	rks := RoundKeys(key)
	if len(rks) != 32 {
		t.Fatalf("expected 32 round keys, got %d", len(rks))
	}
	spec := Spec()
	state := uint64(0x5555AAAA5555AAAA)
	want := Encrypt(state, key)
	for r := 0; r < Rounds; r++ {
		state ^= rks[r]
		state = spec.SboxLayer(state)
		var out uint64
		for i, p := range Perm {
			out |= ((state >> uint(i)) & 1) << uint(p)
		}
		state = out
	}
	state ^= rks[Rounds]
	if state != want {
		t.Fatalf("manual round-key application diverges: %016X vs %016X", state, want)
	}
}

func TestKeyFromFinalState(t *testing.T) {
	key := NewKey80(0x1357, 0xFEDCBA9876543210)
	ks := spn.KeyState(key)
	for r := 1; r <= Rounds; r++ {
		ks = nextKeyState80(ks, r)
	}
	if got := KeyFromFinalState(ks); got != key {
		t.Fatalf("schedule inversion failed: %x != %x", got, key)
	}
}

func TestRecoverKeyFromK32(t *testing.T) {
	key := NewKey80(0xACE5, 0x1122334455667788)
	rks := RoundKeys(key)
	pt := uint64(0xDEAFBEEFFEEDF00D)
	ct := Encrypt(pt, key)
	got, ok := RecoverKeyFromK32(rks[Rounds], pt, ct)
	if !ok || got != key {
		t.Fatalf("RecoverKeyFromK32 failed: ok=%v got=%x", ok, got)
	}
}

func TestSboxNetlistExhaustive(t *testing.T) {
	for _, engine := range []synth.Engine{synth.EngineANF, synth.EngineBDD} {
		m := SboxTruthTable().Synthesize(engine, "s", "x", "y")
		c, err := sim.Compile(m)
		if err != nil {
			t.Fatal(err)
		}
		for x := uint64(0); x < 16; x++ {
			if got := sim.EvalComb(c, map[string]uint64{"x": x})["y"]; got != Sbox[x] {
				t.Fatalf("%v: S(%X) = %X, want %X", engine, x, got, Sbox[x])
			}
		}
	}
}
