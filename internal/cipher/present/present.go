// Package present implements the PRESENT ultra-lightweight block cipher
// (Bogdanov et al., CHES 2007) with the 80-bit key schedule used by the
// paper's experiments, both as a software reference validated against the
// published test vectors and as an spn.Spec consumed by the netlist and
// countermeasure builders.
package present

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/netlist"
	"repro/internal/spn"
	"repro/internal/synth"
)

// Cipher parameters.
const (
	BlockBits = 64
	KeyBits80 = 80
	Rounds    = 31
	SboxBits  = 4
	NumSboxes = 16
)

// Sbox is the PRESENT 4-bit S-box.
var Sbox = []uint64{
	0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
	0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
}

// Perm is the PRESENT bit permutation: output bit Perm[i] = input bit i,
// with P(i) = 16*i mod 63 for i < 63 and P(63) = 63.
var Perm = buildPerm()

func buildPerm() []int {
	p := make([]int, BlockBits)
	for i := 0; i < BlockBits-1; i++ {
		p[i] = (16 * i) % 63
	}
	p[BlockBits-1] = BlockBits - 1
	return p
}

// Key80 is an 80-bit PRESENT key; bits 0..63 live in word 0 and bits 64..79
// in the low bits of word 1.
type Key80 = spn.KeyState

// NewKey80 builds a key from its most-significant 16 bits (hi) and
// least-significant 64 bits (lo): the key value is hi·2^64 + lo.
func NewKey80(hi uint16, lo uint64) Key80 {
	return Key80{lo, uint64(hi)}
}

// rotl80 rotates the 80-bit key state left by 61 positions.
func rotl80by61(k Key80) Key80 {
	// bit j of result = bit (j+19) mod 80 of input.
	var out Key80
	for j := 0; j < KeyBits80; j++ {
		out = out.SetBit(j, k.Bit((j+19)%KeyBits80))
	}
	return out
}

// nextKeyState80 performs one 80-bit key-schedule update using round
// counter r (1..31).
func nextKeyState80(ks Key80, r int) Key80 {
	ks = rotl80by61(ks)
	// S-box on the four most significant bits 79..76.
	nib := ks.Bit(79)<<3 | ks.Bit(78)<<2 | ks.Bit(77)<<1 | ks.Bit(76)
	s := Sbox[nib]
	ks = ks.SetBit(79, s>>3).SetBit(78, (s>>2)&1).SetBit(77, (s>>1)&1).SetBit(76, s&1)
	// Round counter XORed into bits 19..15.
	for i := 0; i < 5; i++ {
		ks = ks.SetBit(15+i, ks.Bit(15+i)^uint64(r>>uint(i))&1)
	}
	return ks
}

// roundKey80 extracts the 64 most significant key-state bits (79..16) as
// the round key, LSB-aligned.
func roundKey80(ks Key80) uint64 {
	return ks[0]>>16 | ks[1]<<48
}

// Spec returns the spn description of PRESENT-80. Every call returns a
// fresh value so callers may customise it.
func Spec() *spn.Spec {
	s := &spn.Spec{
		Name:           "present80",
		BlockBits:      BlockBits,
		KeyBits:        KeyBits80,
		Rounds:         Rounds,
		SboxBits:       SboxBits,
		Sbox:           append([]uint64(nil), Sbox...),
		Perm:           append([]int(nil), Perm...),
		FinalWhitening: true,
		KeyStateBits:   KeyBits80,
		InitKeyState:   func(key spn.KeyState) spn.KeyState { return key },
		RoundXORMask:   func(ks spn.KeyState, r int) uint64 { return roundKey80(ks) },
		NextKeyState:   nextKeyState80,
		KeySchedNet:    keySchedNet,
		CounterBits:    5, // keySchedNet reads counter[0..4]; 31 rounds fit
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// Encrypt is the software reference encryption of one 64-bit block.
func Encrypt(pt uint64, key Key80) uint64 {
	return Spec().Encrypt(pt, key)
}

// Decrypt inverts Encrypt; attacks use it for partial decryption checks.
func Decrypt(ct uint64, key Key80) uint64 {
	spec := Spec()
	// Expand all round keys first.
	rks := make([]uint64, Rounds+1)
	ks := key
	for r := 1; r <= Rounds; r++ {
		rks[r-1] = roundKey80(ks)
		ks = nextKeyState80(ks, r)
	}
	rks[Rounds] = roundKey80(ks)

	invS := spec.InverseSbox()
	invP := bits.InvertPermutation(Perm)
	state := ct ^ rks[Rounds]
	for r := Rounds; r >= 1; r-- {
		state = bits.Permute64(state, invP)
		state = bits.SpreadNibbles(state, NumSboxes, func(x uint64) uint64 { return invS[x] })
		state ^= rks[r-1]
	}
	return state
}

// RoundKeys returns all 32 round keys (K1..K32) for attack code.
func RoundKeys(key Key80) []uint64 {
	rks := make([]uint64, Rounds+1)
	ks := key
	for r := 1; r <= Rounds; r++ {
		rks[r-1] = roundKey80(ks)
		ks = nextKeyState80(ks, r)
	}
	rks[Rounds] = roundKey80(ks)
	return rks
}

// keySchedNet is the netlist form of the key schedule: rotation by wiring,
// the S-box on bits 79..76, and the counter XOR into bits 19..15.
func keySchedNet(m *netlist.Module, ks netlist.Bus, counter netlist.Bus, sbox spn.SboxNetFunc) (mask, next netlist.Bus) {
	if len(ks) != KeyBits80 {
		panic(fmt.Sprintf("present: key bus width %d, want %d", len(ks), KeyBits80))
	}
	mask = ks.Slice(16, 80)

	rot := make(netlist.Bus, KeyBits80)
	for j := 0; j < KeyBits80; j++ {
		rot[j] = ks[(j+19)%KeyBits80]
	}
	top := netlist.Bus{rot[76], rot[77], rot[78], rot[79]} // LSB first
	sout := sbox(m, "keysbox", top)

	next = rot.Clone()
	next[76], next[77], next[78], next[79] = sout[0], sout[1], sout[2], sout[3]
	for i := 0; i < 5; i++ {
		next[15+i] = m.Xor(next[15+i], counter[i])
	}
	return mask, next
}

// SboxTruthTable returns the S-box truth table for synthesis.
func SboxTruthTable() *synth.TruthTable {
	return synth.FromSbox(Sbox, SboxBits)
}
