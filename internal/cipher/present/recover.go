package present

// This file supports the DFA key-recovery step: a last-round attack yields
// K32 (the top 64 bits of the final key-schedule state); the remaining 16
// bits are brute-forced by rolling the schedule back to the original key
// and checking one known plaintext/ciphertext pair.

// prevKeyState80 inverts one key-schedule update with round counter r.
func prevKeyState80(ks Key80, r int) Key80 {
	// Invert the counter XOR into bits 19..15.
	for i := 0; i < 5; i++ {
		ks = ks.SetBit(15+i, ks.Bit(15+i)^uint64(r>>uint(i))&1)
	}
	// Invert the S-box on bits 79..76.
	invS := make([]uint64, 16)
	for x, y := range Sbox {
		invS[y] = uint64(x)
	}
	nib := ks.Bit(79)<<3 | ks.Bit(78)<<2 | ks.Bit(77)<<1 | ks.Bit(76)
	s := invS[nib]
	ks = ks.SetBit(79, s>>3).SetBit(78, (s>>2)&1).SetBit(77, (s>>1)&1).SetBit(76, s&1)
	// Invert the left-rotation by 61: rotate left by 19.
	var out Key80
	for j := 0; j < KeyBits80; j++ {
		out = out.SetBit(j, ks.Bit((j+61)%KeyBits80))
	}
	return out
}

// KeyFromFinalState reconstructs the original 80-bit key from the full
// final key-schedule state (the state whose top 64 bits are K32).
func KeyFromFinalState(final Key80) Key80 {
	ks := final
	for r := Rounds; r >= 1; r-- {
		ks = prevKeyState80(ks, r)
	}
	return ks
}

// RecoverKeyFromK32 searches the 16 key-state bits a last-round DFA does
// not see: given the recovered K32 and one known plaintext/ciphertext
// pair, it returns the unique consistent 80-bit key.
func RecoverKeyFromK32(k32, pt, ct uint64) (Key80, bool) {
	for low := uint64(0); low < 1<<16; low++ {
		final := Key80{k32<<16 | low, k32 >> 48}
		key := KeyFromFinalState(final)
		if Encrypt(pt, key) == ct {
			return key, true
		}
	}
	return Key80{}, false
}
