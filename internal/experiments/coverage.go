package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/rng"
	"repro/internal/synth"
)

// Location coverage: the paper's fault model "allows to inject a single
// fault anywhere in the design ... during any clock cycle/round". This
// experiment walks fault sites across the whole netlist (every cell
// output), injects a stuck-at at each site during the last round, and
// classifies the outcomes per structural region — the VerFI-style
// whole-design sweep behind the paper's "anywhere" claim.
//
// Expected result for the three-in-one design: no site inside either
// computation ever releases a wrong ciphertext; sites in the shared
// compare-and-recover stage (downstream of the comparator) can trivially
// corrupt the released word, but such post-comparison faults never pass
// through a key-dependent non-linear operation and are therefore
// cryptanalytically barren — they correspond to flipping ciphertext bits
// on the output bus, which any detect-and-compare scheme concedes.

// CoverageSite is the outcome at one fault location.
type CoverageSite struct {
	Net    netlist.Net
	Cell   int
	Region core.Region
	Result fault.Result
}

// CoverageResult aggregates a location sweep.
type CoverageResult struct {
	Design string
	// Sites holds one entry per sampled location.
	Sites []CoverageSite
	// PerRegion aggregates location and escape counts by region.
	PerRegion map[core.Region]*RegionSummary
}

// RegionSummary is the per-region aggregate.
type RegionSummary struct {
	Locations     int
	EscapingSites int
	EscapeRuns    int
	DetectedRuns  int
}

// RunLocationCoverage sweeps up to maxSites fault locations (deterministic
// sample over all cell outputs) on the given scheme, with cfg.Runs
// encryptions per location (keep it small: total work is sites x runs).
func RunLocationCoverage(cfg Config, scheme core.Scheme, maxSites int) (CoverageResult, error) {
	d := core.MustBuild(present.Spec(), core.Options{
		Scheme: scheme, Entropy: core.EntropyPrime, Engine: synth.EngineANF,
	})
	mod := d.Mod

	// Candidate sites: every non-constant cell output.
	var sites []int
	for ci := range mod.Cells {
		if !mod.Cells[ci].Kind.IsConst() {
			sites = append(sites, ci)
		}
	}
	// Deterministic sample without replacement.
	gen := rng.NewXoshiro(cfg.Seed ^ 0xC0FFEE)
	for i := len(sites) - 1; i > 0; i-- {
		j := gen.Intn(i + 1)
		sites[i], sites[j] = sites[j], sites[i]
	}
	if maxSites > 0 && len(sites) > maxSites {
		sites = sites[:maxSites]
	}

	res := CoverageResult{
		Design:    mod.Name,
		PerRegion: map[core.Region]*RegionSummary{},
	}
	for _, ci := range sites {
		net := mod.Cells[ci].Out
		region := d.CellRegion(ci)
		camp := fault.Campaign{
			Design: d, Key: cfg.Key,
			Faults: []fault.Fault{fault.At(net, fault.StuckAt0, d.LastRoundCycle())},
			Runs:   cfg.runs(), Seed: cfg.Seed ^ uint64(ci),
		}
		r, err := camp.Execute(nil)
		if err != nil {
			return CoverageResult{}, err
		}
		site := CoverageSite{Net: net, Cell: ci, Region: region, Result: r}
		res.Sites = append(res.Sites, site)
		sum := res.PerRegion[region]
		if sum == nil {
			sum = &RegionSummary{}
			res.PerRegion[region] = sum
		}
		sum.Locations++
		sum.EscapeRuns += r.Effective()
		sum.DetectedRuns += r.Detected()
		if r.Effective() > 0 {
			sum.EscapingSites++
		}
	}
	return res, nil
}

// EscapesOutsideCompareStage reports the number of sites inside either
// computation that released a wrong ciphertext — the paper's security
// claim is that this is zero for the three-in-one design.
func (r CoverageResult) EscapesOutsideCompareStage() int {
	n := 0
	for _, s := range r.Sites {
		if s.Region != core.RegionCompare && s.Result.Effective() > 0 {
			n++
		}
	}
	return n
}

// String renders the per-region coverage table.
func (r CoverageResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fault-location coverage sweep on %s (stuck-at-0, last round)\n", r.Design)
	fmt.Fprintf(&sb, "%-24s %10s %15s %12s %14s\n",
		"region", "locations", "escaping sites", "escape runs", "detected runs")
	for reg := core.RegionActual; reg <= core.RegionCompare; reg++ {
		sum := r.PerRegion[reg]
		if sum == nil {
			continue
		}
		fmt.Fprintf(&sb, "%-24s %10d %15d %12d %14d\n",
			reg, sum.Locations, sum.EscapingSites, sum.EscapeRuns, sum.DetectedRuns)
	}
	fmt.Fprintf(&sb, "\nEscaping sites inside a computation: %d\n", r.EscapesOutsideCompareStage())
	sb.WriteString("(Compare-and-recover sites show no effect for a round-window fault:\n")
	sb.WriteString(" the released word is recomputed combinationally at readout, after\n")
	sb.WriteString(" the fault expired. An attacker faulting the output stage at readout\n")
	sb.WriteString(" time only flips ciphertext bits downstream of every key-dependent\n")
	sb.WriteString(" operation — differentially useless, as with any duplication scheme.)\n")
	return sb.String()
}
