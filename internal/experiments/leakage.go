package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/synth"
)

// Leakage assessment (an extension of the paper's Section IV-B-2). Three
// Welch t-tests over Hamming-distance power traces:
//
//  1. fixed-vs-random plaintext on the UNPROTECTED core — the sanity
//     baseline: an unmasked cipher leaks massively;
//  2. fixed-vs-random plaintext on the THREE-IN-ONE core — the paper's
//     claim is that the countermeasure does not open a *new* side channel
//     beyond what the unmasked cipher already leaks (it is a fault
//     countermeasure, not an SCA countermeasure, and composes with
//     masking);
//  3. λ=0 vs λ=1 with everything else fixed on the three-in-one core —
//     quantifying the assumption the paper inherits from ACISP 2020: the
//     encoding bit is visible to a power adversary (complemented wires
//     flip the switching profile of the whole state), so λ's secrecy
//     against a COMBINED power+fault adversary must come from a layered
//     SCA countermeasure.

// LeakageRow is one t-test outcome.
type LeakageRow struct {
	Name    string
	Traces  int
	MaxAbsT float64
	Leaks   bool // |t| > 4.5 (TVLA convention)
}

// LeakageResult is the three-row assessment.
type LeakageResult struct {
	Rows []LeakageRow
}

// RunLeakage collects cfg.Runs traces per class per test (default trimmed
// to 2048 for tractability) under the Hamming-distance model.
func RunLeakage(cfg Config) (LeakageResult, error) {
	traces := cfg.Runs
	if traces <= 0 || traces > 8192 {
		traces = 2048
	}
	var res LeakageResult

	unprot := core.MustBuild(present.Spec(), core.Options{
		Scheme: core.SchemeUnprotected, Engine: synth.EngineANF,
	})
	tio := core.MustBuild(present.Spec(), core.Options{
		Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPrime, Engine: synth.EngineANF,
	})

	row, err := fixedVsRandom(cfg, unprot, traces, "fixed-vs-random plaintext, unprotected")
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row)

	row, err = fixedVsRandom(cfg, tio, traces, "fixed-vs-random plaintext, three-in-one")
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row)

	// λ distinguishability under both leakage models: dynamic power
	// (Hamming distance) cancels the complement out — x̄_t ⊕ x̄_{t+1} =
	// x_t ⊕ x_{t+1} — while a static Hamming-weight adversary sees the
	// complemented wires directly.
	row, err = lambdaClasses(cfg, tio, traces, power.HammingDistance)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row)
	row, err = lambdaClasses(cfg, tio, traces, power.HammingWeight)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row)

	// Localized EM probe over only the actual computation: here the
	// complementary-branch balancing cannot help and λ is plainly
	// visible — the combined-adversary caveat made concrete.
	row, err = lambdaLocalized(cfg, tio, traces)
	if err != nil {
		return res, err
	}
	res.Rows = append(res.Rows, row)
	return res, nil
}

// collect runs batches, assigning lanes to classes via classOf and λ via
// lamOf, and feeds the probe's traces into the t-test. restrict, when
// non-nil, localizes the probe to a net subset.
func collect(cfg Config, d *core.Design, traces int, name string, model power.Model,
	restrict []netlist.Net,
	ptOf func(gen *rng.Xoshiro, class int) uint64,
	lamOf func(gen *rng.Xoshiro, class int) uint64) (LeakageRow, error) {

	r, err := core.NewRunner(d)
	if err != nil {
		return LeakageRow{}, err
	}
	probe := power.Attach(r, model)
	probe.Restrict(restrict)
	defer probe.Detach()

	tt := stats.NewTTest(d.CyclesPerRun())
	gen := rng.NewXoshiro(cfg.Seed ^ 0x7E57)
	total := 0
	for total < 2*traces {
		n := min(2*traces-total, sim.Lanes)
		pts := make([]uint64, n)
		lams := make([]uint64, n)
		classes := make([]int, n)
		for i := range pts {
			classes[i] = gen.Intn(2)
			pts[i] = ptOf(gen, classes[i])
			lams[i] = lamOf(gen, classes[i])
		}
		probe.BeginBatch()
		r.EncryptBatch(pts, cfg.Key, nil, core.LambdaConst(lams))
		for i := 0; i < n; i++ {
			tt.Add(classes[i], probe.Traces()[i])
		}
		total += n
	}
	maxT := tt.MaxAbsT()
	return LeakageRow{
		Name: name, Traces: total,
		MaxAbsT: maxT, Leaks: maxT > stats.LeakageThreshold,
	}, nil
}

func fixedVsRandom(cfg Config, d *core.Design, traces int, name string) (LeakageRow, error) {
	const fixedPT = 0x0123456789ABCDEF
	return collect(cfg, d, traces, name, power.HammingDistance, nil,
		func(gen *rng.Xoshiro, class int) uint64 {
			if class == 0 {
				return fixedPT
			}
			return gen.Uint64()
		},
		func(gen *rng.Xoshiro, class int) uint64 {
			if d.LambdaWidth == 0 {
				return 0
			}
			return gen.Bits(d.LambdaWidth)
		})
}

func lambdaClasses(cfg Config, d *core.Design, traces int, model power.Model) (LeakageRow, error) {
	const fixedPT = 0x0123456789ABCDEF
	return collect(cfg, d, traces, "λ=0 vs λ=1, fixed pt, three-in-one ("+model.String()+")", model, nil,
		func(gen *rng.Xoshiro, class int) uint64 { return fixedPT },
		func(gen *rng.Xoshiro, class int) uint64 { return uint64(class) })
}

func lambdaLocalized(cfg Config, d *core.Design, traces int) (LeakageRow, error) {
	const fixedPT = 0x0123456789ABCDEF
	return collect(cfg, d, traces, "λ=0 vs λ=1, EM probe on actual branch only (hw)",
		power.HammingWeight, d.BranchNets(core.BranchActual),
		func(gen *rng.Xoshiro, class int) uint64 { return fixedPT },
		func(gen *rng.Xoshiro, class int) uint64 { return uint64(class) })
}

// String renders the assessment.
func (r LeakageResult) String() string {
	var sb strings.Builder
	sb.WriteString("Leakage assessment (Welch t-test over Hamming-distance traces, TVLA bound 4.5)\n")
	fmt.Fprintf(&sb, "%-48s %8s %10s %8s\n", "test", "traces", "max |t|", "leaks")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-48s %8d %10.1f %8v\n", row.Name, row.Traces, row.MaxAbsT, row.Leaks)
	}
	sb.WriteString("\nReading: the unmasked cipher leaks with or without the countermeasure\n")
	sb.WriteString("(it is a fault countermeasure; masking composes on top, §IV-B-2). In\n")
	sb.WriteString("GLOBAL power models λ is perfectly balanced: the λ/¬λ branches swap\n")
	sb.WriteString("roles, so the union of wire activity is λ-invariant — a structural\n")
	sb.WriteString("bonus of the paper's first amendment. A LOCALIZED EM probe over one\n")
	sb.WriteString("branch sees λ plainly; against such combined adversaries λ's secrecy\n")
	sb.WriteString("rests on the layered SCA countermeasure, as the paper presumes.\n")
	return sb.String()
}
