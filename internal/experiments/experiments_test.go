package experiments

import (
	"strings"
	"testing"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/synth"
)

// quickCfg shrinks campaigns enough for unit testing while keeping the
// statistical shapes decidable.
func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.Runs = 2048
	cfg.Quick = true
	return cfg
}

func TestFig4ShapeMatchesPaper(t *testing.T) {
	res, err := RunFig4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Panel (a): naive duplication leaks — exactly the 8 values with
	// bit 2 clear survive, and the SEI classifier flags bias.
	if !res.Naive.Biased {
		t.Error("naive panel must be biased")
	}
	if res.Naive.Histogram.EmptyBins() != 8 {
		t.Errorf("naive panel empty bins = %d, want 8", res.Naive.Histogram.EmptyBins())
	}
	for v, c := range res.Naive.Histogram.Counts {
		hasBit2 := v&(1<<Fig4FaultBit) != 0
		if hasBit2 && c != 0 {
			t.Errorf("value %X with the faulted bit set appeared among ineffective runs", v)
		}
	}
	// Panel (b): the countermeasure removes the bias entirely.
	if res.ThreeInOne.Biased {
		t.Error("three-in-one panel must be statistically uniform")
	}
	if res.ThreeInOne.Histogram.EmptyBins() != 0 {
		t.Errorf("three-in-one panel has empty bins")
	}
	// No faulty ciphertext may escape either duplication scheme.
	if res.Naive.Campaign.Effective() != 0 || res.ThreeInOne.Campaign.Effective() != 0 {
		t.Error("single-branch faults must never escape duplication")
	}
	if !strings.Contains(res.String(), "Figure 4") {
		t.Error("report rendering broken")
	}
}

func TestFig5ShapeMatchesPaper(t *testing.T) {
	res, err := RunFig5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	n, ours := res.Naive, res.ThreeInOne
	// Naive duplication: the comparator never fires and roughly half
	// the runs release a WRONG ciphertext.
	if n.Campaign.Detected() != 0 {
		t.Errorf("identical faults must not be detected by naive duplication (%d)", n.Campaign.Detected())
	}
	if n.Campaign.Effective() == 0 {
		t.Error("naive duplication must release faulty ciphertexts")
	}
	// The released set is the biased half: every value has the fault
	// bit set.
	for v, c := range n.Released.Counts {
		if v&(1<<Fig5FaultBit) == 0 && c != 0 {
			t.Errorf("released run with fault bit clear: %X", v)
		}
	}
	// Three-in-one: complementary encodings sense every identical
	// stuck-at — nothing is released, nothing escapes.
	if ours.Campaign.Detected() != ours.Campaign.Total {
		t.Errorf("three-in-one should detect all %d runs, detected %d",
			ours.Campaign.Total, ours.Campaign.Detected())
	}
	if ours.Released.Total != 0 {
		t.Error("three-in-one must not release faulty ciphertexts")
	}
}

func TestTableIIShape(t *testing.T) {
	res := RunTableII(synth.EngineANF)
	naive, ours := res.Rows[0], res.Rows[1]
	// The paper's two structural claims: identical non-combinational
	// area, and a total overhead near 1.3x (we accept 1.2-1.6 for an
	// independent synthesis flow).
	if naive.Report.Sequential != ours.Report.Sequential {
		t.Errorf("non-combinational GE differ: %.0f vs %.0f",
			naive.Report.Sequential, ours.Report.Sequential)
	}
	if ours.Ratio < 1.2 || ours.Ratio > 1.6 {
		t.Errorf("total overhead ratio %.2f outside the paper's shape", ours.Ratio)
	}
	if ours.Report.Combinational <= naive.Report.Combinational {
		t.Error("the countermeasure must cost combinational area")
	}
}

func TestTableIIIShape(t *testing.T) {
	res := RunTableIII()
	if len(res.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Paper: 2.3x (PRESENT) and 1.8x (AES). Accept 1.5-2.6.
		if row.Ratio < 1.5 || row.Ratio > 2.6 {
			t.Errorf("%s S-box layer ratio %.2f outside the paper's shape", row.Cipher, row.Ratio)
		}
		if row.Ours.Total() <= row.Naive.Total() {
			t.Errorf("%s merged layer should cost more than plain", row.Cipher)
		}
	}
	// AES S-boxes must be far more expensive than PRESENT's.
	if res.Rows[1].Naive.Total() < 4*res.Rows[0].Naive.Total() {
		t.Error("AES S-box layer should dwarf PRESENT's")
	}
}

func TestSweepMatrix(t *testing.T) {
	cfg := quickCfg()
	cfg.Runs = 512
	res, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 18 { // 3 schemes x 3 models x 2 patterns
		t.Fatalf("expected 18 rows, got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		switch {
		case !r.Both:
			// Single-computation faults never escape any duplication.
			if r.Campaign.Effective() != 0 {
				t.Errorf("%v/%v single: %d escapes", r.Scheme, r.Model, r.Campaign.Effective())
			}
		case r.Model == fault.BitFlip:
			// Identical flips escape every scheme (the §IV-B-4 caveat).
			if r.Campaign.Effective() != r.Campaign.Total {
				t.Errorf("%v identical flip: expected full escape", r.Scheme)
			}
		case r.Scheme == core.SchemeThreeInOne:
			// Identical stuck-ats are fully detected by the countermeasure.
			if r.Campaign.Detected() != r.Campaign.Total {
				t.Errorf("three-in-one identical %v: %d/%d detected",
					r.Model, r.Campaign.Detected(), r.Campaign.Total)
			}
		default:
			// ... and partially escape the weaker schemes.
			if r.Campaign.Effective() == 0 {
				t.Errorf("%v identical %v: expected escapes", r.Scheme, r.Model)
			}
		}
	}
}

func TestEntropyAblationShape(t *testing.T) {
	res := RunEntropyAblation()
	if len(res.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(res.Rows))
	}
	prime := res.Rows[0]
	if prime.Report.Sequential != res.Baseline.Sequential {
		t.Error("prime variant must add no sequential area")
	}
	perRound, perSbox := res.Rows[1], res.Rows[2]
	if perRound.Report.Sequential <= res.Baseline.Sequential {
		t.Error("per-round variant must add λ registers")
	}
	if perSbox.Report.Total() <= perRound.Report.Total() {
		t.Error("per-sbox must cost more than per-round")
	}
	if perRound.LambdaBitsPerRun != 31 || perSbox.LambdaBitsPerRun != 31*16 {
		t.Error("λ consumption accounting wrong")
	}
}

func TestEngineAblationShape(t *testing.T) {
	res := RunEngineAblation()
	byKey := map[string]EngineAblationRow{}
	for _, r := range res.Rows {
		byKey[r.Cipher+"/"+r.Engine.String()] = r
	}
	// The BDD engine must beat ANF on the 8-bit AES S-box (that is why
	// Table III uses it), while tiny 4-bit S-boxes are fine either way.
	if byKey["aes/bdd"].Merged >= byKey["aes/anf"].Merged {
		t.Error("BDD should be cheaper than ANF for the AES merged S-box")
	}
	for _, r := range res.Rows {
		if r.Plain <= 0 || r.Merged <= r.Plain {
			t.Errorf("%s/%s: implausible areas plain=%.0f merged=%.0f",
				r.Cipher, r.Engine, r.Plain, r.Merged)
		}
	}
}

func TestTwoBiasedFaultsShape(t *testing.T) {
	cfg := quickCfg()
	cfg.Runs = 4096
	res, err := RunTwoBiasedFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Naive duplication: both targeted S-box distributions are biased.
	if !res.Naive.BiasedA || !res.Naive.BiasedB {
		t.Errorf("naive panel should be biased at both locations (%v, %v)",
			res.Naive.BiasedA, res.Naive.BiasedB)
	}
	// Countermeasure: both stay uniform, and nothing escapes.
	if res.ThreeInOne.BiasedA || res.ThreeInOne.BiasedB {
		t.Errorf("three-in-one panel should be uniform at both locations (SEI %v, %v)",
			res.ThreeInOne.HistA.SEI(), res.ThreeInOne.HistB.SEI())
	}
	if res.Naive.Campaign.Effective() != 0 || res.ThreeInOne.Campaign.Effective() != 0 {
		t.Error("single-computation faults must never escape duplication")
	}
	// Two faults shrink the ineffective rate to about a quarter.
	frac := float64(res.ThreeInOne.Campaign.Ineffective()) / float64(res.ThreeInOne.Campaign.Total)
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("ineffective fraction %.2f, expected ~0.25", frac)
	}
}

func TestLocationCoverageNoEscapesInComputations(t *testing.T) {
	cfg := quickCfg()
	cfg.Runs = 64
	res, err := RunLocationCoverage(cfg, core.SchemeThreeInOne, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.EscapesOutsideCompareStage(); got != 0 {
		t.Fatalf("%d fault sites inside a computation released wrong ciphertexts", got)
	}
	if len(res.Sites) != 60 {
		t.Fatalf("sampled %d sites, want 60", len(res.Sites))
	}
}

func TestLeakageAssessmentShape(t *testing.T) {
	cfg := quickCfg()
	cfg.Runs = 256
	res, err := RunLeakage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("expected 5 rows, got %d", len(res.Rows))
	}
	if !res.Rows[0].Leaks || !res.Rows[1].Leaks {
		t.Error("unmasked cipher should fail fixed-vs-random TVLA")
	}
	if res.Rows[2].Leaks || res.Rows[3].Leaks {
		t.Error("global power models must not distinguish λ (branch swap balance)")
	}
	if !res.Rows[4].Leaks {
		t.Error("a branch-local EM probe must distinguish λ")
	}
}

func TestPersistentFaultNeverEscapes(t *testing.T) {
	cfg := quickCfg()
	cfg.Runs = 512
	res, err := RunPersistent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Campaign.Effective() != 0 {
			t.Errorf("%v: persistent fault escaped %d times", row.Scheme, row.Campaign.Effective())
		}
		// Persisting across 31 rounds, the fault is effective (and
		// detected) in virtually every run.
		if row.Campaign.Detected() < row.Campaign.Total*99/100 {
			t.Errorf("%v: only %d/%d detected", row.Scheme, row.Campaign.Detected(), row.Campaign.Total)
		}
	}
}

// The SIFA bias must stay removed under every entropy variant — this
// guards the per-round/per-S-box domain-conversion logic, where a subtle
// encoding bug would silently re-introduce the Figure 4(a) bias.
func TestFig4FlatAcrossEntropyVariants(t *testing.T) {
	cfg := quickCfg()
	cfg.Runs = 4096
	for _, entropy := range []core.Entropy{core.EntropyPerRound, core.EntropyPerSbox} {
		d := core.MustBuild(present.Spec(), core.Options{
			Scheme: core.SchemeThreeInOne, Entropy: entropy, Engine: synth.EngineANF,
		})
		panel, err := runFig4Panel(cfg, d)
		if err != nil {
			t.Fatal(err)
		}
		if panel.Biased {
			t.Errorf("%v: SIFA bias re-appeared (SEI %.3e, threshold %.3e)",
				entropy, panel.Histogram.SEI(), panel.SEIThreshold)
		}
		if panel.Campaign.Effective() != 0 {
			t.Errorf("%v: %d escapes", entropy, panel.Campaign.Effective())
		}
	}
}

// Identical-fault detection must also hold for the richer variants.
func TestFig5DetectionAcrossEntropyVariants(t *testing.T) {
	cfg := quickCfg()
	cfg.Runs = 1024
	for _, entropy := range []core.Entropy{core.EntropyPerRound, core.EntropyPerSbox} {
		d := core.MustBuild(present.Spec(), core.Options{
			Scheme: core.SchemeThreeInOne, Entropy: entropy, Engine: synth.EngineANF,
		})
		panel, err := runFig5Panel(cfg, d)
		if err != nil {
			t.Fatal(err)
		}
		if panel.Campaign.Detected() != panel.Campaign.Total {
			t.Errorf("%v: %d/%d detected", entropy, panel.Campaign.Detected(), panel.Campaign.Total)
		}
	}
}
