package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/synth"
)

// Persistent faults (paper §IV-B-5): the persistent fault attack (PFA)
// corrupts an S-box LOOK-UP TABLE once and exploits the lasting corruption
// across many encryptions. The paper notes PFA "works only when the S-box
// is implemented in the circuit as a look-up table", which the
// countermeasure does not require — here the S-boxes are combinational
// logic, so the closest realisable persistent fault is a permanent
// stuck-at inside one S-box's gates. This experiment makes the claim
// concrete: a persistent stuck-at in one computation corrupts many rounds,
// is detected whenever it is effective, and never releases a wrong
// ciphertext.

// PersistentRow is the outcome for one scheme.
type PersistentRow struct {
	Scheme   core.Scheme
	Campaign fault.Result
}

// PersistentResult is the scheme comparison.
type PersistentResult struct {
	Rows []PersistentRow
}

// RunPersistent injects a permanent stuck-at-1 at an S-box input of the
// actual computation (active in EVERY cycle, i.e. every round) for each
// duplication scheme.
func RunPersistent(cfg Config) (PersistentResult, error) {
	var out PersistentResult
	for _, scheme := range []core.Scheme{core.SchemeNaiveDup, core.SchemeThreeInOne} {
		d := core.MustBuild(present.Spec(), core.Options{
			Scheme: scheme, Entropy: core.EntropyPrime, Engine: synth.EngineANF,
		})
		net := d.SboxInputNet(core.BranchActual, 7, 0)
		camp := fault.Campaign{
			Design: d, Key: cfg.Key,
			Faults: []fault.Fault{fault.Always(net, fault.StuckAt1)},
			Runs:   cfg.runs(), Seed: cfg.Seed ^ 0xFA0,
			Engine: fault.EngineConfig{Parallelism: cfg.Workers},
		}
		res, err := camp.Execute(nil)
		if err != nil {
			return PersistentResult{}, err
		}
		out.Rows = append(out.Rows, PersistentRow{Scheme: scheme, Campaign: res})
	}
	return out, nil
}

// String renders the comparison.
func (r PersistentResult) String() string {
	var sb strings.Builder
	sb.WriteString("Persistent fault (stuck-at-1 at an S-box input, EVERY round, actual computation)\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  %-24s %s\n", row.Scheme, row.Campaign)
	}
	sb.WriteString("\nA fault persisting across all rounds is effective in almost every run\n")
	sb.WriteString("and is detected every time — with logic S-boxes (no look-up table)\n")
	sb.WriteString("there is no PFA surface, matching the paper's §IV-B-5 argument.\n")
	return sb.String()
}
