package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/stats"
)

// Two biased faults (paper §IV-B-3): the paper argues that an attacker who
// can place TWO biased (stuck-at) faults at distinct locations of the
// actual computation still learns nothing — the claim extends from the
// single-fault case because each faulted wire carries a λ-encoded value.
// This experiment injects stuck-at-0 at the Figure-4 and Figure-5
// locations simultaneously (S-box 13 bit 2 and S-box 5 bit 1, both in the
// last round of the actual computation) and histograms both S-boxes' true
// inputs over the ineffective runs.

// TwoFaultsPanel is the outcome for one design.
type TwoFaultsPanel struct {
	Design   string
	Campaign fault.Result
	// HistA / HistB are the ineffective-run input distributions of the
	// two targeted S-boxes.
	HistA, HistB *stats.Histogram
	BiasedA      bool
	BiasedB      bool
}

// TwoFaultsResult pairs naive duplication against the countermeasure.
type TwoFaultsResult struct {
	Naive      TwoFaultsPanel
	ThreeInOne TwoFaultsPanel
}

// RunTwoBiasedFaults executes the experiment on both designs.
func RunTwoBiasedFaults(cfg Config) (TwoFaultsResult, error) {
	naive, err := runTwoFaultsPanel(cfg, buildNaive())
	if err != nil {
		return TwoFaultsResult{}, err
	}
	ours, err := runTwoFaultsPanel(cfg, buildThreeInOne())
	if err != nil {
		return TwoFaultsResult{}, err
	}
	return TwoFaultsResult{Naive: naive, ThreeInOne: ours}, nil
}

func runTwoFaultsPanel(cfg Config, d *core.Design) (TwoFaultsPanel, error) {
	spec := d.Spec
	cyc := d.LastRoundCycle()
	faults := []fault.Fault{
		fault.At(d.SboxInputNet(core.BranchActual, Fig4SboxIndex, Fig4FaultBit), fault.StuckAt0, cyc),
		fault.At(d.SboxInputNet(core.BranchActual, Fig5SboxIndex, Fig5FaultBit), fault.StuckAt0, cyc),
	}
	camp := fault.Campaign{
		Design: d, Key: cfg.Key, Faults: faults,
		Runs: cfg.runs(), Seed: cfg.Seed ^ 0x2F, Engine: fault.EngineConfig{Parallelism: cfg.Workers},
	}
	histA := stats.NewHistogram(1 << uint(spec.SboxBits))
	histB := stats.NewHistogram(1 << uint(spec.SboxBits))
	res, err := camp.Execute(func(r fault.Run) {
		if r.Outcome != fault.OutcomeIneffective {
			return
		}
		state := spec.SboxLayerInput(r.PT, cfg.Key, spec.Rounds)
		histA.Add(spec.SboxInput(state, Fig4SboxIndex))
		histB.Add(spec.SboxInput(state, Fig5SboxIndex))
	})
	if err != nil {
		return TwoFaultsPanel{}, err
	}
	return TwoFaultsPanel{
		Design:   d.Mod.Name,
		Campaign: res,
		HistA:    histA,
		HistB:    histB,
		BiasedA:  histA.SEI() > stats.UniformSEIThreshold(histA.Bins(), histA.Total),
		BiasedB:  histB.SEI() > stats.UniformSEIThreshold(histB.Bins(), histB.Total),
	}, nil
}

// String renders both panels.
func (r TwoFaultsResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Two biased faults (§IV-B-3): stuck-at-0 at S-box %d bit %d AND S-box %d bit %d, last round, actual computation\n",
		Fig4SboxIndex, Fig4FaultBit, Fig5SboxIndex, Fig5FaultBit)
	for _, p := range []TwoFaultsPanel{r.Naive, r.ThreeInOne} {
		fmt.Fprintf(&sb, "\n[%s] %s\n", p.Design, p.Campaign)
		fmt.Fprintf(&sb, "  S-box %d ineffective-run distribution: SEI %.3e, empty bins %d/16 -> biased: %v\n",
			Fig4SboxIndex, p.HistA.SEI(), p.HistA.EmptyBins(), p.BiasedA)
		fmt.Fprintf(&sb, "  S-box %d ineffective-run distribution: SEI %.3e, empty bins %d/16 -> biased: %v\n",
			Fig5SboxIndex, p.HistB.SEI(), p.HistB.EmptyBins(), p.BiasedB)
	}
	sb.WriteString("\nWith the countermeasure both distributions stay uniform: two biased\n")
	sb.WriteString("faults buy the attacker a lower ineffective rate, not information.\n")
	return sb.String()
}
