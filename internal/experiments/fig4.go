package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/stats"
)

// Figure 4 of the paper: SIFA bias experiment. A stuck-at-0 fault is
// injected at the second MSB of the input of S-box 13 during the last
// round of the *actual* computation, across 80k runs with random
// plaintexts (and random λ for the countermeasure). The histogram of the
// true S-box-13 input value over the runs where the fault was ineffective
// is the attacker's SIFA observable:
//
//   - naive duplication (Fig 4a): only inputs whose second MSB is already
//     0 survive — 8 of 16 bins stay empty, SEI is large;
//   - the three-in-one countermeasure (Fig 4b): the faulted wire carries
//     the λ-encoded value, so ineffectiveness no longer depends on the
//     true input — the histogram is statistically uniform.

// Fig4 experiment parameters (fixed by the paper).
const (
	Fig4SboxIndex = 13
	Fig4FaultBit  = 2 // second MSB of a 4-bit value
)

// Fig4Panel is the outcome for one design (one panel of the figure).
type Fig4Panel struct {
	Design    string
	Campaign  fault.Result
	Histogram *stats.Histogram
	// SEIThreshold is the uniformity-acceptance bound for this sample
	// size; Biased reports Histogram.SEI() > SEIThreshold.
	SEIThreshold float64
	Biased       bool
}

// Fig4Result pairs the two panels.
type Fig4Result struct {
	Naive      Fig4Panel
	ThreeInOne Fig4Panel
}

// RunFig4 executes the Figure 4 campaign on both designs.
func RunFig4(cfg Config) (Fig4Result, error) {
	naive, err := runFig4Panel(cfg, buildNaive())
	if err != nil {
		return Fig4Result{}, err
	}
	tio, err := runFig4Panel(cfg, buildThreeInOne())
	if err != nil {
		return Fig4Result{}, err
	}
	return Fig4Result{Naive: naive, ThreeInOne: tio}, nil
}

func runFig4Panel(cfg Config, d *core.Design) (Fig4Panel, error) {
	spec := d.Spec
	net := d.SboxInputNet(core.BranchActual, Fig4SboxIndex, Fig4FaultBit)
	camp := fault.Campaign{
		Design: d,
		Key:    cfg.Key,
		Faults: []fault.Fault{fault.At(net, fault.StuckAt0, d.LastRoundCycle())},
		Runs:   cfg.runs(),
		Seed:   cfg.Seed,
		Engine: fault.EngineConfig{Parallelism: cfg.Workers},
	}
	hist := stats.NewHistogram(1 << uint(spec.SboxBits))
	res, err := camp.Execute(func(r fault.Run) {
		if r.Outcome != fault.OutcomeIneffective {
			return
		}
		state := spec.SboxLayerInput(r.PT, cfg.Key, spec.Rounds)
		hist.Add(spec.SboxInput(state, Fig4SboxIndex))
	})
	if err != nil {
		return Fig4Panel{}, err
	}
	thr := stats.UniformSEIThreshold(hist.Bins(), hist.Total)
	return Fig4Panel{
		Design:       d.Mod.Name,
		Campaign:     res,
		Histogram:    hist,
		SEIThreshold: thr,
		Biased:       hist.SEI() > thr,
	}, nil
}

// String renders both panels as the paper's figure does (ASCII form).
func (r Fig4Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4: SIFA bias, stuck-at-0 at 2nd MSB of S-box %d input, last round\n", Fig4SboxIndex)
	for _, p := range []Fig4Panel{r.Naive, r.ThreeInOne} {
		fmt.Fprintf(&sb, "\n[%s] %s\n", p.Design, p.Campaign)
		sb.WriteString(p.Histogram.Bars("ineffective-fault S-box input distribution", 40))
		fmt.Fprintf(&sb, "  empty bins: %d/16, SEI %.3e (uniform threshold %.3e) -> biased: %v\n",
			p.Histogram.EmptyBins(), p.Histogram.SEI(), p.SEIThreshold, p.Biased)
	}
	return sb.String()
}
