package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cipher/aes"
	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/stdcell"
	"repro/internal/synth"
)

// Table II of the paper: gate-equivalent area of the full PRESENT-80
// encryption core protected with naive duplication versus the three-in-one
// countermeasure (prime variant), split into combinational and
// non-combinational area. The paper reports 1289/1807/3096 GE versus
// 2290/1807/4097 GE — a 1.32x total overhead with *identical*
// non-combinational area. Absolute GE depends on the synthesis flow; the
// two properties our flow must reproduce are the identical sequential area
// and a total overhead near 1.3x.

// TableIIRow is one row of Table II.
type TableIIRow struct {
	Design string
	Report stdcell.Report
	Ratio  float64
}

// TableIIResult is the full table.
type TableIIResult struct {
	Rows []TableIIRow
}

// RunTableII synthesises both designs through the same optimising flow and
// prices them against the Nangate-45 GE library.
func RunTableII(engine synth.Engine) TableIIResult {
	lib := stdcell.Nangate45()
	naive := core.MustBuild(present.Spec(), core.Options{
		Scheme: core.SchemeNaiveDup, Engine: engine, Optimize: true,
	})
	ours := core.MustBuild(present.Spec(), core.Options{
		Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPrime,
		Engine: engine, Optimize: true,
	})
	base := lib.Area(naive.Mod)
	cm := lib.Area(ours.Mod)
	return TableIIResult{Rows: []TableIIRow{
		{Design: "Naive Duplication", Report: base, Ratio: 1},
		{Design: "Our Countermeasure", Report: cm, Ratio: cm.Ratio(base)},
	}}
}

// String renders the table in the paper's layout.
func (t TableIIResult) String() string {
	var sb strings.Builder
	sb.WriteString("Table II: PRESENT-80 encryption area (GE)\n")
	fmt.Fprintf(&sb, "%-22s %14s %18s %14s\n", "PRESENT-80 Encryption", "Combinational", "Non-combinational", "Total")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-22s %14.0f %18.0f %8.0f (%.2fx)\n",
			r.Design, r.Report.Combinational, r.Report.Sequential, r.Report.Total(), r.Ratio)
	}
	return sb.String()
}

// Table III of the paper: GE of one *duplicated* layer of S-boxes — the
// non-linear cost the countermeasure actually changes. Naive duplication
// instantiates 2x16 plain S-boxes; the countermeasure instantiates 2x16
// merged (n+1)-bit S-boxes. The paper reports 605 -> 1397 GE (2.3x) for
// PRESENT and 8363 -> 15327 GE (1.8x) for AES.

// TableIIIRow is one cell pair of Table III.
type TableIIIRow struct {
	Cipher string
	Engine synth.Engine
	Naive  stdcell.Report
	Ours   stdcell.Report
	Ratio  float64
}

// TableIIIResult is the full table.
type TableIIIResult struct {
	Rows []TableIIIRow
}

// sboxLayer builds a module with `copies` x `count` instances of the given
// S-box module over independent inputs; the second copy is marked Keep the
// same way the countermeasure builder protects its redundant branch.
func sboxLayer(name string, sub *netlist.Module, count int, width int, lambdaBits int) *netlist.Module {
	m := netlist.New(name)
	var lam netlist.Bus
	if lambdaBits > 0 {
		lam = m.AddInput("lambda", lambdaBits)
	}
	for cp := 0; cp < 2; cp++ {
		in := m.AddInput(fmt.Sprintf("x%d", cp), count*width)
		var out netlist.Bus
		mark := len(m.Cells)
		for s := 0; s < count; s++ {
			bus := in.Slice(s*width, (s+1)*width)
			if lambdaBits > 0 {
				bus = bus.Concat(netlist.Bus{lam[cp]})
			}
			outs := m.MustInstantiate(sub, fmt.Sprintf("c%d.s%02d", cp, s), map[string]netlist.Bus{"x": bus})
			out = out.Concat(outs["y"])
		}
		if cp == 1 {
			for ci := mark; ci < len(m.Cells); ci++ {
				m.Cells[ci].Keep = true
			}
		}
		m.AddOutput(fmt.Sprintf("y%d", cp), out)
	}
	return m
}

// RunTableIII measures the duplicated S-box layer of PRESENT (ANF engine)
// and AES (BDD engine), mirroring the paper's choice of one layer of
// sixteen S-boxes per cipher.
func RunTableIII() TableIIIResult {
	lib := stdcell.Nangate45()
	var rows []TableIIIRow

	add := func(cipher string, sbox []uint64, n int, engine synth.Engine) {
		sm := core.BuildSboxModules(sbox, n, engine, true)
		naive := synth.Optimize(sboxLayer(cipher+"_layer_naive", sm.Plain, 16, n, 0), synth.DefaultOptOptions())
		ours := synth.Optimize(sboxLayer(cipher+"_layer_ours", sm.Merged, 16, n, 2), synth.DefaultOptOptions())
		nr := lib.Area(naive)
		or := lib.Area(ours)
		rows = append(rows, TableIIIRow{
			Cipher: cipher, Engine: engine,
			Naive: nr, Ours: or, Ratio: or.Ratio(nr),
		})
	}

	add("present", present.Sbox, present.SboxBits, synth.EngineANF)
	aesSbox := make([]uint64, 256)
	for i, v := range aes.Sbox {
		aesSbox[i] = uint64(v)
	}
	add("aes", aesSbox, aes.SboxBits, synth.EngineBDD)
	return TableIIIResult{Rows: rows}
}

// String renders the table in the paper's layout.
func (t TableIIIResult) String() string {
	var sb strings.Builder
	sb.WriteString("Table III: duplicated S-box layer area (GE)\n")
	fmt.Fprintf(&sb, "%-22s %16s %16s %8s\n", "Countermeasure", "Cipher", "GE", "Ratio")
	for _, r := range t.Rows {
		fmt.Fprintf(&sb, "%-22s %16s %16.0f %8s\n", "Naive Duplication", r.Cipher, r.Naive.Total(), "1.0x")
		fmt.Fprintf(&sb, "%-22s %16s %16.0f %7.1fx\n", "Our Countermeasure", r.Cipher, r.Ours.Total(), r.Ratio)
	}
	return sb.String()
}
