// Package experiments encodes every table and figure of the paper's
// evaluation section as a reproducible, parameterised experiment. The
// cmd/ harnesses, the benchmark suite and EXPERIMENTS.md all derive from
// the functions here, so there is exactly one definition of each
// experiment.
package experiments

import (
	"sync"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/spn"
	"repro/internal/synth"
)

// Config carries the campaign-level knobs shared by the figure
// experiments.
type Config struct {
	// Runs is the number of simulated encryptions per design; the paper
	// uses 80,000.
	Runs int
	// Seed makes the campaign deterministic.
	Seed uint64
	// Key is the fixed key used for every run (the paper fixes the key
	// and varies plaintext and λ).
	Key spn.KeyState
	// Workers bounds campaign parallelism; 0 means GOMAXPROCS.
	Workers int
	// Quick shrinks expensive parameters for unit tests.
	Quick bool
}

// DefaultConfig returns the paper's campaign parameters: 80k runs of
// PRESENT-80 under a fixed key.
func DefaultConfig() Config {
	return Config{
		Runs: 80000,
		Seed: 0x5C09E2021,
		Key:  spn.KeyState{0x0123456789ABCDEF, 0x8421},
	}
}

func (c Config) runs() int {
	if c.Runs > 0 {
		return c.Runs
	}
	return 80000
}

// The figure experiments all target the same two PRESENT-80 designs;
// building (and therefore compiling) them once lets every experiment in a
// process share one netlist pointer, which is what makes the simulator's
// pointer-keyed compile cache effective across fig4, fig5 and the sweeps.
var (
	naiveOnce, threeOnce     sync.Once
	naiveDesign, threeDesign *core.Design
)

// buildNaive builds the naive-duplication PRESENT-80 core used as the
// baseline of Figures 4 and 5.
func buildNaive() *core.Design {
	naiveOnce.Do(func() {
		naiveDesign = core.MustBuild(present.Spec(), core.Options{
			Scheme: core.SchemeNaiveDup,
			Engine: synth.EngineANF,
		})
	})
	return naiveDesign
}

// buildThreeInOne builds the paper's countermeasure (prime variant) on
// PRESENT-80.
func buildThreeInOne() *core.Design {
	threeOnce.Do(func() {
		threeDesign = core.MustBuild(present.Spec(), core.Options{
			Scheme:  core.SchemeThreeInOne,
			Entropy: core.EntropyPrime,
			Engine:  synth.EngineANF,
		})
	})
	return threeDesign
}
