package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/synth"
)

// RunSweep measures detection coverage across the full protection matrix:
// every scheme x fault model x injection pattern (single computation or
// identical in both), at the Figure 4 location (S-box 13, second MSB, last
// round). It quantifies the paper's Section IV-B claims, including the
// honest corner: identical bit-FLIPS escape every duplication scheme (the
// "inverted fault mask" caveat of Section IV-B-4).

// SweepRow is one configuration's outcome.
type SweepRow struct {
	Scheme   core.Scheme
	Model    fault.Model
	Both     bool // identical fault in both computations
	Campaign fault.Result
}

// Escaped reports the fraction of runs that released a WRONG ciphertext.
func (r SweepRow) Escaped() float64 {
	if r.Campaign.Total == 0 {
		return 0
	}
	return float64(r.Campaign.Effective()) / float64(r.Campaign.Total)
}

// SweepResult is the full matrix.
type SweepResult struct {
	Rows []SweepRow
}

// RunSweep executes the sweep; cfg.Runs applies per configuration.
func RunSweep(cfg Config) (SweepResult, error) {
	schemes := []core.Scheme{core.SchemeNaiveDup, core.SchemeACISP, core.SchemeThreeInOne}
	models := []fault.Model{fault.StuckAt0, fault.StuckAt1, fault.BitFlip}

	var out SweepResult
	for _, scheme := range schemes {
		d := core.MustBuild(present.Spec(), core.Options{
			Scheme: scheme, Entropy: core.EntropyPrime, Engine: synth.EngineANF,
		})
		for _, model := range models {
			for _, both := range []bool{false, true} {
				faults := []fault.Fault{fault.At(
					d.SboxInputNet(core.BranchActual, Fig4SboxIndex, Fig4FaultBit),
					model, d.LastRoundCycle())}
				if both {
					faults = append(faults, fault.At(
						d.SboxInputNet(core.BranchRedundant, Fig4SboxIndex, Fig4FaultBit),
						model, d.LastRoundCycle()))
				}
				camp := fault.Campaign{
					Design: d, Key: cfg.Key, Faults: faults,
					Runs: cfg.runs(), Seed: cfg.Seed, Engine: fault.EngineConfig{Parallelism: cfg.Workers},
				}
				res, err := camp.Execute(nil)
				if err != nil {
					return SweepResult{}, err
				}
				out.Rows = append(out.Rows, SweepRow{
					Scheme: scheme, Model: model, Both: both, Campaign: res,
				})
			}
		}
	}
	return out, nil
}

// String renders the coverage matrix.
func (s SweepResult) String() string {
	var sb strings.Builder
	sb.WriteString("Detection-coverage sweep (fault at S-box 13 input bit 2, last round)\n")
	fmt.Fprintf(&sb, "%-24s %-12s %-10s %12s %10s %10s %10s\n",
		"scheme", "model", "pattern", "ineffective", "detected", "escaped", "escape%")
	for _, r := range s.Rows {
		pattern := "single"
		if r.Both {
			pattern = "identical"
		}
		fmt.Fprintf(&sb, "%-24s %-12s %-10s %12d %10d %10d %9.1f%%\n",
			r.Scheme, r.Model, pattern,
			r.Campaign.Ineffective(), r.Campaign.Detected(), r.Campaign.Effective(),
			100*r.Escaped())
	}
	sb.WriteString("\nA non-zero escape column marks a DFA-exploitable configuration.\n")
	sb.WriteString("Identical bit-flips escaping every scheme is the acknowledged\n")
	sb.WriteString("limitation of Section IV-B-4 (the inverted-fault-mask model).\n")
	return sb.String()
}
