package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cipher/aes"
	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/stdcell"
	"repro/internal/synth"
)

// Ablations for the design choices the paper calls out in Section III's
// "Additional Features": the entropy variants (second amendment), the
// merged versus separate S-box layout (third amendment), and — specific to
// this reproduction — the synthesis engine used for the S-boxes.

// EntropyAblationRow prices one entropy variant.
type EntropyAblationRow struct {
	Variant core.Entropy
	Layout  string // "merged" or "separate"
	Report  stdcell.Report
	// LambdaBitsPerRun is the randomness the variant consumes for one
	// PRESENT-80 encryption.
	LambdaBitsPerRun int
	Ratio            float64 // vs naive duplication
}

// EntropyAblationResult is the variant sweep.
type EntropyAblationResult struct {
	Baseline stdcell.Report // naive duplication
	Rows     []EntropyAblationRow
}

// RunEntropyAblation synthesises the three-in-one countermeasure in all
// three entropy variants plus the separate-S-box layout, against the
// naive-duplication baseline.
func RunEntropyAblation() EntropyAblationResult {
	lib := stdcell.Nangate45()
	spec := present.Spec()
	naive := core.MustBuild(spec, core.Options{
		Scheme: core.SchemeNaiveDup, Engine: synth.EngineANF, Optimize: true,
	})
	base := lib.Area(naive.Mod)

	res := EntropyAblationResult{Baseline: base}
	add := func(e core.Entropy, separate bool) {
		d := core.MustBuild(spec, core.Options{
			Scheme: core.SchemeThreeInOne, Entropy: e,
			Engine: synth.EngineANF, SeparateSbox: separate, Optimize: true,
		})
		rep := lib.Area(d.Mod)
		bits := 1
		switch e {
		case core.EntropyPerRound:
			bits = spec.Rounds
		case core.EntropyPerSbox:
			bits = spec.Rounds * spec.NumSboxes()
		}
		layout := "merged"
		if separate {
			layout = "separate"
		}
		res.Rows = append(res.Rows, EntropyAblationRow{
			Variant: e, Layout: layout, Report: rep,
			LambdaBitsPerRun: bits, Ratio: rep.Ratio(base),
		})
	}
	add(core.EntropyPrime, false)
	add(core.EntropyPerRound, false)
	add(core.EntropyPerSbox, false)
	add(core.EntropyPrime, true) // the ACISP-style layout the paper replaces
	return res
}

// String renders the variant table.
func (r EntropyAblationResult) String() string {
	var sb strings.Builder
	sb.WriteString("Ablation: entropy variants and S-box layout (PRESENT-80, three-in-one)\n")
	fmt.Fprintf(&sb, "%-12s %-10s %8s %14s %18s %10s %8s\n",
		"variant", "layout", "λ bits", "Combinational", "Non-combinational", "Total", "Ratio")
	fmt.Fprintf(&sb, "%-12s %-10s %8s %14.0f %18.0f %10.0f %8s\n",
		"(naive dup)", "-", "0", r.Baseline.Combinational, r.Baseline.Sequential, r.Baseline.Total(), "1.00x")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-12s %-10s %8d %14.0f %18.0f %10.0f %7.2fx\n",
			row.Variant, row.Layout, row.LambdaBitsPerRun,
			row.Report.Combinational, row.Report.Sequential, row.Report.Total(), row.Ratio)
	}
	return sb.String()
}

// EngineAblationRow prices one S-box form under one engine.
type EngineAblationRow struct {
	Cipher string
	Engine synth.Engine
	Plain  float64 // GE of one plain S-box
	Merged float64 // GE of one merged (n+1)-bit S-box
	Ratio  float64
}

// EngineAblationResult compares the ANF and BDD synthesis engines.
type EngineAblationResult struct {
	Rows []EngineAblationRow
}

// RunEngineAblation synthesises the PRESENT and AES S-boxes (plain and
// merged) with both engines.
func RunEngineAblation() EngineAblationResult {
	lib := stdcell.Nangate45()
	var res EngineAblationResult
	add := func(cipher string, sbox []uint64, n int, e synth.Engine) {
		sm := core.BuildSboxModules(sbox, n, e, true)
		p := lib.Area(sm.Plain).Total()
		m := lib.Area(sm.Merged).Total()
		ratio := 0.0
		if p > 0 {
			ratio = m / p
		}
		res.Rows = append(res.Rows, EngineAblationRow{
			Cipher: cipher, Engine: e, Plain: p, Merged: m, Ratio: ratio,
		})
	}
	aesSbox := make([]uint64, 256)
	for i, v := range aes.Sbox {
		aesSbox[i] = uint64(v)
	}
	for _, e := range []synth.Engine{synth.EngineANF, synth.EngineBDD} {
		add("present", present.Sbox, present.SboxBits, e)
		add("aes", aesSbox, aes.SboxBits, e)
	}
	return res
}

// String renders the engine comparison.
func (r EngineAblationResult) String() string {
	var sb strings.Builder
	sb.WriteString("Ablation: S-box synthesis engine (GE per S-box instance)\n")
	fmt.Fprintf(&sb, "%-10s %-8s %12s %12s %8s\n", "cipher", "engine", "plain", "merged", "ratio")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-10s %-8s %12.0f %12.0f %7.1fx\n",
			row.Cipher, row.Engine, row.Plain, row.Merged, row.Ratio)
	}
	return sb.String()
}
