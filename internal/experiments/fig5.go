package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/stats"
)

// Figure 5 of the paper: the identical-fault DFA model of Selmke, Heyszl
// and Sigl (FDTC 2016). The *same* stuck-at-0 fault is injected at the
// second LSB of the input of S-box 5, in the last round, in BOTH the
// actual and the redundant computation:
//
//   - naive duplication (Fig 5a): both computations fail identically, the
//     comparator never fires, and whenever the faulted bit was 1 a wrong
//     ciphertext is RELEASED — the attacker collects DFA pairs whose
//     S-box-5 inputs all have their second LSB set (a strong bias);
//   - the three-in-one countermeasure (Fig 5b): the two computations run
//     in complementary encodings, so an identical fault mask can never be
//     ineffective in both branches at once for the same underlying value —
//     every effective fault is sensed and the effect is nullified.

// Fig5 experiment parameters (fixed by the paper).
const (
	Fig5SboxIndex = 5
	Fig5FaultBit  = 1 // second LSB of a 4-bit value
)

// Fig5Panel is the outcome for one design.
type Fig5Panel struct {
	Design   string
	Campaign fault.Result
	// Released histograms the true S-box input over runs where a WRONG
	// ciphertext escaped (the DFA-exploitable set).
	Released *stats.Histogram
	// Ineffective histograms the true S-box input over ineffective
	// runs (the SIFA-exploitable set).
	Ineffective *stats.Histogram
}

// Fig5Result pairs the two panels.
type Fig5Result struct {
	Naive      Fig5Panel
	ThreeInOne Fig5Panel
}

// RunFig5 executes the Figure 5 campaign on both designs.
func RunFig5(cfg Config) (Fig5Result, error) {
	naive, err := runFig5Panel(cfg, buildNaive())
	if err != nil {
		return Fig5Result{}, err
	}
	tio, err := runFig5Panel(cfg, buildThreeInOne())
	if err != nil {
		return Fig5Result{}, err
	}
	return Fig5Result{Naive: naive, ThreeInOne: tio}, nil
}

func runFig5Panel(cfg Config, d *core.Design) (Fig5Panel, error) {
	spec := d.Spec
	cyc := d.LastRoundCycle()
	faults := []fault.Fault{
		fault.At(d.SboxInputNet(core.BranchActual, Fig5SboxIndex, Fig5FaultBit), fault.StuckAt0, cyc),
		fault.At(d.SboxInputNet(core.BranchRedundant, Fig5SboxIndex, Fig5FaultBit), fault.StuckAt0, cyc),
	}
	camp := fault.Campaign{
		Design: d,
		Key:    cfg.Key,
		Faults: faults,
		Runs:   cfg.runs(),
		Seed:   cfg.Seed,
		Engine: fault.EngineConfig{Parallelism: cfg.Workers},
	}
	released := stats.NewHistogram(1 << uint(spec.SboxBits))
	ineffective := stats.NewHistogram(1 << uint(spec.SboxBits))
	res, err := camp.Execute(func(r fault.Run) {
		state := spec.SboxLayerInput(r.PT, cfg.Key, spec.Rounds)
		v := spec.SboxInput(state, Fig5SboxIndex)
		switch r.Outcome {
		case fault.OutcomeEffective:
			released.Add(v)
		case fault.OutcomeIneffective:
			ineffective.Add(v)
		}
	})
	if err != nil {
		return Fig5Panel{}, err
	}
	return Fig5Panel{Design: d.Mod.Name, Campaign: res, Released: released, Ineffective: ineffective}, nil
}

// String renders both panels.
func (r Fig5Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5: identical stuck-at-0 at 2nd LSB of S-box %d input in BOTH computations, last round\n", Fig5SboxIndex)
	for _, p := range []Fig5Panel{r.Naive, r.ThreeInOne} {
		fmt.Fprintf(&sb, "\n[%s] %s\n", p.Design, p.Campaign)
		sb.WriteString(p.Released.Bars("S-box input over RELEASED faulty ciphertexts (DFA material)", 40))
		sb.WriteString(p.Ineffective.Bars("S-box input over ineffective runs", 40))
	}
	return sb.String()
}
