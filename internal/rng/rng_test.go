package rng

import (
	"math"
	"testing"
)

func TestXoshiroDeterminism(t *testing.T) {
	a := NewXoshiro(42)
	b := NewXoshiro(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewXoshiro(1).Uint64() == NewXoshiro(2).Uint64() {
		t.Fatal("different seeds collided on first output (suspicious)")
	}
}

func TestXoshiroBitsRange(t *testing.T) {
	g := NewXoshiro(7)
	for n := 1; n <= 64; n++ {
		v := g.Bits(n)
		if n < 64 && v >= 1<<uint(n) {
			t.Fatalf("Bits(%d) = %x out of range", n, v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Bits(0) should panic")
		}
	}()
	g.Bits(0)
}

func TestXoshiroIntn(t *testing.T) {
	g := NewXoshiro(11)
	seen := make(map[int]int)
	for i := 0; i < 3000; i++ {
		v := g.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v]++
	}
	for v := 0; v < 10; v++ {
		if seen[v] < 200 {
			t.Fatalf("value %d badly underrepresented: %d", v, seen[v])
		}
	}
}

func TestXoshiroUniformity(t *testing.T) {
	g := NewXoshiro(1234)
	const n = 100000
	ones := 0
	for i := 0; i < n; i++ {
		ones += int(g.Bits(1))
	}
	frac := float64(ones) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("bit bias %.4f", frac)
	}
}

func TestForkIndependence(t *testing.T) {
	g := NewXoshiro(5)
	f1 := g.Fork()
	f2 := g.Fork()
	same := 0
	for i := 0; i < 64; i++ {
		if f1.Uint64() == f2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams collide (%d/64)", same)
	}
}

func TestTRNGRawBiasVisible(t *testing.T) {
	raw := NewRingOscillatorTRNG(1, WithBias(0.10), WithoutCorrector())
	const n = 50000
	ones := 0
	for i := 0; i < n; i++ {
		ones += int(raw.Bit())
	}
	frac := float64(ones) / n
	if frac < 0.55 {
		t.Fatalf("expected visible raw bias, got %.4f", frac)
	}
}

func TestTRNGCorrectorRemovesBias(t *testing.T) {
	corr := NewRingOscillatorTRNG(1, WithBias(0.10))
	const n = 50000
	ones := 0
	for i := 0; i < n; i++ {
		ones += int(corr.Bit())
	}
	frac := float64(ones) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("corrector left bias %.4f", frac)
	}
	raw, out := corr.Throughput()
	if raw <= out {
		t.Fatal("von Neumann corrector must consume more raw samples than it emits")
	}
}

func TestTRNGDeterministicFromSeed(t *testing.T) {
	a := NewRingOscillatorTRNG(99)
	b := NewRingOscillatorTRNG(99)
	for i := 0; i < 256; i++ {
		if a.Bit() != b.Bit() {
			t.Fatal("TRNG model must be reproducible from its seed")
		}
	}
}

func TestHealthMonitorPassesGoodSource(t *testing.T) {
	h := NewHealthMonitor(NewXoshiro(3))
	for i := 0; i < 10000; i++ {
		h.Bits(1)
	}
	if h.Failed() {
		t.Fatal("healthy source flagged")
	}
}

type stuckSource struct{}

func (stuckSource) Bits(n int) uint64 { return 1<<uint(n) - 1 }

func TestHealthMonitorCatchesStuckSource(t *testing.T) {
	h := NewHealthMonitor(stuckSource{})
	for i := 0; i < 100 && !h.Failed(); i++ {
		h.Bits(1)
	}
	if !h.Failed() {
		t.Fatal("stuck-at source not caught by repetition test")
	}
}

type biasedSource struct{ g *Xoshiro }

func (b biasedSource) Bits(n int) uint64 {
	var out uint64
	for i := 0; i < n; i++ {
		// 75% ones: OR of two fair bits.
		out |= (b.g.Bits(1) | b.g.Bits(1)) << uint(i)
	}
	return out
}

func TestHealthMonitorCatchesHeavyBias(t *testing.T) {
	h := NewHealthMonitor(biasedSource{NewXoshiro(8)})
	for i := 0; i < 4096 && !h.Failed(); i++ {
		h.Bits(1)
	}
	if !h.Failed() {
		t.Fatal("heavily biased source not caught by adaptive proportion test")
	}
}
