package rng

import "fmt"

// RingOscillatorTRNG is a behavioural model of the classic ring-oscillator
// true random number generator the paper presumes on chip (Wold & Tan,
// ReConFig 2008): a free-running ring oscillator is sampled by an unrelated
// system clock; accumulated period jitter makes the sampled bit
// unpredictable. The model draws the jittered phase from an internal
// deterministic noise process so simulations stay reproducible, injects a
// configurable duty-cycle bias (real TRNGs are biased, which is exactly
// why the corrector stage exists), and optionally passes the raw bits
// through a von Neumann corrector.
type RingOscillatorTRNG struct {
	noise *Xoshiro

	// phase is the oscillator phase in [0, 1) at the last sample.
	phase float64
	// ratio is the (irrational-ish) oscillator-to-sample frequency
	// ratio; its fractional part advances the phase every sample.
	ratio float64
	// jitterPPM is the standard-ish deviation of per-sample phase
	// noise, in parts per million of one period.
	jitterPPM float64
	// bias shifts the duty cycle: the sampled bit is 1 while the phase
	// is below 0.5+bias.
	bias float64
	// corrected enables the von Neumann corrector.
	corrected bool

	rawCount uint64
	outCount uint64
}

// TRNGOption configures the model.
type TRNGOption func(*RingOscillatorTRNG)

// WithBias sets the raw duty-cycle bias (default 0.05, a realistic skew).
func WithBias(b float64) TRNGOption {
	return func(t *RingOscillatorTRNG) { t.bias = b }
}

// WithJitterPPM sets the per-sample jitter strength (default 900 ppm).
func WithJitterPPM(ppm float64) TRNGOption {
	return func(t *RingOscillatorTRNG) { t.jitterPPM = ppm }
}

// WithoutCorrector disables the von Neumann stage, exposing raw (biased)
// bits — used by tests to demonstrate why the corrector matters.
func WithoutCorrector() TRNGOption {
	return func(t *RingOscillatorTRNG) { t.corrected = false }
}

// NewRingOscillatorTRNG creates the model with a deterministic noise seed.
func NewRingOscillatorTRNG(seed uint64, opts ...TRNGOption) *RingOscillatorTRNG {
	t := &RingOscillatorTRNG{
		noise:     NewXoshiro(seed),
		ratio:     16.61803398874989, // far from a rational lock-in
		jitterPPM: 900,
		bias:      0.05,
		corrected: true,
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// gaussian draws an approximately normal value via the sum of twelve
// uniforms (Irwin-Hall), entirely deterministic from the noise PRNG.
func (t *RingOscillatorTRNG) gaussian() float64 {
	sum := 0.0
	for i := 0; i < 12; i++ {
		sum += float64(t.noise.Uint64()>>11) / (1 << 53)
	}
	return sum - 6
}

// RawBit samples the oscillator once.
func (t *RingOscillatorTRNG) RawBit() uint64 {
	t.rawCount++
	t.phase += t.ratio + t.gaussian()*t.jitterPPM/1e6*t.ratio
	t.phase -= float64(int64(t.phase)) // keep the fractional part
	if t.phase < 0 {
		t.phase++
	}
	if t.phase < 0.5+t.bias {
		return 1
	}
	return 0
}

// Bit returns one output bit, after the corrector when enabled. The von
// Neumann corrector maps raw pairs 01 -> 0 and 10 -> 1, discarding 00/11,
// which removes any constant bias at the cost of throughput.
func (t *RingOscillatorTRNG) Bit() uint64 {
	defer func() { t.outCount++ }()
	if !t.corrected {
		return t.RawBit()
	}
	for {
		a := t.RawBit()
		b := t.RawBit()
		if a != b {
			return b
		}
	}
}

// Bits implements Source.
func (t *RingOscillatorTRNG) Bits(n int) uint64 {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("rng: Bits(%d) out of range", n))
	}
	var out uint64
	for i := 0; i < n; i++ {
		out |= t.Bit() << uint(i)
	}
	return out
}

// Throughput reports raw samples consumed and corrected bits produced —
// the corrector's cost, visible in benchmarks.
func (t *RingOscillatorTRNG) Throughput() (raw, out uint64) {
	return t.rawCount, t.outCount
}

// --- health tests (NIST SP 800-90B style) -------------------------------

// HealthMonitor wraps a Source with the two continuous health tests every
// deployed TRNG runs: the repetition-count test and the adaptive-
// proportion test. A countermeasure must stop trusting λ when its entropy
// source fails, so the harness exposes this wrapper.
type HealthMonitor struct {
	src Source

	repCount   int
	lastBit    uint64
	repCutoff  int
	window     []uint64
	windowLen  int
	propCutoff int

	failed bool
}

// NewHealthMonitor wraps src. Cutoffs follow SP 800-90B's recommendations
// for one bit of entropy per sample: repetition cutoff 41, adaptive
// proportion cutoff 624 ones (or zeros) in a 1024-bit window.
func NewHealthMonitor(src Source) *HealthMonitor {
	return &HealthMonitor{
		src:        src,
		repCutoff:  41,
		windowLen:  1024,
		propCutoff: 624,
	}
}

// Failed reports whether either health test has tripped.
func (h *HealthMonitor) Failed() bool { return h.failed }

// Bits implements Source, feeding every bit through the tests.
func (h *HealthMonitor) Bits(n int) uint64 {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("rng: Bits(%d) out of range", n))
	}
	var out uint64
	for i := 0; i < n; i++ {
		b := h.src.Bits(1)
		h.observe(b)
		out |= b << uint(i)
	}
	return out
}

func (h *HealthMonitor) observe(b uint64) {
	// Repetition count test.
	if b == h.lastBit && len(h.window) > 0 {
		h.repCount++
		if h.repCount >= h.repCutoff {
			h.failed = true
		}
	} else {
		h.repCount = 1
	}
	h.lastBit = b

	// Adaptive proportion test over a sliding window.
	h.window = append(h.window, b)
	if len(h.window) >= h.windowLen {
		ones := 0
		for _, w := range h.window {
			ones += int(w)
		}
		if ones >= h.propCutoff || len(h.window)-ones >= h.propCutoff {
			h.failed = true
		}
		h.window = h.window[:0]
	}
}
