// Package rng provides the randomness substrates of the reproduction.
//
// The paper presumes an on-chip ring-oscillator TRNG as the source of the
// encoding bit λ. Physical oscillators do not exist in a simulation, so
// this package supplies (a) a behavioural ring-oscillator TRNG model with
// jitter, bias, a von Neumann corrector and the standard NIST SP 800-90B
// style health tests, exercising the same interface a hardware TRNG driver
// would; and (b) a small deterministic xoshiro256** PRNG used to make every
// experiment in the repository reproducible from a seed.
package rng

import "fmt"

// Source yields random bits; both the TRNG model and the deterministic
// PRNG implement it, and the countermeasure harnesses accept either.
type Source interface {
	// Bits returns n random bits (1..64) in the low bits of the result.
	Bits(n int) uint64
}

// --- deterministic PRNG -------------------------------------------------

// Xoshiro is the xoshiro256** deterministic generator; it implements
// Source and is the reproducible default for all experiments.
type Xoshiro struct {
	s [4]uint64
}

// NewXoshiro seeds the generator from a single word via SplitMix64, which
// guarantees a non-zero state.
func NewXoshiro(seed uint64) *Xoshiro {
	x := &Xoshiro{}
	x.Reseed(seed)
	return x
}

// Reseed re-initialises the generator in place, exactly as NewXoshiro seeds
// a fresh one: the subsequent output stream is identical. Campaign workers
// reuse one generator per lane group to keep the batch hot path
// allocation-free.
func (x *Xoshiro) Reseed(seed uint64) {
	sm := seed
	for i := range x.s {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		x.s[i] = z ^ (z >> 31)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64-bit output.
func (x *Xoshiro) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Bits implements Source.
func (x *Xoshiro) Bits(n int) uint64 {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("rng: Bits(%d) out of range", n))
	}
	if n == 64 {
		return x.Uint64()
	}
	return x.Uint64() & (1<<uint(n) - 1)
}

// Intn returns a uniform integer in [0, n).
func (x *Xoshiro) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive bound")
	}
	// Rejection sampling over the smallest covering power of two.
	bits := 0
	for 1<<uint(bits) < n {
		bits++
	}
	for {
		v := int(x.Bits(max(bits, 1)))
		if v < n {
			return v
		}
	}
}

// Fork derives an independent generator; campaigns fork one per worker.
func (x *Xoshiro) Fork() *Xoshiro {
	return NewXoshiro(x.Uint64())
}
