package core

import (
	"repro/internal/bits"
	"repro/internal/spn"
)

// This file implements the inverted-encoding cipher of the paper's
// Section III: every wire carries the complement of its logical value.
// Table I of the paper gives the gate-level consequence — in the inverted
// domain XOR becomes XNOR and AND becomes the De Morgan dual (which is OR
// on the encoded wires). At the word level the rules used below follow:
//
//   - S-box:        S̄(u) = ¬S(¬u)           (the "inverted S-box")
//   - key addition: encoded ^ plain-key      (XOR with an unencoded key
//     preserves the encoding: ¬x ^ k = ¬(x ^ k))
//   - permutation:  unchanged (pure wiring)

// InvXOR is the inverted-domain XOR of Table I(a): given encoded inputs
// ¬x0, ¬x1 it produces the encoded output ¬(x0 XOR x1). On raw wires this
// is XNOR.
func InvXOR(a, b uint64) uint64 { return ^(a ^ b) }

// InvAND is the inverted-domain AND of Table I(b): given encoded inputs
// ¬x0, ¬x1 it produces the encoded output ¬(x0 AND x1). On raw wires this
// is OR.
func InvAND(a, b uint64) uint64 { return a | b }

// InvertedSbox returns the inverted-encoding S-box table S̄(u) = ¬S(¬u)
// for an n-bit S-box.
func InvertedSbox(sbox []uint64, n int) []uint64 {
	mask := bits.Mask(n)
	out := make([]uint64, len(sbox))
	for u := range out {
		out[u] = ^sbox[^uint64(u)&mask] & mask
	}
	return out
}

// MergedSbox returns the (n+1)-bit merged S-box of the paper's third
// amendment: input bit n is λ; the table computes S(x) when λ = 0 and
// ¬S(¬x) when λ = 1, so a single circuit serves both encodings.
func MergedSbox(sbox []uint64, n int) []uint64 {
	mask := bits.Mask(n)
	inv := InvertedSbox(sbox, n)
	out := make([]uint64, 2*len(sbox))
	for x := range sbox {
		out[x] = sbox[x]
		out[x|1<<uint(n)] = inv[x] & mask
	}
	return out
}

// InvertedEncrypt runs the inverted-encoding cipher: it takes the encoded
// plaintext ¬P, processes every round entirely in the inverted domain
// (inverted S-box, plain key schedule), and returns the encoded ciphertext
// ¬C. The defining identity, checked by property tests, is
//
//	¬InvertedEncrypt(spec, ¬P, K) == spec.Encrypt(P, K).
func InvertedEncrypt(spec *spn.Spec, encPt uint64, key spn.KeyState) uint64 {
	mask := bits.Mask(spec.BlockBits)
	inv := InvertedSbox(spec.Sbox, spec.SboxBits)
	state := encPt & mask
	ks := spec.InitKeyState(key)
	w := uint(spec.SboxBits)
	sboxMask := uint64(1)<<w - 1
	// A general linear layer does not commute with complementation:
	// M·(¬x) = ¬(M·x) ⊕ C with the constant C = M·1 ⊕ 1 (zero for any
	// bit permutation, and for any matrix whose rows all have odd
	// parity). XORing C after the layer keeps the state in the
	// inverted encoding.
	linCorr := bits.MatMulVec(spec.LinearLayerRows(), mask) ^ mask
	for r := 1; r <= spec.Rounds; r++ {
		rk := spec.RoundXORMask(ks, r)
		if !spec.KeyAddAfterPerm {
			state ^= rk
		}
		var next uint64
		for i := 0; i < spec.NumSboxes(); i++ {
			next |= inv[(state>>(uint(i)*w))&sboxMask] << (uint(i) * w)
		}
		state = spec.ApplyLinear(next) ^ linCorr
		if spec.KeyAddAfterPerm {
			state ^= rk
		}
		ks = spec.NextKeyState(ks, r)
	}
	if spec.FinalWhitening {
		state ^= spec.RoundXORMask(ks, spec.Rounds+1)
	}
	return state & mask
}
