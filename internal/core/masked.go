package core

import (
	"fmt"
	"math/bits"

	"repro/internal/netlist"
	"repro/internal/spn"
	"repro/internal/synth"
)

// This file implements the SchemeMaskedDup datapath: the three-in-one
// duplication scheme with every data-carrying wire split into a first-order
// Boolean share pair. The construction is designed so that the *mean* of
// every net — and of every net's cycle-to-cycle transition — is independent
// of the processed data, which is exactly what a fixed-vs-random Welch
// t-test on summed Hamming-weight / Hamming-distance traces measures.
//
// Share convention (per branch, value v = state ⊕ λbranch as in the
// unmasked scheme):
//
//	share0 (registered):      v ⊕ M[i] ⊕ λm
//	share1 (combinational):   M[i] ⊕ λm
//
// where M is the per-encryption state mask and λm the λ-share mask. Because
// share1 is a pure function of the mask inputs it needs no register: the
// datapath re-establishes the canonical mask on share0 at the end of every
// round ("remasking"), so share1 is simply recomputed from the ports.
//
// Two independent mask sets (mask_state_even/odd, mask_rand_even/odd) are
// consumed in alternation by round parity. With a single per-encryption
// mask set, a register's consecutive values v_c ⊕ M and v_{c+1} ⊕ M would
// toggle as v_c ⊕ v_{c+1} — unmasked data under the Hamming-distance model.
// Parity alternation makes every consecutive-cycle pair use independent
// masks at the cost of one extra port set and a mux per masked bit, with no
// mask registers and no per-cycle randomness.
//
// S-boxes evaluate the merged (n+1)-input table as an ANF monomial network
// of domain-oriented-masking AND gadgets (one fresh pool bit per distinct
// monomial), followed by explicit left-folded XOR accumulation chains that
// keep a refresh bit in every partial sum. The XOR order (nonlinear
// monomials first, then linear shares, then the constant) is load-bearing:
// reassociating the chains can produce an unrefreshed cross-share partial
// sum whose mean depends on the data.

// maskedPlan is the gadget schedule of one masked S-box: the distinct
// ANF monomials of the merged table that need an AND gadget (each owning
// one refresh-pool bit) and the per-output term lists.
type maskedPlan struct {
	// inputs is the S-box width n; the λ share pair is input index n.
	inputs int
	table  *synth.TruthTable
	// gadgets lists the monomial masks in pool-bit order; gadgetIdx is
	// the inverse mapping.
	gadgets   []uint64
	gadgetIdx map[uint64]int
	outputs   []maskedOutput
}

// maskedOutput is one output's ANF split into gadget monomials (degree at
// least 2), linear terms (input indices; λ is index n) and the constant.
type maskedOutput struct {
	monomials []uint64
	linear    []int
	hasConst  bool
}

// planMaskedSbox schedules the gadgets of a merged (n+1)-input table.
// Monomials decompose from the lowest variable upward with shared prefixes
// (mirroring synth.SynthesizeANF), so the gadget count — and with it the
// mask_rand_* port width — is the number of distinct monomial prefixes of
// degree at least 2. The walk order is deterministic: outputs in order,
// monomial masks ascending, prefixes before the monomials that use them.
func planMaskedSbox(tt *synth.TruthTable) *maskedPlan {
	p := &maskedPlan{
		inputs:    tt.NumInputs - 1,
		table:     tt,
		gadgetIdx: make(map[uint64]int),
	}
	var ensure func(mask uint64)
	ensure = func(mask uint64) {
		if _, ok := p.gadgetIdx[mask]; ok {
			return
		}
		low := uint64(1) << uint(bits.TrailingZeros64(mask))
		if rest := mask &^ low; bits.OnesCount64(rest) >= 2 {
			ensure(rest)
		}
		p.gadgetIdx[mask] = len(p.gadgets)
		p.gadgets = append(p.gadgets, mask)
	}
	for o := 0; o < tt.NumOutputs; o++ {
		anf := tt.ANF(o)
		var op maskedOutput
		for x := uint64(0); x < tt.Size(); x++ {
			if (anf[x>>6]>>(x&63))&1 == 0 {
				continue
			}
			switch bits.OnesCount64(x) {
			case 0:
				op.hasConst = true
			case 1:
				op.linear = append(op.linear, bits.TrailingZeros64(x))
			default:
				ensure(x)
				op.monomials = append(op.monomials, x)
			}
		}
		p.outputs = append(p.outputs, op)
	}
	return p
}

// buildMaskedSboxModule emits the shared masked S-box netlist. Ports:
// x0/x1 are the state share buses, l0/l1 the λ share pair, r the refresh
// pool (current parity's set, one bit per gadget), y0/y1 the output share
// buses. The module is instantiated verbatim (never re-synthesised), so
// the gadget gate structure survives into the compiled design.
func buildMaskedSboxModule(name string, plan *maskedPlan) *netlist.Module {
	n := plan.inputs
	m := netlist.New(name)
	x0 := m.AddInput("x0", n)
	x1 := m.AddInput("x1", n)
	l0 := m.AddInput("l0", 1)
	l1 := m.AddInput("l1", 1)
	var r netlist.Bus
	if len(plan.gadgets) > 0 {
		r = m.AddInput("r", len(plan.gadgets))
	}

	share := func(i int) (netlist.Net, netlist.Net) {
		if i == n {
			return l0[0], l1[0]
		}
		return x0[i], x1[i]
	}

	type pair struct{ s0, s1 netlist.Net }
	memo := make(map[uint64]pair)
	var mono func(mask uint64) pair
	mono = func(mask uint64) pair {
		if p, ok := memo[mask]; ok {
			return p
		}
		var p pair
		if bits.OnesCount64(mask) == 1 {
			p.s0, p.s1 = share(bits.TrailingZeros64(mask))
			memo[mask] = p
			return p
		}
		low := bits.TrailingZeros64(mask)
		a0, a1 := share(low)
		b := mono(mask &^ (1 << uint(low)))
		rg := r[plan.gadgetIdx[mask]]
		// DOM AND gadget with a pure-mask output share: z0 = a·b ⊕ rg,
		// z1 = rg. The refresh bit enters the chain first so every
		// partial wire carries an independent uniform bit; the emission
		// order below is part of the security argument — do not
		// reassociate or let an optimiser rewrite it.
		t := m.Xor(rg, m.And(a0, b.s1))
		t = m.Xor(t, m.And(a1, b.s0))
		t = m.Xor(t, m.And(a1, b.s1))
		p = pair{s0: m.Xor(t, m.And(a0, b.s0)), s1: rg}
		memo[mask] = p
		return p
	}

	y0 := make(netlist.Bus, plan.table.NumOutputs)
	y1 := make(netlist.Bus, plan.table.NumOutputs)
	for o, op := range plan.outputs {
		var acc0, acc1 netlist.Net
		have0, have1 := false, false
		add0 := func(nn netlist.Net) {
			if !have0 {
				acc0, have0 = nn, true
			} else {
				acc0 = m.Xor(acc0, nn)
			}
		}
		add1 := func(nn netlist.Net) {
			if !have1 {
				acc1, have1 = nn, true
			} else {
				acc1 = m.Xor(acc1, nn)
			}
		}
		// Nonlinear monomials first: their z0 terms each carry a pool
		// bit, so every later partial sum stays refreshed. The linear
		// shares follow (their λm components cancel pairwise but always
		// leave a distinct state-mask bit), and the ANF constant is
		// folded into share0 alone.
		for _, mask := range op.monomials {
			p := mono(mask)
			add0(p.s0)
			add1(p.s1)
		}
		for _, i := range op.linear {
			a0, a1 := share(i)
			add0(a0)
			add1(a1)
		}
		switch {
		case !have0 && op.hasConst:
			acc0 = m.Const1()
		case !have0:
			acc0 = m.Const0()
		case op.hasConst:
			acc0 = m.Not(acc0)
		}
		if !have1 {
			acc1 = m.Const0()
		}
		y0[o], y1[o] = acc0, acc1
	}

	// Outputs must be distinct nets even when expressions coincide;
	// buffer aliases (same contract as synth.SynthesizeANF).
	all := y0.Concat(y1)
	seen := make(map[netlist.Net]bool)
	for i, nn := range all {
		if seen[nn] {
			all[i] = m.Buf(nn)
		} else {
			seen[nn] = true
		}
	}
	m.AddOutput("y0", all[:len(y0)])
	m.AddOutput("y1", all[len(y0):])
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("core: masked S-box netlist invalid: %v", err))
	}
	return m
}

// maskedPorts bundles the mask input buses of a masked design.
type maskedPorts struct {
	stateEven, stateOdd netlist.Bus
	randEven, randOdd   netlist.Bus
	lamMask             netlist.Net
}

// validateMaskedOptions rejects option combinations the masked construction
// does not support. The restrictions are structural, not incidental:
// per-round/per-sbox λ needs the domain-conversion layer whose correction
// wires would recombine shares, and a general GF(2) linear layer XORs
// S-box outputs across gadget cones, which could cancel refresh bits.
func validateMaskedOptions(spec *spn.Spec, opts Options) error {
	switch {
	case opts.Entropy != EntropyPrime:
		return fmt.Errorf("core: scheme %s supports entropy %s only (got %s)",
			opts.Scheme, EntropyPrime, opts.Entropy)
	case spec.LinearRows != nil:
		return fmt.Errorf("core: scheme %s needs a bit-permutation linear layer; %s has a general GF(2) layer",
			opts.Scheme, spec.Name)
	case opts.SeparateSbox:
		return fmt.Errorf("core: scheme %s has no separate-S-box layout", opts.Scheme)
	}
	return nil
}

// buildMaskedBranch emits one masked computation and returns the decoded —
// but last-cycle-gated — ciphertext bus. On every clocked (power-sampled)
// cycle the returned wires are forced to zero; only the final combinational
// read-out (counter = Rounds+1, load = 0) releases the recombined value,
// so no share recombination is ever visible to the per-cycle probe.
func (d *Design) buildMaskedBranch(m *netlist.Module, b Branch, sm SboxModules, msb *netlist.Module, pt, key netlist.Bus, load netlist.Net, lam0 netlist.Net, mp *maskedPorts) netlist.Bus {
	spec := d.Spec
	prefix := BranchPrefix(b)

	stateQ := m.NewNets(prefix+"state", spec.BlockBits)
	keyQ := m.NewNets(prefix+"key", spec.KeyStateBits)
	cntQ := m.NewNets(prefix+"cnt", spec.CounterWidth())
	d.stateReg[b] = stateQ

	// Round parity selects the active mask set: the register written for
	// cycle c carries the parity-c masks, and cnt bit 0 is c during cycle
	// c, so the combinational share1 always matches the register's mask.
	parity := cntQ[0]
	share1 := make(netlist.Bus, spec.BlockBits)
	nextShare1 := make(netlist.Bus, spec.BlockBits)
	for i := 0; i < spec.BlockBits; i++ {
		cur := m.Mux(mp.stateEven[i], mp.stateOdd[i], parity)
		share1[i] = m.Xor(cur, mp.lamMask)
		next := m.Mux(mp.stateOdd[i], mp.stateEven[i], parity)
		nextShare1[i] = m.Xor(next, mp.lamMask)
	}
	pool := make(netlist.Bus, d.MaskPoolWidth)
	for g := range pool {
		pool[g] = m.Mux(mp.randEven[g], mp.randOdd[g], parity)
	}

	// Key schedule: plain and unmasked, as in every scheme — the key is
	// fixed across a trace set, so its wires carry constants and cannot
	// contribute a fixed-vs-random difference. The round key XORs into
	// share0 only.
	rkMask, ksNext := spec.KeySchedNet(m, keyQ, cntQ, sm.PlainFunc())
	if len(rkMask) != spec.BlockBits || len(ksNext) != spec.KeyStateBits {
		panic(fmt.Sprintf("core: %s KeySchedNet returned widths %d/%d", spec.Name, len(rkMask), len(ksNext)))
	}

	x0 := stateQ.Clone()
	if !spec.KeyAddAfterPerm {
		x0 = m.XorBus(x0, rkMask)
	}

	// Masked S-box layer. The fault points stay the share0 input nets:
	// a flip there shifts the branch's logical value exactly as in the
	// unmasked scheme, so λ-diverse detection behaviour is unchanged.
	d.sboxIn[b] = make([]netlist.Bus, spec.NumSboxes())
	var y0, y1 netlist.Bus
	for s := 0; s < spec.NumSboxes(); s++ {
		in0 := x0.Slice(s*spec.SboxBits, (s+1)*spec.SboxBits)
		in1 := share1.Slice(s*spec.SboxBits, (s+1)*spec.SboxBits)
		d.sboxIn[b][s] = in0
		conns := map[string]netlist.Bus{
			"x0": in0,
			"x1": in1,
			"l0": {lam0},
			"l1": {mp.lamMask},
		}
		if len(pool) > 0 {
			conns["r"] = pool
		}
		outs := m.MustInstantiate(msb, fmt.Sprintf("%ssbox%02d", prefix, s), conns)
		y0 = y0.Concat(outs["y0"])
		y1 = y1.Concat(outs["y1"])
	}

	// Permutation linear layer: pure wiring on both shares.
	y0p := y0.Permute(spec.Perm)
	y1p := y1.Permute(spec.Perm)
	if spec.KeyAddAfterPerm {
		y0p = m.XorBus(y0p, rkMask)
	}

	// Remask: collapse the accumulated S-box masks back to the next
	// round's canonical encoding. t is a pure-mask wire (y1p never
	// carries data), so share0 picks up the fresh mask without any
	// data-on-data XOR.
	s0next := make(netlist.Bus, spec.BlockBits)
	for j := 0; j < spec.BlockBits; j++ {
		t := m.Xor(y1p[j], nextShare1[j])
		s0next[j] = m.Xor(y0p[j], t)
	}

	// Load path: the pt port of a masked design carries pt ⊕ Modd (the
	// harness pre-masks it with the odd state mask, since round 1 runs at
	// odd parity) and lam0 carries λbranch ⊕ λm, so the register lands on
	// value ⊕ Modd ⊕ λm — the canonical cycle-1 encoding.
	ptEnc := make(netlist.Bus, spec.BlockBits)
	for i := range ptEnc {
		ptEnc[i] = m.Xor(pt[i], lam0)
	}
	stateD := m.MuxBus(s0next, ptEnc, load)
	for i := range stateQ {
		m.AddCell(netlist.KindDFF, stateQ[i], stateD[i])
	}

	keyD := m.MuxBus(ksNext, key, load)
	for i := range keyQ {
		m.AddCell(netlist.KindDFF, keyQ[i], keyD[i])
	}

	w := spec.CounterWidth()
	one := m.ConstBus(w, 1)
	cntD := m.MuxBus(incrementBus(m, cntQ), one, load)
	for i := range cntQ {
		m.AddCell(netlist.KindDFF, cntQ[i], cntD[i])
	}

	// Output decode behind the last-cycle gate. The counter reads
	// Rounds+1 only on the final combinational read-out (every sampled
	// cycle evaluates at counter values 0..Rounds), and the ¬load term
	// guards the wrap-around case Rounds+1 == 2^w, whose compare value
	// collides with the load cycle's counter. Each share is gated
	// *before* any recombining XOR.
	target := uint64(spec.Rounds+1) & ((1 << uint(w)) - 1)
	eq := m.AndReduce(m.XnorBus(cntQ, m.ConstBus(w, target)))
	last := m.And(eq, m.Not(load))
	glam := m.Xor(m.And(lam0, last), m.And(mp.lamMask, last))
	ct := make(netlist.Bus, spec.BlockBits)
	for i := range ct {
		g0 := m.And(stateQ[i], last)
		g1 := m.And(share1[i], last)
		ct[i] = m.Xor(m.Xor(g0, g1), glam)
	}
	if spec.FinalWhitening {
		ct = m.XorBus(ct, rkMask)
	}
	return ct
}
