package core

import (
	"math/rand"
	"testing"

	"repro/internal/bits"
	"repro/internal/cipher/present"
	"repro/internal/cipher/scone64"
	"repro/internal/netlist"
	"repro/internal/spn"
	"repro/internal/synth"
)

func buildMasked(t *testing.T) *Design {
	t.Helper()
	return MustBuild(present.Spec(), Options{
		Scheme: SchemeMaskedDup, Entropy: EntropyPrime, Engine: synth.EngineANF,
	})
}

// randomMaskSet draws one batch of mask port values for n lanes.
func randomMaskSet(rng *rand.Rand, d *Design, n int) *MaskSet {
	draw := func(width int) []uint64 {
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64() & bits.Mask(width)
		}
		return vals
	}
	ms := &MaskSet{
		StateEven: draw(d.Spec.BlockBits),
		StateOdd:  draw(d.Spec.BlockBits),
		Lambda:    draw(1),
	}
	if d.MaskPoolWidth > 0 {
		ms.RandEven = draw(d.MaskPoolWidth)
		ms.RandOdd = draw(d.MaskPoolWidth)
	}
	return ms
}

// With all mask ports at zero the masked datapath degenerates to the
// three-in-one values, so the shared reference check applies directly.
func TestMaskedDupZeroMaskMatchesReference(t *testing.T) {
	checkDesign(t, buildMasked(t), 3)
}

// Masking soundness: the released ciphertext must not depend on the masks.
func TestMaskedDupRandomMasksMatchReference(t *testing.T) {
	d := buildMasked(t)
	r, err := NewRunner(d)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	spec := d.Spec
	for run := 0; run < 4; run++ {
		key := randKey(rng, spec.KeyBits)
		n := 1 + rng.Intn(63)
		pts := make([]uint64, n)
		lams := make([]uint64, n)
		for i := range pts {
			pts[i] = rng.Uint64()
			lams[i] = rng.Uint64() & 1
		}
		r.Masks = randomMaskSet(rng, d, n)
		res := r.EncryptBatch(pts, key, nil, LambdaConst(lams))
		for i := range pts {
			if res.Fault[i] {
				t.Fatalf("run %d lane %d: spurious fault under random masks", run, i)
			}
			if want := spec.Encrypt(pts[i], key); res.CT[i] != want {
				t.Fatalf("run %d lane %d: ct %016X, want %016X", run, i, res.CT[i], want)
			}
		}
	}
}

// testInjector applies one value transform to every listed net on every
// cycle and lane.
type testInjector struct {
	nets []netlist.Net
	f    func(v uint64) uint64
}

func (t testInjector) Nets() []netlist.Net                         { return t.nets }
func (t testInjector) Apply(_ int, _ netlist.Net, v uint64) uint64 { return t.f(v) }

// Fault-detection parity: the same fault location (S-box share-0 input, the
// published fault points) under the same plaintexts, λ and garbage must
// produce lane-identical fault flags and released outputs on the masked and
// unmasked three-in-one designs — masking must not change detection.
func TestMaskedDupFaultParityWithThreeInOne(t *testing.T) {
	d3 := MustBuild(present.Spec(), Options{Scheme: SchemeThreeInOne, Entropy: EntropyPrime, Engine: synth.EngineANF})
	dm := buildMasked(t)

	// A symmetric bit-flip commutes with the λ-encoding, so injecting it
	// identically in both branches is undetectable by construction; the
	// identical-fault case therefore uses a stuck-at-1, which λ-diversity
	// converts into differing logical errors.
	flip := func(v uint64) uint64 { return ^v }
	stuck1 := func(uint64) uint64 { return ^uint64(0) }
	// A flip's logical effect is mask-transparent, so that case runs under
	// random masks; a stuck-at's logical effect depends on the share-0
	// mask offset, so lane-exact parity is only defined at zero masks.
	cases := []struct {
		name      string
		branches  []Branch
		f         func(uint64) uint64
		withMasks bool
	}{
		{"single-branch-flip", []Branch{BranchActual}, flip, true},
		{"identical-both-branches-stuck1", []Branch{BranchActual, BranchRedundant}, stuck1, false},
	}
	rng := rand.New(rand.NewSource(99))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r3, err := NewRunner(d3)
			if err != nil {
				t.Fatalf("NewRunner(three-in-one): %v", err)
			}
			rm, err := NewRunner(dm)
			if err != nil {
				t.Fatalf("NewRunner(masked): %v", err)
			}
			var nets3, netsM []netlist.Net
			for _, b := range tc.branches {
				nets3 = append(nets3, d3.SboxInputNet(b, 2, 1))
				netsM = append(netsM, dm.SboxInputNet(b, 2, 1))
			}
			r3.S.SetInjector(testInjector{nets3, tc.f})
			rm.S.SetInjector(testInjector{netsM, tc.f})

			for run := 0; run < 3; run++ {
				key := randKey(rng, d3.Spec.KeyBits)
				n := 64
				pts := make([]uint64, n)
				garb := make([]uint64, n)
				lams := make([]uint64, n)
				for i := range pts {
					pts[i] = rng.Uint64()
					garb[i] = rng.Uint64()
					lams[i] = rng.Uint64() & 1
				}
				if tc.withMasks {
					rm.Masks = randomMaskSet(rng, dm, n)
				}
				res3 := r3.EncryptBatch(pts, key, garb, LambdaConst(lams))
				resM := rm.EncryptBatch(pts, key, garb, LambdaConst(lams))
				detected := 0
				for i := range pts {
					if res3.Fault[i] != resM.Fault[i] {
						t.Fatalf("run %d lane %d: fault flag %v (three-in-one) != %v (masked)",
							run, i, res3.Fault[i], resM.Fault[i])
					}
					if res3.CT[i] != resM.CT[i] {
						t.Fatalf("run %d lane %d: released ct %016X != %016X",
							run, i, res3.CT[i], resM.CT[i])
					}
					if res3.Fault[i] {
						detected++
					}
				}
				if detected == 0 {
					t.Fatalf("run %d: fault never detected — injector inert?", run)
				}
			}
		})
	}
}

func TestMaskedDupBuildRejectsUnsupportedOptions(t *testing.T) {
	cases := []struct {
		name string
		spec *spn.Spec
		opts Options
	}{
		{"per-round-entropy", present.Spec(),
			Options{Scheme: SchemeMaskedDup, Entropy: EntropyPerRound, Engine: synth.EngineANF}},
		{"per-sbox-entropy", present.Spec(),
			Options{Scheme: SchemeMaskedDup, Entropy: EntropyPerSbox, Engine: synth.EngineANF}},
		{"separate-sbox", present.Spec(),
			Options{Scheme: SchemeMaskedDup, Entropy: EntropyPrime, Engine: synth.EngineANF, SeparateSbox: true}},
		{"gf2-linear-layer", scone64.Spec(),
			Options{Scheme: SchemeMaskedDup, Entropy: EntropyPrime, Engine: synth.EngineANF}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Build(tc.spec, tc.opts); err == nil {
				t.Fatalf("Build accepted unsupported masked options")
			}
		})
	}
}

// The mask refresh pool must have one bit per distinct merged-table ANF
// monomial gadget and be reflected in the ports.
func TestMaskedDupPoolWidth(t *testing.T) {
	d := buildMasked(t)
	if d.MaskPoolWidth <= 0 || d.MaskPoolWidth > 64 {
		t.Fatalf("MaskPoolWidth = %d, want 1..64", d.MaskPoolWidth)
	}
	for _, port := range []string{PortMaskStateEven, PortMaskStateOdd, PortMaskLambda, PortMaskRandEven, PortMaskRandOdd} {
		if d.Mod.FindInput(port) == nil {
			t.Fatalf("masked design is missing port %q", port)
		}
	}
	if w := len(d.Mod.FindInput(PortMaskRandEven).Bits); w != d.MaskPoolWidth {
		t.Fatalf("mask_rand_even width %d != MaskPoolWidth %d", w, d.MaskPoolWidth)
	}
}
