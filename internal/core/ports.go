package core

import "fmt"

// Port and net naming conventions of Build's netlists. The static analyzer
// in internal/lint locates the countermeasure structure (λ inputs, the two
// computations, the error flag) purely through these names, so they are
// part of the design contract rather than debug decoration.
const (
	// PortPT is the plaintext input port.
	PortPT = "pt"
	// PortKeyLo / PortKeyHi are the key input ports (hi only when the key
	// is wider than 64 bits).
	PortKeyLo = "key_lo"
	PortKeyHi = "key_hi"
	// PortLoad is the 1-bit load strobe: 1 during cycle 0.
	PortLoad = "load"
	// PortLambda is the λ randomness input of the randomised schemes.
	PortLambda = "lambda"
	// PortGarbage is the infective-output garbage input of the duplicated
	// schemes.
	PortGarbage = "garbage"
	// PortCT is the ciphertext output port.
	PortCT = "ct"
	// PortFault is the 1-bit error-flag output driven by the comparator.
	PortFault = "fault"
)

// BranchPrefix returns the net-name prefix of branch b's registers and
// instances ("b0." for the actual computation, "b1." for the redundant
// one). Register Q nets are named <prefix>state[i], <prefix>key[i],
// <prefix>cnt[i] and <prefix>lamreg[i].
func BranchPrefix(b Branch) string { return fmt.Sprintf("b%d.", b) }
