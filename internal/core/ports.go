package core

import "fmt"

// Port and net naming conventions of Build's netlists. The static analyzer
// in internal/lint locates the countermeasure structure (λ inputs, the two
// computations, the error flag) purely through these names, so they are
// part of the design contract rather than debug decoration.
const (
	// PortPT is the plaintext input port.
	PortPT = "pt"
	// PortKeyLo / PortKeyHi are the key input ports (hi only when the key
	// is wider than 64 bits).
	PortKeyLo = "key_lo"
	PortKeyHi = "key_hi"
	// PortLoad is the 1-bit load strobe: 1 during cycle 0.
	PortLoad = "load"
	// PortLambda is the λ randomness input of the randomised schemes.
	PortLambda = "lambda"
	// PortGarbage is the infective-output garbage input of the duplicated
	// schemes.
	PortGarbage = "garbage"
	// PortMaskStateEven / PortMaskStateOdd are the per-encryption state
	// mask inputs of the masked scheme. The datapath alternates between
	// the two sets by round parity, so the mask of every register and
	// every gadget changes between consecutive cycles — the property that
	// keeps Hamming-distance leakage first-order flat without a mask
	// register or per-cycle randomness.
	PortMaskStateEven = "mask_state_even"
	PortMaskStateOdd  = "mask_state_odd"
	// PortMaskRandEven / PortMaskRandOdd are the parity-alternating
	// refresh pools feeding the masked S-box AND gadgets (one bit per
	// distinct ANF monomial of the merged table).
	PortMaskRandEven = "mask_rand_even"
	PortMaskRandOdd  = "mask_rand_odd"
	// PortMaskLambda is the 1-bit mask of the λ share pair; the lambda
	// port of a masked design carries λ ⊕ mask_lambda.
	PortMaskLambda = "mask_lambda"
	// PortMaskPrefix is the common prefix of every mask input port;
	// analyses that class inputs (the prover, the linter) treat all
	// mask_* ports as uniform randomness.
	PortMaskPrefix = "mask_"
	// PortCT is the ciphertext output port.
	PortCT = "ct"
	// PortFault is the 1-bit error-flag output driven by the comparator.
	PortFault = "fault"
)

// BranchPrefix returns the net-name prefix of branch b's registers and
// instances ("b0." for the actual computation, "b1." for the redundant
// one). Register Q nets are named <prefix>state[i], <prefix>key[i],
// <prefix>cnt[i] and <prefix>lamreg[i].
func BranchPrefix(b Branch) string { return fmt.Sprintf("b%d.", b) }
