// Package core implements the paper's contribution: the three-in-one
// randomised-duplication countermeasure (DATE 2021), together with the
// baselines it is compared against — plain (naive) duplication and the
// ACISP 2020 randomised duplication it extends.
//
// The constructions are generic over spn.Spec cipher descriptions and come
// in two forms:
//
//   - a software bit-level model (Protect / SoftwareCM), which implements
//     Algorithm 1 of the paper directly and is used by the examples and
//     property tests; and
//   - a netlist construction (Build), which emits the technology-mapped
//     gate-level designs the fault-simulation campaigns and area tables
//     operate on.
package core

import "fmt"

// Scheme selects the protection scheme.
type Scheme int

// Protection schemes, ordered by increasing capability.
const (
	// SchemeUnprotected is the bare cipher core.
	SchemeUnprotected Scheme = iota
	// SchemeNaiveDup is classic duplicate-and-compare (Figure 2 of the
	// paper): protects DFA, bypassed by identical-fault DFA, SIFA, FTA.
	SchemeNaiveDup
	// SchemeACISP is the ACISP 2020 randomised duplication: both
	// computations share one encoding bit λ. Protects DFA and SIFA,
	// bypassed by identical-fault DFA and FTA.
	SchemeACISP
	// SchemeThreeInOne is the paper's countermeasure: the actual
	// computation uses λ and the redundant one uses ¬λ, with merged
	// (n+1)-bit S-boxes. Protects DFA (including identical faults),
	// SIFA and FTA.
	SchemeThreeInOne
	// SchemeCorrect is the fault-*correction* baseline the multi-fault
	// evaluation compares the paper's detect-only schemes against:
	// majority-of-three with λ-diverse branches (λ, ¬λ, λ). Instead of
	// releasing garbage on a mismatch it releases the bitwise majority
	// of the three decoded results, so a single faulted branch — or two
	// branches hit by the *same* fault, whose λ-complementary encodings
	// turn it into complementary errors — still yields the correct
	// ciphertext. The fault output reports any disagreement, so detection
	// telemetry survives alongside correction.
	SchemeCorrect
	// SchemeMaskedDup is the three-in-one countermeasure over a
	// first-order Boolean-masked datapath: state and λ travel as share
	// pairs (share 1 is a per-encryption mask re-established every round,
	// so it never needs a register), S-boxes are domain-oriented-masking
	// AND/XOR gadget networks over the merged table, and the shares are
	// recombined only behind a last-cycle gate at the detect/output
	// boundary. Fault-detection behaviour is identical to three-in-one;
	// the masking removes the first-order power leakage the leakage job
	// kind measures.
	SchemeMaskedDup
)

// String names the scheme as used in reports.
func (s Scheme) String() string {
	switch s {
	case SchemeUnprotected:
		return "unprotected"
	case SchemeNaiveDup:
		return "naive-duplication"
	case SchemeACISP:
		return "acisp20-randomized-dup"
	case SchemeThreeInOne:
		return "three-in-one"
	case SchemeCorrect:
		return "correct-majority"
	case SchemeMaskedDup:
		return "masked-dup"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Duplicated reports whether the scheme has a redundant computation.
func (s Scheme) Duplicated() bool { return s != SchemeUnprotected }

// Randomized reports whether the scheme consumes encoding randomness λ.
func (s Scheme) Randomized() bool {
	return s == SchemeACISP || s == SchemeThreeInOne || s == SchemeCorrect || s == SchemeMaskedDup
}

// Correcting reports whether the scheme recovers from detected faults by
// majority voting instead of releasing garbage.
func (s Scheme) Correcting() bool { return s == SchemeCorrect }

// Masked reports whether the scheme carries the datapath as first-order
// Boolean share pairs and consumes the mask_* ports.
func (s Scheme) Masked() bool { return s == SchemeMaskedDup }

// Entropy selects how much randomness the countermeasure consumes, the
// paper's three variations (Section III, "Additional Features", second
// amendment).
type Entropy int

// Entropy variants.
const (
	// EntropyPrime uses a single λ bit per invocation. This is the
	// variant Table II prices; it needs no λ register.
	EntropyPrime Entropy = iota
	// EntropyPerRound draws a fresh λ bit every round (e.g. 31 bits per
	// PRESENT-80 encryption).
	EntropyPerRound
	// EntropyPerSbox draws a fresh λ bit per S-box per round (e.g.
	// 31 x 16 bits per PRESENT-80 encryption).
	EntropyPerSbox
)

// String names the entropy variant.
func (e Entropy) String() string {
	switch e {
	case EntropyPrime:
		return "prime"
	case EntropyPerRound:
		return "per-round"
	case EntropyPerSbox:
		return "per-sbox"
	default:
		return fmt.Sprintf("Entropy(%d)", int(e))
	}
}

// Branch identifies one of the computations of a duplicated scheme.
type Branch int

// The computations: every duplicated scheme has an actual and a redundant
// branch; the correcting scheme adds a second redundant branch for its
// majority vote.
const (
	BranchActual     Branch = 0
	BranchRedundant  Branch = 1
	BranchRedundant2 Branch = 2
)

// String names the branch.
func (b Branch) String() string {
	switch b {
	case BranchActual:
		return "actual"
	case BranchRedundant2:
		return "redundant2"
	default:
		return "redundant"
	}
}
