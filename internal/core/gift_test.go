package core

import (
	"testing"

	"repro/internal/cipher/gift"
	"repro/internal/cipher/scone64"
	"repro/internal/synth"
)

// The same builders must protect any spn.Spec — the paper's "easily
// adaptable for any symmetric key primitive" claim, exercised with
// GIFT-64, which flips every structural knob PRESENT leaves at its
// default (post-permutation key addition, in-mask round constants, no
// whitening, 128-bit key register).

func TestGIFTUnprotectedMatchesReference(t *testing.T) {
	d := MustBuild(gift.Spec(), Options{Scheme: SchemeUnprotected, Engine: synth.EngineANF})
	checkDesign(t, d, 3)
}

func TestGIFTThreeInOneMatchesReference(t *testing.T) {
	d := MustBuild(gift.Spec(), Options{Scheme: SchemeThreeInOne, Entropy: EntropyPrime, Engine: synth.EngineANF})
	checkDesign(t, d, 3)
}

func TestGIFTThreeInOnePerSboxMatchesReference(t *testing.T) {
	d := MustBuild(gift.Spec(), Options{Scheme: SchemeThreeInOne, Entropy: EntropyPerSbox, Engine: synth.EngineANF})
	checkDesign(t, d, 2)
}

// scone64 exercises the dense-linear-layer path: its mixing matrix has
// weight-3 rows, so the λ-encoding re-normalisation through the linear
// layer is non-trivial (odd parity: no correction needed per row, but the
// XOR trees span multiple λ domains in the per-S-box variant).

func TestScone64UnprotectedMatchesReference(t *testing.T) {
	d := MustBuild(scone64.Spec(), Options{Scheme: SchemeUnprotected, Engine: synth.EngineANF})
	checkDesign(t, d, 3)
}

func TestScone64ThreeInOneMatchesReference(t *testing.T) {
	d := MustBuild(scone64.Spec(), Options{Scheme: SchemeThreeInOne, Entropy: EntropyPrime, Engine: synth.EngineANF})
	checkDesign(t, d, 3)
}

func TestScone64ThreeInOnePerSboxMatchesReference(t *testing.T) {
	d := MustBuild(scone64.Spec(), Options{Scheme: SchemeThreeInOne, Entropy: EntropyPerSbox, Engine: synth.EngineANF})
	checkDesign(t, d, 2)
}

func TestScone64ThreeInOnePerRoundMatchesReference(t *testing.T) {
	d := MustBuild(scone64.Spec(), Options{Scheme: SchemeThreeInOne, Entropy: EntropyPerRound, Engine: synth.EngineANF})
	checkDesign(t, d, 2)
}
