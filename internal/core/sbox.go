package core

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/spn"
	"repro/internal/synth"
)

// SboxModules holds the synthesised S-box netlists a protected design is
// assembled from. Input port is "x" (bit n of the merged module is λ),
// output port is "y".
type SboxModules struct {
	// Plain computes S(x); used by the unprotected core, by naive
	// duplication, and by the (always unencoded) key schedule.
	Plain *netlist.Module
	// Inverted computes ¬S(¬x); used by the separate-S-box (ACISP-
	// style) layout.
	Inverted *netlist.Module
	// Merged computes the (n+1)-input merged S-box of the paper.
	Merged *netlist.Module
}

// BuildSboxModules synthesises the three S-box forms of an n-bit S-box with
// the chosen engine, optimising each standalone.
func BuildSboxModules(sbox []uint64, n int, engine synth.Engine, optimize bool) SboxModules {
	plainTT := synth.FromSbox(sbox, n)
	opt := func(m *netlist.Module) *netlist.Module {
		if !optimize {
			return m
		}
		return synth.Optimize(m, synth.DefaultOptOptions())
	}
	return SboxModules{
		Plain:    opt(plainTT.Synthesize(engine, fmt.Sprintf("sbox%d_plain_%s", n, engine), "x", "y")),
		Inverted: opt(plainTT.Inverted().Synthesize(engine, fmt.Sprintf("sbox%d_inv_%s", n, engine), "x", "y")),
		Merged:   opt(plainTT.Merged().Synthesize(engine, fmt.Sprintf("sbox%d_merged_%s", n, engine), "x", "y")),
	}
}

// PlainFunc returns an spn.SboxNetFunc instantiating the plain S-box.
func (sm SboxModules) PlainFunc() spn.SboxNetFunc {
	return func(m *netlist.Module, instName string, in netlist.Bus) netlist.Bus {
		outs := m.MustInstantiate(sm.Plain, instName, map[string]netlist.Bus{"x": in})
		return outs["y"]
	}
}

// MergedInstance instantiates the merged S-box on an encoded input bus and
// its λ select line.
func (sm SboxModules) MergedInstance(m *netlist.Module, instName string, in netlist.Bus, lambda netlist.Net) netlist.Bus {
	x := in.Concat(netlist.Bus{lambda})
	outs := m.MustInstantiate(sm.Merged, instName, map[string]netlist.Bus{"x": x})
	return outs["y"]
}

// PairInstance instantiates the separate plain + inverted S-box pair with a
// per-output multiplexer selected by λ — the ACISP 2020 layout the paper's
// third amendment replaces. Exposed for the merged-vs-separate ablation.
func (sm SboxModules) PairInstance(m *netlist.Module, instName string, in netlist.Bus, lambda netlist.Net) netlist.Bus {
	p := m.MustInstantiate(sm.Plain, instName+".p", map[string]netlist.Bus{"x": in})
	q := m.MustInstantiate(sm.Inverted, instName+".i", map[string]netlist.Bus{"x": in})
	return m.MuxBus(p["y"], q["y"], lambda)
}
