package core

import (
	"fmt"
	"strings"
)

// SchemeInfo is one row of the scheme registry: the single source of truth
// for a scheme's wire vocabulary and capability flags. Every surface that
// used to switch on scheme strings (CLI flags, the service wire schema,
// the linter driver, the facade) resolves through this table instead, so
// adding a scheme is one registration here plus its builder.
type SchemeInfo struct {
	Scheme Scheme
	// Name is the display name (Scheme.String()), used in reports and
	// module names.
	Name string
	// Wire is the canonical token of the shared CLI/wire vocabulary
	// (-scheme flags, DesignSpec.Scheme).
	Wire string
	// Aliases are additional accepted wire tokens (historical long forms).
	Aliases []string
	// Default marks the scheme an empty wire token resolves to.
	Default bool

	// Capability flags. Duplicated schemes carry a redundant computation
	// (and, unless they correct, a garbage port); schemes that use
	// randomness consume λ encoding bits; correcting schemes release a
	// majority vote instead of garbage; masked schemes additionally carry
	// the state as first-order Boolean share pairs and consume mask ports.
	Duplicated     bool
	UsesRandomness bool
	Corrects       bool
	Masked         bool

	// Help is a one-line description for CLI usage text.
	Help string
}

// schemeTable lists every scheme in capability order. The capability flags
// are derived from the Scheme methods at init so the registry can never
// disagree with them (the sync test asserts the rest of the vocabulary).
var schemeTable = []SchemeInfo{
	{Scheme: SchemeUnprotected, Wire: "unprotected",
		Help: "bare cipher core, no countermeasure"},
	{Scheme: SchemeNaiveDup, Wire: "naive", Aliases: []string{"naive-duplication"},
		Help: "duplicate-and-compare without randomisation"},
	{Scheme: SchemeACISP, Wire: "acisp", Aliases: []string{"acisp20-randomized-dup"},
		Help: "ACISP'20 randomised duplication (shared λ)"},
	{Scheme: SchemeThreeInOne, Wire: "three-in-one", Default: true,
		Help: "the paper's countermeasure (λ / ¬λ, merged S-boxes)"},
	{Scheme: SchemeCorrect, Wire: "correct", Aliases: []string{"correct-majority"},
		Help: "majority-of-three fault correction with λ-diverse branches"},
	{Scheme: SchemeMaskedDup, Wire: "masked", Aliases: []string{"masked-dup"},
		Help: "three-in-one with a first-order Boolean-masked datapath"},
}

func init() {
	for i := range schemeTable {
		e := &schemeTable[i]
		e.Name = e.Scheme.String()
		e.Duplicated = e.Scheme.Duplicated()
		e.UsesRandomness = e.Scheme.Randomized()
		e.Corrects = e.Scheme.Correcting()
		e.Masked = e.Scheme.Masked()
	}
}

// Schemes returns the registry rows in stable (capability) order.
func Schemes() []SchemeInfo {
	out := make([]SchemeInfo, len(schemeTable))
	copy(out, schemeTable)
	return out
}

// SchemeOf returns the registry row of one scheme.
func SchemeOf(s Scheme) (SchemeInfo, bool) {
	for _, e := range schemeTable {
		if e.Scheme == s {
			return e, true
		}
	}
	return SchemeInfo{}, false
}

// ParseScheme resolves a wire token (canonical, alias, or empty for the
// default scheme) to its Scheme. The error lists the accepted vocabulary.
func ParseScheme(token string) (Scheme, error) {
	for _, e := range schemeTable {
		if e.Default && token == "" {
			return e.Scheme, nil
		}
		if token == e.Wire {
			return e.Scheme, nil
		}
		for _, a := range e.Aliases {
			if token == a {
				return e.Scheme, nil
			}
		}
	}
	return 0, fmt.Errorf("unknown scheme %q (want one of %s)", token, SchemeVocabulary())
}

// SchemeWire returns the canonical wire token of a scheme (its registry
// Wire field), or the display name for unregistered values.
func SchemeWire(s Scheme) string {
	if e, ok := SchemeOf(s); ok {
		return e.Wire
	}
	return s.String()
}

// SchemeVocabulary renders the canonical wire tokens as a comma-separated
// list, in registry order — the string CLI help texts embed.
func SchemeVocabulary() string {
	toks := make([]string, len(schemeTable))
	for i, e := range schemeTable {
		toks[i] = e.Wire
	}
	return strings.Join(toks, ", ")
}
