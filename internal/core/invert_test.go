package core

import (
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/cipher/gift"
	"repro/internal/cipher/present"
	"repro/internal/spn"
)

// --- Table I of the paper: the inverted gate duals -----------------------

func TestTableIInvertedXOR(t *testing.T) {
	// ȳ = X̄OR(x̄0, x̄1) row by row, exactly as printed in Table I(a).
	rows := []struct{ x0, x1, y, ybar uint64 }{
		{0, 0, 0, 1},
		{0, 1, 1, 0},
		{1, 0, 1, 0},
		{1, 1, 0, 1},
	}
	for _, r := range rows {
		if got := InvXOR(^r.x0, ^r.x1) & 1; got != r.ybar {
			t.Errorf("InvXOR(%d̄,%d̄) = %d, want %d", r.x0, r.x1, got, r.ybar)
		}
		if r.ybar != ^r.y&1 {
			t.Errorf("table row inconsistent")
		}
	}
}

func TestTableIInvertedAND(t *testing.T) {
	rows := []struct{ x0, x1, y, ybar uint64 }{
		{0, 0, 0, 1},
		{0, 1, 0, 1},
		{1, 0, 0, 1},
		{1, 1, 1, 0},
	}
	for _, r := range rows {
		if got := InvAND(^r.x0, ^r.x1) & 1; got != r.ybar {
			t.Errorf("InvAND(%d̄,%d̄) = %d, want %d", r.x0, r.x1, got, r.ybar)
		}
	}
}

func TestInvertedGateWordProperties(t *testing.T) {
	// Word-level identities: InvXOR(~a,~b) == ~(a^b), InvAND(~a,~b) == ~(a&b).
	f := func(a, b uint64) bool {
		return InvXOR(^a, ^b) == ^(a^b) && InvAND(^a, ^b) == ^(a&b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// --- inverted S-box and merged S-box tables -------------------------------

func TestInvertedSboxDefinition(t *testing.T) {
	inv := InvertedSbox(present.Sbox, 4)
	for u := uint64(0); u < 16; u++ {
		want := ^present.Sbox[^u&0xF] & 0xF
		if inv[u] != want {
			t.Fatalf("InvertedSbox[%X] = %X, want %X", u, inv[u], want)
		}
	}
	// Inverting twice returns the original S-box.
	again := InvertedSbox(inv, 4)
	for u := range again {
		if again[u] != present.Sbox[u] {
			t.Fatal("double inversion is not the identity")
		}
	}
}

func TestMergedSboxDefinition(t *testing.T) {
	merged := MergedSbox(present.Sbox, 4)
	if len(merged) != 32 {
		t.Fatalf("merged table length %d", len(merged))
	}
	inv := InvertedSbox(present.Sbox, 4)
	for x := uint64(0); x < 16; x++ {
		if merged[x] != present.Sbox[x] {
			t.Fatal("λ=0 half must be the plain S-box")
		}
		if merged[x|16] != inv[x] {
			t.Fatal("λ=1 half must be the inverted S-box")
		}
	}
}

func TestMergedSboxEncodingInvariant(t *testing.T) {
	// The property the countermeasure rests on: for an input encoded
	// with λ, the merged S-box returns the output encoded with λ:
	// T(x ^ λ·1s, λ) == S(x) ^ λ·1s.
	merged := MergedSbox(present.Sbox, 4)
	for x := uint64(0); x < 16; x++ {
		for lam := uint64(0); lam < 2; lam++ {
			mask := lam * 0xF
			got := merged[(x^mask)|lam<<4]
			want := present.Sbox[x] ^ mask
			if got != want {
				t.Fatalf("encoding invariant broken at x=%X λ=%d: %X != %X", x, lam, got, want)
			}
		}
	}
}

// --- the inverted cipher -----------------------------------------------

func TestInvertedEncryptIdentityPresent(t *testing.T) {
	spec := present.Spec()
	mask := bits.Mask(spec.BlockBits)
	f := func(pt uint64, keyLo uint64, keyHi uint16) bool {
		key := spn.KeyState{keyLo, uint64(keyHi)}
		// ¬InvertedEncrypt(¬P) == Encrypt(P): the inverted cipher is
		// the same function in the complemented encoding.
		return ^InvertedEncrypt(spec, ^pt&mask, key)&mask == spec.Encrypt(pt, key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInvertedEncryptIdentityGift(t *testing.T) {
	spec := gift.Spec()
	mask := bits.Mask(spec.BlockBits)
	f := func(pt uint64, k0, k1 uint64) bool {
		key := spn.KeyState{k0, k1}
		return ^InvertedEncrypt(spec, ^pt&mask, key)&mask == spec.Encrypt(pt, key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// --- the software model of Algorithm 1 -----------------------------------

func TestSoftwareCMCorrectness(t *testing.T) {
	for _, scheme := range []Scheme{SchemeUnprotected, SchemeNaiveDup, SchemeACISP, SchemeThreeInOne} {
		cm := SoftwareCM{Spec: present.Spec(), Scheme: scheme}
		f := func(pt, keyLo uint64, keyHi uint16, lam bool) bool {
			key := spn.KeyState{keyLo, uint64(keyHi)}
			l := uint64(0)
			if lam {
				l = 1
			}
			ct, fault := cm.Encrypt(pt, key, l, 0xDEAD)
			return !fault && ct == cm.Spec.Encrypt(pt, key)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("%s: %v", scheme, err)
		}
	}
}

func TestSchemeAndEntropyStrings(t *testing.T) {
	if SchemeThreeInOne.String() != "three-in-one" || !SchemeThreeInOne.Randomized() {
		t.Error("three-in-one metadata wrong")
	}
	if SchemeNaiveDup.Randomized() || !SchemeNaiveDup.Duplicated() {
		t.Error("naive-dup metadata wrong")
	}
	if SchemeUnprotected.Duplicated() {
		t.Error("unprotected must not be duplicated")
	}
	if EntropyPerSbox.String() != "per-sbox" {
		t.Error("entropy name wrong")
	}
	if BranchActual.String() != "actual" || BranchRedundant.String() != "redundant" {
		t.Error("branch names wrong")
	}
}
