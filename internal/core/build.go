package core

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/spn"
	"repro/internal/synth"
)

// Options selects the construction Build emits.
type Options struct {
	Scheme  Scheme
	Entropy Entropy
	// Engine selects the S-box synthesis strategy.
	Engine synth.Engine
	// SeparateSbox selects the ACISP-style layout (separate plain and
	// inverted S-box circuits behind a multiplexer) instead of the
	// paper's merged (n+1)-bit S-box. Only meaningful for randomised
	// schemes; exposed for the merged-vs-separate ablation.
	SeparateSbox bool
	// Optimize runs the synthesis optimiser on the final module. The
	// redundant branch is marked Keep, so duplication survives; however
	// the internal probe points used by fault campaigns are only
	// tracked through an unoptimised build (Design.ProbesValid reports
	// this). Area studies optimise; fault campaigns do not.
	Optimize bool
}

// Design is a built protected (or baseline) core plus the metadata the
// fault campaigns need to address internal nets.
//
// Port protocol (see also Runner):
//
//	cycle 0:            load=1; pt, key (and lambda) valid
//	cycles 1..Rounds:   load=0; round r is computed during cycle r
//	after the last Step: evaluate combinationally and read ct / fault
//
// For EntropyPrime the lambda input must be held constant for the whole
// encryption; for the other variants a fresh value is supplied each cycle.
type Design struct {
	Spec *spn.Spec
	Opts Options
	Mod  *netlist.Module

	// LambdaWidth is the width of the "lambda" input port (0 when the
	// scheme is not randomised).
	LambdaWidth int

	// MaskPoolWidth is the width of each mask_rand_* refresh-pool input
	// port of a masked design — one bit per distinct merged-table ANF
	// monomial gadget of the shared masked S-box (0 when the scheme is
	// not masked).
	MaskPoolWidth int

	// sboxIn[b][s] is the encoded bus feeding S-box s of branch b.
	sboxIn [3][]netlist.Bus
	// stateReg[b] is the state register Q bus of branch b.
	stateReg [3]netlist.Bus
	// branchCells[b] is the half-open cell-index range of branch b.
	branchCells [3][2]int

	probesValid bool
}

// Region classifies a cell index into the structural part of the design it
// belongs to: one of the two computations, or the shared compare-and-
// recover stage. Coverage campaigns report escapes per region.
type Region int

// Structural regions of a duplicated design. The region of branch b is
// Region(b), so the branch regions stay contiguous and the shared
// compare-and-recover stage comes after the last possible branch.
const (
	RegionActual Region = iota
	RegionRedundant
	RegionRedundant2
	RegionCompare
)

// String names the region.
func (r Region) String() string {
	switch r {
	case RegionActual:
		return "actual-computation"
	case RegionRedundant:
		return "redundant-computation"
	case RegionRedundant2:
		return "second-redundant-computation"
	default:
		return "compare-and-recover"
	}
}

// BranchNets returns the output nets of every cell belonging to branch b —
// the footprint a localized EM probe over that computation would see.
func (d *Design) BranchNets(b Branch) []netlist.Net {
	if !d.probesValid {
		panic("core: regions are not tracked on an optimised design")
	}
	lo, hi := d.branchCells[b][0], d.branchCells[b][1]
	nets := make([]netlist.Net, 0, hi-lo)
	for ci := lo; ci < hi; ci++ {
		nets = append(nets, d.Mod.Cells[ci].Out)
	}
	return nets
}

// CellRegion reports the region of a cell index. Only meaningful on an
// unoptimised design (like the probe accessors).
func (d *Design) CellRegion(ci int) Region {
	if !d.probesValid {
		panic("core: regions are not tracked on an optimised design")
	}
	for b := 0; b < d.NumBranches(); b++ {
		if ci >= d.branchCells[b][0] && ci < d.branchCells[b][1] {
			return Region(b)
		}
	}
	return RegionCompare
}

// ProbesValid reports whether internal probe points (S-box input nets) are
// addressable; false after an optimised build.
func (d *Design) ProbesValid() bool { return d.probesValid }

// NumBranches returns 1 for the unprotected scheme, 3 for the correcting
// (majority-of-three) scheme and 2 otherwise.
func (d *Design) NumBranches() int {
	switch {
	case d.Opts.Scheme.Correcting():
		return 3
	case d.Opts.Scheme.Duplicated():
		return 2
	default:
		return 1
	}
}

// SboxInputBus returns the encoded bus feeding S-box s of branch b; fault
// campaigns inject on its nets (e.g. bit 2 = second MSB of a 4-bit S-box).
func (d *Design) SboxInputBus(b Branch, s int) netlist.Bus {
	if !d.probesValid {
		panic("core: probes are not valid on an optimised design")
	}
	if int(b) >= d.NumBranches() {
		panic(fmt.Sprintf("core: design %s has no branch %d", d.Mod.Name, b))
	}
	return d.sboxIn[b][s]
}

// SboxInputNet returns one bit of SboxInputBus.
func (d *Design) SboxInputNet(b Branch, s, bit int) netlist.Net {
	return d.SboxInputBus(b, s)[bit]
}

// StateRegBus returns the state register Q bus of branch b.
func (d *Design) StateRegBus(b Branch) netlist.Bus {
	if !d.probesValid {
		panic("core: probes are not valid on an optimised design")
	}
	return d.stateReg[b]
}

// CyclesPerRun returns the number of clock cycles one encryption takes
// (load cycle plus one cycle per round).
func (d *Design) CyclesPerRun() int { return d.Spec.Rounds + 1 }

// LastRoundCycle returns the cycle index during which the final round is
// computed — the paper's "last round attack" window.
func (d *Design) LastRoundCycle() int { return d.Spec.Rounds }

// lambdaWidth computes the lambda port width for the options.
func lambdaWidth(spec *spn.Spec, o Options) int {
	if !o.Scheme.Randomized() {
		return 0
	}
	if o.Entropy == EntropyPerSbox {
		return spec.NumSboxes()
	}
	return 1
}

// Build constructs the gate-level design for the given cipher and options.
func Build(spec *spn.Spec, opts Options) (*Design, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.KeyStateBits != spec.KeyBits {
		return nil, fmt.Errorf("core: key state width %d != key width %d not supported",
			spec.KeyStateBits, spec.KeyBits)
	}
	if spec.KeySchedNet == nil {
		return nil, fmt.Errorf("core: spec %s has no netlist key schedule", spec.Name)
	}
	if opts.Scheme.Masked() {
		if err := validateMaskedOptions(spec, opts); err != nil {
			return nil, err
		}
	}

	d := &Design{
		Spec:        spec,
		Opts:        opts,
		LambdaWidth: lambdaWidth(spec, opts),
		probesValid: true,
	}
	name := fmt.Sprintf("%s_%s", spec.Name, opts.Scheme)
	if opts.Scheme.Randomized() {
		name += "_" + opts.Entropy.String()
		if opts.SeparateSbox {
			name += "_sep"
		}
	}
	m := netlist.New(name)
	d.Mod = m

	sm := BuildSboxModules(spec.Sbox, spec.SboxBits, opts.Engine, true)

	pt := m.AddInput(PortPT, spec.BlockBits)
	keyLoW := spec.KeyBits
	if keyLoW > 64 {
		keyLoW = 64
	}
	key := m.AddInput(PortKeyLo, keyLoW)
	if spec.KeyBits > 64 {
		key = key.Concat(m.AddInput(PortKeyHi, spec.KeyBits-64))
	}
	loadBus := m.AddInput(PortLoad, 1)
	load := loadBus[0]

	var lam netlist.Bus
	if d.LambdaWidth > 0 {
		lam = m.AddInput(PortLambda, d.LambdaWidth)
	}

	// The correcting scheme has no garbage input: on disagreement it
	// releases the majority vote instead of an infective recovery value.
	var garbage netlist.Bus
	if opts.Scheme.Duplicated() && !opts.Scheme.Correcting() {
		garbage = m.AddInput(PortGarbage, spec.BlockBits)
	}

	// Masked scheme: plan the shared DOM S-box once, then declare the
	// mask ports (two parity-alternating sets plus the λ-share mask).
	var mp *maskedPorts
	var msb *netlist.Module
	if opts.Scheme.Masked() {
		plan := planMaskedSbox(synth.FromSbox(spec.Sbox, spec.SboxBits).Merged())
		if len(plan.gadgets) > 64 {
			return nil, fmt.Errorf("core: scheme %s needs a %d-bit refresh pool; ports are capped at 64 bits",
				opts.Scheme, len(plan.gadgets))
		}
		d.MaskPoolWidth = len(plan.gadgets)
		msb = buildMaskedSboxModule(fmt.Sprintf("sbox%db_masked_dom", spec.SboxBits), plan)
		mp = &maskedPorts{
			stateEven: m.AddInput(PortMaskStateEven, spec.BlockBits),
			stateOdd:  m.AddInput(PortMaskStateOdd, spec.BlockBits),
		}
		if d.MaskPoolWidth > 0 {
			mp.randEven = m.AddInput(PortMaskRandEven, d.MaskPoolWidth)
			mp.randOdd = m.AddInput(PortMaskRandOdd, d.MaskPoolWidth)
		}
		mp.lamMask = m.AddInput(PortMaskLambda, 1)[0]
	}

	// Branch λ assignment: the paper's first amendment fixes the
	// redundant branch to the complement of the actual branch's λ. The
	// correcting scheme keeps that λ-diversity between its first two
	// branches (λ, ¬λ) and closes the vote with a third branch on λ.
	lamA := lam
	var lamB netlist.Bus
	switch opts.Scheme {
	case SchemeThreeInOne, SchemeCorrect, SchemeMaskedDup:
		lamB = m.NotBus(lam)
	case SchemeACISP:
		lamB = lam
	}

	// branchCT builds one computation with the scheme's datapath flavour;
	// everything around the branches (compare stage, ports, tags) is
	// shared between the masked and unmasked constructions.
	branchCT := func(b Branch, lamBr netlist.Bus) netlist.Bus {
		if opts.Scheme.Masked() {
			return d.buildMaskedBranch(m, b, sm, msb, pt, key, load, lamBr[0], mp)
		}
		return d.buildBranch(m, b, sm, pt, key, load, lamBr)
	}

	d.branchCells[0][0] = len(m.Cells)
	ctA := branchCT(BranchActual, lamA)
	d.branchCells[0][1] = len(m.Cells)

	var ct netlist.Bus
	var fault netlist.Net
	if opts.Scheme.Duplicated() {
		// The redundant computations must survive synthesis: mark them
		// Keep so equivalence-driven optimisation cannot merge them
		// into the actual branch.
		mark := len(m.Cells)
		d.branchCells[1][0] = mark
		ctB := branchCT(BranchRedundant, lamB)
		d.branchCells[1][1] = len(m.Cells)
		for ci := mark; ci < len(m.Cells); ci++ {
			m.Cells[ci].Keep = true
		}
		if opts.Scheme.Correcting() {
			mark = len(m.Cells)
			d.branchCells[2][0] = mark
			ctC := branchCT(BranchRedundant2, lamA)
			d.branchCells[2][1] = len(m.Cells)
			for ci := mark; ci < len(m.Cells); ci++ {
				m.Cells[ci].Keep = true
			}
			// Bitwise majority of the three decoded results; the fault
			// flag reports any pairwise disagreement (a≠b ∨ a≠c covers
			// b≠c too), preserving detection telemetry next to the
			// corrected output.
			ct = make(netlist.Bus, len(ctA))
			for i := range ct {
				ab := m.And(ctA[i], ctB[i])
				ac := m.And(ctA[i], ctC[i])
				bc := m.And(ctB[i], ctC[i])
				ct[i] = m.Or(ab, m.Or(ac, bc))
			}
			diff := m.XorBus(ctA, ctB).Concat(m.XorBus(ctA, ctC))
			fault = m.OrReduce(diff)
		} else {
			diff := m.XorBus(ctA, ctB)
			fault = m.OrReduce(diff)
			ct = m.MuxBus(ctA, garbage, fault)
		}
	} else {
		fault = m.Const0()
		ct = ctA
	}

	m.AddOutput(PortCT, ct)
	m.AddOutput(PortFault, netlist.Bus{fault})

	// Declare the fault points: tag the driver of every S-box input bit —
	// the nets the paper's fault models target — with the "fp." prefix
	// internal/prove and the prove-backed lint rules resolve locations
	// from. Tags survive the netlist text round-trip, so serialised
	// designs stay addressable without the Design wrapper.
	for b := 0; b < d.NumBranches(); b++ {
		for s, bus := range d.sboxIn[b] {
			for bit, n := range bus {
				m.SetTag(n, fmt.Sprintf("fp.%ssbox%02d.b%d", BranchPrefix(Branch(b)), s, bit))
			}
		}
	}

	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("core: built module invalid: %w", err)
	}
	if opts.Optimize {
		d.Mod = synth.Optimize(m, synth.DefaultOptOptions())
		d.probesValid = false
		d.sboxIn = [3][]netlist.Bus{}
		d.stateReg = [3]netlist.Bus{}
		d.branchCells = [3][2]int{}
	}
	return d, nil
}

// MustBuild is Build that panics on error.
func MustBuild(spec *spn.Spec, opts Options) *Design {
	d, err := Build(spec, opts)
	if err != nil {
		panic(err)
	}
	return d
}

// domIdx maps an S-box index to its λ bit index.
func (d *Design) domIdx(sboxIdx int) int {
	if d.LambdaWidth == 0 {
		return -1
	}
	return sboxIdx % d.LambdaWidth
}

// buildBranch emits one full computation (state, key and counter registers
// plus the round datapath) and returns the decoded ciphertext bus.
func (d *Design) buildBranch(m *netlist.Module, b Branch, sm SboxModules, pt, key netlist.Bus, load netlist.Net, lam netlist.Bus) netlist.Bus {
	spec := d.Spec
	prefix := BranchPrefix(b)
	randomized := len(lam) > 0
	needLamReg := randomized && d.Opts.Entropy != EntropyPrime
	dom := func(p int) int { return d.domIdx(p / spec.SboxBits) }

	// Register Q nets are allocated up front so the datapath can read
	// them; the DFF cells are added once the D nets exist.
	stateQ := m.NewNets(prefix+"state", spec.BlockBits)
	keyQ := m.NewNets(prefix+"key", spec.KeyStateBits)
	cntQ := m.NewNets(prefix+"cnt", spec.CounterWidth())
	var lamQ netlist.Bus
	if needLamReg {
		lamQ = m.NewNets(prefix+"lamreg", len(lam))
	}
	d.stateReg[b] = stateQ

	// Register-domain invariant: state bit p is always stored encoded
	// with λsrc[dom(p)] where λsrc is the λ used by the round that
	// produced it (λreg for the registered variants, the constant λ
	// input for the prime variant). The linear layer re-normalises the
	// encoding back to this by-position mapping each round.
	regDomainBit := func(p int) netlist.Net {
		if !randomized {
			return netlist.InvalidNet
		}
		if needLamReg {
			return lamQ[dom(p)]
		}
		return lam[dom(p)]
	}

	// --- round datapath ---

	// Domain conversion: re-encode each state bit from the previous
	// round's λ to the current round's λ. The conversion mask is
	// computed from λ bits only, so the raw state value never appears
	// on any wire.
	x := stateQ.Clone()
	if needLamReg {
		conv := make(netlist.Bus, spec.BlockBits)
		for p := range conv {
			conv[p] = m.Xor(lamQ[dom(p)], lam[dom(p)])
		}
		x = m.XorBus(x, conv)
	}

	// Key schedule (always in the plain encoding, per the paper).
	rkMask, ksNext := spec.KeySchedNet(m, keyQ, cntQ, sm.PlainFunc())
	if len(rkMask) != spec.BlockBits || len(ksNext) != spec.KeyStateBits {
		panic(fmt.Sprintf("core: %s KeySchedNet returned widths %d/%d", spec.Name, len(rkMask), len(ksNext)))
	}

	if !spec.KeyAddAfterPerm {
		x = m.XorBus(x, rkMask)
	}

	// S-box layer.
	d.sboxIn[b] = make([]netlist.Bus, spec.NumSboxes())
	var post netlist.Bus
	for s := 0; s < spec.NumSboxes(); s++ {
		in := x.Slice(s*spec.SboxBits, (s+1)*spec.SboxBits)
		d.sboxIn[b][s] = in
		inst := fmt.Sprintf("%ssbox%02d", prefix, s)
		var out netlist.Bus
		switch {
		case !randomized:
			out = sm.PlainFunc()(m, inst, in)
		case d.Opts.SeparateSbox:
			out = sm.PairInstance(m, inst, in, lam[d.domIdx(s)])
		default:
			out = sm.MergedInstance(m, inst, in, lam[d.domIdx(s)])
		}
		post = post.Concat(out)
	}

	y := d.linearLayer(m, post, lam)
	if spec.KeyAddAfterPerm {
		y = m.XorBus(y, rkMask)
	}

	// --- register next-state logic ---

	// Load path: encode the plaintext into the register-domain mapping.
	ptEnc := pt.Clone()
	if randomized {
		enc := make(netlist.Bus, spec.BlockBits)
		for p := range enc {
			enc[p] = m.Xor(pt[p], lam[dom(p)])
		}
		ptEnc = enc
	}
	stateD := m.MuxBus(y, ptEnc, load)
	for i := range stateQ {
		m.AddCell(netlist.KindDFF, stateQ[i], stateD[i])
	}

	keyD := m.MuxBus(ksNext, key, load)
	for i := range keyQ {
		m.AddCell(netlist.KindDFF, keyQ[i], keyD[i])
	}

	one := m.ConstBus(spec.CounterWidth(), 1)
	cntD := m.MuxBus(incrementBus(m, cntQ), one, load)
	for i := range cntQ {
		m.AddCell(netlist.KindDFF, cntQ[i], cntD[i])
	}

	if needLamReg {
		for i := range lamQ {
			m.AddCell(netlist.KindDFF, lamQ[i], lam[i])
		}
	}

	// --- output decode ---
	ct := stateQ.Clone()
	if randomized {
		dec := make(netlist.Bus, spec.BlockBits)
		for p := range dec {
			dec[p] = m.Xor(stateQ[p], regDomainBit(p))
		}
		ct = dec
	}
	if spec.FinalWhitening {
		ct = m.XorBus(ct, rkMask)
	}
	return ct
}

// linearLayer lowers the cipher's linear layer over the (possibly encoded)
// S-box outputs. For a bit permutation this is pure wiring. For a general
// GF(2) matrix each output bit is an XOR tree; when the datapath is
// λ-encoded, each row additionally picks up a domain-correction term so
// the result lands back in the by-position encoding: output bit j carries
// (⊕ row inputs) ⊕ (⊕ λ of the contributing domains) ⊕ λ[dom(j)], with
// pairs of identical λ nets cancelled statically (for permutations under
// one global λ the correction vanishes entirely, costing nothing).
func (d *Design) linearLayer(m *netlist.Module, post netlist.Bus, lam netlist.Bus) netlist.Bus {
	spec := d.Spec
	if spec.LinearRows == nil && (len(lam) == 0 || d.LambdaWidth <= 1) {
		// Permutation under at most one λ: wiring only.
		return post.Permute(spec.Perm)
	}
	rows := spec.LinearLayerRows()
	randomized := len(lam) > 0
	y := make(netlist.Bus, spec.BlockBits)
	for j := 0; j < spec.BlockBits; j++ {
		var ins netlist.Bus
		lamParity := make([]int, d.LambdaWidth)
		for i := 0; i < spec.BlockBits; i++ {
			if rows[j]&(1<<uint(i)) == 0 {
				continue
			}
			ins = append(ins, post[i])
			if randomized {
				lamParity[d.domIdx(i/spec.SboxBits)]++
			}
		}
		if randomized {
			lamParity[d.domIdx(j/spec.SboxBits)]++
			for w, c := range lamParity {
				if c%2 == 1 {
					ins = append(ins, lam[w])
				}
			}
		}
		y[j] = m.XorReduce(ins)
	}
	return y
}

// incrementBus builds an incrementer (half-adder ripple chain) as wide as
// its input bus.
func incrementBus(m *netlist.Module, c netlist.Bus) netlist.Bus {
	out := make(netlist.Bus, len(c))
	carry := netlist.Net(netlist.InvalidNet)
	for i := range c {
		if i == 0 {
			out[0] = m.Not(c[0])
			carry = c[0]
			continue
		}
		out[i] = m.Xor(c[i], carry)
		if i != len(c)-1 {
			carry = m.And(c[i], carry)
		}
	}
	return out
}
