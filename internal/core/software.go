package core

import (
	"repro/internal/bits"
	"repro/internal/spn"
)

// SoftwareCM is the bit-level software model of Algorithm 1: the
// randomised-duplication countermeasure executed on words instead of gates.
// It exists so the examples and property tests can exercise the scheme's
// functional behaviour (and so the repository demonstrates the paper's
// remark that the software variant costs essentially the same as the
// underlying cipher), while the netlist Design is what fault campaigns
// attack.
type SoftwareCM struct {
	Spec   *spn.Spec
	Scheme Scheme
}

// Encrypt runs Algorithm 1 of the paper: the actual computation under
// encoding λ, the redundant computation under ¬λ (three-in-one), λ (ACISP)
// or the plain encoding (naive duplication), a comparison, and the
// detective recovery (the garbage word is returned when a mismatch is
// sensed). With no fault injected the two computations always agree.
func (c *SoftwareCM) Encrypt(pt uint64, key spn.KeyState, lambda uint64, garbage uint64) (ct uint64, fault bool) {
	lam := lambda & 1
	actual := c.branch(pt, key, lam)
	if !c.Scheme.Duplicated() {
		return actual, false
	}
	var redundant uint64
	switch c.Scheme {
	case SchemeNaiveDup:
		redundant = c.branch(pt, key, 0)
	case SchemeACISP:
		redundant = c.branch(pt, key, lam)
	default: // SchemeThreeInOne
		redundant = c.branch(pt, key, lam^1)
	}
	if actual^redundant != 0 {
		return garbage, true
	}
	return actual, false
}

// branch computes one computation: E_K(P) when λ=0, or the inverted cipher
// ¬E̅_K(¬P) when λ=1 (lines 1-8 of Algorithm 1).
func (c *SoftwareCM) branch(pt uint64, key spn.KeyState, lam uint64) uint64 {
	if !c.Scheme.Randomized() {
		lam = 0
	}
	if lam == 0 {
		return c.Spec.Encrypt(pt, key)
	}
	mask := bits.Mask(c.Spec.BlockBits)
	encCT := InvertedEncrypt(c.Spec, ^pt&mask, key)
	return ^encCT & mask
}
