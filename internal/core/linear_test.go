package core

import (
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/netlist"
	"repro/internal/spn"
	"repro/internal/synth"
)

// chainSpec is a 16-bit toy SPN whose linear layer is the lower-triangular
// accumulation chain y_0 = x_0, y_j = x_j ^ x_{j-1}. All rows but the
// first have EVEN parity, which is precisely the case where (a) the
// inverted cipher needs the constant correction M·1 ^ 1 and (b) the
// hardware encoding re-normalisation must insert λ-correction XORs. An
// all-even-rows matrix cannot be invertible (the all-ones vector would be
// in its kernel), so this mixed-parity chain is the sharpest exercisable
// case.
func chainSpec() *spn.Spec {
	const n = 16
	rows := make([]uint64, n)
	rows[0] = 1
	for j := 1; j < n; j++ {
		rows[j] = 1<<uint(j) | 1<<uint(j-1)
	}
	s := &spn.Spec{
		Name:           "chain16",
		BlockBits:      n,
		KeyBits:        16,
		Rounds:         8,
		SboxBits:       4,
		Sbox:           []uint64{0xC, 5, 6, 0xB, 9, 0, 0xA, 0xD, 3, 0xE, 0xF, 8, 4, 7, 1, 2},
		LinearRows:     rows,
		FinalWhitening: true,
		KeyStateBits:   16,
		InitKeyState:   func(k spn.KeyState) spn.KeyState { return k },
		RoundXORMask:   func(ks spn.KeyState, r int) uint64 { return ks[0] & 0xFFFF },
		NextKeyState: func(ks spn.KeyState, r int) spn.KeyState {
			ks[0] = ((ks[0]<<5 | ks[0]>>11) & 0xFFFF) ^ uint64(r)
			return ks
		},
		KeySchedNet: func(m *netlist.Module, ks netlist.Bus, counter netlist.Bus, _ spn.SboxNetFunc) (netlist.Bus, netlist.Bus) {
			mask := ks.Clone()
			rot := make(netlist.Bus, 16)
			for j := 0; j < 16; j++ {
				rot[j] = ks[((j-5)%16+16)%16]
			}
			for i := 0; i < 6; i++ {
				rot[i] = m.Xor(rot[i], counter[i])
			}
			return mask, rot
		},
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

func TestChainLayerHasEvenParityRows(t *testing.T) {
	s := chainSpec()
	even := 0
	for _, r := range s.LinearRows {
		if bits.OnesCount64(r)%2 == 0 {
			even++
		}
	}
	if even != 15 {
		t.Fatalf("expected 15 even-parity rows, got %d", even)
	}
}

func TestChainDecryptInvertsEncrypt(t *testing.T) {
	s := chainSpec()
	f := func(pt, key uint16) bool {
		k := spn.KeyState{uint64(key), 0}
		return s.Decrypt(s.Encrypt(uint64(pt), k), k) == uint64(pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChainInvertedEncryptIdentity(t *testing.T) {
	// The inverted-cipher identity must hold THROUGH the even-parity
	// rows, which is exactly what the M·1 ^ 1 correction provides.
	s := chainSpec()
	f := func(pt, key uint16) bool {
		k := spn.KeyState{uint64(key), 0}
		return ^InvertedEncrypt(s, ^uint64(pt)&0xFFFF, k)&0xFFFF == s.Encrypt(uint64(pt), k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChainProtectedNetlists(t *testing.T) {
	for _, opt := range []Options{
		{Scheme: SchemeUnprotected, Engine: synth.EngineANF},
		{Scheme: SchemeNaiveDup, Engine: synth.EngineANF},
		{Scheme: SchemeThreeInOne, Entropy: EntropyPrime, Engine: synth.EngineANF},
		{Scheme: SchemeThreeInOne, Entropy: EntropyPerRound, Engine: synth.EngineANF},
		{Scheme: SchemeThreeInOne, Entropy: EntropyPerSbox, Engine: synth.EngineANF},
	} {
		d := MustBuild(chainSpec(), opt)
		checkDesign(t, d, 2)
	}
}

func TestChainSoftwareCM(t *testing.T) {
	cm := SoftwareCM{Spec: chainSpec(), Scheme: SchemeThreeInOne}
	f := func(pt, key uint16, lam bool) bool {
		k := spn.KeyState{uint64(key), 0}
		l := uint64(0)
		if lam {
			l = 1
		}
		ct, fault := cm.Encrypt(uint64(pt), k, l, 0xBAD)
		return !fault && ct == cm.Spec.Encrypt(uint64(pt), k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
