package core

import (
	"math/rand"
	"testing"

	"repro/internal/cipher/present"
	"repro/internal/spn"
	"repro/internal/synth"
)

func randKey(rng *rand.Rand, keyBits int) spn.KeyState {
	k := spn.KeyState{rng.Uint64(), rng.Uint64()}
	if keyBits < 64 {
		k[0] &= 1<<uint(keyBits) - 1
		k[1] = 0
	} else if keyBits < 128 {
		k[1] &= 1<<uint(keyBits-64) - 1
	}
	return k
}

// checkDesign runs a few batches against the software reference.
func checkDesign(t *testing.T, d *Design, runs int) {
	t.Helper()
	r, err := NewRunner(d)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	spec := d.Spec
	for run := 0; run < runs; run++ {
		key := randKey(rng, spec.KeyBits)
		n := 1 + rng.Intn(63)
		pts := make([]uint64, n)
		for i := range pts {
			pts[i] = rng.Uint64()
		}
		var lf LambdaFunc
		switch {
		case d.LambdaWidth == 0:
		case d.Opts.Entropy == EntropyPrime:
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = rng.Uint64()
			}
			lf = LambdaConst(vals)
		default:
			lf = func(c int) []uint64 {
				vals := make([]uint64, n)
				for i := range vals {
					vals[i] = rng.Uint64()
				}
				return vals
			}
		}
		res := r.EncryptBatch(pts, key, nil, lf)
		for i := range pts {
			want := spec.Encrypt(pts[i], key)
			if res.Fault[i] {
				t.Fatalf("%s run %d lane %d: spurious fault", d.Mod.Name, run, i)
			}
			if res.CT[i] != want {
				t.Fatalf("%s run %d lane %d: ct %016X, want %016X", d.Mod.Name, run, i, res.CT[i], want)
			}
		}
	}
}

func TestUnprotectedMatchesReference(t *testing.T) {
	d := MustBuild(present.Spec(), Options{Scheme: SchemeUnprotected, Engine: synth.EngineANF})
	checkDesign(t, d, 4)
}

func TestNaiveDupMatchesReference(t *testing.T) {
	d := MustBuild(present.Spec(), Options{Scheme: SchemeNaiveDup, Engine: synth.EngineANF})
	checkDesign(t, d, 4)
}

func TestACISPMatchesReference(t *testing.T) {
	d := MustBuild(present.Spec(), Options{Scheme: SchemeACISP, Entropy: EntropyPrime, Engine: synth.EngineANF})
	checkDesign(t, d, 4)
}

func TestThreeInOnePrimeMatchesReference(t *testing.T) {
	d := MustBuild(present.Spec(), Options{Scheme: SchemeThreeInOne, Entropy: EntropyPrime, Engine: synth.EngineANF})
	checkDesign(t, d, 4)
}

func TestThreeInOnePerRoundMatchesReference(t *testing.T) {
	d := MustBuild(present.Spec(), Options{Scheme: SchemeThreeInOne, Entropy: EntropyPerRound, Engine: synth.EngineANF})
	checkDesign(t, d, 4)
}

func TestThreeInOnePerSboxMatchesReference(t *testing.T) {
	d := MustBuild(present.Spec(), Options{Scheme: SchemeThreeInOne, Entropy: EntropyPerSbox, Engine: synth.EngineANF})
	checkDesign(t, d, 4)
}

func TestCorrectMajorityMatchesReference(t *testing.T) {
	d := MustBuild(present.Spec(), Options{Scheme: SchemeCorrect, Entropy: EntropyPrime, Engine: synth.EngineANF})
	checkDesign(t, d, 4)
}

func TestCorrectMajorityPerRoundMatchesReference(t *testing.T) {
	d := MustBuild(present.Spec(), Options{Scheme: SchemeCorrect, Entropy: EntropyPerRound, Engine: synth.EngineANF})
	checkDesign(t, d, 3)
}

func TestThreeInOneSeparateSboxMatchesReference(t *testing.T) {
	d := MustBuild(present.Spec(), Options{
		Scheme: SchemeThreeInOne, Entropy: EntropyPrime,
		Engine: synth.EngineANF, SeparateSbox: true,
	})
	checkDesign(t, d, 3)
}

func TestThreeInOneBDDEngineMatchesReference(t *testing.T) {
	d := MustBuild(present.Spec(), Options{Scheme: SchemeThreeInOne, Entropy: EntropyPrime, Engine: synth.EngineBDD})
	checkDesign(t, d, 3)
}

func TestOptimizedDesignsMatchReference(t *testing.T) {
	for _, scheme := range []Scheme{SchemeNaiveDup, SchemeThreeInOne} {
		d := MustBuild(present.Spec(), Options{
			Scheme: scheme, Entropy: EntropyPrime,
			Engine: synth.EngineANF, Optimize: true,
		})
		if d.ProbesValid() {
			t.Errorf("%s: probes should be invalid after optimisation", d.Mod.Name)
		}
		checkDesign(t, d, 2)
	}
}
