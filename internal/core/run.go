package core

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/sim"
	"repro/internal/spn"
)

// EngineRunner drives a Design through a width-W simulation engine, one
// batch of up to S.LaneCount() encryptions at a time. It owns the engine;
// installing a fault injector on it (EngineRunner.S) makes every subsequent
// batch run under that fault. Width is an execution detail: a wide runner
// computes bit-identical per-lane results to the classic 64-lane Runner.
type EngineRunner[W sim.Word] struct {
	D *Design
	S *sim.Engine[W]
	// CycleHook, when set, is called after every clock cycle of an
	// EncryptBatch with the cycle index just executed; the side-channel
	// probe uses it to sample switching activity.
	CycleHook func(cycle int)

	// Masks supplies the per-lane mask port values of a masked design,
	// held constant for every batch until replaced. nil leaves all mask
	// ports at zero — the masked datapath degenerates to the unmasked
	// three-in-one values, which the functional tests rely on. Ignored
	// for unmasked schemes.
	Masks *MaskSet

	// Reusable read-out buffers for EncryptBatchReuse.
	ctBuf, faultBuf []uint64
	faultBits       []bool
	ptBuf, lamBuf   []uint64
}

// MaskSet holds one batch worth of per-lane mask draws for a masked design
// (each slice indexed by lane; each value uses the port's low bits). The
// runner pre-masks the plaintext with StateOdd — the load cycle writes the
// registers round 1 reads, and round 1 runs at odd parity — and offsets the
// lambda port by Lambda, so callers supply the *logical* pt and λ.
type MaskSet struct {
	// StateEven / StateOdd are the two parity-alternating state mask sets
	// (BlockBits wide).
	StateEven, StateOdd []uint64
	// RandEven / RandOdd are the parity-alternating S-box refresh pools
	// (Design.MaskPoolWidth wide; ignored when that width is 0).
	RandEven, RandOdd []uint64
	// Lambda is the 1-bit mask of the λ share pair.
	Lambda []uint64
}

// Runner is the classic 64-lane runner; all pre-width-configuration call
// sites use this instantiation.
type Runner = EngineRunner[sim.Word1]

// NewRunner compiles the design (through the process-wide compile cache)
// and creates a simulator for it.
func NewRunner(d *Design) (*Runner, error) {
	c, err := sim.CompileCached(d.Mod)
	if err != nil {
		return nil, err
	}
	return NewRunnerFrom(d, c), nil
}

// NewRunnerFrom creates another 64-lane runner over an already compiled
// design — campaigns that parallelise across goroutines use one Runner
// each.
func NewRunnerFrom(d *Design, c *sim.Compiled) *Runner {
	return NewWideRunnerFrom[sim.Word1](d, c)
}

// NewWideRunnerFrom creates a width-W runner over an already compiled
// design. It is the low-level constructor behind the campaign executor's
// engine configuration; callers outside the core/fault stack select width
// through fault.EngineConfig, which validates it first.
func NewWideRunnerFrom[W sim.Word](d *Design, c *sim.Compiled) *EngineRunner[W] {
	if c.Mod != d.Mod {
		panic("core: compiled module does not match design")
	}
	return &EngineRunner[W]{D: d, S: sim.NewEngine[W](c)}
}

// LambdaFunc supplies the per-cycle lambda port values: it returns one
// value per lane for cycle c (each value uses the low LambdaWidth bits).
// For EntropyPrime the returned values must not change across cycles of one
// run; LambdaConst enforces that.
type LambdaFunc func(c int) []uint64

// LambdaConst returns a LambdaFunc holding the given per-lane values for
// the whole run — the prime variant's contract.
func LambdaConst(vals []uint64) LambdaFunc {
	return func(int) []uint64 { return vals }
}

// BatchResult holds the outcome of one batch of encryptions.
type BatchResult struct {
	// CT[i] is the released output of lane i (the garbage value when
	// the comparator fired).
	CT []uint64
	// Fault[i] reports whether the comparator detected a mismatch in
	// lane i.
	Fault []bool
}

// EncryptBatch runs len(pts) parallel encryptions (at most S.LaneCount())
// under one key. garbage supplies the per-lane recovery outputs for
// duplicated schemes (ignored otherwise; may be nil). lambda supplies
// encoding bits for randomised schemes (ignored otherwise; may be nil).
func (r *EngineRunner[W]) EncryptBatch(pts []uint64, key spn.KeyState, garbage []uint64, lambda LambdaFunc) BatchResult {
	res := r.EncryptBatchReuse(pts, key, garbage, lambda)
	return BatchResult{
		CT:    append([]uint64(nil), res.CT...),
		Fault: append([]bool(nil), res.Fault...),
	}
}

// EncryptBatchReuse is EncryptBatch backed by the runner's internal
// buffers: the returned slices are only valid until the next call. It is
// the allocation-free path the campaign workers run on.
func (r *EngineRunner[W]) EncryptBatchReuse(pts []uint64, key spn.KeyState, garbage []uint64, lambda LambdaFunc) BatchResult {
	d := r.D
	s := r.S
	lanes := s.LaneCount()
	if len(pts) == 0 || len(pts) > lanes {
		panic(fmt.Sprintf("core: batch size %d out of range 1..%d", len(pts), lanes))
	}
	s.Reset()

	masked := d.Opts.Scheme.Masked()
	ptPort := pts
	if masked {
		if r.Masks != nil {
			ms := r.Masks
			if cap(r.ptBuf) < lanes {
				r.ptBuf = make([]uint64, lanes)
				r.lamBuf = make([]uint64, lanes)
			}
			ptm := r.ptBuf[:len(pts)]
			for i := range ptm {
				ptm[i] = pts[i] ^ ms.StateOdd[i]
			}
			ptPort = ptm
			s.SetInput(PortMaskStateEven, ms.StateEven)
			s.SetInput(PortMaskStateOdd, ms.StateOdd)
			if d.MaskPoolWidth > 0 {
				s.SetInput(PortMaskRandEven, ms.RandEven)
				s.SetInput(PortMaskRandOdd, ms.RandOdd)
			}
			s.SetInput(PortMaskLambda, ms.Lambda)
		} else {
			s.SetInputBroadcast(PortMaskStateEven, 0)
			s.SetInputBroadcast(PortMaskStateOdd, 0)
			if d.MaskPoolWidth > 0 {
				s.SetInputBroadcast(PortMaskRandEven, 0)
				s.SetInputBroadcast(PortMaskRandOdd, 0)
			}
			s.SetInputBroadcast(PortMaskLambda, 0)
		}
	}
	s.SetInput("pt", ptPort)
	keyLo := key[0] & bits.Mask(min(64, d.Spec.KeyBits))
	s.SetInputBroadcast("key_lo", keyLo)
	if d.Spec.KeyBits > 64 {
		s.SetInputBroadcast("key_hi", key[1]&bits.Mask(d.Spec.KeyBits-64))
	}
	if d.Opts.Scheme.Duplicated() && !d.Opts.Scheme.Correcting() {
		// The correcting scheme has no garbage port: it releases the
		// majority vote instead of a recovery value.
		if garbage == nil {
			garbage = make([]uint64, len(pts))
		}
		s.SetInput("garbage", garbage)
	}

	setLambda := func(c int) {
		if d.LambdaWidth == 0 || lambda == nil {
			return
		}
		vals := lambda(c)
		if masked && r.Masks != nil {
			// The lambda port of a masked design carries the λ share
			// λ ⊕ mask_lambda.
			lb := r.lamBuf[:len(vals)]
			for i := range lb {
				lb[i] = vals[i] ^ (r.Masks.Lambda[i] & 1)
			}
			vals = lb
		}
		s.SetInput("lambda", vals)
	}

	// Load cycle.
	s.SetInputBroadcast("load", 1)
	setLambda(0)
	s.Step()
	if r.CycleHook != nil {
		r.CycleHook(0)
	}

	// Round cycles.
	s.SetInputBroadcast("load", 0)
	for c := 1; c <= d.Spec.Rounds; c++ {
		setLambda(c)
		s.Step()
		if r.CycleHook != nil {
			r.CycleHook(c)
		}
	}

	// Combinational read-out of the final registers.
	s.Eval()

	if cap(r.ctBuf) < lanes {
		r.ctBuf = make([]uint64, lanes)
		r.faultBuf = make([]uint64, lanes)
		r.faultBits = make([]bool, lanes)
	}
	cts := s.OutputInto("ct", r.ctBuf[:lanes])[:len(pts)]
	faultsRaw := s.OutputInto("fault", r.faultBuf[:lanes])
	flags := r.faultBits[:len(pts)]
	for i := range flags {
		flags[i] = faultsRaw[i]&1 == 1
	}
	return BatchResult{CT: cts, Fault: flags}
}

// EncryptOne is a single-run convenience wrapper. lambdaBits supplies the
// per-cycle λ value (only the low LambdaWidth bits are used); pass nil for
// non-randomised schemes or all-zero λ.
func (r *EngineRunner[W]) EncryptOne(pt uint64, key spn.KeyState, garbage uint64, lambda LambdaFunc) (ct uint64, fault bool) {
	res := r.EncryptBatch([]uint64{pt}, key, []uint64{garbage}, lambda)
	return res.CT[0], res.Fault[0]
}
