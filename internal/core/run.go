package core

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/sim"
	"repro/internal/spn"
)

// Runner drives a Design through the simulator, one batch of up to
// sim.Lanes encryptions at a time. It owns a Simulator; installing a fault
// injector on the Simulator (Runner.Sim) makes every subsequent batch run
// under that fault.
type Runner struct {
	D *Design
	S *sim.Simulator
	// CycleHook, when set, is called after every clock cycle of an
	// EncryptBatch with the cycle index just executed; the side-channel
	// probe uses it to sample switching activity.
	CycleHook func(cycle int)
}

// NewRunner compiles the design (through the process-wide compile cache)
// and creates a simulator for it.
func NewRunner(d *Design) (*Runner, error) {
	c, err := sim.CompileCached(d.Mod)
	if err != nil {
		return nil, err
	}
	return &Runner{D: d, S: c.NewSimulator()}, nil
}

// NewRunnerFrom creates another runner over an already compiled design —
// campaigns that parallelise across goroutines use one Runner each.
func NewRunnerFrom(d *Design, c *sim.Compiled) *Runner {
	if c.Mod != d.Mod {
		panic("core: compiled module does not match design")
	}
	return &Runner{D: d, S: c.NewSimulator()}
}

// LambdaFunc supplies the per-cycle lambda port values: it returns one
// value per lane for cycle c (each value uses the low LambdaWidth bits).
// For EntropyPrime the returned values must not change across cycles of one
// run; LambdaConst enforces that.
type LambdaFunc func(c int) []uint64

// LambdaConst returns a LambdaFunc holding the given per-lane values for
// the whole run — the prime variant's contract.
func LambdaConst(vals []uint64) LambdaFunc {
	return func(int) []uint64 { return vals }
}

// BatchResult holds the outcome of one batch of encryptions.
type BatchResult struct {
	// CT[i] is the released output of lane i (the garbage value when
	// the comparator fired).
	CT []uint64
	// Fault[i] reports whether the comparator detected a mismatch in
	// lane i.
	Fault []bool
}

// EncryptBatch runs len(pts) parallel encryptions (at most sim.Lanes) under
// one key. garbage supplies the per-lane recovery outputs for duplicated
// schemes (ignored otherwise; may be nil). lambda supplies encoding bits
// for randomised schemes (ignored otherwise; may be nil).
func (r *Runner) EncryptBatch(pts []uint64, key spn.KeyState, garbage []uint64, lambda LambdaFunc) BatchResult {
	if len(pts) == 0 || len(pts) > sim.Lanes {
		panic(fmt.Sprintf("core: batch size %d out of range 1..%d", len(pts), sim.Lanes))
	}
	d := r.D
	s := r.S
	s.Reset()

	s.SetInput("pt", pts)
	keyLo := key[0] & bits.Mask(min(64, d.Spec.KeyBits))
	s.SetInputBroadcast("key_lo", keyLo)
	if d.Spec.KeyBits > 64 {
		s.SetInputBroadcast("key_hi", key[1]&bits.Mask(d.Spec.KeyBits-64))
	}
	if d.Opts.Scheme.Duplicated() && !d.Opts.Scheme.Correcting() {
		// The correcting scheme has no garbage port: it releases the
		// majority vote instead of a recovery value.
		if garbage == nil {
			garbage = make([]uint64, len(pts))
		}
		s.SetInput("garbage", garbage)
	}

	setLambda := func(c int) {
		if d.LambdaWidth == 0 || lambda == nil {
			return
		}
		s.SetInput("lambda", lambda(c))
	}

	// Load cycle.
	s.SetInputBroadcast("load", 1)
	setLambda(0)
	s.Step()
	if r.CycleHook != nil {
		r.CycleHook(0)
	}

	// Round cycles.
	s.SetInputBroadcast("load", 0)
	for c := 1; c <= d.Spec.Rounds; c++ {
		setLambda(c)
		s.Step()
		if r.CycleHook != nil {
			r.CycleHook(c)
		}
	}

	// Combinational read-out of the final registers.
	s.Eval()

	cts := s.Output("ct")[:len(pts)]
	faultsRaw := s.Output("fault")
	res := BatchResult{CT: append([]uint64(nil), cts...), Fault: make([]bool, len(pts))}
	for i := range res.Fault {
		res.Fault[i] = faultsRaw[i]&1 == 1
	}
	return res
}

// EncryptOne is a single-run convenience wrapper. lambdaBits supplies the
// per-cycle λ value (only the low LambdaWidth bits are used); pass nil for
// non-randomised schemes or all-zero λ.
func (r *Runner) EncryptOne(pt uint64, key spn.KeyState, garbage uint64, lambda LambdaFunc) (ct uint64, fault bool) {
	res := r.EncryptBatch([]uint64{pt}, key, []uint64{garbage}, lambda)
	return res.CT[0], res.Fault[0]
}
