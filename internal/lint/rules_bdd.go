package lint

import (
	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/netlist"
)

func init() {
	register(&Rule{
		ID: "const-net",
		Doc: "no cell output is provably constant over all inputs and register states " +
			"— dead logic, and a classic source of SIFA-exploitable bias",
		Category: CategoryCountermeasure,
		Check:    checkConstNets,
	})
	register(&Rule{
		ID: "dual-branch",
		Doc: "the redundant branch is BDD-equivalent to the complement-encoded (¬λ) dual " +
			"of the actual branch — identical fault masks produce detectably different effects",
		Category: CategoryCountermeasure,
		Check:    checkDualBranch,
	})
}

// checkConstNets builds a BDD for every net, treating primary inputs and
// register outputs as free variables, and flags any non-constant-kind cell
// whose output is a terminal: such a gate computes the same value under
// every input and state, so it is dead logic, and a biased intermediate of
// exactly the shape SIFA exploits.
func checkConstNets(c *Context, r *Reporter) {
	if c.orderErr != nil {
		r.Skip("combinational loop: see comb-loop")
		return
	}
	mgr := bdd.NewWithBudget(c.M.NumNets(), bddBudget)
	var vals []bdd.Node
	if bdd.Guarded(func() {
		vals = c.buildBDDs(mgr, func(n netlist.Net) bdd.Node { return c.netVar(mgr, n) })
	}) != nil {
		r.Skip("BDD node budget exceeded")
		return
	}
	for ci := range c.M.Cells {
		cell := &c.M.Cells[ci]
		if cell.Kind.IsConst() || cell.Kind.IsSequential() {
			continue
		}
		if v := vals[cell.Out]; v == bdd.False || v == bdd.True {
			r.Errorf(ci, cell.Out, "cell %d (%s %q) always evaluates to %d",
				ci, cell.Kind, c.M.NetName(cell.Out), int(v))
		}
	}
}

// checkDualBranch proves the paper's first amendment statically: the
// redundant computation must be the complement-encoded dual of the actual
// one, running under ¬λ. The proof is inductive over one clock cycle:
//
//  1. Base (load cycle): with load=1 every register's next value is a
//     function of primary inputs alone; for each register pair the
//     redundant load value must be either equal to the actual one (plain
//     registers: key, counter) or its complement (λ-encoded registers:
//     state, λ shadow). λ-dependent registers must load complements —
//     loading equal values means both branches share one λ, the ACISP
//     scheme identical-fault DFA bypasses.
//  2. Step: assuming the correspondence on current register values
//     (substituting q_b1 := ¬q_b0 or q_b0), each redundant next-state
//     function must equal the (complemented) actual one, so the
//     correspondence is an invariant.
//  3. Under the same substitution the fault flag must be identically 0:
//     the comparator cancels the dual encoding exactly, never false-alarms,
//     and therefore any deviation it does report is a real fault.
//
// Register pairs are located via the b0./b1. net-name prefixes documented
// in internal/core.
func checkDualBranch(c *Context, r *Reporter) {
	m := c.M
	lam := c.Input(core.PortLambda)
	if lam == nil || lam.Width() == 0 {
		r.Skip("module has no " + core.PortLambda + " input port")
		return
	}
	for _, ci := range c.unpairedB1 {
		r.Errorf(ci, m.Cells[ci].Out, "redundant register %q has no actual-branch partner",
			m.NetName(m.Cells[ci].Out))
	}
	if len(c.pairs) == 0 {
		if c.Input(core.PortGarbage) != nil {
			r.Errorf(-1, 0, "duplicated module (has %q input) with no paired branch registers: "+
				"branch correspondence cannot be established", core.PortGarbage)
		} else {
			r.Skip("module has no paired branch registers")
		}
		return
	}
	if c.orderErr != nil {
		r.Skip("combinational loop: see comb-loop")
		return
	}
	load := c.Input(core.PortLoad)
	if load == nil || load.Width() != 1 {
		r.Skip("module has no 1-bit " + core.PortLoad + " input port")
		return
	}

	mgr := bdd.NewWithBudget(m.NumNets(), bddBudget)
	if bdd.Guarded(func() { dualBranchProof(c, r, mgr, lam, load) }) != nil {
		r.Skip("BDD node budget exceeded")
	}
}

// dualBranchProof is checkDualBranch's BDD obligation, separated out so the
// whole proof runs under one bdd.Guarded budget guard.
func dualBranchProof(c *Context, r *Reporter, mgr *bdd.Manager, lam, load *netlist.Port) {
	m := c.M
	vals := c.buildBDDs(mgr, func(n netlist.Net) bdd.Node { return c.netVar(mgr, n) })

	regVar := make(map[int]bool) // BDD variable index -> is a register output
	for ci := range m.Cells {
		if m.Cells[ci].Kind == netlist.KindDFF {
			regVar[c.varIdx[m.Cells[ci].Out]] = true
		}
	}
	lamVar := make(map[int]bool)
	for _, n := range lam.Bits {
		lamVar[c.varIdx[n]] = true
	}
	loadVar := c.varIdx[load.Bits[0]]

	// Base case: derive each pair's correspondence from the load path.
	type pairing struct {
		regPair
		complemented bool
	}
	var resolved []pairing
	derivationFailed := false
	for _, p := range c.pairs {
		dA := mgr.Restrict(vals[m.Cells[p.CellA].In[0]], loadVar, true)
		dB := mgr.Restrict(vals[m.Cells[p.CellB].In[0]], loadVar, true)
		if dependsOn(mgr, dA, regVar) || dependsOn(mgr, dB, regVar) {
			r.Errorf(p.CellB, m.Cells[p.CellB].Out,
				"load value of register pair %q depends on register state: "+
					"branch correspondence cannot be derived", p.Suffix)
			derivationFailed = true
			continue
		}
		var complemented bool
		switch {
		case dB == dA:
			complemented = false
		case dB == mgr.Not(dA):
			complemented = true
		default:
			r.Errorf(p.CellB, m.Cells[p.CellB].Out,
				"load values of register pair %q are neither equal nor complementary "+
					"across branches: the branches compute unrelated encodings", p.Suffix)
			derivationFailed = true
			continue
		}
		if dependsOn(mgr, dA, lamVar) && !complemented {
			r.Errorf(p.CellB, m.Cells[p.CellB].Out,
				"λ-encoded register pair %q loads the same encoding in both branches: "+
					"the redundant branch shares λ instead of using ¬λ, so identical "+
					"faults in both branches cancel in the comparator", p.Suffix)
		}
		resolved = append(resolved, pairing{regPair: p, complemented: complemented})
	}
	if derivationFailed {
		return
	}

	// Step + comparator: recompute every net with the redundant registers
	// substituted by their correspondence image and check the invariant.
	subst := make(map[netlist.Net]bdd.Node)
	for _, p := range resolved {
		qa := c.netVar(mgr, m.Cells[p.CellA].Out)
		if p.complemented {
			qa = mgr.Not(qa)
		}
		subst[m.Cells[p.CellB].Out] = qa
	}
	sVals := c.buildBDDs(mgr, func(n netlist.Net) bdd.Node {
		if v, ok := subst[n]; ok {
			return v
		}
		return c.netVar(mgr, n)
	})
	for _, p := range resolved {
		want := sVals[m.Cells[p.CellA].In[0]]
		if p.complemented {
			want = mgr.Not(want)
		}
		if sVals[m.Cells[p.CellB].In[0]] != want {
			r.Errorf(p.CellB, m.Cells[p.CellB].Out,
				"next-state of register pair %q does not preserve the branch "+
					"correspondence: the redundant branch is not the ¬λ dual", p.Suffix)
		}
	}
	if fault := c.Output(core.PortFault); fault != nil {
		for _, n := range fault.Bits {
			if sVals[n] != bdd.False {
				r.Errorf(m.Driver(n), n,
					"%q flag is not identically 0 when the redundant branch holds the "+
						"dual encoding: the comparator does not cancel the ¬λ encoding",
					core.PortFault)
			}
		}
	}
}

// dependsOn reports whether f's support intersects the variable set.
func dependsOn(mgr *bdd.Manager, f bdd.Node, vars map[int]bool) bool {
	for _, v := range mgr.Support(f) {
		if vars[v] {
			return true
		}
	}
	return false
}
