// Package lint is a rule-based static analyzer for netlist.Module. It
// checks two families of properties:
//
//   - structural rules subsume netlist.Validate (floating and multi-driven
//     nets, combinational loops, malformed and duplicate ports) and extend
//     it with liveness (dead-gate);
//   - countermeasure rules prove, without simulation, the structural
//     properties the paper's security argument rests on: every data-path
//     gate is λ-randomised (lambda-cone, the FTA guarantee), the redundant
//     branch is the ¬λ complement-encoded dual of the actual branch
//     (dual-branch, the identical-fault DFA guarantee), every redundant
//     register is observed by the comparator (detect-coverage, the
//     DFA/SIFA detection guarantee), and no intermediate net is constant
//     (const-net, dead logic and a SIFA bias red flag).
//
// Countermeasure rules locate the protection structure through the port
// and register naming conventions documented in internal/core (ports "pt",
// "lambda", "load", "garbage", "fault"; register prefixes "b0." / "b1."),
// and use internal/bdd for the equivalence obligations.
//
// Rules run in parallel and emit structured Diagnostics; cmd/sconelint is
// the command-line front end.
package lint

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/netlist"
)

// Severity grades a diagnostic.
type Severity int

// Severities, in increasing order of gravity.
const (
	SeverityInfo Severity = iota
	SeverityWarning
	SeverityError
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Category groups rules by what they prove.
type Category string

// Rule categories; Options.Rules accepts them as selectors.
const (
	CategoryStructural     Category = "structural"
	CategoryCountermeasure Category = "countermeasure"
)

// Diagnostic is one finding. Cell is the index of the offending cell or -1
// for module-level findings; Net is the offending net or 0 when the
// finding is not tied to one net.
type Diagnostic struct {
	Rule     string      `json:"rule"`
	Severity Severity    `json:"severity"`
	Cell     int         `json:"cell"`
	CellKind string      `json:"cell_kind,omitempty"`
	Net      netlist.Net `json:"net,omitempty"`
	NetName  string      `json:"net_name,omitempty"`
	Message  string      `json:"message"`
}

// Location renders the cell/net coordinates of the diagnostic, or "module"
// for module-level findings.
func (d *Diagnostic) Location() string {
	switch {
	case d.Cell >= 0 && d.NetName != "":
		return fmt.Sprintf("cell %d (%s %q)", d.Cell, d.CellKind, d.NetName)
	case d.Cell >= 0:
		return fmt.Sprintf("cell %d (%s)", d.Cell, d.CellKind)
	case d.NetName != "":
		return fmt.Sprintf("net %d (%q)", d.Net, d.NetName)
	case d.Net != 0:
		return fmt.Sprintf("net %d", d.Net)
	default:
		return "module"
	}
}

// Rule is one check. Check inspects the module through the context and
// reports findings; it must be safe to run concurrently with other rules
// (the context's precomputed views are read-only).
type Rule struct {
	ID       string
	Doc      string // one-line description of the property the rule proves
	Category Category
	Check    func(c *Context, r *Reporter)
}

// Reporter collects one rule's findings.
type Reporter struct {
	rule      *Rule
	c         *Context
	max       int
	diags     []Diagnostic
	truncated int
	skipped   string
}

// Report records one finding. The cell/net location fields of d are
// completed from the module (kind and debug name) before storing.
func (r *Reporter) Report(d Diagnostic) {
	d.Rule = r.rule.ID
	if d.Cell >= 0 && d.Cell < len(r.c.M.Cells) {
		cell := &r.c.M.Cells[d.Cell]
		d.CellKind = cell.Kind.String()
		if d.Net == 0 {
			d.Net = cell.Out
		}
	}
	if d.Net != 0 && d.NetName == "" {
		d.NetName = r.c.M.NetName(d.Net)
	}
	if r.max > 0 && len(r.diags) >= r.max {
		r.truncated++
		return
	}
	r.diags = append(r.diags, d)
}

// Errorf reports an error-severity finding at the given cell (or -1).
func (r *Reporter) Errorf(cell int, net netlist.Net, format string, args ...any) {
	r.Report(Diagnostic{Severity: SeverityError, Cell: cell, Net: net,
		Message: fmt.Sprintf(format, args...)})
}

// Warnf reports a warning-severity finding at the given cell (or -1).
func (r *Reporter) Warnf(cell int, net netlist.Net, format string, args ...any) {
	r.Report(Diagnostic{Severity: SeverityWarning, Cell: cell, Net: net,
		Message: fmt.Sprintf(format, args...)})
}

// Skip marks the rule as not applicable to this module (for example
// dual-branch on a module without a λ input). A skipped rule contributes
// no findings; the reason appears in the verbose report.
func (r *Reporter) Skip(reason string) { r.skipped = reason }

// Options configures a lint run.
type Options struct {
	// Rules selects which rules run: rule IDs and/or category names.
	// Empty means all registered rules.
	Rules []string
	// MaxPerRule caps the diagnostics kept per rule; excess findings are
	// counted in RuleResult.Truncated. 0 means unlimited.
	MaxPerRule int
}

// RuleResult is one rule's outcome within a Report.
type RuleResult struct {
	Rule        string       `json:"rule"`
	Category    Category     `json:"category"`
	Doc         string       `json:"doc,omitempty"`
	Skipped     string       `json:"skipped,omitempty"`
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
	Truncated   int          `json:"truncated,omitempty"`
}

// Report is the outcome of linting one module.
type Report struct {
	Module   string       `json:"module"`
	Findings int          `json:"findings"`
	Results  []RuleResult `json:"results"`
}

// Clean reports whether the module passed every selected rule.
func (r *Report) Clean() bool { return r.Findings == 0 }

// Diagnostics returns all findings across rules, in registry order.
func (r *Report) Diagnostics() []Diagnostic {
	var out []Diagnostic
	for i := range r.Results {
		out = append(out, r.Results[i].Diagnostics...)
	}
	return out
}

// registry is the ordered rule set; rules are registered by the rule files'
// init functions and sorted by (category, ID) with structural rules first.
var registry []*Rule

func register(r *Rule) { registry = append(registry, r) }

// Rules returns the registered rules in report order.
func Rules() []*Rule {
	out := append([]*Rule(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Category != out[j].Category {
			return out[i].Category == CategoryStructural
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// selectRules resolves Options.Rules against the registry.
func selectRules(names []string) ([]*Rule, error) {
	all := Rules()
	if len(names) == 0 {
		return all, nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []*Rule
	matched := make(map[string]bool)
	for _, r := range all {
		if want[r.ID] || want[string(r.Category)] {
			out = append(out, r)
			matched[r.ID] = true
			matched[string(r.Category)] = true
		}
	}
	for _, n := range names {
		if !matched[n] {
			return nil, fmt.Errorf("lint: unknown rule or category %q", n)
		}
	}
	return out, nil
}

// Run lints the module with the selected rules, executing them in
// parallel, and returns the aggregated report. It returns an error only
// for invalid options; module defects are reported as diagnostics.
func Run(m *netlist.Module, opts Options) (*Report, error) {
	rules, err := selectRules(opts.Rules)
	if err != nil {
		return nil, err
	}
	ctx := newContext(m)

	reporters := make([]*Reporter, len(rules))
	var wg sync.WaitGroup
	for i, rule := range rules {
		reporters[i] = &Reporter{rule: rule, c: ctx, max: opts.MaxPerRule}
		wg.Add(1)
		go func(rule *Rule, rep *Reporter) {
			defer wg.Done()
			rule.Check(ctx, rep)
		}(rule, reporters[i])
	}
	wg.Wait()

	rep := &Report{Module: m.Name}
	for i, rule := range rules {
		r := reporters[i]
		// Rules run concurrently and some (the prove-backed ones in
		// particular) iterate in analysis order, so sort each rule's
		// findings by (net, cell, message): the report and its -json
		// encoding are byte-identical across runs of the same module.
		sort.SliceStable(r.diags, func(a, b int) bool {
			if r.diags[a].Net != r.diags[b].Net {
				return r.diags[a].Net < r.diags[b].Net
			}
			if r.diags[a].Cell != r.diags[b].Cell {
				return r.diags[a].Cell < r.diags[b].Cell
			}
			return r.diags[a].Message < r.diags[b].Message
		})
		rep.Findings += len(r.diags) + r.truncated
		rep.Results = append(rep.Results, RuleResult{
			Rule:        rule.ID,
			Category:    rule.Category,
			Doc:         rule.Doc,
			Skipped:     r.skipped,
			Diagnostics: r.diags,
			Truncated:   r.truncated,
		})
	}
	return rep, nil
}
