package lint

import (
	"fmt"

	"repro/internal/prove"
)

func init() {
	register(&Rule{
		ID: "ineffective-bias",
		Doc: "at every declared fault point the number of randomness assignments making " +
			"the fault ineffective is proved key-independent — SIFA's correct-ciphertext " +
			"filter learns nothing",
		Category: CategoryCountermeasure,
		Check:    checkProve(prove.CheckIneffectiveBias),
	})
	register(&Rule{
		ID: "flag-key-independence",
		Doc: "the detection flag's distribution is proved key-independent at every declared " +
			"fault point — the alarm rate itself is not a side channel",
		Category: CategoryCountermeasure,
		Check:    checkProve(prove.CheckFlagIndependence),
	})
	register(&Rule{
		ID: "sifa-independence",
		Doc: "the outcome distribution conditioned on the fault being ineffective is proved " +
			"key-independent — exact counting over λ, sound even where both marginals look uniform",
		Category: CategoryCountermeasure,
		Check:    checkProve(prove.CheckSIFAIndependence),
	})
}

// proveAnalysis is the outcome of the one shared prover run the three
// prove-backed rules read. Either skip is set (with the reason all three
// rules report) or res holds the per-(location, model) verdicts.
type proveAnalysis struct {
	skip string
	res  *prove.Result
}

// proveResults runs the SIFA-independence prover over the module's tagged
// fault points, once per lint run regardless of how many prove-backed
// rules are selected.
func (c *Context) proveResults() *proveAnalysis {
	c.proveOnce.Do(func() {
		if c.orderErr != nil {
			c.proveRun.skip = "combinational loop: see comb-loop"
			return
		}
		if len(prove.TaggedLocations(c.M)) == 0 {
			c.proveRun.skip = "module declares no fault points (no \"" +
				prove.TagPrefix + "\" cell tags)"
			return
		}
		res, err := prove.Run(c.M, prove.Options{Budget: bddBudget})
		if err != nil {
			c.proveRun.skip = "outside the prover's sequential model: " + err.Error()
			return
		}
		c.proveRun.res = res
	})
	return &c.proveRun
}

// checkProve adapts one prover check into a lint rule: a dependent verdict
// at any (fault point, fault model) pair is an error carrying the concrete
// witness, and budget-truncated proofs surface as a single warning rather
// than silently passing.
//
// The conditional check is reported only where both marginal checks hold:
// when the ineffectiveness or flag count is itself key-dependent, the
// conditional is inevitably biased too, and the marginal rule already
// names the root cause.
func checkProve(ch prove.Check) func(c *Context, r *Reporter) {
	return func(c *Context, r *Reporter) {
		pa := c.proveResults()
		if pa.skip != "" {
			r.Skip(pa.skip)
			return
		}
		unknown := 0
		for i := range pa.res.Locations {
			lr := &pa.res.Locations[i]
			cr := lr.Checks[ch]
			switch cr.Verdict {
			case prove.VerdictDependent:
				if ch == prove.CheckSIFAIndependence && dominatedSIFA(lr) {
					continue
				}
				msg := fmt.Sprintf("%s under %s at fault point %q: %s",
					ch, lr.Model, lr.Location.Name, cr.Verdict)
				if cr.Witness != nil {
					msg += " — " + cr.Witness.String()
				}
				r.Errorf(c.M.Driver(lr.Location.Net), lr.Location.Net, "%s", msg)
			case prove.VerdictUnknown:
				unknown++
			}
		}
		if unknown > 0 {
			r.Warnf(-1, 0, "%d of %d (fault point, model) proofs exceeded the %d-node "+
				"BDD budget: verdicts unknown, independence NOT proved",
				unknown, len(pa.res.Locations), pa.res.Budget)
		}
	}
}

// dominatedSIFA reports whether a marginal check already owns the bias at
// this (location, model) pair.
func dominatedSIFA(lr *prove.LocationResult) bool {
	return lr.Checks[prove.CheckIneffectiveBias].Verdict == prove.VerdictDependent ||
		lr.Checks[prove.CheckFlagIndependence].Verdict == prove.VerdictDependent
}
