package lint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteText renders the report as human-readable text: one line per
// finding. With verbose set it prefixes a per-rule summary table (the
// format the golden report in testdata pins), including skipped rules and
// their reasons.
func (r *Report) WriteText(w io.Writer, verbose bool) error {
	bw := bufio.NewWriter(w)
	if verbose {
		fmt.Fprintf(bw, "module %s: %d rules, %d findings\n", r.Module, len(r.Results), r.Findings)
		for i := range r.Results {
			res := &r.Results[i]
			status := "ok"
			switch {
			case res.Skipped != "":
				status = "skipped"
			case len(res.Diagnostics) > 0 || res.Truncated > 0:
				status = fmt.Sprintf("FAIL(%d)", len(res.Diagnostics)+res.Truncated)
			}
			fmt.Fprintf(bw, "  %-9s %-16s %-14s", status, res.Rule, "("+string(res.Category)+")")
			if res.Skipped != "" {
				fmt.Fprintf(bw, " — %s", res.Skipped)
			}
			fmt.Fprintln(bw)
		}
	}
	for i := range r.Results {
		res := &r.Results[i]
		for j := range res.Diagnostics {
			d := &res.Diagnostics[j]
			fmt.Fprintf(bw, "%s: %s[%s]: %s: %s\n", r.Module, d.Severity, d.Rule, d.Location(), d.Message)
		}
		if res.Truncated > 0 {
			fmt.Fprintf(bw, "%s: %s[%s]: module: ... and %d more findings (truncated)\n",
				r.Module, SeverityInfo, res.Rule, res.Truncated)
		}
	}
	return bw.Flush()
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
