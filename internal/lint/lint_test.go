package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cipher/gift"
	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/netlist"
)

var update = flag.Bool("update", false, "rewrite golden files")

func loadFixture(t *testing.T, name string) *netlist.Module {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := netlist.ReadTextLax(f)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return m
}

// TestSeededViolations runs the full rule set over each seeded-violation
// fixture and requires that exactly the seeded rule fires.
func TestSeededViolations(t *testing.T) {
	for _, tc := range []struct {
		file string
		rule string
	}{
		{"floating_net.nl", "floating-net"},
		{"multi_driven.nl", "multi-driven"},
		{"comb_loop.nl", "comb-loop"},
		{"duplicate_port.nl", "duplicate-port"},
		{"port_width.nl", "port-width"},
		{"dead_gate.nl", "dead-gate"},
		{"const_net.nl", "const-net"},
		{"lambda_cone.nl", "lambda-cone"},
		{"dual_branch.nl", "dual-branch"},
		{"detect_coverage.nl", "detect-coverage"},
		{"ineff_bias.nl", "ineffective-bias"},
		{"flag_key_bias.nl", "flag-key-independence"},
		{"sifa_cond_bias.nl", "sifa-independence"},
	} {
		t.Run(tc.file, func(t *testing.T) {
			m := loadFixture(t, tc.file)
			rep, err := Run(m, Options{})
			if err != nil {
				t.Fatal(err)
			}
			diags := rep.Diagnostics()
			if len(diags) == 0 {
				t.Fatalf("no findings, want at least one from rule %s", tc.rule)
			}
			for _, d := range diags {
				if d.Rule != tc.rule {
					t.Errorf("unexpected finding from rule %s: %s", d.Rule, d.Message)
				}
			}
			hit := false
			for _, d := range diags {
				hit = hit || d.Rule == tc.rule
			}
			if !hit {
				t.Errorf("rule %s reported nothing", tc.rule)
			}
		})
	}
}

// TestThreeInOneClean pins the central soundness statement: the paper's
// three-in-one construction passes every rule, for all entropy variants
// and for both ciphers.
func TestThreeInOneClean(t *testing.T) {
	for _, tc := range []struct {
		name   string
		opts   core.Options
		gift64 bool
	}{
		{"present-prime", core.Options{Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPrime}, false},
		{"present-per-round", core.Options{Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPerRound}, false},
		{"present-per-sbox", core.Options{Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPerSbox}, false},
		{"gift-prime", core.Options{Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPrime}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			spec := present.Spec()
			if tc.gift64 {
				spec = gift.Spec()
			}
			d := core.MustBuild(spec, tc.opts)
			rep, err := Run(d.Mod, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, res := range rep.Results {
				if res.Skipped != "" {
					t.Errorf("rule %s skipped: %s", res.Rule, res.Skipped)
				}
			}
			if !rep.Clean() {
				var buf bytes.Buffer
				rep.WriteText(&buf, true)
				t.Fatalf("three-in-one core is not lint-clean:\n%s", buf.String())
			}
		})
	}
}

// TestWeakSchemesFlagged pins the differential statements: each weakened
// scheme is caught by the rule that encodes the property it lacks.
func TestWeakSchemesFlagged(t *testing.T) {
	build := func(s core.Scheme) *core.Design {
		return core.MustBuild(present.Spec(), core.Options{Scheme: s, Entropy: core.EntropyPrime})
	}

	t.Run("unprotected", func(t *testing.T) {
		rep, err := Run(build(core.SchemeUnprotected).Mod, Options{Rules: []string{"lambda-cone"}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Findings == 0 {
			t.Fatal("lambda-cone must flag the unprotected core")
		}
	})
	t.Run("naive-dup", func(t *testing.T) {
		rep, err := Run(build(core.SchemeNaiveDup).Mod, Options{Rules: []string{"lambda-cone"}})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Findings == 0 {
			t.Fatal("lambda-cone must flag the naive duplication core")
		}
	})
	t.Run("acisp", func(t *testing.T) {
		rep, err := Run(build(core.SchemeACISP).Mod, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var dual []Diagnostic
		for _, d := range rep.Diagnostics() {
			if d.Rule != "dual-branch" {
				t.Errorf("unexpected finding from rule %s: %s", d.Rule, d.Message)
				continue
			}
			dual = append(dual, d)
		}
		if len(dual) != present.BlockBits {
			t.Fatalf("dual-branch findings = %d, want one per state bit (%d)",
				len(dual), present.BlockBits)
		}
		for _, d := range dual {
			if !strings.Contains(d.Message, "shares λ") {
				t.Fatalf("ACISP finding should call out the shared λ: %s", d.Message)
			}
		}
	})
}

// TestGolden pins the verbose text report for the protected PRESENT-80
// core so report format changes are deliberate.
func TestGolden(t *testing.T) {
	d := core.MustBuild(present.Spec(), core.Options{
		Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPrime,
	})
	rep, err := Run(d.Mod, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf, true); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_present80_three_in_one_prime.txt")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("report drifted from golden file (rerun with -update if intended):\ngot:\n%s\nwant:\n%s",
			buf.String(), want)
	}
}

// TestProveRuleWitnesses pins what the prove-backed rules report on the
// conditional-bias fixture: the marginal rules stay quiet, and each
// sifa-independence finding carries the concrete key witness.
func TestProveRuleWitnesses(t *testing.T) {
	m := loadFixture(t, "sifa_cond_bias.nl")
	rep, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	diags := rep.Diagnostics()
	if len(diags) != 2 {
		t.Fatalf("findings = %d, want 2 (stuck-at-0 and stuck-at-1)", len(diags))
	}
	for _, d := range diags {
		if d.Rule != "sifa-independence" {
			t.Errorf("unexpected rule %s: %s", d.Rule, d.Message)
		}
		if !strings.Contains(d.Message, "key bit key[0]") {
			t.Errorf("finding does not name the key witness: %s", d.Message)
		}
		if d.NetName != "v" {
			t.Errorf("finding at net %q, want the tagged net v", d.NetName)
		}
	}
}

// TestReportByteStable runs the linter twice over a module with findings
// from concurrent rules and requires byte-identical -json output: the
// report order must not depend on goroutine scheduling.
func TestReportByteStable(t *testing.T) {
	d := core.MustBuild(present.Spec(), core.Options{Scheme: core.SchemeACISP, Entropy: core.EntropyPrime})
	run := func() []byte {
		rep, err := Run(d.Mod, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if again := run(); !bytes.Equal(first, again) {
			t.Fatalf("run %d produced different JSON:\nfirst:\n%s\nagain:\n%s", i+2, first, again)
		}
	}
}

func TestRuleSelection(t *testing.T) {
	m := loadFixture(t, "dead_gate.nl")

	rep, err := Run(m, Options{Rules: []string{"dead-gate"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Rule != "dead-gate" {
		t.Fatalf("rule selection by ID failed: %+v", rep.Results)
	}

	rep, err = Run(m, Options{Rules: []string{string(CategoryCountermeasure)}})
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Results {
		if res.Category != CategoryCountermeasure {
			t.Fatalf("category selection leaked rule %s", res.Rule)
		}
	}
	if len(rep.Results) != 7 {
		t.Fatalf("countermeasure category has %d rules, want 7", len(rep.Results))
	}

	if _, err := Run(m, Options{Rules: []string{"no-such-rule"}}); err == nil {
		t.Fatal("unknown rule name must be an error")
	}
}

func TestMaxPerRule(t *testing.T) {
	d := core.MustBuild(present.Spec(), core.Options{Scheme: core.SchemeACISP, Entropy: core.EntropyPrime})
	rep, err := Run(d.Mod, Options{Rules: []string{"dual-branch"}, MaxPerRule: 5})
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Results[0]
	if len(res.Diagnostics) != 5 {
		t.Fatalf("kept %d diagnostics, want 5", len(res.Diagnostics))
	}
	if res.Truncated != present.BlockBits-5 {
		t.Fatalf("truncated = %d, want %d", res.Truncated, present.BlockBits-5)
	}
	if rep.Findings != present.BlockBits {
		t.Fatalf("findings = %d, want %d (truncation must not hide the count)", rep.Findings, present.BlockBits)
	}
}

// TestRuleMetadata keeps the registry well-formed: unique IDs, docs, and
// a category on every rule.
func TestRuleMetadata(t *testing.T) {
	seen := make(map[string]bool)
	for _, r := range Rules() {
		if r.ID == "" || r.Doc == "" {
			t.Errorf("rule %+v lacks ID or doc", r)
		}
		if seen[r.ID] {
			t.Errorf("duplicate rule ID %s", r.ID)
		}
		seen[r.ID] = true
		if r.Category != CategoryStructural && r.Category != CategoryCountermeasure {
			t.Errorf("rule %s has unknown category %q", r.ID, r.Category)
		}
	}
	if len(seen) != 13 {
		t.Errorf("registry has %d rules, want 13", len(seen))
	}
}
