package lint

import (
	"repro/internal/core"
)

func init() {
	register(&Rule{
		ID: "lambda-cone",
		Doc: "every data-path cell (fanout cone of pt) lies in the fanout cone of a λ bit " +
			"— the per-gate randomised encoding FTA rests on",
		Category: CategoryCountermeasure,
		Check:    checkLambdaCone,
	})
	register(&Rule{
		ID: "detect-coverage",
		Doc: "every redundant-branch register is observed by the fault comparator " +
			"— faults in the redundant computation cannot escape detection",
		Category: CategoryCountermeasure,
		Check:    checkDetectCoverage,
	})
}

// checkLambdaCone verifies the FTA precondition of Algorithm 1: every
// combinational cell processing data derived from the plaintext must also
// be downstream of the λ randomness, so that no gate's value is a
// deterministic function of the secret state. The key schedule is outside
// the pt cone and intentionally unencoded (the paper keeps it plain), so
// it is not checked.
func checkLambdaCone(c *Context, r *Reporter) {
	pt := c.Input(core.PortPT)
	if pt == nil {
		r.Skip("module has no " + core.PortPT + " input port (not a cipher core)")
		return
	}
	ptCone := c.FanoutCone(pt.Bits, true)

	lam := c.Input(core.PortLambda)
	if lam == nil || lam.Width() == 0 {
		n := 0
		for ci := range c.M.Cells {
			if ptCone[ci] && !c.M.Cells[ci].Kind.IsSequential() {
				n++
			}
		}
		r.Errorf(-1, 0, "module has no %q input port: all %d data-path cells compute on "+
			"unrandomised values (no FTA protection)", core.PortLambda, n)
		return
	}
	lamCone := c.FanoutCone(lam.Bits, true)
	for ci := range c.M.Cells {
		cell := &c.M.Cells[ci]
		if !ptCone[ci] || lamCone[ci] || cell.Kind.IsSequential() {
			continue
		}
		r.Errorf(ci, cell.Out, "data-path cell %d (%s %q) is outside every λ fanout cone: "+
			"its value is a deterministic function of the secret state",
			ci, cell.Kind, c.M.NetName(cell.Out))
	}
}

// checkDetectCoverage verifies that the redundant computation is actually
// compared: every redundant-branch register must lie in the transitive
// fanin (through flip-flops) of the fault flag, otherwise a fault injected
// there can corrupt the redundant result — or the actual one, under the
// swapped-branch reading — without ever raising the flag.
func checkDetectCoverage(c *Context, r *Reporter) {
	if len(c.pairs) == 0 && len(c.unpairedB1) == 0 {
		r.Skip("module has no redundant-branch (" +
			core.BranchPrefix(core.BranchRedundant) + "*) registers")
		return
	}
	fault := c.Output(core.PortFault)
	if fault == nil || fault.Width() == 0 {
		r.Errorf(-1, 0, "module has redundant-branch registers but no %q output port: "+
			"the duplicated computation is never compared", core.PortFault)
		return
	}
	cone := c.FaninCone(fault.Bits, true)
	report := func(ci int) {
		cell := &c.M.Cells[ci]
		r.Errorf(ci, cell.Out, "redundant register %q is not in the fanin of the %q flag: "+
			"faults on it escape detection", c.M.NetName(cell.Out), core.PortFault)
	}
	for _, p := range c.pairs {
		if !cone[p.CellB] {
			report(p.CellB)
		}
	}
	for _, ci := range c.unpairedB1 {
		if !cone[ci] {
			report(ci)
		}
	}
}
