package lint

import (
	"strings"
	"sync"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/netlist"
)

// Context is the read-only shared state one lint run's rules operate on.
// Everything is precomputed before the rules start, so concurrent access
// needs no locking.
type Context struct {
	M *netlist.Module

	// problems are the shared structural checks (one source of truth with
	// netlist.Validate); structural rules filter them by Check ID.
	problems []netlist.Problem

	// order is the combinational topological order, nil with orderErr set
	// when the module has a combinational cycle.
	order    []int
	orderErr error

	// fanouts[n] lists the indices of cells reading net n.
	fanouts [][]int32

	pairs      []regPair
	unpairedB1 []int // DFF cell indices with a b1. name but no b0. partner

	// proveOnce guards the shared prover run the three prove-backed rules
	// read (see rules_prove.go); it is the one lazily-computed member of
	// the otherwise read-only context.
	proveOnce sync.Once
	proveRun  proveAnalysis

	// varIdx maps each net to its BDD variable index. Source nets
	// (primary inputs, DFF outputs, floating nets) are ordered by a
	// depth-first first-touch walk of the output-port fanin cones, which
	// places variables that interact in one output — in particular the
	// paired b0./b1. register bits the fault comparator XORs — next to
	// each other. Net-id order would separate the branches (all b0
	// registers are allocated before any b1 register), making the
	// comparator's BDD exponential in the block size.
	varIdx []int
}

// regPair is a matched pair of branch registers: the DFF holding suffix S
// under the actual-branch prefix and its redundant-branch counterpart.
type regPair struct {
	Suffix string // register name without the branch prefix, e.g. "state[3]"
	CellA  int    // DFF cell index, actual branch
	CellB  int    // DFF cell index, redundant branch
}

func newContext(m *netlist.Module) *Context {
	c := &Context{M: m}
	c.problems = m.StructuralProblems()
	c.order, c.orderErr = m.Levelize()

	c.fanouts = make([][]int32, m.NumNets()+1)
	for ci := range m.Cells {
		for _, in := range m.Cells[ci].Inputs() {
			if in > 0 && int(in) <= m.NumNets() {
				c.fanouts[in] = append(c.fanouts[in], int32(ci))
			}
		}
	}

	prefixA, prefixB := core.BranchPrefix(core.BranchActual), core.BranchPrefix(core.BranchRedundant)
	byName := make(map[string]int)
	for ci := range m.Cells {
		cell := &m.Cells[ci]
		if cell.Kind != netlist.KindDFF {
			continue
		}
		if name := m.NetName(cell.Out); strings.HasPrefix(name, prefixA) {
			byName[strings.TrimPrefix(name, prefixA)] = ci
		}
	}
	for ci := range m.Cells {
		cell := &m.Cells[ci]
		if cell.Kind != netlist.KindDFF {
			continue
		}
		name := m.NetName(cell.Out)
		if !strings.HasPrefix(name, prefixB) {
			continue
		}
		suffix := strings.TrimPrefix(name, prefixB)
		if a, ok := byName[suffix]; ok {
			c.pairs = append(c.pairs, regPair{Suffix: suffix, CellA: a, CellB: ci})
		} else {
			c.unpairedB1 = append(c.unpairedB1, ci)
		}
	}
	c.computeVarOrder()
	return c
}

// computeVarOrder fills varIdx (see the field comment). Output ports are
// walked in declaration order, then each DFF's next-state cone in cell
// order, so every source net reachable from the observable logic gets an
// index at its first touch; unreachable nets take the remaining indices.
func (c *Context) computeVarOrder() {
	m := c.M
	c.varIdx = make([]int, m.NumNets()+1)
	for n := range c.varIdx {
		c.varIdx[n] = -1
	}
	seen := make([]bool, m.NumNets()+1)
	next := 0
	var visit func(n netlist.Net)
	visit = func(n netlist.Net) {
		if n <= 0 || int(n) > m.NumNets() || seen[n] {
			return
		}
		seen[n] = true
		if d := m.Driver(n); d >= 0 && !m.Cells[d].Kind.IsSequential() {
			for _, in := range m.Cells[d].Inputs() {
				visit(in)
			}
			return
		}
		c.varIdx[n] = next
		next++
	}
	for i := range m.Outputs {
		for _, n := range m.Outputs[i].Bits {
			visit(n)
		}
	}
	for ci := range m.Cells {
		if m.Cells[ci].Kind.IsSequential() {
			visit(m.Cells[ci].In[0])
		}
	}
	// Combinational nets never consult their variable (buildBDDs folds
	// over them in topological order), but keep varIdx total and
	// collision-free so unreachable or floating nets stay distinct.
	for n := netlist.Net(1); int(n) <= m.NumNets(); n++ {
		if c.varIdx[n] < 0 {
			c.varIdx[n] = next
			next++
		}
	}
}

// Input returns the input port with the given name, or nil.
func (c *Context) Input(name string) *netlist.Port { return c.M.FindInput(name) }

// Output returns the output port with the given name, or nil.
func (c *Context) Output(name string) *netlist.Port { return c.M.FindOutput(name) }

// FanoutCone returns per-cell membership of the transitive fanout cone of
// the root nets. When crossDFF is set the cone propagates through flip-
// flops (a DFF whose D is in the cone places its Q, and everything reading
// it, in the cone as well).
func (c *Context) FanoutCone(roots []netlist.Net, crossDFF bool) []bool {
	inCone := make([]bool, len(c.M.Cells))
	seenNet := make([]bool, c.M.NumNets()+1)
	stack := make([]netlist.Net, 0, len(roots))
	for _, n := range roots {
		if n > 0 && int(n) <= c.M.NumNets() && !seenNet[n] {
			seenNet[n] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ci := range c.fanouts[n] {
			cell := &c.M.Cells[ci]
			if !inCone[ci] {
				inCone[ci] = true
			}
			if cell.Kind.IsSequential() && !crossDFF {
				continue
			}
			if out := cell.Out; out > 0 && !seenNet[out] {
				seenNet[out] = true
				stack = append(stack, out)
			}
		}
	}
	return inCone
}

// FaninCone returns per-cell membership of the transitive fanin cone of
// the root nets. When crossDFF is set the cone continues backwards through
// flip-flops (from Q to the logic driving D).
func (c *Context) FaninCone(roots []netlist.Net, crossDFF bool) []bool {
	inCone := make([]bool, len(c.M.Cells))
	var stack []int
	push := func(n netlist.Net) {
		if n <= 0 || int(n) > c.M.NumNets() {
			return
		}
		if d := c.M.Driver(n); d >= 0 && !inCone[d] {
			inCone[d] = true
			stack = append(stack, d)
		}
	}
	for _, n := range roots {
		push(n)
	}
	for len(stack) > 0 {
		ci := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cell := &c.M.Cells[ci]
		if cell.Kind.IsSequential() && !crossDFF {
			continue
		}
		for _, in := range cell.Inputs() {
			push(in)
		}
	}
	return inCone
}

// bddBudget bounds the number of BDD nodes a single rule may allocate;
// past it the rule gives up and marks itself skipped rather than stalling
// the lint run.
const bddBudget = 4 << 20

// netVar returns the BDD variable assigned to a net under the context's
// first-touch ordering (see varIdx).
func (c *Context) netVar(mgr *bdd.Manager, n netlist.Net) bdd.Node {
	return mgr.Var(c.varIdx[n])
}

// buildBDDs computes a BDD for every net of the module. Source nets —
// primary inputs, DFF outputs, floating nets — evaluate to varOf(net);
// combinational cells are folded in topological order. The context's order
// must be valid. Budget enforcement lives in the manager: callers allocate
// it with bdd.NewWithBudget(…, bddBudget) and run the fold under
// bdd.Guarded, skipping the rule when the budget trips.
func (c *Context) buildBDDs(mgr *bdd.Manager, varOf func(n netlist.Net) bdd.Node) []bdd.Node {
	m := c.M
	vals := make([]bdd.Node, m.NumNets()+1)
	for n := netlist.Net(1); int(n) <= m.NumNets(); n++ {
		vals[n] = varOf(n)
	}
	for _, ci := range c.order {
		cell := &m.Cells[ci]
		in := cell.Inputs()
		var v bdd.Node
		switch cell.Kind {
		case netlist.KindConst0:
			v = bdd.False
		case netlist.KindConst1:
			v = bdd.True
		case netlist.KindBuf:
			v = vals[in[0]]
		case netlist.KindInv:
			v = mgr.Not(vals[in[0]])
		case netlist.KindAnd2:
			v = mgr.And(vals[in[0]], vals[in[1]])
		case netlist.KindOr2:
			v = mgr.Or(vals[in[0]], vals[in[1]])
		case netlist.KindNand2:
			v = mgr.Not(mgr.And(vals[in[0]], vals[in[1]]))
		case netlist.KindNor2:
			v = mgr.Not(mgr.Or(vals[in[0]], vals[in[1]]))
		case netlist.KindXor2:
			v = mgr.Xor(vals[in[0]], vals[in[1]])
		case netlist.KindXnor2:
			v = mgr.Xnor(vals[in[0]], vals[in[1]])
		case netlist.KindMux2:
			v = mgr.ITE(vals[in[2]], vals[in[1]], vals[in[0]])
		default:
			continue // DFFs keep their source variable
		}
		vals[cell.Out] = v
	}
	return vals
}
