package lint

import (
	"repro/internal/netlist"
)

// structuralRule builds a rule that reports the shared netlist structural
// problems carrying the given check ID, so that netlist.Validate and the
// linter stay one implementation.
func structuralRule(check, doc string) *Rule {
	return &Rule{
		ID:       check,
		Doc:      doc,
		Category: CategoryStructural,
		Check: func(c *Context, r *Reporter) {
			for _, p := range c.problems {
				if p.Check == check {
					r.Report(Diagnostic{Severity: SeverityError, Cell: p.Cell, Net: p.Net, Message: p.Message})
				}
			}
		},
	}
}

func init() {
	register(structuralRule(netlist.CheckFloatingNet,
		"every net read by a cell or exported by an output port has a driver or is a primary input"))
	register(structuralRule(netlist.CheckMultiDriven,
		"no primary-input net is also driven by a cell"))
	register(structuralRule(netlist.CheckCombLoop,
		"the combinational logic is acyclic"))
	register(structuralRule(netlist.CheckDuplicatePort,
		"port names are unique"))

	portWidth := structuralRule(netlist.CheckPortWidth,
		"ports are well-formed: valid net ids, non-zero width, no repeated bits")
	shared := portWidth.Check
	portWidth.Check = func(c *Context, r *Reporter) {
		shared(c, r)
		checkPortShapes(c, r)
	}
	register(portWidth)

	register(&Rule{
		ID:       "dead-gate",
		Doc:      "every cell's output can reach a primary output (no unobservable logic)",
		Category: CategoryStructural,
		Check:    checkDeadGates,
	})
}

// checkPortShapes adds the lint-only port checks Validate does not fail
// on: zero-width ports and nets repeated within one port.
func checkPortShapes(c *Context, r *Reporter) {
	check := func(kind string, ports []netlist.Port) {
		for i := range ports {
			p := &ports[i]
			if p.Width() == 0 {
				r.Errorf(-1, 0, "%s port %q has zero width", kind, p.Name)
				continue
			}
			seen := make(map[netlist.Net]int, p.Width())
			for bi, n := range p.Bits {
				if prev, ok := seen[n]; ok {
					r.Errorf(-1, n, "%s port %q bits %d and %d reference the same net %q",
						kind, p.Name, prev, bi, c.M.NetName(n))
				}
				seen[n] = bi
			}
		}
	}
	check("input", c.M.Inputs)
	check("output", c.M.Outputs)
}

// checkDeadGates flags cells whose output cannot reach any primary output,
// even through flip-flops. Dead logic wastes area at best; at worst it is
// a countermeasure component (detector, redundant path) that synthesis or
// a hand edit disconnected. Constant drivers are exempt: unused constants
// are common synthesis residue and harmless.
func checkDeadGates(c *Context, r *Reporter) {
	var roots []netlist.Net
	for i := range c.M.Outputs {
		roots = append(roots, c.M.Outputs[i].Bits...)
	}
	if len(roots) == 0 {
		r.Skip("module has no output ports")
		return
	}
	observed := c.FaninCone(roots, true)
	for ci := range c.M.Cells {
		cell := &c.M.Cells[ci]
		if observed[ci] || cell.Kind.IsConst() {
			continue
		}
		r.Warnf(ci, cell.Out, "output of cell %d (%s %q) cannot reach any output port",
			ci, cell.Kind, c.M.NetName(cell.Out))
	}
}
