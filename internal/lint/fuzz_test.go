package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/netlist"
)

// FuzzLint feeds arbitrary text netlists through the full rule set. Two
// properties must hold: the linter never panics on anything the lax
// parser accepts, and a module with no structural findings also passes
// netlist.Validate (the two share one implementation; this pins that the
// lint surface stays a superset).
func FuzzLint(f *testing.F) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.nl"))
	if err != nil {
		f.Fatal(err)
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := netlist.ReadTextLax(bytes.NewReader(data))
		if err != nil {
			return
		}
		if m.NumNets() > 4096 || len(m.Cells) > 4096 {
			return // keep BDD building cheap
		}
		rep, runErr := Run(m, Options{})
		if runErr != nil {
			t.Fatalf("Run with default options: %v", runErr)
		}
		structuralClean := true
		for _, res := range rep.Results {
			if res.Category == CategoryStructural && len(res.Diagnostics)+res.Truncated > 0 {
				structuralClean = false
			}
		}
		if structuralClean {
			if err := m.Validate(); err != nil {
				t.Fatalf("no structural findings but Validate fails: %v", err)
			}
		}
	})
}
