package prove

import (
	"fmt"
	"strings"

	"repro/internal/netlist"
)

// TagPrefix marks a cell as an injectable fault point: core.Build tags the
// driver of every S-box input bit — the nets the paper's fault models
// target — with "fp.<branch>.sbox<NN>.b<bit>", and netlists round-trip the
// tag through the text format, so serialised designs keep their fault
// points addressable.
const TagPrefix = "fp."

// TaggedLocations returns the module's declared fault points: the output
// nets of every cell whose tag starts with TagPrefix, in cell order.
func TaggedLocations(m *netlist.Module) []Location {
	var locs []Location
	for ci := range m.Cells {
		c := &m.Cells[ci]
		if !strings.HasPrefix(c.Tag, TagPrefix) {
			continue
		}
		locs = append(locs, Location{
			Net:  c.Out,
			Name: NetName(m, c.Out),
			Tag:  c.Tag,
		})
	}
	return locs
}

// NetName names a net for reports: the module's debug name when present,
// then the "port[bit]" form for port bits (text-serialised modules often
// carry no debug names), then "net<id>".
func NetName(m *netlist.Module, n netlist.Net) string {
	if name := m.NetName(n); name != "" {
		return name
	}
	for _, ports := range [][]netlist.Port{m.Inputs, m.Outputs} {
		for i := range ports {
			for bit, pn := range ports[i].Bits {
				if pn == n {
					return fmt.Sprintf("%s[%d]", ports[i].Name, bit)
				}
			}
		}
	}
	return fmt.Sprintf("net%d", n)
}
