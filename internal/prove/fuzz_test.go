package prove

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// fuzzModule decodes a small combinational module from fuzz bytes:
// public ("din"), key ("key") and randomness ("lambda") input ports, a
// gate list referencing earlier nets only (so it is always acyclic), a
// 1-bit ct output, an optional fault output, and one fault location.
func fuzzModule(data []byte) (*netlist.Module, netlist.Net, fault.Model, bool) {
	if len(data) < 8 {
		return nil, 0, 0, false
	}
	next := func() byte { b := data[0]; data = data[1:]; return b }

	npub := 1 + int(next())%3
	nkey := 1 + int(next())%2
	nrand := int(next()) % 3

	m := netlist.New("fuzz")
	var nets []netlist.Net
	nets = append(nets, m.AddInput("din", npub)...)
	nets = append(nets, m.AddInput("key", nkey)...)
	if nrand > 0 {
		nets = append(nets, m.AddInput("lambda", nrand)...)
	}

	kinds := []netlist.CellKind{
		netlist.KindBuf, netlist.KindInv, netlist.KindAnd2, netlist.KindOr2,
		netlist.KindNand2, netlist.KindNor2, netlist.KindXor2, netlist.KindXnor2,
		netlist.KindMux2,
	}
	ncells := int(next()) % 13
	for i := 0; i < ncells && len(data) >= 4; i++ {
		kind := kinds[int(next())%len(kinds)]
		in := make([]netlist.Net, kind.Arity())
		for j := range in {
			in[j] = nets[int(next())%len(nets)]
		}
		out := m.NewNet("g")
		m.AddCell(kind, out, in...)
		nets = append(nets, out)
	}
	if len(data) < 4 {
		return nil, 0, 0, false
	}
	ct := nets[int(next())%len(nets)]
	m.AddOutput("ct", netlist.Bus{ct})
	if fb := next(); fb%2 == 1 {
		m.AddOutput("fault", netlist.Bus{nets[int(fb/2)%len(nets)]})
	}
	loc := nets[int(next())%len(nets)]
	model := fault.Model(int(next()) % 3)
	return m, loc, model, true
}

// bruteForce enumerates all input assignments, replays the analyzer's
// event definitions bit by bit, and decides key-dependence of the three
// counts by direct comparison across key values.
func bruteForce(t *testing.T, m *netlist.Module, loc netlist.Net, model fault.Model) [NumChecks]Verdict {
	t.Helper()
	order, err := m.Levelize()
	if err != nil {
		t.Fatal(err)
	}

	var pubNets, keyNets, randNets []netlist.Net
	for i := range m.Inputs {
		p := &m.Inputs[i]
		switch p.Name {
		case "key":
			keyNets = append(keyNets, p.Bits...)
		case "lambda":
			randNets = append(randNets, p.Bits...)
		default:
			pubNets = append(pubNets, p.Bits...)
		}
	}
	flagSet := make(map[netlist.Net]bool)
	var flagBits, obsBits []netlist.Net
	if fp := m.FindOutput("fault"); fp != nil {
		flagBits = fp.Bits
		for _, n := range fp.Bits {
			flagSet[n] = true
		}
	}
	for i := range m.Outputs {
		for _, n := range m.Outputs[i].Bits {
			if !flagSet[n] {
				obsBits = append(obsBits, n)
			}
		}
	}

	eval := func(assign map[netlist.Net]bool, faulted bool) []bool {
		vals := make([]bool, m.NumNets()+1)
		apply := func(n netlist.Net) {
			if !faulted || n != loc {
				return
			}
			switch model {
			case fault.StuckAt0:
				vals[n] = false
			case fault.StuckAt1:
				vals[n] = true
			default:
				vals[n] = !vals[n]
			}
		}
		for n, v := range assign {
			vals[n] = v
			apply(n)
		}
		for _, ci := range order {
			c := &m.Cells[ci]
			in := c.Inputs()
			var v bool
			switch c.Kind {
			case netlist.KindConst0:
			case netlist.KindConst1:
				v = true
			case netlist.KindBuf:
				v = vals[in[0]]
			case netlist.KindInv:
				v = !vals[in[0]]
			case netlist.KindAnd2:
				v = vals[in[0]] && vals[in[1]]
			case netlist.KindOr2:
				v = vals[in[0]] || vals[in[1]]
			case netlist.KindNand2:
				v = !(vals[in[0]] && vals[in[1]])
			case netlist.KindNor2:
				v = !(vals[in[0]] || vals[in[1]])
			case netlist.KindXor2:
				v = vals[in[0]] != vals[in[1]]
			case netlist.KindXnor2:
				v = vals[in[0]] == vals[in[1]]
			case netlist.KindMux2:
				if vals[in[2]] {
					v = vals[in[1]]
				} else {
					v = vals[in[0]]
				}
			}
			vals[c.Out] = v
			apply(c.Out)
		}
		return vals
	}

	type frac struct{ n, d int }
	// counts[pub][key] = (cU, cD, cUD)
	nPub, nKey, nRand := len(pubNets), len(keyNets), len(randNets)
	depIneff, depFlag, depSIFA := false, false, false
	for pub := 0; pub < 1<<nPub; pub++ {
		var refU, refD int
		var refC frac
		for key := 0; key < 1<<nKey; key++ {
			cU, cD, cUD := 0, 0, 0
			for rnd := 0; rnd < 1<<nRand; rnd++ {
				assign := make(map[netlist.Net]bool)
				for i, n := range pubNets {
					assign[n] = pub>>i&1 == 1
				}
				for i, n := range keyNets {
					assign[n] = key>>i&1 == 1
				}
				for i, n := range randNets {
					assign[n] = rnd>>i&1 == 1
				}
				clean := eval(assign, false)
				fv := eval(assign, true)
				u := true
				for _, n := range obsBits {
					u = u && clean[n] == fv[n]
				}
				d := false
				for _, n := range flagBits {
					d = d || fv[n]
				}
				if u {
					cU++
				}
				if d {
					cD++
				}
				if u && d {
					cUD++
				}
			}
			cond := frac{0, 0}
			if cU > 0 {
				g := gcd(cUD, cU)
				cond = frac{cUD / g, cU / g}
			}
			if key == 0 {
				refU, refD, refC = cU, cD, cond
				continue
			}
			if cU != refU {
				depIneff = true
			}
			if cD != refD {
				depFlag = true
			}
			if cond != refC {
				depSIFA = true
			}
		}
	}
	verdict := func(dep bool) Verdict {
		if dep {
			return VerdictDependent
		}
		return VerdictIndependent
	}
	return [NumChecks]Verdict{verdict(depIneff), verdict(depFlag), verdict(depSIFA)}
}

func gcd(a, b int) int {
	if a == 0 && b == 0 {
		return 1
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// FuzzProveIndependence cross-checks the BDD prover against brute-force
// truth-table enumeration on random small netlists: the verdict of every
// check must agree exactly.
func FuzzProveIndependence(f *testing.F) {
	f.Add([]byte{2, 1, 1, 5, 2, 0, 3, 6, 1, 4, 8, 0, 2, 4, 3, 9, 7, 0})
	f.Add([]byte{0, 0, 2, 3, 6, 1, 2, 6, 3, 0, 2, 5, 1, 4, 5, 3, 1, 2})
	f.Add([]byte{1, 1, 0, 8, 4, 2, 1, 8, 0, 3, 7, 1, 2, 5, 6, 0, 4, 1})
	f.Add([]byte{2, 0, 1, 12, 8, 1, 2, 3, 2, 4, 5, 6, 6, 7, 8, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, loc, model, ok := fuzzModule(data)
		if !ok {
			t.Skip()
		}
		a, err := NewAnalyzer(m, 0)
		if err != nil {
			t.Skip() // outside the analysis model
		}
		lr, err := a.Prove(Location{Net: loc, Name: m.NetName(loc)}, model)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(t, m, loc, model)
		for c := Check(0); c < NumChecks; c++ {
			got := lr.Checks[c].Verdict
			if got == VerdictUnknown {
				t.Fatalf("check %s ran out of budget on a %d-input module", c, len(m.Inputs))
			}
			if got != want[c] {
				t.Fatalf("check %s: prover says %s, brute force says %s\nmodule %s, fault %s at %s",
					c, got, want[c], m.Name, model, m.NetName(loc))
			}
		}
	})
}
