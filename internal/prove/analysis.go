package prove

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/bdd"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netlist"
)

// Analyzer proves independence obligations for one module, sharing the
// clean-execution BDDs across locations so a full sweep pays the base
// construction once. It is not safe for concurrent use; the service runs
// one analyzer per prove job and the lint rules share one behind a
// sync.Once.
type Analyzer struct {
	m      *netlist.Module
	budget int

	order   []int
	fanouts [][]int32
	varIdx  []int         // net -> BDD variable index (meaningful for source nets)
	varNet  []netlist.Net // BDD variable index -> net
	part    *bdd.Partition

	loadNet  netlist.Net
	flagBits []netlist.Net
	obsNets  []netlist.Net // DFF D inputs + non-flag output bits
	dffs     []int

	// coneSet marks the cells of the flag output's combinational fanin
	// cone — the only logic the cycle-after-injection pass rebuilds.
	coneSet map[int]bool

	// Base BDD state, built lazily and rebuilt after a budget overflow.
	mgr     *bdd.Manager
	vals1   []bdd.Node // clean cycle-1 net values over primary inputs only
	peak    int
	baseErr error // fatal (non-budget) model error; sticky
}

// NewAnalyzer prepares an analyzer with the given node budget (0 means
// DefaultBudget). It fails on modules outside the analysis model: ones
// with combinational cycles, or sequential ones without the 1-bit load
// port the register-initialisation argument needs.
func NewAnalyzer(m *netlist.Module, budget int) (*Analyzer, error) {
	if budget <= 0 {
		budget = DefaultBudget
	}
	order, err := m.Levelize()
	if err != nil {
		return nil, fmt.Errorf("prove: %w", err)
	}
	a := &Analyzer{m: m, budget: budget, order: order}

	a.fanouts = make([][]int32, m.NumNets()+1)
	for ci := range m.Cells {
		if m.Cells[ci].Kind == netlist.KindDFF {
			a.dffs = append(a.dffs, ci)
		}
		for _, in := range m.Cells[ci].Inputs() {
			if in > 0 && int(in) <= m.NumNets() {
				a.fanouts[in] = append(a.fanouts[in], int32(ci))
			}
		}
	}

	if len(a.dffs) > 0 {
		lp := m.FindInput(core.PortLoad)
		if lp == nil || lp.Width() != 1 {
			return nil, fmt.Errorf("prove: sequential module %q has no 1-bit %q input port: "+
				"register initialisation cannot be derived", m.Name, core.PortLoad)
		}
		a.loadNet = lp.Bits[0]
	}
	if fp := m.FindOutput(core.PortFault); fp != nil {
		a.flagBits = append(a.flagBits, fp.Bits...)
	}

	// Observation points of the "data unchanged" event: everything stored
	// (DFF D inputs) and everything released (output bits), except the
	// detection flag itself, which is the other event.
	flagSet := make(map[netlist.Net]bool, len(a.flagBits))
	for _, n := range a.flagBits {
		flagSet[n] = true
	}
	for _, ci := range a.dffs {
		a.obsNets = append(a.obsNets, m.Cells[ci].In[0])
	}
	for i := range m.Outputs {
		for _, n := range m.Outputs[i].Bits {
			if !flagSet[n] {
				a.obsNets = append(a.obsNets, n)
			}
		}
	}

	a.computeVarOrder()
	a.computePartition()
	a.coneSet = m.TransitiveFanin(a.flagBits)
	return a, nil
}

// Budget returns the effective node budget.
func (a *Analyzer) Budget() int { return a.budget }

// PeakNodes returns the highest live BDD node count seen so far.
func (a *Analyzer) PeakNodes() int { return a.peak }

// Locations returns the module's tagged fault points.
func (a *Analyzer) Locations() []Location { return TaggedLocations(a.m) }

// computeVarOrder assigns BDD variables to source nets (primary inputs,
// DFF outputs, floating nets) by a depth-first first-touch walk of the
// output cones — the same ordering the lint BDD rules use, which keeps the
// comparator's paired b0./b1. register bits adjacent and its BDD linear
// instead of exponential in the block width.
func (a *Analyzer) computeVarOrder() {
	m := a.m
	a.varIdx = make([]int, m.NumNets()+1)
	for n := range a.varIdx {
		a.varIdx[n] = -1
	}
	seen := make([]bool, m.NumNets()+1)
	var visit func(n netlist.Net)
	visit = func(n netlist.Net) {
		if n <= 0 || int(n) > m.NumNets() || seen[n] {
			return
		}
		seen[n] = true
		if d := m.Driver(n); d >= 0 && !m.Cells[d].Kind.IsSequential() {
			for _, in := range m.Cells[d].Inputs() {
				visit(in)
			}
			return
		}
		a.varIdx[n] = len(a.varNet)
		a.varNet = append(a.varNet, n)
	}
	for i := range m.Outputs {
		for _, n := range m.Outputs[i].Bits {
			visit(n)
		}
	}
	for _, ci := range a.dffs {
		visit(m.Cells[ci].In[0])
	}
	for n := netlist.Net(1); int(n) <= m.NumNets(); n++ {
		if seen[n] {
			continue
		}
		if d := m.Driver(n); d >= 0 && !m.Cells[d].Kind.IsSequential() {
			continue
		}
		a.varIdx[n] = len(a.varNet)
		a.varNet = append(a.varNet, n)
	}
}

// computePartition classifies every BDD variable by the input port its net
// belongs to: key material ("key", "key_lo", "key_hi", ...) is ClassKey;
// the countermeasure's entropy ("lambda", "garbage") and the masked
// scheme's mask ports ("mask_*") are ClassRandom, summed out by the
// counting; everything else — plaintext, control, register state
// (eliminated by substitution before any count) — is ClassPublic.
func (a *Analyzer) computePartition() {
	classOf := make([]bdd.Class, len(a.varNet))
	for i := range a.m.Inputs {
		p := &a.m.Inputs[i]
		var cls bdd.Class
		switch {
		case strings.HasPrefix(p.Name, "key"):
			cls = bdd.ClassKey
		case strings.HasPrefix(p.Name, core.PortLambda),
			strings.HasPrefix(p.Name, core.PortGarbage),
			strings.HasPrefix(p.Name, core.PortMaskPrefix):
			cls = bdd.ClassRandom
		default:
			continue
		}
		for _, n := range p.Bits {
			if v := a.varIdx[n]; v >= 0 {
				classOf[v] = cls
			}
		}
	}
	a.part = bdd.NewPartition(classOf)
}

func (a *Analyzer) varName(v int) string {
	if v < 0 || v >= len(a.varNet) {
		return fmt.Sprintf("<var-%d>", v)
	}
	return NetName(a.m, a.varNet[v])
}

// foldCell computes a cell's output BDD from the input values in vals.
func foldCell(mgr *bdd.Manager, cell *netlist.Cell, vals []bdd.Node) (bdd.Node, bool) {
	in := cell.Inputs()
	switch cell.Kind {
	case netlist.KindConst0:
		return bdd.False, true
	case netlist.KindConst1:
		return bdd.True, true
	case netlist.KindBuf:
		return vals[in[0]], true
	case netlist.KindInv:
		return mgr.Not(vals[in[0]]), true
	case netlist.KindAnd2:
		return mgr.And(vals[in[0]], vals[in[1]]), true
	case netlist.KindOr2:
		return mgr.Or(vals[in[0]], vals[in[1]]), true
	case netlist.KindNand2:
		return mgr.Not(mgr.And(vals[in[0]], vals[in[1]])), true
	case netlist.KindNor2:
		return mgr.Not(mgr.Or(vals[in[0]], vals[in[1]])), true
	case netlist.KindXor2:
		return mgr.Xor(vals[in[0]], vals[in[1]]), true
	case netlist.KindXnor2:
		return mgr.Xnor(vals[in[0]], vals[in[1]]), true
	case netlist.KindMux2:
		return mgr.ITE(vals[in[2]], vals[in[1]], vals[in[0]]), true
	default:
		return bdd.False, false // DFFs keep their source value
	}
}

// build folds every combinational cell in topological order over the given
// source values (one per net; combinational nets are overwritten).
func (a *Analyzer) build(srcOf func(n netlist.Net) bdd.Node) []bdd.Node {
	m := a.m
	vals := make([]bdd.Node, m.NumNets()+1)
	for n := netlist.Net(1); int(n) <= m.NumNets(); n++ {
		// Combinational nets (varIdx -1) are overwritten by the fold.
		if a.varIdx[n] >= 0 {
			vals[n] = srcOf(n)
		}
	}
	for _, ci := range a.order {
		if v, ok := foldCell(a.mgr, &m.Cells[ci], vals); ok {
			vals[m.Cells[ci].Out] = v
		}
	}
	return vals
}

// ensureBase builds the clean-execution BDDs: pass 0 with register outputs
// free, the load-cycle register values (load=1), and pass 1 — every net as
// a function of primary inputs only, with registers substituted by what
// the load cycle stored. Must run under bdd.Guarded.
func (a *Analyzer) ensureBase() {
	if a.mgr != nil || a.baseErr != nil {
		return
	}
	m := a.m
	a.mgr = bdd.NewWithBudget(len(a.varNet), a.budget)
	mgr := a.mgr
	freeVar := func(n netlist.Net) bdd.Node { return mgr.Var(a.varIdx[n]) }

	if len(a.dffs) == 0 {
		a.vals1 = a.build(freeVar)
		a.notePeak()
		return
	}

	vals0 := a.build(freeVar)
	loadVar := a.varIdx[a.loadNet]
	regVar := make(map[int]bool, len(a.dffs))
	for _, ci := range a.dffs {
		regVar[a.varIdx[m.Cells[ci].Out]] = true
	}
	loadD := make(map[netlist.Net]bdd.Node, len(a.dffs))
	for _, ci := range a.dffs {
		d := mgr.Restrict(vals0[m.Cells[ci].In[0]], loadVar, true)
		for _, v := range mgr.Support(d) {
			if regVar[v] {
				a.baseErr = fmt.Errorf("prove: register %q load value depends on register state: "+
					"registers are not initialised by the load cycle",
					m.NetName(m.Cells[ci].Out))
				a.mgr, a.vals1 = nil, nil
				return
			}
		}
		loadD[m.Cells[ci].Out] = d
	}
	a.vals1 = a.build(func(n netlist.Net) bdd.Node {
		if d, ok := loadD[n]; ok {
			return d
		}
		if n == a.loadNet {
			return bdd.False
		}
		return freeVar(n)
	})
	a.notePeak()
}

func (a *Analyzer) notePeak() {
	if a.mgr != nil && a.mgr.Size() > a.peak {
		a.peak = a.mgr.Size()
	}
}

// reset discards the BDD state after a budget overflow so the next
// location starts from a fresh manager.
func (a *Analyzer) reset() {
	a.mgr = nil
	a.vals1 = nil
}

// BaseNodes builds (if needed) the clean-execution BDDs and returns the
// manager's live node count — the ordering-sensitive cost the bdd package
// benchmark pins for the PRESENT-80 cones.
func (a *Analyzer) BaseNodes() (int, error) {
	var n int
	err := bdd.Guarded(func() {
		a.ensureBase()
		if a.mgr != nil {
			n = a.mgr.Size()
		}
	})
	if err != nil {
		return 0, err
	}
	if a.baseErr != nil {
		return 0, a.baseErr
	}
	return n, nil
}

// Prove decides the three checks for one fault at one location, injected
// during the first computation cycle. Budget overflows yield unknown
// verdicts after one retry on a fresh manager; the returned error is
// reserved for locations or modules outside the analysis model.
func (a *Analyzer) Prove(loc Location, model fault.Model) (LocationResult, error) {
	start := time.Now()
	lr := LocationResult{Location: loc, Model: model}
	if loc.Net <= 0 || int(loc.Net) > a.m.NumNets() {
		return lr, fmt.Errorf("prove: location net %d out of range", loc.Net)
	}
	for attempt := 0; ; attempt++ {
		err := bdd.Guarded(func() {
			a.ensureBase()
			if a.baseErr == nil {
				a.proveAt(&lr)
			}
		})
		if a.baseErr != nil {
			return lr, a.baseErr
		}
		if err == nil {
			break
		}
		a.reset()
		if attempt == 1 {
			for c := Check(0); c < NumChecks; c++ {
				lr.Checks[c] = CheckResult{Check: c, Verdict: VerdictUnknown}
			}
			lr.Nodes = a.budget
			break
		}
	}
	met.Load().countLocation(time.Since(start).Nanoseconds(), a.peak)
	return lr, nil
}

// proveAt runs the faulted passes and the counts. Runs under bdd.Guarded.
func (a *Analyzer) proveAt(lr *LocationResult) {
	m, mgr := a.m, a.mgr
	clean := a.vals1
	L := lr.Location.Net

	var faultVal bdd.Node
	switch lr.Model {
	case fault.StuckAt0:
		faultVal = bdd.False
	case fault.StuckAt1:
		faultVal = bdd.True
	default:
		faultVal = mgr.Not(clean[L])
	}

	// Faulted injection cycle: override the location net and recompute
	// its combinational fanout cone.
	valsF := append([]bdd.Node(nil), clean...)
	valsF[L] = faultVal
	inCone := a.fanoutCone(L)
	for _, ci := range a.order {
		if !inCone[ci] {
			continue
		}
		if v, ok := foldCell(mgr, &m.Cells[ci], valsF); ok {
			valsF[m.Cells[ci].Out] = v
		}
	}

	// U — the fault is ineffective: every stored and released bit is
	// unchanged at the injection cycle. Untouched nets share the clean
	// BDD node, so only the cone contributes conjuncts.
	u := bdd.True
	for _, n := range a.obsNets {
		if valsF[n] != clean[n] {
			u = mgr.And(u, mgr.Xnor(valsF[n], clean[n]))
		}
	}

	// D — the fault is detected: the flag at the injection cycle, or (for
	// sequential modules) at the cycle after it, when the comparator reads
	// the corrupted registers. The flag cone is rebuilt over the faulted
	// next-state; λ draws are reused across the two cycles.
	d := bdd.False
	for _, n := range a.flagBits {
		d = mgr.Or(d, valsF[n])
	}
	if len(a.dffs) > 0 && len(a.flagBits) > 0 {
		vals2 := a.nextCycleFlag(valsF)
		for _, n := range a.flagBits {
			d = mgr.Or(d, vals2[n])
		}
	}

	lr.Checks[CheckIneffectiveBias] = a.checkResult(CheckIneffectiveBias, mgr.CountRandom(u, a.part))
	lr.Checks[CheckFlagIndependence] = a.checkResult(CheckFlagIndependence, mgr.CountRandom(d, a.part))
	lr.Checks[CheckSIFAIndependence] = a.checkResult(CheckSIFAIndependence,
		mgr.CondCountRandom(mgr.And(u, d), u, a.part))
	lr.Nodes = mgr.Size()
	a.notePeak()
}

// nextCycleFlag evaluates the flag output one cycle after injection:
// register outputs become the faulted next-state functions, the load
// strobe is 0, and only the flag's fanin cone is folded.
func (a *Analyzer) nextCycleFlag(valsF []bdd.Node) []bdd.Node {
	m, mgr := a.m, a.mgr
	vals2 := make([]bdd.Node, m.NumNets()+1)
	for n := netlist.Net(1); int(n) <= m.NumNets(); n++ {
		// Non-source nets outside the flag cone keep a dead placeholder.
		if a.varIdx[n] >= 0 {
			vals2[n] = mgr.Var(a.varIdx[n])
		}
	}
	for _, ci := range a.dffs {
		vals2[m.Cells[ci].Out] = valsF[m.Cells[ci].In[0]]
	}
	if a.loadNet != 0 {
		vals2[a.loadNet] = bdd.False
	}
	for _, ci := range a.order {
		if !a.coneSet[ci] {
			continue
		}
		if v, ok := foldCell(mgr, &m.Cells[ci], vals2); ok {
			vals2[m.Cells[ci].Out] = v
		}
	}
	return vals2
}

// fanoutCone marks the cells in the combinational fanout cone of the net.
func (a *Analyzer) fanoutCone(root netlist.Net) []bool {
	m := a.m
	inCone := make([]bool, len(m.Cells))
	seen := make([]bool, m.NumNets()+1)
	stack := []netlist.Net{root}
	seen[root] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ci := range a.fanouts[n] {
			cell := &m.Cells[ci]
			inCone[ci] = true
			if cell.Kind.IsSequential() {
				continue
			}
			if out := cell.Out; out > 0 && !seen[out] {
				seen[out] = true
				stack = append(stack, out)
			}
		}
	}
	return inCone
}

// checkResult translates a count's key-(in)dependence into a verdict,
// extracting a named witness for dependent counts.
func (a *Analyzer) checkResult(ch Check, c *bdd.Count) CheckResult {
	if !c.KeyDependent() {
		return CheckResult{Check: ch, Verdict: VerdictIndependent}
	}
	w := c.Witness()
	wit := &Witness{Key: a.varName(w.KeyVar), Lo: w.Lo, Hi: w.Hi}
	for _, l := range w.Assign {
		wit.Assign = append(wit.Assign, Assignment{Name: a.varName(l.Var), Value: l.Value})
	}
	return CheckResult{Check: ch, Verdict: VerdictDependent, Witness: wit}
}
