package prove

import (
	"strings"
	"testing"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netlist"
)

func buildPresent(t *testing.T, opts core.Options) *core.Design {
	t.Helper()
	return core.MustBuild(present.Spec(), opts)
}

// TestProtectedPresent80Independent is the paper's behavioural guarantee,
// proved instead of sampled: for the protected cores, at every declared
// fault location and under every fault model, all three independence
// checks hold over all 2^n inputs.
func TestProtectedPresent80Independent(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts core.Options
	}{
		{"three-in-one-prime", core.Options{Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPrime}},
		{"three-in-one-per-round", core.Options{Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPerRound}},
		{"three-in-one-per-sbox", core.Options{Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPerSbox}},
		{"acisp-prime", core.Options{Scheme: core.SchemeACISP, Entropy: core.EntropyPrime}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := buildPresent(t, tc.opts)
			res, err := Run(d.Mod, Options{})
			if err != nil {
				t.Fatal(err)
			}
			wantLocs := 2 * present.Spec().NumSboxes() * present.Spec().SboxBits
			if got := len(res.Locations); got != wantLocs*len(Models()) {
				t.Fatalf("proved %d (location, model) pairs, want %d", got, wantLocs*len(Models()))
			}
			for _, lr := range res.Locations {
				for _, cr := range lr.Checks {
					if cr.Verdict != VerdictIndependent {
						t.Errorf("%s at %s (%s): %s, want proved-independent (witness: %v)",
							cr.Check, lr.Location.Name, lr.Model, cr.Verdict, cr.Witness)
					}
				}
			}
			if !res.Clean() {
				t.Fatalf("protected core not clean: %d dependent, %d unknown", res.Dependent, res.Unknown)
			}
			if res.Proved != len(res.Locations) {
				t.Fatalf("proved aggregate %d != %d locations", res.Proved, len(res.Locations))
			}
		})
	}
}

// TestNaiveDupDependent pins the differential statement: without λ
// randomisation, stuck-at faults at the S-box inputs bias the ineffective
// event by key material, and the prover names a concrete witness.
func TestNaiveDupDependent(t *testing.T) {
	d := buildPresent(t, core.Options{Scheme: core.SchemeNaiveDup})
	a, err := NewAnalyzer(d.Mod, 0)
	if err != nil {
		t.Fatal(err)
	}
	locs := a.Locations()
	if len(locs) == 0 {
		t.Fatal("no tagged fault points on the naive-dup core")
	}
	for _, loc := range locs {
		for _, model := range []fault.Model{fault.StuckAt0, fault.StuckAt1} {
			lr, err := a.Prove(loc, model)
			if err != nil {
				t.Fatal(err)
			}
			cr := lr.Checks[CheckIneffectiveBias]
			if cr.Verdict != VerdictDependent {
				t.Fatalf("%s at %s (%s): %s, want dependent", cr.Check, loc.Name, model, cr.Verdict)
			}
			if cr.Witness == nil {
				t.Fatalf("dependent verdict at %s without witness", loc.Name)
			}
			if !strings.HasPrefix(cr.Witness.Key, "key") {
				t.Fatalf("witness key variable %q is not a key net", cr.Witness.Key)
			}
		}
		// A transient flip is always effective or detected regardless of
		// the key: the flip never leaves data unchanged.
		lr, err := a.Prove(loc, fault.BitFlip)
		if err != nil {
			t.Fatal(err)
		}
		if v := lr.Checks[CheckIneffectiveBias].Verdict; v != VerdictIndependent {
			t.Fatalf("bit-flip ineffective-bias at %s: %s, want proved-independent", loc.Name, v)
		}
	}
}

// TestUnprotectedDependent: the bare core has no detection and no
// randomness, so stuck-at ineffectiveness is a direct key predicate.
func TestUnprotectedDependent(t *testing.T) {
	d := buildPresent(t, core.Options{Scheme: core.SchemeUnprotected})
	res, err := Run(d.Mod, Options{Models: []fault.Model{fault.StuckAt0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dependent == 0 {
		t.Fatal("unprotected core proved independent — the prover lost the SIFA bias")
	}
	for _, lr := range res.Locations {
		if lr.Checks[CheckIneffectiveBias].Verdict != VerdictDependent {
			t.Fatalf("ineffective-bias at %s: %s, want dependent",
				lr.Location.Name, lr.Checks[CheckIneffectiveBias].Verdict)
		}
		// No real detection flag (constant 0): its distribution is
		// trivially key-independent.
		if lr.Checks[CheckFlagIndependence].Verdict != VerdictIndependent {
			t.Fatalf("flag-key-independence at %s: %s, want proved-independent",
				lr.Location.Name, lr.Checks[CheckFlagIndependence].Verdict)
		}
	}
}

// comb builds the three-gate conditional-bias module used across the
// fixture tests: din/key public/key inputs, λ randomness, an encoded data
// wire and a blinded key-dependent flag.
func combFixture(t *testing.T) (*netlist.Module, netlist.Net) {
	t.Helper()
	m := netlist.New("sifa_cond_bias")
	din := m.AddInput("din", 1)
	key := m.AddInput("key", 1)
	lam := m.AddInput("lambda", 1)
	a1 := m.And(din[0], key[0])
	v := m.Xor(lam[0], din[0])
	flag := m.Xor(lam[0], a1)
	m.AddOutput("ct", netlist.Bus{v})
	m.AddOutput("fault", netlist.Bus{flag})
	m.SetTag(v, "fp.v")
	return m, v
}

// TestConditionalBias exercises the check the tentpole exists for: both
// marginals (ineffectiveness count, detection count) are uniform thanks to
// λ, yet the joint distribution is key-biased — only the conditional
// check catches it.
func TestConditionalBias(t *testing.T) {
	m, v := combFixture(t)
	a, err := NewAnalyzer(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	locs := a.Locations()
	if len(locs) != 1 || locs[0].Net != v {
		t.Fatalf("tagged locations = %+v, want the fp.v net", locs)
	}
	for _, tc := range []struct {
		model fault.Model
		want  [NumChecks]Verdict
	}{
		{fault.StuckAt0, [NumChecks]Verdict{VerdictIndependent, VerdictIndependent, VerdictDependent}},
		{fault.StuckAt1, [NumChecks]Verdict{VerdictIndependent, VerdictIndependent, VerdictDependent}},
		{fault.BitFlip, [NumChecks]Verdict{VerdictIndependent, VerdictIndependent, VerdictIndependent}},
	} {
		lr, err := a.Prove(locs[0], tc.model)
		if err != nil {
			t.Fatal(err)
		}
		for c := Check(0); c < NumChecks; c++ {
			if lr.Checks[c].Verdict != tc.want[c] {
				t.Errorf("%s under %s: %s, want %s", c, tc.model, lr.Checks[c].Verdict, tc.want[c])
			}
		}
		if w := lr.Checks[CheckSIFAIndependence].Witness; tc.want[CheckSIFAIndependence] == VerdictDependent {
			if w == nil {
				t.Fatalf("dependent conditional under %s without witness", tc.model)
			}
			if w.Key != "key[0]" {
				t.Errorf("witness key = %q, want key[0]", w.Key)
			}
		}
	}
}

// TestBudgetUnknown: an absurdly small budget must degrade to unknown
// verdicts — never an error, never unbounded growth.
func TestBudgetUnknown(t *testing.T) {
	d := buildPresent(t, core.Options{Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPrime})
	a, err := NewAnalyzer(d.Mod, 64)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := a.Prove(a.Locations()[0], fault.StuckAt0)
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range lr.Checks {
		if cr.Verdict != VerdictUnknown {
			t.Fatalf("check %s under budget 64: %s, want unknown", cr.Check, cr.Verdict)
		}
	}
	if lr.Verdict() != VerdictUnknown {
		t.Fatalf("aggregate verdict %s, want unknown", lr.Verdict())
	}
}

// TestSequentialModelErrors: modules outside the model are rejected with
// a diagnosable error rather than a wrong proof.
func TestSequentialModelErrors(t *testing.T) {
	m := netlist.New("no_load")
	din := m.AddInput("din", 1)
	q := m.DFF(din[0])
	m.AddOutput("ct", netlist.Bus{q})
	if _, err := NewAnalyzer(m, 0); err == nil || !strings.Contains(err.Error(), "load") {
		t.Fatalf("sequential module without load: err = %v, want load-port error", err)
	}

	// A register whose load value depends on another register cannot be
	// grounded by the load cycle.
	m2 := netlist.New("uninit_reg")
	loadB := m2.AddInput("load", 1)
	d0 := m2.NewNet("q1_loop")
	q1 := m2.DFF(d0)
	m2.AddCell(netlist.KindBuf, d0, q1)
	_ = loadB
	m2.AddOutput("ct", netlist.Bus{q1})
	a, err := NewAnalyzer(m2, 0)
	if err != nil {
		t.Fatal(err)
	}
	tagged := m2.SetTag(d0, "fp.x")
	if !tagged {
		t.Fatal("SetTag failed")
	}
	if _, err := a.Prove(a.Locations()[0], fault.StuckAt0); err == nil ||
		!strings.Contains(err.Error(), "not initialised") {
		t.Fatalf("uninitialised register: err = %v, want initialisation error", err)
	}
}

// TestVerdictStrings pins the report vocabulary the issue specifies.
func TestVerdictStrings(t *testing.T) {
	if s := VerdictIndependent.String(); s != "proved-independent" {
		t.Errorf("VerdictIndependent = %q", s)
	}
	if s := VerdictDependent.String(); s != "dependent" {
		t.Errorf("VerdictDependent = %q", s)
	}
	if s := VerdictUnknown.String(); s != "unknown (node budget)" {
		t.Errorf("VerdictUnknown = %q", s)
	}
	for c := Check(0); c < NumChecks; c++ {
		if strings.Contains(c.RuleID(), "Check(") {
			t.Errorf("check %d has no rule ID", c)
		}
	}
}
