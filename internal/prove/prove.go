// Package prove is the formal SIFA-independence prover: where sconelint's
// rules prove the countermeasure's *structural* obligations and fault
// campaigns *sample* its behavioural ones, prove decides them exactly. For
// every injectable fault location it builds the faulted cone as BDDs and
// computes, by exact model counting over the randomness variables (λ and
// garbage), whether the distributions of the three campaign outcomes —
// ineffective, detected, effective — depend on key material:
//
//   - ineffective-bias: the number of randomness assignments under which
//     the fault leaves all stored state and outputs unchanged must be the
//     same for every key (otherwise filtering for correct ciphertexts à la
//     SIFA reveals key information);
//   - flag-key-independence: the number of randomness assignments raising
//     the detection flag must be the same for every key (otherwise the
//     detection *rate* is a side channel);
//   - sifa-independence: the distribution of detection conditioned on the
//     fault being ineffective must not depend on the key — the exact
//     conditional the Graz "Proving SIFA Protection" approach checks, and
//     honest even where the two marginals above are individually biased.
//
// Counts are exact big-integer values (bdd.CountRandom), so a verdict of
// "proved-independent" is a proof over all 2^n inputs, not a sample; a
// "dependent" verdict carries a concrete witness assignment; "unknown" is
// returned only when the configured BDD node budget is exceeded.
//
// The analysis model is one fault injected during the first computation
// cycle (cycle 1, the round after load), observed at the injection cycle
// and the cycle after it — when the comparator sees the corrupted
// registers. λ input draws are reused across the two analysed cycles.
package prove

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/netlist"
)

// DefaultBudget is the BDD node cap used when Options.Budget is zero —
// the same ceiling the lint BDD rules run under.
const DefaultBudget = 4 << 20

// Check enumerates the three independence obligations proved per fault
// location.
type Check int

// The three checks, in report order.
const (
	// CheckIneffectiveBias proves the count of randomness assignments
	// making the fault ineffective is key-independent.
	CheckIneffectiveBias Check = iota
	// CheckFlagIndependence proves the count of randomness assignments
	// raising the detection flag is key-independent.
	CheckFlagIndependence
	// CheckSIFAIndependence proves the conditional distribution of
	// detection given ineffectiveness is key-independent.
	CheckSIFAIndependence
	// NumChecks is the number of checks per (location, model) pair.
	NumChecks
)

// RuleID returns the sconelint rule name of the check.
func (c Check) RuleID() string {
	switch c {
	case CheckIneffectiveBias:
		return "ineffective-bias"
	case CheckFlagIndependence:
		return "flag-key-independence"
	case CheckSIFAIndependence:
		return "sifa-independence"
	default:
		return fmt.Sprintf("Check(%d)", int(c))
	}
}

// String names the check after its rule.
func (c Check) String() string { return c.RuleID() }

// Verdict is the outcome of one check at one fault location.
type Verdict int

// Verdicts, ordered so that a higher value dominates when aggregating.
const (
	// VerdictIndependent: proved key-independent over all inputs.
	VerdictIndependent Verdict = iota
	// VerdictUnknown: the BDD node budget was exceeded before a proof.
	VerdictUnknown
	// VerdictDependent: key-dependent, with a concrete witness.
	VerdictDependent
)

// String renders the verdict as the reports print it.
func (v Verdict) String() string {
	switch v {
	case VerdictIndependent:
		return "proved-independent"
	case VerdictDependent:
		return "dependent"
	case VerdictUnknown:
		return "unknown (node budget)"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Assignment is one pinned variable of a witness, named after its net.
type Assignment struct {
	Name  string `json:"name"`
	Value bool   `json:"value"`
}

// Witness is a concrete key-dependence certificate: under the pinned
// assignment (unlisted variables are don't-care), flipping the key
// variable Key moves the count from Lo to Hi.
type Witness struct {
	Key    string       `json:"key"`
	Assign []Assignment `json:"assign,omitempty"`
	Lo     string       `json:"lo"`
	Hi     string       `json:"hi"`
}

// String renders the witness compactly.
func (w *Witness) String() string {
	s := ""
	for _, a := range w.Assign {
		v := "0"
		if a.Value {
			v = "1"
		}
		s += a.Name + "=" + v + " "
	}
	return fmt.Sprintf("%skey bit %s separates counts %s vs %s", s, w.Key, w.Lo, w.Hi)
}

// CheckResult is one check's outcome.
type CheckResult struct {
	Check   Check    `json:"check"`
	Verdict Verdict  `json:"verdict"`
	Witness *Witness `json:"witness,omitempty"`
}

// Location is one injectable fault point: a net plus the fault-point tag
// that selected it.
type Location struct {
	Net  netlist.Net `json:"net"`
	Name string      `json:"name"`
	Tag  string      `json:"tag,omitempty"`
}

// LocationResult is the prover's output for one (location, model) pair.
type LocationResult struct {
	Location Location               `json:"location"`
	Model    fault.Model            `json:"model"`
	Checks   [NumChecks]CheckResult `json:"checks"`
	// Nodes is the manager's live BDD node count after this location.
	Nodes int `json:"nodes"`
}

// Verdict aggregates the location's checks: the worst individual verdict.
func (lr *LocationResult) Verdict() Verdict {
	v := VerdictIndependent
	for i := range lr.Checks {
		if lr.Checks[i].Verdict > v {
			v = lr.Checks[i].Verdict
		}
	}
	return v
}

// Result is a full prover run over one module.
type Result struct {
	Module string `json:"module"`
	Budget int    `json:"budget"`
	// Locations holds one entry per (location, model) pair, locations
	// outer, models inner — the order the service checkpoints in.
	Locations []LocationResult `json:"locations"`
	// Aggregates over per-location aggregate verdicts.
	Proved    int `json:"proved"`
	Dependent int `json:"dependent"`
	Unknown   int `json:"unknown"`
	// PeakNodes is the highest live BDD node count seen during the run.
	PeakNodes int `json:"peak_nodes"`
}

// Clean reports whether every (location, model) pair proved independent.
func (r *Result) Clean() bool { return r.Dependent == 0 && r.Unknown == 0 }

// Models returns the default fault models proved per location.
func Models() []fault.Model {
	return []fault.Model{fault.StuckAt0, fault.StuckAt1, fault.BitFlip}
}

// Options configures a prover run.
type Options struct {
	// Budget caps the BDD manager's live nodes; 0 means DefaultBudget.
	Budget int
	// Models are the fault models proved per location; nil means Models().
	Models []fault.Model
	// Locations overrides the fault locations; nil means the module's
	// tagged fault points (TaggedLocations).
	Locations []Location
}

// Run proves all three checks for every (location, model) pair of the
// module. It returns an error for modules the analysis model does not
// cover (combinational loops, sequential modules without a load port,
// registers not initialised by the load cycle); budget overflows are not
// errors — they surface as unknown verdicts.
func Run(m *netlist.Module, opts Options) (*Result, error) {
	a, err := NewAnalyzer(m, opts.Budget)
	if err != nil {
		return nil, err
	}
	locs := opts.Locations
	if locs == nil {
		locs = a.Locations()
	}
	models := opts.Models
	if models == nil {
		models = Models()
	}
	res := &Result{Module: m.Name, Budget: a.Budget()}
	for _, loc := range locs {
		for _, model := range models {
			lr, err := a.Prove(loc, model)
			if err != nil {
				return nil, err
			}
			res.Add(lr)
		}
	}
	res.PeakNodes = a.PeakNodes()
	return res, nil
}

// Add appends one location result and updates the aggregate counters,
// so resumed runs can rebuild a Result from checkpointed entries.
func (r *Result) Add(lr LocationResult) {
	r.Locations = append(r.Locations, lr)
	switch lr.Verdict() {
	case VerdictIndependent:
		r.Proved++
	case VerdictDependent:
		r.Dependent++
	default:
		r.Unknown++
	}
	if lr.Nodes > r.PeakNodes {
		r.PeakNodes = lr.Nodes
	}
}
