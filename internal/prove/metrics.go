package prove

import (
	"sync/atomic"

	"repro/internal/obs"
)

// metrics is the prover's instrument set, swapped in atomically by
// EnableObservability following the fault engine's pattern: one pointer
// load per proved location while observability is disabled.
type metrics struct {
	locations  *obs.Counter
	peakNodes  *obs.Gauge
	locationNS *obs.Histogram
}

var met atomic.Pointer[metrics]

// EnableObservability registers the prover's metrics on reg and starts
// recording into them. Passing nil reverts to the free no-op default.
func EnableObservability(reg *obs.Registry) {
	if reg == nil {
		met.Store(nil)
		return
	}
	met.Store(&metrics{
		locations: reg.NewCounter("scone_prove_locations_total",
			"Fault locations proved (one per location x model pair)"),
		peakNodes: reg.NewGauge("scone_prove_bdd_peak_nodes_count",
			"Peak live BDD nodes across prover analyses"),
		locationNS: reg.NewHistogram("scone_prove_location_ns",
			"Wall time proving one fault location", obs.ExpBuckets(100_000, 4, 14)),
	})
}

// countLocation records one proved (location, model) pair.
func (m *metrics) countLocation(ns int64, peak int) {
	if m == nil {
		return
	}
	m.locations.Inc()
	m.locationNS.Observe(ns)
	if int64(peak) > m.peakNodes.Value() {
		m.peakNodes.Set(int64(peak))
	}
}
