package bits

import "math/bits"

// GF(2) matrix utilities for general SPN linear layers. A matrix over up
// to 64 columns is represented as rows []uint64, where bit i of rows[j]
// says that input bit i contributes (XORs) into output bit j.

// MatMulVec multiplies the matrix by the column vector x: output bit j is
// the parity of rows[j] AND x.
func MatMulVec(rows []uint64, x uint64) uint64 {
	var y uint64
	for j, r := range rows {
		y |= uint64(bits.OnesCount64(r&x)&1) << uint(j)
	}
	return y
}

// PermutationRows materialises a bit permutation (output bit perm[i] =
// input bit i) as a matrix.
func PermutationRows(perm []int) []uint64 {
	rows := make([]uint64, len(perm))
	for i, p := range perm {
		rows[p] = 1 << uint(i)
	}
	return rows
}

// MatInvert returns the inverse matrix over GF(2), or ok=false if the
// matrix is singular. Standard Gauss-Jordan elimination on an augmented
// system.
func MatInvert(rows []uint64) (inv []uint64, ok bool) {
	n := len(rows)
	a := append([]uint64(nil), rows...)
	inv = make([]uint64, n)
	for j := range inv {
		inv[j] = 1 << uint(j)
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if a[r]&(1<<uint(col)) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		for r := 0; r < n; r++ {
			if r != col && a[r]&(1<<uint(col)) != 0 {
				a[r] ^= a[col]
				inv[r] ^= inv[col]
			}
		}
	}
	return inv, true
}

// MatIsIdentity reports whether the matrix is the identity.
func MatIsIdentity(rows []uint64) bool {
	for j, r := range rows {
		if r != 1<<uint(j) {
			return false
		}
	}
	return true
}

// RotationXORRows builds the circulant matrix of x -> x ^ (x <<< r1) ^
// (x <<< r2) ... over n bits; such layers are the cheap mixing functions
// of several lightweight designs.
func RotationXORRows(n int, rots ...int) []uint64 {
	rows := make([]uint64, n)
	for j := 0; j < n; j++ {
		for _, r := range rots {
			// Output bit j receives input bit (j - r) mod n from
			// the left-rotation by r.
			src := ((j-r)%n + n) % n
			rows[j] ^= 1 << uint(src)
		}
	}
	return rows
}
