package bits

import (
	"testing"
	"testing/quick"
)

func TestBitSetFlip(t *testing.T) {
	w := uint64(0)
	w = SetBit(w, 5, 1)
	if Bit(w, 5) != 1 || w != 32 {
		t.Fatal("SetBit/Bit wrong")
	}
	w = FlipBit(w, 5)
	if w != 0 {
		t.Fatal("FlipBit wrong")
	}
	if SetBit(^uint64(0), 0, 0) != ^uint64(0)-1 {
		t.Fatal("SetBit clear wrong")
	}
}

func TestNibbleOps(t *testing.T) {
	w := uint64(0xFEDCBA9876543210)
	for i := 0; i < 16; i++ {
		if Nibble(w, i) != uint64(i) {
			t.Fatalf("Nibble(%d) = %X", i, Nibble(w, i))
		}
	}
	if SetNibble(0, 3, 0xA) != 0xA000 {
		t.Fatal("SetNibble wrong")
	}
	if Byte(w, 1) != 0x32 {
		t.Fatal("Byte wrong")
	}
}

func TestPermute64Properties(t *testing.T) {
	perm := []int{3, 0, 1, 2, 7, 4, 5, 6}
	inv := InvertPermutation(perm)
	f := func(x uint8) bool {
		w := uint64(x)
		return Permute64(Permute64(w, perm), inv) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Popcount preservation.
	g := func(x uint8) bool {
		w := uint64(x)
		return OnesCount64(Permute64(w, perm)) == OnesCount64(w)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestInvertPermutationPanicsOnBad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	InvertPermutation([]int{0, 0, 1})
}

func TestIsPermutation(t *testing.T) {
	if !IsPermutation([]int{2, 0, 1}) {
		t.Error("valid permutation rejected")
	}
	if IsPermutation([]int{0, 0, 1}) || IsPermutation([]int{0, 3, 1}) {
		t.Error("invalid permutation accepted")
	}
}

func TestToFromBitsRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		return FromBits(ToBits(x, 64)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMask(t *testing.T) {
	if Mask(0) != 0 || Mask(1) != 1 || Mask(64) != ^uint64(0) || Mask(16) != 0xFFFF {
		t.Fatal("Mask wrong")
	}
}

func TestHexAndBinary(t *testing.T) {
	if Hex(0xAB, 8) != "AB" || Hex(0xAB, 12) != "0AB" {
		t.Fatalf("Hex wrong: %s %s", Hex(0xAB, 8), Hex(0xAB, 12))
	}
	if Binary(0b1010, 4) != "1010" {
		t.Fatalf("Binary wrong: %q", Binary(0b1010, 4))
	}
	if Binary(0x35, 8) != "0011 0101" {
		t.Fatalf("Binary grouping wrong: %q", Binary(0x35, 8))
	}
}

func TestReverseBits(t *testing.T) {
	if ReverseBits(0b0001, 4) != 0b1000 {
		t.Fatal("ReverseBits wrong")
	}
	f := func(x uint16) bool {
		w := uint64(x)
		return ReverseBits(ReverseBits(w, 16), 16) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpreadNibbles(t *testing.T) {
	got := SpreadNibbles(0x1234, 4, func(x uint64) uint64 { return 15 - x })
	if got != 0xEDCB {
		t.Fatalf("SpreadNibbles = %X", got)
	}
}

func TestParityAndHamming(t *testing.T) {
	if Parity(0b1011) != 1 || Parity(0b11) != 0 {
		t.Fatal("Parity wrong")
	}
	if HammingDistance(0xFF, 0x0F) != 4 {
		t.Fatal("HammingDistance wrong")
	}
}

func TestRotateLeft64(t *testing.T) {
	if RotateLeft64(1, 1) != 2 || RotateLeft64(1<<63, 1) != 1 {
		t.Fatal("RotateLeft64 wrong")
	}
}
