// Package bits provides small bit-manipulation helpers shared by the cipher
// models, the netlist builders and the fault-simulation harnesses.
//
// Unless stated otherwise, bit index 0 is the least-significant bit of a
// word, matching the numbering used by the PRESENT specification.
package bits

import (
	"fmt"
	"math/bits"
	"strings"
)

// Bit returns bit i (0 = LSB) of w as 0 or 1.
func Bit(w uint64, i int) uint64 {
	return (w >> uint(i)) & 1
}

// SetBit returns w with bit i set to v (v must be 0 or 1).
func SetBit(w uint64, i int, v uint64) uint64 {
	w &^= 1 << uint(i)
	w |= (v & 1) << uint(i)
	return w
}

// FlipBit returns w with bit i complemented.
func FlipBit(w uint64, i int) uint64 {
	return w ^ (1 << uint(i))
}

// Nibble returns the i-th 4-bit group of w (i = 0 is the least-significant
// nibble).
func Nibble(w uint64, i int) uint64 {
	return (w >> uint(4*i)) & 0xF
}

// SetNibble returns w with the i-th 4-bit group replaced by v (low 4 bits).
func SetNibble(w uint64, i int, v uint64) uint64 {
	w &^= 0xF << uint(4*i)
	w |= (v & 0xF) << uint(4*i)
	return w
}

// Byte returns the i-th byte of w (i = 0 is the least-significant byte).
func Byte(w uint64, i int) uint64 {
	return (w >> uint(8*i)) & 0xFF
}

// OnesCount64 reports the number of set bits in w.
func OnesCount64(w uint64) int { return bits.OnesCount64(w) }

// Parity returns the XOR of all bits of w.
func Parity(w uint64) uint64 { return uint64(bits.OnesCount64(w) & 1) }

// RotateLeft64 rotates w left by k within 64 bits.
func RotateLeft64(w uint64, k int) uint64 { return bits.RotateLeft64(w, k) }

// Permute64 applies a bit permutation to the low n bits of w: output bit
// perm[i] receives input bit i. Bits at positions >= n must be zero in w and
// are zero in the result. perm must be a permutation of 0..n-1.
func Permute64(w uint64, perm []int) uint64 {
	var out uint64
	for i, p := range perm {
		out |= Bit(w, i) << uint(p)
	}
	return out
}

// InvertPermutation returns the inverse permutation q with q[perm[i]] = i.
// It panics if perm is not a permutation of 0..len(perm)-1.
func InvertPermutation(perm []int) []int {
	inv := make([]int, len(perm))
	seen := make([]bool, len(perm))
	for i, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			panic(fmt.Sprintf("bits: not a permutation: value %d at index %d", p, i))
		}
		seen[p] = true
		inv[p] = i
	}
	return inv
}

// IsPermutation reports whether perm is a permutation of 0..len(perm)-1.
func IsPermutation(perm []int) bool {
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || p >= len(perm) || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// ToBits expands the low n bits of w into a slice, index 0 = LSB.
func ToBits(w uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = Bit(w, i)
	}
	return out
}

// FromBits packs bs (index 0 = LSB, each entry 0 or 1) into a word.
func FromBits(bs []uint64) uint64 {
	var w uint64
	for i, b := range bs {
		w |= (b & 1) << uint(i)
	}
	return w
}

// Hex formats the low n bits of w as an upper-case hexadecimal string with
// ceil(n/4) digits.
func Hex(w uint64, n int) string {
	digits := (n + 3) / 4
	return fmt.Sprintf("%0*X", digits, w&Mask(n))
}

// Mask returns a word with the low n bits set (n in 0..64).
func Mask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (1 << uint(n)) - 1
}

// Binary formats the low n bits of w MSB-first, grouped in nibbles.
func Binary(w uint64, n int) string {
	var sb strings.Builder
	for i := n - 1; i >= 0; i-- {
		sb.WriteByte(byte('0' + Bit(w, i)))
		if i%4 == 0 && i != 0 {
			sb.WriteByte(' ')
		}
	}
	return sb.String()
}

// ReverseBits reverses the low n bits of w (bit 0 swaps with bit n-1).
func ReverseBits(w uint64, n int) uint64 {
	var out uint64
	for i := 0; i < n; i++ {
		out |= Bit(w, i) << uint(n-1-i)
	}
	return out
}

// SpreadNibbles applies fn to every nibble of the low 4*count bits of w and
// returns the packed result. fn receives values in 0..15 and must return
// values in 0..15.
func SpreadNibbles(w uint64, count int, fn func(uint64) uint64) uint64 {
	var out uint64
	for i := 0; i < count; i++ {
		out = SetNibble(out, i, fn(Nibble(w, i)))
	}
	return out
}

// HammingDistance reports the number of differing bits between a and b.
func HammingDistance(a, b uint64) int { return bits.OnesCount64(a ^ b) }
