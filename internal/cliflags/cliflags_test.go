package cliflags

import (
	"flag"
	"io"
	"testing"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

// TestFlagSurface pins the shared design flag surface: names, defaults and
// the -cipher alias. Every scone CLI registers exactly this set, so a drift
// here is a drift in all of them.
func TestFlagSurface(t *testing.T) {
	fs := newFS()
	RegisterDesign(fs)
	for _, tc := range []struct {
		name, def string
	}{
		{"spec", DefaultSpec},
		{"cipher", DefaultSpec},
		{"scheme", DefaultScheme},
		{"entropy", DefaultEntropy},
		{"engine", DefaultEngine},
	} {
		f := fs.Lookup(tc.name)
		if f == nil {
			t.Errorf("-%s not registered", tc.name)
			continue
		}
		if f.DefValue != tc.def {
			t.Errorf("-%s default %q, want %q", tc.name, f.DefValue, tc.def)
		}
	}
}

// TestParseTable drives the shared surface through the service vocabulary:
// aliases land on the same field, every published spelling parses, and
// unknown values are rejected with an error.
func TestParseTable(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want Design
		bad  bool
	}{
		{name: "defaults", args: nil,
			want: Design{Spec: "present80", Scheme: "three-in-one", Entropy: "prime", Engine: "anf"}},
		{name: "spec spelling", args: []string{"-spec", "gift64"},
			want: Design{Spec: "gift64", Scheme: "three-in-one", Entropy: "prime", Engine: "anf"}},
		{name: "cipher alias", args: []string{"-cipher", "scone64"},
			want: Design{Spec: "scone64", Scheme: "three-in-one", Entropy: "prime", Engine: "anf"}},
		{name: "full selection", args: []string{"-spec", "present80", "-scheme", "acisp", "-entropy", "per-round", "-engine", "bdd"},
			want: Design{Spec: "present80", Scheme: "acisp", Entropy: "per-round", Engine: "bdd"}},
		{name: "unknown spec", args: []string{"-spec", "des"}, bad: true},
		{name: "unknown scheme", args: []string{"-scheme", "quadruple"}, bad: true},
		{name: "unknown entropy", args: []string{"-entropy", "cosmic"}, bad: true},
		{name: "unknown engine", args: []string{"-engine", "verilog"}, bad: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fs := newFS()
			d := RegisterDesign(fs)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			_, _, err := d.Parse()
			if tc.bad {
				if err == nil {
					t.Fatalf("vocabulary accepted: %+v", d)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if *d != tc.want {
				t.Fatalf("parsed %+v, want %+v", *d, tc.want)
			}
		})
	}
}

func TestIsDefault(t *testing.T) {
	fs := newFS()
	d := RegisterDesign(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if !d.IsDefault() {
		t.Fatal("unparsed surface should be default")
	}
	fs = newFS()
	d = RegisterDesign(fs)
	if err := fs.Parse([]string{"-entropy", "per-sbox"}); err != nil {
		t.Fatal(err)
	}
	if d.IsDefault() {
		t.Fatal("-entropy override not detected")
	}
}

// TestEngineFlagSurface pins the shared engine-configuration surface the
// same way TestFlagSurface pins the design surface.
func TestEngineFlagSurface(t *testing.T) {
	fs := newFS()
	RegisterEngine(fs)
	for _, tc := range []struct {
		name, def string
	}{
		{"lanes", "1"},
		{"parallel", "0"},
		{"batch-runs", "0"},
	} {
		f := fs.Lookup(tc.name)
		if f == nil {
			t.Errorf("-%s not registered", tc.name)
			continue
		}
		if f.DefValue != tc.def {
			t.Errorf("-%s default %q, want %q", tc.name, f.DefValue, tc.def)
		}
	}
}

func TestEngineConfig(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		bad  bool
	}{
		{name: "defaults", args: nil},
		{name: "wide parallel", args: []string{"-lanes", "4", "-parallel", "8", "-batch-runs", "1024"}},
		{name: "bad width", args: []string{"-lanes", "3"}, bad: true},
		{name: "negative parallel", args: []string{"-parallel", "-1"}, bad: true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fs := newFS()
			e := RegisterEngine(fs)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			cfg, err := e.Config()
			if tc.bad {
				if err == nil {
					t.Fatalf("accepted %+v", e)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if cfg.LaneWords != e.Lanes || cfg.Parallelism != e.Parallel || cfg.BatchRuns != e.BatchRuns {
				t.Fatalf("config %+v does not mirror flags %+v", cfg, e)
			}
		})
	}
}

func TestBuildDefault(t *testing.T) {
	fs := newFS()
	d := RegisterDesign(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	des, err := d.Build()
	if err != nil {
		t.Fatal(err)
	}
	if des.Mod == nil {
		t.Fatal("built design has no module")
	}
}
