package cliflags

import (
	"flag"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/service"
)

// The scheme vocabulary has one source of truth — the core registry — and
// three consumers: the CLI flag surface (this package), the service wire
// schema (service.ParseDesign) and the reverse mapping (core.SchemeWire).
// This table-driven test walks the registry and asserts all of them agree,
// so registering a scheme cannot silently miss a surface.
func TestSchemeVocabularySync(t *testing.T) {
	schemes := core.Schemes()
	if len(schemes) == 0 {
		t.Fatal("empty scheme registry")
	}

	var sawDefault bool
	for _, info := range schemes {
		t.Run(info.Wire, func(t *testing.T) {
			// Wire token and every alias resolve through the service
			// wire schema to the registered scheme.
			for _, token := range append([]string{info.Wire}, info.Aliases...) {
				_, opts, err := service.ParseDesign(service.DesignSpec{Scheme: token})
				if err != nil {
					t.Fatalf("ParseDesign(scheme=%q): %v", token, err)
				}
				if opts.Scheme != info.Scheme {
					t.Fatalf("ParseDesign(scheme=%q) = %v, want %v", token, opts.Scheme, info.Scheme)
				}
			}
			// The reverse mapping returns the canonical token.
			if got := core.SchemeWire(info.Scheme); got != info.Wire {
				t.Fatalf("SchemeWire(%v) = %q, want %q", info.Scheme, got, info.Wire)
			}
			// Capability flags agree with the Scheme methods.
			if info.Duplicated != info.Scheme.Duplicated() ||
				info.UsesRandomness != info.Scheme.Randomized() ||
				info.Corrects != info.Scheme.Correcting() ||
				info.Masked != info.Scheme.Masked() {
				t.Fatalf("registry capability flags disagree with Scheme methods for %v", info.Scheme)
			}
			if info.Name != info.Scheme.String() {
				t.Fatalf("registry name %q != String() %q", info.Name, info.Scheme.String())
			}
			if info.Default {
				sawDefault = true
				if DefaultScheme != info.Wire {
					t.Fatalf("cliflags.DefaultScheme = %q, registry default = %q", DefaultScheme, info.Wire)
				}
				_, opts, err := service.ParseDesign(service.DesignSpec{})
				if err != nil {
					t.Fatalf("ParseDesign(empty scheme): %v", err)
				}
				if opts.Scheme != info.Scheme {
					t.Fatalf("empty scheme resolves to %v, want default %v", opts.Scheme, info.Scheme)
				}
			}
		})
	}
	if !sawDefault {
		t.Fatal("registry has no default scheme")
	}

	// The flag help string embeds the full vocabulary.
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	RegisterDesign(fs)
	help := fs.Lookup("scheme").Usage
	for _, info := range schemes {
		if !strings.Contains(help, info.Wire) {
			t.Errorf("-scheme help %q is missing token %q", help, info.Wire)
		}
	}

	// Unknown tokens are rejected with the vocabulary in the error.
	if _, _, err := service.ParseDesign(service.DesignSpec{Scheme: "no-such-scheme"}); err == nil {
		t.Fatal("ParseDesign accepted an unknown scheme")
	} else if !strings.Contains(err.Error(), core.SchemeVocabulary()) {
		t.Errorf("unknown-scheme error %q does not list the vocabulary", err)
	}
}
