// Package cliflags gives the scone command-line tools one shared spelling
// of the design-selection flags. sconectl, sconesim, sconeattack and
// sconebench all register the same -spec / -scheme / -entropy / -engine
// surface (with identical defaults and help strings) through RegisterDesign,
// and the values flow through service.ParseDesign — the same vocabulary the
// daemon's wire schema uses — so a design named on any CLI is a design the
// HTTP API accepts verbatim. RegisterEngine does the same for the engine
// configuration surface (-lanes / -parallel / -batch-runs), which maps onto
// fault.EngineConfig.
package cliflags

import (
	"flag"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/service"
	"repro/internal/spn"
)

// Canonical defaults of the shared design flag surface: the paper's
// evaluation target (PRESENT-80, three-in-one, master-λ prime entropy).
const (
	DefaultSpec    = "present80"
	DefaultScheme  = "three-in-one"
	DefaultEntropy = "prime"
	DefaultEngine  = "anf"
)

// Design holds the shared design-selection flag values after parsing.
type Design struct {
	Spec    string
	Scheme  string
	Entropy string
	Engine  string
}

// RegisterDesign installs the shared design flag surface on fs:
//
//	-spec     cipher spec (present80, gift64, scone64); -cipher is a
//	          legacy alias bound to the same value
//	-scheme   countermeasure scheme (core.SchemeVocabulary: unprotected,
//	          naive, acisp, three-in-one, correct, masked)
//	-entropy  entropy variant (prime, per-round, per-sbox)
//	-engine   S-box synthesis engine (anf, bdd)
func RegisterDesign(fs *flag.FlagSet) *Design {
	d := &Design{}
	fs.StringVar(&d.Spec, "spec", DefaultSpec, "cipher spec: present80, gift64, scone64")
	fs.StringVar(&d.Spec, "cipher", DefaultSpec, "alias for -spec")
	fs.StringVar(&d.Scheme, "scheme", DefaultScheme, "countermeasure scheme: "+core.SchemeVocabulary())
	fs.StringVar(&d.Entropy, "entropy", DefaultEntropy, "entropy variant: prime, per-round, per-sbox")
	fs.StringVar(&d.Engine, "engine", DefaultEngine, "S-box synthesis engine: anf, bdd")
	return d
}

// IsDefault reports whether the values still match the canonical defaults
// (tools whose experiments pin the design use this to reject overrides
// loudly instead of ignoring them).
func (d *Design) IsDefault() bool {
	return d.Spec == DefaultSpec && d.Scheme == DefaultScheme &&
		d.Entropy == DefaultEntropy && d.Engine == DefaultEngine
}

// DesignSpec converts the flag values to the service wire form.
func (d *Design) DesignSpec() service.DesignSpec {
	return service.DesignSpec{Cipher: d.Spec, Scheme: d.Scheme, Entropy: d.Entropy, Engine: d.Engine}
}

// Parse validates the flag values against the shared vocabulary and
// resolves them to build inputs.
func (d *Design) Parse() (*spn.Spec, core.Options, error) {
	return service.ParseDesign(d.DesignSpec())
}

// Build synthesises the selected design.
func (d *Design) Build() (*core.Design, error) {
	return service.BuildDesign(d.DesignSpec())
}

// Engine holds the shared engine-configuration flag values after parsing:
// the execution-policy knobs of fault.EngineConfig. Every configuration
// computes bit-identical campaign results; these flags only choose how fast
// the machine computes them.
type Engine struct {
	Lanes     int
	Parallel  int
	BatchRuns int
}

// RegisterEngine installs the shared engine-configuration flag surface on
// fs:
//
//	-lanes      engine word width W (1, 2 or 4): one simulator pass
//	            evaluates W×64 lanes
//	-parallel   worker goroutines per campaign (0 = GOMAXPROCS)
//	-batch-runs runs per worker dispatch, rounded up to whole lane
//	            groups (0 = one lane group)
func RegisterEngine(fs *flag.FlagSet) *Engine {
	e := &Engine{}
	fs.IntVar(&e.Lanes, "lanes", 1, "engine word width: 1, 2 or 4 (one pass evaluates width x 64 lanes)")
	fs.IntVar(&e.Parallel, "parallel", 0, "worker goroutines per campaign (0 = GOMAXPROCS)")
	fs.IntVar(&e.BatchRuns, "batch-runs", 0, "runs per worker dispatch, rounded up to whole lane groups (0 = one lane group)")
	return e
}

// Config validates the flag values and converts them to the engine
// configuration.
func (e *Engine) Config() (fault.EngineConfig, error) {
	cfg := fault.EngineConfig{LaneWords: e.Lanes, Parallelism: e.Parallel, BatchRuns: e.BatchRuns}
	if err := cfg.Validate(); err != nil {
		return fault.EngineConfig{}, err
	}
	return cfg, nil
}
