package synth

import (
	"fmt"

	"repro/internal/bdd"
	"repro/internal/netlist"
)

// SynthesizeBDD emits a MUX-tree netlist computing the table: the outputs'
// shared ROBDD is built (variable 0 at the root) and every internal node is
// mapped to one 2:1 multiplexer selecting between its cofactor nets. Node
// sharing in the ROBDD becomes structural sharing in the netlist, which is
// what keeps 8-bit S-boxes affordable.
func (t *TruthTable) SynthesizeBDD(moduleName, inputName, outputName string) *netlist.Module {
	mgr := bdd.New(t.NumInputs)
	roots := make([]bdd.Node, t.NumOutputs)
	for o := range roots {
		roots[o] = mgr.FromTruthTable(t.Outputs[o], t.NumInputs)
	}
	return mapBDD(mgr, roots, moduleName, inputName, outputName, t.NumInputs)
}

// mapBDD lowers the shared BDD rooted at roots into a netlist.
func mapBDD(mgr *bdd.Manager, roots []bdd.Node, moduleName, inputName, outputName string, width int) *netlist.Module {
	m := netlist.New(moduleName)
	in := m.AddInput(inputName, width)

	nets := make(map[bdd.Node]netlist.Net)
	var lower func(n bdd.Node) netlist.Net
	lower = func(n bdd.Node) netlist.Net {
		if net, ok := nets[n]; ok {
			return net
		}
		var net netlist.Net
		switch n {
		case bdd.False:
			net = m.Const0()
		case bdd.True:
			net = m.Const1()
		default:
			lo, hi := mgr.Cofactors(n)
			sel := in[mgr.Level(n)]
			// Special-case the four single-literal shapes so plain
			// variables and complements do not burn a full MUX.
			switch {
			case lo == bdd.False && hi == bdd.True:
				net = m.Buf(sel)
			case lo == bdd.True && hi == bdd.False:
				net = m.Not(sel)
			case lo == bdd.False:
				net = m.And(sel, lower(hi))
			case hi == bdd.False:
				net = m.And(m.Not(sel), lower(lo))
			case hi == bdd.True:
				net = m.Or(sel, lower(lo))
			case lo == bdd.True:
				net = m.Or(m.Not(sel), lower(hi))
			default:
				net = m.Mux(lower(lo), lower(hi), sel)
			}
		}
		nets[n] = net
		return net
	}

	outBus := make(netlist.Bus, len(roots))
	for o, r := range roots {
		net := lower(r)
		for _, prev := range outBus[:o] {
			if prev == net {
				net = m.Buf(net)
				break
			}
		}
		outBus[o] = net
	}
	m.AddOutput(outputName, outBus)
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("synth: BDD netlist invalid: %v", err))
	}
	return m
}

// Engine selects a synthesis strategy.
type Engine int

// Available synthesis engines.
const (
	// EngineANF emits XOR-of-AND-monomial circuits (FTA-relevant form).
	EngineANF Engine = iota
	// EngineBDD emits shared MUX trees (compact for wide S-boxes).
	EngineBDD
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineANF:
		return "anf"
	case EngineBDD:
		return "bdd"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Synthesize dispatches on the engine.
func (t *TruthTable) Synthesize(e Engine, moduleName, inputName, outputName string) *netlist.Module {
	switch e {
	case EngineANF:
		return t.SynthesizeANF(moduleName, inputName, outputName)
	case EngineBDD:
		return t.SynthesizeBDD(moduleName, inputName, outputName)
	default:
		panic(fmt.Sprintf("synth: unknown engine %v", e))
	}
}
