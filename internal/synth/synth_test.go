package synth

import (
	"testing"
	"testing/quick"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// checkAgainstTable exhaustively re-simulates a synthesised module against
// its truth table.
func checkAgainstTable(t *testing.T, m *netlist.Module, tt *TruthTable) {
	t.Helper()
	c, err := sim.Compile(m)
	if err != nil {
		t.Fatalf("%s: %v", m.Name, err)
	}
	for x := uint64(0); x < tt.Size(); x++ {
		got := sim.EvalComb(c, map[string]uint64{"x": x})["y"]
		if got != tt.Eval(x) {
			t.Fatalf("%s(%X) = %X, want %X", m.Name, x, got, tt.Eval(x))
		}
	}
}

// presentSbox is a local copy to avoid an import cycle with the cipher
// packages.
var presentSbox = []uint64{0xC, 5, 6, 0xB, 9, 0, 0xA, 0xD, 3, 0xE, 0xF, 8, 4, 7, 1, 2}

func TestANFSynthesisExhaustive(t *testing.T) {
	tt := FromSbox(presentSbox, 4)
	checkAgainstTable(t, tt.SynthesizeANF("s_anf", "x", "y"), tt)
}

func TestBDDSynthesisExhaustive(t *testing.T) {
	tt := FromSbox(presentSbox, 4)
	checkAgainstTable(t, tt.SynthesizeBDD("s_bdd", "x", "y"), tt)
}

func TestMergedTableSemantics(t *testing.T) {
	tt := FromSbox(presentSbox, 4)
	merged := tt.Merged()
	for x := uint64(0); x < 16; x++ {
		if merged.Eval(x) != tt.Eval(x) {
			t.Fatalf("merged λ=0 differs at %X", x)
		}
		want := ^tt.Eval(^x&0xF) & 0xF
		if merged.Eval(x|16) != want {
			t.Fatalf("merged λ=1 at %X = %X, want %X", x, merged.Eval(x|16), want)
		}
	}
}

func TestInvertedTableSemantics(t *testing.T) {
	tt := FromSbox(presentSbox, 4)
	inv := tt.Inverted()
	for x := uint64(0); x < 16; x++ {
		if inv.Eval(x) != ^tt.Eval(^x&0xF)&0xF {
			t.Fatalf("inverted table wrong at %X", x)
		}
	}
}

func TestSynthesisOfRandomFunctions(t *testing.T) {
	// Property: both engines agree with an arbitrary 4->4 table.
	f := func(raw [16]uint8) bool {
		table := make([]uint64, 16)
		for i, v := range raw {
			table[i] = uint64(v & 0xF)
		}
		tt := FromSbox(table, 4)
		for _, eng := range []Engine{EngineANF, EngineBDD} {
			m := tt.Synthesize(eng, "rnd", "x", "y")
			c, err := sim.Compile(m)
			if err != nil {
				return false
			}
			for x := uint64(0); x < 16; x++ {
				if sim.EvalComb(c, map[string]uint64{"x": x})["y"] != tt.Eval(x) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConstantAndIdentityFunctions(t *testing.T) {
	// Degenerate tables: constant-0, constant-1 and identity.
	for name, fn := range map[string]func(uint64) uint64{
		"zero": func(uint64) uint64 { return 0 },
		"ones": func(uint64) uint64 { return 0xF },
		"id":   func(x uint64) uint64 { return x },
	} {
		tt := FromFunc(4, 4, fn)
		for _, eng := range []Engine{EngineANF, EngineBDD} {
			checkAgainstTable(t, tt.Synthesize(eng, name+"_"+eng.String(), "x", "y"), tt)
		}
	}
}

func TestANFProperties(t *testing.T) {
	tt := FromSbox(presentSbox, 4)
	// The PRESENT S-box has algebraic degree 3 on every output bit
	// except possibly lower; max must be 3 for at least one output.
	maxDeg := 0
	for o := 0; o < 4; o++ {
		if d := tt.ANFDegree(o); d > maxDeg {
			maxDeg = d
		}
		if tt.ANFMonomialCount(o) == 0 {
			t.Errorf("output %d has empty ANF", o)
		}
	}
	if maxDeg != 3 {
		t.Errorf("PRESENT S-box max degree = %d, want 3", maxDeg)
	}
	// XOR function has degree 1 and exactly 2 monomials.
	xor := FromFunc(2, 1, func(x uint64) uint64 { return (x ^ x>>1) & 1 })
	if xor.ANFDegree(0) != 1 || xor.ANFMonomialCount(0) != 2 {
		t.Errorf("XOR ANF wrong: deg %d count %d", xor.ANFDegree(0), xor.ANFMonomialCount(0))
	}
}

func TestIsPermutationTable(t *testing.T) {
	if !FromSbox(presentSbox, 4).IsPermutationTable() {
		t.Error("PRESENT S-box should be a permutation")
	}
	if FromFunc(4, 4, func(uint64) uint64 { return 0 }).IsPermutationTable() {
		t.Error("constant function is not a permutation")
	}
	if FromFunc(4, 3, func(x uint64) uint64 { return x & 7 }).IsPermutationTable() {
		t.Error("non-square function is not a permutation")
	}
}

func TestMergedIs5Bit(t *testing.T) {
	tt := FromSbox(presentSbox, 4).Merged()
	if tt.NumInputs != 5 || tt.NumOutputs != 4 {
		t.Fatalf("merged dims %dx%d", tt.NumInputs, tt.NumOutputs)
	}
	m := tt.SynthesizeANF("merged5", "x", "y")
	if m.FindInput("x").Width() != 5 {
		t.Fatal("merged module input width wrong")
	}
	checkAgainstTable(t, m, tt)
}
