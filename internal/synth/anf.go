package synth

import (
	"fmt"
	"math/bits"

	"repro/internal/netlist"
)

// ANF computes the algebraic normal form of one output: the returned slice
// anf, indexed by monomial mask u (bit i of u selects variable i), has bit
// value 1 iff monomial u appears in the XOR-polynomial of the function.
// Packing matches TruthTable: bit j of word j>>6.
//
// The transform is the standard Möbius (butterfly) transform over GF(2).
func (t *TruthTable) ANF(o int) []uint64 {
	n := t.NumInputs
	size := t.Size()
	// Unpack to bytes for the butterfly; sizes here are at most 2^20.
	vals := make([]uint8, size)
	for x := uint64(0); x < size; x++ {
		vals[x] = uint8(t.Get(o, x))
	}
	for i := 0; i < n; i++ {
		step := uint64(1) << uint(i)
		for x := uint64(0); x < size; x++ {
			if x&step != 0 {
				vals[x] ^= vals[x^step]
			}
		}
	}
	words := (size + 63) / 64
	out := make([]uint64, words)
	for x := uint64(0); x < size; x++ {
		if vals[x] == 1 {
			out[x>>6] |= 1 << (x & 63)
		}
	}
	return out
}

// ANFMonomialCount returns the number of monomials in output o's ANF.
func (t *TruthTable) ANFMonomialCount(o int) int {
	count := 0
	for _, w := range t.ANF(o) {
		count += bits.OnesCount64(w)
	}
	return count
}

// ANFDegree returns the algebraic degree of output o (0 for constants).
func (t *TruthTable) ANFDegree(o int) int {
	deg := 0
	anf := t.ANF(o)
	for x := uint64(0); x < t.Size(); x++ {
		if (anf[x>>6]>>(x&63))&1 == 1 {
			if d := bits.OnesCount64(x); d > deg {
				deg = d
			}
		}
	}
	return deg
}

// SynthesizeANF emits an AND/XOR netlist computing the table. The module
// has one input port named inputName of width NumInputs and one output port
// named outputName of width NumOutputs. Monomials are shared across
// outputs, and AND chains share common prefixes (monomials are decomposed
// from the lowest variable upward with memoisation).
func (t *TruthTable) SynthesizeANF(moduleName, inputName, outputName string) *netlist.Module {
	m := netlist.New(moduleName)
	in := m.AddInput(inputName, t.NumInputs)

	monoCache := make(map[uint64]netlist.Net)
	var mono func(mask uint64) netlist.Net
	mono = func(mask uint64) netlist.Net {
		if n, ok := monoCache[mask]; ok {
			return n
		}
		var net netlist.Net
		switch bits.OnesCount64(mask) {
		case 0:
			net = m.Const1()
		case 1:
			net = in[bits.TrailingZeros64(mask)]
		default:
			low := uint64(1) << uint(bits.TrailingZeros64(mask))
			net = m.And(in[bits.TrailingZeros64(mask)], mono(mask&^low))
		}
		monoCache[mask] = net
		return net
	}

	outBus := make(netlist.Bus, t.NumOutputs)
	for o := 0; o < t.NumOutputs; o++ {
		anf := t.ANF(o)
		var terms netlist.Bus
		hasConst := false
		for x := uint64(0); x < t.Size(); x++ {
			if (anf[x>>6]>>(x&63))&1 == 0 {
				continue
			}
			if x == 0 {
				hasConst = true
				continue
			}
			terms = append(terms, mono(x))
		}
		var net netlist.Net
		switch {
		case len(terms) == 0 && !hasConst:
			net = m.Const0()
		case len(terms) == 0 && hasConst:
			net = m.Const1()
		default:
			net = m.XorReduce(terms)
			if hasConst {
				net = m.Not(net)
			}
		}
		// Outputs must be distinct nets even when functions coincide;
		// buffer aliased outputs.
		for _, prev := range outBus[:o] {
			if prev == net {
				net = m.Buf(net)
				break
			}
		}
		outBus[o] = net
	}
	m.AddOutput(outputName, outBus)
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("synth: ANF netlist invalid: %v", err))
	}
	return m
}
