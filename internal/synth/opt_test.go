package synth

import (
	"testing"
	"testing/quick"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// behaviourEqual exhaustively compares two combinational modules with the
// same single input port "x" and output port "y".
func behaviourEqual(t *testing.T, a, b *netlist.Module, inputBits int) {
	t.Helper()
	ca, err := sim.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := sim.Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	for x := uint64(0); x < 1<<uint(inputBits); x++ {
		ya := sim.EvalComb(ca, map[string]uint64{"x": x})["y"]
		yb := sim.EvalComb(cb, map[string]uint64{"x": x})["y"]
		if ya != yb {
			t.Fatalf("optimisation changed behaviour at %X: %X vs %X", x, ya, yb)
		}
	}
}

func TestOptimizePreservesBehaviour(t *testing.T) {
	tt := FromSbox(presentSbox, 4)
	for _, eng := range []Engine{EngineANF, EngineBDD} {
		m := tt.Synthesize(eng, "s", "x", "y")
		o := Optimize(m, DefaultOptOptions())
		behaviourEqual(t, m, o, 4)
		if len(o.Cells) > len(m.Cells) {
			t.Errorf("%s: optimisation grew the netlist %d -> %d", eng, len(m.Cells), len(o.Cells))
		}
	}
}

func TestOptimizeRandomFunctionsProperty(t *testing.T) {
	f := func(raw [16]uint8) bool {
		table := make([]uint64, 16)
		for i, v := range raw {
			table[i] = uint64(v & 0xF)
		}
		tt := FromSbox(table, 4)
		m := tt.SynthesizeANF("r", "x", "y")
		o := Optimize(m, DefaultOptOptions())
		cm, err1 := sim.Compile(m)
		co, err2 := sim.Compile(o)
		if err1 != nil || err2 != nil {
			return false
		}
		for x := uint64(0); x < 16; x++ {
			if sim.EvalComb(cm, map[string]uint64{"x": x})["y"] !=
				sim.EvalComb(co, map[string]uint64{"x": x})["y"] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestConstantFolding(t *testing.T) {
	m := netlist.New("fold")
	in := m.AddInput("x", 1)
	one := m.Const1()
	zero := m.Const0()
	y := m.Or(m.And(in[0], one), m.And(in[0], zero)) // = x
	m.AddOutput("y", netlist.Bus{y})
	o := Optimize(m, DefaultOptOptions())
	// Should fold to a wire: no combinational cells at all.
	if o.NumCombinational() != 0 {
		t.Fatalf("expected full fold, got %d cells:\n%s", o.NumCombinational(), o.CollectStats())
	}
	behaviourEqual(t, m, o, 1)
}

func TestCSEMergesDuplicates(t *testing.T) {
	m := netlist.New("cse")
	in := m.AddInput("x", 2)
	a := m.And(in[0], in[1])
	b := m.And(in[1], in[0]) // commutative duplicate
	y := m.Xor(a, b)         // = 0
	m.AddOutput("y", netlist.Bus{y})
	o := Optimize(m, DefaultOptOptions())
	if o.NumCombinational() != 0 {
		t.Fatalf("expected commutative CSE + xor fold, got:\n%s", o.CollectStats())
	}
}

func TestDoubleInverterRemoval(t *testing.T) {
	m := netlist.New("dinv")
	in := m.AddInput("x", 1)
	y := m.Not(m.Not(in[0]))
	m.AddOutput("y", netlist.Bus{y})
	o := Optimize(m, DefaultOptOptions())
	if o.NumCombinational() != 0 {
		t.Fatalf("expected INV(INV(x)) removal, got:\n%s", o.CollectStats())
	}
}

func TestDCERemovesDeadLogic(t *testing.T) {
	m := netlist.New("dce")
	in := m.AddInput("x", 2)
	_ = m.And(in[0], in[1]) // dead
	dead := m.DFF(in[0])    // dead register
	_ = dead
	m.AddOutput("y", netlist.Bus{m.Buf(in[0])})
	o := Optimize(m, DefaultOptOptions())
	if len(o.Cells) != 0 { // even the buffer folds to a wire
		t.Fatalf("expected empty netlist, got:\n%s", o.CollectStats())
	}
}

func TestKeepBlocksMergingAndRemoval(t *testing.T) {
	// Two identical redundant branches; the second is marked Keep. The
	// optimiser must not merge them — this is the property that makes
	// duplication-based countermeasures survive synthesis.
	m := netlist.New("keep")
	in := m.AddInput("x", 2)
	a := m.Xor(in[0], in[1])
	bNet := m.NewNet("b")
	c := m.AddCell(netlist.KindXor2, bNet, in[0], in[1])
	c.Keep = true
	diff := m.Xor(a, bNet)
	m.AddOutput("y", netlist.Bus{diff})
	o := Optimize(m, DefaultOptOptions())
	// Without Keep, CSE folds b into a and diff into const 0; with
	// Keep, both XORs and the comparator must survive.
	keepCount := 0
	for i := range o.Cells {
		if o.Cells[i].Keep {
			keepCount++
		}
	}
	if keepCount != 1 {
		t.Fatalf("Keep cell lost: %d keep cells in\n%s", keepCount, o.CollectStats())
	}
	if o.CollectStats().ByKind[netlist.KindXor2] < 3 {
		t.Fatalf("redundant branch merged away:\n%s", o.CollectStats())
	}
	behaviourEqual(t, m, o, 2)
}

func TestKeepDFFSurvivesDCE(t *testing.T) {
	m := netlist.New("keepdff")
	in := m.AddInput("x", 1)
	qNet := m.NewNet("q")
	c := m.AddCell(netlist.KindDFF, qNet, in[0])
	c.Keep = true // dead but kept
	m.AddOutput("y", netlist.Bus{m.Buf(in[0])})
	o := Optimize(m, DefaultOptOptions())
	if o.NumDFFs() != 1 {
		t.Fatal("Keep DFF was removed by DCE")
	}
}

func TestMuxFoldings(t *testing.T) {
	m := netlist.New("mux")
	in := m.AddInput("x", 2)
	one := m.Const1()
	zero := m.Const0()
	outs := netlist.Bus{
		m.Mux(in[0], in[1], zero),  // = x0
		m.Mux(in[0], in[1], one),   // = x1
		m.Mux(zero, one, in[0]),    // = x0
		m.Mux(one, zero, in[0]),    // = !x0
		m.Mux(in[0], in[0], in[1]), // = x0
	}
	m.AddOutput("y", outs)
	o := Optimize(m, DefaultOptOptions())
	if got := o.CollectStats().ByKind[netlist.KindMux2]; got != 0 {
		t.Fatalf("expected every mux folded, %d remain", got)
	}
	behaviourEqual(t, m, o, 2)
}

func TestOptimizeSequentialPreservesBehaviour(t *testing.T) {
	// A 2-bit counter with an enable: optimisation must keep the cycle
	// behaviour identical.
	build := func() *netlist.Module {
		m := netlist.New("cnt")
		en := m.AddInput("x", 1)
		q0 := m.NewNet("q0")
		q1 := m.NewNet("q1")
		d0 := m.Xor(q0, en[0])
		d1 := m.Xor(q1, m.And(q0, en[0]))
		m.AddCell(netlist.KindDFF, q0, d0)
		m.AddCell(netlist.KindDFF, q1, d1)
		m.AddOutput("y", netlist.Bus{q0, q1})
		return m
	}
	m := build()
	o := Optimize(m, DefaultOptOptions())
	sm := sim.New(m)
	so := sim.New(o)
	sm.SetInputBroadcast("x", 1)
	so.SetInputBroadcast("x", 1)
	for cyc := 0; cyc < 7; cyc++ {
		sm.Step()
		so.Step()
		if sm.Output("y")[0] != so.Output("y")[0] {
			t.Fatalf("cycle %d: %d vs %d", cyc, sm.Output("y")[0], so.Output("y")[0])
		}
	}
}
