package synth

import (
	"fmt"

	"repro/internal/netlist"
)

// OptOptions configures the optimisation pipeline.
type OptOptions struct {
	// ConstFold enables constant propagation and algebraic identities
	// (x AND x = x, x XOR x = 0, MUX with constant select, ...).
	ConstFold bool
	// CSE enables structural hashing: cells with identical kind and
	// (commutatively normalised) inputs are merged.
	CSE bool
	// DCE removes cells whose outputs cannot reach a primary output.
	DCE bool
	// MaxPasses bounds the rebuild-until-fixpoint loop.
	MaxPasses int
}

// DefaultOptOptions enables every pass.
func DefaultOptOptions() OptOptions {
	return OptOptions{ConstFold: true, CSE: true, DCE: true, MaxPasses: 5}
}

// Optimize rebuilds the module applying constant folding, common
// subexpression elimination and dead-cell elimination, iterating until the
// cell count stops improving.
//
// Cells marked Keep are exempt from every transformation: they are emitted
// verbatim, never merged with equivalent logic, and never deleted, and no
// other cell may be merged into them. This implements the paper's synthesis
// constraint of "ensuring the redundant paths are not optimised away": the
// countermeasure builders mark the redundant computation Keep so this
// equivalence-driven flow cannot collapse the duplication.
func Optimize(m *netlist.Module, opts OptOptions) *netlist.Module {
	if opts.MaxPasses <= 0 {
		opts.MaxPasses = 1
	}
	cur := m
	for pass := 0; pass < opts.MaxPasses; pass++ {
		next := rebuild(cur, opts)
		if len(next.Cells) >= len(cur.Cells) && pass > 0 {
			return cur
		}
		if len(next.Cells) == len(cur.Cells) {
			return next
		}
		cur = next
	}
	return cur
}

type cseKey struct {
	kind    netlist.CellKind
	a, b, c netlist.Net
}

type optBuilder struct {
	out  *netlist.Module
	opts OptOptions
	cse  map[cseKey]netlist.Net
	// constVal[n] is 0 or 1 for nets (in out) known constant; absent if
	// unknown.
	constVal map[netlist.Net]uint8
	const0   netlist.Net
	const1   netlist.Net
}

func (b *optBuilder) constNet(v uint8) netlist.Net {
	if v == 0 {
		if b.const0 == netlist.InvalidNet {
			b.const0 = b.out.Const0()
			b.constVal[b.const0] = 0
		}
		return b.const0
	}
	if b.const1 == netlist.InvalidNet {
		b.const1 = b.out.Const1()
		b.constVal[b.const1] = 1
	}
	return b.const1
}

func (b *optBuilder) known(n netlist.Net) (uint8, bool) {
	v, ok := b.constVal[n]
	return v, ok
}

// invOf returns a net computing NOT n, folding through constants and
// existing inverters.
func (b *optBuilder) invOf(n netlist.Net) netlist.Net {
	if v, ok := b.known(n); ok {
		return b.constNet(1 - v)
	}
	if d := b.out.DriverCell(n); d != nil && d.Kind == netlist.KindInv && !d.Keep {
		return d.In[0]
	}
	return b.emit(netlist.KindInv, "inv", n)
}

// emit creates (or CSE-reuses) a cell of the given kind in the output
// module after folding. name is the debug name for a fresh net.
func (b *optBuilder) emit(kind netlist.CellKind, name string, in ...netlist.Net) netlist.Net {
	if b.opts.ConstFold {
		if n, ok := b.fold(kind, in); ok {
			return n
		}
	}
	// Commutative normalisation for CSE.
	a0, a1, a2 := netlist.InvalidNet, netlist.InvalidNet, netlist.InvalidNet
	switch len(in) {
	case 1:
		a0 = in[0]
	case 2:
		a0, a1 = in[0], in[1]
		if commutative(kind) && a1 < a0 {
			a0, a1 = a1, a0
		}
	case 3:
		a0, a1, a2 = in[0], in[1], in[2]
	}
	key := cseKey{kind, a0, a1, a2}
	if b.opts.CSE {
		if n, ok := b.cse[key]; ok {
			return n
		}
	}
	out := b.out.NewNet(name)
	ins := make([]netlist.Net, 0, 3)
	for _, n := range []netlist.Net{a0, a1, a2}[:len(in)] {
		ins = append(ins, n)
	}
	b.out.AddCell(kind, out, ins...)
	if b.opts.CSE {
		b.cse[key] = out
	}
	switch kind {
	case netlist.KindConst0:
		b.constVal[out] = 0
	case netlist.KindConst1:
		b.constVal[out] = 1
	}
	return out
}

func commutative(kind netlist.CellKind) bool {
	switch kind {
	case netlist.KindAnd2, netlist.KindOr2, netlist.KindNand2,
		netlist.KindNor2, netlist.KindXor2, netlist.KindXnor2:
		return true
	}
	return false
}

// fold applies constant and algebraic identities. It returns the resulting
// net and true if the cell was eliminated.
func (b *optBuilder) fold(kind netlist.CellKind, in []netlist.Net) (netlist.Net, bool) {
	kv := func(i int) (uint8, bool) { return b.known(in[i]) }
	switch kind {
	case netlist.KindConst0:
		return b.constNet(0), true
	case netlist.KindConst1:
		return b.constNet(1), true
	case netlist.KindBuf:
		return in[0], true
	case netlist.KindInv:
		if v, ok := kv(0); ok {
			return b.constNet(1 - v), true
		}
		if d := b.out.DriverCell(in[0]); d != nil && d.Kind == netlist.KindInv && !d.Keep {
			return d.In[0], true
		}
	case netlist.KindAnd2, netlist.KindNand2:
		a, bn := in[0], in[1]
		neg := kind == netlist.KindNand2
		if va, ok := kv(0); ok {
			if va == 0 {
				return b.constNet(boolBit(neg)), true
			}
			return b.maybeInv(bn, neg), true
		}
		if vb, ok := kv(1); ok {
			if vb == 0 {
				return b.constNet(boolBit(neg)), true
			}
			return b.maybeInv(a, neg), true
		}
		if a == bn {
			return b.maybeInv(a, neg), true
		}
	case netlist.KindOr2, netlist.KindNor2:
		a, bn := in[0], in[1]
		neg := kind == netlist.KindNor2
		if va, ok := kv(0); ok {
			if va == 1 {
				return b.constNet(boolBit(!neg)), true
			}
			return b.maybeInv(bn, neg), true
		}
		if vb, ok := kv(1); ok {
			if vb == 1 {
				return b.constNet(boolBit(!neg)), true
			}
			return b.maybeInv(a, neg), true
		}
		if a == bn {
			return b.maybeInv(a, neg), true
		}
	case netlist.KindXor2, netlist.KindXnor2:
		a, bn := in[0], in[1]
		neg := kind == netlist.KindXnor2
		if va, ok := kv(0); ok {
			return b.maybeInv(bn, (va == 1) != neg), true
		}
		if vb, ok := kv(1); ok {
			return b.maybeInv(a, (vb == 1) != neg), true
		}
		if a == bn {
			return b.constNet(boolBit(neg)), true
		}
	case netlist.KindMux2:
		a, bn, sel := in[0], in[1], in[2]
		if vs, ok := kv(2); ok {
			if vs == 0 {
				return a, true
			}
			return bn, true
		}
		if a == bn {
			return a, true
		}
		va, aok := kv(0)
		vb, bok := kv(1)
		switch {
		case aok && bok && va == 0 && vb == 1:
			return sel, true
		case aok && bok && va == 1 && vb == 0:
			return b.invOf(sel), true
		case aok && va == 0:
			return b.emit(netlist.KindAnd2, "mux_and", sel, bn), true
		case bok && vb == 1:
			return b.emit(netlist.KindOr2, "mux_or", sel, a), true
		case bok && vb == 0:
			return b.emit(netlist.KindAnd2, "mux_and", b.invOf(sel), a), true
		case aok && va == 1:
			return b.emit(netlist.KindOr2, "mux_or", b.invOf(sel), bn), true
		}
	}
	return netlist.InvalidNet, false
}

func (b *optBuilder) maybeInv(n netlist.Net, inv bool) netlist.Net {
	if inv {
		return b.invOf(n)
	}
	return n
}

func boolBit(v bool) uint8 {
	if v {
		return 1
	}
	return 0
}

// liveCells computes the set of cells reachable backwards from the primary
// outputs, crossing DFFs (a live DFF makes its D cone live). Keep cells are
// unconditionally live.
func liveCells(m *netlist.Module) []bool {
	live := make([]bool, len(m.Cells))
	var stack []int
	push := func(n netlist.Net) {
		if d := m.Driver(n); d >= 0 && !live[d] {
			live[d] = true
			stack = append(stack, d)
		}
	}
	for i := range m.Outputs {
		for _, n := range m.Outputs[i].Bits {
			push(n)
		}
	}
	for ci := range m.Cells {
		if m.Cells[ci].Keep && !live[ci] {
			live[ci] = true
			stack = append(stack, ci)
		}
	}
	for len(stack) > 0 {
		ci := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, in := range m.Cells[ci].Inputs() {
			push(in)
		}
	}
	return live
}

// rebuild performs one functional optimisation pass.
func rebuild(m *netlist.Module, opts OptOptions) *netlist.Module {
	order, err := m.Levelize()
	if err != nil {
		panic(fmt.Sprintf("synth: optimize: %v", err))
	}
	live := make([]bool, len(m.Cells))
	if opts.DCE {
		live = liveCells(m)
	} else {
		for i := range live {
			live[i] = true
		}
	}

	b := &optBuilder{
		out:      netlist.New(m.Name),
		opts:     opts,
		cse:      make(map[cseKey]netlist.Net),
		constVal: make(map[netlist.Net]uint8),
	}
	netMap := make([]netlist.Net, m.NumNets()+1)

	for i := range m.Inputs {
		p := &m.Inputs[i]
		bus := make(netlist.Bus, p.Width())
		for bi, n := range p.Bits {
			if netMap[n] == netlist.InvalidNet {
				netMap[n] = b.out.NewNet(m.NetName(n))
			}
			bus[bi] = netMap[n]
		}
		b.out.AddInputNets(p.Name, bus)
	}

	// Pre-allocate Q nets of live DFFs so combinational logic can read
	// register outputs before the DFF cells are created.
	for ci := range m.Cells {
		c := &m.Cells[ci]
		if c.Kind.IsSequential() && live[ci] {
			netMap[c.Out] = b.out.NewNet(m.NetName(c.Out))
		}
	}

	mapped := func(n netlist.Net) netlist.Net {
		r := netMap[n]
		if r == netlist.InvalidNet {
			panic(fmt.Sprintf("synth: optimize: net %q used before definition", m.NetName(n)))
		}
		return r
	}

	for _, ci := range order {
		if !live[ci] {
			continue
		}
		c := &m.Cells[ci]
		ins := make([]netlist.Net, 0, 3)
		for _, in := range c.Inputs() {
			ins = append(ins, mapped(in))
		}
		var newOut netlist.Net
		if c.Keep {
			// Keep cells are copied verbatim: fresh net, no fold,
			// no CSE participation.
			newOut = b.out.NewNet(m.NetName(c.Out))
			nc := b.out.AddCell(c.Kind, newOut, ins...)
			nc.Keep = true
			nc.Tag = c.Tag
		} else {
			newOut = b.emit(c.Kind, m.NetName(c.Out), ins...)
			if c.Tag != "" {
				if dc := b.out.DriverCell(newOut); dc != nil && dc.Tag == "" {
					dc.Tag = c.Tag
				}
			}
		}
		netMap[c.Out] = newOut
	}

	for ci := range m.Cells {
		c := &m.Cells[ci]
		if !c.Kind.IsSequential() || !live[ci] {
			continue
		}
		nc := b.out.AddCell(netlist.KindDFF, netMap[c.Out], mapped(c.In[0]))
		nc.Keep = c.Keep
		nc.Tag = c.Tag
	}

	for i := range m.Outputs {
		p := &m.Outputs[i]
		bus := make(netlist.Bus, p.Width())
		for bi, n := range p.Bits {
			bus[bi] = mapped(n)
		}
		b.out.AddOutput(p.Name, bus)
	}
	if err := b.out.Validate(); err != nil {
		panic(fmt.Sprintf("synth: optimize produced invalid module: %v", err))
	}
	return b.out
}
