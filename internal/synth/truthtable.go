// Package synth turns boolean functions (given as truth tables) into
// technology-mapped netlist.Module gate networks, and provides the
// netlist-level optimisation passes of a miniature synthesis flow.
//
// Two synthesis engines are provided, matching the two S-box circuit styles
// the experiments need:
//
//   - ANF: algebraic normal form (XOR of AND monomials). This produces the
//     AND/XOR circuits that the FTA attack of the paper probes, and is
//     compact for 4-bit S-boxes such as PRESENT's.
//   - BDD: shared reduced-ordered-BDD mapped one MUX per node. This is far
//     more compact for 8-bit S-boxes such as AES's.
//
// Both engines emit structurally verified logic: the package test suite
// re-simulates every synthesised netlist against its truth table.
package synth

import (
	"fmt"
)

// TruthTable is a complete specification of an n-input, m-output boolean
// function. Outputs[o] is the packed truth table of output bit o: bit j of
// the packed words is the output value on input j.
type TruthTable struct {
	NumInputs  int
	NumOutputs int
	Outputs    [][]uint64
}

// NewTruthTable allocates an all-zero table.
func NewTruthTable(inputs, outputs int) *TruthTable {
	if inputs < 1 || inputs > 20 {
		panic(fmt.Sprintf("synth: unsupported input count %d", inputs))
	}
	words := 1
	if inputs > 6 {
		words = 1 << uint(inputs-6)
	}
	t := &TruthTable{NumInputs: inputs, NumOutputs: outputs}
	t.Outputs = make([][]uint64, outputs)
	for o := range t.Outputs {
		t.Outputs[o] = make([]uint64, words)
	}
	return t
}

// FromFunc tabulates fn over all 2^inputs assignments. Bit i of the argument
// carries input variable i; bit o of the result carries output o.
func FromFunc(inputs, outputs int, fn func(uint64) uint64) *TruthTable {
	t := NewTruthTable(inputs, outputs)
	for x := uint64(0); x < 1<<uint(inputs); x++ {
		y := fn(x)
		for o := 0; o < outputs; o++ {
			if (y>>uint(o))&1 == 1 {
				t.Set(o, x)
			}
		}
	}
	return t
}

// FromSbox builds the table of an S-box given as a lookup slice of length
// 2^n with m significant output bits.
func FromSbox(sbox []uint64, m int) *TruthTable {
	n := 0
	for 1<<uint(n) < len(sbox) {
		n++
	}
	if 1<<uint(n) != len(sbox) {
		panic(fmt.Sprintf("synth: S-box length %d is not a power of two", len(sbox)))
	}
	return FromFunc(n, m, func(x uint64) uint64 { return sbox[x] })
}

// Set sets output o on input x to 1.
func (t *TruthTable) Set(o int, x uint64) {
	t.Outputs[o][x>>6] |= 1 << (x & 63)
}

// Get returns output o on input x.
func (t *TruthTable) Get(o int, x uint64) uint64 {
	return (t.Outputs[o][x>>6] >> (x & 63)) & 1
}

// Eval returns the full output word on input x.
func (t *TruthTable) Eval(x uint64) uint64 {
	var y uint64
	for o := 0; o < t.NumOutputs; o++ {
		y |= t.Get(o, x) << uint(o)
	}
	return y
}

// Size returns the number of input assignments (2^n).
func (t *TruthTable) Size() uint64 { return 1 << uint(t.NumInputs) }

// Merged builds the (n+1)-input merged table of the paper's third
// amendment: output is t(x) when the extra top input λ is 0, and the
// bitwise complement ~t(~x) when λ is 1. The λ variable is input bit n.
func (t *TruthTable) Merged() *TruthTable {
	n := t.NumInputs
	mask := uint64(1<<uint(t.NumOutputs)) - 1
	return FromFunc(n+1, t.NumOutputs, func(x uint64) uint64 {
		lam := (x >> uint(n)) & 1
		in := x & (1<<uint(n) - 1)
		if lam == 0 {
			return t.Eval(in)
		}
		return ^t.Eval(^in&(1<<uint(n)-1)) & mask
	})
}

// Inverted builds the inverted-encoding table: ~t(~x) — the function the
// ACISP'20 countermeasure implements as a separate circuit.
func (t *TruthTable) Inverted() *TruthTable {
	n := t.NumInputs
	mask := uint64(1<<uint(t.NumOutputs)) - 1
	return FromFunc(n, t.NumOutputs, func(x uint64) uint64 {
		return ^t.Eval(^x&(1<<uint(n)-1)) & mask
	})
}

// IsPermutationTable reports whether the function is a bijection on n-bit
// values (requires NumInputs == NumOutputs).
func (t *TruthTable) IsPermutationTable() bool {
	if t.NumInputs != t.NumOutputs {
		return false
	}
	seen := make([]bool, t.Size())
	for x := uint64(0); x < t.Size(); x++ {
		y := t.Eval(x)
		if seen[y] {
			return false
		}
		seen[y] = true
	}
	return true
}
