package vetkit

import (
	"go/ast"
	"strings"
)

// Analyzers returns the repository's vet passes in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{NoRand, CachedCompile, CtxExecute}
}

// NoRand forbids math/rand outside test files and internal/rng.
// Production randomness — the λ masks whose quality the countermeasure's
// security rests on — must come from internal/rng, which wraps a real
// entropy source and makes the generator choice auditable in one place.
var NoRand = &Analyzer{
	Name: "norand",
	Doc:  "forbid math/rand outside _test.go files and internal/rng (use internal/rng)",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			if f.Test || strings.HasPrefix(f.Dir(), "internal/rng/") {
				continue
			}
			for _, imp := range f.AST.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == "math/rand" || path == "math/rand/v2" {
					p.Reportf(imp.Pos(), "import of %s in production code: draw randomness from internal/rng", path)
				}
			}
		}
	},
}

// ctxExecuteDirs are the packages whose jobs must stay cancellable: the
// service's drain/checkpoint machinery and the daemon wrapping it.
var ctxExecuteDirs = []string{"internal/service/", "cmd/sconed/"}

// CtxExecute forbids context-free Campaign.Execute calls in the service
// layer. Graceful drain and checkpoint/resume both rely on cancellation
// reaching the simulation between batches; a bare Execute call would run
// a campaign to completion no matter what, wedging shutdown for the whole
// worker. Use ExecuteContext or ExecuteBatches there instead.
var CtxExecute = &Analyzer{
	Name: "ctxexecute",
	Doc:  "forbid context-free .Execute( in internal/service and cmd/sconed (use ExecuteContext/ExecuteBatches)",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			scoped := false
			for _, dir := range ctxExecuteDirs {
				if strings.HasPrefix(f.Dir(), dir) {
					scoped = true
					break
				}
			}
			if !scoped {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Execute" {
					p.Reportf(call.Pos(), "context-free .Execute call in the service layer cannot be drained: use ExecuteContext or ExecuteBatches")
				}
				return true
			})
		}
	},
}

// simImportPath is the compiled-simulator package CachedCompile guards.
const simImportPath = "repro/internal/sim"

// CachedCompile forbids direct sim.Compile calls outside internal/sim.
// Compiling a netlist is the dominant cost of every experiment loop;
// sim.CompileCached shares compiled programs across callers, and calling
// sim.Compile directly silently bypasses that cache.
var CachedCompile = &Analyzer{
	Name: "cachedcompile",
	Doc:  "forbid direct sim.Compile outside internal/sim (use sim.CompileCached)",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			if f.Test || strings.HasPrefix(f.Dir(), "internal/sim/") {
				continue
			}
			local := importName(f.AST, simImportPath)
			if local == "" || local == "_" || local == "." {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Compile" {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == local && id.Obj == nil {
					p.Reportf(call.Pos(), "direct sim.Compile call bypasses the program cache: use sim.CompileCached")
				}
				return true
			})
		}
	},
}
