package vetkit

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Analyzers returns the repository's vet passes in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{NoRand, CachedCompile, CtxExecute, EngineCfg, ObsNames, ProveBudget, V1Routes}
}

// NoRand forbids math/rand outside test files and internal/rng.
// Production randomness — the λ masks whose quality the countermeasure's
// security rests on — must come from internal/rng, which wraps a real
// entropy source and makes the generator choice auditable in one place.
var NoRand = &Analyzer{
	Name: "norand",
	Doc:  "forbid math/rand outside _test.go files and internal/rng (use internal/rng)",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			if f.Test || strings.HasPrefix(f.Dir(), "internal/rng/") {
				continue
			}
			for _, imp := range f.AST.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if path == "math/rand" || path == "math/rand/v2" {
					p.Reportf(imp.Pos(), "import of %s in production code: draw randomness from internal/rng", path)
				}
			}
		}
	},
}

// ctxExecuteDirs are the packages whose jobs must stay cancellable: the
// service's drain/checkpoint machinery and the daemon wrapping it.
var ctxExecuteDirs = []string{"internal/service/", "cmd/sconed/"}

// CtxExecute forbids context-free Campaign.Execute calls in the service
// layer. Graceful drain and checkpoint/resume both rely on cancellation
// reaching the simulation between batches; a bare Execute call would run
// a campaign to completion no matter what, wedging shutdown for the whole
// worker. Use ExecuteContext or ExecuteBatches there instead.
var CtxExecute = &Analyzer{
	Name: "ctxexecute",
	Doc:  "forbid context-free .Execute( in internal/service and cmd/sconed (use ExecuteContext/ExecuteBatches)",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			scoped := false
			for _, dir := range ctxExecuteDirs {
				if strings.HasPrefix(f.Dir(), dir) {
					scoped = true
					break
				}
			}
			if !scoped {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Execute" {
					p.Reportf(call.Pos(), "context-free .Execute call in the service layer cannot be drained: use ExecuteContext or ExecuteBatches")
				}
				return true
			})
		}
	},
}

// simImportPath is the compiled-simulator package CachedCompile guards.
const simImportPath = "repro/internal/sim"

// CachedCompile forbids direct sim.Compile calls outside internal/sim.
// Compiling a netlist is the dominant cost of every experiment loop;
// sim.CompileCached shares compiled programs across callers, and calling
// sim.Compile directly silently bypasses that cache.
var CachedCompile = &Analyzer{
	Name: "cachedcompile",
	Doc:  "forbid direct sim.Compile outside internal/sim (use sim.CompileCached)",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			if f.Test || strings.HasPrefix(f.Dir(), "internal/sim/") {
				continue
			}
			local := importName(f.AST, simImportPath)
			if local == "" || local == "_" || local == "." {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Compile" {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == local && id.Obj == nil {
					p.Reportf(call.Pos(), "direct sim.Compile call bypasses the program cache: use sim.CompileCached")
				}
				return true
			})
		}
	},
}

// coreImportPath is the runner package EngineCfg guards alongside the
// simulator, and engineCfgDirs the packages allowed to construct engines
// directly: the simulator itself, the runner layer wrapping it, and the
// campaign executor that instantiates engines behind EngineConfig.resolve.
const coreImportPath = "repro/internal/core"

var engineCfgDirs = []string{"internal/sim/", "internal/core/", "internal/fault/"}

// engineCfgFuncs maps each guarded import path to its engine constructor.
var engineCfgFuncs = map[string]string{
	simImportPath:  "NewEngine",
	coreImportPath: "NewWideRunnerFrom",
}

// EngineCfg forbids direct engine construction outside the engine layers.
// sim.NewEngine and core.NewWideRunnerFrom instantiate a width without
// passing through fault.EngineConfig's validator, so a caller elsewhere in
// the tree could run a lane width the configuration surface rejects — and
// would sidestep the worker sharding that keeps campaign results
// bit-identical. Everything above the campaign executor selects its engine
// through EngineConfig.
var EngineCfg = &Analyzer{
	Name: "enginecfg",
	Doc:  "forbid direct engine construction (sim.NewEngine, core.NewWideRunnerFrom) outside internal/sim, internal/core and internal/fault (configure fault.EngineConfig)",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			scoped := false
			for _, dir := range engineCfgDirs {
				if strings.HasPrefix(f.Dir(), dir) {
					scoped = true
					break
				}
			}
			if scoped {
				continue
			}
			for path, ctor := range engineCfgFuncs {
				local := importName(f.AST, path)
				if local == "" || local == "_" || local == "." {
					continue
				}
				ast.Inspect(f.AST, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					// Generic constructors may appear instantiated
					// (pkg.New[W](...)) or inferred (pkg.New(...)).
					fun := call.Fun
					switch e := fun.(type) {
					case *ast.IndexExpr:
						fun = e.X
					case *ast.IndexListExpr:
						fun = e.X
					}
					sel, ok := fun.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != ctor {
						return true
					}
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == local && id.Obj == nil {
						p.Reportf(call.Pos(), "direct %s.%s call bypasses the engine-configuration validator: set fault.EngineConfig on the campaign", local, ctor)
					}
					return true
				})
			}
		}
	},
}

// obsRegisterFuncs are the obs.Registry registration methods whose first
// argument is the metric name.
var obsRegisterFuncs = map[string]bool{
	"NewCounter":   true,
	"NewGauge":     true,
	"NewGaugeFunc": true,
	"NewHistogram": true,
}

// obsUnits are the unit suffixes the metric naming scheme permits.
var obsUnits = map[string]bool{
	"total": true, "count": true, "ns": true, "bytes": true, "ratio": true,
}

// ObsNames enforces the scone_<pkg>_<metric>_<unit> naming scheme at obs
// registration sites. Metric names are API: dashboards and alert rules
// outlive refactors, so the scheme is pinned mechanically — a literal name
// passed to NewCounter/NewGauge/NewGaugeFunc/NewHistogram must be
// scone-prefixed lowercase snake_case ending in a known unit, and inside
// internal/<pkg> the name's package segment must match the directory.
var ObsNames = &Analyzer{
	Name: "obsnames",
	Doc:  "enforce scone_<pkg>_<metric>_<unit> names at obs registration sites (unit: total/count/ns/bytes/ratio)",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			// Inside internal/<pkg>/ the name must carry that package's
			// segment; elsewhere (cmd/ looking up shared instruments)
			// only the overall shape is checked.
			wantPkg := ""
			if rest, ok := strings.CutPrefix(f.Dir(), "internal/"); ok {
				wantPkg = rest[:strings.Index(rest, "/")]
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !obsRegisterFuncs[sel.Sel.Name] {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				checkObsName(p, lit.Pos(), name, wantPkg)
				return true
			})
		}
	},
}

// bddImportPath is the BDD package ProveBudget guards, and
// proveBudgetDirs the analysis packages where unbounded managers are
// forbidden. Synthesis and experiment code may still size managers freely:
// only the analyses that run inside lint rules and service jobs must
// degrade to a skip/unknown verdict instead of growing without bound.
const bddImportPath = "repro/internal/bdd"

var proveBudgetDirs = []string{"internal/lint/", "internal/prove/"}

// ProveBudget forbids bare bdd.New calls in internal/lint and
// internal/prove. Both packages run BDD analyses on untrusted netlists
// where node growth is the failure mode; bdd.NewWithBudget plus
// bdd.Guarded turns a blow-up into a reported skip or an unknown verdict,
// while a bare bdd.New silently removes the ceiling.
var ProveBudget = &Analyzer{
	Name: "provebudget",
	Doc:  "forbid bare bdd.New in internal/lint and internal/prove (use bdd.NewWithBudget + bdd.Guarded)",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			if f.Test {
				continue
			}
			scoped := false
			for _, dir := range proveBudgetDirs {
				if strings.HasPrefix(f.Dir(), dir) {
					scoped = true
					break
				}
			}
			if !scoped {
				continue
			}
			local := importName(f.AST, bddImportPath)
			if local == "" || local == "_" || local == "." {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "New" {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == local && id.Obj == nil {
					p.Reportf(call.Pos(), "bare bdd.New in analysis code has no node ceiling: use bdd.NewWithBudget and run under bdd.Guarded")
				}
				return true
			})
		}
	},
}

// v1RoutesDir is the package whose HTTP surface is versioned, and
// v1RoutesShim the one file allowed to register unversioned aliases.
const (
	v1RoutesDir  = "internal/service/"
	v1RoutesShim = "http_legacy.go"
)

// muxRegisterFuncs are the mux methods whose first argument is a route
// pattern.
var muxRegisterFuncs = map[string]bool{
	"HandleFunc": true,
	"Handle":     true,
}

// V1Routes keeps the service's HTTP surface versioned: a string-literal
// route pattern registered in internal/service must live under /v1/.
// The one sanctioned exception is the legacy-alias shim http_legacy.go,
// which carries the deprecated unversioned paths (Deprecation header, old
// flat error envelope); routing anywhere else must go through /v1 so the
// deprecation story stays enforceable. cmd/ binaries are out of scope —
// the daemon legitimately mounts "/" and /debug/pprof/.
var V1Routes = &Analyzer{
	Name: "v1routes",
	Doc:  "require /v1/ route patterns in internal/service outside the legacy-alias shim http_legacy.go",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			if f.Test || !strings.HasPrefix(f.Dir(), v1RoutesDir) {
				continue
			}
			if strings.HasSuffix(f.Path, "/"+v1RoutesShim) {
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !muxRegisterFuncs[sel.Sel.Name] {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				pattern, err := strconv.Unquote(lit.Value)
				if err != nil {
					return true
				}
				// Patterns may carry a "METHOD " prefix (net/http 1.22
				// enhanced routing); the path component follows it.
				path := pattern
				if i := strings.IndexByte(pattern, ' '); i >= 0 {
					path = strings.TrimSpace(pattern[i+1:])
				}
				if !strings.HasPrefix(path, "/v1/") {
					p.Reportf(lit.Pos(), "unversioned route %q in internal/service: version it under /v1/ (legacy aliases belong in %s)", pattern, v1RoutesShim)
				}
				return true
			})
		}
	},
}

// checkObsName reports naming-scheme violations for one registered metric.
func checkObsName(p *Pass, pos token.Pos, name, wantPkg string) {
	parts := strings.Split(name, "_")
	if len(parts) < 4 || parts[0] != "scone" {
		p.Reportf(pos, "metric %q does not follow scone_<pkg>_<metric>_<unit>", name)
		return
	}
	for _, seg := range parts {
		for _, r := range seg {
			if (r < 'a' || r > 'z') && (r < '0' || r > '9') {
				p.Reportf(pos, "metric %q is not lowercase snake_case", name)
				return
			}
		}
		if seg == "" {
			p.Reportf(pos, "metric %q has an empty name segment", name)
			return
		}
	}
	if unit := parts[len(parts)-1]; !obsUnits[unit] {
		p.Reportf(pos, "metric %q ends in %q; unit must be one of total, count, ns, bytes or ratio", name, unit)
		return
	}
	if wantPkg != "" && parts[1] != wantPkg {
		p.Reportf(pos, "metric %q carries package segment %q but is registered in internal/%s", name, parts[1], wantPkg)
	}
}
