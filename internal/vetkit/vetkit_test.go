package vetkit

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materialises a fake module in a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for path, src := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestNoRand(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/attack/bad.go":     "package attack\n\nimport \"math/rand\"\n\nvar _ = rand.Int\n",
		"internal/attack/v2.go":      "package attack\n\nimport mrand \"math/rand/v2\"\n\nvar _ = mrand.Int\n",
		"internal/attack/ok_test.go": "package attack\n\nimport \"math/rand\"\n\nvar _ = rand.Int\n",
		"internal/rng/rng.go":        "package rng\n\nimport \"math/rand\"\n\nvar _ = rand.Int\n",
	})
	diags, err := Run(root, []*Analyzer{NoRand})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Pos.Filename != "internal/attack/bad.go" && d.Pos.Filename != "internal/attack/v2.go" {
			t.Errorf("finding in wrong file: %s", d.String())
		}
	}
}

func TestCachedCompile(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/fault/bad.go": `package fault

import "repro/internal/sim"

func f(m any) { sim.Compile(m) }
`,
		"internal/fault/ok.go": `package fault

import "repro/internal/sim"

func g(m any) { sim.CompileCached(m) }
`,
		"internal/fault/shadow.go": `package fault

func h() {
	type simT struct{}
	sim := struct{ Compile func() }{}
	sim.Compile()
	_ = simT{}
}
`,
		"internal/fault/ok_test.go": `package fault

import "repro/internal/sim"

func t(m any) { sim.Compile(m) }
`,
		"internal/sim/compile.go": `package sim

func Compile(m any) {}

func CompileCached(m any) { Compile(m) }
`,
	})
	diags, err := Run(root, []*Analyzer{CachedCompile})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
	if d := diags[0]; d.Pos.Filename != "internal/fault/bad.go" || !strings.Contains(d.Message, "CompileCached") {
		t.Fatalf("unexpected finding: %s", d.String())
	}
}

func TestCtxExecute(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/service/bad.go": `package service

func f(c interface{ Execute(func()) }) { c.Execute(nil) }
`,
		"internal/service/ok.go": `package service

import "context"

func g(c interface {
	ExecuteContext(context.Context, func()) error
}) {
	c.ExecuteContext(context.Background(), nil)
}
`,
		"internal/service/ok_test.go": `package service

func t(c interface{ Execute(func()) }) { c.Execute(nil) }
`,
		"cmd/sconed/bad.go": `package main

func f(c interface{ Execute(func()) }) { c.Execute(nil) }
`,
		"internal/experiments/ok.go": `package experiments

func h(c interface{ Execute(func()) }) { c.Execute(nil) }
`,
	})
	diags, err := Run(root, []*Analyzer{CtxExecute})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Pos.Filename != "internal/service/bad.go" && d.Pos.Filename != "cmd/sconed/bad.go" {
			t.Errorf("finding in wrong file: %s", d.String())
		}
		if !strings.Contains(d.Message, "ExecuteContext") {
			t.Errorf("message should point at ExecuteContext: %s", d.String())
		}
	}
}

func TestObsNames(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/sim/ok.go": `package sim

func f(reg interface {
	NewCounter(name, help string) any
	NewHistogram(name, help string, bounds []int64) any
}) {
	reg.NewCounter("scone_sim_evals_total", "evals")
	reg.NewHistogram("scone_sim_batch_ns", "latency", nil)
}
`,
		"internal/sim/bad.go": `package sim

func g(reg interface {
	NewCounter(name, help string) any
	NewGauge(name, help string) any
	NewGaugeFunc(name, help string, fn func() int64) any
}) {
	reg.NewCounter("sim_evals_total", "missing scone prefix")
	reg.NewCounter("scone_fault_runs_total", "wrong package segment")
	reg.NewGauge("scone_sim_queue_depth", "missing unit")
	reg.NewGaugeFunc("scone_sim_Queue_depth_count", "upper case", nil)
}
`,
		"cmd/bench/main.go": `package main

func h(reg interface{ NewCounter(name, help string) any }) {
	reg.NewCounter("scone_sim_evals_total", "cmd lookup: shape only, no package check")
	reg.NewCounter("scone_bench_elapsed_seconds", "bad unit")
}
`,
		"internal/sim/ok_test.go": `package sim

func t(reg interface{ NewCounter(name, help string) any }) {
	reg.NewCounter("anything_goes", "tests are exempt")
}
`,
	})
	diags, err := Run(root, []*Analyzer{ObsNames})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 5 {
		t.Fatalf("got %d findings, want 5: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Pos.Filename == "internal/sim/ok.go" || strings.HasSuffix(d.Pos.Filename, "_test.go") {
			t.Errorf("finding in clean file: %s", d.String())
		}
	}
}

func TestProveBudget(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/lint/bad.go": `package lint

import "repro/internal/bdd"

func f() { _ = bdd.New(8) }
`,
		"internal/prove/bad.go": `package prove

import b "repro/internal/bdd"

func f() { _ = b.New(8) }
`,
		"internal/prove/ok.go": `package prove

import "repro/internal/bdd"

func g() { _ = bdd.NewWithBudget(8, 1024) }
`,
		"internal/prove/shadow.go": `package prove

func h() {
	bdd := struct{ New func(int) int }{}
	bdd.New(8)
}
`,
		"internal/prove/ok_test.go": `package prove

import "repro/internal/bdd"

func t() { _ = bdd.New(8) }
`,
		"internal/synth/ok.go": `package synth

import "repro/internal/bdd"

func g() { _ = bdd.New(8) }
`,
	})
	diags, err := Run(root, []*Analyzer{ProveBudget})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Pos.Filename != "internal/lint/bad.go" && d.Pos.Filename != "internal/prove/bad.go" {
			t.Errorf("finding in wrong file: %s", d.String())
		}
		if !strings.Contains(d.Message, "NewWithBudget") {
			t.Errorf("message should point at NewWithBudget: %s", d.String())
		}
	}
}

func TestV1Routes(t *testing.T) {
	root := writeTree(t, map[string]string{
		"internal/service/http.go": `package service

func f(mux interface {
	HandleFunc(pattern string, h func())
	Handle(pattern string, h any)
}) {
	mux.HandleFunc("POST /v1/jobs", nil)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", nil)
	mux.Handle("/v1/metrics", nil)
	mux.HandleFunc("GET /healthz", nil)
	mux.Handle("/metrics", nil)
}
`,
		"internal/service/http_legacy.go": `package service

func g(mux interface{ HandleFunc(pattern string, h func()) }) {
	mux.HandleFunc("GET /healthz", nil)
	mux.HandleFunc("GET /metrics", nil)
}
`,
		"internal/service/ok_test.go": `package service

func t(mux interface{ HandleFunc(pattern string, h func()) }) {
	mux.HandleFunc("GET /unversioned", nil)
}
`,
		"cmd/sconed/main.go": `package main

func h(mux interface {
	HandleFunc(pattern string, h func())
	Handle(pattern string, h any)
}) {
	mux.HandleFunc("/debug/pprof/", nil)
	mux.Handle("/", nil)
}
`,
	})
	diags, err := Run(root, []*Analyzer{V1Routes})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Pos.Filename != "internal/service/http.go" {
			t.Errorf("finding in wrong file: %s", d.String())
		}
		if !strings.Contains(d.Message, "http_legacy.go") {
			t.Errorf("message should point at the shim: %s", d.String())
		}
	}
}

func TestEngineCfg(t *testing.T) {
	root := writeTree(t, map[string]string{
		// Instantiated and inferred generic calls outside the engine
		// layers are both findings.
		"internal/attack/bad.go": `package attack

import "repro/internal/sim"

func f(c *sim.Compiled) { _ = sim.NewEngine[sim.Word4](c) }
`,
		"cmd/sconetrace/bad.go": `package main

import (
	"repro/internal/core"
	"repro/internal/sim"
)

func g(d *core.Design, c *sim.Compiled) { _ = core.NewWideRunnerFrom(d, c) }
`,
		// The engine layers themselves construct freely.
		"internal/fault/ok.go": `package fault

import (
	"repro/internal/core"
	"repro/internal/sim"
)

func h(d *core.Design, c *sim.Compiled) { _ = core.NewWideRunnerFrom[sim.Word2](d, c) }
`,
		"internal/core/ok.go": `package core

import "repro/internal/sim"

type Design struct{}

func NewWideRunnerFrom(d *Design, c *sim.Compiled) any { return sim.NewEngine[sim.Word1](c) }
`,
		// Tests may build engines directly (the sim parity tests do).
		"internal/attack/ok_test.go": `package attack

import "repro/internal/sim"

func t(c *sim.Compiled) { _ = sim.NewEngine[sim.Word1](c) }
`,
		"internal/sim/sim.go": `package sim

type Compiled struct{}
type Word1 [1]uint64
type Word2 [2]uint64
type Word4 [4]uint64

func NewEngine[W any](c *Compiled) any { return nil }
`,
	})
	diags, err := Run(root, []*Analyzer{EngineCfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Pos.Filename != "internal/attack/bad.go" && d.Pos.Filename != "cmd/sconetrace/bad.go" {
			t.Errorf("finding in wrong file: %s", d.String())
		}
		if !strings.Contains(d.Message, "fault.EngineConfig") {
			t.Errorf("message should point at the configuration surface: %s", d.String())
		}
	}
}

func TestSkipsTestdataAndHiddenDirs(t *testing.T) {
	root := writeTree(t, map[string]string{
		"pkg/testdata/bad.go": "package broken !!!\n",
		"pkg/.hidden/bad.go":  "package broken !!!\n",
		"pkg/_skipped/bad.go": "package broken !!!\n",
		"pkg/ok.go":           "package pkg\n",
	})
	diags, err := Run(root, Analyzers())
	if err != nil {
		t.Fatalf("walker must skip testdata/hidden dirs: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("unexpected findings: %v", diags)
	}
}

// TestRepoIsClean runs every analyzer over this repository itself: the
// build gates on sconevet, so the source tree must stay finding-free.
func TestRepoIsClean(t *testing.T) {
	diags, err := Run(filepath.Join("..", ".."), Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d.String())
	}
}
