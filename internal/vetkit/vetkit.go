// Package vetkit is a minimal go/analysis-style framework built on the
// standard library's go/ast and go/parser only, so the repository's custom
// vet passes (cmd/sconevet) need no external module. An Analyzer receives
// every parsed file of the module with its module-relative path and
// reports position-anchored diagnostics.
package vetkit

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// File is one parsed source file.
type File struct {
	Path string    // module-relative slash path, e.g. "internal/sim/compile.go"
	Test bool      // *_test.go
	AST  *ast.File // parsed with comments
}

// Dir returns the file's module-relative directory with a trailing slash
// ("" for the module root), so analyzers can scope rules by package with
// a plain prefix test.
func (f *File) Dir() string {
	d := filepath.ToSlash(filepath.Dir(f.Path))
	if d == "." {
		return ""
	}
	return d + "/"
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d *Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass hands one analyzer the parsed module and collects its findings.
type Pass struct {
	Fset  *token.FileSet
	Files []*File

	analyzer string
	diags    *[]Diagnostic
}

// Reportf records a finding at the given position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one vet pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// ParseModule parses every .go file under root, skipping testdata,
// vendor and hidden directories. Paths in the result (and in reported
// positions) are relative to root.
func ParseModule(root string) (*token.FileSet, []*File, error) {
	fset := token.NewFileSet()
	var files []*File
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		f, err := parser.ParseFile(fset, rel, src, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", rel, err)
		}
		files = append(files, &File{
			Path: rel,
			Test: strings.HasSuffix(name, "_test.go"),
			AST:  f,
		})
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return fset, files, nil
}

// Run parses the module once and applies every analyzer, returning all
// findings sorted by position.
func Run(root string, analyzers []*Analyzer) ([]Diagnostic, error) {
	fset, files, err := ParseModule(root)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		a.Run(&Pass{Fset: fset, Files: files, analyzer: a.Name, diags: &diags})
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// importName returns the local name under which the file imports the
// given path, or "" when it does not import it.
func importName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return ""
}
