package sim

import (
	"sort"
	"sync"

	"repro/internal/netlist"
)

// program is the compiled instruction-stream form of a module's
// combinational logic: struct-of-arrays operand storage (contiguous in0 /
// in1 / in2 / out slices) plus a run table. Lowering folds constants (their
// values are written once at simulator construction), collapses BUF chains
// into an alias table, and schedules the remaining gates by (logic level,
// opcode): gates on the same level are mutually independent, so a stable
// sort inside each level groups same-opcode gates into long homogeneous
// runs. Evaluation then dispatches once per run instead of once per gate,
// and each run executes a tight loop specialised for its opcode — this is
// where the speedup over the per-cell interpreter comes from.
//
// A second, unfolded stream (aOp/aIn*/aOut, strict levelization order)
// mirrors every cell of the module; it is the fallback used when a fault
// injector targets a net the fast stream does not materialise (a collapsed
// BUF output or a folded constant), and it reproduces the per-cell
// injection semantics of the reference interpreter exactly.
type program struct {
	nets int // number of module nets; slots 1..nets hold net values

	// alias[n] is the slot consumers read for net n when no fault forces
	// full materialisation: BUF outputs alias their transitive source.
	alias []int32
	// ident is the identity slot map, used while the full stream runs.
	ident []int32
	// folded[n] reports that the fast stream does not recompute net n each
	// Eval (collapsed BUF outputs and folded constants).
	folded []bool

	// Constant cells, applied once at simulator construction.
	constNets []int32
	constVals []uint64

	// Fast stream: run-scheduled instructions. rIn2 is only meaningful for
	// MUX2 instructions (the select operand).
	rIn0, rIn1, rIn2, rOut []int32
	runs                   []opRun

	// Full stream (every cell, original opcodes, levelization order).
	aOp              []uint8
	aIn0, aIn1, aIn2 []int32
	aOut             []int32

	// Sequential cells: Q nets and D inputs (alias-resolved for the fast
	// and segmented paths, literal for the full path).
	dffOut    []int32
	dffInFast []int32
	dffInFull []int32
}

// opRun is one homogeneous span [lo, hi) of the fast stream.
type opRun struct {
	op     uint8
	lo, hi int32
}

// lower builds the program for a validated, levelized module.
func lower(m *netlist.Module, order, dffs []int) *program {
	nets := m.NumNets()
	p := &program{nets: nets}
	p.alias = make([]int32, nets+1)
	p.ident = make([]int32, nets+1)
	p.folded = make([]bool, nets+1)
	for i := range p.alias {
		p.alias[i] = int32(i)
		p.ident[i] = int32(i)
	}

	// First pass, in levelization order: fold constants, collapse BUF
	// chains, compute logic levels, and collect the surviving gates.
	type inst struct {
		op            uint8
		in0, in1, in2 int32
		out           int32
		level, seq    int
	}
	level := make([]int, nets+1)
	insts := make([]inst, 0, len(order))
	for _, ci := range order {
		c := &m.Cells[ci]
		out := int32(c.Out)
		lv := 0
		for _, in := range c.Inputs() {
			if level[in] > lv {
				lv = level[in]
			}
		}
		switch c.Kind {
		case netlist.KindConst0:
			p.constNets = append(p.constNets, out)
			p.constVals = append(p.constVals, 0)
			p.folded[out] = true
			level[out] = 0
		case netlist.KindConst1:
			p.constNets = append(p.constNets, out)
			p.constVals = append(p.constVals, ^uint64(0))
			p.folded[out] = true
			level[out] = 0
		case netlist.KindBuf:
			p.alias[out] = p.alias[c.In[0]]
			p.folded[out] = true
			level[out] = level[c.In[0]]
		default:
			lv++
			level[out] = lv
			insts = append(insts, inst{
				op:  uint8(c.Kind),
				in0: p.alias[c.In[0]], in1: p.alias[c.In[1]], in2: p.alias[c.In[2]],
				out: out, level: lv, seq: len(insts),
			})
		}
	}

	// Schedule: stable (level, opcode) sort. Gates sharing a level are
	// independent, so grouping them by opcode is a legal topological order
	// and maximises run length.
	sort.Slice(insts, func(a, b int) bool {
		ia, ib := &insts[a], &insts[b]
		if ia.level != ib.level {
			return ia.level < ib.level
		}
		if ia.op != ib.op {
			return ia.op < ib.op
		}
		return ia.seq < ib.seq
	})
	for i := range insts {
		in := &insts[i]
		if len(p.runs) == 0 || p.runs[len(p.runs)-1].op != in.op {
			p.runs = append(p.runs, opRun{op: in.op, lo: int32(i), hi: int32(i)})
		}
		p.runs[len(p.runs)-1].hi = int32(i + 1)
		p.rIn0 = append(p.rIn0, in.in0)
		p.rIn1 = append(p.rIn1, in.in1)
		p.rIn2 = append(p.rIn2, in.in2)
		p.rOut = append(p.rOut, in.out)
	}

	// Full stream: every combinational cell with its original opcode.
	p.aOp = make([]uint8, 0, len(order))
	for _, ci := range order {
		c := &m.Cells[ci]
		p.aOp = append(p.aOp, uint8(c.Kind))
		p.aIn0 = append(p.aIn0, int32(c.In[0]))
		p.aIn1 = append(p.aIn1, int32(c.In[1]))
		p.aIn2 = append(p.aIn2, int32(c.In[2]))
		p.aOut = append(p.aOut, int32(c.Out))
	}

	for _, ci := range dffs {
		c := &m.Cells[ci]
		p.dffOut = append(p.dffOut, int32(c.Out))
		p.dffInFull = append(p.dffInFull, int32(c.In[0]))
		p.dffInFast = append(p.dffInFast, p.alias[c.In[0]])
	}
	return p
}

// evalRange executes fast-stream instructions [lo, hi) against the value
// slots: one opcode dispatch per run, then a tight specialised loop. It is
// generic over the lane-word width; each instantiation's inner loops
// operate on fixed-size [W]uint64 arrays, which the compiler unrolls (and,
// for W > 1, can auto-vectorize into 128/256-bit SIMD ops). Wider words
// amortise the per-instruction dispatch and operand-index loads over W
// times the lanes — the engine's main single-core throughput lever.
func evalRange[W Word](p *program, v []W, lo, hi int) {
	for _, r := range p.runs {
		if int(r.lo) >= hi {
			return
		}
		a, b := int(r.lo), int(r.hi)
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if a >= b {
			continue
		}
		in0 := p.rIn0[a:b]
		in1 := p.rIn1[a:b]
		out := p.rOut[a:b]
		switch netlist.CellKind(r.op) {
		case netlist.KindInv:
			for i, o := range out {
				x := v[in0[i]]
				var d W
				for k := 0; k < len(d); k++ {
					d[k] = ^x[k]
				}
				v[o] = d
			}
		case netlist.KindAnd2:
			for i, o := range out {
				x, y := v[in0[i]], v[in1[i]]
				var d W
				for k := 0; k < len(d); k++ {
					d[k] = x[k] & y[k]
				}
				v[o] = d
			}
		case netlist.KindOr2:
			for i, o := range out {
				x, y := v[in0[i]], v[in1[i]]
				var d W
				for k := 0; k < len(d); k++ {
					d[k] = x[k] | y[k]
				}
				v[o] = d
			}
		case netlist.KindNand2:
			for i, o := range out {
				x, y := v[in0[i]], v[in1[i]]
				var d W
				for k := 0; k < len(d); k++ {
					d[k] = ^(x[k] & y[k])
				}
				v[o] = d
			}
		case netlist.KindNor2:
			for i, o := range out {
				x, y := v[in0[i]], v[in1[i]]
				var d W
				for k := 0; k < len(d); k++ {
					d[k] = ^(x[k] | y[k])
				}
				v[o] = d
			}
		case netlist.KindXor2:
			for i, o := range out {
				x, y := v[in0[i]], v[in1[i]]
				var d W
				for k := 0; k < len(d); k++ {
					d[k] = x[k] ^ y[k]
				}
				v[o] = d
			}
		case netlist.KindXnor2:
			for i, o := range out {
				x, y := v[in0[i]], v[in1[i]]
				var d W
				for k := 0; k < len(d); k++ {
					d[k] = ^(x[k] ^ y[k])
				}
				v[o] = d
			}
		case netlist.KindMux2:
			in2 := p.rIn2[a:b]
			for i, o := range out {
				x, y, s := v[in0[i]], v[in1[i]], v[in2[i]]
				var d W
				for k := 0; k < len(d); k++ {
					d[k] = (x[k] &^ s[k]) | (y[k] & s[k])
				}
				v[o] = d
			}
		}
	}
}

// NumInstructions returns the fast-stream instruction count — the number of
// gate evaluations one Eval performs (folded constants and collapsed BUFs
// excluded). Benchmarks use it to report gate-lane throughput.
func (c *Compiled) NumInstructions() int { return len(c.prog.rOut) }

// compileCache memoises Compile results process-wide, keyed by module
// pointer identity. Campaigns, the experiments package and the command-line
// tools all funnel the same built designs through Compile; the cache makes
// re-levelizing and re-lowering them free. Modules must not be structurally
// modified after their first compilation (annotation-only updates such as
// SetTag are safe).
var compileCache sync.Map // *netlist.Module -> *Compiled

// CompileCached is Compile with process-wide memoisation on the module
// pointer. Errors are not cached.
func CompileCached(m *netlist.Module) (*Compiled, error) {
	if c, ok := compileCache.Load(m); ok {
		countCacheHit()
		return c.(*Compiled), nil
	}
	countCacheMiss()
	c, err := Compile(m)
	if err != nil {
		return nil, err
	}
	actual, _ := compileCache.LoadOrStore(m, c)
	return actual.(*Compiled), nil
}
