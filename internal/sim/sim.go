// Package sim provides a levelized, 64-lane bit-parallel gate-level
// simulator for netlist.Module designs.
//
// Every net carries a 64-bit word in which bit L is the logic value seen by
// simulation lane L, so one pass over the netlist evaluates 64 independent
// stimulus patterns. This is the property that makes the 80,000-run fault
// campaigns of the paper cheap: a campaign batches runs 64 at a time.
//
// Sequential designs are simulated cycle by cycle: Step evaluates the
// combinational logic with the current register state, then clocks every
// DFF. Fault injection is provided through the Injector interface; the
// fault package implements it.
package sim

import (
	"fmt"

	"repro/internal/netlist"
)

// Lanes is the number of parallel simulation lanes in one pass.
const Lanes = 64

// Injector mutates net values during simulation. Apply is called for every
// net listed by Nets() immediately after the net's value is computed (gate
// output, register output at clocking time, or primary input at load time).
type Injector interface {
	// Nets returns the set of nets the injector wants to observe; the
	// simulator only calls Apply for these.
	Nets() []netlist.Net
	// Apply returns the (possibly faulted) value of net n in cycle c,
	// given the fault-free lane word v.
	Apply(c int, n netlist.Net, v uint64) uint64
}

// Simulator executes one Module. It is not safe for concurrent use; create
// one Simulator per goroutine (construction is cheap after the first
// levelization, which is cached in the module wrapper Compiled).
type Simulator struct {
	mod    *netlist.Module
	order  []int // topological order of combinational cells
	dffs   []int // cell indices of DFFs, in Cells order
	values []uint64
	dffTmp []uint64
	cycle  int

	hasFault []bool
	injector Injector
}

// Compiled caches the levelization of a module so many Simulators can be
// created without re-sorting.
type Compiled struct {
	Mod   *netlist.Module
	order []int
	dffs  []int
}

// Compile levelizes the module once. It returns an error if the module has
// combinational cycles or fails validation.
func Compile(m *netlist.Module) (*Compiled, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("sim: module %q invalid: %w", m.Name, err)
	}
	order, err := m.Levelize()
	if err != nil {
		return nil, err
	}
	var dffs []int
	for ci := range m.Cells {
		if m.Cells[ci].Kind.IsSequential() {
			dffs = append(dffs, ci)
		}
	}
	return &Compiled{Mod: m, order: order, dffs: dffs}, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(m *netlist.Module) *Compiled {
	c, err := Compile(m)
	if err != nil {
		panic(err)
	}
	return c
}

// NewSimulator creates a simulator over the compiled module with all state
// and inputs initialised to zero.
func (c *Compiled) NewSimulator() *Simulator {
	return &Simulator{
		mod:    c.Mod,
		order:  c.order,
		dffs:   c.dffs,
		values: make([]uint64, c.Mod.NumNets()+1),
	}
}

// New compiles m and returns a simulator; it panics if the module is
// invalid. Prefer Compile + NewSimulator when creating many simulators.
func New(m *netlist.Module) *Simulator {
	return MustCompile(m).NewSimulator()
}

// Module returns the simulated module.
func (s *Simulator) Module() *netlist.Module { return s.mod }

// Cycle returns the index of the next cycle Step will execute.
func (s *Simulator) Cycle() int { return s.cycle }

// SetInjector installs (or clears, with nil) the fault injector.
func (s *Simulator) SetInjector(inj Injector) {
	s.injector = inj
	if inj == nil {
		s.hasFault = nil
		return
	}
	s.hasFault = make([]bool, s.mod.NumNets()+1)
	for _, n := range inj.Nets() {
		if n > 0 && int(n) <= s.mod.NumNets() {
			s.hasFault[n] = true
		}
	}
}

// Reset zeroes all register state and the cycle counter. Input values are
// retained.
func (s *Simulator) Reset() {
	s.cycle = 0
	for _, ci := range s.dffs {
		s.values[s.mod.Cells[ci].Out] = 0
	}
}

// SetInput loads a primary-input port. vals[L] supplies the port value for
// lane L (bit i of vals[L] drives bit i of the bus in lane L); missing lanes
// default to zero. It panics if the port does not exist or len(vals) exceeds
// Lanes.
func (s *Simulator) SetInput(port string, vals []uint64) {
	p := s.mod.FindInput(port)
	if p == nil {
		panic(fmt.Sprintf("sim: module %q has no input %q", s.mod.Name, port))
	}
	if len(vals) > Lanes {
		panic(fmt.Sprintf("sim: %d lane values exceed %d lanes", len(vals), Lanes))
	}
	for bi, n := range p.Bits {
		var w uint64
		for lane, v := range vals {
			w |= ((v >> uint(bi)) & 1) << uint(lane)
		}
		s.values[n] = s.applyFault(n, w)
	}
}

// SetInputBroadcast loads the same value into every lane of the port.
func (s *Simulator) SetInputBroadcast(port string, val uint64) {
	p := s.mod.FindInput(port)
	if p == nil {
		panic(fmt.Sprintf("sim: module %q has no input %q", s.mod.Name, port))
	}
	for bi, n := range p.Bits {
		var w uint64
		if (val>>uint(bi))&1 == 1 {
			w = ^uint64(0)
		}
		s.values[n] = s.applyFault(n, w)
	}
}

// SetInputLaneWords loads pre-transposed lane words: words[bi] is the lane
// word for bit bi of the port.
func (s *Simulator) SetInputLaneWords(port string, words []uint64) {
	p := s.mod.FindInput(port)
	if p == nil {
		panic(fmt.Sprintf("sim: module %q has no input %q", s.mod.Name, port))
	}
	if len(words) != p.Width() {
		panic(fmt.Sprintf("sim: port %q width %d, got %d words", port, p.Width(), len(words)))
	}
	for bi, n := range p.Bits {
		s.values[n] = s.applyFault(n, words[bi])
	}
}

func (s *Simulator) applyFault(n netlist.Net, v uint64) uint64 {
	if s.hasFault != nil && s.hasFault[n] {
		return s.injector.Apply(s.cycle, n, v)
	}
	return v
}

// Eval evaluates all combinational logic with the current inputs and
// register state, without advancing the clock. For purely combinational
// modules this is a complete simulation pass.
func (s *Simulator) Eval() {
	v := s.values
	cells := s.mod.Cells
	faulted := s.hasFault != nil
	for _, ci := range s.order {
		c := &cells[ci]
		var out uint64
		switch c.Kind {
		case netlist.KindConst0:
			out = 0
		case netlist.KindConst1:
			out = ^uint64(0)
		case netlist.KindBuf:
			out = v[c.In[0]]
		case netlist.KindInv:
			out = ^v[c.In[0]]
		case netlist.KindAnd2:
			out = v[c.In[0]] & v[c.In[1]]
		case netlist.KindOr2:
			out = v[c.In[0]] | v[c.In[1]]
		case netlist.KindNand2:
			out = ^(v[c.In[0]] & v[c.In[1]])
		case netlist.KindNor2:
			out = ^(v[c.In[0]] | v[c.In[1]])
		case netlist.KindXor2:
			out = v[c.In[0]] ^ v[c.In[1]]
		case netlist.KindXnor2:
			out = ^(v[c.In[0]] ^ v[c.In[1]])
		case netlist.KindMux2:
			sel := v[c.In[2]]
			out = (v[c.In[0]] &^ sel) | (v[c.In[1]] & sel)
		default:
			panic(fmt.Sprintf("sim: unexpected cell kind %s in combinational order", c.Kind))
		}
		if faulted && s.hasFault[c.Out] {
			out = s.injector.Apply(s.cycle, c.Out, out)
		}
		v[c.Out] = out
	}
}

// Step runs one clock cycle: combinational evaluation followed by clocking
// every DFF (Q <- D), then advances the cycle counter.
func (s *Simulator) Step() {
	s.Eval()
	// Two-phase latch so chained DFFs shift correctly regardless of
	// Cells order: capture all D values first, then commit.
	cells := s.mod.Cells
	if cap(s.dffTmp) < len(s.dffs) {
		s.dffTmp = make([]uint64, len(s.dffs))
	}
	tmp := s.dffTmp[:len(s.dffs)]
	for i, ci := range s.dffs {
		tmp[i] = s.values[cells[ci].In[0]]
	}
	for i, ci := range s.dffs {
		c := &cells[ci]
		out := tmp[i]
		if s.hasFault != nil && s.hasFault[c.Out] {
			out = s.injector.Apply(s.cycle, c.Out, out)
		}
		s.values[c.Out] = out
	}
	s.cycle++
}

// Run executes n clock cycles.
func (s *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Output reads a primary-output port, returning one value per lane.
func (s *Simulator) Output(port string) []uint64 {
	p := s.mod.FindOutput(port)
	if p == nil {
		panic(fmt.Sprintf("sim: module %q has no output %q", s.mod.Name, port))
	}
	out := make([]uint64, Lanes)
	for bi, n := range p.Bits {
		w := s.values[n]
		for lane := 0; lane < Lanes; lane++ {
			out[lane] |= ((w >> uint(lane)) & 1) << uint(bi)
		}
	}
	return out
}

// OutputLane reads a single lane of a primary-output port.
func (s *Simulator) OutputLane(port string, lane int) uint64 {
	p := s.mod.FindOutput(port)
	if p == nil {
		panic(fmt.Sprintf("sim: module %q has no output %q", s.mod.Name, port))
	}
	var out uint64
	for bi, n := range p.Bits {
		out |= ((s.values[n] >> uint(lane)) & 1) << uint(bi)
	}
	return out
}

// NetWord returns the raw 64-lane word currently on net n.
func (s *Simulator) NetWord(n netlist.Net) uint64 { return s.values[n] }

// BusLane reads the value of an arbitrary bus in one lane; useful for
// probing internal state (e.g. the S-box input a SIFA histogram bins on).
func (s *Simulator) BusLane(bus netlist.Bus, lane int) uint64 {
	var out uint64
	for bi, n := range bus {
		out |= ((s.values[n] >> uint(lane)) & 1) << uint(bi)
	}
	return out
}

// BusLanes reads an arbitrary bus across all lanes.
func (s *Simulator) BusLanes(bus netlist.Bus) []uint64 {
	out := make([]uint64, Lanes)
	for bi, n := range bus {
		w := s.values[n]
		for lane := 0; lane < Lanes; lane++ {
			out[lane] |= ((w >> uint(lane)) & 1) << uint(bi)
		}
	}
	return out
}

// EvalComb is a convenience for purely combinational modules: it loads the
// given input ports (broadcast across lanes from the single-lane values),
// evaluates, and returns the single-lane value of every output port.
func EvalComb(c *Compiled, inputs map[string]uint64) map[string]uint64 {
	s := c.NewSimulator()
	for name, val := range inputs {
		s.SetInputBroadcast(name, val)
	}
	s.Eval()
	out := make(map[string]uint64, len(c.Mod.Outputs))
	for i := range c.Mod.Outputs {
		out[c.Mod.Outputs[i].Name] = s.OutputLane(c.Mod.Outputs[i].Name, 0)
	}
	return out
}
