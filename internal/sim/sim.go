// Package sim provides a levelized, 64-lane bit-parallel gate-level
// simulator for netlist.Module designs.
//
// Every net carries a 64-bit word in which bit L is the logic value seen by
// simulation lane L, so one pass over the netlist evaluates 64 independent
// stimulus patterns. This is the property that makes the 80,000-run fault
// campaigns of the paper cheap: a campaign batches runs 64 at a time.
//
// Compile lowers the levelized netlist into a compiled instruction stream
// (struct-of-arrays program storage with constants folded and BUF chains
// collapsed) that Eval executes with one of three specialised loops: a
// branchless fast path when no injector is installed, a segmented path that
// only pauses at nets pre-marked by Injector.Nets(), and a full-fidelity
// fallback when a fault targets a folded net. EvalReference retains the
// original per-cell interpreter for differential testing and benchmarking.
//
// Sequential designs are simulated cycle by cycle: Step evaluates the
// combinational logic with the current register state, then clocks every
// DFF. Fault injection is provided through the Injector interface; the
// fault package implements it.
package sim

import (
	"fmt"

	"repro/internal/netlist"
)

// Lanes is the number of parallel simulation lanes in one pass.
const Lanes = 64

// Injector mutates net values during simulation. Apply is called for every
// net listed by Nets() immediately after the net's value is computed (gate
// output, register output at clocking time, or primary input at load time).
// Apply must be a pure function of (cycle, net, value): the compiled
// evaluator schedules independent gates for throughput, so the relative
// order of Apply calls across different nets within one cycle is
// unspecified.
type Injector interface {
	// Nets returns the set of nets the injector wants to observe; the
	// simulator only calls Apply for these.
	Nets() []netlist.Net
	// Apply returns the (possibly faulted) value of net n in cycle c,
	// given the fault-free lane word v.
	Apply(c int, n netlist.Net, v uint64) uint64
}

// evalMode selects which compiled loop Eval runs.
type evalMode uint8

const (
	// evalFast: no injector; run the branchless fast stream end to end.
	evalFast evalMode = iota
	// evalSegment: an injector is installed and every faulted net is
	// materialised by the fast stream; run it in segments, applying the
	// injector at each pre-marked instruction boundary.
	evalSegment
	// evalFull: a fault targets a folded net (collapsed BUF output or
	// constant); run the full per-cell stream with the reference
	// injection semantics.
	evalFull
)

// Simulator executes one Module. It is not safe for concurrent use; create
// one Simulator per goroutine (construction is cheap after the first
// compilation, which is cached in the module wrapper Compiled).
type Simulator struct {
	mod    *netlist.Module
	c      *Compiled
	values []uint64
	dffTmp []uint64
	cycle  int

	mode evalMode
	// read maps a net to the value slot holding its current logic value:
	// the alias table in fast/segmented mode (collapsed nets resolve to
	// their source), the identity table in full mode.
	read []int32
	// segs lists fast-stream instruction indices whose output net is
	// fault-marked, in topological order (segmented mode only).
	segs []int32

	hasFault []bool
	injector Injector
}

// Compiled caches the levelization and the lowered instruction stream of a
// module so many Simulators can be created without re-sorting.
type Compiled struct {
	Mod   *netlist.Module
	order []int
	dffs  []int
	prog  *program
}

// Compile levelizes the module once and lowers it to the instruction-stream
// program. It returns an error if the module has combinational cycles or
// fails validation.
func Compile(m *netlist.Module) (*Compiled, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("sim: module %q invalid: %w", m.Name, err)
	}
	order, err := m.Levelize()
	if err != nil {
		return nil, err
	}
	var dffs []int
	for ci := range m.Cells {
		if m.Cells[ci].Kind.IsSequential() {
			dffs = append(dffs, ci)
		}
	}
	p := lower(m, order, dffs)
	countCompile(p)
	return &Compiled{Mod: m, order: order, dffs: dffs, prog: p}, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(m *netlist.Module) *Compiled {
	c, err := Compile(m)
	if err != nil {
		panic(err)
	}
	return c
}

// NewSimulator creates a simulator over the compiled module with all state
// and inputs initialised to zero (and folded constants pre-loaded).
func (c *Compiled) NewSimulator() *Simulator {
	s := &Simulator{
		mod:    c.Mod,
		c:      c,
		values: make([]uint64, c.prog.nets+1),
		mode:   evalFast,
		read:   c.prog.alias,
	}
	for i, n := range c.prog.constNets {
		s.values[n] = c.prog.constVals[i]
	}
	return s
}

// New compiles m and returns a simulator; it panics if the module is
// invalid. Prefer Compile + NewSimulator when creating many simulators.
func New(m *netlist.Module) *Simulator {
	return MustCompile(m).NewSimulator()
}

// Module returns the simulated module.
func (s *Simulator) Module() *netlist.Module { return s.mod }

// Cycle returns the index of the next cycle Step will execute.
func (s *Simulator) Cycle() int { return s.cycle }

// SetInjector installs (or clears, with nil) the fault injector and selects
// the matching evaluation path: segmented when every faulted net is
// materialised by the fast stream, full-fidelity otherwise.
func (s *Simulator) SetInjector(inj Injector) {
	s.injector = inj
	p := s.c.prog
	// A previous full-fidelity run may have left faulted values on folded
	// constants; restore them before picking the new path.
	for i, n := range p.constNets {
		s.values[n] = p.constVals[i]
	}
	if inj == nil {
		s.hasFault = nil
		s.segs = nil
		s.mode = evalFast
		s.read = p.alias
		return
	}
	s.hasFault = make([]bool, s.mod.NumNets()+1)
	fallback := false
	for _, n := range inj.Nets() {
		if n > 0 && int(n) <= s.mod.NumNets() {
			s.hasFault[n] = true
			if p.folded[n] {
				fallback = true
			}
		}
	}
	if fallback {
		s.segs = nil
		s.mode = evalFull
		s.read = p.ident
		return
	}
	s.segs = s.segs[:0]
	for i, o := range p.rOut {
		if s.hasFault[o] {
			s.segs = append(s.segs, int32(i))
		}
	}
	s.mode = evalSegment
	s.read = p.alias
}

// Reset zeroes all register state and the cycle counter. Input values are
// retained.
func (s *Simulator) Reset() {
	s.cycle = 0
	for _, o := range s.c.prog.dffOut {
		s.values[o] = 0
	}
}

// SetInput loads a primary-input port. vals[L] supplies the port value for
// lane L (bit i of vals[L] drives bit i of the bus in lane L); missing lanes
// default to zero. It panics if the port does not exist or len(vals) exceeds
// Lanes.
func (s *Simulator) SetInput(port string, vals []uint64) {
	p := s.mod.FindInput(port)
	if p == nil {
		panic(fmt.Sprintf("sim: module %q has no input %q", s.mod.Name, port))
	}
	if len(vals) > Lanes {
		panic(fmt.Sprintf("sim: %d lane values exceed %d lanes", len(vals), Lanes))
	}
	for bi, n := range p.Bits {
		var w uint64
		for lane, v := range vals {
			w |= ((v >> uint(bi)) & 1) << uint(lane)
		}
		s.values[n] = s.applyFault(n, w)
	}
}

// SetInputBroadcast loads the same value into every lane of the port.
func (s *Simulator) SetInputBroadcast(port string, val uint64) {
	p := s.mod.FindInput(port)
	if p == nil {
		panic(fmt.Sprintf("sim: module %q has no input %q", s.mod.Name, port))
	}
	for bi, n := range p.Bits {
		var w uint64
		if (val>>uint(bi))&1 == 1 {
			w = ^uint64(0)
		}
		s.values[n] = s.applyFault(n, w)
	}
}

// SetInputLaneWords loads pre-transposed lane words: words[bi] is the lane
// word for bit bi of the port.
func (s *Simulator) SetInputLaneWords(port string, words []uint64) {
	p := s.mod.FindInput(port)
	if p == nil {
		panic(fmt.Sprintf("sim: module %q has no input %q", s.mod.Name, port))
	}
	if len(words) != p.Width() {
		panic(fmt.Sprintf("sim: port %q width %d, got %d words", port, p.Width(), len(words)))
	}
	for bi, n := range p.Bits {
		s.values[n] = s.applyFault(n, words[bi])
	}
}

func (s *Simulator) applyFault(n netlist.Net, v uint64) uint64 {
	if s.hasFault != nil && s.hasFault[n] {
		return s.injector.Apply(s.cycle, n, v)
	}
	return v
}

// Eval evaluates all combinational logic with the current inputs and
// register state, without advancing the clock. For purely combinational
// modules this is a complete simulation pass.
func (s *Simulator) Eval() {
	countEval()
	switch s.mode {
	case evalFast:
		p := s.c.prog
		p.evalRange(s.values, 0, len(p.rOut))
	case evalSegment:
		s.evalSegmented()
	default:
		s.evalFull()
	}
}

// evalSegmented runs the fast stream in segments, applying the injector at
// each instruction whose output net is fault-marked — the same per-net
// injection points, in the same topological order, as the reference
// interpreter.
func (s *Simulator) evalSegmented() {
	p := s.c.prog
	v := s.values
	lo := 0
	for _, si := range s.segs {
		p.evalRange(v, lo, int(si)+1)
		o := p.rOut[si]
		v[o] = s.injector.Apply(s.cycle, netlist.Net(o), v[o])
		lo = int(si) + 1
	}
	p.evalRange(v, lo, len(p.rOut))
}

// evalFull executes the unfolded per-cell stream with injection checks on
// every output — bit-for-bit the reference interpreter semantics, used when
// a fault targets a net the fast stream folds away.
func (s *Simulator) evalFull() {
	p := s.c.prog
	v := s.values
	for i := range p.aOp {
		var out uint64
		switch netlist.CellKind(p.aOp[i]) {
		case netlist.KindConst0:
			out = 0
		case netlist.KindConst1:
			out = ^uint64(0)
		case netlist.KindBuf:
			out = v[p.aIn0[i]]
		case netlist.KindInv:
			out = ^v[p.aIn0[i]]
		case netlist.KindAnd2:
			out = v[p.aIn0[i]] & v[p.aIn1[i]]
		case netlist.KindOr2:
			out = v[p.aIn0[i]] | v[p.aIn1[i]]
		case netlist.KindNand2:
			out = ^(v[p.aIn0[i]] & v[p.aIn1[i]])
		case netlist.KindNor2:
			out = ^(v[p.aIn0[i]] | v[p.aIn1[i]])
		case netlist.KindXor2:
			out = v[p.aIn0[i]] ^ v[p.aIn1[i]]
		case netlist.KindXnor2:
			out = ^(v[p.aIn0[i]] ^ v[p.aIn1[i]])
		case netlist.KindMux2:
			sel := v[p.aIn2[i]]
			out = (v[p.aIn0[i]] &^ sel) | (v[p.aIn1[i]] & sel)
		default:
			panic(fmt.Sprintf("sim: unexpected cell kind %s in combinational order", netlist.CellKind(p.aOp[i])))
		}
		o := p.aOut[i]
		if s.hasFault[o] {
			out = s.injector.Apply(s.cycle, netlist.Net(o), out)
		}
		v[o] = out
	}
}

// EvalReference is the original interpreted evaluator: a per-cell switch
// over the levelized netlist, with injection checks on every cell output.
// It computes exactly what Eval computes (materialising every net at its
// own slot) and exists as the differential-testing and benchmarking
// baseline for the compiled instruction stream.
func (s *Simulator) EvalReference() {
	v := s.values
	cells := s.mod.Cells
	faulted := s.hasFault != nil
	for _, ci := range s.c.order {
		c := &cells[ci]
		var out uint64
		switch c.Kind {
		case netlist.KindConst0:
			out = 0
		case netlist.KindConst1:
			out = ^uint64(0)
		case netlist.KindBuf:
			out = v[c.In[0]]
		case netlist.KindInv:
			out = ^v[c.In[0]]
		case netlist.KindAnd2:
			out = v[c.In[0]] & v[c.In[1]]
		case netlist.KindOr2:
			out = v[c.In[0]] | v[c.In[1]]
		case netlist.KindNand2:
			out = ^(v[c.In[0]] & v[c.In[1]])
		case netlist.KindNor2:
			out = ^(v[c.In[0]] | v[c.In[1]])
		case netlist.KindXor2:
			out = v[c.In[0]] ^ v[c.In[1]]
		case netlist.KindXnor2:
			out = ^(v[c.In[0]] ^ v[c.In[1]])
		case netlist.KindMux2:
			sel := v[c.In[2]]
			out = (v[c.In[0]] &^ sel) | (v[c.In[1]] & sel)
		default:
			panic(fmt.Sprintf("sim: unexpected cell kind %s in combinational order", c.Kind))
		}
		if faulted && s.hasFault[c.Out] {
			out = s.injector.Apply(s.cycle, c.Out, out)
		}
		v[c.Out] = out
	}
}

// Step runs one clock cycle: combinational evaluation followed by clocking
// every DFF (Q <- D), then advances the cycle counter.
func (s *Simulator) Step() {
	s.Eval()
	// Two-phase latch so chained DFFs shift correctly regardless of
	// Cells order: capture all D values first, then commit.
	p := s.c.prog
	din := p.dffInFast
	if s.mode == evalFull {
		din = p.dffInFull
	}
	if cap(s.dffTmp) < len(din) {
		s.dffTmp = make([]uint64, len(din))
	}
	tmp := s.dffTmp[:len(din)]
	for i, idx := range din {
		tmp[i] = s.values[idx]
	}
	for i, o := range p.dffOut {
		out := tmp[i]
		if s.hasFault != nil && s.hasFault[o] {
			out = s.injector.Apply(s.cycle, netlist.Net(o), out)
		}
		s.values[o] = out
	}
	s.cycle++
}

// Run executes n clock cycles.
func (s *Simulator) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Output reads a primary-output port, returning one value per lane.
func (s *Simulator) Output(port string) []uint64 {
	p := s.mod.FindOutput(port)
	if p == nil {
		panic(fmt.Sprintf("sim: module %q has no output %q", s.mod.Name, port))
	}
	out := make([]uint64, Lanes)
	for bi, n := range p.Bits {
		w := s.values[s.read[n]]
		for lane := 0; lane < Lanes; lane++ {
			out[lane] |= ((w >> uint(lane)) & 1) << uint(bi)
		}
	}
	return out
}

// OutputLane reads a single lane of a primary-output port.
func (s *Simulator) OutputLane(port string, lane int) uint64 {
	p := s.mod.FindOutput(port)
	if p == nil {
		panic(fmt.Sprintf("sim: module %q has no output %q", s.mod.Name, port))
	}
	var out uint64
	for bi, n := range p.Bits {
		out |= ((s.values[s.read[n]] >> uint(lane)) & 1) << uint(bi)
	}
	return out
}

// NetWord returns the raw 64-lane word currently on net n.
func (s *Simulator) NetWord(n netlist.Net) uint64 { return s.values[s.read[n]] }

// BusLane reads the value of an arbitrary bus in one lane; useful for
// probing internal state (e.g. the S-box input a SIFA histogram bins on).
func (s *Simulator) BusLane(bus netlist.Bus, lane int) uint64 {
	var out uint64
	for bi, n := range bus {
		out |= ((s.values[s.read[n]] >> uint(lane)) & 1) << uint(bi)
	}
	return out
}

// BusLanes reads an arbitrary bus across all lanes.
func (s *Simulator) BusLanes(bus netlist.Bus) []uint64 {
	out := make([]uint64, Lanes)
	for bi, n := range bus {
		w := s.values[s.read[n]]
		for lane := 0; lane < Lanes; lane++ {
			out[lane] |= ((w >> uint(lane)) & 1) << uint(bi)
		}
	}
	return out
}

// EvalComb is a convenience for purely combinational modules: it loads the
// given input ports (broadcast across lanes from the single-lane values),
// evaluates, and returns the single-lane value of every output port.
func EvalComb(c *Compiled, inputs map[string]uint64) map[string]uint64 {
	s := c.NewSimulator()
	for name, val := range inputs {
		s.SetInputBroadcast(name, val)
	}
	s.Eval()
	out := make(map[string]uint64, len(c.Mod.Outputs))
	for i := range c.Mod.Outputs {
		out[c.Mod.Outputs[i].Name] = s.OutputLane(c.Mod.Outputs[i].Name, 0)
	}
	return out
}
