// Package sim provides a levelized, bit-parallel gate-level simulator for
// netlist.Module designs.
//
// Every net carries one lane word — W machine words of 64 lanes each, with
// bit L of word k holding the logic value seen by simulation lane k*64+L —
// so one pass over the netlist evaluates 64×W independent stimulus
// patterns. This is the property that makes the 80,000-run fault campaigns
// of the paper cheap: a campaign batches runs 64 at a time and a wide
// engine evaluates several such batches per pass.
//
// The engine is generic over the word width: Engine[Word1] is the classic
// 64-lane simulator (and keeps the name Simulator), Engine[Word2] and
// Engine[Word4] run 128- and 256-bit-shaped inner loops the compiler can
// auto-vectorize. Width is an execution detail only — every width computes
// bit-identical per-lane results, so campaign digests and stored content
// addresses never depend on it. Lane width is selected through the engine
// configuration layer (fault.EngineConfig); NewEngine is the low-level
// constructor behind it.
//
// Compile lowers the levelized netlist into a compiled instruction stream
// (struct-of-arrays program storage with constants folded and BUF chains
// collapsed) that Eval executes with one of three specialised loops: a
// branchless fast path when no injector is installed, a segmented path that
// only pauses at nets pre-marked by Injector.Nets(), and a full-fidelity
// fallback when a fault targets a folded net. EvalReference retains the
// original per-cell interpreter for differential testing and benchmarking.
//
// Sequential designs are simulated cycle by cycle: Step evaluates the
// combinational logic with the current register state, then clocks every
// DFF. Fault injection is provided through the Injector interface; the
// fault package implements it.
package sim

import (
	"fmt"

	"repro/internal/netlist"
)

// Lanes is the number of parallel simulation lanes in one 64-bit machine
// word. It is also the logical campaign batch size: wider engines evaluate
// several 64-lane groups per pass but results are always accounted in
// Lanes-sized batches, which keeps stored content addresses width-agnostic.
const Lanes = 64

// Word constrains the engine's lane-word type: W consecutive 64-lane
// groups evaluated by one instruction stream pass. [4]uint64 gives the
// compiler 256-bit SIMD-shaped inner loops.
type Word interface {
	[1]uint64 | [2]uint64 | [4]uint64
}

// The supported lane-word widths.
type (
	// Word1 is the classic single-word, 64-lane layout.
	Word1 = [1]uint64
	// Word2 is the 128-lane layout (two 64-lane groups per pass).
	Word2 = [2]uint64
	// Word4 is the 256-lane layout (four 64-lane groups per pass).
	Word4 = [4]uint64
)

// MaxLaneWords is the widest supported engine word.
const MaxLaneWords = 4

// ValidLaneWords reports whether w is a supported engine word width. The
// engine-configuration layer validates against this before instantiating
// an engine.
func ValidLaneWords(w int) bool { return w == 1 || w == 2 || w == 4 }

// Injector mutates net values during simulation. Apply is called for every
// net listed by Nets() immediately after the net's value is computed (gate
// output, register output at clocking time, or primary input at load time).
// Apply must be a pure function of (cycle, net, value): the compiled
// evaluator schedules independent gates for throughput, so the relative
// order of Apply calls across different nets within one cycle is
// unspecified. Wide engines call Apply once per 64-lane group of a lane
// word, which purity makes equivalent to one call on a single-word engine.
type Injector interface {
	// Nets returns the set of nets the injector wants to observe; the
	// simulator only calls Apply for these.
	Nets() []netlist.Net
	// Apply returns the (possibly faulted) value of net n in cycle c,
	// given the fault-free lane word v.
	Apply(c int, n netlist.Net, v uint64) uint64
}

// evalMode selects which compiled loop Eval runs.
type evalMode uint8

const (
	// evalFast: no injector; run the branchless fast stream end to end.
	evalFast evalMode = iota
	// evalSegment: an injector is installed and every faulted net is
	// materialised by the fast stream; run it in segments, applying the
	// injector at each pre-marked instruction boundary.
	evalSegment
	// evalFull: a fault targets a folded net (collapsed BUF output or
	// constant); run the full per-cell stream with the reference
	// injection semantics.
	evalFull
)

// Engine executes one Module with lane words of type W. It is not safe for
// concurrent use; create one engine per goroutine (construction is cheap
// after the first compilation, which is cached in the module wrapper
// Compiled).
type Engine[W Word] struct {
	mod    *netlist.Module
	c      *Compiled
	values []W
	dffTmp []W
	cycle  int

	mode evalMode
	// read maps a net to the value slot holding its current logic value:
	// the alias table in fast/segmented mode (collapsed nets resolve to
	// their source), the identity table in full mode.
	read []int32
	// segs lists fast-stream instruction indices whose output net is
	// fault-marked, in topological order (segmented mode only).
	segs []int32

	hasFault []bool
	injector Injector
}

// Simulator is the classic 64-lane engine — one 64-bit word per net. All
// pre-width-configuration call sites use this instantiation.
type Simulator = Engine[Word1]

// Compiled caches the levelization and the lowered instruction stream of a
// module so many engines can be created without re-sorting.
type Compiled struct {
	Mod   *netlist.Module
	order []int
	dffs  []int
	prog  *program
}

// Compile levelizes the module once and lowers it to the instruction-stream
// program. It returns an error if the module has combinational cycles or
// fails validation.
func Compile(m *netlist.Module) (*Compiled, error) {
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("sim: module %q invalid: %w", m.Name, err)
	}
	order, err := m.Levelize()
	if err != nil {
		return nil, err
	}
	var dffs []int
	for ci := range m.Cells {
		if m.Cells[ci].Kind.IsSequential() {
			dffs = append(dffs, ci)
		}
	}
	p := lower(m, order, dffs)
	countCompile(p)
	return &Compiled{Mod: m, order: order, dffs: dffs, prog: p}, nil
}

// MustCompile is Compile that panics on error.
func MustCompile(m *netlist.Module) *Compiled {
	c, err := Compile(m)
	if err != nil {
		panic(err)
	}
	return c
}

// splat broadcasts a 64-lane word to every group of a lane word.
func splat[W Word](x uint64) W {
	var w W
	for k := 0; k < len(w); k++ {
		w[k] = x
	}
	return w
}

// NewEngine creates a width-W engine over the compiled module with all
// state and inputs initialised to zero (and folded constants pre-loaded).
// It is the unchecked constructor underneath the engine-configuration
// layer: callers outside the sim/core/fault stack select width through
// fault.EngineConfig, whose validator is the only supported entry point
// (the sconevet enginecfg pass enforces this).
func NewEngine[W Word](c *Compiled) *Engine[W] {
	s := &Engine[W]{
		mod:    c.Mod,
		c:      c,
		values: make([]W, c.prog.nets+1),
		mode:   evalFast,
		read:   c.prog.alias,
	}
	for i, n := range c.prog.constNets {
		s.values[n] = splat[W](c.prog.constVals[i])
	}
	countNewEngine(s.LaneWords())
	return s
}

// NewSimulator creates a classic 64-lane simulator over the compiled
// module.
func (c *Compiled) NewSimulator() *Simulator {
	return NewEngine[Word1](c)
}

// New compiles m and returns a simulator; it panics if the module is
// invalid. Prefer Compile + NewSimulator when creating many simulators.
func New(m *netlist.Module) *Simulator {
	return MustCompile(m).NewSimulator()
}

// Module returns the simulated module.
func (s *Engine[W]) Module() *netlist.Module { return s.mod }

// Cycle returns the index of the next cycle Step will execute.
func (s *Engine[W]) Cycle() int { return s.cycle }

// LaneWords returns the engine's word width W.
func (s *Engine[W]) LaneWords() int {
	var w W
	return len(w)
}

// LaneCount returns the number of parallel simulation lanes (Lanes × W).
func (s *Engine[W]) LaneCount() int {
	var w W
	return Lanes * len(w)
}

// SetInjector installs (or clears, with nil) the fault injector and selects
// the matching evaluation path: segmented when every faulted net is
// materialised by the fast stream, full-fidelity otherwise.
func (s *Engine[W]) SetInjector(inj Injector) {
	s.injector = inj
	p := s.c.prog
	// A previous full-fidelity run may have left faulted values on folded
	// constants; restore them before picking the new path.
	for i, n := range p.constNets {
		s.values[n] = splat[W](p.constVals[i])
	}
	if inj == nil {
		s.hasFault = nil
		s.segs = nil
		s.mode = evalFast
		s.read = p.alias
		return
	}
	s.hasFault = make([]bool, s.mod.NumNets()+1)
	fallback := false
	for _, n := range inj.Nets() {
		if n > 0 && int(n) <= s.mod.NumNets() {
			s.hasFault[n] = true
			if p.folded[n] {
				fallback = true
			}
		}
	}
	if fallback {
		s.segs = nil
		s.mode = evalFull
		s.read = p.ident
		return
	}
	s.segs = s.segs[:0]
	for i, o := range p.rOut {
		if s.hasFault[o] {
			s.segs = append(s.segs, int32(i))
		}
	}
	s.mode = evalSegment
	s.read = p.alias
}

// Reset zeroes all register state and the cycle counter. Input values are
// retained.
func (s *Engine[W]) Reset() {
	s.cycle = 0
	var zero W
	for _, o := range s.c.prog.dffOut {
		s.values[o] = zero
	}
}

// SetInput loads a primary-input port. vals[L] supplies the port value for
// lane L (bit i of vals[L] drives bit i of the bus in lane L); missing lanes
// default to zero. It panics if the port does not exist or len(vals) exceeds
// LaneCount.
func (s *Engine[W]) SetInput(port string, vals []uint64) {
	p := s.mod.FindInput(port)
	if p == nil {
		panic(fmt.Sprintf("sim: module %q has no input %q", s.mod.Name, port))
	}
	if len(vals) > s.LaneCount() {
		panic(fmt.Sprintf("sim: %d lane values exceed %d lanes", len(vals), s.LaneCount()))
	}
	for bi, n := range p.Bits {
		var w W
		for lane, v := range vals {
			w[lane>>6] |= ((v >> uint(bi)) & 1) << uint(lane&63)
		}
		s.values[n] = s.applyFault(n, w)
	}
}

// SetInputBroadcast loads the same value into every lane of the port.
func (s *Engine[W]) SetInputBroadcast(port string, val uint64) {
	p := s.mod.FindInput(port)
	if p == nil {
		panic(fmt.Sprintf("sim: module %q has no input %q", s.mod.Name, port))
	}
	for bi, n := range p.Bits {
		var w W
		if (val>>uint(bi))&1 == 1 {
			w = splat[W](^uint64(0))
		}
		s.values[n] = s.applyFault(n, w)
	}
}

// SetInputLaneWords loads pre-transposed 64-lane words into the first lane
// group: words[bi] is the lane word for bit bi of the port. Lane groups
// beyond the first are zeroed.
func (s *Engine[W]) SetInputLaneWords(port string, words []uint64) {
	p := s.mod.FindInput(port)
	if p == nil {
		panic(fmt.Sprintf("sim: module %q has no input %q", s.mod.Name, port))
	}
	if len(words) != p.Width() {
		panic(fmt.Sprintf("sim: port %q width %d, got %d words", port, p.Width(), len(words)))
	}
	for bi, n := range p.Bits {
		var w W
		w[0] = words[bi]
		s.values[n] = s.applyFault(n, w)
	}
}

func (s *Engine[W]) applyFault(n netlist.Net, v W) W {
	if s.hasFault != nil && s.hasFault[n] {
		for k := 0; k < len(v); k++ {
			v[k] = s.injector.Apply(s.cycle, n, v[k])
		}
	}
	return v
}

// Eval evaluates all combinational logic with the current inputs and
// register state, without advancing the clock. For purely combinational
// modules this is a complete simulation pass.
func (s *Engine[W]) Eval() {
	countEval(s.LaneCount())
	switch s.mode {
	case evalFast:
		p := s.c.prog
		evalRange(p, s.values, 0, len(p.rOut))
	case evalSegment:
		s.evalSegmented()
	default:
		s.evalFull()
	}
}

// evalSegmented runs the fast stream in segments, applying the injector at
// each instruction whose output net is fault-marked — the same per-net
// injection points, in the same topological order, as the reference
// interpreter.
func (s *Engine[W]) evalSegmented() {
	p := s.c.prog
	v := s.values
	lo := 0
	for _, si := range s.segs {
		evalRange(p, v, lo, int(si)+1)
		o := p.rOut[si]
		w := v[o]
		for k := 0; k < len(w); k++ {
			w[k] = s.injector.Apply(s.cycle, netlist.Net(o), w[k])
		}
		v[o] = w
		lo = int(si) + 1
	}
	evalRange(p, v, lo, len(p.rOut))
}

// evalFull executes the unfolded per-cell stream with injection checks on
// every output — bit-for-bit the reference interpreter semantics, used when
// a fault targets a net the fast stream folds away.
func (s *Engine[W]) evalFull() {
	p := s.c.prog
	v := s.values
	for i := range p.aOp {
		var out W
		switch netlist.CellKind(p.aOp[i]) {
		case netlist.KindConst0:
			// out stays zero.
		case netlist.KindConst1:
			out = splat[W](^uint64(0))
		case netlist.KindBuf:
			out = v[p.aIn0[i]]
		case netlist.KindInv:
			a := v[p.aIn0[i]]
			for k := 0; k < len(out); k++ {
				out[k] = ^a[k]
			}
		case netlist.KindAnd2:
			a, b := v[p.aIn0[i]], v[p.aIn1[i]]
			for k := 0; k < len(out); k++ {
				out[k] = a[k] & b[k]
			}
		case netlist.KindOr2:
			a, b := v[p.aIn0[i]], v[p.aIn1[i]]
			for k := 0; k < len(out); k++ {
				out[k] = a[k] | b[k]
			}
		case netlist.KindNand2:
			a, b := v[p.aIn0[i]], v[p.aIn1[i]]
			for k := 0; k < len(out); k++ {
				out[k] = ^(a[k] & b[k])
			}
		case netlist.KindNor2:
			a, b := v[p.aIn0[i]], v[p.aIn1[i]]
			for k := 0; k < len(out); k++ {
				out[k] = ^(a[k] | b[k])
			}
		case netlist.KindXor2:
			a, b := v[p.aIn0[i]], v[p.aIn1[i]]
			for k := 0; k < len(out); k++ {
				out[k] = a[k] ^ b[k]
			}
		case netlist.KindXnor2:
			a, b := v[p.aIn0[i]], v[p.aIn1[i]]
			for k := 0; k < len(out); k++ {
				out[k] = ^(a[k] ^ b[k])
			}
		case netlist.KindMux2:
			a, b, sel := v[p.aIn0[i]], v[p.aIn1[i]], v[p.aIn2[i]]
			for k := 0; k < len(out); k++ {
				out[k] = (a[k] &^ sel[k]) | (b[k] & sel[k])
			}
		default:
			panic(fmt.Sprintf("sim: unexpected cell kind %s in combinational order", netlist.CellKind(p.aOp[i])))
		}
		o := p.aOut[i]
		if s.hasFault[o] {
			for k := 0; k < len(out); k++ {
				out[k] = s.injector.Apply(s.cycle, netlist.Net(o), out[k])
			}
		}
		v[o] = out
	}
}

// EvalReference is the original interpreted evaluator: a per-cell switch
// over the levelized netlist, with injection checks on every cell output.
// It computes exactly what Eval computes (materialising every net at its
// own slot) and exists as the differential-testing and benchmarking
// baseline for the compiled instruction stream.
func (s *Engine[W]) EvalReference() {
	v := s.values
	cells := s.mod.Cells
	faulted := s.hasFault != nil
	for _, ci := range s.c.order {
		c := &cells[ci]
		var out W
		switch c.Kind {
		case netlist.KindConst0:
			// out stays zero.
		case netlist.KindConst1:
			out = splat[W](^uint64(0))
		case netlist.KindBuf:
			out = v[c.In[0]]
		case netlist.KindInv:
			a := v[c.In[0]]
			for k := 0; k < len(out); k++ {
				out[k] = ^a[k]
			}
		case netlist.KindAnd2:
			a, b := v[c.In[0]], v[c.In[1]]
			for k := 0; k < len(out); k++ {
				out[k] = a[k] & b[k]
			}
		case netlist.KindOr2:
			a, b := v[c.In[0]], v[c.In[1]]
			for k := 0; k < len(out); k++ {
				out[k] = a[k] | b[k]
			}
		case netlist.KindNand2:
			a, b := v[c.In[0]], v[c.In[1]]
			for k := 0; k < len(out); k++ {
				out[k] = ^(a[k] & b[k])
			}
		case netlist.KindNor2:
			a, b := v[c.In[0]], v[c.In[1]]
			for k := 0; k < len(out); k++ {
				out[k] = ^(a[k] | b[k])
			}
		case netlist.KindXor2:
			a, b := v[c.In[0]], v[c.In[1]]
			for k := 0; k < len(out); k++ {
				out[k] = a[k] ^ b[k]
			}
		case netlist.KindXnor2:
			a, b := v[c.In[0]], v[c.In[1]]
			for k := 0; k < len(out); k++ {
				out[k] = ^(a[k] ^ b[k])
			}
		case netlist.KindMux2:
			a, b, sel := v[c.In[0]], v[c.In[1]], v[c.In[2]]
			for k := 0; k < len(out); k++ {
				out[k] = (a[k] &^ sel[k]) | (b[k] & sel[k])
			}
		default:
			panic(fmt.Sprintf("sim: unexpected cell kind %s in combinational order", c.Kind))
		}
		if faulted && s.hasFault[c.Out] {
			for k := 0; k < len(out); k++ {
				out[k] = s.injector.Apply(s.cycle, c.Out, out[k])
			}
		}
		v[c.Out] = out
	}
}

// Step runs one clock cycle: combinational evaluation followed by clocking
// every DFF (Q <- D), then advances the cycle counter.
func (s *Engine[W]) Step() {
	s.Eval()
	// Two-phase latch so chained DFFs shift correctly regardless of
	// Cells order: capture all D values first, then commit.
	p := s.c.prog
	din := p.dffInFast
	if s.mode == evalFull {
		din = p.dffInFull
	}
	if cap(s.dffTmp) < len(din) {
		s.dffTmp = make([]W, len(din))
	}
	tmp := s.dffTmp[:len(din)]
	for i, idx := range din {
		tmp[i] = s.values[idx]
	}
	for i, o := range p.dffOut {
		out := tmp[i]
		if s.hasFault != nil && s.hasFault[o] {
			for k := 0; k < len(out); k++ {
				out[k] = s.injector.Apply(s.cycle, netlist.Net(o), out[k])
			}
		}
		s.values[o] = out
	}
	s.cycle++
}

// Run executes n clock cycles.
func (s *Engine[W]) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Output reads a primary-output port, returning one value per lane.
func (s *Engine[W]) Output(port string) []uint64 {
	return s.OutputInto(port, make([]uint64, s.LaneCount()))
}

// OutputInto reads a primary-output port into the caller's buffer, which
// must hold LaneCount values; it returns out for convenience. Campaign
// workers use it to keep the read-out allocation-free.
func (s *Engine[W]) OutputInto(port string, out []uint64) []uint64 {
	p := s.mod.FindOutput(port)
	if p == nil {
		panic(fmt.Sprintf("sim: module %q has no output %q", s.mod.Name, port))
	}
	lanes := s.LaneCount()
	if len(out) < lanes {
		panic(fmt.Sprintf("sim: output buffer holds %d of %d lanes", len(out), lanes))
	}
	out = out[:lanes]
	for i := range out {
		out[i] = 0
	}
	for bi, n := range p.Bits {
		w := s.values[s.read[n]]
		for lane := range out {
			out[lane] |= ((w[lane>>6] >> uint(lane&63)) & 1) << uint(bi)
		}
	}
	return out
}

// OutputLane reads a single lane of a primary-output port.
func (s *Engine[W]) OutputLane(port string, lane int) uint64 {
	p := s.mod.FindOutput(port)
	if p == nil {
		panic(fmt.Sprintf("sim: module %q has no output %q", s.mod.Name, port))
	}
	var out uint64
	for bi, n := range p.Bits {
		out |= ((s.values[s.read[n]][lane>>6] >> uint(lane&63)) & 1) << uint(bi)
	}
	return out
}

// NetWord returns the raw 64-lane word currently on net n in the first
// lane group; NetWordGroup reads the other groups of a wide engine.
func (s *Engine[W]) NetWord(n netlist.Net) uint64 { return s.values[s.read[n]][0] }

// NetWordGroup returns the raw 64-lane word of lane group g (lanes
// g*64 .. g*64+63) currently on net n.
func (s *Engine[W]) NetWordGroup(n netlist.Net, g int) uint64 {
	return s.values[s.read[n]][g]
}

// BusLane reads the value of an arbitrary bus in one lane; useful for
// probing internal state (e.g. the S-box input a SIFA histogram bins on).
func (s *Engine[W]) BusLane(bus netlist.Bus, lane int) uint64 {
	var out uint64
	for bi, n := range bus {
		out |= ((s.values[s.read[n]][lane>>6] >> uint(lane&63)) & 1) << uint(bi)
	}
	return out
}

// BusLanes reads an arbitrary bus across all lanes.
func (s *Engine[W]) BusLanes(bus netlist.Bus) []uint64 {
	out := make([]uint64, s.LaneCount())
	for bi, n := range bus {
		w := s.values[s.read[n]]
		for lane := range out {
			out[lane] |= ((w[lane>>6] >> uint(lane&63)) & 1) << uint(bi)
		}
	}
	return out
}

// EvalComb is a convenience for purely combinational modules: it loads the
// given input ports (broadcast across lanes from the single-lane values),
// evaluates, and returns the single-lane value of every output port.
func EvalComb(c *Compiled, inputs map[string]uint64) map[string]uint64 {
	s := c.NewSimulator()
	for name, val := range inputs {
		s.SetInputBroadcast(name, val)
	}
	s.Eval()
	out := make(map[string]uint64, len(c.Mod.Outputs))
	for i := range c.Mod.Outputs {
		out[c.Mod.Outputs[i].Name] = s.OutputLane(c.Mod.Outputs[i].Name, 0)
	}
	return out
}
