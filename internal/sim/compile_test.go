package sim

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

// randomModule builds a pseudo-random DAG exercising every cell kind,
// including BUF chains (which the compiler collapses), constants (which it
// folds) and DFFs, with a deterministic shape per seed.
func randomModule(t *testing.T, seed int64, cells int, sequential bool) *netlist.Module {
	t.Helper()
	gen := rand.New(rand.NewSource(seed))
	m := netlist.New("rand")
	pool := append(netlist.Bus{}, m.AddInput("x", 8)...)
	pool = append(pool, m.Const0(), m.Const1())
	pick := func() netlist.Net { return pool[gen.Intn(len(pool))] }
	for i := 0; i < cells; i++ {
		var n netlist.Net
		switch k := gen.Intn(11); k {
		case 0:
			n = m.Buf(pick())
		case 1:
			n = m.Not(pick())
		case 2:
			n = m.And(pick(), pick())
		case 3:
			n = m.Or(pick(), pick())
		case 4:
			n = m.Nand(pick(), pick())
		case 5:
			n = m.Nor(pick(), pick())
		case 6:
			n = m.Xor(pick(), pick())
		case 7:
			n = m.Xnor(pick(), pick())
		case 8:
			n = m.Mux(pick(), pick(), pick())
		case 9:
			// A BUF chain: several hops the compiler must collapse.
			n = m.Buf(m.Buf(m.Buf(pick())))
		default:
			if sequential {
				n = m.DFF(pick())
			} else {
				n = m.Xor(pick(), pick())
			}
		}
		pool = append(pool, n)
	}
	out := make(netlist.Bus, 8)
	for i := range out {
		out[i] = pool[len(pool)-1-i]
	}
	m.AddOutput("y", out)
	if err := m.Validate(); err != nil {
		t.Fatalf("random module invalid: %v", err)
	}
	return m
}

// everyNetInjector faults every net of the module, forcing the full-stream
// fallback and touching every injection point at once.
type everyNetInjector struct {
	nets []netlist.Net
	mask uint64
}

func (e everyNetInjector) Nets() []netlist.Net { return e.nets }
func (e everyNetInjector) Apply(c int, n netlist.Net, v uint64) uint64 {
	return v ^ (e.mask * uint64(c%2+1) * uint64(n&7+1) & e.mask)
}

// compareAllNets checks that two simulators agree on the observable value
// of every net of the module.
func compareAllNets(t *testing.T, m *netlist.Module, got, want *Simulator, ctx string) {
	t.Helper()
	for n := netlist.Net(1); int(n) <= m.NumNets(); n++ {
		if gw, ww := got.NetWord(n), want.NetWord(n); gw != ww {
			t.Fatalf("%s: net %d (%s): compiled %#x, reference %#x", ctx, n, m.NetName(n), gw, ww)
		}
	}
}

// TestCompiledMatchesReferenceCombinational drives random combinational
// modules with random stimuli and checks the compiled fast path against the
// retained interpreter, net for net.
func TestCompiledMatchesReferenceCombinational(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		m := randomModule(t, seed, 200, false)
		c := MustCompile(m)
		fast := c.NewSimulator()
		ref := c.NewSimulator()
		gen := rand.New(rand.NewSource(seed * 101))
		for trial := 0; trial < 4; trial++ {
			words := make([]uint64, 8)
			for i := range words {
				words[i] = gen.Uint64()
			}
			fast.SetInputLaneWords("x", words)
			ref.SetInputLaneWords("x", words)
			fast.Eval()
			ref.EvalReference()
			compareAllNets(t, m, fast, ref, "combinational")
		}
	}
}

// TestCompiledMatchesReferenceSequential runs multi-cycle simulations of
// random sequential modules under three injector configurations: none,
// faults on ordinary gate outputs (segmented path), and faults on every net
// including collapsed BUF outputs and folded constants (full fallback).
func TestCompiledMatchesReferenceSequential(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		m := randomModule(t, seed, 150, true)
		c := MustCompile(m)

		var all []netlist.Net
		for n := netlist.Net(1); int(n) <= m.NumNets(); n++ {
			all = append(all, n)
		}
		injectors := []Injector{
			nil,
			everyNetInjector{nets: all[len(all)/2 : len(all)/2+4], mask: 0xF0F0F0F0F0F0F0F0},
			everyNetInjector{nets: all, mask: 0xDEADBEEFCAFE1234},
		}
		for ii, inj := range injectors {
			fast := c.NewSimulator()
			ref := referenceSimulator(c)
			fast.SetInjector(inj)
			ref.SetInjector(inj)
			gen := rand.New(rand.NewSource(seed * 7))
			words := make([]uint64, 8)
			for i := range words {
				words[i] = gen.Uint64()
			}
			fast.SetInputLaneWords("x", words)
			ref.SetInputLaneWords("x", words)
			for cyc := 0; cyc < 6; cyc++ {
				fast.Step()
				stepReference(ref)
				compareAllNets(t, m, fast, ref, "sequential")
			}
			_ = ii
		}
	}
}

// referenceSimulator returns a simulator whose values are always fully
// materialised by the reference interpreter (reads resolve literally).
func referenceSimulator(c *Compiled) *Simulator {
	s := c.NewSimulator()
	s.read = c.prog.ident
	return s
}

// stepReference is Step with EvalReference as the combinational pass — the
// pre-rewrite cycle semantics, for differential testing. (A plain function:
// methods cannot be added to the instantiated generic Simulator.)
func stepReference(s *Simulator) {
	s.EvalReference()
	p := s.c.prog
	if cap(s.dffTmp) < len(p.dffInFull) {
		s.dffTmp = make([]Word1, len(p.dffInFull))
	}
	tmp := s.dffTmp[:len(p.dffInFull)]
	for i, idx := range p.dffInFull {
		tmp[i] = s.values[idx]
	}
	for i, o := range p.dffOut {
		out := tmp[i]
		if s.hasFault != nil && s.hasFault[o] {
			out[0] = s.injector.Apply(s.cycle, netlist.Net(o), out[0])
		}
		s.values[o] = out
	}
	s.cycle++
}

// TestInjectorOnFoldedNets pins the fallback behaviour directly: a fault on
// a collapsed BUF output and on a folded constant must behave exactly as in
// the interpreter (the faulted value is observable on the folded net and
// propagates to its consumers).
func TestInjectorOnFoldedNets(t *testing.T) {
	m := netlist.New("folded")
	in := m.AddInput("d", 1)
	buf := m.Buf(in[0])
	c1 := m.Const1()
	m.AddOutput("viabuf", netlist.Bus{m.Buf(buf)})
	m.AddOutput("viaconst", netlist.Bus{m.And(c1, in[0])})
	s := New(m)

	s.SetInjector(flipInjector{net: buf, cycle: 0})
	s.SetInputBroadcast("d", 0)
	s.Eval()
	if got := s.OutputLane("viabuf", 0); got != 1 {
		t.Fatalf("fault on collapsed BUF output not applied: viabuf=%d", got)
	}
	if got := s.NetWord(buf); got != ^uint64(0) {
		t.Fatalf("faulted BUF net not observable: %#x", got)
	}

	s.SetInjector(flipInjector{net: c1, cycle: 0})
	s.SetInputBroadcast("d", 1)
	s.Eval()
	if got := s.OutputLane("viaconst", 0); got != 0 {
		t.Fatalf("fault on folded constant not applied: viaconst=%d", got)
	}

	// Clearing the injector restores the fast path and the folded values.
	s.SetInjector(nil)
	s.Eval()
	if got := s.OutputLane("viaconst", 0); got != 1 {
		t.Fatalf("fast path after fallback: viaconst=%d", got)
	}
	if got := s.OutputLane("viabuf", 0); got != 1 {
		t.Fatalf("fast path after fallback: viabuf=%d", got)
	}
}

// TestBufChainCollapse checks the alias table end to end: a long BUF chain
// costs zero instructions yet stays observable on every intermediate net.
func TestBufChainCollapse(t *testing.T) {
	m := netlist.New("chain")
	in := m.AddInput("d", 1)
	n := in[0]
	var chain []netlist.Net
	for i := 0; i < 10; i++ {
		n = m.Buf(n)
		chain = append(chain, n)
	}
	m.AddOutput("q", netlist.Bus{n})
	c := MustCompile(m)
	if got := c.NumInstructions(); got != 0 {
		t.Fatalf("BUF chain compiled to %d instructions, want 0", got)
	}
	s := c.NewSimulator()
	s.SetInputBroadcast("d", 1)
	s.Eval()
	for _, cn := range chain {
		if s.NetWord(cn) != ^uint64(0) {
			t.Fatalf("collapsed net %d lost its value", cn)
		}
	}
	if s.OutputLane("q", 0) != 1 {
		t.Fatal("output did not follow the collapsed chain")
	}
}

// TestConstantFolding checks folded constants survive Reset and feed gates.
func TestConstantFolding(t *testing.T) {
	m := netlist.New("consts")
	in := m.AddInput("d", 1)
	m.AddOutput("a", netlist.Bus{m.And(in[0], m.Const1())})
	m.AddOutput("o", netlist.Bus{m.Or(in[0], m.Const0())})
	m.AddOutput("q", netlist.Bus{m.DFF(m.Const1())})
	s := New(m)
	s.SetInputBroadcast("d", 1)
	s.Step()
	s.Reset()
	s.Step()
	if got := s.OutputLane("q", 0); got != 1 {
		t.Fatalf("constant lost after Reset: q=%d", got)
	}
	s.Eval()
	if s.OutputLane("a", 0) != 1 || s.OutputLane("o", 0) != 1 {
		t.Fatal("folded constants did not feed gates")
	}
}

// TestRunScheduleIsTopological validates the (level, opcode) schedule on
// random modules: every instruction's operands must be produced (or be
// primary inputs / DFF outputs / constants) before it executes.
func TestRunScheduleIsTopological(t *testing.T) {
	for seed := int64(30); seed < 36; seed++ {
		m := randomModule(t, seed, 300, true)
		c := MustCompile(m)
		p := c.prog
		produced := make([]bool, m.NumNets()+1)
		isInstrOut := make([]bool, m.NumNets()+1)
		for _, o := range p.rOut {
			isInstrOut[o] = true
		}
		for i := range p.rOut {
			ins := []int32{p.rIn0[i], p.rIn1[i]}
			if op := instrOp(p, i); op == uint8(netlist.KindMux2) {
				ins = append(ins, p.rIn2[i])
			}
			for _, in := range ins[:arityOf(p, i)] {
				if isInstrOut[in] && !produced[in] {
					t.Fatalf("seed %d: instruction %d reads slot %d before it is produced", seed, i, in)
				}
			}
			produced[p.rOut[i]] = true
		}
	}
}

func instrOp(p *program, i int) uint8 {
	for _, r := range p.runs {
		if int32(i) >= r.lo && int32(i) < r.hi {
			return r.op
		}
	}
	return 0
}

func arityOf(p *program, i int) int {
	return netlist.CellKind(instrOp(p, i)).Arity()
}
