package sim

import (
	"testing"

	"repro/internal/netlist"
)

// buildWideXorTree makes a deep combinational module for throughput
// benchmarks.
func buildWideXorTree(width int) *netlist.Module {
	m := netlist.New("xortree")
	in := m.AddInput("x", width)
	m.AddOutput("y", netlist.Bus{m.XorReduce(in)})
	return m
}

func BenchmarkEval64Lanes(b *testing.B) {
	s := New(buildWideXorTree(64))
	vals := make([]uint64, Lanes)
	for i := range vals {
		vals[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	s.SetInput("x", vals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Eval()
	}
	b.ReportMetric(float64(Lanes), "lanes/op")
}

func BenchmarkSequentialStep(b *testing.B) {
	m := netlist.New("shift64")
	in := m.AddInput("d", 1)
	cur := in[0]
	for i := 0; i < 64; i++ {
		cur = m.DFF(m.Not(cur))
	}
	m.AddOutput("q", netlist.Bus{cur})
	s := New(m)
	s.SetInputBroadcast("d", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
