package sim

import (
	"testing"

	"repro/internal/netlist"
)

// buildWideXorTree makes a deep combinational module for throughput
// benchmarks.
func buildWideXorTree(width int) *netlist.Module {
	m := netlist.New("xortree")
	in := m.AddInput("x", width)
	m.AddOutput("y", netlist.Bus{m.XorReduce(in)})
	return m
}

func BenchmarkEval64Lanes(b *testing.B) {
	s := New(buildWideXorTree(64))
	vals := make([]uint64, Lanes)
	for i := range vals {
		vals[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	s.SetInput("x", vals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Eval()
	}
	b.ReportMetric(float64(Lanes), "lanes/op")
}

// benchRandomEval measures raw gate-eval throughput of one combinational
// pass over a large random module, reporting gate-lanes/sec (gate
// evaluations × 64 lanes per second).
func benchRandomEval(b *testing.B, eval func(*Simulator)) {
	m := randomBenchModule(4000)
	c := MustCompile(m)
	s := c.NewSimulator()
	vals := make([]uint64, Lanes)
	for i := range vals {
		vals[i] = uint64(i)*0x9E3779B97F4A7C15 + 1
	}
	s.SetInputLaneWords("x", vals[:8])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval(s)
	}
	gates := float64(c.NumInstructions())
	b.ReportMetric(gates, "gates/op")
	b.ReportMetric(gates*Lanes*float64(b.N)/b.Elapsed().Seconds(), "gate-lanes/sec")
}

// randomBenchModule is randomModule without the testing.T plumbing, with a
// gate-kind mix resembling synthesised cipher cores.
func randomBenchModule(cells int) *netlist.Module {
	m := netlist.New("bench")
	pool := append(netlist.Bus{}, m.AddInput("x", 8)...)
	state := uint64(0x123456789ABCDEF1)
	next := func() uint64 { state ^= state << 13; state ^= state >> 7; state ^= state << 17; return state }
	pick := func() netlist.Net { return pool[next()%uint64(len(pool))] }
	for i := 0; i < cells; i++ {
		var n netlist.Net
		switch next() % 8 {
		case 0:
			n = m.Not(pick())
		case 1, 2:
			n = m.And(pick(), pick())
		case 3:
			n = m.Or(pick(), pick())
		case 4, 5, 6:
			n = m.Xor(pick(), pick())
		default:
			n = m.Mux(pick(), pick(), pick())
		}
		pool = append(pool, n)
	}
	out := make(netlist.Bus, 8)
	for i := range out {
		out[i] = pool[len(pool)-1-i]
	}
	m.AddOutput("y", out)
	return m
}

func BenchmarkRandomEvalCompiled(b *testing.B) {
	benchRandomEval(b, (*Simulator).Eval)
}

func BenchmarkRandomEvalInterpreted(b *testing.B) {
	benchRandomEval(b, (*Simulator).EvalReference)
}

func BenchmarkSequentialStep(b *testing.B) {
	m := netlist.New("shift64")
	in := m.AddInput("d", 1)
	cur := in[0]
	for i := 0; i < 64; i++ {
		cur = m.DFF(m.Not(cur))
	}
	m.AddOutput("q", netlist.Bus{cur})
	s := New(m)
	s.SetInputBroadcast("d", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
