package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/netlist"
)

// buildGateModule creates a module computing every 2-input kind of one
// input pair, for exhaustive truth-table checks.
func buildGateModule() *netlist.Module {
	m := netlist.New("gates")
	in := m.AddInput("x", 2)
	a, b := in[0], in[1]
	m.AddOutput("and", netlist.Bus{m.And(a, b)})
	m.AddOutput("or", netlist.Bus{m.Or(a, b)})
	m.AddOutput("nand", netlist.Bus{m.Nand(a, b)})
	m.AddOutput("nor", netlist.Bus{m.Nor(a, b)})
	m.AddOutput("xor", netlist.Bus{m.Xor(a, b)})
	m.AddOutput("xnor", netlist.Bus{m.Xnor(a, b)})
	m.AddOutput("inv", netlist.Bus{m.Not(a)})
	m.AddOutput("buf", netlist.Bus{m.Buf(a)})
	m.AddOutput("c0", netlist.Bus{m.Const0()})
	m.AddOutput("c1", netlist.Bus{m.Const1()})
	return m
}

func TestGateTruthTables(t *testing.T) {
	c := MustCompile(buildGateModule())
	for x := uint64(0); x < 4; x++ {
		out := EvalComb(c, map[string]uint64{"x": x})
		a, b := x&1, (x>>1)&1
		want := map[string]uint64{
			"and": a & b, "or": a | b,
			"nand": 1 &^ (a & b), "nor": 1 &^ (a | b),
			"xor": a ^ b, "xnor": 1 ^ a ^ b,
			"inv": 1 ^ a, "buf": a, "c0": 0, "c1": 1,
		}
		for name, w := range want {
			if out[name] != w {
				t.Errorf("x=%d: %s = %d, want %d", x, name, out[name], w)
			}
		}
	}
}

func TestMuxTruthTable(t *testing.T) {
	m := netlist.New("mux")
	in := m.AddInput("x", 3)
	m.AddOutput("y", netlist.Bus{m.Mux(in[0], in[1], in[2])})
	c := MustCompile(m)
	for x := uint64(0); x < 8; x++ {
		a, b, sel := x&1, (x>>1)&1, (x>>2)&1
		want := a
		if sel == 1 {
			want = b
		}
		if got := EvalComb(c, map[string]uint64{"x": x})["y"]; got != want {
			t.Errorf("mux(%d,%d,sel=%d) = %d, want %d", a, b, sel, got, want)
		}
	}
}

func TestLanesAreIndependent(t *testing.T) {
	m := netlist.New("adder1")
	in := m.AddInput("x", 2)
	m.AddOutput("s", netlist.Bus{m.Xor(in[0], in[1])})
	m.AddOutput("c", netlist.Bus{m.And(in[0], in[1])})
	s := New(m)

	vals := make([]uint64, Lanes)
	for i := range vals {
		vals[i] = uint64(i % 4)
	}
	s.SetInput("x", vals)
	s.Eval()
	sums := s.Output("s")
	carries := s.Output("c")
	for i, v := range vals {
		a, b := v&1, (v>>1)&1
		if sums[i] != a^b || carries[i] != a&b {
			t.Fatalf("lane %d: got s=%d c=%d for x=%d", i, sums[i], carries[i], v)
		}
	}
}

func TestShiftRegisterSequencing(t *testing.T) {
	// Three chained DFFs: q3 <- q2 <- q1 <- in. Declaring the cells in
	// reverse order exercises the two-phase latch.
	m := netlist.New("shift")
	in := m.AddInput("d", 1)
	q1 := m.NewNet("q1")
	q2 := m.NewNet("q2")
	q3 := m.NewNet("q3")
	m.AddCell(netlist.KindDFF, q3, q2)
	m.AddCell(netlist.KindDFF, q2, q1)
	m.AddCell(netlist.KindDFF, q1, in[0])
	m.AddOutput("q", netlist.Bus{q3})

	s := New(m)
	s.SetInputBroadcast("d", 1)
	s.Step() // q1=1
	s.SetInputBroadcast("d", 0)
	if got := s.Output("q")[0]; got != 0 {
		t.Fatalf("after 1 cycle q=%d", got)
	}
	s.Step() // q2=1
	s.Step() // q3=1
	if got := s.Output("q")[0]; got != 1 {
		t.Fatalf("bit did not shift through in 3 cycles")
	}
	s.Step()
	if got := s.Output("q")[0]; got != 0 {
		t.Fatalf("bit did not clear after passing through")
	}
}

func TestResetClearsState(t *testing.T) {
	m := netlist.New("reg")
	in := m.AddInput("d", 1)
	m.AddOutput("q", netlist.Bus{m.DFF(in[0])})
	s := New(m)
	s.SetInputBroadcast("d", 1)
	s.Step()
	if s.Output("q")[0] != 1 {
		t.Fatal("register did not latch")
	}
	s.Reset()
	if s.Output("q")[0] != 0 || s.Cycle() != 0 {
		t.Fatal("reset did not clear state")
	}
}

type flipInjector struct {
	net   netlist.Net
	cycle int
}

func (f flipInjector) Nets() []netlist.Net { return []netlist.Net{f.net} }
func (f flipInjector) Apply(c int, n netlist.Net, v uint64) uint64 {
	if c == f.cycle {
		return ^v
	}
	return v
}

func TestInjectorWindow(t *testing.T) {
	m := netlist.New("pipe")
	in := m.AddInput("d", 1)
	mid := m.Buf(in[0])
	m.AddOutput("q", netlist.Bus{m.DFF(mid)})
	s := New(m)
	s.SetInjector(flipInjector{net: mid, cycle: 1})
	s.SetInputBroadcast("d", 0)
	s.Step() // cycle 0: no fault, q=0
	if s.Output("q")[0] != 0 {
		t.Fatal("fault applied outside its window")
	}
	s.Step() // cycle 1: flip active, q latches 1
	if s.Output("q")[0] != 1 {
		t.Fatal("fault not applied in its window")
	}
	s.Step() // cycle 2: back to normal
	if s.Output("q")[0] != 0 {
		t.Fatal("fault persisted beyond its window")
	}
}

func TestCompileRejectsInvalidModule(t *testing.T) {
	m := netlist.New("bad")
	a := m.NewNet("floating")
	m.AddOutput("y", netlist.Bus{m.Not(a)})
	if _, err := Compile(m); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestBusLaneProbes(t *testing.T) {
	m := netlist.New("probe")
	in := m.AddInput("x", 4)
	inv := m.NotBus(in)
	m.AddOutput("y", inv)
	s := New(m)
	f := func(x uint8) bool {
		v := uint64(x & 0xF)
		s.SetInput("x", []uint64{v, ^v & 0xF})
		s.Eval()
		return s.BusLane(inv, 0) == (^v&0xF) && s.BusLanes(inv)[1] == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetInputUnknownPortPanics(t *testing.T) {
	m := netlist.New("t")
	in := m.AddInput("x", 1)
	m.AddOutput("y", netlist.Bus{m.Buf(in[0])})
	s := New(m)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.SetInputBroadcast("nope", 1)
}
