package sim

import (
	"testing"

	"repro/internal/netlist"
)

// widths instantiates f for every supported word width so the wide-engine
// tests cover Word1, Word2 and Word4 with one body.
func widths(t *testing.T, run func(t *testing.T, laneWords int, eval func(c *Compiled, vals []uint64, faulted bool) []uint64)) {
	t.Helper()
	t.Run("w1", func(t *testing.T) {
		run(t, 1, func(c *Compiled, vals []uint64, faulted bool) []uint64 {
			s := NewEngine[Word1](c)
			if faulted {
				s.SetInjector(testFlip{})
			}
			s.SetInput("x", vals)
			s.Eval()
			return s.Output("y")
		})
	})
	t.Run("w2", func(t *testing.T) {
		run(t, 2, func(c *Compiled, vals []uint64, faulted bool) []uint64 {
			s := NewEngine[Word2](c)
			if faulted {
				s.SetInjector(testFlip{})
			}
			s.SetInput("x", vals)
			s.Eval()
			return s.Output("y")
		})
	})
	t.Run("w4", func(t *testing.T) {
		run(t, 4, func(c *Compiled, vals []uint64, faulted bool) []uint64 {
			s := NewEngine[Word4](c)
			if faulted {
				s.SetInjector(testFlip{})
			}
			s.SetInput("x", vals)
			s.Eval()
			return s.Output("y")
		})
	})
}

// testFlip inverts every addressed net on cycle 0 (combinational evals run
// at the engine's current cycle).
type testFlip struct{}

func (testFlip) Nets() []netlist.Net { return nil }
func (testFlip) Apply(c int, n netlist.Net, v uint64) uint64 {
	return ^v
}

func TestWideEngineLaneGeometry(t *testing.T) {
	c := MustCompile(buildGateModule())
	if w := NewEngine[Word1](c); w.LaneWords() != 1 || w.LaneCount() != 64 {
		t.Errorf("Word1 geometry = (%d, %d), want (1, 64)", w.LaneWords(), w.LaneCount())
	}
	if w := NewEngine[Word2](c); w.LaneWords() != 2 || w.LaneCount() != 128 {
		t.Errorf("Word2 geometry = (%d, %d), want (2, 128)", w.LaneWords(), w.LaneCount())
	}
	if w := NewEngine[Word4](c); w.LaneWords() != 4 || w.LaneCount() != 256 {
		t.Errorf("Word4 geometry = (%d, %d), want (4, 256)", w.LaneWords(), w.LaneCount())
	}
}

func TestValidLaneWords(t *testing.T) {
	for w := -1; w <= 8; w++ {
		want := w == 1 || w == 2 || w == 4
		if got := ValidLaneWords(w); got != want {
			t.Errorf("ValidLaneWords(%d) = %v, want %v", w, got, want)
		}
	}
}

// TestWideEngineLaneRoundTrip drives every lane of every width with a
// distinct value and reads it back through a 4-bit inverter, proving
// SetInput/Output address the full W×64 lane space.
func TestWideEngineLaneRoundTrip(t *testing.T) {
	m := netlist.New("inv4")
	in := m.AddInput("x", 4)
	m.AddOutput("y", m.NotBus(in))
	c := MustCompile(m)

	widths(t, func(t *testing.T, laneWords int, eval func(*Compiled, []uint64, bool) []uint64) {
		lanes := laneWords * Lanes
		vals := make([]uint64, lanes)
		for i := range vals {
			vals[i] = uint64(i) & 0xF
		}
		out := eval(c, vals, false)
		if len(out) != lanes {
			t.Fatalf("Output length = %d, want %d", len(out), lanes)
		}
		for i, v := range vals {
			if want := ^v & 0xF; out[i] != want {
				t.Fatalf("lane %d: y = %#x, want %#x", i, out[i], want)
			}
		}
	})
}

// TestWideEngineMatchesSimulator runs the full gate-kind module on each
// width and requires per-lane agreement with the classic 64-lane Simulator,
// with and without an injector installed — the injector must apply to every
// 64-lane word of a wide value.
func TestWideEngineMatchesSimulator(t *testing.T) {
	m := netlist.New("mix")
	in := m.AddInput("x", 4)
	a, b, cc, d := in[0], in[1], in[2], in[3]
	n1 := m.Xor(m.And(a, b), m.Or(cc, d))
	n2 := m.Mux(n1, m.Nand(a, cc), b)
	m.AddOutput("y", netlist.Bus{n2, m.Xnor(n1, d), m.Nor(a, n2)})
	c := MustCompile(m)

	for _, faulted := range []bool{false, true} {
		name := "clean"
		if faulted {
			name = "faulted"
		}
		t.Run(name, func(t *testing.T) {
			// Reference: the classic engine over each 64-lane slice.
			ref := func(vals []uint64) []uint64 {
				out := make([]uint64, 0, len(vals))
				for off := 0; off < len(vals); off += Lanes {
					s := c.NewSimulator()
					if faulted {
						s.SetInjector(testFlip{})
					}
					s.SetInput("x", vals[off:off+Lanes])
					s.Eval()
					out = append(out, s.Output("y")...)
				}
				return out
			}
			widths(t, func(t *testing.T, laneWords int, eval func(*Compiled, []uint64, bool) []uint64) {
				lanes := laneWords * Lanes
				vals := make([]uint64, lanes)
				for i := range vals {
					vals[i] = uint64(i*2654435761) & 0xF
				}
				want := ref(vals)
				got := eval(c, vals, faulted)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("lane %d: y = %#x, want %#x", i, got[i], want[i])
					}
				}
			})
		})
	}
}

// TestWideEngineSequentialParity steps a shift register on a width-4 engine
// and checks OutputLane against the narrow engine cycle by cycle, covering
// the DFF path and per-word injector application during Step.
func TestWideEngineSequentialParity(t *testing.T) {
	m := netlist.New("shift2")
	in := m.AddInput("d", 1)
	q1 := m.NewNet("q1")
	q2 := m.NewNet("q2")
	m.AddCell(netlist.KindDFF, q2, q1)
	m.AddCell(netlist.KindDFF, q1, in[0])
	m.AddOutput("q", netlist.Bus{q2})
	c := MustCompile(m)

	narrow := c.NewSimulator()
	wide := NewEngine[Word4](c)
	inj := flipInjector{net: q1, cycle: 1}
	narrow.SetInjector(inj)
	wide.SetInjector(inj)

	lanes := wide.LaneCount()
	pattern := make([]uint64, lanes)
	for i := range pattern {
		pattern[i] = uint64(i) & 1
	}
	for cyc := 0; cyc < 5; cyc++ {
		narrow.SetInput("d", pattern[:Lanes])
		wide.SetInput("d", pattern)
		narrow.Step()
		wide.Step()
		for lane := 0; lane < lanes; lane++ {
			want := narrow.OutputLane("q", lane%Lanes)
			if got := wide.OutputLane("q", lane); got != want {
				t.Fatalf("cycle %d lane %d: q = %d, want %d", cyc, lane, got, want)
			}
		}
	}
	if narrow.Cycle() != wide.Cycle() {
		t.Errorf("cycle counters diverged: %d vs %d", narrow.Cycle(), wide.Cycle())
	}
}

// TestOutputIntoReusesBuffer pins the allocation contract of the campaign
// hot path: OutputInto must fill the caller's buffer and return it.
func TestOutputIntoReusesBuffer(t *testing.T) {
	m := netlist.New("buf1")
	in := m.AddInput("x", 1)
	m.AddOutput("y", netlist.Bus{m.Buf(in[0])})
	c := MustCompile(m)
	s := NewEngine[Word2](c)
	vals := make([]uint64, s.LaneCount())
	for i := range vals {
		vals[i] = uint64(i) & 1
	}
	s.SetInput("x", vals)
	s.Eval()
	buf := make([]uint64, s.LaneCount())
	out := s.OutputInto("y", buf)
	if &out[0] != &buf[0] {
		t.Fatal("OutputInto did not fill the provided buffer")
	}
	for i, v := range vals {
		if out[i] != v {
			t.Fatalf("lane %d: y = %d, want %d", i, out[i], v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short buffer")
		}
	}()
	s.OutputInto("y", make([]uint64, s.LaneCount()-1))
}
