package sim

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/netlist"
)

func TestVCDDumpStructure(t *testing.T) {
	m := netlist.New("toggle")
	in := m.AddInput("d", 1)
	q := m.DFF(in[0])
	m.AddOutput("q", netlist.Bus{q})
	s := New(m)

	var buf bytes.Buffer
	rec := RecordPorts(s, &buf, 0)

	s.SetInputBroadcast("d", 1)
	for i := 0; i < 3; i++ {
		s.Step()
		if err := rec.Sample(); err != nil {
			t.Fatal(err)
		}
		s.SetInputBroadcast("d", uint64(i)%2) // 0, 1, 0...
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale", "$scope module toggle", "$var wire 1", "$enddefinitions", "#0", "#3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q in:\n%s", want, out)
		}
	}
	// The q wire must toggle at least twice in the dump body.
	body := out[strings.Index(out, "$enddefinitions"):]
	if strings.Count(body, "\n1") < 1 || strings.Count(body, "\n0") < 1 {
		t.Errorf("expected both 0 and 1 value changes in:\n%s", body)
	}
}

func TestVCDOnlyDumpsChanges(t *testing.T) {
	m := netlist.New("constmod")
	in := m.AddInput("x", 1)
	m.AddOutput("y", netlist.Bus{m.Buf(in[0])})
	s := New(m)
	var buf bytes.Buffer
	rec := RecordPorts(s, &buf, 0)
	s.SetInputBroadcast("x", 0)
	for i := 0; i < 5; i++ {
		s.Eval()
		if err := rec.Sample(); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Values never change after the initial dump: exactly one value
	// timestamp with changes (#0) plus the closing timestamp.
	body := out[strings.Index(out, "$enddefinitions"):]
	if got := strings.Count(body, "#"); got != 2 {
		t.Errorf("expected 2 timestamps (initial + close), got %d in:\n%s", got, body)
	}
}

func TestVCDCodesUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		c := vcdCode(i)
		if seen[c] {
			t.Fatalf("duplicate code %q at %d", c, i)
		}
		seen[c] = true
	}
}
