package sim

import (
	"sync/atomic"

	"repro/internal/obs"
)

// metrics is the package's instrument set. It is swapped in atomically by
// EnableObservability so the hot paths pay one pointer load (and nothing
// else) while observability is disabled.
type metrics struct {
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	compiles    *obs.Counter
	evals       *obs.Counter
	lanes       *obs.Counter
	laneWords   *obs.Gauge
	wideEngines *obs.Counter
	progInsts   *obs.Gauge
	progRuns    *obs.Gauge
}

var met atomic.Pointer[metrics]

// EnableObservability registers the simulator's metrics on reg and starts
// recording into them. Passing nil reverts to the free no-op default. The
// instruments only count work performed; they never influence evaluation, so
// simulation results are identical with observability on or off.
func EnableObservability(reg *obs.Registry) {
	if reg == nil {
		met.Store(nil)
		return
	}
	met.Store(&metrics{
		cacheHits:   reg.NewCounter("scone_sim_compile_cache_hits_total", "CompileCached requests served from the process-wide cache"),
		cacheMisses: reg.NewCounter("scone_sim_compile_cache_misses_total", "CompileCached requests that triggered a fresh compilation"),
		compiles:    reg.NewCounter("scone_sim_compiles_total", "Modules lowered to instruction streams"),
		evals:       reg.NewCounter("scone_sim_evals_total", "Combinational evaluation passes executed"),
		lanes:       reg.NewCounter("scone_sim_lanes_total", "Simulation lanes evaluated (64 x lane words per eval pass)"),
		laneWords:   reg.NewGauge("scone_sim_lane_words_count", "Word width W of the most recently constructed engine"),
		wideEngines: reg.NewCounter("scone_sim_wide_engines_total", "Engines constructed with a word width above one"),
		progInsts:   reg.NewGauge("scone_sim_run_table_instructions_count", "Fast-stream instructions in the most recently compiled module"),
		progRuns:    reg.NewGauge("scone_sim_run_table_runs_count", "Homogeneous opcode runs in the most recently compiled module"),
	})
}

// countEval records one combinational pass over the given lane count;
// called from Eval.
func countEval(lanes int) {
	if m := met.Load(); m != nil {
		m.evals.Inc()
		m.lanes.Add(int64(lanes))
	}
}

// countNewEngine records an engine construction and its word width.
func countNewEngine(laneWords int) {
	if m := met.Load(); m != nil {
		m.laneWords.Set(int64(laneWords))
		if laneWords > 1 {
			m.wideEngines.Inc()
		}
	}
}

// countCompile records a fresh compilation and the occupancy of its run
// table (instructions and homogeneous runs — the ratio is the average run
// length the specialised loops get to execute).
func countCompile(p *program) {
	if m := met.Load(); m != nil {
		m.compiles.Inc()
		m.progInsts.Set(int64(len(p.rOut)))
		m.progRuns.Set(int64(len(p.runs)))
	}
}

// countCacheHit / countCacheMiss record CompileCached outcomes.
func countCacheHit() {
	if m := met.Load(); m != nil {
		m.cacheHits.Inc()
	}
}

func countCacheMiss() {
	if m := met.Load(); m != nil {
		m.cacheMisses.Inc()
	}
}
