package sim

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/netlist"
)

// VCDRecorder dumps the waveform of selected nets of one simulation lane
// in the IEEE 1364 value-change-dump format, viewable in GTKWave and
// friends — the debugging artifact every fault investigation wants: "show
// me the cycle where the comparator fired".
type VCDRecorder struct {
	s    *Simulator
	w    *bufio.Writer
	lane int
	// nets in dump order with their VCD identifier codes.
	nets  []netlist.Net
	codes []string
	names []string
	last  []uint8
	// header tracks whether the declaration section was emitted.
	header bool
	time   int
}

// NewVCDRecorder creates a recorder over the given nets (observing the
// chosen lane). Net names are taken from the module; duplicates are
// disambiguated with the net id.
func NewVCDRecorder(s *Simulator, w io.Writer, lane int, nets []netlist.Net) *VCDRecorder {
	r := &VCDRecorder{s: s, w: bufio.NewWriter(w), lane: lane}
	seen := make(map[string]bool)
	for _, n := range nets {
		name := sanitizeVCDName(s.Module().NetName(n))
		if name == "" || seen[name] {
			name = fmt.Sprintf("%s_n%d", name, n)
		}
		seen[name] = true
		r.nets = append(r.nets, n)
		r.names = append(r.names, name)
		r.codes = append(r.codes, vcdCode(len(r.codes)))
	}
	r.last = make([]uint8, len(r.nets))
	for i := range r.last {
		r.last[i] = 0xFF // force an initial dump
	}
	return r
}

// RecordPorts is a convenience constructor observing every input and
// output port bit of the module.
func RecordPorts(s *Simulator, w io.Writer, lane int) *VCDRecorder {
	var nets []netlist.Net
	m := s.Module()
	for i := range m.Inputs {
		nets = append(nets, m.Inputs[i].Bits...)
	}
	for i := range m.Outputs {
		nets = append(nets, m.Outputs[i].Bits...)
	}
	return NewVCDRecorder(s, w, lane, nets)
}

func (r *VCDRecorder) emitHeader() error {
	fmt.Fprintf(r.w, "$date reproducible $end\n")
	fmt.Fprintf(r.w, "$version scone gate-level simulator $end\n")
	fmt.Fprintf(r.w, "$timescale 1ns $end\n")
	fmt.Fprintf(r.w, "$scope module %s $end\n", sanitizeVCDName(r.s.Module().Name))
	// Deterministic declaration order: by name.
	idx := make([]int, len(r.nets))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return r.names[idx[a]] < r.names[idx[b]] })
	for _, i := range idx {
		fmt.Fprintf(r.w, "$var wire 1 %s %s $end\n", r.codes[i], r.names[i])
	}
	fmt.Fprintf(r.w, "$upscope $end\n$enddefinitions $end\n")
	r.header = true
	return nil
}

// Sample records the current values at the next timestep; call it after
// each Eval or Step. Only changed nets are dumped, per the VCD format.
func (r *VCDRecorder) Sample() error {
	if !r.header {
		if err := r.emitHeader(); err != nil {
			return err
		}
	}
	wroteTime := false
	for i, n := range r.nets {
		v := uint8((r.s.NetWord(n) >> uint(r.lane)) & 1)
		if v == r.last[i] {
			continue
		}
		if !wroteTime {
			fmt.Fprintf(r.w, "#%d\n", r.time)
			wroteTime = true
		}
		fmt.Fprintf(r.w, "%d%s\n", v, r.codes[i])
		r.last[i] = v
	}
	r.time++
	return nil
}

// Flush finishes the dump.
func (r *VCDRecorder) Flush() error {
	if !r.header {
		if err := r.emitHeader(); err != nil {
			return err
		}
	}
	fmt.Fprintf(r.w, "#%d\n", r.time)
	return r.w.Flush()
}

// vcdCode maps an index to a printable VCD identifier (base-94).
func vcdCode(i int) string {
	const lo, hi = 33, 126
	var sb strings.Builder
	for {
		sb.WriteByte(byte(lo + i%(hi-lo+1)))
		i /= hi - lo + 1
		if i == 0 {
			break
		}
		i--
	}
	return sb.String()
}

func sanitizeVCDName(s string) string {
	var sb strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		case r == '[':
			sb.WriteRune('(')
		case r == ']':
			sb.WriteRune(')')
		default:
			sb.WriteRune('_')
		}
	}
	return sb.String()
}
