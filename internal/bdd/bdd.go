// Package bdd implements reduced ordered binary decision diagrams (ROBDDs)
// with a shared unique table. The synthesis engine maps shared BDD nodes to
// multiplexer cells (one MUX per node), which is how the repository obtains
// compact technology-mapped netlists for 8-bit S-boxes, and the equivalence
// checker uses canonical-form equality between functions.
//
// Variables are identified by index 0..NumVars-1; index order is the BDD
// order (variable 0 is tested at the root).
package bdd

import (
	"fmt"
	"math"
)

// Node references a BDD node inside one Manager. The constants False and
// True are the terminal nodes; all other nodes are internal.
type Node int32

// Terminal nodes.
const (
	False Node = 0
	True  Node = 1
)

type nodeData struct {
	level  int32 // variable index; terminals use level = numVars
	lo, hi Node
}

type uniqueKey struct {
	level  int32
	lo, hi Node
}

type opKey struct {
	op      uint8
	a, b, c Node
}

const (
	opAnd uint8 = iota
	opXor
	opITE
	opRestrict0
	opRestrict1
	opCompose
)

// Manager owns the node pool; Nodes from different managers must not be
// mixed.
type Manager struct {
	numVars int
	budget  int // max live nodes; 0 means unlimited
	nodes   []nodeData
	unique  map[uniqueKey]Node
	cache   map[opKey]Node
}

// New creates a manager for functions over numVars variables with no node
// budget. Analysis code (internal/lint, internal/prove) must use
// NewWithBudget instead, enforced by the provebudget vet pass: an
// adversarial or degenerate netlist can otherwise grow the node pool
// without bound.
func New(numVars int) *Manager {
	return NewWithBudget(numVars, 0)
}

// NewWithBudget creates a manager whose node pool is capped at budget live
// nodes (0 means unlimited). When an operation would exceed the cap it
// panics with *BudgetError; run the construction under Guarded to turn the
// overflow into an ordinary error and report an "unknown" verdict instead
// of consuming unbounded memory.
func NewWithBudget(numVars, budget int) *Manager {
	m := &Manager{
		numVars: numVars,
		budget:  budget,
		unique:  make(map[uniqueKey]Node),
		cache:   make(map[opKey]Node),
	}
	// Terminals occupy slots 0 and 1 with a level below all variables.
	m.nodes = append(m.nodes,
		nodeData{level: int32(numVars)},
		nodeData{level: int32(numVars)},
	)
	return m
}

// NumVars returns the number of variables in the manager's order.
func (m *Manager) NumVars() int { return m.numVars }

// Size returns the total number of live nodes including terminals.
func (m *Manager) Size() int { return len(m.nodes) }

// Budget returns the node cap the manager was created with (0 = unlimited).
func (m *Manager) Budget() int { return m.budget }

// BudgetError is the panic value raised when a manager's node budget is
// exceeded; Guarded converts it into a returned error.
type BudgetError struct{ Budget int }

func (e *BudgetError) Error() string {
	return fmt.Sprintf("bdd: node budget of %d exceeded", e.Budget)
}

// Guarded runs f and converts a node-budget overflow inside it into the
// returned *BudgetError; any other panic propagates. The manager stays
// structurally consistent after an overflow, but further operations will
// overflow again immediately — callers are expected to discard it (or the
// partial analysis) and report "unknown".
func Guarded(f func()) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if be, ok := r.(*BudgetError); ok {
			err = be
			return
		}
		panic(r)
	}()
	f()
	return nil
}

func (m *Manager) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	key := uniqueKey{level, lo, hi}
	if n, ok := m.unique[key]; ok {
		return n
	}
	if m.budget > 0 && len(m.nodes) >= m.budget {
		panic(&BudgetError{Budget: m.budget})
	}
	m.nodes = append(m.nodes, nodeData{level: level, lo: lo, hi: hi})
	n := Node(len(m.nodes) - 1)
	m.unique[key] = n
	return n
}

// Var returns the function of the single variable i.
func (m *Manager) Var(i int) Node {
	if i < 0 || i >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, m.numVars))
	}
	return m.mk(int32(i), False, True)
}

// NVar returns the complement of variable i.
func (m *Manager) NVar(i int) Node {
	if i < 0 || i >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", i, m.numVars))
	}
	return m.mk(int32(i), True, False)
}

// Const returns the terminal for b.
func (m *Manager) Const(b bool) Node {
	if b {
		return True
	}
	return False
}

// Level returns the variable index tested at node n (NumVars for
// terminals).
func (m *Manager) Level(n Node) int { return int(m.nodes[n].level) }

// Cofactors returns the low (variable=0) and high (variable=1) children of
// an internal node.
func (m *Manager) Cofactors(n Node) (lo, hi Node) {
	d := m.nodes[n]
	return d.lo, d.hi
}

// IsTerminal reports whether n is False or True.
func (m *Manager) IsTerminal(n Node) bool { return n == False || n == True }

// Not returns the complement of f.
func (m *Manager) Not(f Node) Node { return m.ITE(f, False, True) }

// And returns f AND g.
func (m *Manager) And(f, g Node) Node {
	if f > g {
		f, g = g, f
	}
	switch {
	case f == False || g == False:
		return False
	case f == True:
		return g
	case g == True:
		return f
	case f == g:
		return f
	}
	key := opKey{op: opAnd, a: f, b: g}
	if r, ok := m.cache[key]; ok {
		return r
	}
	lvl, f0, f1, g0, g1 := m.split(f, g)
	r := m.mk(lvl, m.And(f0, g0), m.And(f1, g1))
	m.cache[key] = r
	return r
}

// Or returns f OR g.
func (m *Manager) Or(f, g Node) Node {
	return m.Not(m.And(m.Not(f), m.Not(g)))
}

// Xor returns f XOR g.
func (m *Manager) Xor(f, g Node) Node {
	if f > g {
		f, g = g, f
	}
	switch {
	case f == False:
		return g
	case f == True:
		return m.Not(g)
	case g == False:
		return f
	case g == True:
		return m.Not(f)
	case f == g:
		return False
	}
	key := opKey{op: opXor, a: f, b: g}
	if r, ok := m.cache[key]; ok {
		return r
	}
	lvl, f0, f1, g0, g1 := m.split(f, g)
	r := m.mk(lvl, m.Xor(f0, g0), m.Xor(f1, g1))
	m.cache[key] = r
	return r
}

// Xnor returns NOT (f XOR g).
func (m *Manager) Xnor(f, g Node) Node { return m.Not(m.Xor(f, g)) }

// ITE returns if-then-else: f ? g : h.
func (m *Manager) ITE(f, g, h Node) Node {
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	key := opKey{op: opITE, a: f, b: g, c: h}
	if r, ok := m.cache[key]; ok {
		return r
	}
	lvl := m.nodes[f].level
	if l := m.nodes[g].level; l < lvl {
		lvl = l
	}
	if l := m.nodes[h].level; l < lvl {
		lvl = l
	}
	f0, f1 := m.cofactorAt(f, lvl)
	g0, g1 := m.cofactorAt(g, lvl)
	h0, h1 := m.cofactorAt(h, lvl)
	r := m.mk(lvl, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.cache[key] = r
	return r
}

func (m *Manager) split(f, g Node) (lvl int32, f0, f1, g0, g1 Node) {
	lvl = m.nodes[f].level
	if l := m.nodes[g].level; l < lvl {
		lvl = l
	}
	f0, f1 = m.cofactorAt(f, lvl)
	g0, g1 = m.cofactorAt(g, lvl)
	return
}

func (m *Manager) cofactorAt(n Node, lvl int32) (lo, hi Node) {
	d := m.nodes[n]
	if d.level == lvl {
		return d.lo, d.hi
	}
	return n, n
}

// Restrict returns f with variable i fixed to the given value.
func (m *Manager) Restrict(f Node, i int, value bool) Node {
	op := opRestrict0
	if value {
		op = opRestrict1
	}
	key := opKey{op: op, a: f, b: Node(i)}
	if r, ok := m.cache[key]; ok {
		return r
	}
	d := m.nodes[f]
	var r Node
	switch {
	case int(d.level) > i:
		r = f
	case int(d.level) == i:
		if value {
			r = d.hi
		} else {
			r = d.lo
		}
	default:
		r = m.mk(d.level, m.Restrict(d.lo, i, value), m.Restrict(d.hi, i, value))
	}
	m.cache[key] = r
	return r
}

// Literal is one variable/value pair of a cube.
type Literal struct {
	Var   int
	Value bool
}

// Cofactor returns f restricted by every literal of the cube — the
// generalised multi-variable form of Restrict.
func (m *Manager) Cofactor(f Node, cube ...Literal) Node {
	for _, l := range cube {
		f = m.Restrict(f, l.Var, l.Value)
	}
	return f
}

// Exists returns the existential quantification of f over the given
// variables: OR of the two cofactors, applied per variable.
func (m *Manager) Exists(f Node, vars ...int) Node {
	for _, v := range vars {
		f = m.Or(m.Restrict(f, v, false), m.Restrict(f, v, true))
	}
	return f
}

// Eval evaluates f under the assignment where bit i of input gives variable
// i's value.
func (m *Manager) Eval(f Node, input uint64) bool {
	for !m.IsTerminal(f) {
		d := m.nodes[f]
		if (input>>uint(d.level))&1 == 1 {
			f = d.hi
		} else {
			f = d.lo
		}
	}
	return f == True
}

// SatCount returns the number of satisfying assignments of f over all
// NumVars variables, as a float64 (exact for < 2^53).
func (m *Manager) SatCount(f Node) float64 {
	memo := make(map[Node]float64)
	var count func(n Node) float64
	count = func(n Node) float64 {
		if n == False {
			return 0
		}
		if n == True {
			return 1
		}
		if c, ok := memo[n]; ok {
			return c
		}
		d := m.nodes[n]
		c := count(d.lo)*below(m, d.lo, d.level) + count(d.hi)*below(m, d.hi, d.level)
		memo[n] = c
		return c
	}
	root := count(f)
	// Account for variables above the root level.
	return root * math.Pow(2, float64(m.nodes[f].level))
}

func below(m *Manager, child Node, parentLevel int32) float64 {
	return math.Pow(2, float64(m.nodes[child].level-parentLevel-1))
}

// NodeCount returns the number of distinct internal nodes reachable from the
// given roots — the cost measure a MUX-per-node mapping pays.
func (m *Manager) NodeCount(roots ...Node) int {
	seen := make(map[Node]bool)
	var walk func(n Node)
	walk = func(n Node) {
		if m.IsTerminal(n) || seen[n] {
			return
		}
		seen[n] = true
		d := m.nodes[n]
		walk(d.lo)
		walk(d.hi)
	}
	for _, r := range roots {
		walk(r)
	}
	return len(seen)
}

// Support returns the sorted variable indices f depends on.
func (m *Manager) Support(f Node) []int {
	seen := make(map[Node]bool)
	vars := make(map[int]bool)
	var walk func(n Node)
	walk = func(n Node) {
		if m.IsTerminal(n) || seen[n] {
			return
		}
		seen[n] = true
		d := m.nodes[n]
		vars[int(d.level)] = true
		walk(d.lo)
		walk(d.hi)
	}
	walk(f)
	out := make([]int, 0, len(vars))
	for v := 0; v < m.numVars; v++ {
		if vars[v] {
			out = append(out, v)
		}
	}
	return out
}

// FromTruthTable builds the BDD of an n-variable boolean function given as
// a bit-indexed truth table: table bit j (of the packed words) is the value
// of the function on input j, where bit i of j assigns variable i.
func (m *Manager) FromTruthTable(table []uint64, nvars int) Node {
	if nvars > m.numVars {
		panic(fmt.Sprintf("bdd: truth table over %d vars exceeds manager's %d", nvars, m.numVars))
	}
	need := 1
	if nvars > 6 {
		need = 1 << uint(nvars-6)
	}
	if len(table) < need {
		panic(fmt.Sprintf("bdd: truth table too short: need %d words, got %d", need, len(table)))
	}
	var build func(lvl, base int) Node
	build = func(lvl, base int) Node {
		if lvl == nvars {
			if (table[base>>6]>>(uint(base)&63))&1 == 1 {
				return True
			}
			return False
		}
		// Variable `lvl` corresponds to input bit `lvl`. Build bottom
		// levels with the highest variable index deepest, consistent
		// with Eval's "bit i assigns variable i".
		lo := build(lvl+1, base)
		hi := build(lvl+1, base|1<<uint(lvl))
		return m.mk(int32(lvl), lo, hi)
	}
	return build(0, 0)
}
