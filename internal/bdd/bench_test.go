package bdd

import "testing"

func BenchmarkBuildAESSboxBit(b *testing.B) {
	// Build one 8-variable pseudo-random function's BDD per iteration.
	var table [4]uint64
	x := uint64(0x0123456789ABCDEF)
	for i := range table {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		table[i] = x
	}
	for i := 0; i < b.N; i++ {
		m := New(8)
		_ = m.FromTruthTable(table[:], 8)
	}
}

func BenchmarkApplyOps(b *testing.B) {
	m := New(16)
	f := m.Var(0)
	for i := 1; i < 16; i++ {
		f = m.Xor(f, m.And(m.Var(i), m.Var((i+3)%16)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.And(f, m.Var(i%16))
	}
}
