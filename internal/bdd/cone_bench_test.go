package bdd_test

// Regression pin for the prover's working-set size: the PRESENT-80 base
// cone (every output and register D-input of the protected core as a BDD
// over the primary ports) must stay well inside the default node budget,
// or proofs silently degrade to unknown verdicts. The file lives in an
// external test package because the measurement goes through
// internal/prove, which itself imports internal/bdd.

import (
	"testing"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/prove"
)

// Exact reduced node counts of the base cones under the analyzer's
// first-touch variable order. These are deterministic; a drift means the
// variable order or the core netlist changed, and either can push proof
// cost past the budget — re-measure before updating.
const (
	threeInOnePrimeBaseNodes = 93903
	acispPrimeBaseNodes      = 92975
)

func buildBase(tb testing.TB, opts core.Options) *prove.Analyzer {
	tb.Helper()
	d := core.MustBuild(present.Spec(), opts)
	a, err := prove.NewAnalyzer(d.Mod, 0)
	if err != nil {
		tb.Fatal(err)
	}
	return a
}

func TestPresent80ConeNodesPinned(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts core.Options
		want int
	}{
		{"three-in-one-prime",
			core.Options{Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPrime},
			threeInOnePrimeBaseNodes},
		{"acisp-prime",
			core.Options{Scheme: core.SchemeACISP, Entropy: core.EntropyPrime},
			acispPrimeBaseNodes},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := buildBase(t, tc.opts)
			got, err := a.BaseNodes()
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("base cone = %d nodes, pinned %d — variable order or netlist changed",
					got, tc.want)
			}
			if budget := prove.DefaultBudget; got > budget/8 {
				t.Errorf("base cone %d nodes exceeds 1/8 of the default budget %d; proofs will start degrading to unknown", got, budget)
			}
		})
	}
}

func BenchmarkPresent80BaseCone(b *testing.B) {
	opts := core.Options{Scheme: core.SchemeThreeInOne, Entropy: core.EntropyPrime}
	d := core.MustBuild(present.Spec(), opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := prove.NewAnalyzer(d.Mod, 0)
		if err != nil {
			b.Fatal(err)
		}
		n, err := a.BaseNodes()
		if err != nil {
			b.Fatal(err)
		}
		if n != threeInOnePrimeBaseNodes {
			b.Fatalf("base cone = %d nodes, want %d", n, threeInOnePrimeBaseNodes)
		}
	}
	b.ReportMetric(float64(threeInOnePrimeBaseNodes), "nodes")
}
