package bdd

import (
	"testing"
	"testing/quick"
)

// evalAll tabulates a node over all assignments of n variables.
func evalAll(m *Manager, f Node, n int) uint64 {
	var tt uint64
	for x := uint64(0); x < 1<<uint(n); x++ {
		if m.Eval(f, x) {
			tt |= 1 << x
		}
	}
	return tt
}

func TestVarAndConstants(t *testing.T) {
	m := New(3)
	if m.Eval(True, 0) != true || m.Eval(False, 7) != false {
		t.Fatal("terminals broken")
	}
	for i := 0; i < 3; i++ {
		v := m.Var(i)
		for x := uint64(0); x < 8; x++ {
			if m.Eval(v, x) != ((x>>uint(i))&1 == 1) {
				t.Fatalf("Var(%d) wrong at %d", i, x)
			}
		}
		nv := m.NVar(i)
		if m.Not(v) != nv {
			t.Fatalf("Not(Var) != NVar — canonical form broken")
		}
	}
}

func TestCanonicity(t *testing.T) {
	// Structurally different constructions of the same function must
	// return the identical node.
	m := New(4)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	lhs := m.Or(m.And(a, b), m.And(a, c))
	rhs := m.And(a, m.Or(b, c))
	if lhs != rhs {
		t.Fatal("distribution law not canonical")
	}
	if m.Xor(a, a) != False || m.Xnor(b, b) != True {
		t.Fatal("self-XOR not folded")
	}
	if m.ITE(a, True, False) != a {
		t.Fatal("ITE(a,1,0) != a")
	}
}

func TestOperationsAgainstTruthTables(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	cases := []struct {
		f    Node
		spec func(x uint64) bool
	}{
		{m.And(a, b), func(x uint64) bool { return x&1 == 1 && x&2 == 2 }},
		{m.Or(a, c), func(x uint64) bool { return x&1 == 1 || x&4 == 4 }},
		{m.Xor(b, c), func(x uint64) bool { return (x>>1)&1 != (x>>2)&1 }},
		{m.Not(a), func(x uint64) bool { return x&1 == 0 }},
		{m.ITE(a, b, c), func(x uint64) bool {
			if x&1 == 1 {
				return x&2 == 2
			}
			return x&4 == 4
		}},
	}
	for i, tc := range cases {
		for x := uint64(0); x < 8; x++ {
			if m.Eval(tc.f, x) != tc.spec(x) {
				t.Errorf("case %d wrong at %d", i, x)
			}
		}
	}
}

func TestRestrict(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	f := m.Xor(a, b)
	if m.Restrict(f, 0, false) != b {
		t.Fatal("restrict a=0 of a^b should be b")
	}
	if m.Restrict(f, 0, true) != m.Not(b) {
		t.Fatal("restrict a=1 of a^b should be !b")
	}
	// Shannon expansion identity: f = ITE(x, f|x=1, f|x=0).
	g := m.Or(m.And(a, b), m.Var(2))
	exp := m.ITE(a, m.Restrict(g, 0, true), m.Restrict(g, 0, false))
	if exp != g {
		t.Fatal("Shannon expansion not identity")
	}
}

func TestSatCount(t *testing.T) {
	m := New(4)
	a, b := m.Var(0), m.Var(1)
	if got := m.SatCount(m.And(a, b)); got != 4 { // 2 free vars
		t.Fatalf("SatCount(a&b) = %v, want 4", got)
	}
	if got := m.SatCount(m.Or(a, b)); got != 12 {
		t.Fatalf("SatCount(a|b) = %v, want 12", got)
	}
	if got := m.SatCount(True); got != 16 {
		t.Fatalf("SatCount(1) = %v, want 16", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Fatalf("SatCount(0) = %v, want 0", got)
	}
	if got := m.SatCount(m.Var(3)); got != 8 {
		t.Fatalf("SatCount(x3) = %v, want 8", got)
	}
}

func TestSupport(t *testing.T) {
	m := New(5)
	f := m.And(m.Var(1), m.Xor(m.Var(3), m.Var(4)))
	got := m.Support(f)
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("support %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("support %v, want %v", got, want)
		}
	}
}

func TestFromTruthTable(t *testing.T) {
	// Function of 3 vars with an arbitrary truth table.
	const tt = uint64(0b10110100)
	m := New(3)
	f := m.FromTruthTable([]uint64{tt}, 3)
	if evalAll(m, f, 3) != tt {
		t.Fatalf("FromTruthTable round trip failed: %08b", evalAll(m, f, 3))
	}
}

func TestFromTruthTableMatchesOps(t *testing.T) {
	// Property: building from the tabulated XOR/AND equals the direct op.
	f := func(seed uint8) bool {
		m := New(3)
		a, b, c := m.Var(0), m.Var(1), m.Var(2)
		direct := m.Xor(m.And(a, b), c)
		var tt uint64
		for x := uint64(0); x < 8; x++ {
			bit := ((x & 1 & (x >> 1)) ^ (x >> 2)) & 1
			if bit == 1 {
				tt |= 1 << x
			}
		}
		built := m.FromTruthTable([]uint64{tt}, 3)
		return built == direct
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}

func TestDeMorganProperty(t *testing.T) {
	f := func(ttA, ttB uint8) bool {
		m := New(3)
		a := m.FromTruthTable([]uint64{uint64(ttA)}, 3)
		b := m.FromTruthTable([]uint64{uint64(ttB)}, 3)
		return m.Not(m.And(a, b)) == m.Or(m.Not(a), m.Not(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeCountSharing(t *testing.T) {
	m := New(4)
	a := m.Var(0)
	h := m.And(m.Var(1), m.Var(2))
	f := m.And(a, h)           // contains h's nodes
	g := m.ITE(a, h, m.Var(3)) // also contains h's nodes
	single := m.NodeCount(f) + m.NodeCount(g)
	both := m.NodeCount(f, g)
	if both >= single {
		t.Fatalf("no sharing detected: both=%d, sum=%d", both, single)
	}
}
