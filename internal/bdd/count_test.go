package bdd

import (
	"errors"
	"math/big"
	"strings"
	"testing"
)

func TestBudgetGuarded(t *testing.T) {
	m := NewWithBudget(8, 8)
	if m.Budget() != 8 {
		t.Fatalf("Budget() = %d, want 8", m.Budget())
	}
	err := Guarded(func() {
		f := False
		for i := 0; i < 8; i++ {
			f = m.Xor(f, m.Var(i))
		}
	})
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("8-var parity under budget 8: err = %v, want *BudgetError", err)
	}
	if be.Budget != 8 || !strings.Contains(be.Error(), "8") {
		t.Fatalf("BudgetError = %+v (%q)", be, be.Error())
	}

	// Unlimited managers never trip.
	u := New(8)
	if u.Budget() != 0 {
		t.Fatalf("New budget = %d, want 0 (unlimited)", u.Budget())
	}
	if err := Guarded(func() {
		f := False
		for i := 0; i < 8; i++ {
			f = u.Xor(f, u.Var(i))
		}
	}); err != nil {
		t.Fatalf("unlimited manager: %v", err)
	}
}

func TestGuardedRethrowsForeignPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Guarded swallowed a non-budget panic")
		}
	}()
	_ = Guarded(func() { panic("unrelated") })
}

func TestCofactor(t *testing.T) {
	m := New(4)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), m.And(m.Not(a), c))
	if got := m.Cofactor(f, Literal{Var: 0, Value: true}); got != b {
		t.Fatalf("f|a=1 = %v, want Var(1)", got)
	}
	if got := m.Cofactor(f, Literal{Var: 0}, Literal{Var: 2, Value: true}); got != True {
		t.Fatalf("f|a=0,c=1 = %v, want True", got)
	}
	// Cofactor by a sorted cube must agree with chained Restrict.
	g := m.Xor(f, m.Var(3))
	lhs := m.Cofactor(g, Literal{Var: 1, Value: true}, Literal{Var: 3})
	rhs := m.Restrict(m.Restrict(g, 1, true), 3, false)
	if lhs != rhs {
		t.Fatal("Cofactor disagrees with chained Restrict")
	}
}

func TestExists(t *testing.T) {
	const n = 4
	m := New(n)
	a, b, c, d := m.Var(0), m.Var(1), m.Var(2), m.Var(3)
	f := m.Or(m.And(a, b), m.And(c, d))
	// ∃b.f via definition: f|b=0 ∨ f|b=1.
	want := m.Or(m.Restrict(f, 1, false), m.Restrict(f, 1, true))
	if got := m.Exists(f, 1); got != want {
		t.Fatal("Exists(f, b) != f|b=0 ∨ f|b=1")
	}
	// Quantifying everything out of a satisfiable function gives True.
	if got := m.Exists(f, 0, 1, 2, 3); got != True {
		t.Fatalf("Exists over all vars = %v, want True", got)
	}
	if got := m.Exists(False, 0, 1); got != False {
		t.Fatal("Exists(False) != False")
	}
	// Quantified variables leave the support.
	g := m.Exists(f, 0, 2)
	for _, v := range m.Support(g) {
		if v == 0 || v == 2 {
			t.Fatalf("quantified var %d still in support", v)
		}
	}
}

// brutePartitionCount computes, for each public/key assignment, the number
// of random assignments satisfying f — the reference for CountRandom.
func brutePartitionCount(m *Manager, f Node, classOf []Class, fixed uint64) int64 {
	randVars := []int{}
	for v, c := range classOf {
		if c == ClassRandom {
			randVars = append(randVars, v)
		}
	}
	var cnt int64
	for r := uint64(0); r < 1<<uint(len(randVars)); r++ {
		x := fixed
		for i, v := range randVars {
			if r>>uint(i)&1 == 1 {
				x |= 1 << uint(v)
			}
		}
		if m.Eval(f, x) {
			cnt++
		}
	}
	return cnt
}

func TestCountRandomAgainstBruteForce(t *testing.T) {
	const n = 6
	classOf := []Class{ClassPublic, ClassKey, ClassRandom, ClassKey, ClassRandom, ClassPublic}
	p := NewPartition(classOf)
	if p.NumVars() != n || p.RandomVars() != 2 {
		t.Fatalf("partition: %d vars, %d random", p.NumVars(), p.RandomVars())
	}
	if p.Class(1) != ClassKey || p.Class(2).String() != "random" {
		t.Fatal("Class lookup broken")
	}

	m := New(n)
	// A deliberately lopsided function mixing all three classes.
	f := m.Or(
		m.And(m.Var(0), m.Xor(m.Var(2), m.Var(1))),
		m.And(m.Var(3), m.And(m.Var(4), m.Var(5))),
	)
	c := m.CountRandom(f, p)
	nonRand := []int{0, 1, 3, 5}
	for bits := uint64(0); bits < 1<<uint(len(nonRand)); bits++ {
		var fixed uint64
		assign := make(map[int]bool)
		for i, v := range nonRand {
			if bits>>uint(i)&1 == 1 {
				fixed |= 1 << uint(v)
				assign[v] = true
			}
		}
		want := brutePartitionCount(m, f, classOf, fixed)
		num, den := c.Value(func(v int) bool { return assign[v] })
		if den.Cmp(big.NewInt(1)) != 0 || num.Int64() != want {
			t.Fatalf("count at %04b = %s/%s, want %d", bits, num, den, want)
		}
	}
	if !c.KeyDependent() {
		t.Fatal("count of a key-mixing function reported key-independent")
	}
	w := c.Witness()
	if w == nil {
		t.Fatal("key-dependent count has no witness")
	}
	if classOf[w.KeyVar] != ClassKey {
		t.Fatalf("witness pivot var %d is %s, not key", w.KeyVar, classOf[w.KeyVar])
	}
	if w.Lo == w.Hi {
		t.Fatalf("witness does not distinguish: lo == hi == %s", w.Lo)
	}
	if c.NodeCount() == 0 {
		t.Fatal("non-constant count ADD has zero nodes")
	}
}

func TestCountRandomKeyIndependent(t *testing.T) {
	classOf := []Class{ClassPublic, ClassKey, ClassRandom}
	p := NewPartition(classOf)
	m := New(3)
	// λ ⊕ key is uniform in λ for either key value: count is constant 1.
	f := m.Xor(m.Var(2), m.Var(1))
	c := m.CountRandom(f, p)
	if c.KeyDependent() {
		t.Fatal("uniform count reported key-dependent")
	}
	if w := c.Witness(); w != nil {
		t.Fatalf("independent count produced witness %+v", w)
	}
	num, den := c.Value(func(int) bool { return false })
	if num.Int64() != 1 || den.Int64() != 1 {
		t.Fatalf("count = %s/%s, want 1/1", num, den)
	}
}

func TestCondCountRandom(t *testing.T) {
	// The conditional-bias shape from the prover tests, reduced to raw BDDs:
	// U = λ⊕din stuck to 0 is ineffective iff λ = din (count 1, uniform);
	// D = flag fires. P(D|U) depends on the key even though both marginals
	// are uniform.
	classOf := []Class{ClassPublic, ClassKey, ClassRandom}
	p := NewPartition(classOf)
	m := New(3)
	din, key, lam := m.Var(0), m.Var(1), m.Var(2)
	u := m.Xnor(lam, din)            // faulted v == clean v
	d := m.Xor(lam, m.And(din, key)) // flag under the fault
	joint := m.CondCountRandom(m.And(u, d), u, p)
	if !joint.KeyDependent() {
		t.Fatal("conditional distribution lost the key bias")
	}
	w := joint.Witness()
	if w == nil || w.KeyVar != 1 {
		t.Fatalf("witness = %+v, want pivot on key var 1", w)
	}

	// Conditioning on an unsatisfiable event yields the distinguished
	// "none" terminal for every assignment, never a division by zero.
	empty := m.CondCountRandom(False, False, p)
	if empty.KeyDependent() {
		t.Fatal("0/0 conditional reported key-dependent")
	}
	num, den := empty.Value(func(int) bool { return true })
	if num.Sign() != 0 || den.Sign() != 0 {
		t.Fatalf("empty conditional = %s/%s, want 0/0", num, den)
	}
}

func TestCountBudgetCharged(t *testing.T) {
	const n = 12
	m := NewWithBudget(n, 1<<16)
	classOf := make([]Class, n)
	for i := range classOf {
		// No random vars: the count ADD mirrors the BDD shape.
		classOf[i] = ClassKey
	}
	p := NewPartition(classOf)
	// Build a function comfortably inside the BDD budget...
	f := False
	for i := 0; i < n; i++ {
		f = m.Xor(f, m.Var(i))
	}
	// ...then shrink the budget so the count construction itself trips.
	m.budget = 4
	err := Guarded(func() { m.CountRandom(f, p) })
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("count under budget 4: err = %v, want *BudgetError", err)
	}
}
