package bdd

import (
	"fmt"
	"math/big"
)

// Class assigns a variable to one side of the counting partition the
// independence prover works over: Key variables are the secret, Random
// variables are summed out (the countermeasure's entropy: λ and garbage
// bits), and Public variables parameterise the count (plaintext, control).
type Class uint8

// Partition classes.
const (
	ClassPublic Class = iota
	ClassKey
	ClassRandom
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassPublic:
		return "public"
	case ClassKey:
		return "key"
	case ClassRandom:
		return "random"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Partition maps every manager variable to its Class and precomputes the
// suffix sums the counting recursion scales skipped random levels with.
type Partition struct {
	classOf []Class
	// randGE[l] counts the random variables at levels >= l; the extra
	// trailing entry (always 0) is indexed by the terminal level.
	randGE []int
}

// NewPartition builds a partition from a per-variable class slice (index =
// variable index). The slice is copied.
func NewPartition(classOf []Class) *Partition {
	p := &Partition{
		classOf: append([]Class(nil), classOf...),
		randGE:  make([]int, len(classOf)+1),
	}
	for l := len(classOf) - 1; l >= 0; l-- {
		p.randGE[l] = p.randGE[l+1]
		if classOf[l] == ClassRandom {
			p.randGE[l]++
		}
	}
	return p
}

// Class returns variable v's class.
func (p *Partition) Class(v int) Class { return p.classOf[v] }

// NumVars returns the number of variables the partition covers.
func (p *Partition) NumVars() int { return len(p.classOf) }

// RandomVars returns how many variables are in ClassRandom.
func (p *Partition) RandomVars() int { return p.randGE[0] }

// cref references a Count node: non-negative values index internal nodes,
// negative values encode terminal index -(ref+1).
type cref int32

func termRef(i int) cref      { return cref(-i - 1) }
func (r cref) terminal() bool { return r < 0 }
func (r cref) termIndex() int { return int(-r - 1) }

type cntNode struct {
	level  int32
	lo, hi cref
}

// cntTerm is one exact rational terminal n/d. Plain counts use d = 1;
// conditional counts carry the gcd-reduced fraction, with d = 0 encoding a
// conditional over an empty (unsatisfiable) condition.
type cntTerm struct {
	n, d *big.Int
}

// Count is a reduced algebraic decision diagram over the partition's
// non-random variables: for each assignment of the public and key
// variables, the reached terminal is the exact number of random-variable
// assignments satisfying the counted function (or, for CondCountRandom,
// the reduced conditional fraction). Reduction makes key-dependence a
// syntactic property: the count depends on the key if and only if some
// internal node tests a ClassKey variable.
type Count struct {
	p     *Partition
	nodes []cntNode
	terms []cntTerm
	root  cref
}

// cntBuilder hash-conses nodes and terminals during one Count
// construction. Node growth is charged against the owning manager's
// budget, so a blowing-up count ADD surfaces as the same *BudgetError the
// BDD operations raise.
type cntBuilder struct {
	m      *Manager
	c      *Count
	unique map[cntNode]cref
	tuniq  map[string]cref
	memo   map[Node]cref     // BDD node -> raw count ADD
	scale  map[[2]int32]cref // (ref, k) -> ref scaled by 2^k
	sum    map[[2]cref]cref  // add cache (ordered operands)
	pair   map[[2]cref]cref  // conditional combine cache
}

func newCntBuilder(m *Manager, p *Partition) *cntBuilder {
	return &cntBuilder{
		m:      m,
		c:      &Count{p: p},
		unique: make(map[cntNode]cref),
		tuniq:  make(map[string]cref),
		memo:   make(map[Node]cref),
		scale:  make(map[[2]int32]cref),
		sum:    make(map[[2]cref]cref),
		pair:   make(map[[2]cref]cref),
	}
}

func (b *cntBuilder) term(n, d *big.Int) cref {
	key := n.String() + "/" + d.String()
	if r, ok := b.tuniq[key]; ok {
		return r
	}
	b.c.terms = append(b.c.terms, cntTerm{n: new(big.Int).Set(n), d: new(big.Int).Set(d)})
	r := termRef(len(b.c.terms) - 1)
	b.tuniq[key] = r
	return r
}

var (
	bigZero = big.NewInt(0)
	bigOne  = big.NewInt(1)
)

func (b *cntBuilder) count(n *big.Int) cref { return b.term(n, bigOne) }

func (b *cntBuilder) mk(level int32, lo, hi cref) cref {
	if lo == hi {
		return lo
	}
	key := cntNode{level: level, lo: lo, hi: hi}
	if r, ok := b.unique[key]; ok {
		return r
	}
	if b.m.budget > 0 && len(b.c.nodes) >= b.m.budget {
		panic(&BudgetError{Budget: b.m.budget})
	}
	b.c.nodes = append(b.c.nodes, key)
	r := cref(len(b.c.nodes) - 1)
	b.unique[key] = r
	return r
}

// scaleBy multiplies every terminal reachable from r by 2^k.
func (b *cntBuilder) scaleBy(r cref, k int) cref {
	if k == 0 {
		return r
	}
	key := [2]int32{int32(r), int32(k)}
	if s, ok := b.scale[key]; ok {
		return s
	}
	var s cref
	if r.terminal() {
		t := b.c.terms[r.termIndex()]
		s = b.term(new(big.Int).Lsh(t.n, uint(k)), t.d)
	} else {
		nd := b.c.nodes[r]
		s = b.mk(nd.level, b.scaleBy(nd.lo, k), b.scaleBy(nd.hi, k))
	}
	b.scale[key] = s
	return s
}

func (b *cntBuilder) level(r cref) int32 {
	if r.terminal() {
		return int32(b.c.p.NumVars())
	}
	return b.c.nodes[r].level
}

func (b *cntBuilder) cofactors(r cref, level int32) (cref, cref) {
	if !r.terminal() && b.c.nodes[r].level == level {
		return b.c.nodes[r].lo, b.c.nodes[r].hi
	}
	return r, r
}

// addRefs sums two count ADDs pointwise.
func (b *cntBuilder) addRefs(x, y cref) cref {
	if x > y {
		x, y = y, x
	}
	if x.terminal() && y.terminal() {
		tx, ty := b.c.terms[x.termIndex()], b.c.terms[y.termIndex()]
		return b.count(new(big.Int).Add(tx.n, ty.n))
	}
	key := [2]cref{x, y}
	if r, ok := b.sum[key]; ok {
		return r
	}
	lvl := b.level(x)
	if l := b.level(y); l < lvl {
		lvl = l
	}
	x0, x1 := b.cofactors(x, lvl)
	y0, y1 := b.cofactors(y, lvl)
	r := b.mk(lvl, b.addRefs(x0, y0), b.addRefs(x1, y1))
	b.sum[key] = r
	return r
}

// build computes the raw count ADD of BDD node f: counts cover the random
// variables at levels >= level(f); callers scale for the gap to their own
// level.
func (b *cntBuilder) build(f Node) cref {
	if f == False {
		return b.count(bigZero)
	}
	if f == True {
		return b.count(bigOne)
	}
	if r, ok := b.memo[f]; ok {
		return r
	}
	d := b.m.nodes[f]
	p := b.c.p
	lo := b.scaleBy(b.build(d.lo), p.randGE[d.level+1]-p.randGE[b.m.nodes[d.lo].level])
	hi := b.scaleBy(b.build(d.hi), p.randGE[d.level+1]-p.randGE[b.m.nodes[d.hi].level])
	var r cref
	if p.classOf[d.level] == ClassRandom {
		r = b.addRefs(lo, hi)
	} else {
		r = b.mk(d.level, lo, hi)
	}
	b.memo[f] = r
	return r
}

func (b *cntBuilder) finish(f Node) cref {
	p := b.c.p
	return b.scaleBy(b.build(f), p.randGE[0]-p.randGE[b.m.nodes[f].level])
}

// condRefs combines a numerator and denominator count ADD into the ADD of
// gcd-reduced conditional fractions n/d; an unsatisfiable condition (d = 0)
// maps to the single distinguished terminal 0/0, so conditionals over empty
// sample sets compare equal to each other and nothing else.
func (b *cntBuilder) condRefs(num, den cref) cref {
	if num.terminal() && den.terminal() {
		n := b.c.terms[num.termIndex()].n
		d := b.c.terms[den.termIndex()].n
		if d.Sign() == 0 {
			return b.term(bigZero, bigZero)
		}
		g := new(big.Int).GCD(nil, nil, n, d)
		if g.Sign() == 0 {
			g = bigOne
		}
		return b.term(new(big.Int).Div(n, g), new(big.Int).Div(d, g))
	}
	key := [2]cref{num, den}
	if r, ok := b.pair[key]; ok {
		return r
	}
	lvl := b.level(num)
	if l := b.level(den); l < lvl {
		lvl = l
	}
	n0, n1 := b.cofactors(num, lvl)
	d0, d1 := b.cofactors(den, lvl)
	r := b.mk(lvl, b.condRefs(n0, d0), b.condRefs(n1, d1))
	b.pair[key] = r
	return r
}

// CountRandom computes the satisfy-count of f under the partition: a Count
// giving, for every assignment of the public and key variables, the exact
// number of ClassRandom assignments on which f is true. Node growth counts
// against the manager's budget.
func (m *Manager) CountRandom(f Node, p *Partition) *Count {
	if p.NumVars() != m.numVars {
		panic(fmt.Sprintf("bdd: partition over %d vars, manager has %d", p.NumVars(), m.numVars))
	}
	b := newCntBuilder(m, p)
	b.c.root = b.finish(f)
	return b.c
}

// CondCountRandom computes the conditional distribution count of num given
// den: for every public/key assignment, the gcd-reduced fraction
// (#random: num) / (#random: den). The conditional is key-independent
// exactly when the resulting Count has no key node, even where the
// marginal counts themselves vary with the key.
func (m *Manager) CondCountRandom(num, den Node, p *Partition) *Count {
	if p.NumVars() != m.numVars {
		panic(fmt.Sprintf("bdd: partition over %d vars, manager has %d", p.NumVars(), m.numVars))
	}
	b := newCntBuilder(m, p)
	b.c.root = b.condRefs(b.finish(num), b.finish(den))
	return b.c
}

// NodeCount returns the number of internal ADD nodes reachable from the
// root.
func (c *Count) NodeCount() int {
	seen := make(map[cref]bool)
	var walk func(r cref)
	walk = func(r cref) {
		if r.terminal() || seen[r] {
			return
		}
		seen[r] = true
		walk(c.nodes[r].lo)
		walk(c.nodes[r].hi)
	}
	walk(c.root)
	return len(seen)
}

// Value evaluates the count under an assignment of the non-random
// variables, returning the exact numerator and denominator (denominator 1
// for plain counts, 0/0 for a conditional over an empty condition).
func (c *Count) Value(assign func(v int) bool) (n, d *big.Int) {
	r := c.root
	for !r.terminal() {
		nd := c.nodes[r]
		if assign(int(nd.level)) {
			r = nd.hi
		} else {
			r = nd.lo
		}
	}
	t := c.terms[r.termIndex()]
	return new(big.Int).Set(t.n), new(big.Int).Set(t.d)
}

// KeyDependent reports whether the count depends on any ClassKey variable:
// by reduction, exactly when a key-level node is reachable.
func (c *Count) KeyDependent() bool {
	seen := make(map[cref]bool)
	var walk func(r cref) bool
	walk = func(r cref) bool {
		if r.terminal() || seen[r] {
			return false
		}
		seen[r] = true
		nd := c.nodes[r]
		if c.p.classOf[nd.level] == ClassKey {
			return true
		}
		return walk(nd.lo) || walk(nd.hi)
	}
	return walk(c.root)
}

// CountWitness is a concrete dependence witness: fixing the listed
// variables (unlisted ones are don't-care), flipping KeyVar moves the count
// from Lo to Hi.
type CountWitness struct {
	KeyVar int
	Assign []Literal
	Lo, Hi string
}

// Witness extracts a dependence witness, or nil when the count is
// key-independent. The witness pins the path from the root to the topmost
// key node plus one distinguishing completion below it.
func (c *Count) Witness() *CountWitness {
	var path []Literal
	var found *CountWitness
	seen := make(map[cref]bool)
	var walk func(r cref) bool
	walk = func(r cref) bool {
		if r.terminal() || found != nil {
			return false
		}
		nd := c.nodes[r]
		if c.p.classOf[nd.level] == ClassKey {
			w := &CountWitness{KeyVar: int(nd.level), Assign: append([]Literal(nil), path...)}
			diff, lo, hi := c.distinguish(nd.lo, nd.hi)
			w.Assign = append(w.Assign, diff...)
			w.Lo, w.Hi = c.termString(lo), c.termString(hi)
			found = w
			return true
		}
		if seen[r] {
			return false
		}
		seen[r] = true
		path = append(path, Literal{Var: int(nd.level), Value: false})
		if walk(nd.lo) {
			return true
		}
		path[len(path)-1].Value = true
		if walk(nd.hi) {
			return true
		}
		path = path[:len(path)-1]
		return false
	}
	walk(c.root)
	return found
}

// distinguish finds an assignment separating two distinct reduced ADDs —
// guaranteed to exist by canonicity — and the two terminals reached.
func (c *Count) distinguish(a, b cref) (lits []Literal, ta, tb cref) {
	for a != b {
		if a.terminal() && b.terminal() {
			return lits, a, b
		}
		la, lb := c.refLevel(a), c.refLevel(b)
		lvl := la
		if lb < lvl {
			lvl = lb
		}
		a0, a1 := c.refCofactors(a, lvl)
		b0, b1 := c.refCofactors(b, lvl)
		if a0 != b0 {
			lits = append(lits, Literal{Var: int(lvl)})
			a, b = a0, b0
		} else {
			lits = append(lits, Literal{Var: int(lvl), Value: true})
			a, b = a1, b1
		}
	}
	// Unreachable for distinct reduced operands.
	return lits, a, b
}

func (c *Count) refLevel(r cref) int32 {
	if r.terminal() {
		return int32(c.p.NumVars())
	}
	return c.nodes[r].level
}

func (c *Count) refCofactors(r cref, level int32) (cref, cref) {
	if !r.terminal() && c.nodes[r].level == level {
		return c.nodes[r].lo, c.nodes[r].hi
	}
	return r, r
}

// termString renders a terminal: plain counts as decimals, conditionals as
// reduced fractions, the empty condition as "none".
func (c *Count) termString(r cref) string {
	t := c.terms[r.termIndex()]
	switch {
	case t.d.Sign() == 0:
		return "none"
	case t.d.Cmp(bigOne) == 0:
		return t.n.String()
	default:
		return t.n.String() + "/" + t.d.String()
	}
}
