// Package stdcell models the standard-cell library the paper maps its
// designs onto (the open Nangate 45nm PDK v13). Cell areas are expressed in
// gate equivalents (GE): the area of one cell divided by the area of the
// smallest two-input NAND. The values below follow the usual Nangate-45
// relative sizes (X1 drive strength); absolute areas are irrelevant to the
// paper's tables, which report GE and GE ratios.
package stdcell

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/netlist"
)

// Library maps each netlist cell kind to a GE area and tracks which kinds
// count as sequential (non-combinational) area in reports.
type Library struct {
	Name string
	area map[netlist.CellKind]float64
}

// Nangate45 returns the library used by all experiments: a GE model of the
// open 45nm Nangate PDK. Constants are free (they synthesise to tie cells
// that the optimiser removes anyway).
func Nangate45() *Library {
	return &Library{
		Name: "nangate45-ge",
		area: map[netlist.CellKind]float64{
			netlist.KindConst0: 0,
			netlist.KindConst1: 0,
			netlist.KindBuf:    1.00,
			netlist.KindInv:    0.67,
			netlist.KindNand2:  1.00,
			netlist.KindNor2:   1.00,
			netlist.KindAnd2:   1.33,
			netlist.KindOr2:    1.33,
			netlist.KindXor2:   2.00,
			netlist.KindXnor2:  2.00,
			netlist.KindMux2:   2.33,
			netlist.KindDFF:    6.25,
		},
	}
}

// CellArea returns the GE area of one cell of the given kind. Unknown kinds
// report zero area.
func (l *Library) CellArea(k netlist.CellKind) float64 { return l.area[k] }

// Report is an area breakdown of one module, in GE.
type Report struct {
	Module        string
	Library       string
	Combinational float64
	Sequential    float64
	ByKind        map[netlist.CellKind]float64
	CellCount     int
}

// Total returns combinational plus sequential GE.
func (r Report) Total() float64 { return r.Combinational + r.Sequential }

// Area prices every cell of the module.
func (l *Library) Area(m *netlist.Module) Report {
	r := Report{
		Module:  m.Name,
		Library: l.Name,
		ByKind:  make(map[netlist.CellKind]float64),
	}
	for i := range m.Cells {
		k := m.Cells[i].Kind
		a := l.area[k]
		r.ByKind[k] += a
		if k.IsSequential() {
			r.Sequential += a
		} else {
			r.Combinational += a
		}
		if !k.IsConst() {
			r.CellCount++
		}
	}
	return r
}

// String renders the report in the layout of the paper's Table II row:
// combinational / non-combinational / total GE.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s [%s]: comb %.0f GE, non-comb %.0f GE, total %.0f GE\n",
		r.Module, r.Library, r.Combinational, r.Sequential, r.Total())
	kinds := make([]netlist.CellKind, 0, len(r.ByKind))
	for k := range r.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		if r.ByKind[k] > 0 {
			fmt.Fprintf(&sb, "  %-6s %9.2f GE\n", k, r.ByKind[k])
		}
	}
	return sb.String()
}

// Ratio returns r.Total()/base.Total(), the overhead factor the paper's
// tables quote (e.g. "1.32x"). It returns 0 if base is empty.
func (r Report) Ratio(base Report) float64 {
	if base.Total() == 0 {
		return 0
	}
	return r.Total() / base.Total()
}
