package stdcell

import (
	"strings"
	"testing"

	"repro/internal/netlist"
)

func TestNangate45RelativeSizes(t *testing.T) {
	lib := Nangate45()
	// NAND2 is the GE unit by definition.
	if lib.CellArea(netlist.KindNand2) != 1.0 {
		t.Fatal("NAND2 must be 1 GE")
	}
	// Sanity of relative ordering: INV < NAND2 < AND2 < XOR2 < MUX2 < DFF.
	order := []netlist.CellKind{
		netlist.KindInv, netlist.KindNand2, netlist.KindAnd2,
		netlist.KindXor2, netlist.KindMux2, netlist.KindDFF,
	}
	for i := 1; i < len(order); i++ {
		if lib.CellArea(order[i-1]) >= lib.CellArea(order[i]) {
			t.Fatalf("%s (%.2f) should be smaller than %s (%.2f)",
				order[i-1], lib.CellArea(order[i-1]), order[i], lib.CellArea(order[i]))
		}
	}
	// Constants are free.
	if lib.CellArea(netlist.KindConst0) != 0 || lib.CellArea(netlist.KindConst1) != 0 {
		t.Fatal("constants must have zero area")
	}
}

func TestAreaReportSplit(t *testing.T) {
	m := netlist.New("t")
	in := m.AddInput("x", 2)
	a := m.And(in[0], in[1]) // 1.33
	x := m.Xor(a, in[0])     // 2.00
	q := m.DFF(x)            // 6.25
	m.AddOutput("y", netlist.Bus{q})

	lib := Nangate45()
	r := lib.Area(m)
	if r.Combinational != 3.33 || r.Sequential != 6.25 {
		t.Fatalf("split wrong: comb %.2f seq %.2f", r.Combinational, r.Sequential)
	}
	if r.Total() != 9.58 {
		t.Fatalf("total %.2f", r.Total())
	}
	if r.CellCount != 3 {
		t.Fatalf("cell count %d", r.CellCount)
	}
	if !strings.Contains(r.String(), "XOR2") {
		t.Fatal("report string missing breakdown")
	}
}

func TestRatio(t *testing.T) {
	m := netlist.New("a")
	in := m.AddInput("x", 2)
	m.AddOutput("y", netlist.Bus{m.And(in[0], in[1])})
	lib := Nangate45()
	base := lib.Area(m)

	m2 := netlist.New("b")
	in2 := m2.AddInput("x", 2)
	m2.AddOutput("y", netlist.Bus{m2.And(in2[0], in2[1]), m2.And(in2[1], in2[0])})
	double := lib.Area(m2)

	if r := double.Ratio(base); r != 2 {
		t.Fatalf("ratio %.2f, want 2", r)
	}
	if (Report{}).Ratio(Report{}) != 0 {
		t.Fatal("empty base ratio should be 0")
	}
}
