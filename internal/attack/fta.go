package attack

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/spn"
)

// FTAConfig parameterises the fault template attack (Saha et al.,
// Eurocrypt 2020). The attack flips ONE INPUT LINE of an AND gate inside a
// last-round S-box and observes only whether the device's behaviour
// changed (ciphertext difference or visible recovery). The output toggles
// exactly when the other AND input is 1, so each probe is a template for
// one state bit.
type FTAConfig struct {
	// SboxIndex selects the probed S-box (actual computation).
	SboxIndex int
	// Repeats is the number of injections per (plaintext, probe); the
	// observable rate over repeats is the template statistic.
	Repeats int
	// ProfilePTs / AttackPTs are the numbers of fixed plaintexts used
	// for the template-building and matching phases.
	ProfilePTs int
	AttackPTs  int
	// Seed drives the attacker's choices.
	Seed uint64
}

// DefaultFTAConfig probes S-box 7 with a moderate trace budget.
func DefaultFTAConfig() FTAConfig {
	return FTAConfig{SboxIndex: 7, Repeats: 64, ProfilePTs: 8, AttackPTs: 8, Seed: 0xF7A}
}

// FTAResult reports the template quality and matching accuracy.
type FTAResult struct {
	Result
	// Separation is the distance between the mean observable rates of
	// bit=0 and bit=1 profiling classes (per probed bit).
	Separation []float64
	// Accuracy is the fraction of attacked state bits recovered
	// correctly; 0.5 is coin-flip (no leakage).
	Accuracy float64
	// Bits is the number of S-box input bits for which a usable AND
	// probe was found.
	Bits int
}

// Probe is one prepared injection point: flipping Net reveals the S-box
// input bit BitIndex.
type Probe struct {
	BitIndex int
	Net      netlist.Net
}

// PrepareFTA rewires the design for pin-precise injection and returns the
// probes. It must be called on a freshly built (unoptimised) design BEFORE
// a Target is created, because it mutates the netlist the way the attack's
// fault-injection setup focuses on individual gate inputs.
//
// For every input bit i of the chosen S-box it looks for a 2-input AND
// gate inside that S-box instance with the bit's (encoded) net on one pin;
// the OTHER pin is isolated and becomes the flip target: the AND output —
// and hence the cipher's behaviour — changes iff bit i is 1.
func PrepareFTA(d *core.Design, sboxIndex int) ([]Probe, error) {
	if !d.ProbesValid() {
		return nil, fmt.Errorf("attack: FTA needs an unoptimised design")
	}
	var probes []Probe
	tag := fmt.Sprintf("b0.sbox%02d", sboxIndex)
	for bit := 0; bit < d.Spec.SboxBits; bit++ {
		x := d.SboxInputNet(core.BranchActual, sboxIndex, bit)
		ci, pin, ok := fault.FindAndGateWithInput(d.Mod, x, tag)
		if !ok {
			continue
		}
		n, err := fault.IsolatePin(d.Mod, ci, pin)
		if err != nil {
			return nil, err
		}
		probes = append(probes, Probe{BitIndex: bit, Net: n})
	}
	if len(probes) == 0 {
		return nil, fmt.Errorf("attack: no AND gates with direct S-box input pins in %s (engine without AND monomials?)", tag)
	}
	return probes, nil
}

// RunFTA executes both template phases against a prepared target.
func RunFTA(t *Target, probes []Probe, cfg FTAConfig) FTAResult {
	gen := rng.NewXoshiro(cfg.Seed)
	cycle := t.D.LastRoundCycle()
	spec := t.D.Spec

	rate := func(pt uint64, p Probe) float64 {
		t.SetFaults(nil)
		clean := t.Encrypt(pt)
		t.SetFaults([]fault.Fault{fault.At(p.Net, fault.BitFlip, cycle)})
		changed := 0
		for done := 0; done < cfg.Repeats; {
			n := min(cfg.Repeats-done, sim.Lanes)
			done += n
			pts := make([]uint64, n)
			for i := range pts {
				pts[i] = pt
			}
			for _, obs := range t.EncryptBatch(pts) {
				if obs.Detected || obs.CT != clean.CT {
					changed++
				}
			}
		}
		t.SetFaults(nil)
		return float64(changed) / float64(cfg.Repeats)
	}

	truth := func(pt uint64, bit int) uint64 {
		state := spec.SboxLayerInput(pt, t.Key, spec.Rounds)
		return (spec.SboxInput(state, cfg.SboxIndex) >> uint(bit)) & 1
	}

	// Phase 1: profiling on plaintexts with known state (the template).
	type class struct {
		sum [2]float64
		n   [2]int
	}
	classes := make([]class, len(probes))
	for i := 0; i < cfg.ProfilePTs; i++ {
		pt := gen.Uint64()
		for pi, p := range probes {
			r := rate(pt, p)
			b := truth(pt, p.BitIndex)
			classes[pi].sum[b] += r
			classes[pi].n[b]++
		}
	}
	res := FTAResult{Separation: make([]float64, len(probes)), Bits: len(probes)}
	thresholds := make([]float64, len(probes))
	for pi := range probes {
		c := classes[pi]
		m0, m1 := 0.0, 1.0
		if c.n[0] > 0 {
			m0 = c.sum[0] / float64(c.n[0])
		}
		if c.n[1] > 0 {
			m1 = c.sum[1] / float64(c.n[1])
		}
		res.Separation[pi] = math.Abs(m1 - m0)
		thresholds[pi] = (m0 + m1) / 2
	}

	// Phase 2: matching on fresh plaintexts (unknown state from the
	// attacker's point of view; the harness checks against the truth).
	correct, total := 0, 0
	for i := 0; i < cfg.AttackPTs; i++ {
		pt := gen.Uint64()
		for pi, p := range probes {
			r := rate(pt, p)
			guess := uint64(0)
			if r > thresholds[pi] {
				guess = 1
			}
			if guess == truth(pt, p.BitIndex) {
				correct++
			}
			total++
		}
	}
	res.Accuracy = float64(correct) / float64(total)

	minSep := math.Inf(1)
	for _, s := range res.Separation {
		if s < minSep {
			minSep = s
		}
	}
	res.Succeeded = minSep > 0.15 && res.Accuracy > 0.9
	res.Detail = fmt.Sprintf("probed %d bits of S-box %d: min class separation %.2f, matching accuracy %.2f",
		res.Bits, cfg.SboxIndex, minSep, res.Accuracy)
	return res
}

// RunFTAOnDesign is the one-call driver: prepare probes, build the target
// and run both phases.
func RunFTAOnDesign(d *core.Design, key spn.KeyState, cfg FTAConfig, deviceSeed uint64) (FTAResult, error) {
	probes, err := PrepareFTA(d, cfg.SboxIndex)
	if err != nil {
		return FTAResult{}, err
	}
	t, err := NewTarget(d, key, deviceSeed)
	if err != nil {
		return FTAResult{}, err
	}
	return RunFTA(t, probes, cfg), nil
}
