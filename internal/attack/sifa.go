package attack

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/sim"
)

// SIFAConfig parameterises the statistical ineffective fault attack.
type SIFAConfig struct {
	// SboxIndex and FaultBit locate the biased fault: a stuck-at-0 at
	// this bit of the S-box's last-round input (the actual
	// computation).
	SboxIndex int
	FaultBit  int
	// Injections is the number of faulted encryptions the attacker
	// performs; only the ineffective ones yield usable ciphertexts.
	Injections int
	// Seed drives the attacker's plaintext choices.
	Seed uint64
}

// DefaultSIFAConfig targets S-box 13 bit 2, like Figure 4 of the paper.
func DefaultSIFAConfig() SIFAConfig {
	return SIFAConfig{SboxIndex: 13, FaultBit: 2, Injections: 4096, Seed: 0x51FA}
}

// SIFAResult extends Result with the per-guess distinguisher statistics.
type SIFAResult struct {
	Result
	// Stat[k] is the matched-filter statistic of subkey guess k: the
	// fraction of partially decrypted ineffective ciphertexts whose
	// S-box input has the faulted bit at 0. The correct guess
	// approaches 1 when the fault filters values; ~0.5 means no
	// information.
	Stat []float64
	// BestGuess and TrueSubkey compare the ranking with ground truth.
	BestGuess  uint64
	TrueSubkey uint64
	// Usable is the number of ineffective (released, correct)
	// ciphertexts collected.
	Usable int
}

// RunSIFA mounts the attack: inject the biased fault many times, keep the
// runs where the device released an output (with any duplication scheme an
// undetected run means the fault was ineffective), partially decrypt the
// target S-box under each last-round-subkey guess and score the guesses
// with a matched filter for the fault model. Against plain duplication the
// correct subkey stands out; against the randomised encodings the
// ineffective set carries no bias and all guesses score ~0.5.
func RunSIFA(t *Target, cfg SIFAConfig) SIFAResult {
	spec := t.D.Spec
	invS := spec.InverseSbox()
	gen := rng.NewXoshiro(cfg.Seed)

	net := t.D.SboxInputNet(core.BranchActual, cfg.SboxIndex, cfg.FaultBit)
	t.SetFaults([]fault.Fault{fault.At(net, fault.StuckAt0, t.D.LastRoundCycle())})
	defer t.SetFaults(nil)

	pos := make([]int, spec.SboxBits)
	for b := range pos {
		pos[b] = spec.Perm[spec.SboxBits*cfg.SboxIndex+b]
	}

	guesses := 1 << uint(spec.SboxBits)
	zeroCount := make([]int, guesses)
	usable := 0
	remaining := cfg.Injections
	for remaining > 0 {
		n := min(remaining, sim.Lanes)
		remaining -= n
		pts := make([]uint64, n)
		for i := range pts {
			pts[i] = gen.Uint64()
		}
		for _, obs := range t.EncryptBatch(pts) {
			if obs.Detected {
				continue
			}
			usable++
			for guess := 0; guess < guesses; guess++ {
				var y uint64
				for b := range pos {
					y |= (((obs.CT >> uint(pos[b])) & 1) ^ (uint64(guess) >> uint(b) & 1)) << uint(b)
				}
				x := invS[y]
				if (x>>uint(cfg.FaultBit))&1 == 0 {
					zeroCount[guess]++
				}
			}
		}
	}

	res := SIFAResult{Stat: make([]float64, guesses), Usable: usable}
	if usable == 0 {
		res.Detail = "no ineffective ciphertexts released — attack starved"
		return res
	}
	for g := range res.Stat {
		res.Stat[g] = float64(zeroCount[g]) / float64(usable)
	}

	order := make([]int, guesses)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return res.Stat[order[i]] > res.Stat[order[j]] })
	res.BestGuess = uint64(order[0])

	// Ground truth for validation: the relevant last-round-key bits.
	rks := lastRoundKeyBits(t, pos)
	res.TrueSubkey = rks

	best, second := res.Stat[order[0]], res.Stat[order[1]]
	res.Succeeded = res.BestGuess == res.TrueSubkey && best > 0.95 && best-second > 0.2
	res.Detail = fmt.Sprintf(
		"%d/%d ineffective ciphertexts; best guess %X (stat %.3f), runner-up stat %.3f, true subkey %X",
		usable, cfg.Injections, res.BestGuess, best, second, res.TrueSubkey)
	return res
}

// lastRoundKeyBits extracts the whitening-key bits at the given ciphertext
// positions (test-harness ground truth; the attacker never calls this).
func lastRoundKeyBits(t *Target, pos []int) uint64 {
	spec := t.D.Spec
	ks := spec.InitKeyState(t.Key)
	for r := 1; r <= spec.Rounds; r++ {
		ks = spec.NextKeyState(ks, r)
	}
	k := spec.RoundXORMask(ks, spec.Rounds+1)
	var sub uint64
	for b := range pos {
		sub |= ((k >> uint(pos[b])) & 1) << uint(b)
	}
	return sub
}
