package attack

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/sim"
)

// This file implements the two ancestors that SIFA generalises (paper
// §IV-B-5): Clavier's ineffective fault attack (IFA, CHES 2007) and the
// biased/statistical fault attack (Ghalaty et al.). The paper's claim is
// that "protection against SIFA automatically ascertains security against
// those" — the tests exercise both directions of that claim.

// IFAConfig parameterises the classic ineffective fault attack: a
// deterministic stuck-at-0 at a known wire; every run whose output is
// released unchanged proves the wire carried 0, directly leaking one state
// bit per ineffective run.
type IFAConfig struct {
	// SboxIndex / FaultBit locate the stuck-at-0 (actual computation,
	// last round).
	SboxIndex int
	FaultBit  int
	// Runs is the number of injections.
	Runs int
	// Seed drives the attacker's plaintexts.
	Seed uint64
}

// DefaultIFAConfig targets the Figure-4 location.
func DefaultIFAConfig() IFAConfig {
	return IFAConfig{SboxIndex: 13, FaultBit: 2, Runs: 1024, Seed: 0x1FA}
}

// IFAResult reports how reliably the ineffectiveness oracle predicts the
// targeted state bit.
type IFAResult struct {
	Result
	// Ineffective is the number of released (unchanged-output) runs.
	Ineffective int
	// BitZeroRate is, over the ineffective runs, the fraction whose
	// TRUE targeted state bit was 0. IFA works when this is 1.0 (the
	// oracle is exact); ~0.5 means the oracle is λ-randomised and the
	// attack learns nothing.
	BitZeroRate float64
}

// RunIFA mounts the attack and evaluates the oracle against ground truth.
func RunIFA(t *Target, cfg IFAConfig) IFAResult {
	spec := t.D.Spec
	gen := rng.NewXoshiro(cfg.Seed)
	net := t.D.SboxInputNet(core.BranchActual, cfg.SboxIndex, cfg.FaultBit)
	t.SetFaults([]fault.Fault{fault.At(net, fault.StuckAt0, t.D.LastRoundCycle())})
	defer t.SetFaults(nil)

	ineffective, bitZero := 0, 0
	remaining := cfg.Runs
	for remaining > 0 {
		n := min(remaining, sim.Lanes)
		remaining -= n
		pts := make([]uint64, n)
		for i := range pts {
			pts[i] = gen.Uint64()
		}
		for _, obs := range t.EncryptBatch(pts) {
			if obs.Detected {
				continue
			}
			// Released & (with duplication) therefore unchanged:
			// the IFA oracle fires. Check it against the true bit.
			ineffective++
			state := spec.SboxLayerInput(obs.PT, t.Key, spec.Rounds)
			bit := (spec.SboxInput(state, cfg.SboxIndex) >> uint(cfg.FaultBit)) & 1
			if bit == 0 {
				bitZero++
			}
		}
	}

	res := IFAResult{Ineffective: ineffective}
	if ineffective == 0 {
		res.Detail = "no ineffective runs released — attack starved"
		return res
	}
	res.BitZeroRate = float64(bitZero) / float64(ineffective)
	res.Succeeded = res.BitZeroRate > 0.99
	res.Detail = fmt.Sprintf("%d/%d ineffective runs; targeted bit was 0 in %.1f%% of them",
		ineffective, cfg.Runs, 100*res.BitZeroRate)
	return res
}

// SFAConfig parameterises the biased (statistical) fault attack: a noisy
// biased fault — each injection independently sticks the wire at 0 with
// probability Bias, else leaves it alone — with key ranking over the
// released outputs, the pre-SIFA "biased fault" model.
type SFAConfig struct {
	SboxIndex int
	FaultBit  int
	// Bias is the per-run probability that the fault lands.
	Bias float64
	// Injections is the number of faulted encryptions.
	Injections int
	Seed       uint64
}

// DefaultSFAConfig uses a strong 80% landing rate at the Figure-4
// location.
func DefaultSFAConfig() SFAConfig {
	return SFAConfig{SboxIndex: 13, FaultBit: 2, Bias: 0.8, Injections: 4096, Seed: 0x5FA}
}

// RunSFA mounts the statistical fault attack. The noisy fault is realised
// with per-lane fault masks, so different lanes of one batch see different
// outcomes — the biased-fault model of the literature. Ranking reuses the
// SIFA matched filter over the released outputs.
func RunSFA(t *Target, cfg SFAConfig) SIFAResult {
	spec := t.D.Spec
	invS := spec.InverseSbox()
	gen := rng.NewXoshiro(cfg.Seed)
	net := t.D.SboxInputNet(core.BranchActual, cfg.SboxIndex, cfg.FaultBit)

	pos := make([]int, spec.SboxBits)
	for b := range pos {
		pos[b] = spec.Perm[spec.SboxBits*cfg.SboxIndex+b]
	}
	guesses := 1 << uint(spec.SboxBits)
	zeroCount := make([]int, guesses)
	usable := 0

	remaining := cfg.Injections
	for remaining > 0 {
		n := min(remaining, sim.Lanes)
		remaining -= n
		// Draw the per-lane landing mask for this batch.
		var lanes uint64
		for i := 0; i < n; i++ {
			if float64(gen.Bits(20)) < cfg.Bias*(1<<20) {
				lanes |= 1 << uint(i)
			}
		}
		t.SetFaults([]fault.Fault{{
			Net: net, Model: fault.StuckAt0,
			FromCycle: t.D.LastRoundCycle(), ToCycle: t.D.LastRoundCycle(),
			Lanes: lanes,
		}})
		pts := make([]uint64, n)
		for i := range pts {
			pts[i] = gen.Uint64()
		}
		for _, obs := range t.EncryptBatch(pts) {
			if obs.Detected {
				continue
			}
			usable++
			for guess := 0; guess < guesses; guess++ {
				var y uint64
				for b := range pos {
					y |= (((obs.CT >> uint(pos[b])) & 1) ^ (uint64(guess) >> uint(b) & 1)) << uint(b)
				}
				if (invS[y]>>uint(cfg.FaultBit))&1 == 0 {
					zeroCount[guess]++
				}
			}
		}
	}
	t.SetFaults(nil)

	res := SIFAResult{Stat: make([]float64, guesses), Usable: usable}
	if usable == 0 {
		res.Detail = "no outputs released — attack starved"
		return res
	}
	best, second, bestGuess := -1.0, -1.0, 0
	for g := range res.Stat {
		res.Stat[g] = float64(zeroCount[g]) / float64(usable)
		if res.Stat[g] > best {
			second = best
			best = res.Stat[g]
			bestGuess = g
		} else if res.Stat[g] > second {
			second = res.Stat[g]
		}
	}
	res.BestGuess = uint64(bestGuess)
	res.TrueSubkey = lastRoundKeyBits(t, pos)
	// With a noisy fault the correct-guess statistic sits between 0.5
	// and 1; require a clear margin over the runner-up.
	res.Succeeded = res.BestGuess == res.TrueSubkey && best-second > 0.05 && best > 0.6
	res.Detail = fmt.Sprintf(
		"%d/%d released; best guess %X (stat %.3f), runner-up %.3f, true subkey %X",
		usable, cfg.Injections, res.BestGuess, best, second, res.TrueSubkey)
	return res
}
