package attack

import (
	"testing"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/spn"
	"repro/internal/synth"
)

var testKey = spn.KeyState{0xFEDCBA9876543210, 0x1357}

func build(t *testing.T, scheme core.Scheme, opts ...func(*core.Options)) *core.Design {
	t.Helper()
	o := core.Options{Scheme: scheme, Entropy: core.EntropyPrime, Engine: synth.EngineANF}
	for _, f := range opts {
		f(&o)
	}
	d, err := core.Build(present.Spec(), o)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d
}

func target(t *testing.T, d *core.Design) *Target {
	t.Helper()
	tg, err := NewTarget(d, testKey, 0xDE51CE0)
	if err != nil {
		t.Fatalf("NewTarget: %v", err)
	}
	return tg
}

// --- DFA ----------------------------------------------------------------

func TestDFABreaksUnprotected(t *testing.T) {
	res := RunDFA(target(t, build(t, core.SchemeUnprotected)), DefaultDFAConfig())
	if !res.Succeeded {
		t.Fatalf("DFA should break the unprotected core: %s", res)
	}
	if res.RecoveredKey != testKey {
		t.Fatalf("recovered wrong key")
	}
}

func TestDFABlockedByNaiveDuplication(t *testing.T) {
	res := RunDFA(target(t, build(t, core.SchemeNaiveDup)), DefaultDFAConfig())
	if res.Succeeded {
		t.Fatalf("single-computation DFA must be blocked by duplication: %s", res)
	}
}

func TestDFABlockedByThreeInOne(t *testing.T) {
	res := RunDFA(target(t, build(t, core.SchemeThreeInOne)), DefaultDFAConfig())
	if res.Succeeded {
		t.Fatalf("single-computation DFA must be blocked by the countermeasure: %s", res)
	}
}

// --- identical-fault DFA (FDTC 2016) -------------------------------------

func TestIdenticalFaultDFABypassesNaiveDuplication(t *testing.T) {
	res := RunDFA(target(t, build(t, core.SchemeNaiveDup)), IdenticalDFAConfig())
	if !res.Succeeded {
		t.Fatalf("identical stuck-at faults should bypass naive duplication: %s", res)
	}
}

func TestIdenticalFaultDFABypassesACISP(t *testing.T) {
	// Both computations share one λ in the ACISP scheme, so identical
	// masks still align — the weakness the paper's first amendment
	// fixes.
	res := RunDFA(target(t, build(t, core.SchemeACISP)), IdenticalDFAConfig())
	if !res.Succeeded {
		t.Fatalf("identical stuck-at faults should bypass the ACISP scheme: %s", res)
	}
}

func TestIdenticalFaultDFABlockedByThreeInOne(t *testing.T) {
	res := RunDFA(target(t, build(t, core.SchemeThreeInOne)), IdenticalDFAConfig())
	if res.Succeeded {
		t.Fatalf("identical stuck-at faults must be detected by complementary encodings: %s", res)
	}
}

func TestIdenticalBitFlipLimitation(t *testing.T) {
	// Section IV-B-4 of the paper: a fault mask and its inverse in the
	// two computations is treated as no fault. An identical bit-FLIP is
	// exactly that case (a flip is encoding-independent), so it escapes
	// even the three-in-one scheme. The paper argues this model is
	// impractical; the repository demonstrates the limitation honestly.
	cfg := IdenticalDFAConfig()
	cfg.Model = fault.BitFlip
	res := RunDFA(target(t, build(t, core.SchemeThreeInOne)), cfg)
	if !res.Succeeded {
		t.Fatalf("identical bit flips are the documented residual weakness: %s", res)
	}
}

// --- SIFA ----------------------------------------------------------------

func sifaCfg() SIFAConfig {
	cfg := DefaultSIFAConfig()
	cfg.Injections = 2048
	return cfg
}

func TestSIFABreaksNaiveDuplication(t *testing.T) {
	res := RunSIFA(target(t, build(t, core.SchemeNaiveDup)), sifaCfg())
	if !res.Succeeded {
		t.Fatalf("SIFA should rank the true subkey first against naive duplication: %s", res.Detail)
	}
}

func TestSIFABlockedByACISP(t *testing.T) {
	res := RunSIFA(target(t, build(t, core.SchemeACISP)), sifaCfg())
	if res.Succeeded {
		t.Fatalf("SIFA must be blocked by randomised duplication: %s", res.Detail)
	}
}

func TestSIFABlockedByThreeInOne(t *testing.T) {
	res := RunSIFA(target(t, build(t, core.SchemeThreeInOne)), sifaCfg())
	if res.Succeeded {
		t.Fatalf("SIFA must be blocked by the three-in-one scheme: %s", res.Detail)
	}
}

// --- FTA -----------------------------------------------------------------

func ftaCfg() FTAConfig {
	cfg := DefaultFTAConfig()
	cfg.Repeats = 64
	cfg.ProfilePTs = 6
	cfg.AttackPTs = 6
	return cfg
}

func TestFTABreaksUnprotected(t *testing.T) {
	res, err := RunFTAOnDesign(build(t, core.SchemeUnprotected), testKey, ftaCfg(), 0xD0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("FTA should template the unprotected core: %s", res.Detail)
	}
}

func TestFTABreaksNaiveDuplication(t *testing.T) {
	// Detection itself is the FTA observable: duplication converts the
	// fault's effectiveness into a visible recovery, leaking the probed
	// bit.
	res, err := RunFTAOnDesign(build(t, core.SchemeNaiveDup), testKey, ftaCfg(), 0xD1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("FTA should bypass naive duplication: %s", res.Detail)
	}
}

func TestFTABreaksSeparateSboxLayout(t *testing.T) {
	// The ACISP separate plain/inverted S-box layout leaks through the
	// asymmetric observable rate (0 vs 0.5) — the weakness the paper's
	// merged S-box (third amendment) removes.
	d := build(t, core.SchemeACISP, func(o *core.Options) { o.SeparateSbox = true })
	cfg := ftaCfg()
	cfg.Repeats = 128 // rates 0 vs 0.5 need more repeats to separate
	res, err := RunFTAOnDesign(d, testKey, cfg, 0xD2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Succeeded {
		t.Fatalf("FTA should leak through the separate-S-box layout: %s", res.Detail)
	}
}

func TestFTABlockedByThreeInOne(t *testing.T) {
	res, err := RunFTAOnDesign(build(t, core.SchemeThreeInOne), testKey, ftaCfg(), 0xD3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Succeeded {
		t.Fatalf("FTA must be blocked by the merged-S-box three-in-one scheme: %s", res.Detail)
	}
	if res.Accuracy > 0.85 {
		t.Fatalf("FTA accuracy %.2f too high against the countermeasure", res.Accuracy)
	}
}

// --- IFA and SFA (the models SIFA generalises, §IV-B-5) -------------------

func TestIFABreaksNaiveDuplication(t *testing.T) {
	res := RunIFA(target(t, build(t, core.SchemeNaiveDup)), DefaultIFAConfig())
	if !res.Succeeded {
		t.Fatalf("IFA oracle should be exact against naive duplication: %s", res.Detail)
	}
}

func TestIFABlockedByThreeInOne(t *testing.T) {
	res := RunIFA(target(t, build(t, core.SchemeThreeInOne)), DefaultIFAConfig())
	if res.Succeeded {
		t.Fatalf("IFA must be blocked: %s", res.Detail)
	}
	if res.BitZeroRate < 0.4 || res.BitZeroRate > 0.6 {
		t.Fatalf("IFA oracle should be a coin flip, got %.2f", res.BitZeroRate)
	}
}

func TestSFABreaksNaiveDuplication(t *testing.T) {
	res := RunSFA(target(t, build(t, core.SchemeNaiveDup)), DefaultSFAConfig())
	if !res.Succeeded {
		t.Fatalf("biased-fault attack should rank the true subkey first: %s", res.Detail)
	}
}

func TestSFABlockedByThreeInOne(t *testing.T) {
	res := RunSFA(target(t, build(t, core.SchemeThreeInOne)), DefaultSFAConfig())
	if res.Succeeded {
		t.Fatalf("biased-fault attack must be blocked: %s", res.Detail)
	}
}
