package attack

import (
	"fmt"
	"math/bits"

	"repro/internal/cipher/present"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/rng"
)

// DFAConfig parameterises the last-round differential fault attack on
// PRESENT-80.
type DFAConfig struct {
	// PairsPerNibble bounds how many (correct, faulty) pairs the
	// attacker may collect per S-box.
	PairsPerNibble int
	// Model is the injected fault model. BitFlip is the classic
	// transient DFA fault; StuckAt0/StuckAt1 model the laser set/reset
	// faults of the FDTC 2016 identical-fault attack.
	Model fault.Model
	// BothBranches injects the *same* fault mask into the actual and
	// the redundant computation — the Selmke-Heyszl-Sigl model.
	BothBranches bool
	// UnknownPolarity relaxes the candidate filter to "single-bit
	// difference" without a set/reset direction. An attacker facing a
	// possibly-encoded datapath uses this: a stuck-at on an encoded
	// wire acts as stuck-at-λ on the logical value.
	UnknownPolarity bool
	// Seed drives the attacker's plaintext choices.
	Seed uint64
}

// DefaultDFAConfig returns the classic single-computation bit-flip DFA.
func DefaultDFAConfig() DFAConfig {
	return DFAConfig{PairsPerNibble: 24, Model: fault.BitFlip, Seed: 0xDFA}
}

// IdenticalDFAConfig returns the FDTC 2016 configuration: identical
// stuck-at faults in both computations of a duplicated design.
func IdenticalDFAConfig() DFAConfig {
	return DFAConfig{PairsPerNibble: 48, Model: fault.StuckAt0, BothBranches: true, UnknownPolarity: true, Seed: 0xDFA5}
}

// RunDFA mounts a last-round DFA against the target, attempting full
// 80-bit key recovery. The attack injects single-bit faults at the inputs
// of the last-round S-box layer, filters last-round-key candidates by
// consistency with the fault model, and brute-forces the 16 key-schedule
// bits K32 does not expose.
func RunDFA(t *Target, cfg DFAConfig) Result {
	spec := t.D.Spec
	if spec.Name != "present80" {
		return Result{Detail: "DFA driver is implemented for present80 targets"}
	}
	gen := rng.NewXoshiro(cfg.Seed)
	invS := spec.InverseSbox()
	cycle := t.D.LastRoundCycle()

	detections := 0
	usablePairs := 0
	var k32 uint64
	for nib := 0; nib < spec.NumSboxes(); nib++ {
		// Ciphertext bit positions carrying S-box nib's output.
		pos := [4]int{}
		for b := 0; b < 4; b++ {
			pos[b] = spec.Perm[4*nib+b]
		}
		candidates := uint32(0xFFFF) // bitmask over 16 subkey guesses
		pairs := 0
		for try := 0; try < cfg.PairsPerNibble && bits.OnesCount32(candidates) > 1; try++ {
			pt := gen.Uint64()
			faultBit := try % 4

			t.SetFaults(nil)
			clean := t.Encrypt(pt)

			faults := []fault.Fault{fault.At(
				t.D.SboxInputNet(core.BranchActual, nib, faultBit), cfg.Model, cycle)}
			if cfg.BothBranches && t.D.NumBranches() > 1 {
				faults = append(faults, fault.At(
					t.D.SboxInputNet(core.BranchRedundant, nib, faultBit), cfg.Model, cycle))
			}
			t.SetFaults(faults)
			faulty := t.Encrypt(pt)
			t.SetFaults(nil)

			if faulty.Detected {
				detections++
				continue
			}
			if faulty.CT == clean.CT {
				continue // ineffective, no differential
			}
			pairs++
			usablePairs++
			candidates &= filterCandidates(invS, clean.CT, faulty.CT, pos, cfg.Model, cfg.UnknownPolarity)
		}
		if bits.OnesCount32(candidates) != 1 {
			return Result{Detail: fmt.Sprintf(
				"S-box %d: %d candidates left after %d usable pairs (%d injections detected) — key not recovered",
				nib, bits.OnesCount32(candidates), pairs, detections)}
		}
		sub := uint64(bits.TrailingZeros32(candidates))
		for b := 0; b < 4; b++ {
			k32 |= ((sub >> uint(b)) & 1) << uint(pos[b])
		}
	}

	// Brute-force the 16 hidden key-state bits against a known pair.
	pt := gen.Uint64()
	t.SetFaults(nil)
	obs := t.Encrypt(pt)
	key, ok := present.RecoverKeyFromK32(k32, pt, obs.CT)
	if !ok {
		return Result{Detail: fmt.Sprintf(
			"K32=%016X recovered but no consistent 80-bit key found", k32)}
	}
	if key != t.Key {
		return Result{Detail: fmt.Sprintf(
			"recovered key %016X%04X does not match the device key", key[0], key[1])}
	}
	return Result{
		Succeeded:    true,
		RecoveredKey: key,
		Detail: fmt.Sprintf("full 80-bit key recovered from %d usable pairs (%d injections detected)",
			usablePairs, detections),
	}
}

// filterCandidates keeps the subkey guesses consistent with one pair under
// the single-bit fault model: decrypting the last round under the guess
// must show an input difference of Hamming weight one (and, for stuck-at
// models, the cleared/set bit must have held the complementary value).
func filterCandidates(invS []uint64, clean, faulty uint64, pos [4]int, model fault.Model, unknownPolarity bool) uint32 {
	var keep uint32
	for guess := uint64(0); guess < 16; guess++ {
		var y, yf uint64
		for b := 0; b < 4; b++ {
			y |= (((clean >> uint(pos[b])) & 1) ^ ((guess >> uint(b)) & 1)) << uint(b)
			yf |= (((faulty >> uint(pos[b])) & 1) ^ ((guess >> uint(b)) & 1)) << uint(b)
		}
		x, xf := invS[y], invS[yf]
		dx := x ^ xf
		ok := bits.OnesCount64(dx) == 1
		if ok && !unknownPolarity {
			switch model {
			case fault.StuckAt0:
				ok = x&dx != 0 // the faulted bit was 1 and got cleared
			case fault.StuckAt1:
				ok = x&dx == 0 // the faulted bit was 0 and got set
			}
		}
		if ok {
			keep |= 1 << guess
		}
	}
	return keep
}
