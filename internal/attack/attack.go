// Package attack implements the fault attacks of the paper's threat model
// against the gate-level designs built by internal/core:
//
//   - DFA: classic last-round differential fault analysis (Biham-Shamir
//     style) with single-bit faults, including full 80-bit PRESENT key
//     recovery;
//   - identical-fault DFA: the Selmke-Heyszl-Sigl FDTC 2016 model that
//     injects the same fault mask into both computations of a duplicated
//     design;
//   - SIFA: statistical ineffective fault analysis on the ciphertexts of
//     ineffective-fault runs;
//   - FTA: the Eurocrypt 2020 fault template attack, probing one input
//     line of an AND gate.
//
// Each attack is validated in both directions by the test suite: it must
// SUCCEED against the designs the paper says are vulnerable and FAIL
// against the designs the paper says are protected.
package attack

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/spn"
)

// Target wraps a design under attack with the run plumbing an attacker
// needs: clean and faulted encryptions under a fixed unknown key, with
// fresh randomness (λ, garbage) per invocation exactly as the device would
// draw it from its TRNG.
type Target struct {
	D   *core.Design
	Key spn.KeyState

	compiled *sim.Compiled
	runner   *core.Runner
	inj      *fault.Injector
	gen      *rng.Xoshiro
}

// NewTarget compiles the design. seed drives the device-side randomness.
func NewTarget(d *core.Design, key spn.KeyState, seed uint64) (*Target, error) {
	compiled, err := sim.CompileCached(d.Mod)
	if err != nil {
		return nil, err
	}
	return &Target{
		D:        d,
		Key:      key,
		compiled: compiled,
		runner:   core.NewRunnerFrom(d, compiled),
		gen:      rng.NewXoshiro(seed),
	}, nil
}

// SetFaults arms the injector for subsequent runs; nil disarms it.
func (t *Target) SetFaults(faults []fault.Fault) {
	if faults == nil {
		t.runner.S.SetInjector(nil)
		t.inj = nil
		return
	}
	t.inj = fault.NewInjector(faults...)
	t.runner.S.SetInjector(t.inj)
}

// Observation is what the attacker sees from one encryption.
type Observation struct {
	PT uint64
	// CT is the released output (garbage when the comparator fired).
	CT uint64
	// Detected is true when the device visibly switched to its recovery
	// behaviour. The FTA threat model grants the attacker exactly this
	// one bit ("whether or not the fault injection successfully altered
	// the normal cipher flow"); with random-garbage recovery it is
	// observable from the output alone by repeating the plaintext.
	Detected bool
}

// EncryptBatch runs len(pts) encryptions (at most sim.Lanes) under the
// armed faults, drawing fresh λ and garbage per lane.
func (t *Target) EncryptBatch(pts []uint64) []Observation {
	n := len(pts)
	garbage := make([]uint64, n)
	for i := range garbage {
		garbage[i] = t.gen.Uint64()
	}
	var lf core.LambdaFunc
	if t.D.LambdaWidth > 0 {
		if t.D.Opts.Entropy == core.EntropyPrime {
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = t.gen.Bits(t.D.LambdaWidth)
			}
			lf = core.LambdaConst(vals)
		} else {
			perCycle := make(map[int][]uint64)
			lf = func(c int) []uint64 {
				if v, ok := perCycle[c]; ok {
					return v
				}
				vals := make([]uint64, n)
				for i := range vals {
					vals[i] = t.gen.Bits(t.D.LambdaWidth)
				}
				perCycle[c] = vals
				return vals
			}
		}
	}
	res := t.runner.EncryptBatch(pts, t.Key, garbage, lf)
	obs := make([]Observation, n)
	for i := range obs {
		obs[i] = Observation{PT: pts[i], CT: res.CT[i], Detected: res.Fault[i]}
	}
	return obs
}

// Encrypt runs a single encryption.
func (t *Target) Encrypt(pt uint64) Observation {
	return t.EncryptBatch([]uint64{pt})[0]
}

// Result is the common outcome type of the attack drivers.
type Result struct {
	// Succeeded reports whether the attack recovered its target secret.
	Succeeded bool
	// RecoveredKey is the full recovered key when Succeeded (DFA).
	RecoveredKey spn.KeyState
	// Detail is a human-readable account for the experiment reports.
	Detail string
}

// String summarises the result.
func (r Result) String() string {
	status := "FAILED (countermeasure effective)"
	if r.Succeeded {
		status = "SUCCEEDED (design broken)"
	}
	return fmt.Sprintf("%s — %s", status, r.Detail)
}
