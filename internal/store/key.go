package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Digest is a SHA-256 content digest: of a canonical netlist text, or of an
// encoded CampaignKey.
type Digest [sha256.Size]byte

// String renders the digest as lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// ParseDigest parses the hex form produced by String.
func ParseDigest(s string) (Digest, error) {
	var d Digest
	b, err := hex.DecodeString(s)
	if err != nil {
		return d, fmt.Errorf("store: digest %q: %w", s, err)
	}
	if len(b) != len(d) {
		return d, fmt.Errorf("store: digest %q: want %d bytes, got %d", s, len(d), len(b))
	}
	copy(d[:], b)
	return d, nil
}

// HashBytes digests a byte slice.
func HashBytes(b []byte) Digest { return sha256.Sum256(b) }

// FaultPoint is the content-address form of one resolved fault: the concrete
// net index of the built design plus model and activity window. It
// deliberately mirrors fault.Fault field for field (without importing it, so
// the store stays dependency-free below the engine).
type FaultPoint struct {
	Net       uint32
	Model     uint8
	FromCycle int32
	ToCycle   int32
	Lanes     uint64
}

// PersistentPoint is the content-address form of a persistent S-box
// corruption (fault.PersistentFault): the table entry and XOR mask applied
// once before the campaign's first encryption.
type PersistentPoint struct {
	Entry uint32
	Mask  uint64
}

// CampaignKey is the content address of a campaign's deterministic result
// stream: everything a batch outcome depends on except the batch index.
// Two submissions with equal keys produce bit-identical per-batch results,
// so their batches are interchangeable in the store.
type CampaignKey struct {
	// Netlist digests the canonical text serialisation of the built design.
	Netlist Digest
	// Engine is the campaign engine's version string (fault.Campaign's
	// EngineID); it changes whenever simulation semantics or the randomness
	// derivation change, invalidating every cached batch at once.
	Engine string
	// Key is the cipher key, Seed the campaign seed.
	Key  [2]uint64
	Seed uint64
	// Faults are the resolved injection points, in submission order.
	Faults []FaultPoint
	// Persistent, when set, is the campaign's persistent S-box corruption.
	// It is encoded as an optional tail so every pre-existing transient-only
	// key keeps its exact byte encoding — and therefore its digest.
	Persistent *PersistentPoint
}

// campaignKeyVersion versions the encoding itself; bump on any layout change.
const campaignKeyVersion = 1

// maxKeyFaults bounds decoded fault lists, so a corrupt length prefix cannot
// drive a huge allocation.
const maxKeyFaults = 1 << 16

// Encode serialises the key canonically. The encoding is reversible (see
// DecodeCampaignKey) so the address scheme itself is testable: any key must
// round-trip, and its digest is defined as the hash of exactly these bytes.
func (k CampaignKey) Encode() []byte {
	buf := make([]byte, 0, 64+len(k.Engine)+24*len(k.Faults))
	buf = append(buf, 'K', campaignKeyVersion)
	buf = append(buf, k.Netlist[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(k.Engine)))
	buf = append(buf, k.Engine...)
	buf = binary.LittleEndian.AppendUint64(buf, k.Key[0])
	buf = binary.LittleEndian.AppendUint64(buf, k.Key[1])
	buf = binary.LittleEndian.AppendUint64(buf, k.Seed)
	buf = binary.AppendUvarint(buf, uint64(len(k.Faults)))
	for _, f := range k.Faults {
		buf = binary.AppendUvarint(buf, uint64(f.Net))
		buf = append(buf, f.Model)
		buf = binary.AppendVarint(buf, int64(f.FromCycle))
		buf = binary.AppendVarint(buf, int64(f.ToCycle))
		buf = binary.LittleEndian.AppendUint64(buf, f.Lanes)
	}
	if k.Persistent != nil {
		// Optional tail: absent for transient-only keys so their digests
		// are byte-for-byte what encoding version 1 always produced.
		buf = append(buf, 'P')
		buf = binary.AppendUvarint(buf, uint64(k.Persistent.Entry))
		buf = binary.AppendUvarint(buf, k.Persistent.Mask)
	}
	return buf
}

// Digest is the campaign's content address: the hash of the canonical
// encoding.
func (k CampaignKey) Digest() Digest { return HashBytes(k.Encode()) }

// DecodeCampaignKey reverses Encode, rejecting malformed and trailing bytes.
func DecodeCampaignKey(b []byte) (CampaignKey, error) {
	var k CampaignKey
	r := reader{buf: b}
	if r.byte() != 'K' || r.byte() != campaignKeyVersion {
		return k, fmt.Errorf("store: campaign key: bad magic/version")
	}
	r.read(k.Netlist[:])
	n := r.uvarint()
	if n > uint64(r.remaining()) {
		return k, fmt.Errorf("store: campaign key: engine length %d exceeds payload", n)
	}
	eng := make([]byte, n)
	r.read(eng)
	k.Engine = string(eng)
	k.Key[0] = r.uint64()
	k.Key[1] = r.uint64()
	k.Seed = r.uint64()
	nf := r.uvarint()
	if nf > maxKeyFaults {
		return k, fmt.Errorf("store: campaign key: %d faults exceeds limit", nf)
	}
	if nf > 0 {
		k.Faults = make([]FaultPoint, 0, nf)
	}
	for i := uint64(0); i < nf; i++ {
		var f FaultPoint
		f.Net = uint32(r.uvarint())
		f.Model = r.byte()
		f.FromCycle = int32(r.varint())
		f.ToCycle = int32(r.varint())
		f.Lanes = r.uint64()
		k.Faults = append(k.Faults, f)
	}
	if r.err == nil && r.remaining() > 0 {
		if r.byte() != 'P' {
			return k, fmt.Errorf("store: campaign key: bad optional tail marker")
		}
		var p PersistentPoint
		p.Entry = uint32(r.uvarint())
		p.Mask = r.uvarint()
		k.Persistent = &p
	}
	if r.err != nil {
		return k, fmt.Errorf("store: campaign key: %w", r.err)
	}
	if r.remaining() != 0 {
		return k, fmt.Errorf("store: campaign key: %d trailing bytes", r.remaining())
	}
	return k, nil
}

// BatchKey addresses one completed batch of a campaign. Runs is the number of
// runs in the batch — sim.Lanes for every batch except a campaign's final
// partial one. Keying on it lets campaigns that differ only in total run
// count share every full batch: extending a campaign replays the cached
// prefix and simulates only the new tail.
type BatchKey struct {
	Campaign Digest
	Batch    int
	Runs     int
}

// Counts is a batch's outcome tally, mirroring the service's wire result.
type Counts struct {
	Total       int `json:"total"`
	Ineffective int `json:"ineffective"`
	Detected    int `json:"detected"`
	Effective   int `json:"effective"`
	// Corrected counts runs recovered by a correcting scheme's majority
	// vote. It is encoded as an optional tail (only when non-zero) so every
	// record written before the field existed decodes — and re-encodes —
	// unchanged.
	Corrected int `json:"corrected,omitempty"`
}

// encodeBatch serialises one (key, counts) batch record payload.
func encodeBatch(k BatchKey, c Counts) []byte {
	buf := make([]byte, 0, 48)
	buf = append(buf, k.Campaign[:]...)
	buf = binary.AppendUvarint(buf, uint64(k.Batch))
	buf = binary.AppendUvarint(buf, uint64(k.Runs))
	buf = binary.AppendUvarint(buf, uint64(c.Total))
	buf = binary.AppendUvarint(buf, uint64(c.Ineffective))
	buf = binary.AppendUvarint(buf, uint64(c.Detected))
	buf = binary.AppendUvarint(buf, uint64(c.Effective))
	if c.Corrected != 0 {
		buf = binary.AppendUvarint(buf, uint64(c.Corrected))
	}
	return buf
}

// decodeBatch reverses encodeBatch, validating internal consistency so a
// corrupt-but-CRC-valid record can never poison the index.
func decodeBatch(b []byte) (BatchKey, Counts, error) {
	var k BatchKey
	var c Counts
	r := reader{buf: b}
	r.read(k.Campaign[:])
	k.Batch = int(r.uvarint())
	k.Runs = int(r.uvarint())
	c.Total = int(r.uvarint())
	c.Ineffective = int(r.uvarint())
	c.Detected = int(r.uvarint())
	c.Effective = int(r.uvarint())
	if r.err == nil && r.remaining() > 0 {
		c.Corrected = int(r.uvarint())
	}
	if r.err != nil {
		return k, c, fmt.Errorf("store: batch record: %w", r.err)
	}
	if r.remaining() != 0 {
		return k, c, fmt.Errorf("store: batch record: %d trailing bytes", r.remaining())
	}
	if k.Batch < 0 || k.Runs <= 0 || c.Total != k.Runs || c.Corrected < 0 ||
		c.Total != c.Ineffective+c.Detected+c.Effective+c.Corrected {
		return k, c, fmt.Errorf("store: batch record: inconsistent counts")
	}
	return k, c, nil
}

// reader is a tiny cursor over a record payload that latches the first error,
// so decoders read fields straight-line and check once.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("truncated payload at offset %d", r.off)
	}
}

func (r *reader) byte() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *reader) read(dst []byte) {
	if r.err != nil || r.off+len(dst) > len(r.buf) {
		r.fail()
		return
	}
	copy(dst, r.buf[r.off:])
	r.off += len(dst)
}

func (r *reader) uint64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}
